/* fpkernel — curated extension workload: dense floating-point
 * arithmetic. A degree-7 Horner polynomial sweep, a three-point Jacobi
 * stencil relaxation, and running dot products — long multiply-add
 * chains over doubles with trivially predictable loops, giving the FP
 * pipeline a denser diet than the paper's solver/whetstone mix. The
 * checksum quantizes accumulated sums to integers, so every target
 * must agree bit-for-bit on the FP sequence. */

double xs[1024];
double grid[1026];
double scratch[1026];
double poly[8];

void build(void) {
    int i;
    for (i = 0; i < 1024; i++) {
        xs[i] = (double)(i % 200) / 100.0 - 1.0;
    }
    for (i = 0; i < 1026; i++) {
        grid[i] = (double)((i * 7) % 100) / 50.0;
    }
    poly[0] = 0.5;
    poly[1] = -1.25;
    poly[2] = 2.0;
    poly[3] = -0.75;
    poly[4] = 1.5;
    poly[5] = -0.125;
    poly[6] = 0.25;
    poly[7] = -2.0;
}

double horner_sweep(void) {
    int i;
    int k;
    double total = 0.0;
    for (i = 0; i < 1024; i++) {
        double x = xs[i];
        double v = poly[7];
        for (k = 6; k >= 0; k--) {
            v = v * x + poly[k];
        }
        total += v;
    }
    return total;
}

double stencil(int sweeps) {
    int s;
    int i;
    double residual = 0.0;
    for (s = 0; s < sweeps; s++) {
        for (i = 1; i < 1025; i++) {
            scratch[i] = 0.25 * grid[i - 1] + 0.5 * grid[i] + 0.25 * grid[i + 1];
        }
        for (i = 1; i < 1025; i++) {
            grid[i] = scratch[i];
        }
    }
    for (i = 1; i < 1025; i++) {
        residual += grid[i];
    }
    return residual;
}

double dots(void) {
    int i;
    double d1 = 0.0;
    double d2 = 0.0;
    for (i = 0; i < 1024; i++) {
        d1 += xs[i] * grid[i];
        d2 += xs[i] * xs[1023 - i];
    }
    return d1 * 0.5 + d2 * 0.25;
}

int quantize(double v) {
    /* Map into a stable integer: scale, clamp, truncate. */
    double s = v * 1000.0;
    if (s > 1000000.0) s = 1000000.0;
    if (s < -1000000.0) s = -1000000.0;
    return (int)s;
}

int main(void) {
    int rep;
    int check = 0;
    build();
    for (rep = 0; rep < 3; rep++) {
        check = (check * 31 + quantize(horner_sweep())) & 0xFFFFFF;
        check = (check * 31 + quantize(stencil(4))) & 0xFFFFFF;
        check = (check * 31 + quantize(dots())) & 0xFFFFFF;
        xs[rep * 300] += 0.125;
    }
    return check & 0x7FFF;
}
