/* grep — "The Unix utility from the BSD sources" (Table 2).
 * Byte-oriented text scanning with a small pattern matcher supporting
 * `.` (any), `*` (closure) and literal characters — the inner loops of
 * the original: per-line scanning, per-position match attempts. */

char corpus[4096];

char base_text[256] =
    "the quick brown fox jumps over the lazy dog\n"
    "a register file of sixteen entries is enough\n"
    "instruction fetch bandwidth limits performance\n"
    "code density matters for small caches\n";

int corpus_len = 0;

void build_corpus(void) {
    int i = 0, j;
    while (i + 256 < 4096) {
        for (j = 0; base_text[j]; j++) {
            corpus[i] = base_text[j];
            i++;
        }
        /* Vary the stream a little so matches are not purely periodic. */
        corpus[i] = (char)('a' + (i & 7));
        i++;
        corpus[i] = '\n';
        i++;
    }
    corpus[i] = 0;
    corpus_len = i;
}

/* Match pattern p against text t at a single position.
 * Returns the number of characters consumed, or -1. */
int match_here(char *p, char *t) {
    int n = 0;
    while (*p) {
        if (p[1] == '*') {
            /* Zero or more of p[0], greedy with backtracking. */
            int count = 0;
            while (t[count] && (p[0] == '.' || t[count] == p[0])) count++;
            while (count >= 0) {
                int rest = match_here(p + 2, t + count);
                if (rest >= 0) return n + count + rest;
                count--;
            }
            return -1;
        }
        if (*t && (*p == '.' || *p == *t)) {
            p++;
            t++;
            n++;
        } else {
            return -1;
        }
    }
    return n;
}

int count_matches(char *pattern) {
    int i, hits = 0;
    for (i = 0; i < corpus_len; i++) {
        if (match_here(pattern, &corpus[i]) >= 0) hits++;
    }
    return hits;
}

int main(void) {
    int a, b, c, d;
    build_corpus();
    a = count_matches("the");
    b = count_matches("f.x");
    c = count_matches("ca*ches");
    d = count_matches("si.teen");
    return (a & 0xFF) * 1000 + (b & 0xF) * 100 + (c & 0xF) * 10 + (d & 0xF);
}
