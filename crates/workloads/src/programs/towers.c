/* towers — "The Stanford towers of Hanoi program" (Table 2). */

int moves = 0;
int pegs[3];

void move_disc(int from, int to) {
    pegs[from]--;
    pegs[to]++;
    moves++;
}

void hanoi(int n, int from, int to, int via) {
    if (n == 1) {
        move_disc(from, to);
        return;
    }
    hanoi(n - 1, from, via, to);
    move_disc(from, to);
    hanoi(n - 1, via, to, from);
}

int main(void) {
    pegs[0] = 14;
    pegs[1] = 0;
    pegs[2] = 0;
    hanoi(14, 0, 2, 1);
    /* 2^14 - 1 = 16383 moves; all discs on peg 2. */
    if (pegs[2] != 14) return -1;
    return moves & 0x7FFF; /* 16383 */
}
