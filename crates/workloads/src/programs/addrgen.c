/* addrgen — fusion-friendly extension workload (not in the paper's
 * Table 2).
 *
 * Scatter/gather address arithmetic over a dozen distinct global
 * arrays. Sixteen registers cannot keep twelve base addresses live
 * across the call-heavy loop, so the compiler re-materializes
 * `mvhi`/`ori` pairs inside the hot path — exactly the D16x lui+addi
 * fusion shape — and the counted loops contribute a steady
 * compare->branch stream on top. The fusion ablation should show its
 * largest savings here. */

int bank0[256];
int bank1[256];
int bank2[256];
int bank3[256];
int bank4[256];
int bank5[256];
int bank6[256];
int bank7[256];
int hist[64];
int perm[256];
int acc_lo = 0;
int acc_hi = 0;

void seed_banks(void) {
    int i;
    for (i = 0; i < 256; i++) {
        bank0[i] = i * 7 + 3;
        bank1[i] = i * 11 + 5;
        bank2[i] = i * 13 + 7;
        bank3[i] = i * 17 + 9;
        bank4[i] = i * 19 + 11;
        bank5[i] = i * 23 + 13;
        bank6[i] = i * 29 + 15;
        bank7[i] = i * 31 + 17;
        perm[i] = (i * 167 + 41) & 255;
    }
    for (i = 0; i < 64; i++) hist[i] = 0;
}

/* One gather across every bank at a permuted index. Each lane mixes in
 * a distinct 32-bit constant, which no 16-bit immediate field holds:
 * the compiler materializes every one as an `mvhi` + `ori` pair — the
 * lui+addi fusion shape — fresh on every call. */
int gather(int idx) {
    int j = perm[idx];
    int s = (bank0[j] ^ 0x12AB34CD) + (bank1[(j + 1) & 255] ^ 0x2BC45DE1);
    s += (bank2[(j + 2) & 255] ^ 0x3CD56EF2) + (bank3[(j + 3) & 255] ^ 0x4DE67A03);
    s += (bank4[(j + 5) & 255] ^ 0x5EF78B14) + (bank5[(j + 8) & 255] ^ 0x6FA89C25);
    s += (bank6[(j + 13) & 255] ^ 0x7AB9AD36) + (bank7[(j + 21) & 255] ^ 0x1BCABE47);
    return s;
}

/* Scatter the running sum back, touching two banks and the histogram,
 * with two more per-call large-constant materializations. */
void scatter(int idx, int v) {
    int j = perm[(idx + 127) & 255];
    bank0[j] = (bank0[j] + (v ^ 0x2CDBCF58)) & 0xFFFF;
    bank7[(j + 64) & 255] = (bank7[(j + 64) & 255] ^ (v + 0x3DECDA69)) & 0xFFFF;
    hist[v & 63]++;
}

int main(void) {
    int pass, i;
    seed_banks();
    for (pass = 0; pass < 6; pass++) {
        for (i = 0; i < 256; i++) {
            int v = gather(i);
            acc_lo = (acc_lo + v) & 0xFFFF;
            acc_hi = (acc_hi + (v >> 7)) & 0xFFFF;
            scatter(i, v);
        }
    }
    for (i = 0; i < 64; i++) acc_hi = (acc_hi + hist[i] * i) & 0xFFFF;
    return (acc_lo ^ acc_hi) & 0x7FFF;
}
