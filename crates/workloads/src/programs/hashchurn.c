/* hashchurn — curated extension workload: open-addressing hash-table
 * churn. A 512-slot linear-probe table with tombstones absorbs a
 * pseudo-random stream of interleaved inserts, lookups and deletes at
 * sustained ~60% load. The probe loop's trip count depends on the
 * table's evolving cluster structure, so both the branch pattern and
 * the access pattern are history-dependent — the classic symbol-table
 * inner loop. */

int keys[512];  /* 0 empty, -1 tombstone, else the key (>= 1) */
int vals[512];
int live = 0;
int probes = 0;

int hash(int k) {
    int h = k * 2654435;
    h ^= h >> 13;
    return h & 511;
}

/* Returns the slot holding `k`, or -1. */
int find(int k) {
    int i = hash(k);
    int step = 0;
    while (step < 512) {
        probes++;
        if (keys[i] == 0) return -1;
        if (keys[i] == k) return i;
        i = (i + 1) & 511;
        step++;
    }
    return -1;
}

/* Inserts or updates; returns 0 on table-full. */
int put(int k, int v) {
    int i = hash(k);
    int step = 0;
    int grave = -1;
    while (step < 512) {
        probes++;
        if (keys[i] == k) {
            vals[i] = v;
            return 1;
        }
        if (keys[i] == 0) {
            int slot = grave >= 0 ? grave : i;
            keys[slot] = k;
            vals[slot] = v;
            live++;
            return 1;
        }
        if (keys[i] == -1 && grave < 0) grave = i;
        i = (i + 1) & 511;
        step++;
    }
    if (grave >= 0) {
        keys[grave] = k;
        vals[grave] = v;
        live++;
        return 1;
    }
    return 0;
}

int del(int k) {
    int i = find(k);
    if (i < 0) return 0;
    keys[i] = -1;
    live--;
    return 1;
}

int main(void) {
    int x = 31337;
    int op;
    int hits = 0;
    int removed = 0;
    int check = 0;
    int i;
    for (op = 0; op < 6000; op++) {
        int k;
        int r;
        x ^= (x << 13) & 0xFFFFFF;
        x ^= x >> 17;
        x ^= (x << 5) & 0xFFFFFF;
        k = (x & 1023) + 1;
        r = (x >> 10) & 7;
        if (r < 4 && live < 300) {
            if (!put(k, (k * 3 + op) & 0xFFFF)) return -1;
        } else if (r < 6) {
            int s = find(k);
            if (s >= 0) {
                hits++;
                check = (check * 3 + vals[s]) & 0xFFFFFF;
            }
        } else {
            removed += del(k);
        }
    }
    for (i = 0; i < 512; i++) {
        if (keys[i] > 0) check = (check * 7 + keys[i] + vals[i]) & 0xFFFFFF;
    }
    check = (check * 7 + live) & 0xFFFFFF;
    check = (check * 7 + hits) & 0xFFFFFF;
    check = (check * 7 + removed) & 0xFFFFFF;
    check = (check * 7 + probes % 9973) & 0xFFFFFF;
    return check & 0x7FFF;
}
