/* whetstone — "The synthetic floating point benchmark" (Table 2): the
 * classic module structure (array elements, conditional jumps, integer
 * arithmetic, trig and transcendental functions) with the standard
 * functions implemented as polynomial/series approximations. */

double e1[5];
double t = 0.499975;
double t1 = 0.50025;
double t2 = 2.0;

double my_abs(double x) { return x < 0.0 ? -x : x; }

/* Range-reduced Taylor sine: adequate for |x| <= ~4 used here. */
double my_sin(double x) {
    double x2, term, sum;
    int k;
    while (x > 3.141592653589793) x = x - 6.283185307179586;
    while (x < -3.141592653589793) x = x + 6.283185307179586;
    x2 = x * x;
    term = x;
    sum = x;
    for (k = 1; k <= 7; k++) {
        term = -term * x2 / (double)((2 * k) * (2 * k + 1));
        sum = sum + term;
    }
    return sum;
}

double my_cos(double x) {
    return my_sin(x + 1.5707963267948966);
}

double my_atan(double x) {
    /* atan via the identity for |x|>1 and a series otherwise. */
    int invert = 0;
    double x2, term, sum;
    int k;
    double sign = 1.0;
    if (x < 0.0) { x = -x; sign = -1.0; }
    if (x > 1.0) { x = 1.0 / x; invert = 1; }
    x2 = x * x;
    term = x;
    sum = x;
    for (k = 1; k <= 14; k++) {
        term = -term * x2;
        sum = sum + term / (double)(2 * k + 1);
    }
    if (invert) sum = 1.5707963267948966 - sum;
    return sign * sum;
}

double my_exp(double x) {
    double term = 1.0, sum = 1.0;
    int k;
    for (k = 1; k <= 16; k++) {
        term = term * x / (double)k;
        sum = sum + term;
    }
    return sum;
}

double my_log(double x) {
    /* ln(x) via atanh series around 1: x in (0.5, 2) after scaling. */
    double scale = 0.0;
    double y, y2, term, sum;
    int k;
    if (x <= 0.0) return 0.0;
    while (x > 1.5) { x = x / 2.718281828459045; scale = scale + 1.0; }
    while (x < 0.6) { x = x * 2.718281828459045; scale = scale - 1.0; }
    y = (x - 1.0) / (x + 1.0);
    y2 = y * y;
    term = y;
    sum = y;
    for (k = 1; k <= 12; k++) {
        term = term * y2;
        sum = sum + term / (double)(2 * k + 1);
    }
    return 2.0 * sum + scale;
}

double my_sqrt(double v) {
    double x;
    int iter;
    if (v <= 0.0) return 0.0;
    x = v > 1.0 ? v / 2.0 : 1.0;
    for (iter = 0; iter < 30; iter++) {
        double nx = 0.5 * (x + v / x);
        if (my_abs(nx - x) < 1e-13) break;
        x = nx;
    }
    return x;
}

void pa(double *e) {
    int j;
    for (j = 0; j < 6; j++) {
        e[0] = (e[0] + e[1] + e[2] - e[3]) * t;
        e[1] = (e[0] + e[1] - e[2] + e[3]) * t;
        e[2] = (e[0] - e[1] + e[2] + e[3]) * t;
        e[3] = (-e[0] + e[1] + e[2] + e[3]) / t2;
    }
}

void p0(double *x, double *y, double *z) {
    *x = t * (*z + *y);
    *y = t * (*x + *z);
    *z = t * (*x + *y);
}

int main(void) {
    int n1 = 10, n2 = 12, n4 = 30, n6 = 20, n7 = 8, n8 = 60, n10 = 0, n11 = 30;
    double x1, x2, x3, x4, x, y, z;
    int i, j;
    double chk = 0.0;

    /* Module 1: simple identifiers */
    x1 = 1.0; x2 = -1.0; x3 = -1.0; x4 = -1.0;
    for (i = 0; i < n1; i++) {
        x1 = (x1 + x2 + x3 - x4) * t;
        x2 = (x1 + x2 - x3 + x4) * t;
        x3 = (x1 - x2 + x3 + x4) * t;
        x4 = (-x1 + x2 + x3 + x4) * t;
    }
    chk = chk + x1 + x2 + x3 + x4;

    /* Module 2: array elements */
    e1[0] = 1.0; e1[1] = -1.0; e1[2] = -1.0; e1[3] = -1.0;
    for (i = 0; i < n2; i++) {
        e1[0] = (e1[0] + e1[1] + e1[2] - e1[3]) * t;
        e1[1] = (e1[0] + e1[1] - e1[2] + e1[3]) * t;
        e1[2] = (e1[0] - e1[1] + e1[2] + e1[3]) * t;
        e1[3] = (-e1[0] + e1[1] + e1[2] + e1[3]) * t;
    }
    chk = chk + e1[0] + e1[1] + e1[2] + e1[3];

    /* Module 3: array as parameter */
    for (i = 0; i < n4; i++) pa(e1);
    chk = chk + e1[3];

    /* Module 4: conditional jumps */
    j = 1;
    for (i = 0; i < n6; i++) {
        if (j == 1) j = 2; else j = 3;
        if (j > 2) j = 0; else j = 1;
        if (j < 1) j = 1; else j = 0;
    }
    chk = chk + (double)j;

    /* Module 6: integer arithmetic */
    j = 1;
    {
        int k = 2, l = 3;
        for (i = 0; i < n8; i++) {
            j = j * (k - j) * (l - k);
            k = l * k - (l - j) * k;
            l = (l - k) * (k + j);
            e1[l - 2] = (double)(j + k + l);
            e1[k - 2] = (double)(j * k * l);
        }
    }
    chk = chk + e1[0] + e1[1];

    /* Module 7: trig functions */
    x = 0.5; y = 0.5;
    for (i = 0; i < n7; i++) {
        x = t * my_atan(t2 * my_sin(x) * my_cos(x) / (my_cos(x + y) + my_cos(x - y) - 1.0));
        y = t * my_atan(t2 * my_sin(y) * my_cos(y) / (my_cos(x + y) + my_cos(x - y) - 1.0));
    }
    chk = chk + x + y;

    /* Module 8: procedure calls */
    x = 1.0; y = 1.0; z = 1.0;
    for (i = 0; i < n8; i++) p0(&x, &y, &z);
    chk = chk + z;

    /* Module 10: integer arithmetic (paper keeps it empty: n10 = 0) */
    for (i = 0; i < n10; i++) { j = j + 1; }

    /* Module 11: standard functions */
    x = 0.75;
    for (i = 0; i < n11; i++) {
        x = my_sqrt(my_exp(my_log(x) / t1));
    }
    chk = chk + x;

    {
        int out = (int)(chk * 1000.0);
        if (out < 0) out = -out;
        return out & 0x7FFF;
    }
}
