/* bubblesort — "Sorting program from the Stanford suite" (Table 2).
 * Classic O(n^2) exchange sort over an LCG-filled array. */

int data[256];
int seed = 74755;

int rnd(void) {
    seed = (seed * 1309 + 13849) & 0xFFFF;
    return seed;
}

void fill(int n) {
    int i;
    for (i = 0; i < n; i++) data[i] = rnd();
}

void sort(int n) {
    int i, j, t;
    for (i = n - 1; i > 0; i--) {
        for (j = 0; j < i; j++) {
            if (data[j] > data[j + 1]) {
                t = data[j];
                data[j] = data[j + 1];
                data[j + 1] = t;
            }
        }
    }
}

int main(void) {
    int i, chk = 0, ordered = 1;
    fill(256);
    sort(256);
    for (i = 1; i < 256; i++) {
        if (data[i - 1] > data[i]) ordered = 0;
    }
    for (i = 0; i < 256; i++) chk = (chk + data[i] * (i + 1)) & 0x3FFF;
    return ordered * 10000 + (chk & 0xFFF);
}
