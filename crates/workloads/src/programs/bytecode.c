/* bytecode — curated extension workload: a stack-machine bytecode
 * interpreter. The dispatch loop is one long if/else ladder over twenty
 * opcodes (Mini-C has no `switch`, so this is exactly the lowered shape
 * a big switch becomes): an indirect-free but maximally branchy
 * dispatcher whose taken/not-taken pattern follows the executed opcode
 * stream. Three hand-assembled programs (sum of squares, subtraction
 * gcd, popcount-sum) run over a grid of inputs poked into the VM's
 * globals. */

char code[512];
int cp = 0;
int g[8];
int stack[32];
int hist[20];
int steps = 0;

void emit(int op) {
    code[cp] = (char)op;
    cp++;
}

void emit2(int op, int arg) {
    code[cp] = (char)op;
    code[cp + 1] = (char)arg;
    cp += 2;
}

/* Opcodes: 0 halt, 1 pushi, 2 add, 3 sub, 4 mul, 5 mod, 6 lt, 7 dup,
 * 8 drop, 9 load, 10 store, 11 jmp, 12 jz, 13 jnz, 14 inc, 15 dec,
 * 16 xor, 17 and, 18 shr1, 19 swap. */
int run(int entry) {
    int pc = entry;
    int sp = 0;
    int fuel = 100000;
    while (fuel > 0) {
        int op = code[pc] & 255;
        fuel--;
        steps++;
        hist[op]++;
        pc++;
        if (op == 0) {
            return stack[sp - 1];
        } else if (op == 1) {
            stack[sp] = code[pc] & 255;
            sp++;
            pc++;
        } else if (op == 2) {
            sp--;
            stack[sp - 1] = stack[sp - 1] + stack[sp];
        } else if (op == 3) {
            sp--;
            stack[sp - 1] = stack[sp - 1] - stack[sp];
        } else if (op == 4) {
            sp--;
            stack[sp - 1] = stack[sp - 1] * stack[sp];
        } else if (op == 5) {
            sp--;
            stack[sp - 1] = stack[sp - 1] % stack[sp];
        } else if (op == 6) {
            sp--;
            stack[sp - 1] = stack[sp - 1] < stack[sp] ? 1 : 0;
        } else if (op == 7) {
            stack[sp] = stack[sp - 1];
            sp++;
        } else if (op == 8) {
            sp--;
        } else if (op == 9) {
            stack[sp] = g[code[pc] & 7];
            sp++;
            pc++;
        } else if (op == 10) {
            sp--;
            g[code[pc] & 7] = stack[sp];
            pc++;
        } else if (op == 11) {
            pc = code[pc] & 255;
        } else if (op == 12) {
            sp--;
            pc = stack[sp] == 0 ? code[pc] & 255 : pc + 1;
        } else if (op == 13) {
            sp--;
            pc = stack[sp] != 0 ? code[pc] & 255 : pc + 1;
        } else if (op == 14) {
            stack[sp - 1]++;
        } else if (op == 15) {
            stack[sp - 1]--;
        } else if (op == 16) {
            sp--;
            stack[sp - 1] = stack[sp - 1] ^ stack[sp];
        } else if (op == 17) {
            sp--;
            stack[sp - 1] = stack[sp - 1] & stack[sp];
        } else if (op == 18) {
            stack[sp - 1] = stack[sp - 1] >> 1;
        } else if (op == 19) {
            int t = stack[sp - 1];
            stack[sp - 1] = stack[sp - 2];
            stack[sp - 2] = t;
        } else {
            return -2;
        }
    }
    return -1;
}

/* sum = (sum + i*i) % 251 for i = g4 down to 1; returns sum. */
int asm_sumsq(void) {
    int entry = cp;
    int top;
    int patch;
    emit2(1, 0);
    emit2(10, 0);
    emit2(9, 4);
    emit2(10, 1);
    top = cp;
    emit2(9, 1);
    patch = cp + 1;
    emit2(12, 0);
    emit2(9, 0);
    emit2(9, 1);
    emit(7);
    emit(4);
    emit(2);
    emit2(1, 251);
    emit(5);
    emit2(10, 0);
    emit2(9, 1);
    emit(15);
    emit2(10, 1);
    emit2(11, top);
    code[patch] = (char)cp;
    emit2(9, 0);
    emit(0);
    return entry;
}

/* Subtraction gcd of g4 and g5 (both >= 1); returns gcd. */
int asm_gcd(void) {
    int entry = cp;
    int top;
    int patch_end;
    int patch_else;
    emit2(9, 4);
    emit2(10, 0);
    emit2(9, 5);
    emit2(10, 1);
    top = cp;
    emit2(9, 1);
    patch_end = cp + 1;
    emit2(12, 0);
    emit2(9, 1);
    emit2(9, 0);
    emit(6);
    patch_else = cp + 1;
    emit2(12, 0);
    emit2(9, 0);
    emit2(9, 1);
    emit(3);
    emit2(10, 0);
    emit2(11, top);
    code[patch_else] = (char)cp;
    emit2(9, 1);
    emit2(9, 0);
    emit(3);
    emit2(10, 1);
    emit2(11, top);
    code[patch_end] = (char)cp;
    emit2(9, 0);
    emit(0);
    return entry;
}

/* Sum of popcounts of 1..g4; returns the total. */
int asm_popsum(void) {
    int entry = cp;
    int top;
    int inner;
    int patch_end;
    int patch_done;
    emit2(1, 0);
    emit2(10, 0);
    emit2(9, 4);
    emit2(10, 1);
    top = cp;
    emit2(9, 1);
    patch_end = cp + 1;
    emit2(12, 0);
    emit2(9, 1);
    emit2(10, 2);
    inner = cp;
    emit2(9, 2);
    patch_done = cp + 1;
    emit2(12, 0);
    emit2(9, 0);
    emit2(9, 2);
    emit2(1, 1);
    emit(17);
    emit(2);
    emit2(10, 0);
    emit2(9, 2);
    emit(18);
    emit2(10, 2);
    emit2(11, inner);
    code[patch_done] = (char)cp;
    emit2(9, 1);
    emit(15);
    emit2(10, 1);
    emit2(11, top);
    code[patch_end] = (char)cp;
    emit2(9, 0);
    emit(0);
    return entry;
}

int main(void) {
    int e_sumsq;
    int e_gcd;
    int e_pop;
    int trial;
    int x = 9001;
    int check = 0;
    int k;
    e_sumsq = asm_sumsq();
    e_gcd = asm_gcd();
    e_pop = asm_popsum();
    if (cp > 512) return -3;
    for (trial = 0; trial < 8; trial++) {
        int r;
        x ^= (x << 7) & 0xFFFF;
        x ^= x >> 9;
        x ^= (x << 8) & 0xFFFF;
        g[4] = (x & 127) + 20;
        r = run(e_sumsq);
        if (r < 0) return r;
        check = (check * 5 + r) & 0xFFFFFF;
        g[4] = (x & 255) + 1;
        g[5] = ((x >> 4) & 255) + 1;
        r = run(e_gcd);
        if (r < 0) return r;
        check = (check * 5 + r) & 0xFFFFFF;
        g[4] = (x & 63) + 8;
        r = run(e_pop);
        if (r < 0) return r;
        check = (check * 5 + r) & 0xFFFFFF;
    }
    for (k = 0; k < 20; k++) check = (check * 3 + hist[k] % 997) & 0xFFFFFF;
    check = (check * 3 + steps % 9973) & 0xFFFFFF;
    return check & 0x7FFF;
}
