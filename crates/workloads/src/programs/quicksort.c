/* quicksort — "The Stanford quicksort program" (Table 2).
 * Recursive Hoare partitioning over an LCG-filled array. */

int data[512];
int seed = 74755;

int rnd(void) {
    seed = (seed * 1309 + 13849) & 0xFFFF;
    return seed;
}

void qsort_range(int lo, int hi) {
    int i = lo, j = hi;
    int pivot = data[(lo + hi) / 2];
    while (i <= j) {
        while (data[i] < pivot) i++;
        while (pivot < data[j]) j--;
        if (i <= j) {
            int t = data[i];
            data[i] = data[j];
            data[j] = t;
            i++;
            j--;
        }
    }
    if (lo < j) qsort_range(lo, j);
    if (i < hi) qsort_range(i, hi);
}

int main(void) {
    int i, chk = 0, ordered = 1;
    for (i = 0; i < 512; i++) data[i] = rnd();
    qsort_range(0, 511);
    for (i = 1; i < 512; i++) {
        if (data[i - 1] > data[i]) ordered = 0;
    }
    for (i = 0; i < 512; i++) chk = (chk + data[i] * (i + 1)) & 0x3FFF;
    return ordered * 10000 + (chk & 0xFFF);
}
