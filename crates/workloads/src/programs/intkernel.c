/* intkernel — curated extension workload: dense integer arithmetic.
 * Three classic fixed-point kernels — a 16-tap FIR filter, a bitwise
 * CRC-16 over a byte buffer, and a blocked 8x8 integer matrix multiply
 * — chosen so the dynamic mix is dominated by multiply/add/shift with
 * long straight-line bodies and predictable short loops: the opposite
 * signature of the pointer-chasing and branchy workloads. */

int samples[2048];
int coeff[16];
int out[2048];
char bytes[2048];
int a[8][8];
int b[8][8];
int c[8][8];

void build(void) {
    int i;
    int j;
    int x = 777;
    for (i = 0; i < 2048; i++) {
        x ^= (x << 7) & 0xFFFF;
        x ^= x >> 9;
        x ^= (x << 8) & 0xFFFF;
        samples[i] = (x & 1023) - 512;
        bytes[i] = (char)(x & 255);
    }
    for (i = 0; i < 16; i++) coeff[i] = ((i * 37) % 64) - 32;
    for (i = 0; i < 8; i++) {
        for (j = 0; j < 8; j++) {
            a[i][j] = (i * 13 + j * 7) % 100 - 50;
            b[i][j] = (i * 5 + j * 11) % 100 - 50;
        }
    }
}

int fir(void) {
    int i;
    int t;
    int acc = 0;
    for (i = 16; i < 2048; i++) {
        int s = 0;
        for (t = 0; t < 16; t++) {
            s += samples[i - t] * coeff[t];
        }
        out[i] = s >> 6;
        acc = (acc + out[i]) & 0xFFFFFF;
    }
    return acc;
}

int crc16(void) {
    int crc = 0xFFFF;
    int i;
    int bit;
    for (i = 0; i < 2048; i++) {
        crc = crc ^ (bytes[i] & 255);
        for (bit = 0; bit < 8; bit++) {
            if (crc & 1) {
                crc = (crc >> 1) ^ 0xA001;
            } else {
                crc = crc >> 1;
            }
        }
    }
    return crc & 0xFFFF;
}

int matmul(void) {
    int i;
    int j;
    int k;
    int acc = 0;
    for (i = 0; i < 8; i++) {
        for (j = 0; j < 8; j++) {
            int s = 0;
            for (k = 0; k < 8; k++) {
                s += a[i][k] * b[k][j];
            }
            c[i][j] = s;
        }
    }
    for (i = 0; i < 8; i++) {
        for (j = 0; j < 8; j++) {
            acc = (acc * 3 + c[i][j]) & 0xFFFFFF;
        }
    }
    return acc;
}

int main(void) {
    int check = 0;
    int rep;
    build();
    for (rep = 0; rep < 4; rep++) {
        check = (check * 5 + fir()) & 0xFFFFFF;
        check = (check * 5 + crc16()) & 0xFFFFFF;
        check = (check * 5 + matmul()) & 0xFFFFFF;
        samples[rep * 100] += rep + 1;
        bytes[rep * 200] = (char)(bytes[rep * 200] + 1);
    }
    return check & 0x7FFF;
}
