/* ipl — "PostScript plotting package" (Table 2): the computational
 * core of a plotter — 2-D fixed-point transforms (scale/rotate via
 * integer approximations), window clipping, and Bresenham rasterization
 * into a bitmap, over a synthetic scene drawn repeatedly. */

char bitmap[1024]; /* 128*64/8 */

int sin_table[16] = {
    0, 98, 191, 275, 348, 407, 449, 473,
    481, 473, 449, 407, 348, 275, 191, 98
}; /* sin(k*pi/16) * 481, quarter-wave style table */

void clear_bitmap(void) {
    int i;
    for (i = 0; i < 128 * 64 / 8; i++) bitmap[i] = 0;
}

void set_pixel(int x, int y) {
    int idx;
    if (x < 0 || x >= 128 || y < 0 || y >= 64) return;
    idx = y * 16 + (x >> 3);
    bitmap[idx] = (char)(bitmap[idx] | (1 << (x & 7)));
}

int my_abs(int v) { return v < 0 ? -v : v; }

void draw_line(int x0, int y0, int x1, int y1) {
    int dx = my_abs(x1 - x0);
    int dy = -my_abs(y1 - y0);
    int sx = x0 < x1 ? 1 : -1;
    int sy = y0 < y1 ? 1 : -1;
    int err = dx + dy;
    while (1) {
        set_pixel(x0, y0);
        if (x0 == x1 && y0 == y1) break;
        {
            int e2 = 2 * err;
            if (e2 >= dy) {
                err += dy;
                x0 += sx;
            }
            if (e2 <= dx) {
                err += dx;
                y0 += sy;
            }
        }
    }
}

/* Fixed-point rotation using the table: angle in sixteenths of pi. */
void rotate(int x, int y, int angle, int *ox, int *oy) {
    int s, c;
    angle = angle & 31;
    s = angle < 16 ? sin_table[angle] : -sin_table[angle - 16];
    {
        int ca = (angle + 8) & 31;
        c = ca < 16 ? sin_table[ca] : -sin_table[ca - 16];
    }
    *ox = (x * c - y * s) / 481;
    *oy = (x * s + y * c) / 481;
}

/* Cohen-Sutherland style clip to the viewport. */
int outcode(int x, int y) {
    int code = 0;
    if (x < 0) code = code | 1;
    if (x > 127) code = code | 2;
    if (y < 0) code = code | 4;
    if (y > 63) code = code | 8;
    return code;
}

void draw_clipped(int x0, int y0, int x1, int y1) {
    int c0 = outcode(x0, y0);
    int c1 = outcode(x1, y1);
    int guard = 0;
    while (guard < 16) {
        if ((c0 | c1) == 0) {
            draw_line(x0, y0, x1, y1);
            return;
        }
        if (c0 & c1) return;
        {
            int co = c0 ? c0 : c1;
            int x = 0, y = 0;
            if (co & 8) {
                x = x0 + (x1 - x0) * (63 - y0) / (y1 - y0 == 0 ? 1 : y1 - y0);
                y = 63;
            } else if (co & 4) {
                x = x0 + (x1 - x0) * (0 - y0) / (y1 - y0 == 0 ? 1 : y1 - y0);
                y = 0;
            } else if (co & 2) {
                y = y0 + (y1 - y0) * (127 - x0) / (x1 - x0 == 0 ? 1 : x1 - x0);
                x = 127;
            } else {
                y = y0 + (y1 - y0) * (0 - x0) / (x1 - x0 == 0 ? 1 : x1 - x0);
                x = 0;
            }
            if (co == c0) {
                x0 = x;
                y0 = y;
                c0 = outcode(x0, y0);
            } else {
                x1 = x;
                y1 = y;
                c1 = outcode(x1, y1);
            }
        }
        guard++;
    }
}

/* Midpoint circle. */
void draw_circle(int cx, int cy, int r) {
    int x = r, y = 0;
    int err = 1 - r;
    while (x >= y) {
        set_pixel(cx + x, cy + y);
        set_pixel(cx + y, cy + x);
        set_pixel(cx - y, cy + x);
        set_pixel(cx - x, cy + y);
        set_pixel(cx - x, cy - y);
        set_pixel(cx - y, cy - x);
        set_pixel(cx + y, cy - x);
        set_pixel(cx + x, cy - y);
        y++;
        if (err < 0) {
            err += 2 * y + 1;
        } else {
            x--;
            err += 2 * (y - x) + 1;
        }
    }
}

/* Dashed variant of Bresenham: every other 3-pixel run is skipped. */
void draw_dashed(int x0, int y0, int x1, int y1) {
    int dx = my_abs(x1 - x0);
    int dy = -my_abs(y1 - y0);
    int sx = x0 < x1 ? 1 : -1;
    int sy = y0 < y1 ? 1 : -1;
    int err = dx + dy;
    int phase = 0;
    while (1) {
        if ((phase / 3) % 2 == 0) set_pixel(x0, y0);
        phase++;
        if (x0 == x1 && y0 == y1) break;
        {
            int e2 = 2 * err;
            if (e2 >= dy) { err += dy; x0 += sx; }
            if (e2 <= dx) { err += dx; y0 += sy; }
        }
    }
}

/* Horizontal-span triangle fill (flat rasterizer core). */
void fill_span(int y, int xa, int xb) {
    int x;
    if (xa > xb) { int t = xa; xa = xb; xb = t; }
    for (x = xa; x <= xb; x++) set_pixel(x, y);
}

int interp_x(int x0, int y0, int x1, int y1, int y) {
    if (y1 == y0) return x0;
    return x0 + (x1 - x0) * (y - y0) / (y1 - y0);
}

void fill_triangle(int x0, int y0, int x1, int y1, int x2, int y2) {
    /* Sort by y. */
    int t;
    if (y0 > y1) { t = y0; y0 = y1; y1 = t; t = x0; x0 = x1; x1 = t; }
    if (y0 > y2) { t = y0; y0 = y2; y2 = t; t = x0; x0 = x2; x2 = t; }
    if (y1 > y2) { t = y1; y1 = y2; y2 = t; t = x1; x1 = x2; x2 = t; }
    {
        int y;
        for (y = y0; y <= y2; y++) {
            int xe = interp_x(x0, y0, x2, y2, y);
            int xo;
            if (y < y1) xo = interp_x(x0, y0, x1, y1, y);
            else xo = interp_x(x1, y1, x2, y2, y);
            fill_span(y, xe, xo);
        }
    }
}

/* 5x7 digit glyphs (three digits suffice for axis labels). */
char glyphs[3][7] = {
    { 0x1F, 0x11, 0x11, 0x11, 0x11, 0x11, 0x1F }, /* 0 */
    { 0x04, 0x0C, 0x04, 0x04, 0x04, 0x04, 0x1F }, /* 1 */
    { 0x1F, 0x01, 0x01, 0x1F, 0x10, 0x10, 0x1F }  /* 2 */
};

void blit_glyph(int gx, int gy, int digit) {
    int row, col;
    for (row = 0; row < 7; row++) {
        for (col = 0; col < 5; col++) {
            if ((glyphs[digit][row] >> (4 - col)) & 1) {
                set_pixel(gx + col, gy + row);
            }
        }
    }
}

/* Polyline with per-vertex fixed-point scaling. */
void draw_polyline(int *xs, int *ys, int n, int scale_num, int scale_den) {
    int i;
    for (i = 1; i < n; i++) {
        draw_clipped(
            xs[i - 1] * scale_num / scale_den,
            ys[i - 1] * scale_num / scale_den,
            xs[i] * scale_num / scale_den,
            ys[i] * scale_num / scale_den);
    }
}

int poly_x[9];
int poly_y[9];

void draw_scene(int frame) {
    int k;
    /* A star of rotated spokes plus a bounding box, shifted per frame. */
    for (k = 0; k < 24; k++) {
        int ox, oy;
        rotate(50, 0, k + frame, &ox, &oy);
        draw_clipped(64, 32, 64 + ox, 32 + oy);
    }
    draw_line(2, 2, 125, 2);
    draw_line(125, 2, 125, 61);
    draw_line(125, 61, 2, 61);
    draw_line(2, 61, 2, 2);
    for (k = 0; k < 8; k++) {
        draw_clipped(-20 + frame * 3, k * 9, 150 - frame * 3, 63 - k * 9);
    }
    /* Circles of shrinking radius at the plot origin. */
    for (k = 1; k <= 3; k++) {
        draw_circle(30 + frame, 30, 6 * k);
    }
    /* A filled marker triangle and a dashed trend line. */
    fill_triangle(90, 10 + frame, 100, 20 + frame, 82, 24);
    draw_dashed(4, 60 - frame, 124, 4 + frame);
    /* Axis labels. */
    blit_glyph(4, 4, frame % 3);
    blit_glyph(10, 4, (frame + 1) % 3);
    /* A scaled polyline wave. */
    for (k = 0; k < 9; k++) {
        poly_x[k] = k * 14;
        poly_y[k] = 32 + (sin_table[(k * 2 + frame) & 15] * 20) / 481;
    }
    draw_polyline(poly_x, poly_y, 9, 9, 10);
}

int main(void) {
    int frame, i;
    int chk = 0;
    for (frame = 0; frame < 10; frame++) {
        clear_bitmap();
        draw_scene(frame);
        for (i = 0; i < 128 * 64 / 8; i++) {
            chk = (chk * 131 + bitmap[i]) & 0xFFFF;
        }
    }
    return chk & 0x7FFF;
}
