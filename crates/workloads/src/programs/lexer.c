/* lexer — curated extension workload: a hand-written scanner for a
 * C-like token set over a synthetic source buffer. Unlike `fsm` (one
 * table lookup per byte) this is the open-coded character-class ladder
 * every real compiler front end carries: multi-character operators
 * resolved by lookahead, keyword recognition by chained string
 * compares, comment and string-literal modes — short data-dependent
 * branches in every direction, almost no arithmetic. */

char input[4096];
int ilen = 0;

int counts[6]; /* 0 ident, 1 keyword, 2 number, 3 string, 4 op, 5 punct */
int ident_hash = 0;
int num_sum = 0;
int tokens = 0;

void put(char c) {
    input[ilen] = c;
    ilen++;
}

void frag(char *s) {
    int i = 0;
    while (s[i]) {
        put(s[i]);
        i++;
    }
}

void build_input(void) {
    int rep;
    for (rep = 0; rep < 6; rep++) {
        frag("int v");
        put((char)('a' + rep));
        frag(" = 0x1F + 42;\n");
        frag("while (v");
        put((char)('a' + rep));
        frag(" >= 10 && flag != 0) { v");
        put((char)('a' + rep));
        frag("--; total += base[idx] * 3; }\n");
        /* A line comment, assembled from chars so the host compiler
         * does not see comment markers inside this source. */
        put('/');
        put('/');
        frag(" trailing note 123\n");
        frag("if (p->next == 0) { s = \"done\"; } else { n = n / 2; }\n");
        put('/');
        put('*');
        frag(" block ");
        put('*');
        put('/');
        frag(" return total <= limit ? total : limit;\n");
    }
    put((char)0);
}

int is_alpha(int c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
}

int is_digit(int c) {
    return c >= '0' && c <= '9';
}

int is_hex(int c) {
    return is_digit(c) || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F');
}

int eq(char *a, char *b) {
    int i = 0;
    while (a[i] && b[i] && a[i] == b[i]) i++;
    return a[i] == b[i];
}

char buf[32];

int lex(void) {
    int i = 0;
    while (input[i]) {
        int c = input[i] & 255;
        if (c == ' ' || c == '\t' || c == '\n') {
            i++;
        } else if (c == '/' && input[i + 1] == '/') {
            while (input[i] && input[i] != '\n') i++;
        } else if (c == '/' && input[i + 1] == '*') {
            i += 2;
            while (input[i] && !(input[i] == '*' && input[i + 1] == '/')) i++;
            if (input[i]) i += 2;
        } else if (is_alpha(c)) {
            int n = 0;
            while (is_alpha(input[i] & 255) || is_digit(input[i] & 255)) {
                if (n < 31) {
                    buf[n] = input[i];
                    n++;
                }
                i++;
            }
            buf[n] = (char)0;
            if (eq(buf, "if") || eq(buf, "else") || eq(buf, "while") || eq(buf, "int") ||
                eq(buf, "return")) {
                counts[1]++;
            } else {
                int k;
                counts[0]++;
                for (k = 0; k < n; k++) {
                    ident_hash = (ident_hash * 31 + buf[k]) & 0xFFFFFF;
                }
            }
            tokens++;
        } else if (is_digit(c)) {
            int v = 0;
            if (c == '0' && (input[i + 1] == 'x' || input[i + 1] == 'X')) {
                i += 2;
                while (is_hex(input[i] & 255)) {
                    int d = input[i] & 255;
                    if (is_digit(d)) {
                        v = v * 16 + (d - '0');
                    } else if (d >= 'a') {
                        v = v * 16 + (d - 'a' + 10);
                    } else {
                        v = v * 16 + (d - 'A' + 10);
                    }
                    i++;
                }
            } else {
                while (is_digit(input[i] & 255)) {
                    v = v * 10 + (input[i] - '0');
                    i++;
                }
            }
            num_sum = (num_sum + v) & 0xFFFFFF;
            counts[2]++;
            tokens++;
        } else if (c == '"') {
            i++;
            while (input[i] && input[i] != '"') i++;
            if (input[i]) i++;
            counts[3]++;
            tokens++;
        } else if (c == '=' || c == '!' || c == '<' || c == '>' || c == '+' || c == '-' ||
                   c == '&' || c == '|' || c == '*' || c == '/' || c == '?' || c == ':') {
            int c2 = input[i + 1] & 255;
            if ((c2 == '=' && c != '*' && c != '/' && c != '?' && c != ':') ||
                (c == '+' && c2 == '+') || (c == '-' && c2 == '-') || (c == '&' && c2 == '&') ||
                (c == '|' && c2 == '|') || (c == '-' && c2 == '>')) {
                i += 2;
            } else {
                i++;
            }
            counts[4]++;
            tokens++;
        } else {
            counts[5]++;
            tokens++;
            i++;
        }
    }
    return tokens;
}

int main(void) {
    int pass;
    int check = 0;
    int k;
    build_input();
    if (ilen >= 4096) return -1;
    for (pass = 0; pass < 8; pass++) lex();
    for (k = 0; k < 6; k++) check = (check * 31 + counts[k]) & 0xFFFFFF;
    check = (check * 31 + ident_hash % 9973) & 0xFFFFFF;
    check = (check * 31 + num_sum % 9973) & 0xFFFFFF;
    check = (check * 31 + tokens) & 0xFFFFFF;
    return check & 0x7FFF;
}
