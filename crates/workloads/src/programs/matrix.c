/* matrix — "Gaussian elimination" (Table 2): dense elimination with
 * back-substitution on a well-conditioned synthetic system. */

double m[20][21]; /* augmented matrix */
double x[20];

void build(int n) {
    int i, j;
    for (i = 0; i < n; i++) {
        double rowsum = 0.0;
        for (j = 0; j < n; j++) {
            if (i == j) m[i][j] = (double)(n + 3);
            else m[i][j] = 1.0 / (double)(i + j + 1);
            rowsum = rowsum + m[i][j] * (double)(j + 1);
        }
        m[i][n] = rowsum; /* solution is x[j] = j+1 */
    }
}

void eliminate(int n) {
    int k, i, j;
    for (k = 0; k < n; k++) {
        /* Partial pivot. */
        int p = k;
        double best = m[k][k] < 0.0 ? -m[k][k] : m[k][k];
        for (i = k + 1; i < n; i++) {
            double v = m[i][k] < 0.0 ? -m[i][k] : m[i][k];
            if (v > best) { best = v; p = i; }
        }
        if (p != k) {
            for (j = k; j <= n; j++) {
                double t = m[k][j];
                m[k][j] = m[p][j];
                m[p][j] = t;
            }
        }
        for (i = k + 1; i < n; i++) {
            double f = m[i][k] / m[k][k];
            for (j = k; j <= n; j++) {
                m[i][j] = m[i][j] - f * m[k][j];
            }
        }
    }
}

void back_substitute(int n) {
    int i, j;
    for (i = n - 1; i >= 0; i--) {
        double s = m[i][n];
        for (j = i + 1; j < n; j++) s = s - m[i][j] * x[j];
        x[i] = s / m[i][i];
    }
}

int main(void) {
    int n = 20, i;
    double err = 0.0;
    build(n);
    eliminate(n);
    back_substitute(n);
    for (i = 0; i < n; i++) {
        double d = x[i] - (double)(i + 1);
        if (d < 0.0) d = -d;
        err = err + d;
    }
    {
        int chk = (int)(err * 1000000.0);
        if (chk < 0) chk = -chk;
        return chk < 100 ? 4242 : chk & 0x7FFF;
    }
}
