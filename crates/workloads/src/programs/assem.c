/* assem — "The D16 assembler" (Table 2): a real two-pass assembler for a
 * toy 16-bit instruction set, run over an embedded source program.
 * Exercises the shapes the original has: line scanning, mnemonic lookup
 * by string compare, a symbol table, expression-free operand parsing,
 * pass-one layout and pass-two encoding. */

char source[2560] =
    "start:  mvi r2 0\n"
    "        mvi r3 100\n"
    "loop:   add r2 r3\n"
    "        subi r3 1\n"
    "        cmp r3 r0\n"
    "        bnz loop\n"
    "        ld r4 r2\n"
    "        st r4 r2\n"
    "        shl r4 2\n"
    "        shr r4 1\n"
    "        xor r4 r2\n"
    "        and r4 r3\n"
    "        or  r4 r2\n"
    "        jmp start\n"
    "second: mvi r5 7\n"
    "        add r5 r5\n"
    "        cmp r5 r0\n"
    "        bz  second\n"
    "        bnz loop\n"
    "        jmp end\n"
    "third:  ld r6 r5\n"
    "        st r6 r5\n"
    "        add r6 r2\n"
    "        sub r6 r3\n"
    "        shl r6 3\n"
    "        bnz third\n"
    "        mvi r7 255\n"
    "        and r7 r6\n"
    "        jmp second\n"
    "fourth: xor r1 r1\n"
    "        add r1 r2\n"
    "        add r1 r3\n"
    "        add r1 r4\n"
    "        bz  fourth\n"
    "        jmp third\n"
    "end:    halt\n";

char mnemonics[16][6] = {
    "mvi", "add", "sub", "subi", "cmp", "bnz", "bz", "jmp",
    "ld", "st", "shl", "shr", "xor", "and", "or", "halt"
};
int operand_kinds[16] = {
    /* 0 = reg,imm  1 = reg,reg  2 = label  3 = none */
    0, 1, 1, 0, 1, 2, 2, 2, 1, 1, 0, 0, 1, 1, 1, 3
};

char sym_names[32][12];
int sym_addr[32];
int nsyms = 0;

int output[128];
int nout = 0;

int str_eq(char *a, char *b) {
    while (*a && *a == *b) { a++; b++; }
    return *a == *b;
}

int lookup_sym(char *name) {
    int i;
    for (i = 0; i < nsyms; i++) {
        if (str_eq(sym_names[i], name)) return sym_addr[i];
    }
    return -1;
}

void define_sym(char *name, int addr) {
    int k = 0;
    while (name[k] && k < 11) {
        sym_names[nsyms][k] = name[k];
        k++;
    }
    sym_names[nsyms][k] = 0;
    sym_addr[nsyms] = addr;
    nsyms++;
}

int find_mnemonic(char *m) {
    int i;
    for (i = 0; i < 16; i++) {
        if (str_eq(mnemonics[i], m)) return i;
    }
    return -1;
}

/* Scanning state shared by both passes. */
int pos = 0;

int at_end(void) { return source[pos] == 0; }

void skip_spaces(void) {
    while (source[pos] == ' ') pos++;
}

int scan_word(char *buf, int max) {
    int k = 0;
    skip_spaces();
    while (source[pos] && source[pos] != ' ' && source[pos] != '\n'
           && source[pos] != ':' && k < max - 1) {
        buf[k] = source[pos];
        k++;
        pos++;
    }
    buf[k] = 0;
    return k;
}

int scan_number(void) {
    int v = 0;
    skip_spaces();
    while (source[pos] >= '0' && source[pos] <= '9') {
        v = v * 10 + (source[pos] - '0');
        pos++;
    }
    return v;
}

int scan_register(void) {
    skip_spaces();
    if (source[pos] == 'r') {
        pos++;
        return scan_number();
    }
    return -1;
}

void skip_line(void) {
    while (source[pos] && source[pos] != '\n') pos++;
    if (source[pos] == '\n') pos++;
}

/* One pass over the source. In pass one (encode == 0) labels are
 * collected; in pass two instructions are encoded. */
void run_pass(int encode) {
    char word[16];
    int addr = 0;
    pos = 0;
    while (!at_end()) {
        skip_spaces();
        if (source[pos] == '\n') {
            pos++;
            continue;
        }
        scan_word(word, 16);
        if (source[pos] == ':') {
            pos++;
            if (!encode) define_sym(word, addr);
            scan_word(word, 16);
        }
        if (word[0] == 0) {
            skip_line();
            continue;
        }
        {
            int op = find_mnemonic(word);
            int insn = op << 12;
            if (op < 0) {
                skip_line();
                continue;
            }
            if (operand_kinds[op] == 0) {
                int r = scan_register();
                int v = scan_number();
                insn = insn | (r << 8) | (v & 0xFF);
            } else if (operand_kinds[op] == 1) {
                int r1 = scan_register();
                int r2 = scan_register();
                insn = insn | (r1 << 8) | (r2 << 4);
            } else if (operand_kinds[op] == 2) {
                char label[16];
                scan_word(label, 16);
                if (encode) {
                    int target = lookup_sym(label);
                    insn = insn | (target & 0xFFF);
                }
            }
            if (encode) {
                output[nout] = insn;
                nout++;
            }
            addr++;
        }
        skip_line();
    }
}

/* --- listing generation: hex rendering of the object code --- */

char listing[1024];
int listing_len = 0;

char hex_digit(int v) {
    v = v & 15;
    if (v < 10) return (char)('0' + v);
    return (char)('a' + v - 10);
}

void render_listing(void) {
    int i, k;
    listing_len = 0;
    for (i = 0; i < nout && listing_len + 6 < 1024; i++) {
        for (k = 12; k >= 0; k = k - 4) {
            listing[listing_len] = hex_digit(output[i] >> k);
            listing_len++;
        }
        listing[listing_len] = '\n';
        listing_len++;
    }
}

int listing_checksum(void) {
    int i, h = 0;
    for (i = 0; i < listing_len; i++) {
        h = (h * 131 + listing[i]) & 0xFFFF;
    }
    return h;
}

/* --- diagnostics: operand range checking over the object code --- */

int check_ranges(void) {
    int i, errors = 0;
    for (i = 0; i < nout; i++) {
        int op = (output[i] >> 12) & 15;
        if (operand_kinds[op] == 0) {
            int reg = (output[i] >> 8) & 15;
            if (reg > 7) errors++;
        } else if (operand_kinds[op] == 2) {
            int target = output[i] & 0xFFF;
            if (target >= nout) errors++;
        }
    }
    return errors;
}

/* --- statistics: opcode histogram, as assemblers report --- */

int op_histogram[16];

void count_opcodes(void) {
    int i;
    for (i = 0; i < 16; i++) op_histogram[i] = 0;
    for (i = 0; i < nout; i++) {
        op_histogram[(output[i] >> 12) & 15]++;
    }
}

int histogram_top(void) {
    int i, best = 0, arg = 0;
    for (i = 0; i < 16; i++) {
        if (op_histogram[i] > best) {
            best = op_histogram[i];
            arg = i;
        }
    }
    return arg * 256 + best;
}

int main(void) {
    int i, rounds, chk = 0, lst = 0, diag = 0;
    for (rounds = 0; rounds < 6; rounds++) {
        nsyms = 0;
        nout = 0;
        run_pass(0);
        run_pass(1);
        for (i = 0; i < nout; i++) {
            chk = (chk * 37 + output[i]) & 0xFFFF;
        }
        render_listing();
        lst = (lst + listing_checksum()) & 0xFFFF;
        diag = diag + check_ranges();
        count_opcodes();
    }
    if (nsyms != 6) return -1;
    return (chk + nout + (lst & 0xFF) + diag + histogram_top()) & 0x7FFF;
}
