/* compress — 1992-era suite shape: LZW compression in the style of the
 * Unix `compress` utility (the SPEC'92 member). The hot loop hashes a
 * (prefix-code, byte) pair into an open chained dictionary probe —
 * `compress`'s own double-hash scheme reduced to our scale — and either
 * extends the current match or emits a code and adds a dictionary
 * entry. Input is a synthetic English-like buffer with enough repeated
 * phrases that the dictionary actually pays. The checksum folds the
 * emitted code stream, the final dictionary size, and a decompression
 * replay that must reproduce the input exactly. */

char text[4096];
int tlen = 0;

int dprefix[1024];
int dchar[1024];
int htab[2048]; /* hash -> dictionary code + 1, 0 = empty */
int dsize;

int codes[4096];
int ncodes = 0;

char decoded[4096];
int dlen = 0;
char revbuf[64];

void frag(char *s) {
    int i = 0;
    while (s[i]) {
        text[tlen] = s[i];
        tlen++;
        i++;
    }
}

void build_text(void) {
    int rep;
    for (rep = 0; rep < 9; rep++) {
        frag("the quick brown fox jumps over the lazy dog ");
        frag("and the band played on and on and on ");
        if (rep % 2 == 0) frag("pack my box with five dozen liquor jugs ");
        if (rep % 3 == 0) frag("now is the time for all good men to come to the aid ");
        frag("abcabcabcabc aaaaaaaa ");
    }
    text[tlen] = (char)0;
}

int hash(int prefix, int c) {
    int h = (prefix << 8) ^ (c * 61);
    h ^= h >> 7;
    return h & 2047;
}

/* Finds code for (prefix, c), or -1; linear rehash like compress's
 * secondary probe. */
int dict_find(int prefix, int c) {
    int h = hash(prefix, c);
    while (htab[h] != 0) {
        int code = htab[h] - 1;
        if (dprefix[code] == prefix && dchar[code] == c) return code;
        h = (h + 1) & 2047;
    }
    return -1;
}

void dict_add(int prefix, int c) {
    int h = hash(prefix, c);
    while (htab[h] != 0) h = (h + 1) & 2047;
    dprefix[dsize] = prefix;
    dchar[dsize] = c;
    htab[h] = dsize + 1;
    dsize++;
}

void do_compress(void) {
    int i;
    int prefix = text[0] & 255;
    dsize = 256; /* codes 0..255 are the single bytes */
    for (i = 1; i < tlen; i++) {
        int c = text[i] & 255;
        int code = dict_find(prefix, c);
        if (code >= 0) {
            prefix = code;
        } else {
            codes[ncodes] = prefix;
            ncodes++;
            if (dsize < 1024) dict_add(prefix, c);
            prefix = c;
        }
    }
    codes[ncodes] = prefix;
    ncodes++;
}

/* Emits the byte string for `code` (stored reversed up the prefix
 * chain) into decoded[]. */
void expand(int code) {
    int n = 0;
    while (code >= 256 && n < 62) {
        revbuf[n] = (char)dchar[code];
        n++;
        code = dprefix[code];
    }
    revbuf[n] = (char)code;
    n++;
    while (n > 0) {
        n--;
        decoded[dlen] = revbuf[n];
        dlen++;
    }
}

int do_decompress(void) {
    int k;
    for (k = 0; k < ncodes; k++) {
        expand(codes[k]);
    }
    if (dlen != tlen) return 0;
    for (k = 0; k < tlen; k++) {
        if (decoded[k] != text[k]) return 0;
    }
    return 1;
}

int main(void) {
    int check = 0;
    int k;
    build_text();
    if (tlen >= 4000) return -1;
    do_compress();
    if (!do_decompress()) return -2;
    for (k = 0; k < ncodes; k++) {
        check = (check * 17 + codes[k]) & 0xFFFFFF;
    }
    check = (check * 7 + dsize) & 0xFFFFFF;
    check = (check * 7 + ncodes) & 0xFFFFFF;
    /* ratio in percent: emitted codes per input byte */
    check = (check * 7 + (ncodes * 100) / tlen) & 0xFFFFFF;
    return check & 0x7FFF;
}
