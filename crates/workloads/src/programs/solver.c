/* solver — "Newton-Raphson iterative solver" (Table 2): root finding
 * over a family of cubic polynomials plus Newton square roots. */

double coeff_a[40];
double coeff_b[40];
double coeff_c[40];

double fabs_(double x) {
    return x < 0.0 ? -x : x;
}

/* f(x) = x^3 + a x^2 + b x + c */
double f(double x, double a, double b, double c) {
    return ((x + a) * x + b) * x + c;
}

double fprime(double x, double a, double b) {
    return (3.0 * x + 2.0 * a) * x + b;
}

double newton_root(double a, double b, double c) {
    /* Start above every root: the cubic is monotone there, so Newton
     * descends to the largest (only) real root without oscillation. */
    double x = 30.0;
    int iter = 0;
    while (iter < 100) {
        double fx = f(x, a, b, c);
        double d = fprime(x, a, b);
        double step;
        if (fabs_(fx) < 1e-12) break;
        if (fabs_(d) < 1e-9) d = 1.0;
        step = fx / d;
        x = x - step;
        if (fabs_(step) < 1e-13) break;
        iter++;
    }
    return x;
}

double newton_sqrt(double v) {
    double x = v > 1.0 ? v / 2.0 : 1.0;
    int iter = 0;
    if (v <= 0.0) return 0.0;
    while (iter < 40) {
        double nx = 0.5 * (x + v / x);
        if (fabs_(nx - x) < 1e-12) break;
        x = nx;
        iter++;
    }
    return x;
}

int main(void) {
    int i;
    double total = 0.0;
    /* Build polynomials with a known root at r = i/4 + 1:
     * (x - r)(x^2 + x + 2) = x^3 + (1-r)x^2 + (2-r)x - 2r */
    for (i = 0; i < 40; i++) {
        double r = (double)i / 4.0 + 1.0;
        coeff_a[i] = 1.0 - r;
        coeff_b[i] = 2.0 - r;
        coeff_c[i] = -2.0 * r;
    }
    for (i = 0; i < 40; i++) {
        double root = newton_root(coeff_a[i], coeff_b[i], coeff_c[i]);
        double want = (double)i / 4.0 + 1.0;
        total = total + fabs_(root - want);
        total = total + fabs_(newton_sqrt(want * want) - want);
    }
    {
        int chk = (int)(total * 1000000.0);
        if (chk < 0) chk = -chk;
        return chk < 100 ? 3131 : chk & 0x7FFF;
    }
}
