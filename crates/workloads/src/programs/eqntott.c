/* eqntott — 1992-era suite shape: boolean product-term sorting and
 * reduction in the style of the SPEC'92 `eqntott` truth-table
 * generator. Terms over 16 inputs are 2-bit-coded (0, 1, don't-care);
 * the dominant work is `cmppt`, the per-position lexicographic
 * comparator driving a recursive quicksort — eqntott's actual hot
 * function — followed by duplicate elimination and repeated
 * single-literal cube merging until a fixpoint. */

int care[256]; /* bit set = position is 0/1, clear = don't-care */
int val[256];  /* value bits, masked by care */
int nterms;
int cmps = 0;

void gen_terms(void) {
    int i;
    int x = 4177;
    for (i = 0; i < 256; i++) {
        int r1;
        int r2;
        int r3;
        x ^= (x << 13) & 0xFFFFFF;
        x ^= x >> 17;
        x ^= (x << 5) & 0xFFFFFF;
        r1 = x & 0xFFFF;
        x ^= (x << 13) & 0xFFFFFF;
        x ^= x >> 17;
        x ^= (x << 5) & 0xFFFFFF;
        r2 = x & 0xFFFF;
        x ^= (x << 13) & 0xFFFFFF;
        x ^= x >> 17;
        x ^= (x << 5) & 0xFFFFFF;
        r3 = x & 0xFFFF;
        /* Bias toward mostly-specified terms, like real PLA tables. */
        care[i] = r1 | r2;
        val[i] = r3 & care[i];
    }
    nterms = 256;
}

/* eqntott's cmppt: compare two terms position by position, 0 < 1 <
 * don't-care. */
int cmppt(int i, int j) {
    int p;
    cmps++;
    for (p = 15; p >= 0; p--) {
        int bit = 1 << p;
        int a = (care[i] & bit) ? ((val[i] & bit) ? 1 : 0) : 2;
        int b = (care[j] & bit) ? ((val[j] & bit) ? 1 : 0) : 2;
        if (a < b) return -1;
        if (a > b) return 1;
    }
    return 0;
}

void swap_terms(int i, int j) {
    int t = care[i];
    care[i] = care[j];
    care[j] = t;
    t = val[i];
    val[i] = val[j];
    val[j] = t;
}

void qsort_terms(int lo, int hi) {
    int pivot;
    int i;
    int last;
    if (lo >= hi) return;
    pivot = lo + (hi - lo) / 2;
    swap_terms(lo, pivot);
    last = lo;
    for (i = lo + 1; i <= hi; i++) {
        if (cmppt(i, lo) < 0) {
            last++;
            swap_terms(last, i);
        }
    }
    swap_terms(lo, last);
    qsort_terms(lo, last - 1);
    qsort_terms(last + 1, hi);
}

void dedupe(void) {
    int r;
    int w = 1;
    for (r = 1; r < nterms; r++) {
        if (cmppt(r, w - 1) != 0) {
            care[w] = care[r];
            val[w] = val[r];
            w++;
        }
    }
    nterms = w;
}

/* One reduction pass: merge any two terms with identical care masks
 * whose values differ in exactly one bit, dropping that literal.
 * Returns the number of merges. */
int merge_pass(void) {
    int i;
    int j;
    int merged = 0;
    for (i = 0; i < nterms; i++) {
        if (care[i] < 0) continue;
        for (j = i + 1; j < nterms; j++) {
            int d;
            if (care[j] != care[i]) continue;
            d = val[i] ^ val[j];
            if (d != 0 && (d & (d - 1)) == 0) {
                care[i] = care[i] & ~d;
                val[i] = val[i] & care[i];
                care[j] = -1;
                merged++;
                break;
            }
        }
    }
    /* Compact out the killed terms. */
    j = 0;
    for (i = 0; i < nterms; i++) {
        if (care[i] >= 0) {
            care[j] = care[i];
            val[j] = val[i];
            j++;
        }
    }
    nterms = j;
    return merged;
}

int main(void) {
    int check = 0;
    int passes = 0;
    int k;
    gen_terms();
    qsort_terms(0, nterms - 1);
    dedupe();
    while (merge_pass() > 0 && passes < 20) {
        qsort_terms(0, nterms - 1);
        dedupe();
        passes++;
    }
    for (k = 0; k < nterms; k++) {
        check = (check * 13 + care[k]) & 0xFFFFFF;
        check = (check * 13 + val[k]) & 0xFFFFFF;
    }
    check = (check * 7 + nterms) & 0xFFFFFF;
    check = (check * 7 + passes) & 0xFFFFFF;
    check = (check * 7 + cmps % 9973) & 0xFFFFFF;
    return check & 0x7FFF;
}
