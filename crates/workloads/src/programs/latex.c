/* latex — "The typesetter" (Table 2): the text-processing shape of a
 * paragraph formatter, scaled to have interesting cache behavior like the
 * original (whose binary is ~200KB): tokenizing, several distinct
 * formatting passes (fill, justify, center, ragged-right, hanging
 * indent), hyphenation scanning, word-frequency accounting, page makeup
 * and a final galley checksum, all hot in every iteration. */

char manuscript[512] =
    "in any stored program computer system information is constantly "
    "transferred between the memory and the instruction processor "
    "machine instructions are a major portion of this traffic since "
    "transfer bandwidth is a limited resource inefficiency in the "
    "encoding of instruction information can have definite hardware "
    "and performance costs ";

char corpus[12288];
int corpus_len = 0;

char words[1024][20];
int word_len[1024];
int nwords = 0;

char page[96][84];
int nlines = 0;

int freq_table[512];
int out_chk = 0;

/* --- corpus construction: repeat the manuscript with variations --- */

void build_corpus(void) {
    int i = 0, j, rep = 0;
    while (i + 512 < 12288) {
        for (j = 0; manuscript[j]; j++) {
            char c = manuscript[j];
            /* Sprinkle variation so words differ across repetitions. */
            if (c == 'e' && ((rep + j) & 7) == 0) c = 'E';
            corpus[i] = c;
            i++;
        }
        rep++;
    }
    corpus[i] = 0;
    corpus_len = i;
}

/* --- tokenizing --- */

int is_space(char c) {
    return c == ' ' || c == '\n' || c == '\t';
}

void tokenize_words(void) {
    int i = 0, w = 0, k;
    nwords = 0;
    while (corpus[i] && w < 1024) {
        while (is_space(corpus[i])) i++;
        if (!corpus[i]) break;
        k = 0;
        while (corpus[i] && !is_space(corpus[i]) && k < 19) {
            words[w][k] = corpus[i];
            k++;
            i++;
        }
        while (corpus[i] && !is_space(corpus[i])) i++;
        words[w][k] = 0;
        word_len[w] = k;
        w++;
    }
    nwords = w;
}

/* --- the line buffer --- */

char line[96];
int line_pos = 0;
int line_words = 0;

void line_reset(void) {
    line_pos = 0;
    line_words = 0;
}

int line_append(char *word, int len) {
    int k;
    if (line_pos + len + (line_words ? 1 : 0) > 84) return 0;
    if (line_words) {
        line[line_pos] = ' ';
        line_pos++;
    }
    for (k = 0; k < len; k++) {
        line[line_pos] = word[k];
        line_pos++;
    }
    line_words++;
    return 1;
}

void ship_line(char *buf, int len) {
    int k;
    if (nlines >= 96) nlines = 0;
    for (k = 0; k < len && k < 83; k++) page[nlines][k] = buf[k];
    page[nlines][k] = 0;
    nlines++;
    for (k = 0; k < len; k++) out_chk = (out_chk * 31 + buf[k]) & 0xFFFF;
}

/* --- pass 1: greedy fill (ragged right) --- */

void pass_fill(int lo, int hi) {
    int w;
    line_reset();
    for (w = lo; w < hi; w++) {
        if (!line_append(words[w], word_len[w])) {
            ship_line(line, line_pos);
            line_reset();
            line_append(words[w], word_len[w]);
        }
    }
    if (line_pos) ship_line(line, line_pos);
}

/* --- pass 2: full justification (distribute glue) --- */

char jbuf[96];

void justify_line(int measure) {
    int gaps = line_words - 1;
    int extra = measure - line_pos;
    int i, g = 0, o = 0, k;
    if (gaps < 1 || extra <= 0) {
        ship_line(line, line_pos);
        return;
    }
    for (i = 0; i < line_pos && o < 84; i++) {
        jbuf[o] = line[i];
        o++;
        if (line[i] == ' ') {
            /* Round-robin extra spaces across gaps. */
            int add = extra / gaps + ((g < extra % gaps) ? 1 : 0);
            for (k = 0; k < add && o < 84; k++) {
                jbuf[o] = ' ';
                o++;
            }
            g++;
        }
    }
    ship_line(jbuf, o);
}

void pass_justify(int lo, int hi, int measure) {
    int w;
    line_reset();
    for (w = lo; w < hi; w++) {
        if (!line_append(words[w], word_len[w])) {
            justify_line(measure);
            line_reset();
            line_append(words[w], word_len[w]);
        }
    }
    if (line_pos) ship_line(line, line_pos);
}

/* --- pass 3: centering --- */

char cbuf[96];

void pass_center(int lo, int hi, int measure) {
    int w;
    line_reset();
    for (w = lo; w < hi; w++) {
        if (!line_append(words[w], word_len[w])) {
            int pad = (measure - line_pos) / 2;
            int o = 0, k;
            for (k = 0; k < pad && o < 84; k++) {
                cbuf[o] = ' ';
                o++;
            }
            for (k = 0; k < line_pos && o < 84; k++) {
                cbuf[o] = line[k];
                o++;
            }
            ship_line(cbuf, o);
            line_reset();
            line_append(words[w], word_len[w]);
        }
    }
    if (line_pos) ship_line(line, line_pos);
}

/* --- pass 4: hanging indent --- */

void pass_hanging(int lo, int hi, int measure, int indent) {
    int w, first = 1;
    line_reset();
    for (w = lo; w < hi; w++) {
        int limit = first ? measure : measure - indent;
        if (line_pos + word_len[w] + 1 > limit) {
            ship_line(line, line_pos);
            line_reset();
            first = 0;
        }
        line_append(words[w], word_len[w]);
    }
    if (line_pos) ship_line(line, line_pos);
}

/* --- hyphenation scanning (vowel/consonant break points) --- */

int is_vowel(char c) {
    return c == 'a' || c == 'e' || c == 'E' || c == 'i' || c == 'o' || c == 'u';
}

int hyphenate_word(char *w, int len) {
    int k, breaks = 0;
    for (k = 1; k + 1 < len; k++) {
        if (is_vowel(w[k - 1]) && !is_vowel(w[k])) breaks++;
    }
    return breaks;
}

int pass_hyphenate(void) {
    int w, total = 0;
    for (w = 0; w < nwords; w++) {
        total += hyphenate_word(words[w], word_len[w]);
    }
    return total;
}

/* --- word-frequency accounting (hash table) --- */

int hash_word(char *w, int len) {
    int h = 5381, k;
    for (k = 0; k < len; k++) h = ((h << 5) + h + w[k]) & 0x1FF;
    return h;
}

void pass_frequency(void) {
    int w;
    for (w = 0; w < nwords; w++) {
        freq_table[hash_word(words[w], word_len[w])]++;
    }
}

int frequency_peak(void) {
    int i, best = 0;
    for (i = 0; i < 512; i++) {
        if (freq_table[i] > best) best = freq_table[i];
    }
    return best;
}

/* --- page makeup: interleave passes the way a chapter build does --- */

void make_page(int seed) {
    int chunk = nwords / 8;
    int m = 44 + (seed % 4) * 10;
    nlines = 0;
    pass_fill(0, chunk);
    pass_justify(chunk, 3 * chunk, m);
    pass_center(3 * chunk, 4 * chunk, m);
    pass_hanging(4 * chunk, 6 * chunk, m, 4);
    pass_justify(6 * chunk, 8 * chunk, m - 6);
}

int main(void) {
    int pass, breaks = 0;
    build_corpus();
    tokenize_words();
    for (pass = 0; pass < 8; pass++) {
        make_page(pass);
        breaks = breaks + pass_hyphenate();
        pass_frequency();
    }
    return ((out_chk & 0x3FFF) + (breaks & 0xFF) + (frequency_peak() & 0xFF) + nwords)
        & 0x7FFF;
}
