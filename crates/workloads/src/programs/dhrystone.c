/* dhrystone — "The synthetic benchmark" (Table 2): a faithful port of
 * the Dhrystone 1.1 control structure — record manipulation, string
 * comparison, parameter passing, global/local integer traffic. */

struct record {
    struct record *ptr_comp;
    int discr;
    int enum_comp;
    int int_comp;
    char string_comp[31];
};

struct record glob_rec_a;
struct record glob_rec_b;
struct record *ptr_glob;
struct record *next_ptr_glob;

int int_glob = 0;
int bool_glob = 0;
char char1_glob = 0;
char char2_glob = 0;
int arr1_glob[50];
int arr2_glob[50][50];

int str_cmp(char *a, char *b) {
    while (*a && *a == *b) { a++; b++; }
    return (int)*a - (int)*b;
}

void str_copy(char *d, char *s) {
    while (*s) { *d = *s; d++; s++; }
    *d = 0;
}

int func1(char c1, char c2) {
    char l1 = c1;
    char l2 = l1;
    if (l2 != c2) return 0; /* ident1 */
    return 1;
}

int func2(char *s1, char *s2) {
    int pos = 1;
    char cc = 'A';
    while (pos <= 1) {
        if (func1(s1[pos], s2[pos + 1]) == 0) {
            cc = 'A';
            pos = pos + 3;
        } else {
            pos = pos + 3;
        }
    }
    if (cc >= 'W' && cc <= 'Z') pos = 7;
    if (cc == 'X') return 1;
    if (str_cmp(s1, s2) > 0) {
        pos = pos + 7;
        return 1;
    }
    return 0;
}

int func3(int e) {
    return e == 2;
}

void proc6(int e_in, int *e_out) {
    *e_out = e_in;
    if (!func3(e_in)) *e_out = 3;
    if (e_in == 0) *e_out = 0;
    else if (e_in == 2) *e_out = bool_glob ? 0 : 3;
}

void proc7(int a, int b, int *c) {
    int l = a + 2;
    *c = b + l;
}

void proc8(int *a1, int *a2, int v1, int v2) {
    int i, l;
    l = v1 + 5;
    a1[l] = v2;
    a1[l + 1] = a1[l];
    a1[l + 30] = l;
    for (i = l; i <= l + 1; i++) a2[l * 50 + i] = l;
    a2[l * 50 + l - 1] = a2[l * 50 + l - 1] + 1;
    a2[(l + 20) * 50 + l] = a1[l];
    int_glob = 5;
}

void proc3(struct record **p) {
    if (ptr_glob != (struct record *)0) {
        *p = ptr_glob->ptr_comp;
    }
    proc7(10, int_glob, &ptr_glob->int_comp);
}

void proc1(struct record *p) {
    struct record *next = p->ptr_comp;
    p->ptr_comp->discr = p->discr;
    p->ptr_comp->int_comp = p->int_comp;
    p->ptr_comp->ptr_comp = p->ptr_comp;
    proc3(&next->ptr_comp);
    if (next->discr == 0) {
        next->int_comp = 6;
        proc6(p->enum_comp, &next->enum_comp);
        next->ptr_comp = ptr_glob->ptr_comp;
        proc7(next->int_comp, 10, &next->int_comp);
    } else {
        str_copy(p->string_comp, next->string_comp);
    }
}

void proc2(int *x) {
    int l = *x + 10;
    int done = 0;
    while (!done) {
        if (char1_glob == 'A') {
            l = l - 1;
            *x = l - int_glob;
            done = 1;
        }
    }
}

void proc4(void) {
    int b = char1_glob == 'A';
    b = b | bool_glob;
    char2_glob = 'B';
}

void proc5(void) {
    char1_glob = 'A';
    bool_glob = 0;
}

int main(void) {
    int i, run;
    int int1, int2, int3;
    char str1[31];
    char str2[31];

    next_ptr_glob = &glob_rec_a;
    ptr_glob = &glob_rec_b;
    ptr_glob->ptr_comp = next_ptr_glob;
    ptr_glob->discr = 0;
    ptr_glob->enum_comp = 2;
    ptr_glob->int_comp = 40;
    str_copy(ptr_glob->string_comp, "DHRYSTONE PROGRAM, SOME STRING");
    str_copy(str1, "DHRYSTONE PROGRAM, 1'ST STRING");

    for (run = 0; run < 400; run++) {
        proc5();
        proc4();
        int1 = 2;
        int2 = 3;
        str_copy(str2, "DHRYSTONE PROGRAM, 2'ND STRING");
        int3 = 0;
        if (func2(str1, str2)) int3 = 1;
        while (int1 < int2) {
            int3 = 5 * int1 - int2;
            proc7(int1, int2, &int3);
            int1 = int1 + 1;
        }
        proc8(arr1_glob, &arr2_glob[0][0], int1, int3);
        proc1(ptr_glob);
        for (i = 'A'; i <= char2_glob; i++) {
            if (func1((char)i, 'C')) int3 = i;
        }
        int3 = int2 * int1;
        int2 = int3 / int1;
        int2 = 7 * (int3 - int2) - int1;
        proc2(&int1);
    }
    return (int_glob * 100 + int1 * 10 + bool_glob + arr1_glob[8]) & 0x7FFF;
}
