/* queens — "The Stanford eight-queens program" (Table 2).
 * Counts all 92 solutions by backtracking with attack bitboards kept in
 * plain arrays (the 1980 Stanford formulation). */

int rowfree[9];
int updiag[17];
int downdiag[17];
int solutions = 0;

void place(int col) {
    int row;
    for (row = 1; row <= 8; row++) {
        if (rowfree[row] && updiag[row + col - 1] && downdiag[row - col + 8]) {
            rowfree[row] = 0;
            updiag[row + col - 1] = 0;
            downdiag[row - col + 8] = 0;
            if (col == 8) solutions++;
            else place(col + 1);
            rowfree[row] = 1;
            updiag[row + col - 1] = 1;
            downdiag[row - col + 8] = 1;
        }
    }
}

int main(void) {
    int i;
    for (i = 0; i <= 8; i++) rowfree[i] = 1;
    for (i = 0; i <= 16; i++) { updiag[i] = 1; downdiag[i] = 1; }
    place(1);
    return solutions; /* 92 */
}
