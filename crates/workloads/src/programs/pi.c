/* pi — "Computes digits of pi" (Table 2): the integer spigot algorithm
 * (Rabinowitz–Wagon), all-integer long division over a big array. */

int arr[680]; /* 10 * digits / 3 + slack for 200 digits */
int digits_out[208];
int ndigits = 0;

void emit_digit(int d) {
    digits_out[ndigits] = d;
    ndigits++;
}

int main(void) {
    int n = 64;              /* digits of pi to produce */
    int len = 10 * n / 3 + 1;
    int i, j, k, q, x, nines, predigit;
    int chk;

    for (j = 0; j < len; j++) arr[j] = 2;
    nines = 0;
    predigit = 0;

    for (j = 0; j < n; j++) {
        q = 0;
        for (i = len - 1; i >= 0; i--) {
            x = 10 * arr[i] + q * (i + 1);
            arr[i] = x % (2 * i + 1);
            q = x / (2 * i + 1);
        }
        arr[0] = q % 10;
        q = q / 10;
        if (q == 9) {
            nines = nines + 1;
        } else if (q == 10) {
            emit_digit(predigit + 1);
            for (k = 0; k < nines; k++) emit_digit(0);
            predigit = 0;
            nines = 0;
        } else {
            if (j > 0) emit_digit(predigit);
            predigit = q;
            for (k = 0; k < nines; k++) emit_digit(9);
            nines = 0;
        }
    }
    emit_digit(predigit);

    /* pi = 3.14159 26535 89793 ... : check the first digits exactly and
     * fold the rest into a checksum. */
    if (digits_out[0] != 3) return -1;
    if (digits_out[1] != 1) return -2;
    if (digits_out[2] != 4) return -3;
    if (digits_out[3] != 1) return -4;
    if (digits_out[4] != 5) return -5;
    if (digits_out[5] != 9) return -6;
    chk = 0;
    for (i = 0; i < ndigits; i++) chk = (chk * 7 + digits_out[i]) & 0xFFF;
    return 10000 + chk;
}
