/* linpack — "The linear programming benchmark" (Table 2): the classic
 * LINPACK pattern, in-place LU factorization with partial pivoting and a
 * triangular solve, dominated by the daxpy inner loop. Scaled to n=24. */

double a[24][24];
double b[24];
int piv[24];
int rng_state = 1325;

double rng(void) {
    rng_state = (rng_state * 3125) % 65536;
    return (double)(rng_state - 32768) / 16384.0;
}

double dabs(double x) { return x < 0.0 ? -x : x; }

void matgen(int n) {
    int i, j;
    for (i = 0; i < n; i++) {
        for (j = 0; j < n; j++) {
            a[i][j] = rng();
        }
        a[i][i] = a[i][i] + 8.0; /* diagonally dominant: well-conditioned */
    }
    for (i = 0; i < n; i++) {
        b[i] = 0.0;
        for (j = 0; j < n; j++) b[i] = b[i] + a[i][j];
    }
}

/* y += da * x, the LINPACK inner loop. */
void daxpy(int n, double da, double *dx, double *dy) {
    int i;
    if (da == 0.0) return;
    for (i = 0; i < n; i++) {
        dy[i] = dy[i] + da * dx[i];
    }
}

void swap_rows(int n, int r1, int r2) {
    int j;
    for (j = 0; j < n; j++) {
        double t = a[r1][j];
        a[r1][j] = a[r2][j];
        a[r2][j] = t;
    }
}

void lu_factor(int n) {
    int k, i;
    for (k = 0; k < n; k++) {
        /* Partial pivot: largest magnitude in column k at or below k. */
        int p = k;
        double best = dabs(a[k][k]);
        for (i = k + 1; i < n; i++) {
            if (dabs(a[i][k]) > best) {
                best = dabs(a[i][k]);
                p = i;
            }
        }
        piv[k] = p;
        if (p != k) swap_rows(n, k, p);
        for (i = k + 1; i < n; i++) {
            double m = a[i][k] / a[k][k];
            a[i][k] = m;
            daxpy(n - k - 1, -m, &a[k][k + 1], &a[i][k + 1]);
        }
    }
}

void lu_solve(int n) {
    int k, i;
    /* Apply pivots and the forward elimination to b. */
    for (k = 0; k < n; k++) {
        if (piv[k] != k) {
            double t = b[k];
            b[k] = b[piv[k]];
            b[piv[k]] = t;
        }
        for (i = k + 1; i < n; i++) {
            b[i] = b[i] - a[i][k] * b[k];
        }
    }
    /* Back substitution. */
    for (k = n - 1; k >= 0; k--) {
        for (i = k + 1; i < n; i++) {
            b[k] = b[k] - a[k][i] * b[i];
        }
        b[k] = b[k] / a[k][k];
    }
}

int main(void) {
    int n = 24;
    int i, chk;
    double err = 0.0;
    matgen(n);
    lu_factor(n);
    lu_solve(n);
    /* The right-hand side was the row sums, so x should be all ones. */
    for (i = 0; i < n; i++) {
        err = err + dabs(b[i] - 1.0);
    }
    chk = (int)(err * 1000000.0);
    if (chk < 0) chk = -chk;
    /* A tiny residual means the factorization worked. */
    return chk < 100 ? 7777 : chk & 0x7FFF;
}
