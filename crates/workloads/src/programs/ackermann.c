/* ackermann — "Computes the Ackermann function" (paper, Table 2).
 * Deep recursion with tiny frames: a call/return microbenchmark. */

int ack(int m, int n) {
    if (m == 0) return n + 1;
    if (n == 0) return ack(m - 1, 1);
    return ack(m - 1, ack(m, n - 1));
}

int main(void) {
    /* ack(2,3)=9, ack(3,3)=61, ack(2,7)=17 */
    int a = ack(2, 3);
    int b = ack(3, 3);
    int c = ack(2, 7);
    return a * 100 + b + c; /* 900 + 61 + 17 = 978 */
}
