/* listchase — curated extension workload: pointer-chasing list
 * traversal. The hot loop is a serial dependence chain through memory
 * (`p = p->next`) laid out in a pseudo-random permutation of a static
 * pool, so every step is a data-dependent load with no exploitable
 * stride — the locality signature the paper's Table 2 suite lacks.
 * An in-place reversal pass every other iteration keeps the store
 * stream honest. */

struct node {
    struct node *next;
    int payload;
};

struct node pool[512];
struct node *head;

void build(void) {
    int i;
    int idx = 0;
    int next;
    for (i = 0; i < 512; i++) {
        pool[i].payload = (i * 2654435 + 7) & 0xFFFF;
        pool[i].next = (struct node *)0;
    }
    /* Thread the pool along a full-period LCG permutation (a=5, c=173
     * mod 512): successive links land 173+ slots apart, defeating any
     * next-line locality. */
    head = &pool[0];
    for (i = 0; i < 511; i++) {
        next = (idx * 5 + 173) & 511;
        pool[idx].next = &pool[next];
        idx = next;
    }
    pool[idx].next = (struct node *)0;
}

int walk(void) {
    struct node *p = head;
    int sum = 0;
    int n = 0;
    while (p != (struct node *)0) {
        sum = (sum + p->payload) & 0xFFFFFF;
        n++;
        p = p->next;
    }
    if (n != 512) return -1;
    return sum;
}

void reverse(void) {
    struct node *p = head;
    struct node *prev = (struct node *)0;
    struct node *nx;
    while (p != (struct node *)0) {
        nx = p->next;
        p->next = prev;
        prev = p;
        p = nx;
    }
    head = prev;
}

void mutate(int salt) {
    struct node *p = head;
    while (p != (struct node *)0) {
        p->payload = (p->payload * 3 + salt) & 0xFFFF;
        p = p->next;
    }
}

int main(void) {
    int pass;
    int s;
    int check = 0;
    build();
    for (pass = 0; pass < 48; pass++) {
        s = walk();
        if (s < 0) return -1;
        check = (check * 5 + s) & 0x7FFFFF;
        if (pass % 2 == 1) reverse();
        if (pass % 3 == 2) mutate(pass);
    }
    return check & 0x7FFF;
}
