/* treewalk — curated extension workload: binary-search-tree build and
 * traversal. Insertion recurses down a pointer structure whose shape is
 * decided by pseudo-random keys, so the branch at every level is
 * data-dependent and the working set is scattered across the node pool
 * in insertion order — a deep-pointer-chain, wide-call-graph signature
 * (insert / lookup / in-order walk / depth all recurse). */

struct tnode {
    struct tnode *left;
    struct tnode *right;
    int key;
    int count;
};

struct tnode pool[1024];
int used = 0;
int rng = 42;

int next_key(void) {
    rng ^= (rng << 7) & 0xFFFF;
    rng ^= rng >> 9;
    rng ^= (rng << 8) & 0xFFFF;
    return rng & 1023;
}

struct tnode *insert(struct tnode *t, int key) {
    if (t == (struct tnode *)0) {
        struct tnode *n = &pool[used];
        used++;
        n->left = (struct tnode *)0;
        n->right = (struct tnode *)0;
        n->key = key;
        n->count = 1;
        return n;
    }
    if (key < t->key) {
        t->left = insert(t->left, key);
    } else if (key > t->key) {
        t->right = insert(t->right, key);
    } else {
        t->count++;
    }
    return t;
}

int lookup(struct tnode *t, int key) {
    while (t != (struct tnode *)0) {
        if (key < t->key) {
            t = t->left;
        } else if (key > t->key) {
            t = t->right;
        } else {
            return t->count;
        }
    }
    return 0;
}

int inorder(struct tnode *t, int acc) {
    if (t == (struct tnode *)0) return acc;
    acc = inorder(t->left, acc);
    acc = (acc * 31 + t->key + t->count) & 0xFFFFFF;
    return inorder(t->right, acc);
}

int depth(struct tnode *t) {
    int dl;
    int dr;
    if (t == (struct tnode *)0) return 0;
    dl = depth(t->left);
    dr = depth(t->right);
    return 1 + (dl > dr ? dl : dr);
}

int main(void) {
    struct tnode *root = (struct tnode *)0;
    int i;
    int hits = 0;
    int check;
    for (i = 0; i < 3000; i++) {
        root = insert(root, next_key());
        if (used > 1024) return -1;
    }
    for (i = 0; i < 2048; i++) {
        hits += lookup(root, i & 1023) > 0 ? 1 : 0;
    }
    check = inorder(root, 0);
    check = (check * 7 + used) & 0xFFFFFF;
    check = (check * 7 + hits) & 0xFFFFFF;
    check = (check * 7 + depth(root)) & 0xFFFFFF;
    return check & 0x7FFF;
}
