/* fsm — fusion-hostile extension workload (not in the paper's Table 2).
 *
 * A table-driven protocol state machine scanning a synthetic byte
 * stream. The hot loop is deliberately starved of fusible shapes: the
 * only control transfer branches directly on a value loaded from the
 * stream (`while (stream[i])` compiles to bz/bnz on the loaded
 * register, with the *load* as the preceding instruction, which the
 * D16x compare->branch fuser cannot pair), the state transition is a
 * pure table lookup with no compares, and every constant fits a 16-bit
 * immediate so no `mvhi`/`ori` address pairs appear either. The fusion
 * ablation should show its smallest savings here. */

char stream[2048];
char cls[256]; /* 0 other, 1 space, 2 digit, 3 alpha, 4 punct */

/* trans[state * 5 + class] — states: 0 idle, 1 word, 2 number,
 * 3 symbol, 4 gap. moved[] is 1 where the transition changes state,
 * precomputed so the scanner never compares next against state. */
char trans[25];
char moved[25];

int visits[5];
int transitions = 0;

void build_tables(void) {
    int c, s, k;
    for (c = 0; c < 256; c++) cls[c] = 0;
    for (c = '0'; c <= '9'; c++) cls[c] = 2;
    for (c = 'a'; c <= 'z'; c++) cls[c] = 3;
    for (c = 'A'; c <= 'Z'; c++) cls[c] = 3;
    cls[' '] = 1;
    cls['\t'] = 1;
    cls['\n'] = 1;
    cls['.'] = 4;
    cls[','] = 4;
    cls[';'] = 4;
    cls['+'] = 4;
    cls['-'] = 4;
    for (s = 0; s < 5; s++) {
        /* other -> idle, space -> gap (idle stays idle), digit ->
         * number, alpha -> word (but glues onto a number), punct ->
         * symbol. */
        trans[s * 5 + 0] = 0;
        trans[s * 5 + 1] = (char)(s == 0 ? 0 : 4);
        trans[s * 5 + 2] = 2;
        trans[s * 5 + 3] = (char)(s == 2 ? 2 : 1);
        trans[s * 5 + 4] = 3;
    }
    for (k = 0; k < 25; k++) moved[k] = (char)(trans[k] != k / 5);
}

void build_stream(void) {
    /* A mildly irregular mix of words, numbers, punctuation and gaps.
     * The xorshift generator uses only shifts and small masks: no large
     * immediates, so no fusible `mvhi` pairs sneak into this loop. */
    int i, x = 12345;
    for (i = 0; i < 2047; i++) {
        int r;
        x ^= (x << 7) & 0x7FFF;
        x ^= x >> 9;
        x ^= (x << 8) & 0x7FFF;
        r = (x >> 5) & 31;
        if (r < 14) {
            stream[i] = (char)('a' + (r & 15));
        } else if (r < 22) {
            stream[i] = (char)('0' + (r & 7));
        } else if (r < 26) {
            stream[i] = ' ';
        } else if (r < 28) {
            stream[i] = '\n';
        } else {
            stream[i] = (char)(r == 28 ? '.' : (r == 29 ? ',' : (r == 30 ? '+' : ';')));
        }
    }
    stream[2047] = 0;
}

int scan(void) {
    int state = 0;
    int i = 0;
    while (stream[i]) {
        int k = state * 5 + cls[stream[i] & 255];
        transitions += moved[k];
        state = trans[k];
        visits[state]++;
        i++;
    }
    return i;
}

int main(void) {
    int pass, n = 0, k, sum = 0;
    build_tables();
    build_stream();
    for (pass = 0; pass < 8; pass++) n = scan();
    if (n != 2047) return -1;
    for (k = 0; k < 5; k++) sum = sum * 3 + visits[k] % 1000;
    return (sum + transitions) & 0x7FFF;
}
