//! # d16-workloads — the benchmark suite (paper, Table 2)
//!
//! Mini-C re-implementations of the fifteen programs the paper measures.
//! Each is self-checking: `main` returns a checksum that must be identical
//! on every target configuration — that is the joint correctness gate for
//! the compiler, assembler, linker and simulator.
//!
//! Where the original is an external Unix program (grep, latex, ipl, the
//! D16 assembler), the re-implementation reproduces its computational
//! shape — inner loops, data structures and working-set size — as
//! documented in DESIGN.md §2.

/// One benchmark program.
#[derive(Copy, Clone, Debug)]
pub struct Workload {
    /// Suite name (the paper's, lowercase).
    pub name: &'static str,
    /// Mini-C source text.
    pub source: &'static str,
    /// Paper's one-line description (Table 2).
    pub description: &'static str,
    /// Expected exit checksum, once pinned. `None` means "all targets must
    /// agree" only.
    pub expected: Option<i32>,
    /// Whether the paper uses it for the cache experiments (assem, ipl,
    /// latex — "the programs of the benchmark suite large enough to have
    /// interesting cache behavior").
    pub cache_benchmark: bool,
    /// Whether the program exercises the FPU.
    pub floating: bool,
}

macro_rules! programs {
    ($($name:ident: $desc:expr, expected: $exp:expr, cache: $cache:expr, fp: $fp:expr;)*) => {
        /// The full suite, in the paper's Table 2 order.
        pub const SUITE: &[Workload] = &[
            $(Workload {
                name: stringify!($name),
                source: include_str!(concat!("programs/", stringify!($name), ".c")),
                description: $desc,
                expected: $exp,
                cache_benchmark: $cache,
                floating: $fp,
            }),*
        ];
    };
}

programs! {
    ackermann: "Computes the Ackermann function", expected: Some(978), cache: false, fp: false;
    assem: "The D16 assembler", expected: Some(18198), cache: true, fp: false;
    bubblesort: "Sorting program from the Stanford suite", expected: Some(11605), cache: false, fp: false;
    queens: "The Stanford eight-queens program", expected: Some(92), cache: false, fp: false;
    quicksort: "The Stanford quicksort program", expected: Some(10451), cache: false, fp: false;
    towers: "The Stanford towers of Hanoi program", expected: Some(16383), cache: false, fp: false;
    grep: "The Unix utility from the BSD sources", expected: Some(44666), cache: false, fp: false;
    linpack: "The linear programming benchmark", expected: Some(7777), cache: false, fp: true;
    matrix: "Gaussian elimination", expected: Some(4242), cache: false, fp: true;
    dhrystone: "The synthetic benchmark", expected: Some(577), cache: false, fp: false;
    pi: "Computes digits of pi", expected: Some(11725), cache: false, fp: false;
    solver: "Newton-Raphson iterative solver", expected: Some(3131), cache: false, fp: true;
    latex: "The typesetter", expected: Some(6792), cache: true, fp: false;
    ipl: "PostScript plotting package", expected: Some(7615), cache: true, fp: false;
    whetstone: "The synthetic floating point benchmark", expected: Some(9821), cache: false, fp: true;
}

/// Looks up a workload by name.
pub fn by_name(name: &str) -> Option<&'static Workload> {
    SUITE.iter().find(|w| w.name == name)
}

/// The three cache-experiment programs (Figures 16–19).
pub fn cache_benchmarks() -> impl Iterator<Item = &'static Workload> {
    SUITE.iter().filter(|w| w.cache_benchmark)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_matches_table2() {
        assert_eq!(SUITE.len(), 15);
        let names: Vec<_> = SUITE.iter().map(|w| w.name).collect();
        for required in [
            "ackermann",
            "assem",
            "bubblesort",
            "queens",
            "quicksort",
            "towers",
            "grep",
            "linpack",
            "matrix",
            "dhrystone",
            "pi",
            "solver",
            "latex",
            "ipl",
            "whetstone",
        ] {
            assert!(names.contains(&required), "missing {required}");
        }
        assert_eq!(cache_benchmarks().count(), 3);
    }

    #[test]
    fn sources_are_nonempty_and_have_main() {
        for w in SUITE {
            assert!(w.source.len() > 100, "{} too small", w.name);
            assert!(w.source.contains("int main(void)"), "{} lacks main", w.name);
        }
    }

    #[test]
    fn by_name_lookup() {
        assert!(by_name("queens").is_some());
        assert!(by_name("nonesuch").is_none());
        assert_eq!(by_name("towers").unwrap().expected, Some(16383));
    }
}
