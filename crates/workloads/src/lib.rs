//! # d16-workloads — the benchmark suite (paper, Table 2)
//!
//! Mini-C re-implementations of the fifteen programs the paper measures.
//! Each is self-checking: `main` returns a checksum that must be identical
//! on every target configuration — that is the joint correctness gate for
//! the compiler, assembler, linker and simulator.
//!
//! Where the original is an external Unix program (grep, latex, ipl, the
//! D16 assembler), the re-implementation reproduces its computational
//! shape — inner loops, data structures and working-set size — as
//! documented in DESIGN.md §2.

/// One benchmark program.
#[derive(Copy, Clone, Debug)]
pub struct Workload {
    /// Suite name (the paper's, lowercase).
    pub name: &'static str,
    /// Mini-C source text.
    pub source: &'static str,
    /// Paper's one-line description (Table 2).
    pub description: &'static str,
    /// Expected exit checksum, once pinned. `None` means "all targets must
    /// agree" only.
    pub expected: Option<i32>,
    /// Whether the paper uses it for the cache experiments (assem, ipl,
    /// latex — "the programs of the benchmark suite large enough to have
    /// interesting cache behavior").
    pub cache_benchmark: bool,
    /// Whether the program exercises the FPU.
    pub floating: bool,
}

macro_rules! programs {
    ($($name:ident: $desc:expr, expected: $exp:expr, cache: $cache:expr, fp: $fp:expr;)*) => {
        /// The full suite, in the paper's Table 2 order.
        pub const SUITE: &[Workload] = &[
            $(Workload {
                name: stringify!($name),
                source: include_str!(concat!("programs/", stringify!($name), ".c")),
                description: $desc,
                expected: $exp,
                cache_benchmark: $cache,
                floating: $fp,
            }),*
        ];
    };
}

programs! {
    ackermann: "Computes the Ackermann function", expected: Some(978), cache: false, fp: false;
    assem: "The D16 assembler", expected: Some(18198), cache: true, fp: false;
    bubblesort: "Sorting program from the Stanford suite", expected: Some(11605), cache: false, fp: false;
    queens: "The Stanford eight-queens program", expected: Some(92), cache: false, fp: false;
    quicksort: "The Stanford quicksort program", expected: Some(10451), cache: false, fp: false;
    towers: "The Stanford towers of Hanoi program", expected: Some(16383), cache: false, fp: false;
    grep: "The Unix utility from the BSD sources", expected: Some(44666), cache: false, fp: false;
    linpack: "The linear programming benchmark", expected: Some(7777), cache: false, fp: true;
    matrix: "Gaussian elimination", expected: Some(4242), cache: false, fp: true;
    dhrystone: "The synthetic benchmark", expected: Some(577), cache: false, fp: false;
    pi: "Computes digits of pi", expected: Some(11725), cache: false, fp: false;
    solver: "Newton-Raphson iterative solver", expected: Some(3131), cache: false, fp: true;
    latex: "The typesetter", expected: Some(6792), cache: true, fp: false;
    ipl: "PostScript plotting package", expected: Some(7615), cache: true, fp: false;
    whetstone: "The synthetic floating point benchmark", expected: Some(9821), cache: false, fp: true;
}

/// Extension workloads beyond the paper's Table 2. The first pair is
/// the macro-op-fusion stress pair for the D16x target: `fsm` is
/// fusion-hostile (a branchy state machine whose transfers branch
/// directly on loaded table bytes, leaving almost no adjacent
/// compare/branch or `mvhi`-pair shapes); `addrgen` is fusion-friendly
/// (scatter/gather over a dozen global arrays, re-materializing
/// `mvhi`/`ori` address pairs in the hot loop). The rest widen the
/// suite's instruction-mix and locality coverage for the extended
/// distribution experiment: curated pointer-chasing, dispatch-heavy,
/// scanner, dense-arithmetic and table-churn signatures, plus faithful
/// shapes of two more 1992-era suite members (`compress`, `eqntott`).
/// All are self-checking like the suite, addressable through
/// [`by_name`], and deliberately *not* part of [`SUITE`] so the paper's
/// 15-program grid keeps its shape. Provenance for each is documented
/// in DESIGN.md §2.
pub const EXTRAS: &[Workload] = &[
    Workload {
        name: "fsm",
        source: include_str!("programs/fsm.c"),
        description: "Branchy state machine (fusion-hostile extension)",
        expected: Some(11952),
        cache_benchmark: false,
        floating: false,
    },
    Workload {
        name: "addrgen",
        source: include_str!("programs/addrgen.c"),
        description: "Global-array address arithmetic (fusion-friendly extension)",
        expected: Some(11839),
        cache_benchmark: false,
        floating: false,
    },
    Workload {
        name: "listchase",
        source: include_str!("programs/listchase.c"),
        description: "Pointer-chasing linked-list traversal (curated extension)",
        expected: Some(4096),
        cache_benchmark: false,
        floating: false,
    },
    Workload {
        name: "treewalk",
        source: include_str!("programs/treewalk.c"),
        description: "Binary-search-tree build and traversal (curated extension)",
        expected: Some(23123),
        cache_benchmark: false,
        floating: false,
    },
    Workload {
        name: "bytecode",
        source: include_str!("programs/bytecode.c"),
        description: "Stack-machine bytecode interpreter (curated extension)",
        expected: Some(22025),
        cache_benchmark: false,
        floating: false,
    },
    Workload {
        name: "lexer",
        source: include_str!("programs/lexer.c"),
        description: "Branchy hand-written scanner (curated extension)",
        expected: Some(13463),
        cache_benchmark: false,
        floating: false,
    },
    Workload {
        name: "intkernel",
        source: include_str!("programs/intkernel.c"),
        description: "Dense integer FIR/CRC/matmul kernels (curated extension)",
        expected: Some(7727),
        cache_benchmark: false,
        floating: false,
    },
    Workload {
        name: "fpkernel",
        source: include_str!("programs/fpkernel.c"),
        description: "Dense FP Horner/stencil/dot kernels (curated extension)",
        expected: Some(23455),
        cache_benchmark: false,
        floating: true,
    },
    Workload {
        name: "hashchurn",
        source: include_str!("programs/hashchurn.c"),
        description: "Open-addressing hash-table churn (curated extension)",
        expected: Some(32593),
        cache_benchmark: false,
        floating: false,
    },
    Workload {
        name: "compress",
        source: include_str!("programs/compress.c"),
        description: "LZW compression, SPEC'92 compress shape (1992-era port)",
        expected: Some(16992),
        cache_benchmark: false,
        floating: false,
    },
    Workload {
        name: "eqntott",
        source: include_str!("programs/eqntott.c"),
        description: "Truth-table sort and cube merge, SPEC'92 eqntott shape (1992-era port)",
        expected: Some(19808),
        cache_benchmark: false,
        floating: false,
    },
];

/// Looks up a workload by name, searching the suite then the extras.
pub fn by_name(name: &str) -> Option<&'static Workload> {
    SUITE.iter().chain(EXTRAS).find(|w| w.name == name)
}

/// The three cache-experiment programs (Figures 16–19).
pub fn cache_benchmarks() -> impl Iterator<Item = &'static Workload> {
    SUITE.iter().filter(|w| w.cache_benchmark)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_matches_table2() {
        assert_eq!(SUITE.len(), 15);
        let names: Vec<_> = SUITE.iter().map(|w| w.name).collect();
        for required in [
            "ackermann",
            "assem",
            "bubblesort",
            "queens",
            "quicksort",
            "towers",
            "grep",
            "linpack",
            "matrix",
            "dhrystone",
            "pi",
            "solver",
            "latex",
            "ipl",
            "whetstone",
        ] {
            assert!(names.contains(&required), "missing {required}");
        }
        assert_eq!(cache_benchmarks().count(), 3);
    }

    #[test]
    fn sources_are_nonempty_and_have_main() {
        for w in SUITE.iter().chain(EXTRAS) {
            assert!(w.source.len() > 100, "{} too small", w.name);
            assert!(w.source.contains("int main(void)"), "{} lacks main", w.name);
        }
    }

    #[test]
    fn by_name_lookup() {
        assert!(by_name("queens").is_some());
        assert!(by_name("nonesuch").is_none());
        assert_eq!(by_name("towers").unwrap().expected, Some(16383));
    }

    #[test]
    fn extras_stay_out_of_the_suite() {
        assert_eq!(EXTRAS.len(), 11);
        for w in EXTRAS {
            assert!(by_name(w.name).is_some(), "{} not addressable", w.name);
            assert!(!SUITE.iter().any(|s| s.name == w.name), "{} leaked into SUITE", w.name);
            assert!(!w.cache_benchmark, "extras stay out of the cache experiments");
        }
    }
}
