//! Exhaustive encoding-space oracles, independent of the fuzzer.
//!
//! D16's space is only 2^16 words, so we check it completely: every word
//! either decodes to an instruction that re-encodes **byte-identically**
//! (the decoder rejects any pattern with a nonzero value in a field the
//! format does not use, so there is exactly one word per decodable
//! instruction), or it is reserved and stays reserved. DLXe's 2^32 space
//! is sampled instead; its decoder canonicalizes redundant shapes
//! (`mv ≡ add rs, r0` and friends), so the property there is that the
//! canonical form is a fixpoint: one decode-encode step lands on a word
//! that decodes and re-encodes to itself.

use d16_isa::{d16, dlxe};

#[test]
fn d16_all_64k_words_byte_identical_or_reserved() {
    let mut decodable = 0u32;
    let mut reserved = 0u32;
    for w in 0..=u16::MAX {
        match d16::decode(w) {
            Ok(insn) => {
                decodable += 1;
                let w2 = d16::encode(&insn)
                    .unwrap_or_else(|e| panic!("{w:#06x} decoded to {insn:?} but re-encode: {e}"));
                assert_eq!(w, w2, "{w:#06x} -> {insn:?} -> {w2:#06x} is not byte-identical");
            }
            Err(_) => reserved += 1,
        }
    }
    assert_eq!(decodable + reserved, 1 << 16);
    // Pin the partition. If an encoding change legitimately moves this,
    // update the constant — the point is that growth or shrinkage of the
    // decodable space is always a reviewed, visible event.
    assert_eq!(decodable, 44_885, "decodable D16 words (reserved: {reserved})");
}

#[test]
fn d16_reserved_words_include_known_unused_fields() {
    // Spot-check the patterns the decoder must reject for byte-identity:
    // jump words with a nonzero rx nibble, branch words with bit 10 set,
    // rdsr words with a nonzero ry nibble, and the reserved 1001 prefix.
    let j_r3 = 0b01 << 14 | 17 << 8 | 3 << 4; // j r3, rx clear: decodable
    assert!(d16::decode(j_r3).is_ok());
    assert!(d16::decode(j_r3 | 0x1).is_err(), "jump with nonzero rx");
    let br = 0b101 << 13 | 0x10; // br .+32
    assert!(d16::decode(br).is_ok());
    assert!(d16::decode(br | 1 << 10).is_err(), "branch with bit 10 set");
    let rdsr = 2 << 8 | 0x5; // rdsr r5
    assert!(d16::decode(rdsr).is_ok());
    assert!(d16::decode(rdsr | 0x70).is_err(), "rdsr with nonzero ry");
    assert!(d16::decode(0b1001 << 12 | 0x123).is_err(), "reserved prefix");
}

#[test]
fn dlxe_sampled_words_reach_a_canonical_fixpoint() {
    // A full 2^32 sweep is too slow for tier-1; sample with the same LCG
    // the in-crate test uses, plus a stride sweep for coverage of the
    // opcode space. For every decodable word w: encode(decode(w)) must
    // succeed, and the resulting canonical word must decode and re-encode
    // to itself byte-identically.
    let mut decodable = 0u64;
    let mut check = |w: u32| {
        if let Ok(insn) = dlxe::decode(w) {
            decodable += 1;
            let w2 = dlxe::encode(&insn)
                .unwrap_or_else(|e| panic!("{w:#010x} decoded to {insn:?} but re-encode: {e}"));
            let insn2 = dlxe::decode(w2)
                .unwrap_or_else(|e| panic!("canonical word {w2:#010x} of {w:#010x}: {e}"));
            assert_eq!(insn, insn2, "{w:#010x} vs canonical {w2:#010x}");
            let w3 = dlxe::encode(&insn2).expect("canonical re-encode");
            assert_eq!(w2, w3, "canonical form of {w:#010x} is not a fixpoint");
        }
    };
    let mut x = 0x1234_5678u32;
    for _ in 0..2_000_000 {
        x = x.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
        check(x);
    }
    for w in (0..=u32::MAX).step_by(4099) {
        check(w);
    }
    assert!(decodable > 100_000, "only {decodable} sampled DLXe words decodable");
}
