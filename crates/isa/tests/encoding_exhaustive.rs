//! Exhaustive encoding-space oracles, independent of the fuzzer.
//!
//! D16's space is only 2^16 words, so we check it completely: every word
//! either decodes to an instruction that re-encodes **byte-identically**
//! (the decoder rejects any pattern with a nonzero value in a field the
//! format does not use, so there is exactly one word per decodable
//! instruction), or it is reserved and stays reserved. DLXe's 2^32 space
//! is sampled instead; its decoder canonicalizes redundant shapes
//! (`mv ≡ add rs, r0` and friends), so the property there is that the
//! canonical form is a fixpoint: one decode-encode step lands on a word
//! that decodes and re-encodes to itself.

use d16_isa::{d16, d16x, dlxe, DecodeError};

#[test]
fn d16_all_64k_words_byte_identical_or_reserved() {
    let mut decodable = 0u32;
    let mut reserved = 0u32;
    for w in 0..=u16::MAX {
        match d16::decode(w) {
            Ok(insn) => {
                decodable += 1;
                let w2 = d16::encode(&insn)
                    .unwrap_or_else(|e| panic!("{w:#06x} decoded to {insn:?} but re-encode: {e}"));
                assert_eq!(w, w2, "{w:#06x} -> {insn:?} -> {w2:#06x} is not byte-identical");
            }
            Err(_) => reserved += 1,
        }
    }
    assert_eq!(decodable + reserved, 1 << 16);
    // Pin the partition. If an encoding change legitimately moves this,
    // update the constant — the point is that growth or shrinkage of the
    // decodable space is always a reviewed, visible event.
    assert_eq!(decodable, 44_885, "decodable D16 words (reserved: {reserved})");
}

#[test]
fn d16_reserved_words_include_known_unused_fields() {
    // Spot-check the patterns the decoder must reject for byte-identity:
    // jump words with a nonzero rx nibble, branch words with bit 10 set,
    // rdsr words with a nonzero ry nibble, and the reserved 1001 prefix.
    let j_r3 = 0b01 << 14 | 17 << 8 | 3 << 4; // j r3, rx clear: decodable
    assert!(d16::decode(j_r3).is_ok());
    assert!(d16::decode(j_r3 | 0x1).is_err(), "jump with nonzero rx");
    let br = 0b101 << 13 | 0x10; // br .+32
    assert!(d16::decode(br).is_ok());
    assert!(d16::decode(br | 1 << 10).is_err(), "branch with bit 10 set");
    let rdsr = 2 << 8 | 0x5; // rdsr r5
    assert!(d16::decode(rdsr).is_ok());
    assert!(d16::decode(rdsr | 0x70).is_err(), "rdsr with nonzero ry");
    assert!(d16::decode(0b1001 << 12 | 0x123).is_err(), "reserved prefix");
}

#[test]
fn dlxe_sampled_words_reach_a_canonical_fixpoint() {
    // A full 2^32 sweep is too slow for tier-1; sample with the same LCG
    // the in-crate test uses, plus a stride sweep for coverage of the
    // opcode space. For every decodable word w: encode(decode(w)) must
    // succeed, and the resulting canonical word must decode and re-encode
    // to itself byte-identically.
    let mut decodable = 0u64;
    let mut check = |w: u32| {
        if let Ok(insn) = dlxe::decode(w) {
            decodable += 1;
            let w2 = dlxe::encode(&insn)
                .unwrap_or_else(|e| panic!("{w:#010x} decoded to {insn:?} but re-encode: {e}"));
            let insn2 = dlxe::decode(w2)
                .unwrap_or_else(|e| panic!("canonical word {w2:#010x} of {w:#010x}: {e}"));
            assert_eq!(insn, insn2, "{w:#010x} vs canonical {w2:#010x}");
            let w3 = dlxe::encode(&insn2).expect("canonical re-encode");
            assert_eq!(w2, w3, "canonical form of {w:#010x} is not a fixpoint");
        }
    };
    let mut x = 0x1234_5678u32;
    for _ in 0..2_000_000 {
        x = x.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
        check(x);
    }
    for w in (0..=u32::MAX).step_by(4099) {
        check(w);
    }
    assert!(decodable > 100_000, "only {decodable} sampled DLXe words decodable");
}

#[test]
fn d16x_narrow_space_is_exactly_d16() {
    // D16x is a strict superset: every non-escape halfword decodes (or is
    // reserved) exactly as D16, with length 2; every escape halfword
    // without a second halfword is the *typed* truncation error, never a
    // panic and never a misdecode.
    for first in 0..=u16::MAX {
        if first >> 12 == 0b1001 {
            assert_eq!(d16x::insn_len(first), 4);
            assert_eq!(d16x::decode(first, None), Err(DecodeError::Truncated(first)));
            continue;
        }
        assert_eq!(d16x::insn_len(first), 2);
        match (d16x::decode(first, None), d16::decode(first)) {
            (Ok((i, 2)), Ok(j)) => assert_eq!(i, j, "{first:#06x}"),
            (Err(_), Err(_)) => {}
            (a, b) => panic!("{first:#06x}: d16x {a:?} vs d16 {b:?}"),
        }
    }
}

#[test]
fn d16x_wide_space_byte_identical_or_reserved() {
    // The escape space, exhaustive over hw0 (4096 prefixed patterns) and
    // strided + edge-cased over hw1. Every decodable pair re-encodes
    // byte-identically: the decoder rejects non-canonical wide patterns
    // (unused fields set, or instructions the narrow format could
    // express), so as with D16 there is exactly one byte sequence per
    // decodable instruction.
    let mut decodable = 0u64;
    let mut reserved = 0u64;
    let edges: &[u16] =
        &[0, 1, 4, 8, 0x1f, 0x20, 124, 125, 126, 0x7f, 0xff, 0x1ff, 0x7fff, 0x8000, 0xfffe, 0xffff];
    for low in 0..=0xfffu16 {
        let first = 0b1001 << 12 | low;
        let mut check = |hw1: u16| match d16x::decode(first, Some(hw1)) {
            Ok((insn, len)) => {
                decodable += 1;
                assert_eq!(len, 4);
                let again = d16x::encode(&insn)
                    .unwrap_or_else(|e| panic!("{first:#06x}:{hw1:#06x} -> {insn:?}: {e}"));
                assert_eq!(
                    again,
                    d16x::Enc::W((hw1 as u32) << 16 | first as u32),
                    "{first:#06x}:{hw1:#06x} -> {insn:?} is not byte-identical"
                );
            }
            Err(_) => reserved += 1,
        };
        for hw1 in (0..=u16::MAX).step_by(97) {
            check(hw1);
        }
        for &hw1 in edges {
            check(hw1);
        }
    }
    // Pin the sampled partition, like the D16 44,885 pin: a change in the
    // decodable space must be a reviewed, visible event.
    assert_eq!(decodable, 2_200_958, "decodable sampled D16x escapes (reserved: {reserved})");
}

#[test]
fn d16x_stream_walk_handles_boundaries() {
    // Walk a mixed-width byte stream with the length-decode rule, as the
    // disassembler and fuzz oracle do, across a 16-byte "block" boundary
    // that a wide escape straddles; then truncate the stream mid-escape
    // and require the typed error.
    use d16_isa::{encode_bytes, AluOp, Gpr, Insn, Isa, MemWidth};
    let r = Gpr::new;
    let prog = [
        Insn::Mvi { rd: r(2), imm: 5 },      // 2B @0
        Insn::Lui { rd: r(3), imm: 0x1234 }, // 4B @2
        Insn::AluI { op: AluOp::Or, rd: r(3), rs1: r(3), imm: 0x5678 }, // 4B @6
        Insn::Alu { op: AluOp::Add, rd: r(4), rs1: r(4), rs2: r(3) }, // 2B @10
        Insn::Ld { w: MemWidth::W, rd: r(5), base: r(3), disp: -4 }, // 4B @12..16
        Insn::Nop,                           // 2B @16
    ];
    let mut bytes = Vec::new();
    for i in &prog {
        bytes.extend(encode_bytes(Isa::D16x, i).unwrap());
    }
    assert_eq!(bytes.len(), 18);
    // The straddling load begins at 12 and ends past the 16-byte mark.
    let mut off = 0usize;
    let mut decoded = Vec::new();
    while off < bytes.len() {
        let first = u16::from_le_bytes([bytes[off], bytes[off + 1]]);
        let len = d16x::insn_len(first) as usize;
        let second = (len == 4).then(|| u16::from_le_bytes([bytes[off + 2], bytes[off + 3]]));
        let (insn, ilen) = d16x::decode(first, second).unwrap();
        assert_eq!(ilen as usize, len);
        decoded.push(insn);
        off += len;
    }
    assert_eq!(decoded, prog);
    // Truncate inside the trailing escape of a shortened stream: the
    // walker sees the first halfword of the load with nothing after it.
    let cut = &bytes[..14];
    let mut off = 0usize;
    let mut last = None;
    while off < cut.len() {
        let first = u16::from_le_bytes([cut[off], cut[off + 1]]);
        let len = d16x::insn_len(first) as usize;
        let second = (off + 4 <= cut.len() && len == 4)
            .then(|| u16::from_le_bytes([cut[off + 2], cut[off + 3]]));
        last = Some(d16x::decode(first, second));
        off += len;
    }
    assert!(matches!(last, Some(Err(DecodeError::Truncated(_)))));
}
