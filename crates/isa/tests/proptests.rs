//! Property-style tests over the instruction encodings: arbitrary
//! well-formed instructions round-trip through both encoders, the
//! disassembler agrees with decode, and condition algebra holds.
//!
//! Deterministic `d16-testkit` generators replace the original `proptest`
//! strategies (offline builds, DESIGN.md §7); the 16-bit decode spaces are
//! now covered *exhaustively* rather than sampled.

use d16_isa::{abi, d16, dlxe, AluOp, Cond, CvtOp, FpCond, FpOp, Fpr, Gpr, Insn, MemWidth, Prec};
use d16_testkit::{cases, Rng};

fn gpr16(rng: &mut Rng) -> Gpr {
    Gpr::new(rng.below(16) as u8)
}

fn fpr16(rng: &mut Rng) -> Fpr {
    Fpr::new(rng.below(16) as u8)
}

fn fpr16_even(rng: &mut Rng) -> Fpr {
    Fpr::new((rng.below(8) * 2) as u8)
}

const ALU_OPS: [AluOp; 8] = [
    AluOp::Add,
    AluOp::Sub,
    AluOp::And,
    AluOp::Or,
    AluOp::Xor,
    AluOp::Shl,
    AluOp::Shr,
    AluOp::Shra,
];

const D16_CONDS: [Cond; 6] = [Cond::Eq, Cond::Ne, Cond::Lt, Cond::Ltu, Cond::Le, Cond::Leu];

/// An arbitrary instruction inside the D16 envelope.
fn d16_insn(rng: &mut Rng) -> Insn {
    match rng.below(17) {
        0 => {
            let rd = gpr16(rng);
            Insn::Alu { op: *rng.pick(&ALU_OPS), rd, rs1: rd, rs2: gpr16(rng) }
        }
        1 => {
            let rd = gpr16(rng);
            Insn::AluI { op: AluOp::Add, rd, rs1: rd, imm: rng.range_i32(0, 32) }
        }
        2 => Insn::Mvi { rd: gpr16(rng), imm: rng.range_i32(-256, 256) },
        3 => {
            Insn::Cmp { cond: *rng.pick(&D16_CONDS), rd: abi::R0, rs1: gpr16(rng), rs2: gpr16(rng) }
        }
        4 => Insn::Ld {
            w: MemWidth::W,
            rd: gpr16(rng),
            base: gpr16(rng),
            disp: rng.range_i32(0, 32) * 4,
        },
        5 => Insn::St {
            w: MemWidth::W,
            rs: gpr16(rng),
            base: gpr16(rng),
            disp: rng.range_i32(0, 32) * 4,
        },
        6 => Insn::Ld { w: MemWidth::Bu, rd: gpr16(rng), base: gpr16(rng), disp: 0 },
        7 => Insn::Ldc { rd: gpr16(rng), disp: rng.range_i32(0, 256) * 4 },
        8 => Insn::Br { disp: rng.range_i32(-512, 512) * 2 },
        9 => Insn::Bc { neg: rng.bool(), rs: abi::R0, disp: rng.range_i32(-512, 512) * 2 },
        10 => Insn::J { target: gpr16(rng) },
        11 => Insn::Jl { target: gpr16(rng) },
        12 => {
            let fd = fpr16_even(rng);
            Insn::FAlu { op: FpOp::Mul, prec: Prec::D, fd, fs1: fd, fs2: fpr16_even(rng) }
        }
        13 => Insn::FCmp { cond: FpCond::Lt, prec: Prec::S, fs1: fpr16(rng), fs2: fpr16(rng) },
        14 => Insn::Mtf { fd: fpr16(rng), rs: gpr16(rng) },
        15 => Insn::Mff { rd: gpr16(rng), fs: fpr16(rng) },
        16 => Insn::Cvt { op: CvtOp::Si2Sf, fd: fpr16(rng), fs: fpr16(rng) },
        _ => Insn::Rdsr { rd: gpr16(rng) },
    }
}

/// Every D16-expressible instruction round-trips bit-exactly.
#[test]
fn d16_roundtrip() {
    cases(4000, |case, rng| {
        let insn = d16_insn(rng);
        let w = d16::encode(&insn).expect("in-envelope instruction must encode");
        let back = d16::decode(w).expect("encoded word must decode");
        assert_eq!(back, insn, "case {case}: {insn:?}");
    });
}

/// The same instructions are also DLXe-expressible (D16 is the more
/// constrained format) — except for its `ldc` literal load and for branch
/// displacements at halfword granularity, which only exist because D16
/// instructions are two bytes.
#[test]
fn d16_envelope_is_inside_dlxe() {
    cases(4000, |case, rng| {
        let insn = d16_insn(rng);
        let halfword_branch =
            matches!(insn, Insn::Br { disp } | Insn::Bc { disp, .. } if disp % 4 != 0);
        if matches!(insn, Insn::Ldc { .. }) {
            assert!(dlxe::encode(&insn).is_err(), "case {case}: ldc is D16-only");
        } else if halfword_branch {
            assert!(dlxe::encode(&insn).is_err(), "case {case}: halfword reach is D16-only");
        } else {
            let w = dlxe::encode(&insn)
                .unwrap_or_else(|e| panic!("case {case}: DLXe is a superset here: {e:?}"));
            let back = dlxe::decode(w).expect("decode");
            assert_eq!(back, dlxe::canonicalize(insn), "case {case}");
        }
    });
}

/// Decode is total-or-error on *every* halfword and agrees with
/// re-encoding (exhaustive over the 16-bit space).
#[test]
fn d16_decode_reencode() {
    for word in 0..=u16::MAX {
        if let Ok(insn) = d16::decode(word) {
            let w2 = d16::encode(&insn).expect("decoded instruction re-encodes");
            assert_eq!(d16::decode(w2).unwrap(), insn, "word {word:#06x}");
        }
    }
}

/// Same for random 32-bit words on DLXe (the space is too big to
/// exhaust).
#[test]
fn dlxe_decode_reencode() {
    cases(200_000, |_, rng| {
        let word = rng.next_u32();
        if let Ok(insn) = dlxe::decode(word) {
            let w2 = dlxe::encode(&insn).expect("decoded instruction re-encodes");
            assert_eq!(dlxe::decode(w2).unwrap(), insn, "word {word:#010x}");
        }
    });
}

/// Condition algebra: negation complements, swapping commutes.
#[test]
fn cond_algebra() {
    cases(10_000, |case, rng| {
        let a = rng.next_u32();
        let b = rng.next_u32();
        let c = *rng.pick(&Cond::ALL);
        assert_ne!(c.eval(a, b), c.negated().eval(a, b), "case {case}: {c:?}");
        assert_eq!(c.eval(a, b), c.swapped().eval(b, a), "case {case}: {c:?}");
        assert_eq!(c.negated().negated(), c);
        assert_eq!(c.swapped().swapped(), c);
    });
}

/// ALU evaluation matches two's-complement reference semantics.
#[test]
fn alu_reference() {
    cases(10_000, |case, rng| {
        let a = rng.next_u32();
        let b = rng.next_u32();
        assert_eq!(AluOp::Add.eval(a, b), a.wrapping_add(b), "case {case}");
        assert_eq!(AluOp::Sub.eval(a, b), a.wrapping_sub(b), "case {case}");
        assert_eq!(AluOp::Shl.eval(a, b), a.wrapping_shl(b & 31), "case {case}");
        assert_eq!(AluOp::Shra.eval(a, b), ((a as i32) >> (b & 31)) as u32, "case {case}");
    });
}

/// Disassembly of any decodable D16 word is accepted structurally
/// (non-empty, starts with a known mnemonic character class) — exhaustive.
#[test]
fn disasm_nonempty() {
    for word in 0..=u16::MAX {
        if let Ok(insn) = d16::decode(word) {
            let text = d16_isa::disassemble(&insn);
            assert!(!text.is_empty(), "word {word:#06x}");
            assert!(text.chars().next().unwrap().is_ascii_lowercase(), "word {word:#06x}: {text}");
        }
    }
}
