//! Property-based tests over the instruction encodings: arbitrary
//! well-formed instructions round-trip through both encoders, the
//! disassembler agrees with decode, and condition algebra holds.

use d16_isa::{
    abi, d16, dlxe, AluOp, Cond, CvtOp, FpCond, FpOp, Fpr, Gpr, Insn, MemWidth, Prec,
};
use proptest::prelude::*;

fn gpr16() -> impl Strategy<Value = Gpr> {
    (0u8..16).prop_map(Gpr::new)
}

fn fpr16() -> impl Strategy<Value = Fpr> {
    (0u8..16).prop_map(Fpr::new)
}

fn fpr16_even() -> impl Strategy<Value = Fpr> {
    (0u8..8).prop_map(|n| Fpr::new(n * 2))
}

fn alu_op() -> impl Strategy<Value = AluOp> {
    prop_oneof![
        Just(AluOp::Add),
        Just(AluOp::Sub),
        Just(AluOp::And),
        Just(AluOp::Or),
        Just(AluOp::Xor),
        Just(AluOp::Shl),
        Just(AluOp::Shr),
        Just(AluOp::Shra),
    ]
}

fn d16_cond() -> impl Strategy<Value = Cond> {
    prop_oneof![
        Just(Cond::Eq),
        Just(Cond::Ne),
        Just(Cond::Lt),
        Just(Cond::Ltu),
        Just(Cond::Le),
        Just(Cond::Leu),
    ]
}

/// Arbitrary instructions inside the D16 envelope.
fn d16_insn() -> impl Strategy<Value = Insn> {
    prop_oneof![
        (alu_op(), gpr16(), gpr16())
            .prop_map(|(op, rd, rs2)| Insn::Alu { op, rd, rs1: rd, rs2 }),
        (gpr16(), 0i32..32).prop_map(|(rd, imm)| Insn::AluI {
            op: AluOp::Add,
            rd,
            rs1: rd,
            imm
        }),
        (gpr16(), -256i32..256).prop_map(|(rd, imm)| Insn::Mvi { rd, imm }),
        (d16_cond(), gpr16(), gpr16())
            .prop_map(|(cond, rs1, rs2)| Insn::Cmp { cond, rd: abi::R0, rs1, rs2 }),
        (gpr16(), gpr16(), 0i32..32)
            .prop_map(|(rd, base, d)| Insn::Ld { w: MemWidth::W, rd, base, disp: d * 4 }),
        (gpr16(), gpr16(), 0i32..32)
            .prop_map(|(rs, base, d)| Insn::St { w: MemWidth::W, rs, base, disp: d * 4 }),
        (gpr16(), gpr16()).prop_map(|(rd, base)| Insn::Ld {
            w: MemWidth::Bu,
            rd,
            base,
            disp: 0
        }),
        (gpr16(), 0i32..256).prop_map(|(rd, d)| Insn::Ldc { rd, disp: d * 4 }),
        (-512i32..512).prop_map(|d| Insn::Br { disp: d * 2 }),
        (any::<bool>(), -512i32..512)
            .prop_map(|(neg, d)| Insn::Bc { neg, rs: abi::R0, disp: d * 2 }),
        gpr16().prop_map(|target| Insn::J { target }),
        gpr16().prop_map(|target| Insn::Jl { target }),
        (fpr16_even(), fpr16_even()).prop_map(|(fd, fs2)| Insn::FAlu {
            op: FpOp::Mul,
            prec: Prec::D,
            fd,
            fs1: fd,
            fs2
        }),
        (fpr16(), fpr16()).prop_map(|(fs1, fs2)| Insn::FCmp {
            cond: FpCond::Lt,
            prec: Prec::S,
            fs1,
            fs2
        }),
        (fpr16(), gpr16()).prop_map(|(fd, rs)| Insn::Mtf { fd, rs }),
        (gpr16(), fpr16()).prop_map(|(rd, fs)| Insn::Mff { rd, fs }),
        (fpr16(), fpr16()).prop_map(|(fd, fs)| Insn::Cvt { op: CvtOp::Si2Sf, fd, fs }),
        gpr16().prop_map(|rd| Insn::Rdsr { rd }),
    ]
}

proptest! {
    /// Every D16-expressible instruction round-trips bit-exactly.
    #[test]
    fn d16_roundtrip(insn in d16_insn()) {
        let w = d16::encode(&insn).expect("in-envelope instruction must encode");
        let back = d16::decode(w).expect("encoded word must decode");
        prop_assert_eq!(back, insn);
    }

    /// The same instructions are also DLXe-expressible (D16 is the more
    /// constrained format) — except for its `ldc` literal load and for
    /// branch displacements at halfword granularity, which only exist
    /// because D16 instructions are two bytes.
    #[test]
    fn d16_envelope_is_inside_dlxe(insn in d16_insn()) {
        let halfword_branch = matches!(
            insn,
            Insn::Br { disp } | Insn::Bc { disp, .. } if disp % 4 != 0
        );
        if matches!(insn, Insn::Ldc { .. }) {
            prop_assert!(dlxe::encode(&insn).is_err(), "ldc is D16-only");
        } else if halfword_branch {
            prop_assert!(dlxe::encode(&insn).is_err(), "halfword reach is D16-only");
        } else {
            let w = dlxe::encode(&insn).expect("DLXe is a superset here");
            let back = dlxe::decode(w).expect("decode");
            prop_assert_eq!(back, dlxe::canonicalize(insn));
        }
    }

    /// Decode is total-or-error on random halfwords and agrees with
    /// re-encoding.
    #[test]
    fn d16_decode_reencode(word in any::<u16>()) {
        if let Ok(insn) = d16::decode(word) {
            let w2 = d16::encode(&insn).expect("decoded instruction re-encodes");
            prop_assert_eq!(d16::decode(w2).unwrap(), insn);
        }
    }

    /// Same for random 32-bit words on DLXe.
    #[test]
    fn dlxe_decode_reencode(word in any::<u32>()) {
        if let Ok(insn) = dlxe::decode(word) {
            let w2 = dlxe::encode(&insn).expect("decoded instruction re-encodes");
            prop_assert_eq!(dlxe::decode(w2).unwrap(), insn);
        }
    }

    /// Condition algebra: negation complements, swapping commutes.
    #[test]
    fn cond_algebra(a in any::<u32>(), b in any::<u32>(), idx in 0usize..10) {
        let c = Cond::ALL[idx];
        prop_assert_ne!(c.eval(a, b), c.negated().eval(a, b));
        prop_assert_eq!(c.eval(a, b), c.swapped().eval(b, a));
        prop_assert_eq!(c.negated().negated(), c);
        prop_assert_eq!(c.swapped().swapped(), c);
    }

    /// ALU evaluation matches two's-complement reference semantics.
    #[test]
    fn alu_reference(a in any::<u32>(), b in any::<u32>()) {
        prop_assert_eq!(AluOp::Add.eval(a, b), a.wrapping_add(b));
        prop_assert_eq!(AluOp::Sub.eval(a, b), a.wrapping_sub(b));
        prop_assert_eq!(AluOp::Shl.eval(a, b), a.wrapping_shl(b & 31));
        prop_assert_eq!(AluOp::Shra.eval(a, b), ((a as i32) >> (b & 31)) as u32);
    }

    /// Disassembly of any decodable D16 word is accepted structurally
    /// (non-empty, starts with a known mnemonic character class).
    #[test]
    fn disasm_nonempty(word in any::<u16>()) {
        if let Ok(insn) = d16::decode(word) {
            let text = d16_isa::disassemble(&insn);
            prop_assert!(!text.is_empty());
            prop_assert!(text.chars().next().unwrap().is_ascii_lowercase());
        }
    }
}
