//! The architecture-level instruction type shared by both encodings.
//!
//! Following the paper's methodology — "D16 and DLXe instructions are
//! executed on the same five-stage execution pipeline" — the simulator
//! executes one abstract instruction type. The two ISAs are two *encoders*
//! of (subsets of) this type: [`crate::d16`] packs an [`Insn`] into 16 bits
//! and [`crate::dlxe`] into 32 bits, each rejecting operand shapes its
//! format cannot express.

use crate::op::{AluOp, Cond, CvtOp, FpCond, FpOp, MemWidth, Prec, TrapCode, UnOp};
use crate::reg::{Fpr, Gpr};

/// One machine instruction, in operand-explicit form.
///
/// Branch displacements (`disp` in [`Insn::Br`] and [`Insn::Bc`]) are byte
/// offsets relative to the address of the *following* instruction, i.e. the
/// delay-slot instruction; `Jdisp` displacements are relative to the same
/// point. Encoders scale them by the instruction width.
#[derive(Copy, Clone, PartialEq, Debug)]
#[allow(missing_docs)] // operand fields are described in each variant's doc
pub enum Insn {
    /// Three-register ALU operation `rd <- rs1 op rs2`.
    /// D16 requires `rd == rs1` (two-address form).
    Alu { op: AluOp, rd: Gpr, rs1: Gpr, rs2: Gpr },
    /// Immediate ALU operation `rd <- rs1 op imm`.
    ///
    /// D16 restricts `op` to `add/sub/shl/shr/shra`, `rd == rs1`, and
    /// `0 <= imm < 32`; DLXe allows `and/or/xor` too with 16-bit immediates
    /// (sign-extended for `add/sub`, zero-extended for logicals).
    AluI { op: AluOp, rd: Gpr, rs1: Gpr, imm: i32 },
    /// Unary operation `rd <- op rs` (`neg`, `inv`, `mv`).
    Un { op: UnOp, rd: Gpr, rs: Gpr },
    /// Move immediate: `rd <- imm`. D16: 9-bit signed (`MVI` format).
    /// DLXe assembles it as `addi rd, r0, imm16`.
    Mvi { rd: Gpr, imm: i32 },
    /// DLXe `mvhi`: set the upper sixteen bits, `rd <- imm << 16`.
    Lui { rd: Gpr, imm: u32 },
    /// Integer compare `rd <- (rs1 cond rs2) ? ~0 : 0`.
    ///
    /// D16: `rd` must be `r0` and `cond` must be one of the six D16
    /// conditions; the result is all-ones or all-zeros (paper, Table 1).
    /// DLXe allows any destination and all ten conditions.
    Cmp { cond: Cond, rd: Gpr, rs1: Gpr, rs2: Gpr },
    /// Integer compare with immediate (DLXe; also the optional D16 `cmpeqi`
    /// extension evaluated in the paper's §3.3.3 discussion).
    CmpI { cond: Cond, rd: Gpr, rs1: Gpr, imm: i32 },
    /// Load `rd <- mem[rs(base) + disp]`, one delay slot.
    ///
    /// D16: word loads take `0 <= disp <= 124`, `disp % 4 == 0`; subword
    /// loads are not offsettable (`disp == 0`). DLXe: 16-bit signed `disp`.
    Ld { w: MemWidth, rd: Gpr, base: Gpr, disp: i32 },
    /// Store `mem[base + disp] <- rs`, same displacement rules as [`Insn::Ld`].
    St { w: MemWidth, rs: Gpr, base: Gpr, disp: i32 },
    /// D16 `LDC` format: load a word from the literal pool,
    /// `rd <- mem[align4(pc + 2) + disp]` with `0 <= disp <= 1020`,
    /// `disp % 4 == 0`. Reconstructed PC-relative constant-pool load (see
    /// DESIGN.md §2); not encodable on DLXe.
    Ldc { rd: Gpr, disp: i32 },
    /// Unconditional PC-relative branch, one delay slot.
    Br { disp: i32 },
    /// Conditional branch `bz` (`neg == false`) / `bnz` (`neg == true`) on
    /// register `rs`, one delay slot. D16: `rs` must be `r0`.
    Bc { neg: bool, rs: Gpr, disp: i32 },
    /// Jump to the absolute address in `target`.
    J { target: Gpr },
    /// Conditional register jump `jz`/`jnz`: jump to `target` if `rs` is
    /// zero (`neg == false`) / nonzero (`neg == true`). D16: `rs` is `r0`.
    Jc { neg: bool, rs: Gpr, target: Gpr },
    /// Jump-and-link through a register; the link register is `r1` on D16
    /// and `r31` on DLXe (fixed by the ISA, not an operand).
    Jl { target: Gpr },
    /// DLXe J-type `j` (`link == false`) / `jal` (`link == true`) with a
    /// 26-bit word-scaled displacement. Not encodable on D16.
    Jdisp { link: bool, disp: i32 },
    /// FP arithmetic `fd <- fs1 op fs2` (`add.sf`, `mul.df`, ...).
    /// D16 requires `fd == fs1`. Double precision uses even registers.
    FAlu { op: FpOp, prec: Prec, fd: Fpr, fs1: Fpr, fs2: Fpr },
    /// FP negation `fd <- -fs`.
    FNeg { prec: Prec, fd: Fpr, fs: Fpr },
    /// FP compare; sets the FP status register read by `rdsr`.
    FCmp { cond: FpCond, prec: Prec, fs1: Fpr, fs2: Fpr },
    /// Mode conversion within the FP register file.
    Cvt { op: CvtOp, fd: Fpr, fs: Fpr },
    /// Move a GPR's 32 bits into an FP register (`mtf`): the FPU interface
    /// of the paper's prototype, which lacks direct FP loads/stores.
    Mtf { fd: Fpr, rs: Gpr },
    /// Move an FP register's 32 bits into a GPR (`mff`).
    Mff { rd: Gpr, fs: Fpr },
    /// Read the status register (FP compare result) into `rd`.
    Rdsr { rd: Gpr },
    /// System trap.
    Trap { code: TrapCode },
    /// No operation (assembles to `mv r0, r0` equivalents; kept explicit so
    /// delay-slot fills are visible in disassembly and statistics).
    Nop,
}

impl Insn {
    /// Whether this instruction is a control transfer (has a delay slot).
    pub fn is_control(&self) -> bool {
        matches!(
            self,
            Insn::Br { .. }
                | Insn::Bc { .. }
                | Insn::J { .. }
                | Insn::Jc { .. }
                | Insn::Jl { .. }
                | Insn::Jdisp { .. }
        )
    }

    /// Whether this instruction reads memory (loads, including `ldc`).
    pub fn is_load(&self) -> bool {
        matches!(self, Insn::Ld { .. } | Insn::Ldc { .. })
    }

    /// Whether this instruction writes memory.
    pub fn is_store(&self) -> bool {
        matches!(self, Insn::St { .. })
    }

    /// Whether this instruction executes in the floating-point unit.
    pub fn is_fpu(&self) -> bool {
        matches!(self, Insn::FAlu { .. } | Insn::FNeg { .. } | Insn::FCmp { .. } | Insn::Cvt { .. })
    }

    /// The GPR written by this instruction, if any. Used by the pipeline's
    /// delayed-load interlock detection and by the register allocator's
    /// verification pass.
    pub fn def_gpr(&self) -> Option<Gpr> {
        match *self {
            Insn::Alu { rd, .. }
            | Insn::AluI { rd, .. }
            | Insn::Un { rd, .. }
            | Insn::Mvi { rd, .. }
            | Insn::Lui { rd, .. }
            | Insn::Cmp { rd, .. }
            | Insn::CmpI { rd, .. }
            | Insn::Ld { rd, .. }
            | Insn::Ldc { rd, .. }
            | Insn::Mff { rd, .. }
            | Insn::Rdsr { rd, .. } => Some(rd),
            _ => None,
        }
    }

    /// The GPRs read by this instruction (up to two).
    pub fn use_gprs(&self) -> [Option<Gpr>; 2] {
        match *self {
            Insn::Alu { rs1, rs2, .. } | Insn::Cmp { rs1, rs2, .. } => [Some(rs1), Some(rs2)],
            Insn::AluI { rs1, .. } | Insn::CmpI { rs1, .. } => [Some(rs1), None],
            Insn::Un { rs, .. } => [Some(rs), None],
            Insn::Ld { base, .. } => [Some(base), None],
            Insn::St { rs, base, .. } => [Some(rs), Some(base)],
            Insn::Bc { rs, .. } => [Some(rs), None],
            Insn::J { target } | Insn::Jl { target } => [Some(target), None],
            Insn::Jc { rs, target, .. } => [Some(rs), Some(target)],
            Insn::Mtf { rs, .. } => [Some(rs), None],
            Insn::Trap { .. } => [Some(crate::reg::abi::RET), None],
            _ => [None, None],
        }
    }
}

/// Which instruction encoding a binary uses.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum Isa {
    /// The 16-bit format.
    D16,
    /// The 32-bit DLX variant.
    Dlxe,
    /// The mixed 16/32-bit format: every D16 halfword plus 32-bit escape
    /// forms (prefix `1001`) carrying 16-bit immediates and three-address
    /// ALU shapes. RVC/Thumb-2 style; see [`crate::d16x`].
    D16x,
}

impl Isa {
    /// All ISAs, D16 first (the paper's baseline for ratios). D16x last so
    /// the paper's original two-ISA tables keep their ordering.
    pub const ALL: [Isa; 3] = [Isa::D16, Isa::Dlxe, Isa::D16x];

    /// Fetch-unit width in bytes: the granularity at which instruction
    /// streams advance. D16x instructions are 2 or 4 bytes long but are
    /// fetched and aligned in 2-byte units, like D16.
    pub const fn insn_bytes(self) -> u32 {
        match self {
            Isa::D16 | Isa::D16x => 2,
            Isa::Dlxe => 4,
        }
    }

    /// Number of architecturally addressable general registers.
    pub const fn gpr_count(self) -> usize {
        match self {
            Isa::D16 | Isa::D16x => 16,
            Isa::Dlxe => 32,
        }
    }

    /// Number of architecturally addressable FP registers.
    pub const fn fpr_count(self) -> usize {
        match self {
            Isa::D16 | Isa::D16x => 16,
            Isa::Dlxe => 32,
        }
    }

    /// The link register written by jump-and-link.
    pub const fn link_reg(self) -> Gpr {
        match self {
            Isa::D16 | Isa::D16x => crate::reg::abi::D16_LINK,
            Isa::Dlxe => crate::reg::abi::DLXE_LINK,
        }
    }

    /// Display name used in tables ("D16" / "DLXe" / "D16x").
    pub const fn name(self) -> &'static str {
        match self {
            Isa::D16 => "D16",
            Isa::Dlxe => "DLXe",
            Isa::D16x => "D16x",
        }
    }
}

impl std::fmt::Display for Isa {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::abi;

    #[test]
    fn classification() {
        let ld = Insn::Ld { w: MemWidth::W, rd: Gpr::new(2), base: abi::SP, disp: 8 };
        assert!(ld.is_load() && !ld.is_store() && !ld.is_control());
        let br = Insn::Br { disp: -4 };
        assert!(br.is_control());
        let f = Insn::FAlu {
            op: FpOp::Mul,
            prec: Prec::D,
            fd: Fpr::new(0),
            fs1: Fpr::new(0),
            fs2: Fpr::new(2),
        };
        assert!(f.is_fpu());
    }

    #[test]
    fn def_use_sets() {
        let i = Insn::Alu { op: AluOp::Add, rd: Gpr::new(3), rs1: Gpr::new(4), rs2: Gpr::new(5) };
        assert_eq!(i.def_gpr(), Some(Gpr::new(3)));
        assert_eq!(i.use_gprs(), [Some(Gpr::new(4)), Some(Gpr::new(5))]);

        let st = Insn::St { w: MemWidth::W, rs: Gpr::new(6), base: abi::SP, disp: 0 };
        assert_eq!(st.def_gpr(), None);
        assert_eq!(st.use_gprs(), [Some(Gpr::new(6)), Some(abi::SP)]);
    }

    #[test]
    fn isa_parameters_match_paper() {
        assert_eq!(Isa::D16.insn_bytes(), 2);
        assert_eq!(Isa::Dlxe.insn_bytes(), 4);
        assert_eq!(Isa::D16.gpr_count(), 16);
        assert_eq!(Isa::Dlxe.gpr_count(), 32);
        assert_eq!(Isa::D16.link_reg(), Gpr::new(1));
        assert_eq!(Isa::Dlxe.link_reg(), Gpr::new(31));
        // D16x keeps D16's register file and fetch granularity.
        assert_eq!(Isa::D16x.insn_bytes(), 2);
        assert_eq!(Isa::D16x.gpr_count(), 16);
        assert_eq!(Isa::D16x.fpr_count(), 16);
        assert_eq!(Isa::D16x.link_reg(), Gpr::new(1));
        assert_eq!(Isa::ALL, [Isa::D16, Isa::Dlxe, Isa::D16x]);
    }
}
