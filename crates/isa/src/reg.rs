//! Register names and per-ISA register conventions.
//!
//! Both instruction sets define general-purpose registers ([`Gpr`]) and
//! floating-point registers ([`Fpr`]). D16 addresses sixteen of each with
//! 4-bit fields; DLXe addresses thirty-two of each with 5-bit fields.
//! The simulator always models 32 of each; the encoders reject registers a
//! format cannot express.

use std::fmt;

/// A general-purpose (integer) register, `r0`..`r31`.
///
/// ```
/// use d16_isa::Gpr;
/// let sp = Gpr::new(15);
/// assert_eq!(sp.index(), 15);
/// assert_eq!(sp.to_string(), "r15");
/// ```
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Gpr(u8);

impl Gpr {
    /// The always-available register count in the wide (DLXe) file.
    pub const COUNT: usize = 32;

    /// Constructs a register from its number.
    ///
    /// # Panics
    ///
    /// Panics if `n >= 32`.
    pub const fn new(n: u8) -> Self {
        assert!(n < 32, "GPR number out of range");
        Gpr(n)
    }

    /// Constructs a register if `n` is in range.
    pub const fn try_new(n: u8) -> Option<Self> {
        if n < 32 {
            Some(Gpr(n))
        } else {
            None
        }
    }

    /// The register number as an index into a register file.
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// The register number.
    pub const fn number(self) -> u8 {
        self.0
    }

    /// Whether a D16 4-bit register field can name this register.
    pub const fn fits_d16(self) -> bool {
        self.0 < 16
    }
}

impl fmt::Display for Gpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// A floating-point register, `f0`..`f31`.
///
/// FP registers are 32 bits wide. Double-precision values occupy an
/// even/odd pair, named by the even register, exactly as on the MIPS R2000
/// the paper's DLX baseline resembles.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Fpr(u8);

impl Fpr {
    /// The register count in the wide (DLXe) file.
    pub const COUNT: usize = 32;

    /// Constructs an FP register from its number.
    ///
    /// # Panics
    ///
    /// Panics if `n >= 32`.
    pub const fn new(n: u8) -> Self {
        assert!(n < 32, "FPR number out of range");
        Fpr(n)
    }

    /// Constructs an FP register if `n` is in range.
    pub const fn try_new(n: u8) -> Option<Self> {
        if n < 32 {
            Some(Fpr(n))
        } else {
            None
        }
    }

    /// The register number as an index into a register file.
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// The register number.
    pub const fn number(self) -> u8 {
        self.0
    }

    /// Whether a D16 4-bit register field can name this register.
    pub const fn fits_d16(self) -> bool {
        self.0 < 16
    }

    /// Whether this register can name a double-precision pair.
    pub const fn is_even(self) -> bool {
        self.0.is_multiple_of(2)
    }
}

impl fmt::Display for Fpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

/// Well-known registers shared by the software conventions of both ISAs.
///
/// The reproduction uses one numbering for both instruction sets so that the
/// register-file-size ablation (restricting DLXe to the D16 window
/// `r0..r15`) changes nothing but the allocatable set:
///
/// | register | role |
/// |---|---|
/// | `r0`  | D16: compare result / scratch; DLXe: hardwired zero |
/// | `r1`  | D16 link register (`jl`) |
/// | `r2`  | first argument / return value |
/// | `r13` | global pointer |
/// | `r15` | stack pointer |
/// | `r31` | DLXe link register (`jal`) |
pub mod abi {
    use super::{Fpr, Gpr};

    /// D16 compare destination; DLXe hardwired zero.
    pub const R0: Gpr = Gpr::new(0);
    /// D16 link register.
    pub const D16_LINK: Gpr = Gpr::new(1);
    /// DLXe link register (written by `jal`/`jalr`).
    pub const DLXE_LINK: Gpr = Gpr::new(31);
    /// First argument / integer return value.
    pub const RET: Gpr = Gpr::new(2);
    /// Argument registers (both ISAs).
    pub const ARGS: [Gpr; 4] = [Gpr::new(2), Gpr::new(3), Gpr::new(4), Gpr::new(5)];
    /// Global pointer (small-data base).
    pub const GP: Gpr = Gpr::new(13);
    /// Stack pointer.
    pub const SP: Gpr = Gpr::new(15);
    /// FP argument registers (single precision or even halves of pairs).
    pub const FARGS: [Fpr; 4] = [Fpr::new(0), Fpr::new(2), Fpr::new(4), Fpr::new(6)];
    /// FP return value register.
    pub const FRET: Fpr = Fpr::new(0);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gpr_roundtrip() {
        for n in 0..32 {
            let r = Gpr::new(n);
            assert_eq!(r.number(), n);
            assert_eq!(r.index(), n as usize);
            assert_eq!(r.fits_d16(), n < 16);
        }
    }

    #[test]
    fn gpr_try_new_rejects_out_of_range() {
        assert!(Gpr::try_new(31).is_some());
        assert!(Gpr::try_new(32).is_none());
        assert!(Fpr::try_new(32).is_none());
    }

    #[test]
    #[should_panic]
    fn gpr_new_panics_out_of_range() {
        let _ = Gpr::new(32);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Gpr::new(7).to_string(), "r7");
        assert_eq!(Fpr::new(12).to_string(), "f12");
    }

    #[test]
    fn fpr_pairing() {
        assert!(Fpr::new(4).is_even());
        assert!(!Fpr::new(5).is_even());
    }

    #[test]
    fn abi_registers_are_consistent() {
        assert_eq!(abi::ARGS[0], abi::RET);
        assert!(abi::SP.fits_d16());
        assert!(abi::GP.fits_d16());
        assert!(!abi::DLXE_LINK.fits_d16());
    }
}
