//! The D16x mixed 16/32-bit instruction format: encoder and decoder.
//!
//! D16x is a strict superset of the D16 halfword format (RISC-V C /
//! Thumb-2 style): every D16 pattern decodes unchanged, and the halfword
//! prefix `1001` — reserved in D16 — escapes to a 32-bit form whose second
//! halfword carries a 16-bit immediate or extra operand fields. Length
//! decoding is deterministic from the first halfword alone ([`insn_len`]),
//! so the stream can be walked from any instruction boundary.
//!
//! Wide layout, most significant bits first (`hw0` is the low halfword in
//! memory; `hw1` follows it):
//!
//! ```text
//! hw0   1 0 0 1 ffff yyyy xxxx      f: format; x/y: 4-bit register fields
//! hw1   iiiiiiiiiiiiiiii            16-bit immediate, or func+operands
//! ```
//!
//! Formats (`f`), with `hw1` interpretation:
//!
//! ```text
//!  0  XALU3   func=hw1[7:4]: 0..=7 reg op, rx <- ry op r[hw1 3:0]
//!             8..=10 shift-immediate, rx <- ry shift hw1[12:8]
//!  1  XADDI   rx <- ry + sext(imm16); y=0 encodes mvi rx, sext(imm16)
//!  2  XANDI   rx <- ry & zext(imm16)
//!  3  XORI    rx <- ry | zext(imm16)
//!  4  XXORI   rx <- ry ^ zext(imm16)
//!  5  XLUI    rx <- imm16 << 16 (y must be 0)
//!  6  XCMPI   r0 <- (ry cond sext(imm16)); x = D16 condition index 0..=5
//!  7  XLD.W   rx <- mem32[ry + sext(imm16)]
//!  8  XLDH    sign-extending halfword load, same operands
//!  9  XLDHU   zero-extending halfword load
//! 10  XLDB    sign-extending byte load
//! 11  XLDBU   zero-extending byte load
//! 12  XST.W   mem32[ry + sext(imm16)] <- rx
//! 13  XSTH    halfword store
//! 14  XSTB    byte store
//! 15  XJMP    pc-relative j (x=0) / jal (x=1), disp = sext(imm16)*2
//!             (y must be 0; link register r1, as in D16)
//! ```
//!
//! The encoder is **narrow-first**: it emits the 16-bit D16 form whenever
//! one exists and escapes to 32 bits only when the operand shape demands it
//! (three-address ALU, wide immediate, offsettable subword access, `mvhi`,
//! displacement jumps). Symmetrically, the decoder treats a wide pattern
//! whose instruction has a narrow encoding as *reserved*, so
//! `encode(decode(bytes)) == bytes` on every decodable sequence — the
//! property the disassembly round-trip oracle checks. `subi` has no wide
//! form; the encoder canonicalizes it to `addi` of the negated immediate
//! (which is why the D16x ALU-immediate range is the symmetric
//! -32767..=32767).

use crate::d16;
use crate::insn::Insn;
use crate::op::{AluOp, MemWidth};
use crate::reg::{abi, Gpr};
use crate::{DecodeError, EncodeError};

/// Signed 16-bit immediate range of the wide formats.
pub const SIMM_RANGE: std::ops::RangeInclusive<i32> = -32768..=32767;
/// Unsigned 16-bit immediate range (logicals, `mvhi`).
pub const UIMM_RANGE: std::ops::RangeInclusive<i32> = 0..=65535;
/// ALU-immediate range the *encoder* guarantees for every op with an
/// immediate form (symmetric, so `subi imm` ⇔ `addi -imm` always holds).
pub const ALU_IMM_RANGE: std::ops::RangeInclusive<i32> = -32767..=32767;
/// `XJMP` displacement range in bytes, relative to the delay slot.
pub const JMP_RANGE: std::ops::RangeInclusive<i32> = -65536..=65534;

/// The halfword prefix that escapes to a 32-bit instruction.
const PREFIX: u16 = 0b1001;

// Wide format codes (the `ffff` field of `hw0`).
mod xfmt {
    pub const ALU3: u16 = 0;
    pub const ADDI: u16 = 1;
    pub const ANDI: u16 = 2;
    pub const ORI: u16 = 3;
    pub const XORI: u16 = 4;
    pub const LUI: u16 = 5;
    pub const CMPI: u16 = 6;
    pub const LDW: u16 = 7;
    pub const LDH: u16 = 8;
    pub const LDHU: u16 = 9;
    pub const LDB: u16 = 10;
    pub const LDBU: u16 = 11;
    pub const STW: u16 = 12;
    pub const STH: u16 = 13;
    pub const STB: u16 = 14;
    pub const JMP: u16 = 15;
}

// XALU3 func codes (bits [7:4] of `hw1`).
const FUNC_SHIFT_IMM_BASE: u16 = 8; // shli shri shrai -> 8..=10

/// One encoded D16x instruction: a narrow halfword or a wide word.
///
/// The wide word's low halfword is `hw0` (the prefixed halfword); its
/// little-endian byte image is therefore `hw0` first, then `hw1`, matching
/// the fetch order of the 2-byte-granular instruction stream.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Enc {
    /// A 16-bit (narrow, D16) encoding.
    N(u16),
    /// A 32-bit escape encoding.
    W(u32),
}

impl Enc {
    /// Encoded length in bytes (2 or 4; an encoding is never empty).
    #[allow(clippy::len_without_is_empty)]
    pub const fn len(self) -> u32 {
        match self {
            Enc::N(_) => 2,
            Enc::W(_) => 4,
        }
    }

    /// The instruction's bytes in memory order.
    pub fn to_bytes(self) -> Vec<u8> {
        match self {
            Enc::N(h) => h.to_le_bytes().to_vec(),
            Enc::W(w) => w.to_le_bytes().to_vec(),
        }
    }
}

/// Length in bytes of the instruction whose first halfword is `first`:
/// 4 for the `1001` escape prefix, otherwise 2. This is the entire D16x
/// length-decode rule; it needs no other context, so any tool (fetch unit,
/// disassembler, branch-offset patcher) can walk a text segment from a
/// known instruction boundary.
pub const fn insn_len(first: u16) -> u32 {
    if first >> 12 == PREFIX {
        4
    } else {
        2
    }
}

fn hw0(f: u16, y: u16, x: u16) -> u16 {
    PREFIX << 12 | f << 8 | y << 4 | x
}

fn wide(f: u16, y: u16, x: u16, hw1: u16) -> u32 {
    (hw1 as u32) << 16 | hw0(f, y, x) as u32
}

fn check_simm16(imm: i32) -> Result<u16, EncodeError> {
    if SIMM_RANGE.contains(&imm) {
        Ok(imm as u16)
    } else {
        Err(EncodeError::ImmediateOutOfRange(imm))
    }
}

fn check_uimm16(imm: i32) -> Result<u16, EncodeError> {
    if UIMM_RANGE.contains(&imm) {
        Ok(imm as u16)
    } else {
        Err(EncodeError::ImmediateOutOfRange(imm))
    }
}

fn alu_func(op: AluOp) -> u16 {
    match op {
        AluOp::Add => 0,
        AluOp::Sub => 1,
        AluOp::And => 2,
        AluOp::Or => 3,
        AluOp::Xor => 4,
        AluOp::Shl => 5,
        AluOp::Shr => 6,
        AluOp::Shra => 7,
    }
}

fn alu_from_func(f: u16) -> AluOp {
    [AluOp::Add, AluOp::Sub, AluOp::And, AluOp::Or, AluOp::Xor, AluOp::Shl, AluOp::Shr, AluOp::Shra]
        [f as usize]
}

/// Encodes one instruction, preferring the 16-bit form.
///
/// # Errors
///
/// Returns an [`EncodeError`] when neither the narrow nor the wide format
/// can express the instruction. Shapes that exist only narrow (register
/// compares and branches, FPU, system) report the D16 encoder's error;
/// shapes with wide forms report the wide encoder's.
pub fn encode(insn: &Insn) -> Result<Enc, EncodeError> {
    match d16::encode(insn) {
        Ok(h) => Ok(Enc::N(h)),
        Err(narrow_err) => match insn {
            Insn::Alu { .. }
            | Insn::AluI { .. }
            | Insn::Mvi { .. }
            | Insn::Lui { .. }
            | Insn::CmpI { .. }
            | Insn::Ld { .. }
            | Insn::St { .. }
            | Insn::Jdisp { .. } => encode_wide(insn).map(Enc::W),
            _ => Err(narrow_err),
        },
    }
}

/// Encodes one instruction in the 32-bit escape format unconditionally,
/// even when a narrow form exists. The assembler uses this for relocation
/// sites, whose immediate field must stay 16 bits wide for the linker to
/// patch.
///
/// # Errors
///
/// Returns an [`EncodeError`] when the wide format cannot express the
/// instruction (it covers ALU, immediate, memory and displacement-jump
/// shapes only).
pub fn encode_wide(insn: &Insn) -> Result<u32, EncodeError> {
    let gpr4 = d16::gpr4;
    match *insn {
        Insn::Alu { op, rd, rs1, rs2 } => {
            Ok(wide(xfmt::ALU3, gpr4(rs1)?, gpr4(rd)?, alu_func(op) << 4 | gpr4(rs2)?))
        }
        Insn::AluI { op, rd, rs1, imm } => match op {
            AluOp::Add => {
                if rs1 == abi::R0 {
                    // XADDI with y=0 is the wide mvi; addi from r0 has no
                    // wide form (narrow covers rd == rs1 == r0).
                    return Err(EncodeError::NotInIsa("wide addi from r0"));
                }
                Ok(wide(xfmt::ADDI, gpr4(rs1)?, gpr4(rd)?, check_simm16(imm)?))
            }
            AluOp::Sub => {
                // No XSUBI: canonicalize onto XADDI of the negated
                // immediate (the symmetric ALU_IMM_RANGE guarantees it
                // fits whenever `imm` does).
                let neg = imm.checked_neg().ok_or(EncodeError::ImmediateOutOfRange(imm))?;
                if rs1 == abi::R0 {
                    return Err(EncodeError::NotInIsa("wide subi from r0"));
                }
                Ok(wide(xfmt::ADDI, gpr4(rs1)?, gpr4(rd)?, check_simm16(neg)?))
            }
            AluOp::And => Ok(wide(xfmt::ANDI, gpr4(rs1)?, gpr4(rd)?, check_uimm16(imm)?)),
            AluOp::Or => Ok(wide(xfmt::ORI, gpr4(rs1)?, gpr4(rd)?, check_uimm16(imm)?)),
            AluOp::Xor => Ok(wide(xfmt::XORI, gpr4(rs1)?, gpr4(rd)?, check_uimm16(imm)?)),
            AluOp::Shl | AluOp::Shr | AluOp::Shra => {
                if !(0..=31).contains(&imm) {
                    return Err(EncodeError::ImmediateOutOfRange(imm));
                }
                let func = FUNC_SHIFT_IMM_BASE + alu_func(op) - alu_func(AluOp::Shl);
                Ok(wide(xfmt::ALU3, gpr4(rs1)?, gpr4(rd)?, (imm as u16) << 8 | func << 4))
            }
        },
        Insn::Mvi { rd, imm } => Ok(wide(xfmt::ADDI, 0, gpr4(rd)?, check_simm16(imm)?)),
        Insn::Lui { rd, imm } => {
            if imm > 0xffff {
                return Err(EncodeError::ImmediateOutOfRange(imm as i32));
            }
            Ok(wide(xfmt::LUI, 0, gpr4(rd)?, imm as u16))
        }
        Insn::CmpI { cond, rd, rs1, imm } => {
            if rd != abi::R0 {
                return Err(EncodeError::CompareDestNotR0);
            }
            let ci = d16::d16_cond_index(cond).ok_or(EncodeError::ConditionNotInIsa(cond))?;
            Ok(wide(xfmt::CMPI, gpr4(rs1)?, ci, check_simm16(imm)?))
        }
        Insn::Ld { w, rd, base, disp } => {
            let f = match w {
                MemWidth::W => xfmt::LDW,
                MemWidth::H => xfmt::LDH,
                MemWidth::Hu => xfmt::LDHU,
                MemWidth::B => xfmt::LDB,
                MemWidth::Bu => xfmt::LDBU,
            };
            Ok(wide(f, gpr4(base)?, gpr4(rd)?, check_simm16(disp)?))
        }
        Insn::St { w, rs, base, disp } => {
            let f = match w {
                MemWidth::W => xfmt::STW,
                MemWidth::H | MemWidth::Hu => xfmt::STH,
                MemWidth::B | MemWidth::Bu => xfmt::STB,
            };
            Ok(wide(f, gpr4(base)?, gpr4(rs)?, check_simm16(disp)?))
        }
        Insn::Jdisp { link, disp } => {
            if disp % 2 != 0 || !JMP_RANGE.contains(&disp) {
                return Err(EncodeError::DisplacementOutOfRange(disp));
            }
            Ok(wide(xfmt::JMP, 0, link as u16, (disp / 2) as u16))
        }
        _ => Err(EncodeError::NotInIsa("32-bit escape for this shape")),
    }
}

/// Decodes one instruction from its first halfword and, when the first
/// halfword is the `1001` escape, the following one. Returns the
/// instruction and its length in bytes (2 or 4).
///
/// # Errors
///
/// [`DecodeError::Truncated`] when an escape's second halfword is absent;
/// [`DecodeError::Illegal`] for reserved patterns — which include any wide
/// pattern whose instruction the narrow format could express, so that
/// encode ∘ decode is the identity on decodable byte sequences.
pub fn decode(first: u16, second: Option<u16>) -> Result<(Insn, u32), DecodeError> {
    if first >> 12 != PREFIX {
        return Ok((d16::decode(first)?, 2));
    }
    let hw1 = second.ok_or(DecodeError::Truncated(first))?;
    let word = (hw1 as u32) << 16 | first as u32;
    Ok((decode_wide(word)?, 4))
}

/// Decodes a 32-bit escape word (`hw0` in the low half, `hw1` in the high
/// half, i.e. the little-endian word read at the instruction's address).
fn decode_wide(word: u32) -> Result<Insn, DecodeError> {
    let ill = || DecodeError::Illegal(word);
    let first = word as u16;
    let hw1 = (word >> 16) as u16;
    if first >> 12 != PREFIX {
        return Err(ill());
    }
    let f = (first >> 8) & 0xf;
    let x = Gpr::new((first & 0xf) as u8);
    let y = Gpr::new(((first >> 4) & 0xf) as u8);
    let simm = hw1 as i16 as i32;
    let uimm = hw1 as i32;
    let insn = match f {
        xfmt::ALU3 => {
            let func = (hw1 >> 4) & 0xf;
            if func <= 7 {
                if hw1 >> 8 != 0 {
                    return Err(ill());
                }
                let rs2 = Gpr::new((hw1 & 0xf) as u8);
                Insn::Alu { op: alu_from_func(func), rd: x, rs1: y, rs2 }
            } else if (FUNC_SHIFT_IMM_BASE..FUNC_SHIFT_IMM_BASE + 3).contains(&func) {
                if hw1 & 0xf != 0 || hw1 >> 13 != 0 {
                    return Err(ill());
                }
                let op = alu_from_func(func - FUNC_SHIFT_IMM_BASE + alu_func(AluOp::Shl));
                Insn::AluI { op, rd: x, rs1: y, imm: ((hw1 >> 8) & 0x1f) as i32 }
            } else {
                return Err(ill());
            }
        }
        xfmt::ADDI => {
            if y == abi::R0 {
                Insn::Mvi { rd: x, imm: simm }
            } else {
                Insn::AluI { op: AluOp::Add, rd: x, rs1: y, imm: simm }
            }
        }
        xfmt::ANDI => Insn::AluI { op: AluOp::And, rd: x, rs1: y, imm: uimm },
        xfmt::ORI => Insn::AluI { op: AluOp::Or, rd: x, rs1: y, imm: uimm },
        xfmt::XORI => Insn::AluI { op: AluOp::Xor, rd: x, rs1: y, imm: uimm },
        xfmt::LUI => {
            if y != abi::R0 {
                return Err(ill());
            }
            Insn::Lui { rd: x, imm: uimm as u32 }
        }
        xfmt::CMPI => {
            let ci = first & 0xf;
            if ci > 5 {
                return Err(ill());
            }
            Insn::CmpI { cond: d16::cond_from_index(ci), rd: abi::R0, rs1: y, imm: simm }
        }
        xfmt::LDW => Insn::Ld { w: MemWidth::W, rd: x, base: y, disp: simm },
        xfmt::LDH => Insn::Ld { w: MemWidth::H, rd: x, base: y, disp: simm },
        xfmt::LDHU => Insn::Ld { w: MemWidth::Hu, rd: x, base: y, disp: simm },
        xfmt::LDB => Insn::Ld { w: MemWidth::B, rd: x, base: y, disp: simm },
        xfmt::LDBU => Insn::Ld { w: MemWidth::Bu, rd: x, base: y, disp: simm },
        xfmt::STW => Insn::St { w: MemWidth::W, rs: x, base: y, disp: simm },
        xfmt::STH => Insn::St { w: MemWidth::H, rs: x, base: y, disp: simm },
        xfmt::STB => Insn::St { w: MemWidth::B, rs: x, base: y, disp: simm },
        xfmt::JMP => {
            if y != abi::R0 || first & 0xf > 1 {
                return Err(ill());
            }
            Insn::Jdisp { link: first & 1 == 1, disp: simm * 2 }
        }
        _ => unreachable!("4-bit format field"),
    };
    // A wide pattern whose instruction has a narrow encoding is reserved:
    // the narrow-first encoder would never produce it, and rejecting it
    // keeps decode -> encode the identity (the round-trip oracle's
    // invariant).
    if d16::encode(&insn).is_ok() {
        return Err(ill());
    }
    Ok(insn)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{Cond, UnOp};
    use crate::reg::Fpr;
    use crate::{FpOp, Prec};

    fn rt(insn: Insn) -> Insn {
        let e = encode(&insn).unwrap_or_else(|err| panic!("encode {insn:?}: {err}"));
        let (first, second) = match e {
            Enc::N(h) => (h, None),
            Enc::W(w) => (w as u16, Some((w >> 16) as u16)),
        };
        let (out, len) = decode(first, second).unwrap_or_else(|err| panic!("decode {e:?}: {err}"));
        assert_eq!(len, e.len(), "{insn:?}");
        out
    }

    #[test]
    fn narrow_forms_preferred() {
        let r = Gpr::new;
        // Everything D16 can say stays 2 bytes.
        let narrow = [
            Insn::Alu { op: AluOp::Add, rd: r(3), rs1: r(3), rs2: r(7) },
            Insn::AluI { op: AluOp::Add, rd: r(4), rs1: r(4), imm: 31 },
            Insn::Mvi { rd: r(6), imm: -256 },
            Insn::Ld { w: MemWidth::W, rd: r(2), base: r(15), disp: 124 },
            Insn::St { w: MemWidth::B, rs: r(2), base: r(3), disp: 0 },
            Insn::Br { disp: -1024 },
            Insn::Jl { target: r(12) },
            Insn::Nop,
        ];
        for i in narrow {
            assert!(matches!(encode(&i), Ok(Enc::N(_))), "{i:?}");
            assert_eq!(rt(i), i);
        }
    }

    #[test]
    fn wide_forms_roundtrip() {
        let r = Gpr::new;
        let wide = [
            // Three-address ALU.
            Insn::Alu { op: AluOp::Sub, rd: r(3), rs1: r(5), rs2: r(7) },
            Insn::Alu { op: AluOp::Shra, rd: r(1), rs1: r(2), rs2: r(15) },
            // Wide immediates.
            Insn::AluI { op: AluOp::Add, rd: r(4), rs1: r(4), imm: 32 },
            Insn::AluI { op: AluOp::Add, rd: r(4), rs1: r(5), imm: -1 },
            Insn::AluI { op: AluOp::And, rd: r(4), rs1: r(4), imm: 0xff00 },
            Insn::AluI { op: AluOp::Or, rd: r(2), rs1: r(3), imm: 65535 },
            Insn::AluI { op: AluOp::Xor, rd: r(2), rs1: r(2), imm: 4660 },
            Insn::AluI { op: AluOp::Shl, rd: r(2), rs1: r(3), imm: 31 },
            Insn::AluI { op: AluOp::Shra, rd: r(2), rs1: r(3), imm: 0 },
            Insn::Mvi { rd: r(6), imm: 30000 },
            Insn::Mvi { rd: r(6), imm: -32768 },
            Insn::Lui { rd: r(9), imm: 0xffff },
            Insn::CmpI { cond: Cond::Lt, rd: abi::R0, rs1: r(5), imm: -3 },
            Insn::CmpI { cond: Cond::Eq, rd: abi::R0, rs1: r(5), imm: 32 },
            // Wide displacements, including offsettable subword access.
            Insn::Ld { w: MemWidth::W, rd: r(2), base: r(15), disp: -4 },
            Insn::Ld { w: MemWidth::W, rd: r(2), base: r(15), disp: 126 },
            Insn::Ld { w: MemWidth::Bu, rd: r(2), base: r(3), disp: 1 },
            Insn::Ld { w: MemWidth::H, rd: r(2), base: r(3), disp: -2 },
            Insn::St { w: MemWidth::W, rs: r(2), base: r(15), disp: 32767 },
            Insn::St { w: MemWidth::H, rs: r(2), base: r(3), disp: 6 },
            Insn::St { w: MemWidth::B, rs: r(2), base: r(3), disp: -1 },
            // Displacement jumps.
            Insn::Jdisp { link: false, disp: -65536 },
            Insn::Jdisp { link: true, disp: 65534 },
            Insn::Jdisp { link: true, disp: 0 },
        ];
        for i in wide {
            assert!(matches!(encode(&i), Ok(Enc::W(_))), "{i:?}");
            assert_eq!(rt(i), i);
        }
    }

    #[test]
    fn subi_canonicalizes_to_addi() {
        let r = Gpr::new;
        let sub = Insn::AluI { op: AluOp::Sub, rd: r(3), rs1: r(4), imm: 1000 };
        let add = Insn::AluI { op: AluOp::Add, rd: r(3), rs1: r(4), imm: -1000 };
        assert_eq!(encode(&sub), encode(&add));
        assert_eq!(rt(sub), add);
        // The symmetric range edge: ±32767 encode, ±32768 subi does not.
        assert!(encode(&Insn::AluI { op: AluOp::Sub, rd: r(3), rs1: r(4), imm: 32767 }).is_ok());
        assert!(encode(&Insn::AluI { op: AluOp::Sub, rd: r(3), rs1: r(4), imm: -32768 }).is_err());
    }

    #[test]
    fn rejects_out_of_range() {
        let r = Gpr::new;
        assert!(encode(&Insn::AluI { op: AluOp::Add, rd: r(1), rs1: r(2), imm: 32768 }).is_err());
        assert!(encode(&Insn::AluI { op: AluOp::And, rd: r(1), rs1: r(2), imm: -1 }).is_err());
        assert!(encode(&Insn::Mvi { rd: r(1), imm: 65536 }).is_err());
        assert!(encode(&Insn::Lui { rd: r(1), imm: 0x10000 }).is_err());
        assert!(encode(&Insn::Ld { w: MemWidth::W, rd: r(1), base: r(2), disp: 32768 }).is_err());
        assert!(encode(&Insn::Jdisp { link: false, disp: 65536 }).is_err());
        assert!(encode(&Insn::Jdisp { link: false, disp: 3 }).is_err(), "odd displacement");
        assert!(encode(&Insn::Alu { op: AluOp::Add, rd: r(16), rs1: r(1), rs2: r(2) }).is_err());
    }

    #[test]
    fn rejects_narrow_only_shapes_with_narrow_errors() {
        let r = Gpr::new;
        // Register compares keep the D16 r0 discipline.
        let e = encode(&Insn::Cmp { cond: Cond::Eq, rd: r(3), rs1: r(1), rs2: r(2) });
        assert!(matches!(e, Err(EncodeError::CompareDestNotR0)));
        // Conditional branches test r0 only and have no wide reach.
        let e = encode(&Insn::Bc { neg: false, rs: r(3), disp: 0 });
        assert!(matches!(e, Err(EncodeError::BranchSourceNotR0)));
        let e = encode(&Insn::Br { disp: 2000 });
        assert!(matches!(e, Err(EncodeError::DisplacementOutOfRange(2000))));
        // The FPU interface stays two-address.
        let f = Fpr::new;
        let e =
            encode(&Insn::FAlu { op: FpOp::Add, prec: Prec::S, fd: f(1), fs1: f(2), fs2: f(3) });
        assert!(matches!(e, Err(EncodeError::NotTwoAddress)));
        // Immediate compares outside the D16 condition set.
        let e = encode(&Insn::CmpI { cond: Cond::Gt, rd: abi::R0, rs1: r(1), imm: 5 });
        assert!(matches!(e, Err(EncodeError::ConditionNotInIsa(Cond::Gt))));
    }

    #[test]
    fn truncated_escape_is_typed_error() {
        let w = match encode(&Insn::Lui { rd: Gpr::new(4), imm: 18 }).unwrap() {
            Enc::W(w) => w,
            Enc::N(_) => unreachable!(),
        };
        let first = w as u16;
        assert_eq!(insn_len(first), 4);
        assert_eq!(decode(first, None), Err(DecodeError::Truncated(first)));
        // A narrow halfword never asks for a second one.
        let h = match encode(&Insn::Nop).unwrap() {
            Enc::N(h) => h,
            Enc::W(_) => unreachable!(),
        };
        assert_eq!(insn_len(h), 2);
        assert!(decode(h, None).is_ok());
    }

    #[test]
    fn length_rule_is_prefix_only() {
        for first in 0..=u16::MAX {
            let expect = if first >> 12 == 0b1001 { 4 } else { 2 };
            assert_eq!(insn_len(first), expect);
        }
    }

    #[test]
    fn narrow_decode_agrees_with_d16() {
        // On every non-escape halfword, D16x decode is exactly D16 decode.
        for first in 0..=u16::MAX {
            if first >> 12 == 0b1001 {
                continue;
            }
            match (decode(first, Some(0xabcd)), d16::decode(first)) {
                (Ok((i, 2)), Ok(j)) => assert_eq!(i, j, "{first:#06x}"),
                (Err(_), Err(_)) => {}
                (a, b) => panic!("{first:#06x}: d16x {a:?} vs d16 {b:?}"),
            }
        }
    }

    #[test]
    fn sampled_wide_decode_encode_roundtrip() {
        // Every decodable wide pattern re-encodes to the same four bytes:
        // the decoder rejects non-canonical patterns (unused fields set,
        // or an instruction the narrow format could express), so
        // decode -> encode is the identity. LCG-sampled, as in the DLXe
        // round-trip test.
        let mut state = 0x2026_0808u32;
        let mut decodable = 0u32;
        for _ in 0..2_000_000 {
            state = state.wrapping_mul(1664525).wrapping_add(1013904223);
            let word = state & 0xffff_0fff | (PREFIX as u32) << 12;
            if let Ok(insn) = decode_wide(word) {
                decodable += 1;
                let again = encode(&insn)
                    .unwrap_or_else(|e| panic!("re-encode of {word:#010x} -> {insn:?}: {e}"));
                assert_eq!(again, Enc::W(word), "{word:#010x} -> {insn:?}");
            }
        }
        // Most of the escape space is populated (the immediate formats
        // accept nearly every hw1).
        assert!(decodable > 1_000_000, "only {decodable} wide patterns decodable");
    }

    #[test]
    fn wide_patterns_with_narrow_twins_are_reserved() {
        let r = Gpr::new;
        // add r3, r3, r7 has a narrow form; its hand-built wide pattern
        // must not decode.
        let w = wide(xfmt::ALU3, 3, 3, alu_func(AluOp::Add) << 4 | 7);
        assert!(decode_wide(w).is_err());
        // mvi r6, 7 fits the narrow MVI field.
        let w = wide(xfmt::ADDI, 0, 6, 7);
        assert!(decode_wide(w).is_err());
        // ld r2, 8(r15): narrow word displacement.
        let w = wide(xfmt::LDW, 15, 2, 8);
        assert!(decode_wide(w).is_err());
        // cmpeqi r5, 3: the narrow cmpeqi extension pattern.
        let w = wide(xfmt::CMPI, 5, 0, 3);
        assert!(decode_wide(w).is_err());
        // The wide forms of the same shapes decode fine.
        assert_eq!(
            decode_wide(wide(xfmt::ALU3, 5, 3, alu_func(AluOp::Add) << 4 | 7)).unwrap(),
            Insn::Alu { op: AluOp::Add, rd: r(3), rs1: r(5), rs2: r(7) },
        );
        assert_eq!(
            decode_wide(wide(xfmt::ADDI, 0, 6, 300)).unwrap(),
            Insn::Mvi { rd: r(6), imm: 300 },
        );
    }

    #[test]
    fn ldc_remains_decodable_for_superset_compat() {
        // D16x is a strict superset of D16: the narrow literal-pool load
        // still decodes (the compiler just never emits it — has_ldc is
        // false in the D16x EncodingParams).
        let h = d16::encode(&Insn::Ldc { rd: Gpr::new(9), disp: 1020 }).unwrap();
        assert_eq!(decode(h, None).unwrap(), (Insn::Ldc { rd: Gpr::new(9), disp: 1020 }, 2));
    }

    #[test]
    fn mv_narrow_is_not_two_address_constrained() {
        // Regression guard for the fusion pass's lui+addi shape: or with
        // a wide immediate onto a *different* destination escapes, onto
        // the same destination also escapes (no narrow or-immediate).
        let r = Gpr::new;
        let i = Insn::AluI { op: AluOp::Or, rd: r(4), rs1: r(4), imm: 0x1234 };
        assert!(matches!(encode(&i), Ok(Enc::W(_))));
        let mv = Insn::Un { op: UnOp::Mv, rd: r(4), rs: r(9) };
        assert!(matches!(encode(&mv), Ok(Enc::N(_))));
    }
}
