//! The operation vocabulary shared by D16 and DLXe.
//!
//! Both instruction sets implement "approximately the same" set of
//! operations (paper, Table 1); they differ in how operations are *encoded*
//! and which operand shapes each format can express. This module defines the
//! operation enums; [`crate::insn::Insn`] combines them with operands.

use std::fmt;

/// Binary integer ALU operations.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum AluOp {
    /// Two's-complement addition.
    Add,
    /// Two's-complement subtraction.
    Sub,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Logical shift left.
    Shl,
    /// Logical shift right.
    Shr,
    /// Arithmetic shift right.
    Shra,
}

impl AluOp {
    /// Evaluates the operation on 32-bit values with the machine's wrapping
    /// semantics as defined by [`crate::sem`]. Shift counts use the low
    /// five bits.
    #[inline]
    pub fn eval(self, a: u32, b: u32) -> u32 {
        use crate::sem;
        match self {
            AluOp::Add => sem::add(a as i32, b as i32) as u32,
            AluOp::Sub => sem::sub(a as i32, b as i32) as u32,
            AluOp::And => a & b,
            AluOp::Or => a | b,
            AluOp::Xor => a ^ b,
            AluOp::Shl => sem::shl(a as i32, b as i32) as u32,
            AluOp::Shr => sem::shr(a as i32, b as i32) as u32,
            AluOp::Shra => sem::sar(a as i32, b as i32) as u32,
        }
    }

    /// The assembler mnemonic for the register form.
    pub fn mnemonic(self) -> &'static str {
        match self {
            AluOp::Add => "add",
            AluOp::Sub => "sub",
            AluOp::And => "and",
            AluOp::Or => "or",
            AluOp::Xor => "xor",
            AluOp::Shl => "shl",
            AluOp::Shr => "shr",
            AluOp::Shra => "shra",
        }
    }

    /// The assembler mnemonic for the immediate form (`addi`, `shli`, ...).
    pub fn imm_mnemonic(self) -> &'static str {
        match self {
            AluOp::Add => "addi",
            AluOp::Sub => "subi",
            AluOp::And => "andi",
            AluOp::Or => "ori",
            AluOp::Xor => "xori",
            AluOp::Shl => "shli",
            AluOp::Shr => "shri",
            AluOp::Shra => "shrai",
        }
    }
}

impl fmt::Display for AluOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// Unary integer operations (one source, one destination).
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum UnOp {
    /// Two's-complement negation. Unneeded on DLXe (`sub rd, r0, rs`), but
    /// present in the D16 opcode set because D16 has no zero register.
    Neg,
    /// Bitwise complement ("inv" in the paper's opcode table).
    Inv,
    /// Register move.
    Mv,
}

impl UnOp {
    /// Evaluates the operation.
    #[inline]
    pub fn eval(self, a: u32) -> u32 {
        match self {
            UnOp::Neg => (a as i32).wrapping_neg() as u32,
            UnOp::Inv => !a,
            UnOp::Mv => a,
        }
    }

    /// The assembler mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            UnOp::Neg => "neg",
            UnOp::Inv => "inv",
            UnOp::Mv => "mv",
        }
    }
}

impl fmt::Display for UnOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// Integer comparison conditions.
///
/// D16 compares support `lt, ltu, le, leu, eq, neq` with both operands in
/// registers and an implicit destination (`r0`). DLXe additionally allows
/// `gt, gtu, ge, geu`, immediate right operands, and any GPR destination
/// (paper, Table 1).
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Cond {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Signed less-than.
    Lt,
    /// Unsigned less-than.
    Ltu,
    /// Signed less-or-equal.
    Le,
    /// Unsigned less-or-equal.
    Leu,
    /// Signed greater-than (DLXe only).
    Gt,
    /// Unsigned greater-than (DLXe only).
    Gtu,
    /// Signed greater-or-equal (DLXe only).
    Ge,
    /// Unsigned greater-or-equal (DLXe only).
    Geu,
}

impl Cond {
    /// All conditions, in encoding order.
    pub const ALL: [Cond; 10] = [
        Cond::Eq,
        Cond::Ne,
        Cond::Lt,
        Cond::Ltu,
        Cond::Le,
        Cond::Leu,
        Cond::Gt,
        Cond::Gtu,
        Cond::Ge,
        Cond::Geu,
    ];

    /// Whether the condition is part of the D16 compare set.
    pub const fn in_d16(self) -> bool {
        matches!(self, Cond::Eq | Cond::Ne | Cond::Lt | Cond::Ltu | Cond::Le | Cond::Leu)
    }

    /// Evaluates the condition on 32-bit operands.
    #[inline]
    pub fn eval(self, a: u32, b: u32) -> bool {
        let (sa, sb) = (a as i32, b as i32);
        match self {
            Cond::Eq => a == b,
            Cond::Ne => a != b,
            Cond::Lt => sa < sb,
            Cond::Ltu => a < b,
            Cond::Le => sa <= sb,
            Cond::Leu => a <= b,
            Cond::Gt => sa > sb,
            Cond::Gtu => a > b,
            Cond::Ge => sa >= sb,
            Cond::Geu => a >= b,
        }
    }

    /// The condition with operands swapped (`a cond b` ⇔ `b swapped a`).
    pub fn swapped(self) -> Cond {
        match self {
            Cond::Eq => Cond::Eq,
            Cond::Ne => Cond::Ne,
            Cond::Lt => Cond::Gt,
            Cond::Ltu => Cond::Gtu,
            Cond::Le => Cond::Ge,
            Cond::Leu => Cond::Geu,
            Cond::Gt => Cond::Lt,
            Cond::Gtu => Cond::Ltu,
            Cond::Ge => Cond::Le,
            Cond::Geu => Cond::Leu,
        }
    }

    /// The logical negation of the condition.
    pub fn negated(self) -> Cond {
        match self {
            Cond::Eq => Cond::Ne,
            Cond::Ne => Cond::Eq,
            Cond::Lt => Cond::Ge,
            Cond::Ltu => Cond::Geu,
            Cond::Le => Cond::Gt,
            Cond::Leu => Cond::Gtu,
            Cond::Gt => Cond::Le,
            Cond::Gtu => Cond::Leu,
            Cond::Ge => Cond::Lt,
            Cond::Geu => Cond::Ltu,
        }
    }

    /// Condition suffix used in mnemonics (`cmplt`, `sltiu`-style names).
    pub fn suffix(self) -> &'static str {
        match self {
            Cond::Eq => "eq",
            Cond::Ne => "ne",
            Cond::Lt => "lt",
            Cond::Ltu => "ltu",
            Cond::Le => "le",
            Cond::Leu => "leu",
            Cond::Gt => "gt",
            Cond::Gtu => "gtu",
            Cond::Ge => "ge",
            Cond::Geu => "geu",
        }
    }
}

impl fmt::Display for Cond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.suffix())
    }
}

/// Memory access widths. The `u` variants zero-extend on load.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum MemWidth {
    /// Signed byte.
    B,
    /// Unsigned byte.
    Bu,
    /// Signed halfword.
    H,
    /// Unsigned halfword.
    Hu,
    /// Word (32 bits).
    W,
}

impl MemWidth {
    /// Access size in bytes.
    pub const fn bytes(self) -> u32 {
        match self {
            MemWidth::B | MemWidth::Bu => 1,
            MemWidth::H | MemWidth::Hu => 2,
            MemWidth::W => 4,
        }
    }

    /// Whether this is a sub-word ("subword" in the paper) access. D16
    /// subword accesses are not offsettable.
    pub const fn is_subword(self) -> bool {
        !matches!(self, MemWidth::W)
    }

    /// Load mnemonic (`ld`, `ldh`, `ldhu`, `ldb`, `ldbu`).
    pub fn load_mnemonic(self) -> &'static str {
        match self {
            MemWidth::B => "ldb",
            MemWidth::Bu => "ldbu",
            MemWidth::H => "ldh",
            MemWidth::Hu => "ldhu",
            MemWidth::W => "ld",
        }
    }

    /// Store mnemonic (`st`, `sth`, `stb`). Unsigned widths store the same
    /// bits as their signed counterparts.
    pub fn store_mnemonic(self) -> &'static str {
        match self {
            MemWidth::B | MemWidth::Bu => "stb",
            MemWidth::H | MemWidth::Hu => "sth",
            MemWidth::W => "st",
        }
    }
}

/// Floating-point arithmetic operations (suffixed `.sf`/`.df` in the paper).
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum FpOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division.
    Div,
}

impl FpOp {
    /// Base mnemonic, without the precision suffix.
    pub fn mnemonic(self) -> &'static str {
        match self {
            FpOp::Add => "add",
            FpOp::Sub => "sub",
            FpOp::Mul => "mul",
            FpOp::Div => "div",
        }
    }
}

/// Floating-point precision: single (`.sf`) or double (`.df`).
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Prec {
    /// Single precision, one FP register.
    S,
    /// Double precision, an even/odd FP register pair.
    D,
}

impl Prec {
    /// The paper's mnemonic suffix (`sf` or `df`).
    pub fn suffix(self) -> &'static str {
        match self {
            Prec::S => "sf",
            Prec::D => "df",
        }
    }
}

/// Floating-point comparison conditions. Like the MIPS R2000 the paper's
/// pipeline resembles, only `eq/lt/le` exist; other relations come from
/// operand swaps plus branch-on-false. The result sets the FP status
/// register, read with `rdsr` (paper, Table 1).
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum FpCond {
    /// Equal.
    Eq,
    /// Less-than.
    Lt,
    /// Less-or-equal.
    Le,
}

impl FpCond {
    /// Evaluates the condition. Any comparison with a NaN is false.
    #[inline]
    pub fn eval(self, a: f64, b: f64) -> bool {
        match self {
            FpCond::Eq => a == b,
            FpCond::Lt => a < b,
            FpCond::Le => a <= b,
        }
    }

    /// Condition suffix used in mnemonics.
    pub fn suffix(self) -> &'static str {
        match self {
            FpCond::Eq => "eq",
            FpCond::Lt => "lt",
            FpCond::Le => "le",
        }
    }
}

/// Mode conversions between integer and FP representations
/// (`si2sf, sf2df, df2sf, ...` in the paper's Table 1).
///
/// Conversions operate within the FP register file: integer bit patterns
/// travel to/from the FPU via `mtf`/`mff`, matching the paper's simplified
/// FPU interface (no direct FP loads/stores).
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum CvtOp {
    /// 32-bit signed integer to single.
    Si2Sf,
    /// 32-bit signed integer to double.
    Si2Df,
    /// Single to double.
    Sf2Df,
    /// Double to single.
    Df2Sf,
    /// Single to 32-bit signed integer (truncating).
    Sf2Si,
    /// Double to 32-bit signed integer (truncating).
    Df2Si,
}

impl CvtOp {
    /// The assembler mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            CvtOp::Si2Sf => "si2sf",
            CvtOp::Si2Df => "si2df",
            CvtOp::Sf2Df => "sf2df",
            CvtOp::Df2Sf => "df2sf",
            CvtOp::Sf2Si => "sf2si",
            CvtOp::Df2Si => "df2si",
        }
    }

    /// Whether the source is a double-precision pair.
    pub const fn src_is_double(self) -> bool {
        matches!(self, CvtOp::Df2Sf | CvtOp::Df2Si)
    }

    /// Whether the destination is a double-precision pair.
    pub const fn dst_is_double(self) -> bool {
        matches!(self, CvtOp::Si2Df | CvtOp::Sf2Df)
    }
}

/// Trap (system call) codes understood by the simulator.
///
/// The paper's machine has a single `trap` instruction; the reproduction
/// assigns it a small vector of services sufficient to run and validate the
/// benchmark suite without an operating system.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum TrapCode {
    /// Stop execution; `r2` holds the exit status.
    Halt,
    /// Write the low byte of `r2` to the simulator console.
    PutChar,
    /// Write `r2` as a signed decimal integer to the simulator console.
    PutInt,
    /// Read the cycle-free instruction count into `r2` (for self-timing
    /// workloads; deterministic).
    ReadInsnCount,
}

impl TrapCode {
    /// Encoding used in the instruction's code field.
    pub const fn code(self) -> u8 {
        match self {
            TrapCode::Halt => 0,
            TrapCode::PutChar => 1,
            TrapCode::PutInt => 2,
            TrapCode::ReadInsnCount => 3,
        }
    }

    /// Decodes a trap code field.
    pub const fn from_code(code: u8) -> Option<TrapCode> {
        match code {
            0 => Some(TrapCode::Halt),
            1 => Some(TrapCode::PutChar),
            2 => Some(TrapCode::PutInt),
            3 => Some(TrapCode::ReadInsnCount),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alu_eval_matches_two_complement() {
        assert_eq!(AluOp::Add.eval(u32::MAX, 1), 0);
        assert_eq!(AluOp::Sub.eval(0, 1), u32::MAX);
        assert_eq!(AluOp::Shra.eval(0x8000_0000, 31), u32::MAX);
        assert_eq!(AluOp::Shr.eval(0x8000_0000, 31), 1);
        assert_eq!(AluOp::Shl.eval(1, 33), 2, "shift counts are mod 32");
    }

    #[test]
    fn unop_eval() {
        assert_eq!(UnOp::Neg.eval(1), u32::MAX);
        assert_eq!(UnOp::Neg.eval(0x8000_0000), 0x8000_0000, "INT_MIN negates to itself");
        assert_eq!(UnOp::Inv.eval(0), u32::MAX);
        assert_eq!(UnOp::Mv.eval(42), 42);
    }

    #[test]
    fn cond_eval_signedness() {
        // -1 < 1 signed, but 0xffffffff > 1 unsigned.
        assert!(Cond::Lt.eval(u32::MAX, 1));
        assert!(!Cond::Ltu.eval(u32::MAX, 1));
        assert!(Cond::Gtu.eval(u32::MAX, 1));
    }

    #[test]
    fn cond_negation_partitions() {
        for c in Cond::ALL {
            for (a, b) in [(0u32, 0u32), (1, 2), (u32::MAX, 1), (5, 5), (0x8000_0000, 7)] {
                assert_ne!(c.eval(a, b), c.negated().eval(a, b), "{c:?} on ({a},{b})");
                assert_eq!(c.eval(a, b), c.swapped().eval(b, a), "{c:?} swap ({a},{b})");
            }
        }
    }

    #[test]
    fn d16_cond_subset() {
        let d16: Vec<_> = Cond::ALL.iter().filter(|c| c.in_d16()).collect();
        assert_eq!(d16.len(), 6);
        assert!(!Cond::Gt.in_d16());
    }

    #[test]
    fn mem_width_properties() {
        assert_eq!(MemWidth::W.bytes(), 4);
        assert!(MemWidth::H.is_subword());
        assert!(!MemWidth::W.is_subword());
        assert_eq!(MemWidth::Bu.store_mnemonic(), "stb");
    }

    #[test]
    fn fp_cond_nan_is_false() {
        for c in [FpCond::Eq, FpCond::Lt, FpCond::Le] {
            assert!(!c.eval(f64::NAN, 0.0));
            assert!(!c.eval(0.0, f64::NAN));
        }
        assert!(FpCond::Le.eval(1.0, 1.0));
    }

    #[test]
    fn trap_codes_roundtrip() {
        for t in [TrapCode::Halt, TrapCode::PutChar, TrapCode::PutInt, TrapCode::ReadInsnCount] {
            assert_eq!(TrapCode::from_code(t.code()), Some(t));
        }
        assert_eq!(TrapCode::from_code(200), None);
    }
}
