//! Numeric descriptions of each format's expressive limits.
//!
//! The compiler's target-lowering pass and the paper's §3.3 feature
//! ablations both need the limits as *data* (not just as encoder errors):
//! the immediate-profile experiment (Table 4) counts dynamic DLXe
//! instructions whose operands exceed the D16 fields.

use crate::d16;
#[cfg(test)]
use crate::dlxe;
use crate::insn::{Insn, Isa};
use crate::op::{AluOp, MemWidth};

/// The expressive limits of one instruction format.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct EncodingParams {
    /// Which ISA these parameters describe.
    pub isa: Isa,
    /// Architecturally addressable general registers.
    pub gprs: usize,
    /// Architecturally addressable FP registers.
    pub fprs: usize,
    /// Whether ALU operations can name a destination distinct from the
    /// left source.
    pub three_address: bool,
    /// Inclusive ALU-immediate range (`addi`/`subi`/shifts).
    pub alu_imm: (i32, i32),
    /// Inclusive move-immediate range.
    pub mvi_imm: (i32, i32),
    /// Inclusive word load/store displacement range.
    pub mem_disp: (i32, i32),
    /// Inclusive subword load/store displacement range.
    pub subword_disp: (i32, i32),
    /// Inclusive conditional-branch reach in bytes.
    pub branch_reach: (i32, i32),
    /// Whether compares accept an immediate right operand.
    pub cmp_imm: bool,
    /// Whether logical operations (`and`/`or`/`xor`) have immediate forms.
    pub logical_imm: bool,
    /// Whether a "set upper bits" instruction (`mvhi`) exists.
    pub has_lui: bool,
    /// Whether a PC-relative literal-pool load (`ldc`) exists.
    pub has_ldc: bool,
}

impl EncodingParams {
    /// The limits of the named ISA.
    pub const fn for_isa(isa: Isa) -> Self {
        match isa {
            Isa::D16 => EncodingParams {
                isa,
                gprs: 16,
                fprs: 16,
                three_address: false,
                alu_imm: (0, 31),
                mvi_imm: (-256, 255),
                mem_disp: (0, d16::MAX_MEM_DISP),
                subword_disp: (0, 0),
                branch_reach: (-1024, 1022),
                cmp_imm: false,
                logical_imm: false,
                has_lui: false,
                has_ldc: true,
            },
            Isa::Dlxe => EncodingParams {
                isa,
                gprs: 32,
                fprs: 32,
                three_address: true,
                alu_imm: (-32768, 32767),
                mvi_imm: (-32768, 32767),
                mem_disp: (-32768, 32767),
                subword_disp: (-32768, 32767),
                branch_reach: (-131072, 131068),
                cmp_imm: true,
                logical_imm: true,
                has_lui: true,
                has_ldc: false,
            },
            // D16x: D16's register file and branch reach, DLXe's immediate
            // and displacement fields via the 32-bit escape formats. The
            // ALU-immediate range is symmetric (not -32768) because subi
            // canonicalizes onto addi of the negated immediate.
            Isa::D16x => EncodingParams {
                isa,
                gprs: 16,
                fprs: 16,
                three_address: true,
                alu_imm: (-32767, 32767),
                mvi_imm: (-32768, 32767),
                mem_disp: (-32768, 32767),
                subword_disp: (-32768, 32767),
                branch_reach: (-1024, 1022),
                cmp_imm: true,
                logical_imm: true,
                has_lui: true,
                has_ldc: false,
            },
        }
    }

    /// Whether an ALU immediate fits the format (shift counts always use
    /// the 0..=31 rule on both ISAs).
    pub fn alu_imm_fits(&self, op: AluOp, imm: i32) -> bool {
        match op {
            AluOp::Shl | AluOp::Shr | AluOp::Shra => (0..=31).contains(&imm),
            AluOp::And | AluOp::Or | AluOp::Xor => self.logical_imm && (0..=65535).contains(&imm),
            _ => self.alu_imm.0 <= imm && imm <= self.alu_imm.1,
        }
    }

    /// Whether a load/store displacement fits the format.
    pub fn mem_disp_fits(&self, w: MemWidth, disp: i32) -> bool {
        let (lo, hi) = if w.is_subword() { self.subword_disp } else { self.mem_disp };
        let aligned = if self.isa == Isa::D16 && w == MemWidth::W { disp % 4 == 0 } else { true };
        lo <= disp && disp <= hi && aligned
    }

    /// Classifies an instruction's immediate pressure against the *D16*
    /// limits, for the Table 4 experiment: returns which D16 field the
    /// operand would overflow, if any.
    pub fn d16_overflow_class(insn: &Insn) -> Option<ImmOverflow> {
        let d = EncodingParams::for_isa(Isa::D16);
        match *insn {
            Insn::CmpI { .. } => Some(ImmOverflow::CompareImmediate),
            Insn::AluI { op, imm, .. } => {
                if d.alu_imm_fits(op, imm) && !matches!(op, AluOp::And | AluOp::Or | AluOp::Xor) {
                    None
                } else {
                    Some(ImmOverflow::AluImmediate)
                }
            }
            Insn::Mvi { imm, .. } => {
                if d.mvi_imm.0 <= imm && imm <= d.mvi_imm.1 {
                    None
                } else {
                    Some(ImmOverflow::AluImmediate)
                }
            }
            Insn::Lui { .. } => Some(ImmOverflow::AluImmediate),
            Insn::Ld { w, disp, .. } | Insn::St { w, disp, .. } => {
                if d.mem_disp_fits(w, disp) {
                    None
                } else {
                    Some(ImmOverflow::MemoryDisplacement)
                }
            }
            _ => None,
        }
    }
}

/// Which D16 field a DLXe operand exceeds (Table 4 categories).
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum ImmOverflow {
    /// "Compare immediate" — DLXe compare-with-immediate has no D16 form.
    CompareImmediate,
    /// "ALU immediate, > 5 bits" (or a logical/move immediate with no D16
    /// form).
    AluImmediate,
    /// "Memory displacements > 8 bits" — beyond the D16 reach.
    MemoryDisplacement,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::Gpr;
    use crate::Cond;

    #[test]
    fn params_match_encoders() {
        // The declarative limits must agree with what the encoders accept.
        let p = EncodingParams::for_isa(Isa::D16);
        let r = Gpr::new(1);
        for imm in [-1, 0, 31, 32] {
            let i = Insn::AluI { op: AluOp::Add, rd: r, rs1: r, imm };
            assert_eq!(p.alu_imm_fits(AluOp::Add, imm), d16::encode(&i).is_ok(), "imm {imm}");
        }
        for disp in [-4, 0, 64, 124, 128, 6] {
            let i = Insn::Ld { w: MemWidth::W, rd: r, base: r, disp };
            assert_eq!(p.mem_disp_fits(MemWidth::W, disp), d16::encode(&i).is_ok(), "disp {disp}");
        }
        let q = EncodingParams::for_isa(Isa::Dlxe);
        for disp in [-32768, 32767, 32768] {
            let i = Insn::Ld { w: MemWidth::W, rd: r, base: r, disp };
            assert_eq!(q.mem_disp_fits(MemWidth::W, disp), dlxe::encode(&i).is_ok(), "disp {disp}");
        }
    }

    #[test]
    fn d16x_params_conservative_against_encoder() {
        // Wherever the D16x params claim a shape fits, the D16x encoder
        // must accept it (the compiler relies on this direction; the
        // encoder may accept slightly more, e.g. addi -32768).
        let p = EncodingParams::for_isa(Isa::D16x);
        let r = Gpr::new(2);
        let s = Gpr::new(3);
        for op in
            [AluOp::Add, AluOp::Sub, AluOp::And, AluOp::Or, AluOp::Xor, AluOp::Shl, AluOp::Shra]
        {
            for imm in [-32768, -32767, -1, 0, 31, 32, 32767, 32768, 65535, 65536] {
                let i = Insn::AluI { op, rd: r, rs1: s, imm };
                if p.alu_imm_fits(op, imm) {
                    assert!(crate::d16x::encode(&i).is_ok(), "{op:?} imm {imm}");
                }
            }
        }
        for disp in [-32768, -1, 0, 2, 124, 126, 32767] {
            for w in [MemWidth::W, MemWidth::H, MemWidth::Bu] {
                let i = Insn::Ld { w, rd: r, base: s, disp };
                if p.mem_disp_fits(w, disp) {
                    assert!(crate::d16x::encode(&i).is_ok(), "{w:?} disp {disp}");
                }
            }
        }
        for imm in [p.mvi_imm.0, -256, 0, 255, p.mvi_imm.1] {
            assert!(crate::d16x::encode(&Insn::Mvi { rd: r, imm }).is_ok(), "mvi {imm}");
        }
    }

    #[test]
    fn overflow_classification() {
        let r = Gpr::new(1);
        assert_eq!(
            EncodingParams::d16_overflow_class(&Insn::CmpI {
                cond: Cond::Lt,
                rd: r,
                rs1: r,
                imm: 3
            }),
            Some(ImmOverflow::CompareImmediate)
        );
        assert_eq!(
            EncodingParams::d16_overflow_class(&Insn::AluI {
                op: AluOp::Add,
                rd: r,
                rs1: r,
                imm: 100
            }),
            Some(ImmOverflow::AluImmediate)
        );
        assert_eq!(
            EncodingParams::d16_overflow_class(&Insn::AluI {
                op: AluOp::Add,
                rd: r,
                rs1: r,
                imm: 12
            }),
            None
        );
        assert_eq!(
            EncodingParams::d16_overflow_class(&Insn::Ld {
                w: MemWidth::W,
                rd: r,
                base: r,
                disp: 4000
            }),
            Some(ImmOverflow::MemoryDisplacement)
        );
        assert_eq!(
            EncodingParams::d16_overflow_class(&Insn::Ld {
                w: MemWidth::B,
                rd: r,
                base: r,
                disp: 2
            }),
            Some(ImmOverflow::MemoryDisplacement)
        );
    }
}
