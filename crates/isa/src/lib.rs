//! # d16-isa — the D16 and DLXe instruction sets
//!
//! This crate defines the two instruction encodings compared by Bunda,
//! Fussell, Jenevein and Athas in *"16-Bit vs. 32-Bit Instructions for
//! Pipelined Microprocessors"* (ISCA 1993):
//!
//! * **DLXe** — a conventional fixed 32-bit RISC format, a variant of
//!   Hennessy & Patterson's DLX, addressing 32 general and 32 FP registers
//!   with three-address instructions and 16-bit immediates.
//! * **D16** — a fixed 16-bit format that "sacrifices some expressive power
//!   while retaining essential RISC features": 16 registers of each class,
//!   two-address instructions, 5-bit ALU immediates, a 9-bit move-immediate
//!   and 128-byte load/store displacements.
//!
//! Both encode (subsets of) the same abstract instruction type, [`Insn`],
//! which the `d16-sim` pipeline executes — mirroring the paper's setup in
//! which "D16 and DLXe instructions are executed on the same five-stage
//! execution pipeline".
//!
//! ```
//! use d16_isa::{d16, dlxe, Insn, AluOp, Gpr};
//!
//! // The same three-address add encodes on DLXe but not on D16:
//! let add = Insn::Alu { op: AluOp::Add, rd: Gpr::new(1), rs1: Gpr::new(2), rs2: Gpr::new(3) };
//! assert!(dlxe::encode(&add).is_ok());
//! assert!(d16::encode(&add).is_err());
//!
//! // Its two-address counterpart fits in sixteen bits:
//! let add2 = Insn::Alu { op: AluOp::Add, rd: Gpr::new(1), rs1: Gpr::new(1), rs2: Gpr::new(3) };
//! let halfword = d16::encode(&add2)?;
//! assert_eq!(d16::decode(halfword)?, add2);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

mod disasm;
mod insn;
mod op;
mod params;
mod reg;

pub mod d16;
pub mod d16x;
pub mod dlxe;
pub mod sem;

pub use disasm::disassemble;
pub use insn::{Insn, Isa};
pub use op::{AluOp, Cond, CvtOp, FpCond, FpOp, MemWidth, Prec, TrapCode, UnOp};
pub use params::{EncodingParams, ImmOverflow};
pub use reg::{abi, Fpr, Gpr};

use std::fmt;

/// An instruction cannot be expressed in the requested encoding.
///
/// These errors are how the toolchain *feels* each format's limits: the
/// compiler's target-lowering pass and the assembler both consult the
/// encoders and rewrite around any error they report.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum EncodeError {
    /// Register number too large for the format's register field.
    RegisterOutOfRange(u8),
    /// Immediate outside the field's range.
    ImmediateOutOfRange(i32),
    /// Load/store/branch displacement outside the field's range or
    /// misaligned.
    DisplacementOutOfRange(i32),
    /// D16 subword accesses are not offsettable.
    SubwordDisplacement(i32),
    /// A three-address shape (`rd != rs1`) in a two-address format.
    NotTwoAddress,
    /// D16 compares write `r0` only.
    CompareDestNotR0,
    /// D16 conditional branches test `r0` only.
    BranchSourceNotR0,
    /// Condition not in this ISA's compare set.
    ConditionNotInIsa(Cond),
    /// The operation has no immediate form in this ISA.
    NoImmediateForm(AluOp),
    /// Double-precision operand names an odd FP register.
    OddDoubleRegister(u8),
    /// The operation does not exist in this ISA.
    NotInIsa(&'static str),
}

impl fmt::Display for EncodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EncodeError::RegisterOutOfRange(r) => {
                write!(f, "register {r} exceeds the format's register field")
            }
            EncodeError::ImmediateOutOfRange(i) => {
                write!(f, "immediate {i} does not fit the format's immediate field")
            }
            EncodeError::DisplacementOutOfRange(d) => {
                write!(f, "displacement {d} out of range or misaligned for the format")
            }
            EncodeError::SubwordDisplacement(d) => {
                write!(
                    f,
                    "subword access with displacement {d}: D16 subword modes are not offsettable"
                )
            }
            EncodeError::NotTwoAddress => {
                write!(f, "destination must equal the left source in a two-address format")
            }
            EncodeError::CompareDestNotR0 => write!(f, "D16 compares write r0 only"),
            EncodeError::BranchSourceNotR0 => write!(f, "D16 conditional branches test r0 only"),
            EncodeError::ConditionNotInIsa(c) => {
                write!(f, "condition {c} is not in this ISA's compare set")
            }
            EncodeError::NoImmediateForm(op) => {
                write!(f, "{op} has no immediate form in this ISA")
            }
            EncodeError::OddDoubleRegister(r) => {
                write!(f, "double-precision operand f{r} must be an even register")
            }
            EncodeError::NotInIsa(what) => write!(f, "{what} does not exist in this ISA"),
        }
    }
}

impl std::error::Error for EncodeError {}

/// A bit pattern that does not decode to any instruction.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum DecodeError {
    /// Reserved or illegal pattern (the offending word, zero-extended).
    Illegal(u32),
    /// A 32-bit escape's first halfword with no second halfword available
    /// (the escape would run past the end of the text segment).
    Truncated(u16),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Illegal(w) => write!(f, "illegal instruction pattern {w:#010x}"),
            DecodeError::Truncated(h) => {
                write!(f, "truncated 32-bit escape: first halfword {h:#06x} has no second halfword")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

/// Encodes an instruction for either ISA, returning the instruction's bytes
/// in little-endian order (two for D16, four for DLXe).
///
/// # Errors
///
/// Propagates the per-ISA encoder's [`EncodeError`].
pub fn encode_bytes(isa: Isa, insn: &Insn) -> Result<Vec<u8>, EncodeError> {
    match isa {
        Isa::D16 => Ok(d16::encode(insn)?.to_le_bytes().to_vec()),
        Isa::Dlxe => Ok(dlxe::encode(insn)?.to_le_bytes().to_vec()),
        Isa::D16x => Ok(match d16x::encode(insn)? {
            d16x::Enc::N(h) => h.to_le_bytes().to_vec(),
            d16x::Enc::W(w) => w.to_le_bytes().to_vec(),
        }),
    }
}

/// Checks whether an instruction is expressible in the given ISA.
pub fn encodable(isa: Isa, insn: &Insn) -> bool {
    match isa {
        Isa::D16 => d16::encode(insn).is_ok(),
        Isa::Dlxe => dlxe::encode(insn).is_ok(),
        Isa::D16x => d16x::encode(insn).is_ok(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_bytes_width() {
        let nop = Insn::Nop;
        assert_eq!(encode_bytes(Isa::D16, &nop).unwrap().len(), 2);
        assert_eq!(encode_bytes(Isa::Dlxe, &nop).unwrap().len(), 4);
    }

    #[test]
    fn errors_display() {
        let e = EncodeError::ImmediateOutOfRange(300);
        assert!(e.to_string().contains("300"));
        let d = DecodeError::Illegal(0xdead);
        assert!(d.to_string().contains("0x0000dead"));
    }

    #[test]
    fn error_types_are_send_sync() {
        fn assert_bounds<T: Send + Sync + std::error::Error>() {}
        assert_bounds::<EncodeError>();
        assert_bounds::<DecodeError>();
    }
}
