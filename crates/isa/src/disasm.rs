//! Textual disassembly of abstract instructions.
//!
//! The mnemonics follow the paper's Table 1 (`ld`, `bnz`, `add.sf`,
//! `si2sf`, ...). The output is accepted back by the `d16-asm` assembler,
//! which the assembler's round-trip tests rely on.

use crate::insn::Insn;
use crate::op::UnOp;

/// Renders one instruction as assembly text.
///
/// PC-relative displacements are shown as `.+N`/`.-N` relative to the
/// *next* instruction's address, matching the internal displacement
/// convention.
///
/// ```
/// use d16_isa::{disassemble, Insn, AluOp, Gpr};
/// let i = Insn::AluI { op: AluOp::Add, rd: Gpr::new(4), rs1: Gpr::new(4), imm: 12 };
/// assert_eq!(disassemble(&i), "addi r4, r4, 12");
/// ```
pub fn disassemble(insn: &Insn) -> String {
    match *insn {
        Insn::Alu { op, rd, rs1, rs2 } => format!("{op} {rd}, {rs1}, {rs2}"),
        Insn::AluI { op, rd, rs1, imm } => {
            format!("{} {rd}, {rs1}, {imm}", op.imm_mnemonic())
        }
        Insn::Un { op, rd, rs } => match op {
            UnOp::Mv => format!("mv {rd}, {rs}"),
            _ => format!("{op} {rd}, {rs}"),
        },
        Insn::Mvi { rd, imm } => format!("mvi {rd}, {imm}"),
        Insn::Lui { rd, imm } => format!("mvhi {rd}, {imm}"),
        Insn::Cmp { cond, rd, rs1, rs2 } => format!("cmp{cond} {rd}, {rs1}, {rs2}"),
        Insn::CmpI { cond, rd, rs1, imm } => format!("cmp{cond}i {rd}, {rs1}, {imm}"),
        Insn::Ld { w, rd, base, disp } => {
            format!("{} {rd}, {disp}({base})", w.load_mnemonic())
        }
        Insn::St { w, rs, base, disp } => {
            format!("{} {rs}, {disp}({base})", w.store_mnemonic())
        }
        Insn::Ldc { rd, disp } => format!("ldc {rd}, .+{disp}"),
        Insn::Br { disp } => format!("br {}", rel(disp)),
        Insn::Bc { neg, rs, disp } => {
            format!("{} {rs}, {}", if neg { "bnz" } else { "bz" }, rel(disp))
        }
        Insn::J { target } => format!("j {target}"),
        Insn::Jc { neg, rs, target } => {
            format!("{} {rs}, {target}", if neg { "jnz" } else { "jz" })
        }
        Insn::Jl { target } => format!("jl {target}"),
        Insn::Jdisp { link, disp } => {
            format!("{} {}", if link { "jal" } else { "jd" }, rel(disp))
        }
        Insn::FAlu { op, prec, fd, fs1, fs2 } => {
            format!("{}.{} {fd}, {fs1}, {fs2}", op.mnemonic(), prec.suffix())
        }
        Insn::FNeg { prec, fd, fs } => format!("neg.{} {fd}, {fs}", prec.suffix()),
        Insn::FCmp { cond, prec, fs1, fs2 } => {
            format!("cmp{}.{} {fs1}, {fs2}", cond.suffix(), prec.suffix())
        }
        Insn::Cvt { op, fd, fs } => format!("{} {fd}, {fs}", op.mnemonic()),
        Insn::Mtf { fd, rs } => format!("mtf {fd}, {rs}"),
        Insn::Mff { rd, fs } => format!("mff {rd}, {fs}"),
        Insn::Rdsr { rd } => format!("rdsr {rd}"),
        Insn::Trap { code } => format!("trap {}", code.code()),
        Insn::Nop => "nop".to_string(),
    }
}

fn rel(disp: i32) -> String {
    if disp >= 0 {
        format!(".+{disp}")
    } else {
        format!(".{disp}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{AluOp, Cond, FpCond, FpOp, MemWidth, Prec, TrapCode};
    use crate::reg::{abi, Fpr, Gpr};

    #[test]
    fn representative_text() {
        let r = Gpr::new;
        let f = Fpr::new;
        let cases: Vec<(Insn, &str)> = vec![
            (Insn::Alu { op: AluOp::Xor, rd: r(1), rs1: r(1), rs2: r(2) }, "xor r1, r1, r2"),
            (Insn::Mvi { rd: r(3), imm: -7 }, "mvi r3, -7"),
            (Insn::Cmp { cond: Cond::Ltu, rd: abi::R0, rs1: r(4), rs2: r(5) }, "cmpltu r0, r4, r5"),
            (Insn::Ld { w: MemWidth::W, rd: r(2), base: abi::SP, disp: 8 }, "ld r2, 8(r15)"),
            (Insn::St { w: MemWidth::B, rs: r(2), base: r(3), disp: 0 }, "stb r2, 0(r3)"),
            (Insn::Br { disp: -10 }, "br .-10"),
            (Insn::Bc { neg: true, rs: abi::R0, disp: 4 }, "bnz r0, .+4"),
            (
                Insn::FAlu { op: FpOp::Mul, prec: Prec::D, fd: f(2), fs1: f(2), fs2: f(4) },
                "mul.df f2, f2, f4",
            ),
            (
                Insn::FCmp { cond: FpCond::Le, prec: Prec::S, fs1: f(1), fs2: f(3) },
                "cmple.sf f1, f3",
            ),
            (Insn::Trap { code: TrapCode::Halt }, "trap 0"),
            (Insn::Nop, "nop"),
        ];
        for (insn, text) in cases {
            assert_eq!(disassemble(&insn), text);
        }
    }
}
