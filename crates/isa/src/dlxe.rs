//! The DLXe 32-bit instruction format: encoder and decoder.
//!
//! DLXe is the paper's variant of DLX \[HP90\], using the three classic
//! formats of Figure 2:
//!
//! ```text
//! I-type   op[31:26] rs1[25:21] rd[20:16] imm[15:0]
//! R-type   op[31:26]=0 rs1[25:21] rs2[20:16] rd[15:11] func[10:0]
//! J-type   op[31:26] disp[25:0]
//! ```
//!
//! Deviations from DLX kept from the paper: floating-point compares set a
//! status register read by `rdsr`, and there are no direct FP loads/stores
//! (FP values pass through GPRs via `mtf`/`mff`).
//!
//! Canonicalizations performed by the encoder (all semantics-preserving and
//! stable under decode):
//!
//! * `mvi rd, imm`  → `addi rd, r0, imm`; the decoder canonicalizes
//!   `addi rd, r0, imm` back to [`Insn::Mvi`].
//! * `mv rd, rs`    → `add rd, rs, r0`; decoded back to [`Insn::Un`] `mv`.
//! * `neg rd, rs`   → `sub rd, r0, rs`; decoded back to `neg`. (The paper
//!   notes `neg`/`inv` are "unneeded because r0 is always zero"; `inv` has
//!   no one-instruction DLXe form and is rejected — the compiler lowers it.)
//! * `br disp`      → `j disp` (J-type); decoded as [`Insn::Jdisp`].
//! * `nop`          → the all-zero word `add r0, r0, r0`.

use crate::insn::Insn;
use crate::op::{AluOp, Cond, CvtOp, FpCond, FpOp, MemWidth, Prec, TrapCode, UnOp};
use crate::reg::{abi, Fpr, Gpr};
use crate::{DecodeError, EncodeError};

/// Signed 16-bit immediate range (`addi`, compares, displacements).
pub const SIMM_RANGE: std::ops::RangeInclusive<i32> = -32768..=32767;
/// Unsigned 16-bit immediate range (`andi`, `ori`, `xori`, `mvhi`).
pub const UIMM_RANGE: std::ops::RangeInclusive<i32> = 0..=65535;
/// Branch displacement range in bytes (16-bit word-scaled field).
pub const BR_RANGE: std::ops::RangeInclusive<i32> = -131072..=131068;
/// J-type displacement range in bytes (26-bit word-scaled field).
pub const J_RANGE: std::ops::RangeInclusive<i32> = -(1 << 27)..=(1 << 27) - 4;

mod opc {
    pub const RTYPE: u32 = 0;
    pub const J: u32 = 1;
    pub const JAL: u32 = 2;
    pub const BZ: u32 = 3;
    pub const BNZ: u32 = 4;
    pub const ADDI: u32 = 5;
    pub const SUBI: u32 = 6;
    pub const ANDI: u32 = 7;
    pub const ORI: u32 = 8;
    pub const XORI: u32 = 9;
    pub const LHI: u32 = 10;
    pub const SLLI: u32 = 11;
    pub const SRLI: u32 = 12;
    pub const SRAI: u32 = 13;
    pub const CMPI_BASE: u32 = 14; // ..23, Cond::ALL order
    pub const LD: u32 = 24;
    pub const LDH: u32 = 25;
    pub const LDHU: u32 = 26;
    pub const LDB: u32 = 27;
    pub const LDBU: u32 = 28;
    pub const ST: u32 = 29;
    pub const STH: u32 = 30;
    pub const STB: u32 = 31;
    pub const TRAP: u32 = 32;
}

mod func {
    pub const ADD: u32 = 0;
    pub const SUB: u32 = 1;
    pub const AND: u32 = 2;
    pub const OR: u32 = 3;
    pub const XOR: u32 = 4;
    pub const SHL: u32 = 5;
    pub const SHR: u32 = 6;
    pub const SHRA: u32 = 7;
    pub const CMP_BASE: u32 = 8; // ..17, Cond::ALL order
    pub const JR: u32 = 18;
    pub const JALR: u32 = 19;
    pub const JZR: u32 = 20;
    pub const JNZR: u32 = 21;
    pub const MTF: u32 = 22;
    pub const MFF: u32 = 23;
    pub const RDSR: u32 = 24;
    pub const FALU_S_BASE: u32 = 32; // add sub mul div
    pub const FNEG_S: u32 = 36;
    pub const FALU_D_BASE: u32 = 37;
    pub const FNEG_D: u32 = 41;
    pub const FCMP_S_BASE: u32 = 42; // eq lt le
    pub const FCMP_D_BASE: u32 = 45;
    pub const CVT_BASE: u32 = 48; // si2sf si2df sf2df df2sf sf2si df2si
}

fn cond_index(c: Cond) -> u32 {
    Cond::ALL.iter().position(|&x| x == c).unwrap() as u32
}

fn alu_index(op: AluOp) -> u32 {
    match op {
        AluOp::Add => func::ADD,
        AluOp::Sub => func::SUB,
        AluOp::And => func::AND,
        AluOp::Or => func::OR,
        AluOp::Xor => func::XOR,
        AluOp::Shl => func::SHL,
        AluOp::Shr => func::SHR,
        AluOp::Shra => func::SHRA,
    }
}

const ALU_TABLE: [AluOp; 8] = [
    AluOp::Add,
    AluOp::Sub,
    AluOp::And,
    AluOp::Or,
    AluOp::Xor,
    AluOp::Shl,
    AluOp::Shr,
    AluOp::Shra,
];

fn fpop_index(op: FpOp) -> u32 {
    match op {
        FpOp::Add => 0,
        FpOp::Sub => 1,
        FpOp::Mul => 2,
        FpOp::Div => 3,
    }
}

const FPOP_TABLE: [FpOp; 4] = [FpOp::Add, FpOp::Sub, FpOp::Mul, FpOp::Div];
const FCOND_TABLE: [FpCond; 3] = [FpCond::Eq, FpCond::Lt, FpCond::Le];
const CVT_TABLE: [CvtOp; 6] =
    [CvtOp::Si2Sf, CvtOp::Si2Df, CvtOp::Sf2Df, CvtOp::Df2Sf, CvtOp::Sf2Si, CvtOp::Df2Si];

fn fcond_index(c: FpCond) -> u32 {
    match c {
        FpCond::Eq => 0,
        FpCond::Lt => 1,
        FpCond::Le => 2,
    }
}

fn cvt_index(op: CvtOp) -> u32 {
    CVT_TABLE.iter().position(|&x| x == op).unwrap() as u32
}

fn itype(op: u32, rs1: u32, rd: u32, imm: u32) -> u32 {
    op << 26 | rs1 << 21 | rd << 16 | (imm & 0xffff)
}

fn rtype(rs1: u32, rs2: u32, rd: u32, f: u32) -> u32 {
    rs1 << 21 | rs2 << 16 | rd << 11 | f
}

fn g(r: Gpr) -> u32 {
    r.number() as u32
}

fn fp(r: Fpr) -> u32 {
    r.number() as u32
}

fn check_simm(imm: i32) -> Result<u32, EncodeError> {
    if SIMM_RANGE.contains(&imm) {
        Ok(imm as u32)
    } else {
        Err(EncodeError::ImmediateOutOfRange(imm))
    }
}

fn check_uimm(imm: i32) -> Result<u32, EncodeError> {
    if UIMM_RANGE.contains(&imm) {
        Ok(imm as u32)
    } else {
        Err(EncodeError::ImmediateOutOfRange(imm))
    }
}

fn check_double(r: Fpr) -> Result<(), EncodeError> {
    if r.is_even() {
        Ok(())
    } else {
        Err(EncodeError::OddDoubleRegister(r.number()))
    }
}

/// Encodes one instruction into its 32-bit DLXe representation.
///
/// # Errors
///
/// Returns an [`EncodeError`] for out-of-range immediates/displacements and
/// for D16-only shapes (`ldc`, `inv`).
pub fn encode(insn: &Insn) -> Result<u32, EncodeError> {
    match *insn {
        Insn::Alu { op, rd, rs1, rs2 } => Ok(rtype(g(rs1), g(rs2), g(rd), alu_index(op))),
        Insn::AluI { op, rd, rs1, imm } => {
            let (opcode, raw) = match op {
                AluOp::Add => (opc::ADDI, check_simm(imm)?),
                AluOp::Sub => (opc::SUBI, check_simm(imm)?),
                AluOp::And => (opc::ANDI, check_uimm(imm)?),
                AluOp::Or => (opc::ORI, check_uimm(imm)?),
                AluOp::Xor => (opc::XORI, check_uimm(imm)?),
                AluOp::Shl | AluOp::Shr | AluOp::Shra => {
                    if !(0..=31).contains(&imm) {
                        return Err(EncodeError::ImmediateOutOfRange(imm));
                    }
                    let opcode = match op {
                        AluOp::Shl => opc::SLLI,
                        AluOp::Shr => opc::SRLI,
                        _ => opc::SRAI,
                    };
                    (opcode, imm as u32)
                }
            };
            Ok(itype(opcode, g(rs1), g(rd), raw))
        }
        Insn::Un { op, rd, rs } => match op {
            UnOp::Mv => Ok(rtype(g(rs), 0, g(rd), func::ADD)),
            UnOp::Neg => Ok(rtype(0, g(rs), g(rd), func::SUB)),
            UnOp::Inv => Err(EncodeError::NotInIsa("inv")),
        },
        Insn::Mvi { rd, imm } => Ok(itype(opc::ADDI, 0, g(rd), check_simm(imm)?)),
        Insn::Lui { rd, imm } => {
            if imm > 0xffff {
                return Err(EncodeError::ImmediateOutOfRange(imm as i32));
            }
            Ok(itype(opc::LHI, 0, g(rd), imm))
        }
        Insn::Cmp { cond, rd, rs1, rs2 } => {
            Ok(rtype(g(rs1), g(rs2), g(rd), func::CMP_BASE + cond_index(cond)))
        }
        Insn::CmpI { cond, rd, rs1, imm } => {
            Ok(itype(opc::CMPI_BASE + cond_index(cond), g(rs1), g(rd), check_simm(imm)?))
        }
        Insn::Ld { w, rd, base, disp } => {
            let opcode = match w {
                MemWidth::W => opc::LD,
                MemWidth::H => opc::LDH,
                MemWidth::Hu => opc::LDHU,
                MemWidth::B => opc::LDB,
                MemWidth::Bu => opc::LDBU,
            };
            Ok(itype(opcode, g(base), g(rd), check_simm(disp)?))
        }
        Insn::St { w, rs, base, disp } => {
            let opcode = match w {
                MemWidth::W => opc::ST,
                MemWidth::H | MemWidth::Hu => opc::STH,
                MemWidth::B | MemWidth::Bu => opc::STB,
            };
            Ok(itype(opcode, g(base), g(rs), check_simm(disp)?))
        }
        Insn::Ldc { .. } => Err(EncodeError::NotInIsa("ldc")),
        Insn::Br { disp } => encode_jdisp(false, disp),
        Insn::Bc { neg, rs, disp } => {
            if disp % 4 != 0 || !BR_RANGE.contains(&disp) {
                return Err(EncodeError::DisplacementOutOfRange(disp));
            }
            let opcode = if neg { opc::BNZ } else { opc::BZ };
            Ok(itype(opcode, g(rs), 0, (disp / 4) as u32))
        }
        Insn::J { target } => Ok(rtype(g(target), 0, 0, func::JR)),
        Insn::Jc { neg, rs, target } => {
            let f = if neg { func::JNZR } else { func::JZR };
            Ok(rtype(g(rs), g(target), 0, f))
        }
        Insn::Jl { target } => Ok(rtype(g(target), 0, 0, func::JALR)),
        Insn::Jdisp { link, disp } => encode_jdisp(link, disp),
        Insn::FAlu { op, prec, fd, fs1, fs2 } => {
            let base = match prec {
                Prec::S => func::FALU_S_BASE,
                Prec::D => {
                    check_double(fd)?;
                    check_double(fs1)?;
                    check_double(fs2)?;
                    func::FALU_D_BASE
                }
            };
            Ok(rtype(fp(fs1), fp(fs2), fp(fd), base + fpop_index(op)))
        }
        Insn::FNeg { prec, fd, fs } => {
            let f = match prec {
                Prec::S => func::FNEG_S,
                Prec::D => {
                    check_double(fd)?;
                    check_double(fs)?;
                    func::FNEG_D
                }
            };
            Ok(rtype(fp(fs), 0, fp(fd), f))
        }
        Insn::FCmp { cond, prec, fs1, fs2 } => {
            let base = match prec {
                Prec::S => func::FCMP_S_BASE,
                Prec::D => {
                    check_double(fs1)?;
                    check_double(fs2)?;
                    func::FCMP_D_BASE
                }
            };
            Ok(rtype(fp(fs1), fp(fs2), 0, base + fcond_index(cond)))
        }
        Insn::Cvt { op, fd, fs } => {
            if op.dst_is_double() {
                check_double(fd)?;
            }
            if op.src_is_double() {
                check_double(fs)?;
            }
            Ok(rtype(fp(fs), 0, fp(fd), func::CVT_BASE + cvt_index(op)))
        }
        Insn::Mtf { fd, rs } => Ok(rtype(g(rs), 0, fp(fd), func::MTF)),
        Insn::Mff { rd, fs } => Ok(rtype(fp(fs), 0, g(rd), func::MFF)),
        Insn::Rdsr { rd } => Ok(rtype(0, 0, g(rd), func::RDSR)),
        Insn::Trap { code } => Ok(itype(opc::TRAP, 0, 0, code.code() as u32)),
        Insn::Nop => Ok(0),
    }
}

fn encode_jdisp(link: bool, disp: i32) -> Result<u32, EncodeError> {
    if disp % 4 != 0 || !J_RANGE.contains(&disp) {
        return Err(EncodeError::DisplacementOutOfRange(disp));
    }
    let opcode = if link { opc::JAL } else { opc::J };
    Ok(opcode << 26 | (((disp / 4) as u32) & 0x03ff_ffff))
}

fn sext16(raw: u32) -> i32 {
    raw as u16 as i16 as i32
}

/// Decodes a 32-bit DLXe instruction word.
///
/// # Errors
///
/// Returns [`DecodeError`] for reserved patterns.
pub fn decode(word: u32) -> Result<Insn, DecodeError> {
    let ill = || DecodeError::Illegal(word);
    let op = word >> 26;
    if op == opc::RTYPE {
        if word == 0 {
            return Ok(Insn::Nop);
        }
        let rs1 = Gpr::new(((word >> 21) & 31) as u8);
        let rs2 = Gpr::new(((word >> 16) & 31) as u8);
        let rd = Gpr::new(((word >> 11) & 31) as u8);
        let fs1 = Fpr::new(((word >> 21) & 31) as u8);
        let fs2 = Fpr::new(((word >> 16) & 31) as u8);
        let fd = Fpr::new(((word >> 11) & 31) as u8);
        let f = word & 0x7ff;
        use func::*;
        return Ok(match f {
            ADD if rs2 == abi::R0 => Insn::Un { op: UnOp::Mv, rd, rs: rs1 },
            SUB if rs1 == abi::R0 => Insn::Un { op: UnOp::Neg, rd, rs: rs2 },
            ADD..=SHRA => Insn::Alu { op: ALU_TABLE[f as usize], rd, rs1, rs2 },
            _ if (CMP_BASE..CMP_BASE + 10).contains(&f) => {
                Insn::Cmp { cond: Cond::ALL[(f - CMP_BASE) as usize], rd, rs1, rs2 }
            }
            JR => Insn::J { target: rs1 },
            JALR => Insn::Jl { target: rs1 },
            JZR => Insn::Jc { neg: false, rs: rs1, target: rs2 },
            JNZR => Insn::Jc { neg: true, rs: rs1, target: rs2 },
            MTF => Insn::Mtf { fd, rs: rs1 },
            MFF => Insn::Mff { rd, fs: fs1 },
            RDSR => Insn::Rdsr { rd },
            _ if (FALU_S_BASE..FALU_S_BASE + 4).contains(&f) => Insn::FAlu {
                op: FPOP_TABLE[(f - FALU_S_BASE) as usize],
                prec: Prec::S,
                fd,
                fs1,
                fs2,
            },
            FNEG_S => Insn::FNeg { prec: Prec::S, fd, fs: fs1 },
            _ if (FALU_D_BASE..FALU_D_BASE + 4).contains(&f) => {
                if !fd.is_even() || !fs1.is_even() || !fs2.is_even() {
                    return Err(ill());
                }
                Insn::FAlu {
                    op: FPOP_TABLE[(f - FALU_D_BASE) as usize],
                    prec: Prec::D,
                    fd,
                    fs1,
                    fs2,
                }
            }
            FNEG_D => {
                if !fd.is_even() || !fs1.is_even() {
                    return Err(ill());
                }
                Insn::FNeg { prec: Prec::D, fd, fs: fs1 }
            }
            _ if (FCMP_S_BASE..FCMP_S_BASE + 3).contains(&f) => Insn::FCmp {
                cond: FCOND_TABLE[(f - FCMP_S_BASE) as usize],
                prec: Prec::S,
                fs1,
                fs2,
            },
            _ if (FCMP_D_BASE..FCMP_D_BASE + 3).contains(&f) => {
                if !fs1.is_even() || !fs2.is_even() {
                    return Err(ill());
                }
                Insn::FCmp {
                    cond: FCOND_TABLE[(f - FCMP_D_BASE) as usize],
                    prec: Prec::D,
                    fs1,
                    fs2,
                }
            }
            _ if (CVT_BASE..CVT_BASE + 6).contains(&f) => {
                let cvt = CVT_TABLE[(f - CVT_BASE) as usize];
                if (cvt.dst_is_double() && !fd.is_even()) || (cvt.src_is_double() && !fs1.is_even())
                {
                    return Err(ill());
                }
                Insn::Cvt { op: cvt, fd, fs: fs1 }
            }
            _ => return Err(ill()),
        });
    }
    if op == opc::J || op == opc::JAL {
        let raw = (word & 0x03ff_ffff) as i32;
        let disp = ((raw << 6) >> 6) * 4;
        return Ok(Insn::Jdisp { link: op == opc::JAL, disp });
    }
    let rs1 = Gpr::new(((word >> 21) & 31) as u8);
    let rd = Gpr::new(((word >> 16) & 31) as u8);
    let simm = sext16(word);
    let uimm = (word & 0xffff) as i32;
    use opc::*;
    Ok(match op {
        BZ => Insn::Bc { neg: false, rs: rs1, disp: simm * 4 },
        BNZ => Insn::Bc { neg: true, rs: rs1, disp: simm * 4 },
        ADDI if rs1 == abi::R0 => Insn::Mvi { rd, imm: simm },
        ADDI => Insn::AluI { op: AluOp::Add, rd, rs1, imm: simm },
        SUBI => Insn::AluI { op: AluOp::Sub, rd, rs1, imm: simm },
        ANDI => Insn::AluI { op: AluOp::And, rd, rs1, imm: uimm },
        ORI => Insn::AluI { op: AluOp::Or, rd, rs1, imm: uimm },
        XORI => Insn::AluI { op: AluOp::Xor, rd, rs1, imm: uimm },
        LHI => Insn::Lui { rd, imm: uimm as u32 },
        SLLI | SRLI | SRAI => {
            if uimm > 31 {
                return Err(ill());
            }
            let alu = match op {
                SLLI => AluOp::Shl,
                SRLI => AluOp::Shr,
                _ => AluOp::Shra,
            };
            Insn::AluI { op: alu, rd, rs1, imm: uimm }
        }
        _ if (CMPI_BASE..CMPI_BASE + 10).contains(&op) => {
            Insn::CmpI { cond: Cond::ALL[(op - CMPI_BASE) as usize], rd, rs1, imm: simm }
        }
        LD => Insn::Ld { w: MemWidth::W, rd, base: rs1, disp: simm },
        LDH => Insn::Ld { w: MemWidth::H, rd, base: rs1, disp: simm },
        LDHU => Insn::Ld { w: MemWidth::Hu, rd, base: rs1, disp: simm },
        LDB => Insn::Ld { w: MemWidth::B, rd, base: rs1, disp: simm },
        LDBU => Insn::Ld { w: MemWidth::Bu, rd, base: rs1, disp: simm },
        ST => Insn::St { w: MemWidth::W, rs: rd, base: rs1, disp: simm },
        STH => Insn::St { w: MemWidth::H, rs: rd, base: rs1, disp: simm },
        STB => Insn::St { w: MemWidth::B, rs: rd, base: rs1, disp: simm },
        TRAP => {
            let code = TrapCode::from_code((word & 0xff) as u8).ok_or_else(ill)?;
            Insn::Trap { code }
        }
        _ => return Err(ill()),
    })
}

/// Rewrites an instruction into the canonical form the DLXe decoder
/// produces, without changing semantics. Useful for round-trip testing and
/// for comparing compiler output with decoded binaries.
pub fn canonicalize(insn: Insn) -> Insn {
    match insn {
        Insn::Br { disp } => Insn::Jdisp { link: false, disp },
        Insn::AluI { op: AluOp::Add, rd, rs1, imm } if rs1 == abi::R0 => Insn::Mvi { rd, imm },
        Insn::Alu { op: AluOp::Add, rd, rs1, rs2 }
            if rs2 == abi::R0 && (rd != abi::R0 || rs1 != abi::R0) =>
        {
            Insn::Un { op: UnOp::Mv, rd, rs: rs1 }
        }
        Insn::Alu { op: AluOp::Add, rd, rs1, rs2 }
            if rd == abi::R0 && rs1 == abi::R0 && rs2 == abi::R0 =>
        {
            Insn::Nop
        }
        Insn::Alu { op: AluOp::Sub, rd, rs1, rs2 } if rs1 == abi::R0 => {
            Insn::Un { op: UnOp::Neg, rd, rs: rs2 }
        }
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rt(insn: Insn) -> Insn {
        let w = encode(&insn).unwrap_or_else(|e| panic!("encode {insn:?}: {e}"));
        decode(w).unwrap_or_else(|e| panic!("decode {w:#010x}: {e}"))
    }

    #[test]
    fn roundtrip_representative_instructions() {
        let r = Gpr::new;
        let f = Fpr::new;
        let cases = [
            Insn::Alu { op: AluOp::Add, rd: r(17), rs1: r(20), rs2: r(31) },
            Insn::AluI { op: AluOp::Add, rd: r(4), rs1: r(9), imm: -32768 },
            Insn::AluI { op: AluOp::And, rd: r(4), rs1: r(9), imm: 65535 },
            Insn::AluI { op: AluOp::Shra, rd: r(4), rs1: r(9), imm: 31 },
            Insn::Un { op: UnOp::Mv, rd: r(22), rs: r(3) },
            Insn::Un { op: UnOp::Neg, rd: r(22), rs: r(3) },
            Insn::Mvi { rd: r(6), imm: 32767 },
            Insn::Lui { rd: r(6), imm: 0xffff },
            Insn::Cmp { cond: Cond::Geu, rd: r(19), rs1: r(5), rs2: r(6) },
            Insn::CmpI { cond: Cond::Gt, rd: r(19), rs1: r(5), imm: -100 },
            Insn::Ld { w: MemWidth::W, rd: r(2), base: r(29), disp: -20000 },
            Insn::Ld { w: MemWidth::Bu, rd: r(2), base: r(3), disp: 77 },
            Insn::St { w: MemWidth::W, rs: r(2), base: r(29), disp: 32764 },
            Insn::St { w: MemWidth::H, rs: r(2), base: r(3), disp: -2 },
            Insn::Bc { neg: false, rs: r(7), disp: -131072 },
            Insn::Bc { neg: true, rs: r(7), disp: 131068 },
            Insn::J { target: r(1) },
            Insn::Jc { neg: true, rs: r(2), target: r(9) },
            Insn::Jl { target: r(12) },
            Insn::Jdisp { link: true, disp: -4 },
            Insn::Jdisp { link: false, disp: (1 << 27) - 4 },
            Insn::FAlu { op: FpOp::Div, prec: Prec::D, fd: f(4), fs1: f(24), fs2: f(10) },
            Insn::FNeg { prec: Prec::S, fd: f(1), fs: f(31) },
            Insn::FCmp { cond: FpCond::Le, prec: Prec::D, fs1: f(2), fs2: f(8) },
            Insn::Cvt { op: CvtOp::Si2Df, fd: f(6), fs: f(7) },
            Insn::Mtf { fd: f(17), rs: r(8) },
            Insn::Mff { rd: r(8), fs: f(17) },
            Insn::Rdsr { rd: r(11) },
            Insn::Trap { code: TrapCode::PutChar },
            Insn::Nop,
        ];
        for c in cases {
            assert_eq!(rt(c), canonicalize(c));
        }
    }

    #[test]
    fn canonical_forms() {
        // mvi == addi rd, r0
        let w = encode(&Insn::Mvi { rd: Gpr::new(5), imm: 7 }).unwrap();
        let w2 =
            encode(&Insn::AluI { op: AluOp::Add, rd: Gpr::new(5), rs1: abi::R0, imm: 7 }).unwrap();
        assert_eq!(w, w2);
        // br == j
        assert_eq!(
            encode(&Insn::Br { disp: 8 }).unwrap(),
            encode(&Insn::Jdisp { link: false, disp: 8 }).unwrap()
        );
        // nop is the all-zero word
        assert_eq!(encode(&Insn::Nop).unwrap(), 0);
    }

    #[test]
    fn rejects_d16_only_shapes() {
        assert!(encode(&Insn::Ldc { rd: Gpr::new(1), disp: 0 }).is_err());
        assert!(encode(&Insn::Un { op: UnOp::Inv, rd: Gpr::new(1), rs: Gpr::new(2) }).is_err());
    }

    #[test]
    fn rejects_out_of_range_immediates() {
        assert!(encode(&Insn::Mvi { rd: Gpr::new(1), imm: 32768 }).is_err());
        assert!(encode(&Insn::AluI { op: AluOp::And, rd: Gpr::new(1), rs1: Gpr::new(1), imm: -1 })
            .is_err());
        assert!(encode(&Insn::Ld { w: MemWidth::W, rd: Gpr::new(1), base: abi::SP, disp: 40000 })
            .is_err());
        assert!(encode(&Insn::Bc { neg: false, rs: abi::R0, disp: 2 }).is_err());
    }

    #[test]
    fn three_address_allowed() {
        assert!(encode(&Insn::Alu {
            op: AluOp::Sub,
            rd: Gpr::new(1),
            rs1: Gpr::new(2),
            rs2: Gpr::new(3)
        })
        .is_ok());
    }

    #[test]
    fn decode_rejects_reserved() {
        assert!(decode(63 << 26).is_err());
        // R-type reserved func
        assert!(decode(0x7ff).is_err());
    }

    #[test]
    fn randomized_decode_encode_roundtrip() {
        // A pseudo-random sweep: every word that decodes must re-encode to
        // an equivalent instruction.
        let mut state = 0x12345678u32;
        let mut decoded = 0u32;
        for _ in 0..2_000_000 {
            state = state.wrapping_mul(1664525).wrapping_add(1013904223);
            if let Ok(insn) = decode(state) {
                decoded += 1;
                let w2 = encode(&insn)
                    .unwrap_or_else(|e| panic!("re-encode of {state:#010x} -> {insn:?}: {e}"));
                assert_eq!(decode(w2).unwrap(), insn, "{state:#010x} vs {w2:#010x}");
            }
        }
        assert!(decoded > 100_000, "only {decoded} decodable out of 2M samples");
    }
}
