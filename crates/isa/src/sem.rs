//! The machine's integer semantics, defined once.
//!
//! Every layer that evaluates integer arithmetic — the simulator's ALU
//! ([`crate::AluOp::eval`]), the compiler's constant folder, the Mini-C
//! runtime helpers (`__divsi3` and friends), and any reference evaluator or
//! interpreter used for differential testing — must agree bit for bit, or a
//! constant-folded program diverges from the same program computed at run
//! time. This module is the single normative definition; all of those
//! layers either call these helpers or pin themselves to them with tests.
//!
//! The contract, for 32-bit two's-complement values:
//!
//! * **Shifts** use the low five bits of the count (`count & 31`), like the
//!   hardware shifter. A count of 32 shifts by 0; a count of -1 shifts
//!   by 31. [`shr`] is logical (zero-filling), [`sar`] arithmetic
//!   (sign-filling).
//! * **Division and remainder by zero** return 0, for both the signed and
//!   unsigned helpers. The machine has no divide trap; the runtime helpers
//!   return 0 and the folder must match.
//! * **Signed overflow** wraps: `i32::MIN / -1 == i32::MIN` and
//!   `i32::MIN % -1 == 0`.

/// Wrapping 32-bit addition.
#[inline]
pub fn add(a: i32, b: i32) -> i32 {
    a.wrapping_add(b)
}

/// Wrapping 32-bit subtraction.
#[inline]
pub fn sub(a: i32, b: i32) -> i32 {
    a.wrapping_sub(b)
}

/// Wrapping 32-bit multiplication (low half of the 64-bit product).
#[inline]
pub fn mul(a: i32, b: i32) -> i32 {
    a.wrapping_mul(b)
}

/// Shift left; the count is masked to its low five bits.
#[inline]
pub fn shl(a: i32, count: i32) -> i32 {
    ((a as u32) << (count as u32 & 31)) as i32
}

/// Logical (zero-filling) shift right; the count is masked to its low five
/// bits.
#[inline]
pub fn shr(a: i32, count: i32) -> i32 {
    ((a as u32) >> (count as u32 & 31)) as i32
}

/// Arithmetic (sign-filling) shift right; the count is masked to its low
/// five bits.
#[inline]
pub fn sar(a: i32, count: i32) -> i32 {
    a >> (count as u32 & 31)
}

/// Signed division: `n / 0 == 0`, `i32::MIN / -1` wraps to `i32::MIN`.
#[inline]
pub fn div(a: i32, b: i32) -> i32 {
    if b == 0 {
        0
    } else {
        a.wrapping_div(b)
    }
}

/// Signed remainder: `n % 0 == 0`, `i32::MIN % -1 == 0`.
#[inline]
pub fn rem(a: i32, b: i32) -> i32 {
    if b == 0 {
        0
    } else {
        a.wrapping_rem(b)
    }
}

/// Unsigned division: `n / 0 == 0`.
#[inline]
pub fn udiv(a: u32, b: u32) -> u32 {
    a.checked_div(b).unwrap_or(0)
}

/// Unsigned remainder: `n % 0 == 0`.
#[inline]
pub fn urem(a: u32, b: u32) -> u32 {
    a.checked_rem(b).unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shift_counts_use_low_five_bits() {
        assert_eq!(shl(1, 32), 1, "count 32 masks to 0");
        assert_eq!(shl(1, 33), 2, "count 33 masks to 1");
        assert_eq!(shl(1, -1), i32::MIN, "count -1 masks to 31");
        assert_eq!(shr(i32::MIN, 32), i32::MIN);
        assert_eq!(shr(i32::MIN, -1), 1, "logical shift zero-fills");
        assert_eq!(sar(i32::MIN, -1), -1, "arithmetic shift sign-fills");
        assert_eq!(sar(-8, 1), -4);
        assert_eq!(shr(-8, 1), 0x7fff_fffc);
    }

    #[test]
    fn division_by_zero_is_zero() {
        assert_eq!(div(42, 0), 0);
        assert_eq!(div(i32::MIN, 0), 0);
        assert_eq!(rem(42, 0), 0);
        assert_eq!(udiv(42, 0), 0);
        assert_eq!(urem(42, 0), 0);
    }

    #[test]
    fn signed_overflow_wraps() {
        assert_eq!(div(i32::MIN, -1), i32::MIN);
        assert_eq!(rem(i32::MIN, -1), 0);
        assert_eq!(mul(i32::MIN, -1), i32::MIN);
        assert_eq!(add(i32::MAX, 1), i32::MIN);
        assert_eq!(sub(i32::MIN, 1), i32::MAX);
    }

    #[test]
    fn ordinary_arithmetic() {
        assert_eq!(div(7, 2), 3);
        assert_eq!(div(-7, 2), -3, "division truncates toward zero");
        assert_eq!(rem(-7, 2), -1, "remainder takes the dividend's sign");
        assert_eq!(udiv(0xffff_fff0, 16), 0x0fff_ffff);
        assert_eq!(urem(0xffff_ffff, 10), 5);
    }

    #[test]
    fn agrees_with_alu_eval() {
        // The simulator's ALU must implement the same contract.
        use crate::AluOp;
        for (a, b) in [(1i32, 33i32), (i32::MIN, -1), (-8, 1), (0x1234_5678, 40), (5, 0)] {
            assert_eq!(AluOp::Shl.eval(a as u32, b as u32), shl(a, b) as u32);
            assert_eq!(AluOp::Shr.eval(a as u32, b as u32), shr(a, b) as u32);
            assert_eq!(AluOp::Shra.eval(a as u32, b as u32), sar(a, b) as u32);
            assert_eq!(AluOp::Add.eval(a as u32, b as u32), add(a, b) as u32);
            assert_eq!(AluOp::Sub.eval(a as u32, b as u32), sub(a, b) as u32);
        }
    }
}
