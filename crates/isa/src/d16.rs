//! The D16 16-bit instruction format: encoder and decoder.
//!
//! The format figure in the surviving paper text is OCR-garbled, so this is
//! a *reconstruction* that satisfies every constraint stated in the prose
//! and in Table 1 (see DESIGN.md §2 and §4). Field layout, most significant
//! bits first:
//!
//! ```text
//! MEM   1 1 o ddddd yyyy xxxx   o: 0=ld 1=st (word); disp = d*4 (0..124); base ry
//! BR    1 0 1 oo 0 ddddddddd    oo: 0=br 1=bz 2=bnz; disp = d*2, signed (±1024 bytes)
//! LDC   1 0 0 0 dddddddd xxxx   rx <- mem[align4(pc+2) + d*4]  (literal pool, 0..1020)
//! REG   0 1 oooooo yyyy xxxx    two-address ops, compares, jumps, subword memory, FPU
//! MVI   0 0 1 sssssssss xxxx    rx <- sext(imm9)
//! IMM   0 0 0 1 ooo iiiii xxxx  ooo: addi subi shli shri shrai cmpeqi; imm unsigned 5 bits
//! SYS   0 0 0 0 oooo cccccccc   0=nop 1=trap(code c) 2=rdsr(rx in low nibble)
//! ```
//!
//! All the paper's stated properties hold: sixteen-bit instructions; 4-bit
//! register fields addressing sixteen GPRs and sixteen FPRs; two-address
//! ALU operations; unsigned 5-bit ALU immediates; a sign-extended 9-bit
//! move-immediate; word-aligned load/store displacements limited to 128
//! bytes; non-offsettable subword accesses; PC-relative branches with a
//! 1024-byte limit; jumps to absolute addresses in registers with linkage
//! register `r1`; compares with fixed destination `r0`.

use crate::insn::Insn;
use crate::op::{AluOp, Cond, CvtOp, FpCond, FpOp, MemWidth, Prec, TrapCode, UnOp};
use crate::reg::{abi, Fpr, Gpr};
use crate::{DecodeError, EncodeError};

/// Inclusive maximum word-mode load/store displacement (bytes).
pub const MAX_MEM_DISP: i32 = 124;
/// Inclusive maximum literal-pool (`ldc`) displacement (bytes, forward).
pub const MAX_LDC_DISP: i32 = 1020;
/// Branch displacement range in bytes, relative to the delay slot.
pub const BR_RANGE: std::ops::RangeInclusive<i32> = -1024..=1022;
/// ALU immediate range (unsigned five bits).
pub const ALU_IMM_RANGE: std::ops::RangeInclusive<i32> = 0..=31;
/// Move-immediate range (signed nine bits).
pub const MVI_RANGE: std::ops::RangeInclusive<i32> = -256..=255;

// REG-format opcode assignments (6 bits).
mod regop {
    pub const ADD: u16 = 0;
    pub const SUB: u16 = 1;
    pub const AND: u16 = 2;
    pub const OR: u16 = 3;
    pub const XOR: u16 = 4;
    pub const SHL: u16 = 5;
    pub const SHR: u16 = 6;
    pub const SHRA: u16 = 7;
    pub const NEG: u16 = 8;
    pub const INV: u16 = 9;
    pub const MV: u16 = 10;
    pub const CMP_BASE: u16 = 11; // eq ne lt ltu le leu -> 11..16
    pub const J: u16 = 17;
    pub const JZ: u16 = 18;
    pub const JNZ: u16 = 19;
    pub const JL: u16 = 20;
    pub const LDH: u16 = 21;
    pub const LDHU: u16 = 22;
    pub const LDB: u16 = 23;
    pub const LDBU: u16 = 24;
    pub const STH: u16 = 25;
    pub const STB: u16 = 26;
    pub const MTF: u16 = 27;
    pub const MFF: u16 = 28;
    pub const FALU_S_BASE: u16 = 29; // add sub mul div -> 29..32
    pub const FNEG_S: u16 = 33;
    pub const FALU_D_BASE: u16 = 34; // add sub mul div -> 34..37
    pub const FNEG_D: u16 = 38;
    pub const FCMP_S_BASE: u16 = 39; // eq lt le -> 39..41
    pub const FCMP_D_BASE: u16 = 42; // eq lt le -> 42..44
    pub const CVT_BASE: u16 = 45; // si2sf si2df sf2df df2sf sf2si df2si -> 45..50
}

pub(crate) fn d16_cond_index(cond: Cond) -> Option<u16> {
    Some(match cond {
        Cond::Eq => 0,
        Cond::Ne => 1,
        Cond::Lt => 2,
        Cond::Ltu => 3,
        Cond::Le => 4,
        Cond::Leu => 5,
        _ => return None,
    })
}

pub(crate) fn cond_from_index(i: u16) -> Cond {
    [Cond::Eq, Cond::Ne, Cond::Lt, Cond::Ltu, Cond::Le, Cond::Leu][i as usize]
}

fn fcond_index(c: FpCond) -> u16 {
    match c {
        FpCond::Eq => 0,
        FpCond::Lt => 1,
        FpCond::Le => 2,
    }
}

fn fcond_from_index(i: u16) -> FpCond {
    [FpCond::Eq, FpCond::Lt, FpCond::Le][i as usize]
}

fn fpop_index(op: FpOp) -> u16 {
    match op {
        FpOp::Add => 0,
        FpOp::Sub => 1,
        FpOp::Mul => 2,
        FpOp::Div => 3,
    }
}

fn fpop_from_index(i: u16) -> FpOp {
    [FpOp::Add, FpOp::Sub, FpOp::Mul, FpOp::Div][i as usize]
}

fn cvt_index(op: CvtOp) -> u16 {
    match op {
        CvtOp::Si2Sf => 0,
        CvtOp::Si2Df => 1,
        CvtOp::Sf2Df => 2,
        CvtOp::Df2Sf => 3,
        CvtOp::Sf2Si => 4,
        CvtOp::Df2Si => 5,
    }
}

fn cvt_from_index(i: u16) -> CvtOp {
    [CvtOp::Si2Sf, CvtOp::Si2Df, CvtOp::Sf2Df, CvtOp::Df2Sf, CvtOp::Sf2Si, CvtOp::Df2Si][i as usize]
}

pub(crate) fn gpr4(r: Gpr) -> Result<u16, EncodeError> {
    if r.fits_d16() {
        Ok(r.number() as u16)
    } else {
        Err(EncodeError::RegisterOutOfRange(r.number()))
    }
}

fn fpr4(r: Fpr) -> Result<u16, EncodeError> {
    if r.fits_d16() {
        Ok(r.number() as u16)
    } else {
        Err(EncodeError::RegisterOutOfRange(r.number()))
    }
}

fn reg_format(op: u16, ry: u16, rx: u16) -> u16 {
    0b01 << 14 | op << 8 | ry << 4 | rx
}

fn check_two_address(rd: Gpr, rs1: Gpr) -> Result<(), EncodeError> {
    if rd == rs1 {
        Ok(())
    } else {
        Err(EncodeError::NotTwoAddress)
    }
}

fn check_double(r: Fpr) -> Result<(), EncodeError> {
    if r.is_even() {
        Ok(())
    } else {
        Err(EncodeError::OddDoubleRegister(r.number()))
    }
}

/// Encodes one instruction into its 16-bit D16 representation.
///
/// # Errors
///
/// Returns an [`EncodeError`] if the instruction uses an operand shape the
/// D16 format cannot express: a register above `r15`/`f15`, a three-address
/// ALU shape (`rd != rs1`), an out-of-range immediate or displacement, an
/// offsettable subword access, a compare whose destination is not `r0`, a
/// condition outside the D16 set, or a DLXe-only operation (`mvhi`,
/// J-format jumps, immediate compares other than the `cmpeqi` extension).
pub fn encode(insn: &Insn) -> Result<u16, EncodeError> {
    match *insn {
        Insn::Alu { op, rd, rs1, rs2 } => {
            check_two_address(rd, rs1)?;
            let opc = match op {
                AluOp::Add => regop::ADD,
                AluOp::Sub => regop::SUB,
                AluOp::And => regop::AND,
                AluOp::Or => regop::OR,
                AluOp::Xor => regop::XOR,
                AluOp::Shl => regop::SHL,
                AluOp::Shr => regop::SHR,
                AluOp::Shra => regop::SHRA,
            };
            Ok(reg_format(opc, gpr4(rs2)?, gpr4(rd)?))
        }
        Insn::AluI { op, rd, rs1, imm } => {
            check_two_address(rd, rs1)?;
            if !ALU_IMM_RANGE.contains(&imm) {
                return Err(EncodeError::ImmediateOutOfRange(imm));
            }
            let opc = match op {
                AluOp::Add => 0u16,
                AluOp::Sub => 1,
                AluOp::Shl => 2,
                AluOp::Shr => 3,
                AluOp::Shra => 4,
                _ => return Err(EncodeError::NoImmediateForm(op)),
            };
            Ok(0b0001 << 12 | opc << 9 | (imm as u16) << 4 | gpr4(rd)?)
        }
        Insn::Un { op, rd, rs } => {
            let opc = match op {
                UnOp::Neg => regop::NEG,
                UnOp::Inv => regop::INV,
                UnOp::Mv => regop::MV,
            };
            Ok(reg_format(opc, gpr4(rs)?, gpr4(rd)?))
        }
        Insn::Mvi { rd, imm } => {
            if !MVI_RANGE.contains(&imm) {
                return Err(EncodeError::ImmediateOutOfRange(imm));
            }
            Ok(0b001 << 13 | ((imm as u16) & 0x1ff) << 4 | gpr4(rd)?)
        }
        Insn::Lui { .. } => Err(EncodeError::NotInIsa("mvhi")),
        Insn::Cmp { cond, rd, rs1, rs2 } => {
            if rd != abi::R0 {
                return Err(EncodeError::CompareDestNotR0);
            }
            let ci = d16_cond_index(cond).ok_or(EncodeError::ConditionNotInIsa(cond))?;
            Ok(reg_format(regop::CMP_BASE + ci, gpr4(rs2)?, gpr4(rs1)?))
        }
        Insn::CmpI { cond, rd, rs1, imm } => {
            // The cmpeqi extension discussed in the paper's §3.3.3. The
            // bit pattern exists; whether the compiler uses it is a
            // TargetSpec option.
            if cond != Cond::Eq {
                return Err(EncodeError::ConditionNotInIsa(cond));
            }
            if rd != abi::R0 {
                return Err(EncodeError::CompareDestNotR0);
            }
            if !ALU_IMM_RANGE.contains(&imm) {
                return Err(EncodeError::ImmediateOutOfRange(imm));
            }
            Ok(0b0001 << 12 | 5 << 9 | (imm as u16) << 4 | gpr4(rs1)?)
        }
        Insn::Ld { w, rd, base, disp } => match w {
            MemWidth::W => {
                check_mem_disp(disp)?;
                Ok(0b11 << 14 | ((disp as u16) / 4) << 8 | gpr4(base)? << 4 | gpr4(rd)?)
            }
            _ => {
                if disp != 0 {
                    return Err(EncodeError::SubwordDisplacement(disp));
                }
                let opc = match w {
                    MemWidth::H => regop::LDH,
                    MemWidth::Hu => regop::LDHU,
                    MemWidth::B => regop::LDB,
                    MemWidth::Bu => regop::LDBU,
                    MemWidth::W => unreachable!(),
                };
                Ok(reg_format(opc, gpr4(base)?, gpr4(rd)?))
            }
        },
        Insn::St { w, rs, base, disp } => match w {
            MemWidth::W => {
                check_mem_disp(disp)?;
                Ok(0b11 << 14 | 1 << 13 | ((disp as u16) / 4) << 8 | gpr4(base)? << 4 | gpr4(rs)?)
            }
            _ => {
                if disp != 0 {
                    return Err(EncodeError::SubwordDisplacement(disp));
                }
                let opc = match w {
                    MemWidth::H | MemWidth::Hu => regop::STH,
                    MemWidth::B | MemWidth::Bu => regop::STB,
                    MemWidth::W => unreachable!(),
                };
                Ok(reg_format(opc, gpr4(base)?, gpr4(rs)?))
            }
        },
        Insn::Ldc { rd, disp } => {
            if !(0..=MAX_LDC_DISP).contains(&disp) || disp % 4 != 0 {
                return Err(EncodeError::DisplacementOutOfRange(disp));
            }
            Ok(0b1000 << 12 | ((disp as u16) / 4) << 4 | gpr4(rd)?)
        }
        Insn::Br { disp } => encode_branch(0, disp),
        Insn::Bc { neg, rs, disp } => {
            if rs != abi::R0 {
                return Err(EncodeError::BranchSourceNotR0);
            }
            encode_branch(if neg { 2 } else { 1 }, disp)
        }
        Insn::J { target } => Ok(reg_format(regop::J, gpr4(target)?, 0)),
        Insn::Jc { neg, rs, target } => {
            if rs != abi::R0 {
                return Err(EncodeError::BranchSourceNotR0);
            }
            let opc = if neg { regop::JNZ } else { regop::JZ };
            Ok(reg_format(opc, gpr4(target)?, 0))
        }
        Insn::Jl { target } => Ok(reg_format(regop::JL, gpr4(target)?, 0)),
        Insn::Jdisp { .. } => Err(EncodeError::NotInIsa("J-format jump")),
        Insn::FAlu { op, prec, fd, fs1, fs2 } => {
            if fd != fs1 {
                return Err(EncodeError::NotTwoAddress);
            }
            if prec == Prec::D {
                check_double(fd)?;
                check_double(fs2)?;
            }
            let base = match prec {
                Prec::S => regop::FALU_S_BASE,
                Prec::D => regop::FALU_D_BASE,
            };
            Ok(reg_format(base + fpop_index(op), fpr4(fs2)?, fpr4(fd)?))
        }
        Insn::FNeg { prec, fd, fs } => {
            if prec == Prec::D {
                check_double(fd)?;
                check_double(fs)?;
            }
            let opc = match prec {
                Prec::S => regop::FNEG_S,
                Prec::D => regop::FNEG_D,
            };
            Ok(reg_format(opc, fpr4(fs)?, fpr4(fd)?))
        }
        Insn::FCmp { cond, prec, fs1, fs2 } => {
            if prec == Prec::D {
                check_double(fs1)?;
                check_double(fs2)?;
            }
            let base = match prec {
                Prec::S => regop::FCMP_S_BASE,
                Prec::D => regop::FCMP_D_BASE,
            };
            Ok(reg_format(base + fcond_index(cond), fpr4(fs2)?, fpr4(fs1)?))
        }
        Insn::Cvt { op, fd, fs } => {
            if op.dst_is_double() {
                check_double(fd)?;
            }
            if op.src_is_double() {
                check_double(fs)?;
            }
            Ok(reg_format(regop::CVT_BASE + cvt_index(op), fpr4(fs)?, fpr4(fd)?))
        }
        Insn::Mtf { fd, rs } => Ok(reg_format(regop::MTF, fpr4(fd)?, gpr4(rs)?)),
        Insn::Mff { rd, fs } => Ok(reg_format(regop::MFF, fpr4(fs)?, gpr4(rd)?)),
        Insn::Rdsr { rd } => Ok(2 << 8 | gpr4(rd)?),
        Insn::Trap { code } => Ok(1 << 8 | code.code() as u16),
        Insn::Nop => Ok(0),
    }
}

fn check_mem_disp(disp: i32) -> Result<(), EncodeError> {
    if !(0..=MAX_MEM_DISP).contains(&disp) || disp % 4 != 0 {
        Err(EncodeError::DisplacementOutOfRange(disp))
    } else {
        Ok(())
    }
}

fn encode_branch(op: u16, disp: i32) -> Result<u16, EncodeError> {
    if disp % 2 != 0 || !BR_RANGE.contains(&disp) {
        return Err(EncodeError::DisplacementOutOfRange(disp));
    }
    let units = ((disp / 2) as u16) & 0x3ff;
    Ok(0b101 << 13 | op << 11 | units)
}

/// Decodes a 16-bit D16 instruction word.
///
/// # Errors
///
/// Returns [`DecodeError`] for reserved patterns.
pub fn decode(word: u16) -> Result<Insn, DecodeError> {
    let rx = Gpr::new((word & 0xf) as u8);
    let ry = Gpr::new(((word >> 4) & 0xf) as u8);
    let fx = Fpr::new((word & 0xf) as u8);
    let fy = Fpr::new(((word >> 4) & 0xf) as u8);
    let ill = || DecodeError::Illegal(word as u32);

    if word >> 14 == 0b11 {
        // MEM
        let disp = (((word >> 8) & 0x1f) * 4) as i32;
        return Ok(if word & (1 << 13) == 0 {
            Insn::Ld { w: MemWidth::W, rd: rx, base: ry, disp }
        } else {
            Insn::St { w: MemWidth::W, rs: rx, base: ry, disp }
        });
    }
    if word >> 13 == 0b101 {
        // BR. Bit 10 sits between the op and displacement fields and is
        // never set by the encoder; reject it so decode(w) -> encode is
        // the identity on every decodable word.
        if word & (1 << 10) != 0 {
            return Err(ill());
        }
        let op = (word >> 11) & 0b11;
        let units = (word & 0x3ff) as i32;
        let disp = (units << 22) >> 22 << 1; // sign-extend 10 bits, scale by 2
        return match op {
            0 => Ok(Insn::Br { disp }),
            1 => Ok(Insn::Bc { neg: false, rs: abi::R0, disp }),
            2 => Ok(Insn::Bc { neg: true, rs: abi::R0, disp }),
            _ => Err(ill()),
        };
    }
    if word >> 12 == 0b1000 {
        // LDC
        let disp = (((word >> 4) & 0xff) * 4) as i32;
        return Ok(Insn::Ldc { rd: rx, disp });
    }
    if word >> 14 == 0b01 {
        // REG
        let op = (word >> 8) & 0x3f;
        use regop::*;
        return Ok(match op {
            ADD..=SHRA => {
                let alu = [
                    AluOp::Add,
                    AluOp::Sub,
                    AluOp::And,
                    AluOp::Or,
                    AluOp::Xor,
                    AluOp::Shl,
                    AluOp::Shr,
                    AluOp::Shra,
                ][op as usize];
                Insn::Alu { op: alu, rd: rx, rs1: rx, rs2: ry }
            }
            NEG => Insn::Un { op: UnOp::Neg, rd: rx, rs: ry },
            INV => Insn::Un { op: UnOp::Inv, rd: rx, rs: ry },
            MV => Insn::Un { op: UnOp::Mv, rd: rx, rs: ry },
            _ if (CMP_BASE..CMP_BASE + 6).contains(&op) => {
                Insn::Cmp { cond: cond_from_index(op - CMP_BASE), rd: abi::R0, rs1: rx, rs2: ry }
            }
            // Jumps take their target from ry; the encoder always writes
            // rx as zero, so a nonzero rx is a reserved pattern (this
            // keeps decode -> encode byte-identical).
            J | JZ | JNZ | JL if word & 0xf != 0 => return Err(ill()),
            J => Insn::J { target: ry },
            JZ => Insn::Jc { neg: false, rs: abi::R0, target: ry },
            JNZ => Insn::Jc { neg: true, rs: abi::R0, target: ry },
            JL => Insn::Jl { target: ry },
            LDH => Insn::Ld { w: MemWidth::H, rd: rx, base: ry, disp: 0 },
            LDHU => Insn::Ld { w: MemWidth::Hu, rd: rx, base: ry, disp: 0 },
            LDB => Insn::Ld { w: MemWidth::B, rd: rx, base: ry, disp: 0 },
            LDBU => Insn::Ld { w: MemWidth::Bu, rd: rx, base: ry, disp: 0 },
            STH => Insn::St { w: MemWidth::H, rs: rx, base: ry, disp: 0 },
            STB => Insn::St { w: MemWidth::B, rs: rx, base: ry, disp: 0 },
            MTF => Insn::Mtf { fd: fy, rs: rx },
            MFF => Insn::Mff { rd: rx, fs: fy },
            _ if (FALU_S_BASE..FALU_S_BASE + 4).contains(&op) => Insn::FAlu {
                op: fpop_from_index(op - FALU_S_BASE),
                prec: Prec::S,
                fd: fx,
                fs1: fx,
                fs2: fy,
            },
            FNEG_S => Insn::FNeg { prec: Prec::S, fd: fx, fs: fy },
            _ if (FALU_D_BASE..FALU_D_BASE + 4).contains(&op) => {
                if !fx.is_even() || !fy.is_even() {
                    return Err(ill());
                }
                Insn::FAlu {
                    op: fpop_from_index(op - FALU_D_BASE),
                    prec: Prec::D,
                    fd: fx,
                    fs1: fx,
                    fs2: fy,
                }
            }
            FNEG_D => {
                if !fx.is_even() || !fy.is_even() {
                    return Err(ill());
                }
                Insn::FNeg { prec: Prec::D, fd: fx, fs: fy }
            }
            _ if (FCMP_S_BASE..FCMP_S_BASE + 3).contains(&op) => Insn::FCmp {
                cond: fcond_from_index(op - FCMP_S_BASE),
                prec: Prec::S,
                fs1: fx,
                fs2: fy,
            },
            _ if (FCMP_D_BASE..FCMP_D_BASE + 3).contains(&op) => {
                if !fx.is_even() || !fy.is_even() {
                    return Err(ill());
                }
                Insn::FCmp {
                    cond: fcond_from_index(op - FCMP_D_BASE),
                    prec: Prec::D,
                    fs1: fx,
                    fs2: fy,
                }
            }
            _ if (CVT_BASE..CVT_BASE + 6).contains(&op) => {
                let cvt = cvt_from_index(op - CVT_BASE);
                if (cvt.dst_is_double() && !fx.is_even()) || (cvt.src_is_double() && !fy.is_even())
                {
                    return Err(ill());
                }
                Insn::Cvt { op: cvt, fd: fx, fs: fy }
            }
            _ => return Err(ill()),
        });
    }
    if word >> 13 == 0b001 {
        // MVI
        let raw = ((word >> 4) & 0x1ff) as i32;
        let imm = (raw << 23) >> 23; // sign-extend 9 bits
        return Ok(Insn::Mvi { rd: rx, imm });
    }
    if word >> 12 == 0b0001 {
        // IMM
        let op = (word >> 9) & 0b111;
        let imm = ((word >> 4) & 0x1f) as i32;
        return Ok(match op {
            0 => Insn::AluI { op: AluOp::Add, rd: rx, rs1: rx, imm },
            1 => Insn::AluI { op: AluOp::Sub, rd: rx, rs1: rx, imm },
            2 => Insn::AluI { op: AluOp::Shl, rd: rx, rs1: rx, imm },
            3 => Insn::AluI { op: AluOp::Shr, rd: rx, rs1: rx, imm },
            4 => Insn::AluI { op: AluOp::Shra, rd: rx, rs1: rx, imm },
            5 => Insn::CmpI { cond: Cond::Eq, rd: abi::R0, rs1: rx, imm },
            _ => return Err(ill()),
        });
    }
    if word >> 12 != 0 {
        // The 1001 prefix is reserved.
        return Err(ill());
    }
    // SYS: top four bits zero.
    let op = (word >> 8) & 0xf;
    match op {
        0 if word == 0 => Ok(Insn::Nop),
        1 => {
            TrapCode::from_code((word & 0xff) as u8).map(|code| Insn::Trap { code }).ok_or_else(ill)
        }
        // rdsr encodes only a destination in rx; the ry nibble is always
        // zero in encoder output, so anything else is reserved.
        2 if word & 0xf0 == 0 => Ok(Insn::Rdsr { rd: rx }),
        _ => Err(ill()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rt(insn: Insn) -> Insn {
        let w = encode(&insn).unwrap_or_else(|e| panic!("encode {insn:?}: {e}"));
        decode(w).unwrap_or_else(|e| panic!("decode {w:#06x}: {e}"))
    }

    #[test]
    fn roundtrip_representative_instructions() {
        let r = Gpr::new;
        let f = Fpr::new;
        let cases = [
            Insn::Alu { op: AluOp::Add, rd: r(3), rs1: r(3), rs2: r(7) },
            Insn::Alu { op: AluOp::Shra, rd: r(15), rs1: r(15), rs2: r(0) },
            Insn::AluI { op: AluOp::Add, rd: r(4), rs1: r(4), imm: 31 },
            Insn::AluI { op: AluOp::Shl, rd: r(4), rs1: r(4), imm: 0 },
            Insn::Un { op: UnOp::Neg, rd: r(2), rs: r(9) },
            Insn::Un { op: UnOp::Mv, rd: r(14), rs: r(1) },
            Insn::Mvi { rd: r(6), imm: -256 },
            Insn::Mvi { rd: r(6), imm: 255 },
            Insn::Cmp { cond: Cond::Leu, rd: abi::R0, rs1: r(5), rs2: r(6) },
            Insn::CmpI { cond: Cond::Eq, rd: abi::R0, rs1: r(5), imm: 17 },
            Insn::Ld { w: MemWidth::W, rd: r(2), base: r(15), disp: 124 },
            Insn::Ld { w: MemWidth::Bu, rd: r(2), base: r(3), disp: 0 },
            Insn::St { w: MemWidth::W, rs: r(2), base: r(15), disp: 0 },
            Insn::St { w: MemWidth::H, rs: r(2), base: r(3), disp: 0 },
            Insn::Ldc { rd: r(9), disp: 1020 },
            Insn::Br { disp: -1024 },
            Insn::Br { disp: 1022 },
            Insn::Bc { neg: true, rs: abi::R0, disp: 100 },
            Insn::J { target: r(1) },
            Insn::Jc { neg: false, rs: abi::R0, target: r(9) },
            Insn::Jl { target: r(12) },
            Insn::FAlu { op: FpOp::Div, prec: Prec::D, fd: f(4), fs1: f(4), fs2: f(10) },
            Insn::FNeg { prec: Prec::S, fd: f(1), fs: f(15) },
            Insn::FCmp { cond: FpCond::Le, prec: Prec::S, fs1: f(3), fs2: f(8) },
            Insn::Cvt { op: CvtOp::Df2Si, fd: f(5), fs: f(6) },
            Insn::Mtf { fd: f(7), rs: r(8) },
            Insn::Mff { rd: r(8), fs: f(7) },
            Insn::Rdsr { rd: r(11) },
            Insn::Trap { code: TrapCode::Halt },
            Insn::Trap { code: TrapCode::PutInt },
            Insn::Nop,
        ];
        for c in cases {
            assert_eq!(rt(c), c);
        }
    }

    #[test]
    fn rejects_three_address() {
        let e = encode(&Insn::Alu {
            op: AluOp::Add,
            rd: Gpr::new(1),
            rs1: Gpr::new(2),
            rs2: Gpr::new(3),
        });
        assert!(matches!(e, Err(EncodeError::NotTwoAddress)));
    }

    #[test]
    fn rejects_wide_registers() {
        let e = encode(&Insn::Un { op: UnOp::Mv, rd: Gpr::new(16), rs: Gpr::new(0) });
        assert!(matches!(e, Err(EncodeError::RegisterOutOfRange(16))));
    }

    #[test]
    fn rejects_large_immediates() {
        let e = encode(&Insn::AluI { op: AluOp::Add, rd: Gpr::new(1), rs1: Gpr::new(1), imm: 32 });
        assert!(matches!(e, Err(EncodeError::ImmediateOutOfRange(32))));
        let e = encode(&Insn::Mvi { rd: Gpr::new(1), imm: 256 });
        assert!(matches!(e, Err(EncodeError::ImmediateOutOfRange(256))));
    }

    #[test]
    fn rejects_mem_displacement_beyond_128() {
        let e = encode(&Insn::Ld { w: MemWidth::W, rd: Gpr::new(1), base: abi::SP, disp: 128 });
        assert!(matches!(e, Err(EncodeError::DisplacementOutOfRange(128))));
        let e = encode(&Insn::Ld { w: MemWidth::W, rd: Gpr::new(1), base: abi::SP, disp: 6 });
        assert!(matches!(e, Err(EncodeError::DisplacementOutOfRange(6))), "unaligned");
        let e = encode(&Insn::Ld { w: MemWidth::W, rd: Gpr::new(1), base: abi::SP, disp: -4 });
        assert!(e.is_err(), "negative word displacement");
    }

    #[test]
    fn rejects_offsettable_subword() {
        let e = encode(&Insn::Ld { w: MemWidth::B, rd: Gpr::new(1), base: abi::SP, disp: 1 });
        assert!(matches!(e, Err(EncodeError::SubwordDisplacement(1))));
    }

    #[test]
    fn rejects_branch_beyond_1k() {
        assert!(encode(&Insn::Br { disp: 1024 }).is_err());
        assert!(encode(&Insn::Br { disp: -1026 }).is_err());
        assert!(encode(&Insn::Br { disp: 3 }).is_err(), "odd displacement");
        assert!(encode(&Insn::Br { disp: 1022 }).is_ok());
    }

    #[test]
    fn rejects_dlxe_only_shapes() {
        assert!(encode(&Insn::Lui { rd: Gpr::new(1), imm: 5 }).is_err());
        assert!(encode(&Insn::Jdisp { link: true, disp: 0 }).is_err());
        assert!(encode(&Insn::AluI { op: AluOp::And, rd: Gpr::new(1), rs1: Gpr::new(1), imm: 1 })
            .is_err());
        assert!(encode(&Insn::Cmp {
            cond: Cond::Gt,
            rd: abi::R0,
            rs1: Gpr::new(1),
            rs2: Gpr::new(2)
        })
        .is_err());
        assert!(encode(&Insn::Cmp {
            cond: Cond::Eq,
            rd: Gpr::new(3),
            rs1: Gpr::new(1),
            rs2: Gpr::new(2)
        })
        .is_err());
    }

    #[test]
    fn rejects_odd_double_registers() {
        let e = encode(&Insn::FAlu {
            op: FpOp::Add,
            prec: Prec::D,
            fd: Fpr::new(3),
            fs1: Fpr::new(3),
            fs2: Fpr::new(4),
        });
        assert!(matches!(e, Err(EncodeError::OddDoubleRegister(3))));
    }

    #[test]
    fn exhaustive_decode_encode_roundtrip() {
        // Every 16-bit pattern either fails to decode or decodes to an
        // instruction that re-encodes to the *same* pattern: the decoder
        // rejects any word with a nonzero value in a field the format does
        // not use, so decode -> encode is the identity on decodable words.
        // (The full exhaustive oracle, including reserved-pattern
        // stability, lives in tests/encoding_exhaustive.rs.)
        let mut decodable = 0u32;
        for w in 0..=u16::MAX {
            if let Ok(insn) = decode(w) {
                decodable += 1;
                let w2 = encode(&insn)
                    .unwrap_or_else(|e| panic!("re-encode of {w:#06x} -> {insn:?}: {e}"));
                assert_eq!(w, w2, "{w:#06x} -> {insn:?} -> {w2:#06x}");
            }
        }
        // Sanity: a healthy fraction of the space decodes (MEM alone is 2^14).
        assert!(decodable > 40_000, "only {decodable} patterns decodable");
    }
}
