//! # d16-xtests — workspace-level integration tests
//!
//! This crate holds no library code; its `tests/` directory exercises the
//! whole toolchain stack — compiler → assembler → linker → simulator →
//! memory models → experiment harness — across crate boundaries.
