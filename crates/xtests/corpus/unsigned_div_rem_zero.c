// The unsigned division helpers share the divide-by-zero contract with
// the signed ones: both quotient and remainder are 0.
// expect: 2
int main(void) {
    unsigned a = 7;
    unsigned z = 0;
    int ok = 0;
    if (a / z == 0) {
        ok = ok + 1;
    }
    if (a % z == 0) {
        ok = ok + 1;
    }
    return ok;
}
