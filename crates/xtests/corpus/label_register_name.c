// Found by d16-fuzz (every generated program tripped it): the assembler
// refused to define labels that look like register names, so any C
// function named like an FPR (f0..f15) or GPR (r0..r15) failed to
// assemble with "unknown mnemonic `f0`". Labels are unambiguous at
// statement head; the parser now accepts them.
// expect: 12
int f0(void) {
    return 7;
}

int r15(int p0) {
    return p0 + 4;
}

int main(void) {
    int x = 0;
    x = f0();
    x = r15(x + 1);
    return x;
}
