// Division edge cases have defined machine semantics: n / 0 == 0,
// n % 0 == 0, and INT_MIN / -1 wraps to INT_MIN (INT_MIN % -1 == 0).
// The folder, the runtime helpers, and the simulator must agree; the
// globals fold at compile time while main recomputes each value through
// the runtime division helpers.
// expect: 6
int g_dz = 5 / 0;
int g_rz = 5 % 0;
int g_min_div = (-2147483647 - 1) / -1;
int g_min_rem = (-2147483647 - 1) % -1;

int main(void) {
    int z = 0;
    int m = 0;
    int ok = 0;
    m = -2147483647 - 1;
    if (g_dz == 5 / z) {
        ok = ok + 1;
    }
    if (g_rz == 5 % z) {
        ok = ok + 1;
    }
    if (g_min_div == m / -1) {
        ok = ok + 1;
    }
    if (g_min_rem == m % -1) {
        ok = ok + 1;
    }
    if (g_min_div == m) {
        ok = ok + 1;
    }
    if (g_dz == 0) {
        ok = ok + 1;
    }
    return ok;
}
