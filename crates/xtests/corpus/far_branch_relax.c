/* Far-branch relaxation and forced literal pools: a loop body larger
 * than the D16 conditional-branch reach (+/-1KB) whose 3.6KB of
 * straight-line statements offer no unconditional transfer to hide an
 * intermediate literal pool behind. Two historical failures, both
 * first hit while growing the suite:
 *
 *  1. The loop's guard and back-edge branches failed to encode
 *     ("displacement out of range") on D16 and D16x — the `lexer`
 *     workload's scanner loop. The assembler now relaxes the
 *     out-of-reach branch over an inline island (`ldc r0, =target;
 *     j r0; nop` plus an inline literal word on D16, a wide `jdisp`
 *     on D16x) placed after the delay slot.
 *
 *  2. With branches relaxed, the body's `ldc r0, =__mulsi3` call
 *     sequences sat thousands of bytes from the function's only
 *     literal pool. The compiler now forces an intermediate pool by
 *     branching around it when a function runs too long without a
 *     natural (unconditional-transfer) pool point.
 */
// expect: 30977

int main(void) {
    int i;
    int s = 1;
    for (i = 0; i < 4; i++) {
        s = (s * 5 + i * 7 + 11) & 0xFFFFFF;
        s = (s * 5 + i * 7 + 48) & 0xFFFFFF;
        s = (s * 5 + i * 7 + 85) & 0xFFFFFF;
        s = (s * 5 + i * 7 + 122) & 0xFFFFFF;
        s = (s * 5 + i * 7 + 159) & 0xFFFFFF;
        s = (s * 5 + i * 7 + 196) & 0xFFFFFF;
        s = (s * 5 + i * 7 + 233) & 0xFFFFFF;
        s = (s * 5 + i * 7 + 14) & 0xFFFFFF;
        s = (s * 5 + i * 7 + 51) & 0xFFFFFF;
        s = (s * 5 + i * 7 + 88) & 0xFFFFFF;
        s = (s * 5 + i * 7 + 125) & 0xFFFFFF;
        s = (s * 5 + i * 7 + 162) & 0xFFFFFF;
        s = (s * 5 + i * 7 + 199) & 0xFFFFFF;
        s = (s * 5 + i * 7 + 236) & 0xFFFFFF;
        s = (s * 5 + i * 7 + 17) & 0xFFFFFF;
        s = (s * 5 + i * 7 + 54) & 0xFFFFFF;
        s = (s * 5 + i * 7 + 91) & 0xFFFFFF;
        s = (s * 5 + i * 7 + 128) & 0xFFFFFF;
        s = (s * 5 + i * 7 + 165) & 0xFFFFFF;
        s = (s * 5 + i * 7 + 202) & 0xFFFFFF;
        s = (s * 5 + i * 7 + 239) & 0xFFFFFF;
        s = (s * 5 + i * 7 + 20) & 0xFFFFFF;
        s = (s * 5 + i * 7 + 57) & 0xFFFFFF;
        s = (s * 5 + i * 7 + 94) & 0xFFFFFF;
        s = (s * 5 + i * 7 + 131) & 0xFFFFFF;
        s = (s * 5 + i * 7 + 168) & 0xFFFFFF;
        s = (s * 5 + i * 7 + 205) & 0xFFFFFF;
        s = (s * 5 + i * 7 + 242) & 0xFFFFFF;
        s = (s * 5 + i * 7 + 23) & 0xFFFFFF;
        s = (s * 5 + i * 7 + 60) & 0xFFFFFF;
        s = (s * 5 + i * 7 + 97) & 0xFFFFFF;
        s = (s * 5 + i * 7 + 134) & 0xFFFFFF;
        s = (s * 5 + i * 7 + 171) & 0xFFFFFF;
        s = (s * 5 + i * 7 + 208) & 0xFFFFFF;
        s = (s * 5 + i * 7 + 245) & 0xFFFFFF;
        s = (s * 5 + i * 7 + 26) & 0xFFFFFF;
        s = (s * 5 + i * 7 + 63) & 0xFFFFFF;
        s = (s * 5 + i * 7 + 100) & 0xFFFFFF;
        s = (s * 5 + i * 7 + 137) & 0xFFFFFF;
        s = (s * 5 + i * 7 + 174) & 0xFFFFFF;
        s = (s * 5 + i * 7 + 211) & 0xFFFFFF;
        s = (s * 5 + i * 7 + 248) & 0xFFFFFF;
        s = (s * 5 + i * 7 + 29) & 0xFFFFFF;
        s = (s * 5 + i * 7 + 66) & 0xFFFFFF;
        s = (s * 5 + i * 7 + 103) & 0xFFFFFF;
        s = (s * 5 + i * 7 + 140) & 0xFFFFFF;
        s = (s * 5 + i * 7 + 177) & 0xFFFFFF;
        s = (s * 5 + i * 7 + 214) & 0xFFFFFF;
        s = (s * 5 + i * 7 + 251) & 0xFFFFFF;
        s = (s * 5 + i * 7 + 32) & 0xFFFFFF;
        s = (s * 5 + i * 7 + 69) & 0xFFFFFF;
        s = (s * 5 + i * 7 + 106) & 0xFFFFFF;
        s = (s * 5 + i * 7 + 143) & 0xFFFFFF;
        s = (s * 5 + i * 7 + 180) & 0xFFFFFF;
        s = (s * 5 + i * 7 + 217) & 0xFFFFFF;
        s = (s * 5 + i * 7 + 254) & 0xFFFFFF;
        s = (s * 5 + i * 7 + 35) & 0xFFFFFF;
        s = (s * 5 + i * 7 + 72) & 0xFFFFFF;
        s = (s * 5 + i * 7 + 109) & 0xFFFFFF;
        s = (s * 5 + i * 7 + 146) & 0xFFFFFF;
        s = (s * 5 + i * 7 + 183) & 0xFFFFFF;
        s = (s * 5 + i * 7 + 220) & 0xFFFFFF;
        s = (s * 5 + i * 7 + 1) & 0xFFFFFF;
        s = (s * 5 + i * 7 + 38) & 0xFFFFFF;
        s = (s * 5 + i * 7 + 75) & 0xFFFFFF;
        s = (s * 5 + i * 7 + 112) & 0xFFFFFF;
        s = (s * 5 + i * 7 + 149) & 0xFFFFFF;
        s = (s * 5 + i * 7 + 186) & 0xFFFFFF;
        s = (s * 5 + i * 7 + 223) & 0xFFFFFF;
        s = (s * 5 + i * 7 + 4) & 0xFFFFFF;
        s = (s * 5 + i * 7 + 41) & 0xFFFFFF;
        s = (s * 5 + i * 7 + 78) & 0xFFFFFF;
        s = (s * 5 + i * 7 + 115) & 0xFFFFFF;
        s = (s * 5 + i * 7 + 152) & 0xFFFFFF;
        s = (s * 5 + i * 7 + 189) & 0xFFFFFF;
        s = (s * 5 + i * 7 + 226) & 0xFFFFFF;
        s = (s * 5 + i * 7 + 7) & 0xFFFFFF;
        s = (s * 5 + i * 7 + 44) & 0xFFFFFF;
        s = (s * 5 + i * 7 + 81) & 0xFFFFFF;
        s = (s * 5 + i * 7 + 118) & 0xFFFFFF;
        s = (s * 5 + i * 7 + 155) & 0xFFFFFF;
        s = (s * 5 + i * 7 + 192) & 0xFFFFFF;
        s = (s * 5 + i * 7 + 229) & 0xFFFFFF;
        s = (s * 5 + i * 7 + 10) & 0xFFFFFF;
        s = (s * 5 + i * 7 + 47) & 0xFFFFFF;
        s = (s * 5 + i * 7 + 84) & 0xFFFFFF;
        s = (s * 5 + i * 7 + 121) & 0xFFFFFF;
        s = (s * 5 + i * 7 + 158) & 0xFFFFFF;
        s = (s * 5 + i * 7 + 195) & 0xFFFFFF;
        s = (s * 5 + i * 7 + 232) & 0xFFFFFF;
        s = (s * 5 + i * 7 + 13) & 0xFFFFFF;
        s = (s * 5 + i * 7 + 50) & 0xFFFFFF;
        s = (s * 5 + i * 7 + 87) & 0xFFFFFF;
        s = (s * 5 + i * 7 + 124) & 0xFFFFFF;
        s = (s * 5 + i * 7 + 161) & 0xFFFFFF;
        s = (s * 5 + i * 7 + 198) & 0xFFFFFF;
        s = (s * 5 + i * 7 + 235) & 0xFFFFFF;
        s = (s * 5 + i * 7 + 16) & 0xFFFFFF;
        s = (s * 5 + i * 7 + 53) & 0xFFFFFF;
        s = (s * 5 + i * 7 + 90) & 0xFFFFFF;
        s = (s * 5 + i * 7 + 127) & 0xFFFFFF;
        s = (s * 5 + i * 7 + 164) & 0xFFFFFF;
        s = (s * 5 + i * 7 + 201) & 0xFFFFFF;
        s = (s * 5 + i * 7 + 238) & 0xFFFFFF;
        s = (s * 5 + i * 7 + 19) & 0xFFFFFF;
        s = (s * 5 + i * 7 + 56) & 0xFFFFFF;
        s = (s * 5 + i * 7 + 93) & 0xFFFFFF;
        s = (s * 5 + i * 7 + 130) & 0xFFFFFF;
        s = (s * 5 + i * 7 + 167) & 0xFFFFFF;
        s = (s * 5 + i * 7 + 204) & 0xFFFFFF;
        s = (s * 5 + i * 7 + 241) & 0xFFFFFF;
        s = (s * 5 + i * 7 + 22) & 0xFFFFFF;
        s = (s * 5 + i * 7 + 59) & 0xFFFFFF;
        s = (s * 5 + i * 7 + 96) & 0xFFFFFF;
        s = (s * 5 + i * 7 + 133) & 0xFFFFFF;
        s = (s * 5 + i * 7 + 170) & 0xFFFFFF;
        s = (s * 5 + i * 7 + 207) & 0xFFFFFF;
        s = (s * 5 + i * 7 + 244) & 0xFFFFFF;
        s = (s * 5 + i * 7 + 25) & 0xFFFFFF;
        s = (s * 5 + i * 7 + 62) & 0xFFFFFF;
    }
    return s & 0x7FFF;
}
