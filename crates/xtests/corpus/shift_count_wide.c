// Shift counts use only their low five bits on every evaluation path:
// the global-initializer folder, O2 constant folding, and the machine
// shifter must agree. Pre-fix, the compiler's folder used the host
// language's shift semantics for counts >= 32 or negative, so a folded
// shift disagreed with the same shift computed at run time.
// expect: 4
int g_over = 1 << 32;
int g_33 = 1 << 33;
int g_neg = 1 << -13;
int g_sar = (-8) >> 32;

int main(void) {
    int s = 0;
    int ok = 0;
    s = 32;
    if (g_over == (1 << s)) {
        ok = ok + 1;
    }
    s = 33;
    if (g_33 == (1 << s)) {
        ok = ok + 1;
    }
    s = -13;
    if (g_neg == (1 << s)) {
        ok = ok + 1;
    }
    s = 32;
    if (g_sar == ((-8) >> s)) {
        ok = ok + 1;
    }
    return ok;
}
