//! End-to-end: every Table 2 workload compiles, links, runs and produces
//! the same checksum on every target configuration — the joint correctness
//! gate for the compiler, assembler, linker and pipeline.

use d16_cc::TargetSpec;
use d16_core::{measure, standard_specs};
use d16_workloads::SUITE;

/// Runs one workload across all five grid configurations and checks
/// checksum agreement (and the pinned value when there is one).
fn check_workload(name: &str) {
    let w = d16_workloads::by_name(name).unwrap();
    let mut exits: Vec<(String, i32)> = Vec::new();
    for spec in standard_specs() {
        let (m, _) =
            measure(w, &spec, false).unwrap_or_else(|e| panic!("{name} on {}: {e}", spec.label()));
        exits.push((spec.label(), m.exit));
    }
    let first = exits[0].1;
    for (label, exit) in &exits {
        assert_eq!(*exit, first, "{name}: {label} disagrees: {exits:?}");
    }
    if let Some(expected) = w.expected {
        assert_eq!(first, expected, "{name}: pinned checksum");
    }
}

// One test per workload so failures are attributable and the suite runs in
// parallel.
macro_rules! workload_tests {
    ($($name:ident),*) => {
        $(
            #[test]
            fn $name() {
                check_workload(stringify!($name));
            }
        )*
    };
}

workload_tests!(
    ackermann, assem, bubblesort, queens, quicksort, towers, grep, linpack, matrix, dhrystone, pi,
    solver, latex, ipl, whetstone
);

#[test]
fn suite_is_complete() {
    assert_eq!(SUITE.len(), 15);
}

#[test]
fn d16_is_denser_on_every_workload() {
    for w in SUITE {
        let (d16, _) = measure(w, &TargetSpec::d16(), false).unwrap();
        let (dlxe, _) = measure(w, &TargetSpec::dlxe(), false).unwrap();
        assert!(
            d16.text_bytes < dlxe.text_bytes,
            "{}: D16 text {} !< DLXe text {}",
            w.name,
            d16.text_bytes,
            dlxe.text_bytes
        );
        assert!(
            dlxe.stats.insns <= d16.stats.insns,
            "{}: DLXe path {} > D16 path {}",
            w.name,
            dlxe.stats.insns,
            d16.stats.insns
        );
        // The key fetch-traffic claim: D16 fetches fewer instruction words.
        assert!(
            d16.stats.ifetch_words < dlxe.stats.ifetch_words,
            "{}: D16 words {} !< DLXe words {}",
            w.name,
            d16.stats.ifetch_words,
            dlxe.stats.ifetch_words
        );
    }
}
