//! Replays the miscompile corpus: every minimized reproducer in
//! `crates/xtests/corpus/` once exposed a real toolchain bug. Each file
//! carries a `// expect: N` header with its reference exit status; the
//! program must compile and return exactly that value on every standard
//! target at both opt levels (the same oracle grid `d16-fuzz` uses).
//!
//! To add an entry: take the minimized source printed by
//! `d16-fuzz --seed S --count N` on a divergence, prepend a comment
//! naming the bug and the `// expect:` header, and drop it here. See
//! `crates/xtests/tests/README.md`.

use d16_fuzz::oracle::{check_source, Outcome};
use std::path::PathBuf;

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("corpus")
}

fn expected_value(src: &str) -> Option<i32> {
    src.lines()
        .find_map(|l| l.trim().strip_prefix("// expect:"))
        .and_then(|v| v.trim().parse().ok())
}

#[test]
fn every_corpus_reproducer_passes_all_targets_and_opt_levels() {
    let mut paths: Vec<_> = std::fs::read_dir(corpus_dir())
        .expect("corpus directory exists")
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "c"))
        .collect();
    paths.sort();
    assert!(!paths.is_empty(), "corpus must not be empty");

    let mut failures = Vec::new();
    for path in &paths {
        let src = std::fs::read_to_string(path).unwrap();
        let Some(expect) = expected_value(&src) else {
            failures.push(format!("{}: missing `// expect: N` header", path.display()));
            continue;
        };
        match check_source(&src, expect) {
            Outcome::Ok => {}
            Outcome::TooLarge(why) => {
                failures.push(format!("{}: did not fit: {why}", path.display()));
            }
            Outcome::Diverged(d) => {
                failures.push(format!("{}: {d}", path.display()));
            }
        }
    }
    assert!(failures.is_empty(), "corpus regressions:\n{}", failures.join("\n"));
}
