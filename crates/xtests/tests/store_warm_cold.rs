//! The store's headline invariant, at the API level: a suite collected
//! through a warm store is *bit-identical* to one collected cold — every
//! measurement field, every trace, every cache-grid statistic, and the
//! full deterministic telemetry projection. Caching can therefore never
//! change a paper-facing number (DESIGN.md §6).

use d16_core::{base_specs, Suite};
use d16_isa::Isa;
use d16_store::Store;
use d16_testkit::TempDir;
use d16_workloads::Workload;
use std::sync::Arc;

fn workloads() -> Vec<&'static Workload> {
    ["towers", "assem"].iter().map(|n| d16_workloads::by_name(n).expect(n)).collect()
}

fn collect(store: Option<Arc<Store>>) -> Suite {
    Suite::collect_for_jobs_stored(&workloads(), &base_specs(), true, 2, store)
        .expect("suite collects")
}

/// Warms every grid, then renders the deterministic telemetry projection
/// (the dump CI byte-diffs) plus the cell and trace inventories.
fn snapshot(suite: &Suite) -> String {
    let keys: Vec<(String, Isa)> = suite
        .traces
        .keys()
        .map(|(w, isa)| (w.clone(), if isa == "D16" { Isa::D16 } else { Isa::Dlxe }))
        .collect();
    for (w, isa) in &keys {
        suite.cache_grid(w, *isa).expect("grid");
    }
    let metrics = d16_bench::report::metrics_json(
        &suite.telemetry(),
        false,
        suite.cells.len(),
        suite.traces.len(),
    );
    metrics.to_string()
}

fn assert_suites_identical(a: &Suite, b: &Suite, tag: &str) {
    assert_eq!(a.cells.len(), b.cells.len(), "{tag}: cell count");
    for (k, ma) in &a.cells {
        let mb = &b.cells[k];
        assert_eq!(ma.exit, mb.exit, "{tag}: {k:?} exit");
        assert_eq!(ma.target, mb.target, "{tag}: {k:?} target");
        assert_eq!(ma.size_bytes, mb.size_bytes, "{tag}: {k:?} size");
        assert_eq!(ma.text_bytes, mb.text_bytes, "{tag}: {k:?} text");
        assert_eq!(ma.stats, mb.stats, "{tag}: {k:?} stats");
        assert_eq!(ma.ireq_bus32, mb.ireq_bus32, "{tag}: {k:?} ireq32");
        assert_eq!(ma.ireq_bus64, mb.ireq_bus64, "{tag}: {k:?} ireq64");
        assert_eq!(ma.tele.values(), mb.tele.values(), "{tag}: {k:?} telemetry");
    }
    assert_eq!(a.traces, b.traces, "{tag}: traces");
    for (w, isa) in a.traces.keys() {
        let isa = if isa == "D16" { Isa::D16 } else { Isa::Dlxe };
        let ga = a.cache_grid(w, isa).unwrap();
        let gb = b.cache_grid(w, isa).unwrap();
        assert_eq!(ga.len(), gb.len(), "{tag}: grid size");
        for (sa, sb) in ga.iter().zip(gb.iter()) {
            assert_eq!(sa.iconfig(), sb.iconfig(), "{tag}: {w} grid config");
            assert_eq!(sa.icache(), sb.icache(), "{tag}: {w} icache stats");
            assert_eq!(sa.dcache(), sb.dcache(), "{tag}: {w} dcache stats");
        }
    }
}

#[test]
fn warm_suite_matches_cold_suite_bit_for_bit() {
    let dir = TempDir::new("warm-cold");
    let root = dir.path().join("store");

    let plain = collect(None);
    let cold_store = Arc::new(Store::open(&root).expect("open store"));
    let cold = collect(Some(Arc::clone(&cold_store)));
    assert!(cold_store.stats().write > 0, "cold run commits artifacts");
    assert_eq!(cold_store.stats().hit, 0, "nothing to hit on a cold store");

    // Fresh handle so the warm run's accounting starts at zero.
    let warm_store = Arc::new(Store::open(&root).expect("reopen store"));
    let warm = collect(Some(Arc::clone(&warm_store)));

    assert_suites_identical(&plain, &cold, "plain vs cold");
    assert_suites_identical(&cold, &warm, "cold vs warm");
    assert_eq!(snapshot(&plain), snapshot(&cold), "metrics: plain vs cold");
    assert_eq!(snapshot(&cold), snapshot(&warm), "metrics: cold vs warm");

    let ws = warm_store.stats();
    assert_eq!(ws.miss, 0, "warm collection misses nothing");
    assert_eq!(ws.write, 0, "warm collection recomputes nothing");
    assert!(ws.hit >= 4, "cells and grids served from the store: {ws:?}");
}

#[test]
fn corrupted_store_recomputes_and_still_matches() {
    let dir = TempDir::new("store-corrupt");
    let root = dir.path().join("store");
    let cold = collect(Some(Arc::new(Store::open(&root).expect("open store"))));
    let cold_snap = snapshot(&cold);

    // Damage every committed cell entry; the next collection must evict
    // them all, recompute, and land on identical numbers.
    let mut stack = vec![root.join("cell")];
    let mut damaged = 0;
    while let Some(d) = stack.pop() {
        for e in std::fs::read_dir(&d).expect("read store dir") {
            let p = e.expect("dir entry").path();
            if p.is_dir() {
                stack.push(p);
            } else {
                let mut raw = std::fs::read(&p).unwrap();
                let mid = raw.len() / 2;
                raw[mid] ^= 0xFF;
                std::fs::write(&p, raw).unwrap();
                damaged += 1;
            }
        }
    }
    assert!(damaged >= 4, "cold run committed the cells: {damaged}");

    let store = Arc::new(Store::open(&root).expect("reopen store"));
    let redo = collect(Some(Arc::clone(&store)));
    assert_suites_identical(&cold, &redo, "cold vs corrupt-recompute");
    assert_eq!(cold_snap, snapshot(&redo), "metrics survive store corruption");
    let st = store.stats();
    assert_eq!(st.corrupt_evicted, damaged, "every damaged entry evicted: {st:?}");
    assert!(st.write >= damaged, "recomputed cells re-committed: {st:?}");
}
