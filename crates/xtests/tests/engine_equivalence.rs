//! Engine-equivalence gate: the block-caching engine must be
//! *observationally identical* to the per-instruction interpreter on the
//! real suite — same exit checksum, same pipeline statistics, same
//! telemetry counter values, and the same access stream byte for byte
//! (the recorded trace encodes every fetch/read/write in order, so a
//! byte-equal encoding pins the engines to the same memory behavior at
//! the same instruction boundaries).
//!
//! The fast default covers a representative subset on every target
//! configuration; the `#[ignore]`d test sweeps every (workload, target)
//! cell of the paper's grid and runs in CI release builds.

use d16_cc::TargetSpec;
use d16_core::{
    measure_stored_spec, measure_with, standard_specs, Engine, PipelineSpec, Predictor,
};
use d16_workloads::Workload;

/// Measures one cell under both engines and asserts every observable
/// output is identical.
fn assert_cell_identical(w: &Workload, spec: &TargetSpec) {
    let label = format!("({}, {})", w.name, spec.label());
    let (a, ta) = measure_with(w, spec, true, Engine::Interp)
        .unwrap_or_else(|e| panic!("{label} interp: {e}"));
    let (b, tb) = measure_with(w, spec, true, Engine::Blocks)
        .unwrap_or_else(|e| panic!("{label} blocks: {e}"));
    assert_eq!(a.exit, b.exit, "{label}: exit checksum");
    assert_eq!(a.stats, b.stats, "{label}: pipeline statistics");
    assert_eq!(a.size_bytes, b.size_bytes, "{label}: static size");
    assert_eq!(a.ireq_bus32, b.ireq_bus32, "{label}: 32-bit bus requests");
    assert_eq!(a.ireq_bus64, b.ireq_bus64, "{label}: 64-bit bus requests");
    assert_eq!(a.tele.values(), b.tele.values(), "{label}: telemetry counters");
    let (ta, tb) = (ta.expect("interp trace"), tb.expect("blocks trace"));
    assert_eq!(ta.len(), tb.len(), "{label}: trace record count");
    assert_eq!(ta.encoded_bytes(), tb.encoded_bytes(), "{label}: trace bytes");
}

#[test]
fn engines_agree_on_subset_across_all_targets() {
    // One recursive integer workload, one string/memory-heavy cache
    // benchmark, one floating-point workload: together they exercise the
    // hot micro-op set, the cold-op fallback (FPU), and both ISAs'
    // delay-slot shapes on all five target configurations.
    for name in ["queens", "assem", "whetstone"] {
        let w = d16_workloads::by_name(name).expect("suite workload");
        for spec in standard_specs() {
            assert_cell_identical(w, &spec);
        }
    }
}

/// The same equivalence at the most aggressive non-default pipeline
/// configuration — depth 8 (longest load-use distance, largest misfetch
/// penalty) with the two-bit predictor (history-dependent per-branch
/// state). The BlockEngine lowers non-default specs through its dynamic
/// flavor (fusion off, runtime stall scoreboard), so this pins a code
/// path the default-spec tests above never execute.
#[test]
fn engines_agree_at_depth_eight_with_twobit_predictor() {
    let deep = PipelineSpec { depth: 8, predictor: Predictor::TwoBit, ..PipelineSpec::default() };
    for name in ["queens", "assem", "whetstone"] {
        let w = d16_workloads::by_name(name).expect("suite workload");
        for spec in standard_specs() {
            let label = format!("({}, {}, depth 8 twobit)", w.name, spec.label());
            let (a, ta) = measure_stored_spec(w, &spec, true, None, Engine::Interp, deep)
                .unwrap_or_else(|e| panic!("{label} interp: {e}"));
            let (b, tb) = measure_stored_spec(w, &spec, true, None, Engine::Blocks, deep)
                .unwrap_or_else(|e| panic!("{label} blocks: {e}"));
            assert_eq!(a.exit, b.exit, "{label}: exit checksum");
            assert_eq!(a.stats, b.stats, "{label}: pipeline statistics");
            assert!(a.stats.mispredicts > 0, "{label}: twobit at depth 8 must mispredict");
            assert!(a.stats.misfetch_cycles > 0, "{label}: depth 8 must charge misfetch bubbles");
            let (ta, tb) = (ta.expect("interp trace"), tb.expect("blocks trace"));
            assert_eq!(ta.encoded_bytes(), tb.encoded_bytes(), "{label}: trace bytes");
        }
    }
}

#[test]
#[ignore = "full 15x5 grid under both engines; run with --release -- --ignored (CI does)"]
fn engines_agree_on_every_cell() {
    for w in d16_workloads::SUITE.iter() {
        for spec in standard_specs() {
            assert_cell_identical(w, &spec);
        }
    }
}
