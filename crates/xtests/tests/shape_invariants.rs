//! Suite-level shape invariants: the headline numbers EXPERIMENTS.md
//! reports must stay inside the bands the paper's qualitative claims
//! define. These are the regression tripwires for "the reproduction still
//! reproduces" — if a compiler or simulator change moves the averages out
//! of these windows, the paper-vs-measured story needs re-checking.

use d16_core::{experiments as ex, standard_specs, Suite};
use d16_workloads::SUITE;

#[test]
fn headline_averages_stay_in_band() {
    let all: Vec<_> = SUITE.iter().collect();
    let suite = Suite::collect_for(&all, &standard_specs(), false).unwrap();

    // Figure 4: "DLXe programs average approximately 1.5 times the size".
    // Measured 1.49 on the full suite (EXPERIMENTS.md).
    let density = ex::average(&ex::fig4_relative_density(&suite));
    assert!(
        (1.4..=1.7).contains(&density),
        "D16 density ratio drifted out of band: {density:.3} (expect 1.4-1.7)"
    );

    // Figure 5: DLXe executes fewer instructions, but far fewer than the
    // 2x raw width would suggest. The paper measured a 13-15% advantage;
    // our simpler two-address coalescing and ldc literal pools make it
    // larger (25% on the full suite, see EXPERIMENTS.md on Figure 5), so
    // the band is 5-30%.
    let path = ex::average(&ex::fig5_path_length(&suite));
    let advantage_pct = (1.0 - path) * 100.0;
    assert!(
        (5.0..=30.0).contains(&advantage_pct),
        "DLXe path-length advantage drifted out of band: {advantage_pct:.1}% (expect 5-30%)"
    );

    // Every workload individually: denser in 16-bit form, never a shorter
    // D16 path (the two per-program directions everything else rests on).
    for r in ex::fig4_relative_density(&suite) {
        assert!(r.value > 1.0, "{}: DLXe must be bigger ({:.3})", r.workload, r.value);
    }
    for r in ex::fig5_path_length(&suite) {
        assert!(r.value <= 1.0, "{}: DLXe path must not be longer ({:.3})", r.workload, r.value);
    }
}
