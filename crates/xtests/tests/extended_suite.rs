//! Extended-suite agreement: every workload — the fifteen Table 2
//! programs and the eleven extension programs — goes through the full
//! fuzz-oracle grid: six targets × both opt levels, reference agreement
//! against the pinned checksum, per-word encoding round-trip, and
//! engine agreement (interpreter vs. block engine) on the stop result,
//! pipeline statistics, and access-stream digest. This is the widest
//! correctness gate in the repo; `suite_end_to_end` checks the same
//! Table 2 programs at the default opt level only.

use d16_fuzz::oracle::{check_source, Outcome};
use d16_workloads::{by_name, EXTRAS, SUITE};

fn check_grid(name: &str) {
    let w = by_name(name).unwrap_or_else(|| panic!("{name} not registered"));
    let expected = w.expected.unwrap_or_else(|| panic!("{name} has no pinned checksum"));
    match check_source(w.source, expected) {
        Outcome::Ok => {}
        Outcome::TooLarge(why) => panic!("{name} exceeded a static encoding limit: {why}"),
        Outcome::Diverged(d) => panic!("{name}: {d}"),
    }
}

// One test per workload so failures are attributable and the grid runs in
// parallel across the suite.
macro_rules! grid_tests {
    ($($name:ident),* $(,)?) => {
        $(
            #[test]
            fn $name() {
                check_grid(stringify!($name));
            }
        )*
    };
}

grid_tests!(
    // Table 2 (the paper's suite).
    ackermann, assem, bubblesort, queens, quicksort, towers, grep, linpack, matrix, dhrystone, pi,
    solver, latex, ipl, whetstone, // Extensions.
    fsm, addrgen, listchase, treewalk, bytecode, lexer, intkernel, fpkernel, hashchurn, compress,
    eqntott,
);

/// The registry invariants the extended experiment leans on: the
/// extended set is SUITE ++ EXTRAS with unique names, each addressable
/// through `by_name`, every member self-checking with a pinned
/// checksum, and the whole set at least the 25 programs the
/// distribution tables promise.
#[test]
fn extended_set_is_consistent() {
    let all: Vec<_> = SUITE.iter().chain(EXTRAS).collect();
    assert!(all.len() >= 25, "extended suite has only {} workloads", all.len());
    assert_eq!(SUITE.len(), 15, "Table 2 grid must keep its shape");
    let mut names: Vec<_> = all.iter().map(|w| w.name).collect();
    names.sort_unstable();
    let before = names.len();
    names.dedup();
    assert_eq!(before, names.len(), "duplicate workload names");
    for w in &all {
        let found = by_name(w.name).expect("by_name resolves every registered workload");
        assert_eq!(found.expected, w.expected, "{}: by_name returned a different entry", w.name);
        assert_eq!(found.source, w.source, "{}: by_name returned a different entry", w.name);
        assert!(w.expected.is_some(), "{}: extended-suite members pin their checksum", w.name);
    }
    // The grid_tests! list above must cover the whole registry; this
    // keeps the macro honest when a workload is added.
    assert_eq!(all.len(), 26, "update grid_tests! when growing the registry");
}
