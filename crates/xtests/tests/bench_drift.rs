//! Bench drift gate: a fresh in-process regeneration must agree with the
//! checked-in `BENCH_repro.json` on everything deterministic — grid
//! shape, trace records, replay counts, and the full telemetry counter
//! dump. Timings are machine-local and only reported, never asserted.
//!
//! `#[ignore]` because it collects the full 15x5 grid (~15 s in release,
//! far slower in debug). CI runs it explicitly:
//!
//! ```text
//! cargo test --release -p d16-xtests --test bench_drift -- --ignored
//! ```

use d16_bench::json::Json;
use d16_core::{experiments as ex, Suite};
use d16_isa::Isa;

fn checked_in_report() -> Json {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_repro.json");
    let text = std::fs::read_to_string(path).expect("read checked-in BENCH_repro.json");
    Json::parse(&text).expect("parse BENCH_repro.json")
}

fn u(j: &Json, key: &str) -> u64 {
    j.get(key).and_then(Json::as_u64).unwrap_or_else(|| panic!("numeric field `{key}`"))
}

#[test]
#[ignore = "full-grid regeneration; run with --release -- --ignored (CI does)"]
fn fresh_run_matches_checked_in_bench_report() {
    let pinned = checked_in_report();
    assert_eq!(pinned.get("schema").and_then(Json::as_str), Some("bench_repro/2"));
    assert!(
        matches!(pinned.get("smoke"), Some(Json::Bool(false))),
        "the pinned report must come from a full --all run"
    );

    let t0 = std::time::Instant::now();
    let suite = Suite::collect_jobs(d16_core::default_jobs()).expect("collect full grid");
    let collect_ns = t0.elapsed().as_nanos() as u64;

    // --- counts: exact -------------------------------------------------
    assert_eq!(u(&pinned, "cells"), suite.cells.len() as u64, "cell count drifted");
    assert_eq!(u(&pinned, "traces"), suite.traces.len() as u64, "trace count drifted");

    let grid = pinned.get("cache_grid").expect("cache_grid object");
    assert_eq!(u(grid, "configs"), ex::cache_grid_configs().len() as u64, "config count drifted");
    let sweeps = grid.get("sweeps").and_then(Json::as_arr).expect("sweeps array");
    assert_eq!(sweeps.len(), suite.traces.len(), "sweep count drifted");
    for s in sweeps {
        let w = s.get("workload").and_then(Json::as_str).expect("workload");
        let isa =
            if s.get("isa").and_then(Json::as_str) == Some("D16") { Isa::D16 } else { Isa::Dlxe };
        suite.cache_grid(w, isa).expect("warm grid");
        let trace = suite.try_trace(w, isa).expect("trace recorded");
        assert_eq!(u(s, "records"), trace.len() as u64, "({w}, {}) records drifted", isa.name());
        assert_eq!(
            u(s, "memory_bytes"),
            trace.memory_bytes() as u64,
            "({w}, {}) trace memory drifted",
            isa.name()
        );
        // A cold run replays each trace exactly once; a warm --store run
        // serves the grid without replaying at all. Both are single-pass.
        assert!(u(s, "replays") <= 1, "single-pass replay regressed for ({w}, {})", isa.name());
    }

    // --- telemetry counters: exact (they count events, not time) -------
    if d16_telemetry::ENABLED {
        let reg = suite.telemetry();
        let pinned_counters = pinned
            .get("counters")
            .and_then(Json::as_obj)
            .expect("counters object in the checked-in report");
        let fresh: Vec<(String, u64)> = reg.counters().map(|(k, v)| (k.to_string(), v)).collect();
        assert_eq!(
            pinned_counters.len(),
            fresh.len(),
            "counter set drifted: {} pinned vs {} fresh",
            pinned_counters.len(),
            fresh.len()
        );
        for ((pk, pv), (fk, fv)) in pinned_counters.iter().zip(&fresh) {
            assert_eq!(pk, fk, "counter name drifted");
            assert_eq!(pv.as_u64(), Some(*fv), "counter `{pk}` drifted");
        }
    }

    // --- timings: advisory only ----------------------------------------
    let pinned_collect = u(&pinned, "collect_ns");
    let ratio = collect_ns as f64 / pinned_collect as f64;
    eprintln!(
        "collect: fresh {:.2}s vs pinned {:.2}s ({ratio:.2}x) — advisory, machines differ",
        collect_ns as f64 / 1e9,
        pinned_collect as f64 / 1e9,
    );
}
