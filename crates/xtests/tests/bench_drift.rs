//! Bench drift gate: a fresh in-process regeneration must agree with the
//! checked-in `BENCH_repro.json` on everything deterministic — grid
//! shape, trace records, replay counts, and the full telemetry counter
//! dump. Timings are machine-local and only reported, never asserted.
//!
//! `#[ignore]` because it collects the full 15x5 grid (~15 s in release,
//! far slower in debug). CI runs it explicitly:
//!
//! ```text
//! cargo test --release -p d16-xtests --test bench_drift -- --ignored
//! ```

use d16_bench::json::Json;
use d16_core::{experiments as ex, Suite};
use d16_isa::Isa;

fn checked_in_report() -> Json {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_repro.json");
    let text = std::fs::read_to_string(path).expect("read checked-in BENCH_repro.json");
    Json::parse(&text).expect("parse BENCH_repro.json")
}

fn u(j: &Json, key: &str) -> u64 {
    j.get(key).and_then(Json::as_u64).unwrap_or_else(|| panic!("numeric field `{key}`"))
}

#[test]
#[ignore = "full-grid regeneration; run with --release -- --ignored (CI does)"]
fn fresh_run_matches_checked_in_bench_report() {
    let pinned = checked_in_report();
    assert_eq!(pinned.get("schema").and_then(Json::as_str), Some("bench_repro/4"));
    assert!(
        matches!(pinned.get("smoke"), Some(Json::Bool(false))),
        "the pinned report must come from a full --all run"
    );
    assert_eq!(
        pinned.get("engine").and_then(Json::as_str),
        Some("blocks"),
        "the pinned report must come from a default-engine (blocks) run"
    );

    let t0 = std::time::Instant::now();
    let suite = Suite::collect_jobs(d16_core::default_jobs()).expect("collect full grid");
    let collect_ns = t0.elapsed().as_nanos() as u64;

    // --- counts: exact -------------------------------------------------
    assert_eq!(u(&pinned, "cells"), suite.cells.len() as u64, "cell count drifted");
    assert_eq!(u(&pinned, "traces"), suite.traces.len() as u64, "trace count drifted");

    let grid = pinned.get("cache_grid").expect("cache_grid object");
    assert_eq!(u(grid, "configs"), ex::cache_grid_configs().len() as u64, "config count drifted");
    let sweeps = grid.get("sweeps").and_then(Json::as_arr).expect("sweeps array");
    assert_eq!(sweeps.len(), suite.traces.len(), "sweep count drifted");
    for s in sweeps {
        let w = s.get("workload").and_then(Json::as_str).expect("workload");
        let isa = match s.get("isa").and_then(Json::as_str) {
            Some("D16") => Isa::D16,
            Some("D16x") => Isa::D16x,
            _ => Isa::Dlxe,
        };
        suite.cache_grid(w, isa).expect("warm grid");
        let trace = suite.try_trace(w, isa).expect("trace recorded");
        assert_eq!(u(s, "records"), trace.len() as u64, "({w}, {}) records drifted", isa.name());
        assert_eq!(
            u(s, "memory_bytes"),
            trace.memory_bytes() as u64,
            "({w}, {}) trace memory drifted",
            isa.name()
        );
        // A cold run replays each trace exactly once; a warm --store run
        // serves the grid without replaying at all. Both are single-pass.
        assert!(u(s, "replays") <= 1, "single-pass replay regressed for ({w}, {})", isa.name());
    }

    // --- telemetry counters: exact (they count events, not time) -------
    if d16_telemetry::ENABLED {
        let reg = suite.telemetry();
        let pinned_counters = pinned
            .get("counters")
            .and_then(Json::as_obj)
            .expect("counters object in the checked-in report");
        let fresh: Vec<(String, u64)> = reg.counters().map(|(k, v)| (k.to_string(), v)).collect();
        assert_eq!(
            pinned_counters.len(),
            fresh.len(),
            "counter set drifted: {} pinned vs {} fresh",
            pinned_counters.len(),
            fresh.len()
        );
        for ((pk, pv), (fk, fv)) in pinned_counters.iter().zip(&fresh) {
            assert_eq!(pk, fk, "counter name drifted");
            assert_eq!(pv.as_u64(), Some(*fv), "counter `{pk}` drifted");
        }
    }

    // --- timings: advisory only ----------------------------------------
    let pinned_collect = u(&pinned, "collect_ns");
    let ratio = collect_ns as f64 / pinned_collect as f64;
    eprintln!(
        "collect: fresh {:.2}s vs pinned {:.2}s ({ratio:.2}x) — advisory, machines differ",
        collect_ns as f64 / 1e9,
        pinned_collect as f64 / 1e9,
    );
    // `engines_cold_ns` is merged into the pinned report at pin time:
    // the cold `collect_ns` of an `--engine interp` and an
    // `--engine blocks` run on the same machine (EXPERIMENTS.md), so the
    // engines' relative collection cost stays on record even though the
    // pinned `collect_ns` itself comes from a warm store-served run.
    if let Some(engines) = pinned.get("engines_cold_ns") {
        let (interp_ns, blocks_ns) = (u(engines, "interp"), u(engines, "blocks"));
        eprintln!(
            "pinned cold collect: interp {:.2}s vs blocks {:.2}s ({:.1}x) — same machine at pin time",
            interp_ns as f64 / 1e9,
            blocks_ns as f64 / 1e9,
            interp_ns as f64 / blocks_ns as f64,
        );
    }
}

/// The block engine's reason to exist: executing cached micro-ops must be
/// much faster than decode-and-dispatch per instruction. This times the
/// two engines head-to-head on the same images, same machine, same
/// process, best-of-3 per cell (runner noise is additive contention, so
/// the minimum is the stable estimator).
///
/// The floor is a regression tripwire, not a benchmark claim: raw
/// full-fuel runs measure 4.7-5.0x on the dev box (the issue's nominal
/// "5x on the smoke collect" is not directly measurable — a smoke
/// collect finishes in ~0 ms, all of it grid setup). 4x is the highest
/// value that stays out of the shared-runner noise band while still
/// catching the engine's advantage being lost.
#[test]
#[ignore = "timing-sensitive; run with --release -- --ignored (CI does)"]
fn block_engine_speedup_floor() {
    use d16_core::Engine;
    use d16_sim::{Machine, NullSink};

    let mut interp_ns: u128 = 0;
    let mut blocks_ns: u128 = 0;
    for name in ["queens", "towers", "latex"] {
        let w = d16_workloads::by_name(name).expect("suite workload");
        for spec in d16_core::base_specs() {
            let image = d16_core::build(w, &spec).expect("build workload");
            for (engine, acc) in
                [(Engine::Interp, &mut interp_ns), (Engine::Blocks, &mut blocks_ns)]
            {
                let best = (0..3)
                    .map(|_| {
                        let mut m = Machine::load(&image);
                        let t0 = std::time::Instant::now();
                        m.run_with(engine, d16_core::measure::FUEL, &mut NullSink)
                            .expect("clean run");
                        t0.elapsed().as_nanos()
                    })
                    .min()
                    .expect("three timed runs");
                *acc += best;
            }
        }
    }
    let ratio = interp_ns as f64 / blocks_ns as f64;
    eprintln!(
        "engine speedup: {ratio:.1}x (interp {:.2}s vs blocks {:.2}s, best-of-3)",
        interp_ns as f64 / 1e9,
        blocks_ns as f64 / 1e9,
    );
    assert!(ratio >= 4.0, "block engine fell under the 4x speedup floor: {ratio:.2}x");
}
