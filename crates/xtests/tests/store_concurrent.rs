//! Concurrent-store stress: many threads *and* many subprocesses hammer
//! one store root with overlapping reads, writes, and replacements. The
//! invariant under test is the locking protocol's: an entry observed by
//! any reader is always internally consistent (committed via atomic
//! rename, mutated only under the entry lock), so a mixed fleet of
//! writers produces **zero** corrupt entries — torn reads and double
//! commits cannot happen, only clean hits, clean misses, and clean
//! replacements.
//!
//! The subprocess half re-invokes this test binary with `--exact` on the
//! [`store_hammer_worker`] entry point, gated on an environment variable
//! so a normal `cargo test` run skips it in microseconds.

use d16_store::{CacheKey, Reader, StableHasher, Store, Writer};
use d16_testkit::{Rng, TempDir};
use std::path::Path;
use std::process::{Command, Stdio};

const ENV_ROOT: &str = "D16_STORE_CONCURRENT_ROOT";
const ENV_SEED: &str = "D16_STORE_CONCURRENT_SEED";

const KIND: &str = "stress";
const KEYS: u64 = 16;
const ITERS: usize = 300;

fn key_for(i: u64) -> CacheKey {
    let mut h = StableHasher::new("xtest.store-concurrent");
    h.field_u64(i);
    h.finish()
}

/// The deterministic blob for `(key, version)`: recomputable by any
/// reader, so a decoder can verify internal consistency without
/// external state.
fn blob_for(key: u64, version: u64) -> Vec<u8> {
    let mut rng = Rng::new(key.wrapping_mul(0x9E37).wrapping_add(version));
    (0..128 + (version % 64) as usize).map(|_| rng.next_u32() as u8).collect()
}

/// The committed payload for `(key, version)` — every writer writing
/// this pair writes these exact bytes.
fn payload(key: u64, version: u64) -> Vec<u8> {
    let mut w = Writer::new();
    w.u64(key).u64(version).bytes(&blob_for(key, version));
    w.into_bytes()
}

/// Decodes an entry and verifies it is internally consistent: the blob
/// must be exactly the one [`blob_for`] derives from the recorded
/// `(key, version)`. A torn or mixed write cannot pass this check.
fn decode(bytes: &[u8]) -> Option<(u64, u64)> {
    let mut r = Reader::new(bytes);
    let key = r.u64()?;
    let version = r.u64()?;
    let blob = r.bytes()?;
    let consistent = blob == blob_for(key, version).as_slice();
    r.finish()?;
    consistent.then_some((key, version))
}

/// One worker's share of the hammering: a seeded mix of lookups, first
/// writes, and replacements over the shared key space.
fn hammer(store: &Store, seed: u64) {
    let mut rng = Rng::new(seed);
    for _ in 0..ITERS {
        let key = u64::from(rng.below(KEYS as u32));
        match rng.below(3) {
            0 => {
                let version = u64::from(rng.below(4));
                store.put(KIND, key_for(key), &payload(key, version));
            }
            _ => {
                if let Some((k, _v)) = store.get_with(KIND, key_for(key), decode) {
                    assert_eq!(k, key, "a hit must decode to its own key");
                }
            }
        }
    }
}

/// Subprocess entry point: a no-op unless the parent armed the
/// environment, in which case it opens the shared root and hammers.
#[test]
fn store_hammer_worker() {
    let Ok(root) = std::env::var(ENV_ROOT) else { return };
    let seed: u64 = std::env::var(ENV_SEED).ok().and_then(|s| s.parse().ok()).unwrap_or(1);
    let store = Store::open(Path::new(&root)).expect("worker opens the shared root");
    hammer(&store, seed);
    assert_eq!(store.stats().corrupt_evicted, 0, "subprocess observed a torn entry");
}

#[test]
fn threads_and_subprocesses_share_one_store_without_corruption() {
    const THREADS: u64 = 4;
    const PROCS: u64 = 4;
    let dir = TempDir::new("store-concurrent");
    let root = dir.path().join("store");
    let store = Store::open(&root).expect("open store");

    let exe = std::env::current_exe().expect("current exe");
    let children: Vec<_> = (0..PROCS)
        .map(|i| {
            Command::new(&exe)
                .args(["--exact", "store_hammer_worker"])
                .env(ENV_ROOT, &root)
                .env(ENV_SEED, (1000 + i).to_string())
                .stdout(Stdio::null())
                .stderr(Stdio::piped())
                .spawn()
                .expect("spawn worker process")
        })
        .collect();

    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let store = &store;
            scope.spawn(move || hammer(store, 2000 + t));
        }
    });

    for child in children {
        let out = child.wait_with_output().expect("worker exit");
        assert!(
            out.status.success(),
            "worker process failed:\n{}",
            String::from_utf8_lossy(&out.stderr)
        );
    }

    // No reader — in this process or any subprocess — saw a torn entry.
    let stats = store.stats();
    assert_eq!(stats.corrupt_evicted, 0, "torn entry observed: {stats:?}");
    assert!(stats.hit > 0, "the stress mix should produce hits: {stats:?}");

    // Every surviving entry is internally consistent and every lock was
    // released: a full sweep finds nothing to evict and nothing stale.
    let report = store.verify().expect("verify");
    assert_eq!(report.evicted, 0, "corrupt entries on disk: {report:?}");
    assert_eq!(report.ok, report.scanned, "unreadable entries: {report:?}");
    assert_eq!(report.locks_removed, 0, "leaked entry locks: {report:?}");
    assert!(report.scanned > 0, "the stress mix should commit entries");
    for key in 0..KEYS {
        if let Some((k, _)) = store.get_with(KIND, key_for(key), decode) {
            assert_eq!(k, key);
        }
    }
}
