//! Workspace gates for the telemetry layer (skipped, trivially green,
//! when the `telemetry` feature is off):
//!
//! * the merged counter dump is identical for every worker count, so the
//!   `repro --metrics-json` document CI diffs is trustworthy;
//! * the pipeline's per-stage / per-interlock-class counters reconcile
//!   exactly with the `ExecStats` aggregates the paper's tables use;
//! * the per-cache counters reconcile with `CacheStats`;
//! * phase-span counts match the grid shape.

use d16_bench::report;
use d16_core::{base_specs, Suite};
use d16_isa::Isa;
use d16_workloads::Workload;

fn small_grid(jobs: usize) -> Suite {
    let ws: Vec<&Workload> =
        ["towers", "assem"].iter().map(|n| d16_workloads::by_name(n).expect("workload")).collect();
    let suite = Suite::collect_for_jobs(&ws, &base_specs(), true, jobs).expect("collect");
    // Warm every cache grid so the registry includes the sweep counters.
    let keys: Vec<(String, Isa)> = suite
        .traces
        .keys()
        .map(|(w, isa)| (w.clone(), if isa == "D16" { Isa::D16 } else { Isa::Dlxe }))
        .collect();
    for (w, isa) in keys {
        suite.cache_grid(&w, isa).expect("grid");
    }
    suite
}

#[test]
fn counter_dump_is_identical_across_job_counts() {
    if !d16_telemetry::ENABLED {
        return;
    }
    let s1 = small_grid(1);
    let s4 = small_grid(4);
    let (r1, r4) = (s1.telemetry(), s4.telemetry());
    let c1: Vec<(String, u64)> = r1.counters().map(|(k, v)| (k.to_string(), v)).collect();
    let c4: Vec<(String, u64)> = r4.counters().map(|(k, v)| (k.to_string(), v)).collect();
    assert_eq!(c1, c4, "merged counters must not depend on --jobs");
    assert_eq!(
        report::metrics_json(&r1, true, s1.cells.len(), s1.traces.len()).to_string(),
        report::metrics_json(&r4, true, s4.cells.len(), s4.traces.len()).to_string(),
        "the full metrics document must be byte-identical"
    );
}

#[test]
fn pipeline_counters_reconcile_with_measurement_aggregates() {
    if !d16_telemetry::ENABLED {
        return;
    }
    let suite = small_grid(2);
    assert!(!suite.cells.is_empty());
    for ((w, target), m) in &suite.cells {
        m.stats.reconciles_with(&m.tele).unwrap_or_else(|e| panic!("cell ({w}, {target}): {e}"));
    }
}

#[test]
fn cache_grid_counters_reconcile_and_cover_every_config() {
    if !d16_telemetry::ENABLED {
        return;
    }
    let suite = small_grid(2);
    let reg = suite.telemetry();
    let grid = suite.cache_grid("assem", Isa::D16).expect("grid");
    let n_configs = d16_core::experiments::cache_grid_configs().len();
    assert_eq!(grid.len(), n_configs);
    for sys in grid.iter() {
        sys.reconciles().unwrap();
        // Every member's counters appear in the dump under its label.
        let key = format!("grid.assem.D16.cfg.{}.icache.read.misses", sys.label());
        assert_eq!(reg.counter(&key), Some(sys.icache().read_misses), "{key}");
    }
    // The sweep fed each trace record exactly once regardless of width.
    let trace = suite.try_trace("assem", Isa::D16).expect("trace recorded");
    let swept: u64 = ["fetches", "reads", "writes"]
        .iter()
        .map(|k| reg.counter(&format!("grid.assem.D16.sweep.{k}")).unwrap_or(0))
        .sum();
    assert_eq!(swept, trace.len() as u64);
}

#[test]
fn span_counts_match_the_grid_shape() {
    if !d16_telemetry::ENABLED {
        return;
    }
    let suite = small_grid(3);
    let reg = suite.telemetry();
    let cells = reg.span("suite.collect.cell").expect("collect span");
    assert_eq!(cells.count, suite.cells.len() as u64);
    assert_eq!(cells.hist.samples(), cells.count, "one histogram sample per cell");
    assert!(cells.min_ns <= cells.max_ns);
    assert!(cells.total_ns >= cells.max_ns);
    let sweeps = reg.span("suite.cache_grid.sweep").expect("sweep span");
    assert_eq!(sweeps.count, suite.traces.len() as u64, "one sweep per trace, memoized");
}

#[test]
fn sim_counters_also_agree_in_aggregate() {
    if !d16_telemetry::ENABLED {
        return;
    }
    let suite = small_grid(2);
    let reg = suite.telemetry();
    let total_insns: u64 = suite.cells.values().map(|m| m.stats.insns).sum();
    assert_eq!(reg.counter("sim.stage.if.insns"), Some(total_insns));
    let total_interlocks: u64 = suite.cells.values().map(|m| m.stats.interlocks).sum();
    let dump_interlocks: u64 = reg
        .counters()
        .filter(|(k, _)| k.starts_with("sim.interlock.") && k.ends_with(".cycles"))
        .map(|(_, v)| v)
        .sum();
    assert_eq!(dump_interlocks, total_interlocks);
}
