//! Property-based differential testing: random Mini-C programs are
//! evaluated by a reference evaluator (host arithmetic with the machine's
//! wrapping semantics) and by the full stack (compile → assemble → link →
//! simulate) on every target. All answers must agree.

use d16_cc::TargetSpec;
use d16_sim::{Machine, NullSink, StopReason};
use proptest::prelude::*;

/// A tiny expression AST we can both print as Mini-C and evaluate.
#[derive(Clone, Debug)]
enum E {
    Lit(i32),
    Var(usize),
    Add(Box<E>, Box<E>),
    Sub(Box<E>, Box<E>),
    Mul(Box<E>, Box<E>),
    Div(Box<E>, Box<E>),
    Rem(Box<E>, Box<E>),
    And(Box<E>, Box<E>),
    Or(Box<E>, Box<E>),
    Xor(Box<E>, Box<E>),
    Shl(Box<E>, Box<E>),
    Shr(Box<E>, Box<E>),
    Neg(Box<E>),
    Not(Box<E>),
    Lt(Box<E>, Box<E>),
    Eq(Box<E>, Box<E>),
    Ternary(Box<E>, Box<E>, Box<E>),
}

const NVARS: usize = 4;

fn eval(e: &E, vars: &[i32; NVARS]) -> i32 {
    match e {
        E::Lit(v) => *v,
        E::Var(i) => vars[*i],
        E::Add(a, b) => eval(a, vars).wrapping_add(eval(b, vars)),
        E::Sub(a, b) => eval(a, vars).wrapping_sub(eval(b, vars)),
        E::Mul(a, b) => eval(a, vars).wrapping_mul(eval(b, vars)),
        E::Div(a, b) => {
            let (x, y) = (eval(a, vars), eval(b, vars));
            // The runtime defines n/0 = 0; i32::MIN / -1 wraps.
            if y == 0 {
                0
            } else {
                x.wrapping_div(y)
            }
        }
        E::Rem(a, b) => {
            let (x, y) = (eval(a, vars), eval(b, vars));
            if y == 0 {
                0
            } else {
                x.wrapping_rem(y)
            }
        }
        E::And(a, b) => eval(a, vars) & eval(b, vars),
        E::Or(a, b) => eval(a, vars) | eval(b, vars),
        E::Xor(a, b) => eval(a, vars) ^ eval(b, vars),
        E::Shl(a, b) => {
            let sh = (eval(b, vars) as u32) & 31;
            ((eval(a, vars) as u32).wrapping_shl(sh)) as i32
        }
        E::Shr(a, b) => {
            let sh = (eval(b, vars) as u32) & 31;
            eval(a, vars).wrapping_shr(sh)
        }
        E::Neg(a) => eval(a, vars).wrapping_neg(),
        E::Not(a) => !eval(a, vars),
        E::Lt(a, b) => (eval(a, vars) < eval(b, vars)) as i32,
        E::Eq(a, b) => (eval(a, vars) == eval(b, vars)) as i32,
        E::Ternary(c, t, f) => {
            if eval(c, vars) != 0 {
                eval(t, vars)
            } else {
                eval(f, vars)
            }
        }
    }
}

fn print_e(e: &E, out: &mut String) {
    match e {
        E::Lit(v) => out.push_str(&v.to_string()),
        E::Var(i) => out.push_str(&format!("v{i}")),
        E::Neg(a) => {
            out.push_str("(- ");
            print_e(a, out);
            out.push(')');
        }
        E::Not(a) => {
            out.push_str("(~");
            print_e(a, out);
            out.push(')');
        }
        E::Ternary(c, t, f) => {
            out.push('(');
            print_e(c, out);
            out.push_str(" ? ");
            print_e(t, out);
            out.push_str(" : ");
            print_e(f, out);
            out.push(')');
        }
        _ => {
            let (op, a, b) = match e {
                E::Add(a, b) => ("+", a, b),
                E::Sub(a, b) => ("-", a, b),
                E::Mul(a, b) => ("*", a, b),
                E::Div(a, b) => ("/", a, b),
                E::Rem(a, b) => ("%", a, b),
                E::And(a, b) => ("&", a, b),
                E::Or(a, b) => ("|", a, b),
                E::Xor(a, b) => ("^", a, b),
                E::Shl(a, b) => ("<<", a, b),
                E::Shr(a, b) => (">>", a, b),
                E::Lt(a, b) => ("<", a, b),
                E::Eq(a, b) => ("==", a, b),
                _ => unreachable!(),
            };
            out.push('(');
            print_e(a, out);
            out.push_str(&format!(" {op} "));
            print_e(b, out);
            out.push(')');
        }
    }
}

fn arb_expr() -> impl Strategy<Value = E> {
    let leaf = prop_oneof![
        (-512i32..512).prop_map(E::Lit),
        (0usize..NVARS).prop_map(E::Var),
        any::<i32>().prop_map(E::Lit),
    ];
    leaf.prop_recursive(4, 48, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Add(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Sub(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Mul(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Div(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Rem(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::And(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Or(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Xor(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Shl(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Shr(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Lt(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Eq(Box::new(a), Box::new(b))),
            inner.clone().prop_map(|a| E::Neg(Box::new(a))),
            inner.clone().prop_map(|a| E::Not(Box::new(a))),
            (inner.clone(), inner.clone(), inner)
                .prop_map(|(c, t, f)| E::Ternary(Box::new(c), Box::new(t), Box::new(f))),
        ]
    })
}

fn program_for(e: &E, vars: &[i32; NVARS]) -> String {
    let mut body = String::new();
    for (i, v) in vars.iter().enumerate() {
        body.push_str(&format!("    int v{i} = {v};\n"));
    }
    let mut expr = String::new();
    print_e(e, &mut expr);
    format!(
        "int main(void) {{\n{body}    int r = {expr};\n    return (r & 0xFF) ^ ((r >> 8) & 0xFF) ^ ((r >> 16) & 0xFF) ^ ((r >> 24) & 0xFF);\n}}\n"
    )
}

fn run_on(src: &str, spec: &TargetSpec) -> i32 {
    let image = d16_cc::compile_to_image(&[src], spec)
        .unwrap_or_else(|e| panic!("[{}] {e}\n{src}", spec.label()));
    let mut m = Machine::load(&image);
    match m.run(80_000_000, &mut NullSink) {
        Ok(StopReason::Halted(v)) => v,
        other => panic!("[{}] did not halt: {other:?}\n{src}", spec.label()),
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, .. ProptestConfig::default() })]

    /// Host-evaluated expressions equal the simulated result on every
    /// target configuration.
    #[test]
    fn random_expressions_agree(
        e in arb_expr(),
        vars in proptest::array::uniform4(any::<i32>()),
    ) {
        let want = eval(&e, &vars);
        let folded = (want & 0xFF) ^ ((want >> 8) & 0xFF) ^ ((want >> 16) & 0xFF) ^ ((want >> 24) & 0xFF);
        let src = program_for(&e, &vars);
        for spec in [
            TargetSpec::d16(),
            TargetSpec::dlxe(),
            TargetSpec::dlxe_restricted(true, true, true),
        ] {
            let got = run_on(&src, &spec);
            prop_assert_eq!(got, folded, "target {}\n{}", spec.label(), src);
        }
    }
}
