//! Property-style differential testing: random Mini-C programs are
//! evaluated by a reference evaluator (host arithmetic with the machine's
//! wrapping semantics) and by the full stack (compile → assemble → link →
//! simulate) on every target. All answers must agree.
//!
//! Deterministic `d16-testkit` generators replace the original `proptest`
//! strategies (offline builds, DESIGN.md §7).

use d16_cc::TargetSpec;
use d16_sim::{Machine, NullSink, StopReason};
use d16_testkit::{cases, Rng};

/// A tiny expression AST we can both print as Mini-C and evaluate.
#[derive(Clone, Debug)]
enum E {
    Lit(i32),
    Var(usize),
    Add(Box<E>, Box<E>),
    Sub(Box<E>, Box<E>),
    Mul(Box<E>, Box<E>),
    Div(Box<E>, Box<E>),
    Rem(Box<E>, Box<E>),
    And(Box<E>, Box<E>),
    Or(Box<E>, Box<E>),
    Xor(Box<E>, Box<E>),
    Shl(Box<E>, Box<E>),
    Shr(Box<E>, Box<E>),
    Neg(Box<E>),
    Not(Box<E>),
    Lt(Box<E>, Box<E>),
    Eq(Box<E>, Box<E>),
    Ternary(Box<E>, Box<E>, Box<E>),
}

const NVARS: usize = 4;

fn eval(e: &E, vars: &[i32; NVARS]) -> i32 {
    match e {
        E::Lit(v) => *v,
        E::Var(i) => vars[*i],
        E::Add(a, b) => eval(a, vars).wrapping_add(eval(b, vars)),
        E::Sub(a, b) => eval(a, vars).wrapping_sub(eval(b, vars)),
        E::Mul(a, b) => eval(a, vars).wrapping_mul(eval(b, vars)),
        E::Div(a, b) => {
            let (x, y) = (eval(a, vars), eval(b, vars));
            // The runtime defines n/0 = 0; i32::MIN / -1 wraps.
            if y == 0 {
                0
            } else {
                x.wrapping_div(y)
            }
        }
        E::Rem(a, b) => {
            let (x, y) = (eval(a, vars), eval(b, vars));
            if y == 0 {
                0
            } else {
                x.wrapping_rem(y)
            }
        }
        E::And(a, b) => eval(a, vars) & eval(b, vars),
        E::Or(a, b) => eval(a, vars) | eval(b, vars),
        E::Xor(a, b) => eval(a, vars) ^ eval(b, vars),
        E::Shl(a, b) => {
            let sh = (eval(b, vars) as u32) & 31;
            ((eval(a, vars) as u32).wrapping_shl(sh)) as i32
        }
        E::Shr(a, b) => {
            let sh = (eval(b, vars) as u32) & 31;
            eval(a, vars).wrapping_shr(sh)
        }
        E::Neg(a) => eval(a, vars).wrapping_neg(),
        E::Not(a) => !eval(a, vars),
        E::Lt(a, b) => (eval(a, vars) < eval(b, vars)) as i32,
        E::Eq(a, b) => (eval(a, vars) == eval(b, vars)) as i32,
        E::Ternary(c, t, f) => {
            if eval(c, vars) != 0 {
                eval(t, vars)
            } else {
                eval(f, vars)
            }
        }
    }
}

fn print_e(e: &E, out: &mut String) {
    match e {
        E::Lit(v) => out.push_str(&v.to_string()),
        E::Var(i) => out.push_str(&format!("v{i}")),
        E::Neg(a) => {
            out.push_str("(- ");
            print_e(a, out);
            out.push(')');
        }
        E::Not(a) => {
            out.push_str("(~");
            print_e(a, out);
            out.push(')');
        }
        E::Ternary(c, t, f) => {
            out.push('(');
            print_e(c, out);
            out.push_str(" ? ");
            print_e(t, out);
            out.push_str(" : ");
            print_e(f, out);
            out.push(')');
        }
        _ => {
            let (op, a, b) = match e {
                E::Add(a, b) => ("+", a, b),
                E::Sub(a, b) => ("-", a, b),
                E::Mul(a, b) => ("*", a, b),
                E::Div(a, b) => ("/", a, b),
                E::Rem(a, b) => ("%", a, b),
                E::And(a, b) => ("&", a, b),
                E::Or(a, b) => ("|", a, b),
                E::Xor(a, b) => ("^", a, b),
                E::Shl(a, b) => ("<<", a, b),
                E::Shr(a, b) => (">>", a, b),
                E::Lt(a, b) => ("<", a, b),
                E::Eq(a, b) => ("==", a, b),
                _ => unreachable!(),
            };
            out.push('(');
            print_e(a, out);
            out.push_str(&format!(" {op} "));
            print_e(b, out);
            out.push(')');
        }
    }
}

fn leaf(rng: &mut Rng) -> E {
    match rng.below(3) {
        0 => E::Lit(rng.range_i32(-512, 512)),
        1 => E::Var(rng.below(NVARS as u32) as usize),
        _ => E::Lit(rng.next_u32() as i32),
    }
}

/// A random expression of bounded depth (matching the original strategy's
/// recursion limit of 4).
fn arb_expr(rng: &mut Rng, depth: u32) -> E {
    if depth == 0 || rng.below(5) == 0 {
        return leaf(rng);
    }
    let bx = |rng: &mut Rng, d| Box::new(arb_expr(rng, d));
    let d = depth - 1;
    match rng.below(15) {
        0 => E::Add(bx(rng, d), bx(rng, d)),
        1 => E::Sub(bx(rng, d), bx(rng, d)),
        2 => E::Mul(bx(rng, d), bx(rng, d)),
        3 => E::Div(bx(rng, d), bx(rng, d)),
        4 => E::Rem(bx(rng, d), bx(rng, d)),
        5 => E::And(bx(rng, d), bx(rng, d)),
        6 => E::Or(bx(rng, d), bx(rng, d)),
        7 => E::Xor(bx(rng, d), bx(rng, d)),
        8 => E::Shl(bx(rng, d), bx(rng, d)),
        9 => E::Shr(bx(rng, d), bx(rng, d)),
        10 => E::Lt(bx(rng, d), bx(rng, d)),
        11 => E::Eq(bx(rng, d), bx(rng, d)),
        12 => E::Neg(bx(rng, d)),
        13 => E::Not(bx(rng, d)),
        _ => E::Ternary(bx(rng, d), bx(rng, d), bx(rng, d)),
    }
}

fn program_for(e: &E, vars: &[i32; NVARS]) -> String {
    let mut body = String::new();
    for (i, v) in vars.iter().enumerate() {
        body.push_str(&format!("    int v{i} = {v};\n"));
    }
    let mut expr = String::new();
    print_e(e, &mut expr);
    format!(
        "int main(void) {{\n{body}    int r = {expr};\n    return (r & 0xFF) ^ ((r >> 8) & 0xFF) ^ ((r >> 16) & 0xFF) ^ ((r >> 24) & 0xFF);\n}}\n"
    )
}

fn run_on(src: &str, spec: &TargetSpec) -> i32 {
    let image = d16_cc::compile_to_image(&[src], spec)
        .unwrap_or_else(|e| panic!("[{}] {e}\n{src}", spec.label()));
    let mut m = Machine::load(&image);
    match m.run(80_000_000, &mut NullSink) {
        Ok(StopReason::Halted(v)) => v,
        other => panic!("[{}] did not halt: {other:?}\n{src}", spec.label()),
    }
}

/// One expression checked against the reference evaluator on every
/// target, the same way the random cases are.
fn check_case(e: &E, vars: [i32; NVARS]) {
    let want = eval(e, &vars);
    let folded =
        (want & 0xFF) ^ ((want >> 8) & 0xFF) ^ ((want >> 16) & 0xFF) ^ ((want >> 24) & 0xFF);
    let src = program_for(e, &vars);
    for spec in
        [TargetSpec::d16(), TargetSpec::dlxe(), TargetSpec::dlxe_restricted(true, true, true)]
    {
        let got = run_on(&src, &spec);
        assert_eq!(got, folded, "target {}\n{}", spec.label(), src);
    }
}

/// Past shrunken counterexamples (from the original proptest seed file),
/// pinned as explicit deterministic cases so they re-run everywhere the
/// generators do.
#[test]
fn regression_not_of_xor_with_negated_literal() {
    // Once shrank to: Not(Xor(Neg(Lit(-1)), Lit(0))), vars = [0, 0, 0, 0]
    let e = E::Not(Box::new(E::Xor(Box::new(E::Neg(Box::new(E::Lit(-1)))), Box::new(E::Lit(0)))));
    check_case(&e, [0, 0, 0, 0]);
}

#[test]
fn regression_rem_by_comparison_result() {
    // Once shrank to: Rem(Lit(-4), Eq(Lit(348233286), Lit(230))),
    // vars = [-884507048, -1948711067, 1204876439, 1965064460]
    let e = E::Rem(
        Box::new(E::Lit(-4)),
        Box::new(E::Eq(Box::new(E::Lit(348_233_286)), Box::new(E::Lit(230)))),
    );
    check_case(&e, [-884_507_048, -1_948_711_067, 1_204_876_439, 1_965_064_460]);
}

/// Host-evaluated expressions equal the simulated result on every target
/// configuration.
#[test]
fn random_expressions_agree() {
    cases(48, |case, rng| {
        let e = arb_expr(rng, 4);
        let vars = [
            rng.next_u32() as i32,
            rng.next_u32() as i32,
            rng.next_u32() as i32,
            rng.next_u32() as i32,
        ];
        let want = eval(&e, &vars);
        let folded =
            (want & 0xFF) ^ ((want >> 8) & 0xFF) ^ ((want >> 16) & 0xFF) ^ ((want >> 24) & 0xFF);
        let src = program_for(&e, &vars);
        for spec in
            [TargetSpec::d16(), TargetSpec::dlxe(), TargetSpec::dlxe_restricted(true, true, true)]
        {
            let got = run_on(&src, &spec);
            assert_eq!(got, folded, "case {case}, target {}\n{}", spec.label(), src);
        }
    });
}
