//! `repro` — regenerates every table and figure of the paper.
//!
//! ```text
//! repro --all                # everything (the default)
//! repro --fig 4              # one figure
//! repro --table 11           # one table
//! repro --jobs 4             # worker threads (default: all cores)
//! repro --smoke              # tiny 2-workload x 2-target run
//! repro --only towers,assem  # collect only the named workloads
//! repro --engine interp      # per-instruction engine (default: blocks)
//! repro --pipeline-sweep     # depth x predictor sweep tables
//! repro --extended           # extended-suite distribution tables
//! repro --pipeline-depth 8   # retime the whole grid (3..8; default 5)
//! repro --pipeline-predictor twobit   # none | taken | twobit
//! repro --pipeline-fetch 4   # fetch width in halfwords (1, 2 or 4)
//! repro --store DIR          # incremental: reuse artifacts across runs
//! repro --no-store           # override an earlier --store
//! repro --store-verify       # integrity-sweep the store before running
//! repro --bench-json FILE    # write a machine-readable timing report
//! repro --metrics-json FILE  # write the deterministic telemetry dump
//! repro --list               # what is available
//! ```
//!
//! Output is plain text, one block per table/figure, in the paper's
//! numbering. See EXPERIMENTS.md for paper-vs-measured commentary, the
//! `bench_repro/4` schema of the two JSON reports, and the README's
//! Performance section for how to read `BENCH_repro.json`.
//!
//! `--engine` selects the simulator's execution engine (the block-caching
//! `blocks` default or the per-instruction `interp` reference). The two
//! are observationally identical — stdout and `--metrics-json` are
//! byte-for-byte the same either way — so the flag only moves the timing
//! numbers; the timing report records which engine ran.
//!
//! Both JSON reports share the schema tag; they differ in kind. The
//! `--metrics-json` dump is the deterministic projection (counters and
//! span counts — byte-identical for every `--jobs N`, CI diffs it); the
//! `--bench-json` report adds the wall-clock half (phase timings, span
//! histograms, per-cell wall times). Store hit/miss accounting rides
//! only in the timing report and on stderr: a warm `--store` run's
//! stdout and `--metrics-json` are byte-identical to a cold run's.
//!
//! Exit codes (see DESIGN.md §"Error taxonomy"):
//!
//! - `0` — every requested figure and table was produced in full.
//! - `1` — nothing could be measured (or a report file was unwritable).
//! - `2` — user error: bad flags, unknown workload, missing directory.
//! - `3` — degraded: the run completed but one or more cells, grids or
//!   reports were skipped; each skip is diagnosed on stderr.

use d16_bench::json::Json;
use d16_bench::report;
use d16_core::report::{f2, f3, pct, Table};
use d16_core::suite::standard_specs;
use d16_core::{base_specs, default_jobs, experiments as ex, Engine, Suite};
use d16_isa::Isa;
use d16_sim::{PipelineSpec, Predictor, PIPELINE_DEPTHS};
use d16_store::Store;
use d16_workloads::Workload;
use std::sync::Arc;
use std::time::Instant;

/// The value following a value-taking flag, or a clean usage error.
fn flag_value<'a>(args: &'a [String], i: &mut usize, flag: &str) -> &'a str {
    *i += 1;
    args.get(*i).map(String::as_str).unwrap_or_else(|| {
        eprintln!("{flag} requires a value");
        std::process::exit(2);
    })
}

fn parsed_flag<T: std::str::FromStr>(args: &[String], i: &mut usize, flag: &str) -> T {
    let v = flag_value(args, i, flag);
    v.parse().unwrap_or_else(|_| {
        eprintln!("{flag}: invalid value `{v}`");
        std::process::exit(2);
    })
}

/// Rejects an output path whose parent directory does not exist — up
/// front, before minutes of collection are spent, naming the flag and the
/// missing directory.
fn ensure_parent_dir(flag: &str, path: &str) {
    if let Some(dir) = std::path::Path::new(path).parent() {
        if !dir.as_os_str().is_empty() && !dir.is_dir() {
            eprintln!("{flag}: parent directory `{}` does not exist", dir.display());
            std::process::exit(2);
        }
    }
}

/// Every name `by_name` resolves — the paper's suite then the extension
/// workloads, in registry order. `--only` and `--smoke` accept extension
/// names, so their unknown-workload diagnostics must list them too.
fn valid_workload_names() -> Vec<&'static str> {
    d16_workloads::SUITE.iter().chain(d16_workloads::EXTRAS).map(|w| w.name).collect()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut figs: Vec<u32> = Vec::new();
    let mut tables: Vec<u32> = Vec::new();
    let mut fpu_sweep = false;
    let mut pipeline_sweep = false;
    let mut extended = false;
    let mut pspec = PipelineSpec::default();
    let mut d16x = false;
    let mut all = args.is_empty();
    let mut smoke = false;
    let mut jobs = default_jobs();
    let mut bench_json: Option<String> = None;
    let mut metrics_json: Option<String> = None;
    let mut store_dir: Option<String> = None;
    let mut no_store = false;
    let mut store_verify = false;
    let mut only: Vec<String> = Vec::new();
    let mut engine = Engine::default();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--all" => all = true,
            "--list" => {
                print_list();
                return;
            }
            "--fpu-sweep" => fpu_sweep = true,
            "--pipeline-sweep" => pipeline_sweep = true,
            "--extended" => extended = true,
            "--pipeline-depth" => pspec.depth = parsed_flag(&args, &mut i, "--pipeline-depth"),
            "--pipeline-predictor" => {
                let v = flag_value(&args, &mut i, "--pipeline-predictor");
                pspec.predictor = Predictor::parse(v).unwrap_or_else(|| {
                    eprintln!(
                        "--pipeline-predictor: unknown predictor `{v}`; valid predictors: none taken twobit"
                    );
                    std::process::exit(2);
                });
            }
            "--pipeline-fetch" => {
                pspec.fetch_width_halfwords = parsed_flag(&args, &mut i, "--pipeline-fetch");
            }
            "--d16x" => d16x = true,
            "--smoke" => smoke = true,
            "--store" => store_dir = Some(flag_value(&args, &mut i, "--store").to_string()),
            "--no-store" => no_store = true,
            "--store-verify" => store_verify = true,
            "--only" => only.extend(
                flag_value(&args, &mut i, "--only")
                    .split(',')
                    .filter(|s| !s.is_empty())
                    .map(str::to_string),
            ),
            "--engine" => {
                let v = flag_value(&args, &mut i, "--engine");
                engine = Engine::parse(v).unwrap_or_else(|| {
                    eprintln!("--engine: unknown engine `{v}` (blocks or interp)");
                    std::process::exit(2);
                });
            }
            "--fig" => figs.push(parsed_flag(&args, &mut i, "--fig")),
            "--table" => tables.push(parsed_flag(&args, &mut i, "--table")),
            "--jobs" => {
                jobs = parsed_flag(&args, &mut i, "--jobs");
                if jobs == 0 {
                    eprintln!("--jobs must be at least 1");
                    std::process::exit(2);
                }
            }
            "--bench-json" => {
                bench_json = Some(flag_value(&args, &mut i, "--bench-json").to_string());
            }
            "--metrics-json" => {
                metrics_json = Some(flag_value(&args, &mut i, "--metrics-json").to_string());
            }
            other => {
                eprintln!("unknown argument `{other}` (try --list)");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    if let Err(e) = pspec.validate() {
        eprintln!("--pipeline-depth/--pipeline-fetch: {e}");
        std::process::exit(2);
    }
    if smoke && all {
        eprintln!("--smoke collects only 2 workloads x 2 targets; it cannot serve --all");
        std::process::exit(2);
    }
    if !only.is_empty() && (smoke || all) {
        eprintln!("--only picks its own workloads; it cannot combine with --smoke or --all");
        std::process::exit(2);
    }
    if extended && (smoke || !only.is_empty()) {
        eprintln!("--extended needs the full grid; it cannot combine with --smoke or --only");
        std::process::exit(2);
    }
    // The extended distribution tables ride along with every full run.
    let extended = extended || all;
    let only_workloads: Vec<&Workload> = only
        .iter()
        .map(|name| {
            d16_workloads::by_name(name).unwrap_or_else(|| {
                let valid: Vec<&str> = valid_workload_names();
                eprintln!("--only: unknown workload `{name}`; valid names: {}", valid.join(" "));
                std::process::exit(2);
            })
        })
        .collect();
    if no_store {
        store_dir = None;
    }
    if store_verify && store_dir.is_none() {
        eprintln!("--store-verify needs a store (pass --store DIR)");
        std::process::exit(2);
    }
    if let Some(p) = &bench_json {
        ensure_parent_dir("--bench-json", p);
    }
    if let Some(p) = &metrics_json {
        ensure_parent_dir("--metrics-json", p);
    }
    if all {
        figs = vec![4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17, 18, 19];
        tables = vec![3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16];
    } else if smoke && figs.is_empty() && tables.is_empty() {
        // Everything derivable from the two unrestricted targets and the
        // one collected cache benchmark.
        figs = vec![4, 5, 16, 17, 18, 19];
        tables = vec![13, 14];
    } else if !only.is_empty() && figs.is_empty() && tables.is_empty() {
        // Everything derivable from the filtered grid. Table 4 re-runs
        // the whole suite outside the grid, so it stays out of a
        // filtered run unless asked for by number.
        figs = vec![4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17, 18, 19];
        tables = vec![3, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16];
    }

    // --- open the artifact store (incremental runs) --------------------
    let store: Option<Arc<Store>> = store_dir.as_ref().map(|dir| match Store::open(dir.as_str()) {
        Ok(s) => Arc::new(s),
        Err(e) => {
            eprintln!("--store {dir}: {e}");
            std::process::exit(2);
        }
    });
    if store_verify {
        let s = store.as_ref().expect("checked above");
        match s.verify() {
            Ok(r) => eprintln!(
                "store verify: {} scanned, {} ok, {} evicted, {} temps removed, {} stale locks removed",
                r.scanned, r.ok, r.evicted, r.temps_removed, r.locks_removed
            ),
            Err(e) => {
                eprintln!("--store-verify: {e}");
                std::process::exit(2);
            }
        }
    }

    // --- collect (the timed, parallel phase) ---------------------------
    // The `smoke-drift` failpoint simulates the smoke list drifting out
    // of sync with the workload crate (a bug class this lookup guards
    // against): resolve failures are a user-facing diagnostic, not a
    // panic, and use the same shape as the `--only` error path.
    let smoke_names: [&str; 2] = if d16_testkit::faults::armed("smoke-drift").is_some() {
        ["towers", "gone-workload"]
    } else {
        ["towers", "assem"]
    };
    let smoke_workloads: Vec<&Workload> = if smoke {
        smoke_names
            .iter()
            .map(|n| {
                d16_workloads::by_name(n).unwrap_or_else(|| {
                    let valid: Vec<&str> = valid_workload_names();
                    eprintln!("--smoke: unknown workload `{n}`; valid names: {}", valid.join(" "));
                    std::process::exit(2);
                })
            })
            .collect()
    } else {
        Vec::new()
    };
    let collect = |jobs: usize| {
        if smoke {
            Suite::collect_for_jobs_stored_spec(
                &smoke_workloads,
                &base_specs(),
                true,
                jobs,
                store.clone(),
                engine,
                pspec,
            )
        } else if !only_workloads.is_empty() {
            Suite::collect_for_jobs_stored_spec(
                &only_workloads,
                &standard_specs(),
                true,
                jobs,
                store.clone(),
                engine,
                pspec,
            )
        } else {
            Suite::collect_jobs_stored_spec(jobs, store.clone(), engine, pspec)
        }
    };
    if smoke {
        eprintln!("collecting the smoke grid (2 workloads x 2 targets, {jobs} jobs)...");
    } else if !only_workloads.is_empty() {
        eprintln!(
            "collecting the filtered grid ({} workloads x 6 targets, {jobs} jobs)...",
            only_workloads.len()
        );
    } else {
        eprintln!("collecting the measurement grid (15 workloads x 6 targets, {jobs} jobs)...");
    }
    let start = Instant::now();
    let suite = match collect(jobs) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("measurement failed: {e}");
            std::process::exit(1);
        }
    };
    let collect_ns = start.elapsed().as_nanos();
    eprintln!("collected in {:.1}s", collect_ns as f64 / 1e9);

    // --- collect the extension workloads (the extended suite) ----------
    // The extension cells live in their own Suite so the main suite's
    // cell counts, telemetry and metrics dumps stay byte-identical to
    // runs that predate the extended tables. No cache traces: the
    // distribution tables need only static size and path length.
    let xsuite = if extended {
        let extras: Vec<&Workload> = d16_workloads::EXTRAS.iter().collect();
        eprintln!(
            "collecting the extended grid ({} extension workloads x 6 targets, {jobs} jobs)...",
            extras.len()
        );
        let xstart = Instant::now();
        match Suite::collect_for_jobs_stored_spec(
            &extras,
            &standard_specs(),
            false,
            jobs,
            store.clone(),
            engine,
            pspec,
        ) {
            Ok(s) => {
                eprintln!("collected in {:.1}s", xstart.elapsed().as_nanos() as f64 / 1e9);
                Some(s)
            }
            Err(e) => {
                eprintln!("extended collection failed: {e}");
                std::process::exit(1);
            }
        }
    } else {
        None
    };

    // Degraded cells: diagnose each on stderr, keep the rest of the run.
    // The diffable outputs stay clean-run-identical because report
    // functions drop skipped workloads entirely.
    let mut skips: Vec<(String, String, String)> = suite
        .skipped
        .iter()
        .chain(xsuite.iter().flat_map(|x| x.skipped.iter()))
        .map(|s| (s.workload.clone(), s.target.clone(), s.reason.clone()))
        .collect();
    for (w, t, reason) in &skips {
        eprintln!("skipped ({w}, {t}): {reason}");
    }

    // --- warm the single-pass cache grids (the other timed phase) ------
    let trace_keys: Vec<(String, Isa)> = suite
        .traces
        .keys()
        .map(|(w, isa)| {
            let isa = match isa.as_str() {
                "D16" => Isa::D16,
                "D16x" => Isa::D16x,
                _ => Isa::Dlxe,
            };
            (w.clone(), isa)
        })
        .collect();
    let start = Instant::now();
    for (w, isa) in &trace_keys {
        if let Err(e) = suite.cache_grid(w, *isa) {
            eprintln!("skipped ({w}, grid {isa}): {e}");
            skips.push((w.clone(), format!("grid {isa}"), e.to_string()));
        }
    }
    let grid_ns = start.elapsed().as_nanos();
    if !trace_keys.is_empty() {
        eprintln!(
            "cache grids ({} traces x {} configs) in {:.1}s",
            trace_keys.len(),
            ex::cache_grid_configs().len(),
            grid_ns as f64 / 1e9
        );
    }

    for f in &figs {
        for (w, reason) in print_fig(&suite, *f) {
            let target = format!("figure {f}");
            eprintln!("skipped ({w}, {target}): {reason}");
            skips.push((w, target, reason));
        }
    }
    for t in &tables {
        for (w, reason) in print_table(&suite, *t, store.as_deref()) {
            let target = format!("table {t}");
            eprintln!("skipped ({w}, {target}): {reason}");
            skips.push((w, target, reason));
        }
    }
    if fpu_sweep || all {
        for (w, reason) in print_fpu_sweep(store.as_deref()) {
            eprintln!("skipped ({w}, fpu sweep): {reason}");
            skips.push((w, "fpu sweep".to_string(), reason));
        }
    }
    if d16x || all {
        print_d16x(&suite);
    }
    // The pipeline sweep prints after the paper's blocks so earlier
    // blocks of a regenerated results.txt stay byte-identical to runs
    // that predate the sweep.
    if pipeline_sweep || all {
        for (w, reason) in print_pipeline_sweep(store.as_deref()) {
            eprintln!("skipped ({w}, pipeline sweep): {reason}");
            skips.push((w, "pipeline sweep".to_string(), reason));
        }
    }
    // The extended-suite distribution tables print last, after the
    // sweep, for the same append-only reason.
    if let Some(x) = &xsuite {
        print_extended(&suite, x);
    }

    // Store accounting goes to stderr and the timing report only; the
    // diffable outputs (stdout, --metrics-json) stay store-free so warm
    // runs match cold runs byte for byte.
    let mut store_io_degraded = false;
    if let Some(s) = &store {
        let st = s.stats();
        eprintln!(
            "store: {} hits, {} misses, {} writes, {} corrupt evicted",
            st.hit, st.miss, st.write, st.corrupt_evicted
        );
        if st.io_errors > 0 {
            eprintln!("store: {} I/O errors (degraded to recomputation)", st.io_errors);
            store_io_degraded = true;
        }
        if st.lock_contention > 0 {
            eprintln!("store: {} lock contentions (degraded to recomputation)", st.lock_contention);
        }
    }

    // Telemetry snapshot: every grid the run needed is warm by now, so
    // the registry holds the sim counters, the per-config cache counters,
    // and both phase spans.
    let tele = suite.telemetry();

    if let Some(path) = metrics_json {
        let doc = report::metrics_json(&tele, smoke, suite.cells.len(), suite.traces.len());
        if let Err(e) = std::fs::write(&path, format!("{doc}\n")) {
            eprintln!("writing {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("wrote {path}");
    }

    if let Some(path) = bench_json {
        let sweeps: Vec<Json> = suite
            .traces
            .iter()
            .map(|((w, isa), t)| {
                Json::obj()
                    .with("workload", w.as_str())
                    .with("isa", isa.as_str())
                    .with("records", t.len())
                    .with("memory_bytes", t.memory_bytes())
                    .with("replays", t.replay_count())
            })
            .collect();
        let cells: Vec<Json> = suite
            .cell_wall_ns
            .iter()
            .map(|((w, target), ns)| {
                Json::obj()
                    .with("workload", w.as_str())
                    .with("target", target.as_str())
                    .with("wall_ns", *ns)
            })
            .collect();
        let report = Json::obj()
            .with("schema", "bench_repro/4")
            .with("kind", "timing")
            .with("smoke", smoke)
            .with("engine", engine.name())
            .with(
                "pipeline",
                Json::obj()
                    .with("depth", u64::from(pspec.depth))
                    .with("predictor", pspec.predictor.name())
                    .with("fetch_halfwords", u64::from(pspec.fetch_width_halfwords)),
            )
            .with("jobs", jobs)
            .with("cells", suite.cells.len())
            .with("traces", suite.traces.len())
            .with("collect_ns", collect_ns)
            .with(
                "cache_grid",
                Json::obj()
                    .with("ns", grid_ns)
                    .with("configs", ex::cache_grid_configs().len())
                    .with("sweeps", sweeps),
            )
            .with("counters", report::counters_json(&tele))
            .with("spans", report::spans_json(&tele))
            .with("store", {
                let st = store.as_ref().map(|s| s.stats()).unwrap_or_default();
                Json::obj()
                    .with("enabled", store.is_some())
                    .with("hit", st.hit)
                    .with("miss", st.miss)
                    .with("write", st.write)
                    .with("corrupt_evicted", st.corrupt_evicted)
                    .with("io_errors", st.io_errors)
                    .with("lock_contention", st.lock_contention)
            })
            .with(
                "skipped",
                skips
                    .iter()
                    .map(|(w, t, reason)| {
                        Json::obj()
                            .with("workload", w.as_str())
                            .with("target", t.as_str())
                            .with("reason", reason.as_str())
                    })
                    .collect::<Vec<Json>>(),
            )
            .with("cell_wall_ns", cells);
        if let Err(e) = std::fs::write(&path, format!("{report}\n")) {
            eprintln!("writing {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("wrote {path}");
    }

    if !skips.is_empty() || store_io_degraded {
        eprintln!("run degraded: {} skip(s), see diagnostics above", skips.len());
        std::process::exit(3);
    }
}

/// Cells or traces the run never collected (a `--smoke` or `--only`
/// subset) are an expected shape of the output, not a degradation; any
/// other skip reason marks the run degraded (exit 3).
fn fault_skip(e: &d16_core::SuiteError) -> bool {
    use d16_core::SuiteError;
    !matches!(e, SuiteError::MissingCell { .. } | SuiteError::MissingTrace { .. })
}

/// Extension beyond the paper: how sensitive is the comparison to the FPU
/// ("math unit") latency the prototype interface fixes? Returns the
/// `(workload, reason)` of every sweep that had to be skipped.
fn print_fpu_sweep(store: Option<&Store>) -> Vec<(String, String)> {
    let mut skips = Vec::new();
    for w in ["whetstone", "linpack"] {
        match ex::fpu_latency_sweep_stored(w, store) {
            Ok(points) => {
                let mut t = Table::new(
                    &format!("Extension: FPU-latency sensitivity, {w} (base cycles)"),
                    &["mul latency", "D16", "DLXe", "DLXe/D16", "D16 rate", "DLXe rate"],
                );
                for p in points {
                    t.row(vec![
                        p.mul_latency.to_string(),
                        p.d16_cycles.to_string(),
                        p.dlxe_cycles.to_string(),
                        f2(p.dlxe_cycles as f64 / p.d16_cycles as f64),
                        f3(p.d16_rate),
                        f3(p.dlxe_rate),
                    ]);
                }
                println!("{}", t.render());
            }
            Err(e) => skips.push((w.to_string(), e)),
        }
    }
    skips
}

/// Extension beyond the paper: retime every standard target across the
/// pipeline depth × predictor grid (one interpreter pass per target; see
/// DESIGN.md §14). Returns the `(workload, reason)` of skipped sweeps.
fn print_pipeline_sweep(store: Option<&Store>) -> Vec<(String, String)> {
    let mut skips = Vec::new();
    for w in ["towers", "assem"] {
        match ex::pipeline_sweep_stored(w, store) {
            Ok(rows) => {
                for row in &rows {
                    let mut t = Table::new(
                        &format!(
                            "Extension: pipeline sweep, {w} on {} ({} insns; base cycles)",
                            row.target, row.sweep.insns
                        ),
                        &["depth", "interlock", "none", "taken", "twobit"],
                    );
                    for &d in &PIPELINE_DEPTHS {
                        let cyc = |p: Predictor| {
                            row.sweep.cell(d, p).map_or("-".into(), |c| c.cycles.to_string())
                        };
                        let il = row
                            .sweep
                            .cell(d, Predictor::None)
                            .map_or("-".into(), |c| c.interlock_cycles.to_string());
                        t.row(vec![
                            d.to_string(),
                            il,
                            cyc(Predictor::None),
                            cyc(Predictor::StaticTaken),
                            cyc(Predictor::TwoBit),
                        ]);
                    }
                    let mis = |p: Predictor| {
                        row.sweep
                            .cell(PIPELINE_DEPTHS[0], p)
                            .map_or("-".into(), |c| c.mispredicts.to_string())
                    };
                    t.row(vec![
                        "mispredicts".into(),
                        "-".into(),
                        mis(Predictor::None),
                        mis(Predictor::StaticTaken),
                        mis(Predictor::TwoBit),
                    ]);
                    println!("{}", t.render());
                }
                let mut t = Table::new(
                    &format!("Extension: fetch traffic across fetch widths, {w} (units)"),
                    &["target", "w=1", "w=2", "w=4"],
                );
                for row in &rows {
                    let [u1, u2, u4] = row.sweep.fetch_units;
                    t.row(vec![row.target.clone(), u1.to_string(), u2.to_string(), u4.to_string()]);
                }
                println!("{}", t.render());
            }
            Err(e) => skips.push((w.to_string(), e)),
        }
    }
    skips
}

/// Extension beyond the paper: the D16x mixed-width target as a third
/// curve next to Figures 4/5, plus its macro-op fusion ablation. Fusion
/// is pure accounting, so both ablation columns derive from the same
/// cells; workloads missing any of the three unrestricted cells drop out
/// like every other report.
fn print_d16x(suite: &Suite) {
    let rows = ex::d16x_third_curve(suite);
    let mut t = Table::new(
        "Extension: D16x mixed-width third curve (Figures 4/5 axes)",
        &["program", "size vs D16", "density vs DLXe", "path vs D16"],
    );
    for r in &rows {
        t.row(vec![
            r.workload.clone(),
            f2(r.size_vs_d16),
            f2(r.density_vs_dlxe),
            f2(r.path_vs_d16),
        ]);
    }
    println!("{}", t.render());
    let mut t = Table::new(
        "Extension: D16x macro-op fusion ablation (base cycles)",
        &["program", "cmp+br", "lui+addi", "fusion off", "fusion on", "saved"],
    );
    for r in &rows {
        t.row(vec![
            r.workload.clone(),
            r.fused_cmp_br.to_string(),
            r.fused_lui_addi.to_string(),
            r.base_cycles.to_string(),
            r.fused_cycles.to_string(),
            pct(r.fusion_savings_pct()),
        ]);
    }
    println!("{}", t.render());
}

/// Extension beyond the paper: the full registry — the paper's fifteen
/// programs plus the extension workloads — as per-workload static-size
/// and path-length ratio tables over all six targets, then one
/// distribution summary per target (min/median/max/mean over workloads
/// with a deterministic bootstrap 95% CI on the mean). The extension
/// cells live in `extras`; see `ex::extended_rows`.
fn print_extended(main: &Suite, extras: &Suite) {
    let rows = ex::extended_rows(main, extras);
    let labels: Vec<String> = standard_specs().iter().map(|s| s.label()).collect();
    let headers: Vec<&str> =
        std::iter::once("program").chain(labels.iter().map(String::as_str)).collect();
    let mut size = Table::new(
        &format!("Extension: extended-suite static size vs D16 = 1.00 ({} programs)", rows.len()),
        &headers,
    );
    let mut path = Table::new(
        &format!("Extension: extended-suite path length vs D16 = 1.00 ({} programs)", rows.len()),
        &headers,
    );
    for r in &rows {
        let cells = |pick: fn(&(String, f64, f64)) -> f64| {
            std::iter::once(r.workload.clone())
                .chain(r.ratios.iter().map(|c| f2(pick(c))))
                .collect()
        };
        size.row(cells(|c| c.1));
        path.row(cells(|c| c.2));
    }
    println!("{}", size.render());
    println!("{}", path.render());
    let mut t = Table::new(
        "Extension: extended-suite ratio distributions over workloads (vs D16 = 1.00)",
        &["target", "metric", "n", "min", "median", "max", "mean", "95% CI"],
    );
    for d in ex::extended_distributions(&rows) {
        for (metric, s) in [("size", &d.size), ("path", &d.path)] {
            t.row(vec![
                d.target.clone(),
                metric.into(),
                s.n.to_string(),
                f2(s.min),
                f2(s.median),
                f2(s.max),
                f2(s.mean),
                format!("[{}, {}]", f2(s.ci_lo), f2(s.ci_hi)),
            ]);
        }
    }
    println!("{}", t.render());
}

fn print_list() {
    println!("figures: 4 5 6 7 8 9 10 11 12 13 14 15 16 17 18 19");
    println!("tables:  3 4 5 6 7 8 9 10 11 12 13 14 15 16");
    println!("extras:  --fpu-sweep (FPU-latency sensitivity, beyond the paper)");
    println!("         --d16x (D16x third curve + fusion ablation, beyond the paper)");
    println!("         --pipeline-sweep (depth x predictor grid, beyond the paper)");
    println!("         --extended (extended-suite distribution tables, beyond the paper)");
    println!("options: --jobs N (worker threads), --smoke (tiny 2x2 grid),");
    println!("         --pipeline-depth N / --pipeline-predictor P / --pipeline-fetch W");
    println!("           (retime the grid: depths 3-8, predictors none|taken|twobit,");
    println!("            fetch widths 1|2|4 halfwords; defaults 5/none/2),");
    println!("         --only W[,W...] (collect only the named workloads),");
    println!("         --engine blocks|interp (execution engine, default blocks),");
    println!("         --store DIR (incremental artifact store), --no-store,");
    println!("         --store-verify (integrity-sweep the store first),");
    println!("         --bench-json FILE (machine-readable timing report),");
    println!("         --metrics-json FILE (deterministic telemetry dump)");
}

fn ratio_table(title: &str, rows: &[ex::RatioRow]) -> String {
    let mut t = Table::new(title, &["program", "value"]);
    for r in rows {
        t.row(vec![r.workload.clone(), f2(r.value)]);
    }
    t.row(vec!["AVERAGE".into(), f2(ex::average(rows))]);
    t.render()
}

fn grid_table(title: &str, rows: &[ex::GridRow]) -> String {
    let mut t = Table::new(title, &["program", "DLXe/16/2", "DLXe/16/3", "DLXe/32/2", "DLXe/32/3"]);
    for r in rows {
        t.row(vec![
            r.workload.clone(),
            f2(r.dlxe_16_2),
            f2(r.dlxe_16_3),
            f2(r.dlxe_32_2),
            f2(r.dlxe_32_3),
        ]);
    }
    t.render()
}

/// Prints one figure; returns the `(workload, reason)` of every
/// fault-caused skip (see [`fault_skip`]).
fn print_fig(suite: &Suite, n: u32) -> Vec<(String, String)> {
    let mut skips = Vec::new();
    let out = match n {
        4 => ratio_table(
            "Figure 4: D16 relative density (DLXe/D16)",
            &ex::fig4_relative_density(suite),
        ),
        5 => ratio_table("Figure 5: DLXe path length (D16 = 1.0)", &ex::fig5_path_length(suite)),
        6 | 8 | 11 => grid_table(
            &format!("Figure {n}: code size vs D16 = 1.0 (feature grid)"),
            &ex::code_size_grid(suite),
        ),
        7 | 9 | 12 => grid_table(
            &format!("Figure {n}: path length vs D16 = 1.0 (feature grid)"),
            &ex::path_length_grid(suite),
        ),
        10 => ratio_table(
            "Figure 10: speedup from DLXe immediates/offsets (D16 = 1.0)",
            &ex::fig10_immediate_speedup(suite),
        ),
        13 => {
            let mut t = Table::new(
                "Figure 13: instruction traffic vs static size (DLXe/D16)",
                &["program", "traffic", "static"],
            );
            for r in ex::fig13_traffic_vs_density(suite) {
                t.row(vec![r.workload, f2(r.traffic_ratio), f2(r.size_ratio)]);
            }
            t.render()
        }
        14 => {
            let mut out = String::new();
            for bus in [4u32, 8] {
                let mut t = Table::new(
                    &format!("Figure 14: normalized CPI, {}-bit fetch, no cache", bus * 8),
                    &["wait states", "DLXe CPI", "D16 CPI", "D16 normalized"],
                );
                for p in ex::fig14_cacheless_cpi(suite, bus) {
                    t.row(vec![
                        p.wait_states.to_string(),
                        f2(p.dlxe_cpi),
                        f2(p.d16_cpi),
                        f2(p.d16_normalized),
                    ]);
                }
                out.push_str(&t.render());
            }
            out
        }
        15 => {
            let mut out = String::new();
            for bus in [4u32, 8] {
                let mut t = Table::new(
                    &format!("Figure 15: fetch saturation, {}-bit bus (fetches/cycle)", bus * 8),
                    &["wait states", "DLXe", "D16"],
                );
                for p in ex::fig15_fetch_saturation(suite, bus) {
                    t.row(vec![p.wait_states.to_string(), f2(p.dlxe), f2(p.d16)]);
                }
                out.push_str(&t.render());
            }
            out
        }
        16 => {
            let mut out = String::new();
            for w in d16_workloads::cache_benchmarks() {
                match ex::fig16_icache_miss(suite, w.name) {
                    Ok(points) => {
                        let mut t = Table::new(
                            &format!("Figure 16: I-cache miss rates, {}", w.name),
                            &["size", "D16", "DLXe"],
                        );
                        for p in points {
                            t.row(vec![format!("{}K", p.size / 1024), f3(p.d16), f3(p.dlxe)]);
                        }
                        out.push_str(&t.render());
                    }
                    Err(e) => {
                        if fault_skip(&e) {
                            skips.push((w.name.to_string(), e.to_string()));
                        }
                        out.push_str(&format!("Figure 16, {}: skipped ({e})\n\n", w.name));
                    }
                }
            }
            out
        }
        17 | 18 => {
            let size = if n == 17 { 4096 } else { 16384 };
            let mut out = String::new();
            for w in d16_workloads::cache_benchmarks() {
                match ex::fig17_18_cache_cpi(suite, w.name, size) {
                    Ok(points) => {
                        let mut t = Table::new(
                            &format!(
                                "Figure {n}: CPI with {}K I+D caches, {}",
                                size / 1024,
                                w.name
                            ),
                            &["miss penalty", "DLXe", "D16", "D16 normalized"],
                        );
                        for p in points {
                            t.row(vec![
                                p.penalty.to_string(),
                                f2(p.dlxe_cpi),
                                f2(p.d16_cpi),
                                f2(p.d16_normalized),
                            ]);
                        }
                        out.push_str(&t.render());
                    }
                    Err(e) => {
                        if fault_skip(&e) {
                            skips.push((w.name.to_string(), e.to_string()));
                        }
                        out.push_str(&format!("Figure {n}, {}: skipped ({e})\n\n", w.name));
                    }
                }
            }
            out
        }
        19 => {
            let mut out = String::new();
            for w in d16_workloads::cache_benchmarks() {
                match ex::fig19_cache_traffic(suite, w.name) {
                    Ok(points) => {
                        let mut t = Table::new(
                            &format!("Figure 19: instruction traffic (words/cycle), {}", w.name),
                            &["size", "DLXe", "D16"],
                        );
                        for p in points {
                            t.row(vec![format!("{}K", p.size / 1024), f3(p.dlxe), f3(p.d16)]);
                        }
                        out.push_str(&t.render());
                    }
                    Err(e) => {
                        if fault_skip(&e) {
                            skips.push((w.name.to_string(), e.to_string()));
                        }
                        out.push_str(&format!("Figure 19, {}: skipped ({e})\n\n", w.name));
                    }
                }
            }
            out
        }
        other => format!("no figure {other} in the paper's evaluation\n"),
    };
    println!("{out}");
    skips
}

/// Prints one table; returns the `(workload, reason)` of every
/// fault-caused skip (see [`fault_skip`]).
fn print_table(suite: &Suite, n: u32, store: Option<&Store>) -> Vec<(String, String)> {
    let mut skips = Vec::new();
    let out = match n {
        3 => {
            let mut t = Table::new(
                "Table 3: data traffic increase for the small register file (%)",
                &["program", "D16", "DLXe-16"],
            );
            let rows = ex::table3_data_traffic(suite);
            let (mut a, mut b) = (0.0, 0.0);
            for r in &rows {
                t.row(vec![r.workload.clone(), pct(r.d16_pct), pct(r.dlxe16_pct)]);
                a += r.d16_pct;
                b += r.dlxe16_pct;
            }
            let nrows = rows.len() as f64;
            t.row(vec!["AVERAGE".into(), pct(a / nrows), pct(b / nrows)]);
            t.render()
        }
        4 => match ex::table4_immediate_profile_stored(store) {
            Ok(t4) => {
                let mut t = Table::new(
                    "Table 4: average immediate-field instruction frequencies",
                    &["class", "% of instructions"],
                );
                t.row(vec!["Compare immediate".into(), pct(t4.cmp_imm_pct)]);
                t.row(vec!["ALU immediate, > 5 bits".into(), pct(t4.alu_imm_pct)]);
                t.row(vec!["Memory displacements beyond D16".into(), pct(t4.mem_disp_pct)]);
                t.row(vec!["Total".into(), pct(t4.total_pct())]);
                t.render()
            }
            Err((w, e)) => {
                skips.push((w.clone(), e.clone()));
                format!("table 4 failed on {w}: {e}\n")
            }
        },
        5 => {
            let mut t = Table::new(
                "Table 5: summary of density and path length effects (D16 = 1.00)",
                &["config", "code size", "path length"],
            );
            for (cfg, (size, path)) in ex::table5_summary(suite) {
                t.row(vec![cfg, f2(size), f2(path)]);
            }
            t.render()
        }
        6 => grid_table(
            "Table 6: code size /density summary (ratios vs D16)",
            &ex::code_size_grid(suite),
        ),
        7 => {
            grid_table("Table 7: path length summary (ratios vs D16)", &ex::path_length_grid(suite))
        }
        8 => {
            let mut t = Table::new(
                "Table 8: path length and instruction traffic (words)",
                &["program", "D16 path", "DLXe path", "D16 words", "DLXe words"],
            );
            for r in ex::appendix_tables(suite) {
                t.row(vec![
                    r.workload,
                    r.d16_insns.to_string(),
                    r.dlxe_insns.to_string(),
                    r.d16_ifetch_words.to_string(),
                    r.dlxe_ifetch_words.to_string(),
                ]);
            }
            t.render()
        }
        9 => {
            let mut t =
                Table::new("Table 9: total loads and stores", &["program", "D16", "DLXe", "%"]);
            for r in ex::appendix_tables(suite) {
                let p = (r.dlxe_mem_ops as f64 / r.d16_mem_ops as f64 - 1.0) * 100.0;
                t.row(vec![
                    r.workload,
                    r.d16_mem_ops.to_string(),
                    r.dlxe_mem_ops.to_string(),
                    pct(p),
                ]);
            }
            t.render()
        }
        10 => {
            let mut t = Table::new(
                "Table 10: delayed-load and math-unit interlocks",
                &["program", "D16 interlocks", "D16 rate", "DLXe interlocks", "DLXe rate"],
            );
            for r in ex::appendix_tables(suite) {
                t.row(vec![
                    r.workload,
                    r.d16_interlocks.to_string(),
                    f3(r.d16_interlocks as f64 / r.d16_insns as f64),
                    r.dlxe_interlocks.to_string(),
                    f3(r.dlxe_interlocks as f64 / r.dlxe_insns as f64),
                ]);
            }
            t.render()
        }
        11 | 12 => {
            let bus = if n == 11 { 4 } else { 8 };
            let mut t = Table::new(
                &format!("Table {n}: DLXe/D16 cycles, {}-bit fetch bus, no cache", bus * 8),
                &["program", "l=0", "l=1", "l=2", "l=3"],
            );
            let rows = ex::table11_12_cycle_ratios(suite, bus);
            let mut sums = [0.0; 4];
            for r in &rows {
                t.row(vec![
                    r.workload.clone(),
                    f2(r.ratios[0]),
                    f2(r.ratios[1]),
                    f2(r.ratios[2]),
                    f2(r.ratios[3]),
                ]);
                for (s, v) in sums.iter_mut().zip(r.ratios) {
                    *s += v;
                }
            }
            let nr = rows.len() as f64;
            t.row(vec![
                "MEAN".into(),
                f2(sums[0] / nr),
                f2(sums[1] / nr),
                f2(sums[2] / nr),
                f2(sums[3] / nr),
            ]);
            t.render()
        }
        13 => {
            let mut t = Table::new(
                "Table 13: traffic and interlocks for cache benchmarks",
                &["program", "ISA", "insns", "interlock rate", "ifetch words", "reads", "writes"],
            );
            for r in ex::table13_cache_traffic(suite) {
                t.row(vec![
                    r.workload,
                    r.isa.to_string(),
                    r.insns.to_string(),
                    f3(r.interlock_rate),
                    r.ifetch_words.to_string(),
                    r.reads.to_string(),
                    r.writes.to_string(),
                ]);
            }
            t.render()
        }
        14..=16 => {
            let w = match n {
                14 => "assem",
                15 => "ipl",
                _ => "latex",
            };
            match ex::miss_rate_grid(suite, w) {
                Ok(rows) => {
                    let mut t = Table::new(
                        &format!("Table {n}: cache miss rates for {w}"),
                        &["size", "block", "I D16", "I DLXe", "R D16", "R DLXe", "W D16", "W DLXe"],
                    );
                    for r in rows {
                        t.row(vec![
                            format!("{}K", r.size / 1024),
                            r.block.to_string(),
                            f3(r.insn.0),
                            f3(r.insn.1),
                            f3(r.read.0),
                            f3(r.read.1),
                            f3(r.write.0),
                            f3(r.write.1),
                        ]);
                    }
                    t.render()
                }
                Err(e) => {
                    if fault_skip(&e) {
                        skips.push((w.to_string(), e.to_string()));
                    }
                    format!("Table {n}, {w}: skipped ({e})\n")
                }
            }
        }
        other => format!("no table {other} in the paper's evaluation\n"),
    };
    println!("{out}");
    skips
}
