//! Prints each workload's checksum on the D16 target (used to pin the
//! `expected` values in `d16-workloads`).

fn main() {
    for w in d16_workloads::SUITE {
        match d16_core::measure(w, &d16_cc::TargetSpec::d16(), false) {
            Ok((m, _)) => println!("{}: {}", w.name, m.exit),
            Err(e) => println!("{}: ERROR {e}", w.name),
        }
    }
}
