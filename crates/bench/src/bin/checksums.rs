//! Prints each workload's checksum on the D16 target (used to pin the
//! `expected` values in `d16-workloads`), extras included.

fn main() {
    for w in d16_workloads::SUITE.iter().chain(d16_workloads::EXTRAS) {
        match d16_core::measure(w, &d16_cc::TargetSpec::d16(), false) {
            Ok((m, _)) => println!("{}: {}", w.name, m.exit),
            Err(e) => println!("{}: ERROR {e}", w.name),
        }
    }
}
