//! # d16-bench — benchmarks and the reproduction harness
//!
//! * `repro` (binary): regenerates every table and figure of the paper —
//!   `cargo run --release -p d16-bench --bin repro -- --all`.
//! * `checksums` (binary): prints each workload's pinned checksum.
//! * `benches/components.rs`: encoder/pipeline/cache/compiler throughput.
//! * `benches/paper_tables.rs`: per-table regeneration timing + sanity.
//! * `benches/ablations.rs`: design-choice ablations with asserted effect
//!   directions (delay-slot scheduling, `cmpeqi`, wrap-around prefetch).
