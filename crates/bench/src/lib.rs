//! # d16-bench — benchmarks and the reproduction harness
//!
//! * `repro` (binary): regenerates every table and figure of the paper —
//!   `cargo run --release -p d16-bench --bin repro -- --all`. With
//!   `--bench-json <path>` it also writes a machine-readable timing
//!   report (`BENCH_repro.json`) covering end-to-end suite collection and
//!   cache-grid regeneration.
//! * `checksums` (binary): prints each workload's pinned checksum.
//! * `benches/components.rs`: encoder/pipeline/cache/compiler throughput.
//! * `benches/paper_tables.rs`: per-table regeneration timing + sanity.
//! * `benches/ablations.rs`: design-choice ablations with asserted effect
//!   directions (delay-slot scheduling, `cmpeqi`, wrap-around prefetch).
//!
//! The benches use the in-repo [`harness`] below instead of an external
//! framework so the workspace builds offline with no registry access
//! (DESIGN.md §7); each bench is a plain `fn main()` with
//! `harness = false`.

pub mod harness {
    //! A deliberately small wall-clock timing harness: warm up, run a
    //! fixed number of timed iterations, report min / mean / max. The
    //! point is stable, machine-readable numbers with zero dependencies,
    //! not statistical rigor — for that, profile the `repro` binary.

    use std::hint::black_box;
    use std::time::Instant;

    /// One benchmark's timing summary. Durations are nanoseconds per
    /// iteration; `throughput_elems` (when set) lets reports derive
    /// elements/second.
    #[derive(Clone, Debug)]
    pub struct Measurement {
        pub name: String,
        pub iters: u32,
        pub min_ns: u128,
        pub mean_ns: u128,
        pub max_ns: u128,
        pub throughput_elems: Option<u64>,
    }

    impl Measurement {
        /// Elements per second at the mean iteration time, if a
        /// throughput was declared.
        pub fn elems_per_sec(&self) -> Option<f64> {
            let n = self.throughput_elems?;
            if self.mean_ns == 0 {
                return None;
            }
            Some(n as f64 * 1e9 / self.mean_ns as f64)
        }
    }

    /// Times `f` over `iters` iterations (plus one untimed warm-up),
    /// printing a one-line summary and returning the measurement. The
    /// closure's result is `black_box`ed so the work is not optimized
    /// away.
    pub fn bench<T>(name: &str, iters: u32, f: impl FnMut() -> T) -> Measurement {
        let m = quiet_bench(name, iters, f);
        print_line(&m);
        m
    }

    /// Like [`bench`] but tags the measurement with an element count so
    /// the summary line includes a throughput figure.
    pub fn bench_throughput<T>(
        name: &str,
        iters: u32,
        elems: u64,
        f: impl FnMut() -> T,
    ) -> Measurement {
        let mut m = quiet_bench(name, iters, f);
        m.throughput_elems = Some(elems);
        print_line(&m);
        m
    }

    /// [`bench`] without the summary line, for callers that render their
    /// own report (the `repro` binary's JSON output).
    pub fn quiet_bench<T>(name: &str, iters: u32, mut f: impl FnMut() -> T) -> Measurement {
        assert!(iters > 0, "iters must be positive");
        black_box(f());
        let mut min = u128::MAX;
        let mut max = 0u128;
        let mut total = 0u128;
        for _ in 0..iters {
            let t0 = Instant::now();
            black_box(f());
            let dt = t0.elapsed().as_nanos();
            min = min.min(dt);
            max = max.max(dt);
            total += dt;
        }
        Measurement {
            name: name.to_string(),
            iters,
            min_ns: min,
            mean_ns: total / u128::from(iters),
            max_ns: max,
            throughput_elems: None,
        }
    }

    fn print_line(m: &Measurement) {
        let fmt = |ns: u128| -> String {
            if ns >= 1_000_000_000 {
                format!("{:.3} s", ns as f64 / 1e9)
            } else if ns >= 1_000_000 {
                format!("{:.3} ms", ns as f64 / 1e6)
            } else if ns >= 1_000 {
                format!("{:.3} us", ns as f64 / 1e3)
            } else {
                format!("{ns} ns")
            }
        };
        match m.elems_per_sec() {
            Some(eps) => println!(
                "{:<44} {:>12}/iter  (min {:>12}, {} iters, {:.2} Melem/s)",
                m.name,
                fmt(m.mean_ns),
                fmt(m.min_ns),
                m.iters,
                eps / 1e6
            ),
            None => println!(
                "{:<44} {:>12}/iter  (min {:>12}, {} iters)",
                m.name,
                fmt(m.mean_ns),
                fmt(m.min_ns),
                m.iters
            ),
        }
    }
}

pub mod json {
    //! A minimal JSON value + serializer, enough for `BENCH_repro.json`.
    //! Numbers are emitted via Rust's `Display` for `f64`/`u64`/`i64`
    //! (non-finite floats become `null`, as JSON has no NaN/Inf).

    use std::fmt;

    /// A JSON value. Object keys keep insertion order.
    #[derive(Clone, Debug)]
    pub enum Json {
        Null,
        Bool(bool),
        Num(f64),
        Str(String),
        Arr(Vec<Json>),
        Obj(Vec<(String, Json)>),
    }

    impl Json {
        pub fn obj() -> Json {
            Json::Obj(Vec::new())
        }

        /// Appends a key/value pair; builder-style.
        pub fn with(mut self, key: &str, value: impl Into<Json>) -> Json {
            match &mut self {
                Json::Obj(pairs) => pairs.push((key.to_string(), value.into())),
                _ => panic!("Json::with on a non-object"),
            }
            self
        }

        /// Serializes with no insignificant whitespace.
        pub fn to_string_compact(&self) -> String {
            self.to_string()
        }

        /// Parses a JSON document (the subset this module emits: no
        /// exponent-less edge cases are excluded — standard numbers,
        /// strings with the common escapes, arrays, objects).
        ///
        /// # Errors
        ///
        /// Returns a message with the byte offset of the first error.
        pub fn parse(text: &str) -> Result<Json, String> {
            let b = text.as_bytes();
            let mut pos = 0usize;
            let v = parse_value(b, &mut pos)?;
            skip_ws(b, &mut pos);
            if pos != b.len() {
                return Err(format!("trailing data at byte {pos}"));
            }
            Ok(v)
        }

        /// The value under `key`, if this is an object that has it.
        pub fn get(&self, key: &str) -> Option<&Json> {
            match self {
                Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
                _ => None,
            }
        }

        /// The numeric value, if this is a number.
        pub fn as_f64(&self) -> Option<f64> {
            match self {
                Json::Num(n) => Some(*n),
                _ => None,
            }
        }

        /// The value as a non-negative integer, if it is one exactly.
        pub fn as_u64(&self) -> Option<u64> {
            let n = self.as_f64()?;
            (n >= 0.0 && n.fract() == 0.0 && n <= 9e15).then_some(n as u64)
        }

        /// The string value, if this is a string.
        pub fn as_str(&self) -> Option<&str> {
            match self {
                Json::Str(s) => Some(s),
                _ => None,
            }
        }

        /// The elements, if this is an array.
        pub fn as_arr(&self) -> Option<&[Json]> {
            match self {
                Json::Arr(items) => Some(items),
                _ => None,
            }
        }

        /// The key/value pairs, if this is an object.
        pub fn as_obj(&self) -> Option<&[(String, Json)]> {
            match self {
                Json::Obj(pairs) => Some(pairs),
                _ => None,
            }
        }
    }

    fn skip_ws(b: &[u8], pos: &mut usize) {
        while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
            *pos += 1;
        }
    }

    fn eat(b: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
        if b[*pos..].starts_with(lit.as_bytes()) {
            *pos += lit.len();
            Ok(())
        } else {
            Err(format!("expected `{lit}` at byte {pos}"))
        }
    }

    fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
        skip_ws(b, pos);
        match b.get(*pos) {
            None => Err("unexpected end of input".to_string()),
            Some(b'n') => eat(b, pos, "null").map(|()| Json::Null),
            Some(b't') => eat(b, pos, "true").map(|()| Json::Bool(true)),
            Some(b'f') => eat(b, pos, "false").map(|()| Json::Bool(false)),
            Some(b'"') => parse_string(b, pos).map(Json::Str),
            Some(b'[') => {
                *pos += 1;
                let mut items = Vec::new();
                skip_ws(b, pos);
                if b.get(*pos) == Some(&b']') {
                    *pos += 1;
                    return Ok(Json::Arr(items));
                }
                loop {
                    items.push(parse_value(b, pos)?);
                    skip_ws(b, pos);
                    match b.get(*pos) {
                        Some(b',') => *pos += 1,
                        Some(b']') => {
                            *pos += 1;
                            return Ok(Json::Arr(items));
                        }
                        _ => return Err(format!("expected `,` or `]` at byte {pos}")),
                    }
                }
            }
            Some(b'{') => {
                *pos += 1;
                let mut pairs = Vec::new();
                skip_ws(b, pos);
                if b.get(*pos) == Some(&b'}') {
                    *pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                loop {
                    skip_ws(b, pos);
                    let key = parse_string(b, pos)?;
                    skip_ws(b, pos);
                    eat(b, pos, ":")?;
                    pairs.push((key, parse_value(b, pos)?));
                    skip_ws(b, pos);
                    match b.get(*pos) {
                        Some(b',') => *pos += 1,
                        Some(b'}') => {
                            *pos += 1;
                            return Ok(Json::Obj(pairs));
                        }
                        _ => return Err(format!("expected `,` or `}}` at byte {pos}")),
                    }
                }
            }
            Some(_) => {
                let start = *pos;
                if b.get(*pos) == Some(&b'-') {
                    *pos += 1;
                }
                while *pos < b.len()
                    && matches!(b[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
                {
                    *pos += 1;
                }
                let s = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
                s.parse::<f64>()
                    .map(Json::Num)
                    .map_err(|_| format!("bad number `{s}` at byte {start}"))
            }
        }
    }

    fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
        if b.get(*pos) != Some(&b'"') {
            return Err(format!("expected string at byte {pos}"));
        }
        *pos += 1;
        let mut out = String::new();
        loop {
            match b.get(*pos) {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    *pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    *pos += 1;
                    match b.get(*pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = b
                                .get(*pos + 1..*pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| format!("bad \\u escape at byte {pos}"))?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape at byte {pos}"))?;
                            out.push(
                                char::from_u32(cp)
                                    .ok_or_else(|| format!("bad codepoint at byte {pos}"))?,
                            );
                            *pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {pos}")),
                    }
                    *pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let s = std::str::from_utf8(&b[*pos..]).map_err(|e| e.to_string())?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    *pos += c.len_utf8();
                }
            }
        }
    }

    impl From<bool> for Json {
        fn from(v: bool) -> Json {
            Json::Bool(v)
        }
    }
    impl From<f64> for Json {
        fn from(v: f64) -> Json {
            Json::Num(v)
        }
    }
    impl From<u32> for Json {
        fn from(v: u32) -> Json {
            Json::Num(f64::from(v))
        }
    }
    impl From<u64> for Json {
        fn from(v: u64) -> Json {
            Json::Num(v as f64)
        }
    }
    impl From<usize> for Json {
        fn from(v: usize) -> Json {
            Json::Num(v as f64)
        }
    }
    impl From<u128> for Json {
        fn from(v: u128) -> Json {
            Json::Num(v as f64)
        }
    }
    impl From<&str> for Json {
        fn from(v: &str) -> Json {
            Json::Str(v.to_string())
        }
    }
    impl From<String> for Json {
        fn from(v: String) -> Json {
            Json::Str(v)
        }
    }
    impl From<Vec<Json>> for Json {
        fn from(v: Vec<Json>) -> Json {
            Json::Arr(v)
        }
    }

    impl fmt::Display for Json {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                Json::Null => write!(f, "null"),
                Json::Bool(b) => write!(f, "{b}"),
                Json::Num(n) => {
                    if n.is_finite() {
                        // Integral values print without a trailing ".0" so
                        // counters read as integers.
                        if n.fract() == 0.0 && n.abs() < 9e15 {
                            write!(f, "{}", *n as i64)
                        } else {
                            write!(f, "{n}")
                        }
                    } else {
                        write!(f, "null")
                    }
                }
                Json::Str(s) => {
                    write!(f, "\"")?;
                    for c in s.chars() {
                        match c {
                            '"' => write!(f, "\\\"")?,
                            '\\' => write!(f, "\\\\")?,
                            '\n' => write!(f, "\\n")?,
                            '\r' => write!(f, "\\r")?,
                            '\t' => write!(f, "\\t")?,
                            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
                            c => write!(f, "{c}")?,
                        }
                    }
                    write!(f, "\"")
                }
                Json::Arr(items) => {
                    write!(f, "[")?;
                    for (i, v) in items.iter().enumerate() {
                        if i > 0 {
                            write!(f, ",")?;
                        }
                        write!(f, "{v}")?;
                    }
                    write!(f, "]")
                }
                Json::Obj(pairs) => {
                    write!(f, "{{")?;
                    for (i, (k, v)) in pairs.iter().enumerate() {
                        if i > 0 {
                            write!(f, ",")?;
                        }
                        write!(f, "{}:{v}", Json::Str(k.clone()))?;
                    }
                    write!(f, "}}")
                }
            }
        }
    }

    /// A [`super::harness::Measurement`] as a JSON object.
    pub fn measurement(m: &crate::harness::Measurement) -> Json {
        let mut j = Json::obj()
            .with("name", m.name.as_str())
            .with("iters", m.iters)
            .with("min_ns", m.min_ns)
            .with("mean_ns", m.mean_ns)
            .with("max_ns", m.max_ns);
        if let Some(n) = m.throughput_elems {
            j = j.with("throughput_elems", n);
        }
        j
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn escapes_and_shapes() {
            let j = Json::obj()
                .with("s", "a\"b\\c\nd")
                .with("n", 42u64)
                .with("f", 1.5f64)
                .with("b", true)
                .with("a", vec![Json::Null, Json::Num(3.0)]);
            assert_eq!(j.to_string(), r#"{"s":"a\"b\\c\nd","n":42,"f":1.5,"b":true,"a":[null,3]}"#);
        }

        #[test]
        fn non_finite_is_null() {
            assert_eq!(Json::Num(f64::NAN).to_string(), "null");
        }

        #[test]
        fn parse_round_trips_what_we_emit() {
            let j = Json::obj()
                .with("s", "a\"b\\c\nd")
                .with("n", 42u64)
                .with("f", -1.5f64)
                .with("b", true)
                .with("x", Json::Null)
                .with("a", vec![Json::Num(3.0), Json::Str("y".into())])
                .with("o", Json::obj().with("k", 7u64));
            let text = j.to_string();
            let parsed = Json::parse(&text).unwrap();
            assert_eq!(parsed.to_string(), text, "round trip is stable");
            assert_eq!(parsed.get("s").unwrap().as_str(), Some("a\"b\\c\nd"));
            assert_eq!(parsed.get("n").unwrap().as_u64(), Some(42));
            assert_eq!(parsed.get("f").unwrap().as_f64(), Some(-1.5));
            assert_eq!(parsed.get("a").unwrap().as_arr().unwrap().len(), 2);
            assert_eq!(parsed.get("o").unwrap().get("k").unwrap().as_u64(), Some(7));
            assert!(parsed.get("missing").is_none());
        }

        #[test]
        fn parse_accepts_whitespace_and_escapes() {
            let j = Json::parse(" { \"a\" : [ 1 , 2.5e1 ] , \"u\" : \"\\u0041\" } ").unwrap();
            assert_eq!(j.get("a").unwrap().as_arr().unwrap()[1].as_f64(), Some(25.0));
            assert_eq!(j.get("u").unwrap().as_str(), Some("A"));
        }

        #[test]
        fn parse_rejects_garbage() {
            assert!(Json::parse("").is_err());
            assert!(Json::parse("{").is_err());
            assert!(Json::parse("[1,]").is_err());
            assert!(Json::parse("{\"a\":1} extra").is_err());
            assert!(Json::parse("nul").is_err());
            assert!(Json::parse("\"open").is_err());
        }
    }
}

pub mod report {
    //! Rendering a [`d16_telemetry::Registry`] into the two halves of the
    //! `bench_repro/4` schema (see EXPERIMENTS.md):
    //!
    //! * [`metrics_json`] — the **deterministic projection**: counters and
    //!   span *counts* only. CI diffs this byte-for-byte across `--jobs`
    //!   values, so nothing wall-clock may appear in it.
    //! * [`spans_json`] — the full **timing report** for one registry's
    //!   spans (totals, min/max, log2 histograms), embedded in the
    //!   `--bench-json` output alongside the machine-local phase timings.

    use crate::json::Json;
    use d16_telemetry::{Registry, SpanStats};

    /// Registry counters as an ordered JSON object (name order).
    pub fn counters_json(reg: &Registry) -> Json {
        let mut j = Json::obj();
        for (name, v) in reg.counters() {
            j = j.with(name, v);
        }
        j
    }

    /// One span's full statistics, histogram trimmed to its last
    /// non-empty bucket (bucket `i` covers `[2^i, 2^(i+1))` ns).
    pub fn span_json(s: &SpanStats) -> Json {
        let buckets = s.hist.buckets();
        let used = buckets.iter().rposition(|&b| b != 0).map_or(0, |i| i + 1);
        let hist: Vec<Json> = buckets[..used].iter().map(|&b| Json::from(b)).collect();
        Json::obj()
            .with("count", s.count)
            .with("total_ns", s.total_ns)
            .with("min_ns", if s.count == 0 { 0 } else { s.min_ns })
            .with("max_ns", s.max_ns)
            .with("hist_log2_ns", hist)
    }

    /// All spans with full timing statistics (wall-clock: `--bench-json`
    /// only, never the metrics dump).
    pub fn spans_json(reg: &Registry) -> Json {
        let mut j = Json::obj();
        for (name, s) in reg.spans() {
            j = j.with(name, span_json(s));
        }
        j
    }

    /// Span execution counts only — the deterministic part of the spans.
    pub fn span_counts_json(reg: &Registry) -> Json {
        let mut j = Json::obj();
        for (name, s) in reg.spans() {
            j = j.with(name, s.count);
        }
        j
    }

    /// The deterministic `bench_repro/4` metrics document: schema tag,
    /// grid shape, full counter dump, span counts. Everything in it is a
    /// pure function of the measured programs — no worker count, no
    /// wall-clock, no `--engine` choice (both engines count the same
    /// events) — so it must be byte-identical for every `--jobs N` and
    /// either engine (CI enforces this).
    pub fn metrics_json(reg: &Registry, smoke: bool, cells: usize, traces: usize) -> Json {
        Json::obj()
            .with("schema", "bench_repro/4")
            .with("kind", "metrics")
            .with("smoke", smoke)
            .with("telemetry_enabled", d16_telemetry::ENABLED)
            .with("cells", cells)
            .with("traces", traces)
            .with("counters", counters_json(reg))
            .with("span_counts", span_counts_json(reg))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn metrics_json_is_deterministic_and_timing_free() {
            let mut reg = Registry::new();
            reg.add_counter("sim.z", 2);
            reg.add_counter("sim.a", 1);
            reg.record_span("phase", 123_456);
            reg.record_span("phase", 7);
            let a = metrics_json(&reg, false, 10, 2).to_string();
            let b = metrics_json(&reg.clone(), false, 10, 2).to_string();
            assert_eq!(a, b);
            assert!(!a.contains("ns"), "no wall-clock fields in the metrics dump: {a}");
            assert!(a.contains("\"span_counts\":{\"phase\":2}"), "{a}");
            let names: Vec<usize> = ["sim.a", "sim.z"].iter().map(|n| a.find(n).unwrap()).collect();
            assert!(names[0] < names[1], "counters render in name order");
        }

        #[test]
        fn span_json_trims_histogram() {
            let mut s = SpanStats::default();
            s.record(5); // bucket 2
            let j = span_json(&s).to_string();
            assert!(j.contains("\"hist_log2_ns\":[0,0,1]"), "{j}");
            assert!(j.contains("\"min_ns\":5"), "{j}");
            let empty = span_json(&SpanStats::default()).to_string();
            assert!(empty.contains("\"hist_log2_ns\":[]"), "{empty}");
            assert!(empty.contains("\"min_ns\":0"), "empty span renders 0, not u64::MAX");
        }
    }
}
