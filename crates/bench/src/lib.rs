//! # d16-bench — benchmarks and the reproduction harness
//!
//! * `repro` (binary): regenerates every table and figure of the paper —
//!   `cargo run --release -p d16-bench --bin repro -- --all`. With
//!   `--bench-json <path>` it also writes a machine-readable timing
//!   report (`BENCH_repro.json`) covering end-to-end suite collection and
//!   cache-grid regeneration.
//! * `checksums` (binary): prints each workload's pinned checksum.
//! * `benches/components.rs`: encoder/pipeline/cache/compiler throughput.
//! * `benches/paper_tables.rs`: per-table regeneration timing + sanity.
//! * `benches/ablations.rs`: design-choice ablations with asserted effect
//!   directions (delay-slot scheduling, `cmpeqi`, wrap-around prefetch).
//!
//! The benches use the in-repo [`harness`] below instead of an external
//! framework so the workspace builds offline with no registry access
//! (DESIGN.md §7); each bench is a plain `fn main()` with
//! `harness = false`.

pub mod harness {
    //! A deliberately small wall-clock timing harness: warm up, run a
    //! fixed number of timed iterations, report min / mean / max. The
    //! point is stable, machine-readable numbers with zero dependencies,
    //! not statistical rigor — for that, profile the `repro` binary.

    use std::hint::black_box;
    use std::time::Instant;

    /// One benchmark's timing summary. Durations are nanoseconds per
    /// iteration; `throughput_elems` (when set) lets reports derive
    /// elements/second.
    #[derive(Clone, Debug)]
    pub struct Measurement {
        pub name: String,
        pub iters: u32,
        pub min_ns: u128,
        pub mean_ns: u128,
        pub max_ns: u128,
        pub throughput_elems: Option<u64>,
    }

    impl Measurement {
        /// Elements per second at the mean iteration time, if a
        /// throughput was declared.
        pub fn elems_per_sec(&self) -> Option<f64> {
            let n = self.throughput_elems?;
            if self.mean_ns == 0 {
                return None;
            }
            Some(n as f64 * 1e9 / self.mean_ns as f64)
        }
    }

    /// Times `f` over `iters` iterations (plus one untimed warm-up),
    /// printing a one-line summary and returning the measurement. The
    /// closure's result is `black_box`ed so the work is not optimized
    /// away.
    pub fn bench<T>(name: &str, iters: u32, f: impl FnMut() -> T) -> Measurement {
        let m = quiet_bench(name, iters, f);
        print_line(&m);
        m
    }

    /// Like [`bench`] but tags the measurement with an element count so
    /// the summary line includes a throughput figure.
    pub fn bench_throughput<T>(
        name: &str,
        iters: u32,
        elems: u64,
        f: impl FnMut() -> T,
    ) -> Measurement {
        let mut m = quiet_bench(name, iters, f);
        m.throughput_elems = Some(elems);
        print_line(&m);
        m
    }

    /// [`bench`] without the summary line, for callers that render their
    /// own report (the `repro` binary's JSON output).
    pub fn quiet_bench<T>(name: &str, iters: u32, mut f: impl FnMut() -> T) -> Measurement {
        assert!(iters > 0, "iters must be positive");
        black_box(f());
        let mut min = u128::MAX;
        let mut max = 0u128;
        let mut total = 0u128;
        for _ in 0..iters {
            let t0 = Instant::now();
            black_box(f());
            let dt = t0.elapsed().as_nanos();
            min = min.min(dt);
            max = max.max(dt);
            total += dt;
        }
        Measurement {
            name: name.to_string(),
            iters,
            min_ns: min,
            mean_ns: total / u128::from(iters),
            max_ns: max,
            throughput_elems: None,
        }
    }

    fn print_line(m: &Measurement) {
        let fmt = |ns: u128| -> String {
            if ns >= 1_000_000_000 {
                format!("{:.3} s", ns as f64 / 1e9)
            } else if ns >= 1_000_000 {
                format!("{:.3} ms", ns as f64 / 1e6)
            } else if ns >= 1_000 {
                format!("{:.3} us", ns as f64 / 1e3)
            } else {
                format!("{ns} ns")
            }
        };
        match m.elems_per_sec() {
            Some(eps) => println!(
                "{:<44} {:>12}/iter  (min {:>12}, {} iters, {:.2} Melem/s)",
                m.name,
                fmt(m.mean_ns),
                fmt(m.min_ns),
                m.iters,
                eps / 1e6
            ),
            None => println!(
                "{:<44} {:>12}/iter  (min {:>12}, {} iters)",
                m.name,
                fmt(m.mean_ns),
                fmt(m.min_ns),
                m.iters
            ),
        }
    }
}

pub mod json {
    //! A minimal JSON value + serializer, enough for `BENCH_repro.json`.
    //! Numbers are emitted via Rust's `Display` for `f64`/`u64`/`i64`
    //! (non-finite floats become `null`, as JSON has no NaN/Inf).

    use std::fmt;

    /// A JSON value. Object keys keep insertion order.
    #[derive(Clone, Debug)]
    pub enum Json {
        Null,
        Bool(bool),
        Num(f64),
        Str(String),
        Arr(Vec<Json>),
        Obj(Vec<(String, Json)>),
    }

    impl Json {
        pub fn obj() -> Json {
            Json::Obj(Vec::new())
        }

        /// Appends a key/value pair; builder-style.
        pub fn with(mut self, key: &str, value: impl Into<Json>) -> Json {
            match &mut self {
                Json::Obj(pairs) => pairs.push((key.to_string(), value.into())),
                _ => panic!("Json::with on a non-object"),
            }
            self
        }

        /// Serializes with no insignificant whitespace.
        pub fn to_string_compact(&self) -> String {
            self.to_string()
        }
    }

    impl From<bool> for Json {
        fn from(v: bool) -> Json {
            Json::Bool(v)
        }
    }
    impl From<f64> for Json {
        fn from(v: f64) -> Json {
            Json::Num(v)
        }
    }
    impl From<u32> for Json {
        fn from(v: u32) -> Json {
            Json::Num(f64::from(v))
        }
    }
    impl From<u64> for Json {
        fn from(v: u64) -> Json {
            Json::Num(v as f64)
        }
    }
    impl From<usize> for Json {
        fn from(v: usize) -> Json {
            Json::Num(v as f64)
        }
    }
    impl From<u128> for Json {
        fn from(v: u128) -> Json {
            Json::Num(v as f64)
        }
    }
    impl From<&str> for Json {
        fn from(v: &str) -> Json {
            Json::Str(v.to_string())
        }
    }
    impl From<String> for Json {
        fn from(v: String) -> Json {
            Json::Str(v)
        }
    }
    impl From<Vec<Json>> for Json {
        fn from(v: Vec<Json>) -> Json {
            Json::Arr(v)
        }
    }

    impl fmt::Display for Json {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                Json::Null => write!(f, "null"),
                Json::Bool(b) => write!(f, "{b}"),
                Json::Num(n) => {
                    if n.is_finite() {
                        // Integral values print without a trailing ".0" so
                        // counters read as integers.
                        if n.fract() == 0.0 && n.abs() < 9e15 {
                            write!(f, "{}", *n as i64)
                        } else {
                            write!(f, "{n}")
                        }
                    } else {
                        write!(f, "null")
                    }
                }
                Json::Str(s) => {
                    write!(f, "\"")?;
                    for c in s.chars() {
                        match c {
                            '"' => write!(f, "\\\"")?,
                            '\\' => write!(f, "\\\\")?,
                            '\n' => write!(f, "\\n")?,
                            '\r' => write!(f, "\\r")?,
                            '\t' => write!(f, "\\t")?,
                            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
                            c => write!(f, "{c}")?,
                        }
                    }
                    write!(f, "\"")
                }
                Json::Arr(items) => {
                    write!(f, "[")?;
                    for (i, v) in items.iter().enumerate() {
                        if i > 0 {
                            write!(f, ",")?;
                        }
                        write!(f, "{v}")?;
                    }
                    write!(f, "]")
                }
                Json::Obj(pairs) => {
                    write!(f, "{{")?;
                    for (i, (k, v)) in pairs.iter().enumerate() {
                        if i > 0 {
                            write!(f, ",")?;
                        }
                        write!(f, "{}:{v}", Json::Str(k.clone()))?;
                    }
                    write!(f, "}}")
                }
            }
        }
    }

    /// A [`super::harness::Measurement`] as a JSON object.
    pub fn measurement(m: &crate::harness::Measurement) -> Json {
        let mut j = Json::obj()
            .with("name", m.name.as_str())
            .with("iters", m.iters)
            .with("min_ns", m.min_ns)
            .with("mean_ns", m.mean_ns)
            .with("max_ns", m.max_ns);
        if let Some(n) = m.throughput_elems {
            j = j.with("throughput_elems", n);
        }
        j
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn escapes_and_shapes() {
            let j = Json::obj()
                .with("s", "a\"b\\c\nd")
                .with("n", 42u64)
                .with("f", 1.5f64)
                .with("b", true)
                .with("a", vec![Json::Null, Json::Num(3.0)]);
            assert_eq!(
                j.to_string(),
                r#"{"s":"a\"b\\c\nd","n":42,"f":1.5,"b":true,"a":[null,3]}"#
            );
        }

        #[test]
        fn non_finite_is_null() {
            assert_eq!(Json::Num(f64::NAN).to_string(), "null");
        }
    }
}
