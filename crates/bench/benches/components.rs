//! Component throughput benchmarks: the substrates the reproduction is
//! built on — encoders, the pipeline interpreter, the cache simulator, and
//! the compiler itself.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use d16_cc::TargetSpec;
use d16_isa::{AluOp, Gpr, Insn, Isa};
use d16_mem::CacheSystem;
use d16_sim::{AccessSink, Machine, NullSink};
use std::hint::black_box;

fn bench_encoders(c: &mut Criterion) {
    let insns: Vec<Insn> = (0..1024)
        .map(|i| Insn::AluI {
            op: AluOp::Add,
            rd: Gpr::new((i % 12 + 2) as u8),
            rs1: Gpr::new((i % 12 + 2) as u8),
            imm: (i % 31) as i32,
        })
        .collect();
    let mut g = c.benchmark_group("encoders");
    g.throughput(Throughput::Elements(insns.len() as u64));
    g.bench_function("d16_encode", |b| {
        b.iter(|| {
            for i in &insns {
                black_box(d16_isa::d16::encode(black_box(i)).unwrap());
            }
        })
    });
    g.bench_function("dlxe_encode", |b| {
        b.iter(|| {
            for i in &insns {
                black_box(d16_isa::dlxe::encode(black_box(i)).unwrap());
            }
        })
    });
    g.bench_function("d16_decode", |b| {
        let words: Vec<u16> = insns.iter().map(|i| d16_isa::d16::encode(i).unwrap()).collect();
        b.iter(|| {
            for w in &words {
                black_box(d16_isa::d16::decode(black_box(*w)).unwrap());
            }
        })
    });
    g.finish();
}

fn bench_pipeline(c: &mut Criterion) {
    let w = d16_workloads::by_name("towers").unwrap();
    let mut g = c.benchmark_group("pipeline");
    for spec in [TargetSpec::d16(), TargetSpec::dlxe()] {
        let image = d16_cc::compile_to_image(&[w.source], &spec).unwrap();
        // Instruction count is fixed; report simulated instructions/sec.
        let mut probe = Machine::load(&image);
        probe.run(u64::MAX / 2, &mut NullSink).unwrap();
        g.throughput(Throughput::Elements(probe.stats().insns));
        g.bench_function(format!("towers_{}", spec.isa.name()), |b| {
            b.iter_batched(
                || Machine::load(&image),
                |mut m| {
                    m.run(u64::MAX / 2, &mut NullSink).unwrap();
                    black_box(m.stats().insns)
                },
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

fn bench_cache_replay(c: &mut Criterion) {
    let w = d16_workloads::by_name("assem").unwrap();
    let image = d16_cc::compile_to_image(&[w.source], &TargetSpec::d16()).unwrap();
    let mut m = Machine::load(&image);
    let mut rec = d16_sim::TraceRecorder::new();
    m.run(u64::MAX / 2, &mut rec).unwrap();
    let mut g = c.benchmark_group("cache");
    g.throughput(Throughput::Elements(rec.trace.len() as u64));
    g.bench_function("replay_4k_paper_config", |b| {
        b.iter(|| {
            let mut cs = CacheSystem::paper(4096);
            rec.replay(&mut cs);
            black_box(cs.total_misses())
        })
    });
    g.finish();
}

fn bench_compiler(c: &mut Criterion) {
    let w = d16_workloads::by_name("latex").unwrap();
    let mut g = c.benchmark_group("compiler");
    for spec in [TargetSpec::d16(), TargetSpec::dlxe()] {
        g.bench_function(format!("compile_latex_{}", spec.isa.name()), |b| {
            b.iter(|| black_box(d16_cc::compile_to_asm(&[w.source], &spec).unwrap()))
        });
    }
    g.bench_function("assemble_link_latex_d16", |b| {
        let asm = d16_cc::compile_to_asm(&[w.source], &TargetSpec::d16()).unwrap();
        b.iter(|| black_box(d16_asm::build(Isa::D16, &[&asm]).unwrap()))
    });
    g.finish();
}

fn bench_fetch_buffer(c: &mut Criterion) {
    let mut g = c.benchmark_group("fetch_buffer");
    let addrs: Vec<u32> = (0..65536u32).map(|i| 0x1000 + (i * 2) % 8192).collect();
    g.throughput(Throughput::Elements(addrs.len() as u64));
    g.bench_function("sequential_stream", |b| {
        b.iter(|| {
            let mut fb = d16_mem::FetchBuffer::new(8);
            for &a in &addrs {
                fb.fetch(a, 2);
            }
            black_box(fb.irequests)
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_encoders, bench_pipeline, bench_cache_replay, bench_compiler, bench_fetch_buffer
}
criterion_main!(benches);
