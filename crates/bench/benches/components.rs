//! Component throughput benchmarks: the substrates the reproduction is
//! built on — encoders, the pipeline interpreter, the cache simulator, and
//! the compiler itself. Plain `fn main()` on the in-repo harness
//! (`d16_bench::harness`); run with `cargo bench -p d16-bench`.

use d16_bench::harness::{bench, bench_throughput};
use d16_cc::TargetSpec;
use d16_isa::{AluOp, Gpr, Insn, Isa};
use d16_mem::CacheSystem;
use d16_sim::{AccessSink, Machine, NullSink};
use std::hint::black_box;

fn bench_encoders() {
    let insns: Vec<Insn> = (0..1024)
        .map(|i| Insn::AluI {
            op: AluOp::Add,
            rd: Gpr::new((i % 12 + 2) as u8),
            rs1: Gpr::new((i % 12 + 2) as u8),
            imm: (i % 31),
        })
        .collect();
    let n = insns.len() as u64;
    bench_throughput("encoders/d16_encode", 200, n, || {
        for i in &insns {
            black_box(d16_isa::d16::encode(black_box(i)).unwrap());
        }
    });
    bench_throughput("encoders/dlxe_encode", 200, n, || {
        for i in &insns {
            black_box(d16_isa::dlxe::encode(black_box(i)).unwrap());
        }
    });
    let words: Vec<u16> = insns.iter().map(|i| d16_isa::d16::encode(i).unwrap()).collect();
    bench_throughput("encoders/d16_decode", 200, n, || {
        for w in &words {
            black_box(d16_isa::d16::decode(black_box(*w)).unwrap());
        }
    });
}

fn bench_pipeline() {
    let w = d16_workloads::by_name("towers").unwrap();
    for spec in [TargetSpec::d16(), TargetSpec::dlxe()] {
        let image = d16_cc::compile_to_image(&[w.source], &spec).unwrap();
        // Instruction count is fixed; report simulated instructions/sec.
        let mut probe = Machine::load(&image);
        probe.run(u64::MAX / 2, &mut NullSink).unwrap();
        let insns = probe.stats().insns;
        bench_throughput(&format!("pipeline/towers_{}", spec.isa.name()), 20, insns, || {
            let mut m = Machine::load(&image);
            m.run(u64::MAX / 2, &mut NullSink).unwrap();
            black_box(m.stats().insns)
        });
    }
}

fn bench_cache_replay() {
    let w = d16_workloads::by_name("assem").unwrap();
    let image = d16_cc::compile_to_image(&[w.source], &TargetSpec::d16()).unwrap();
    let mut m = Machine::load(&image);
    let mut rec = d16_sim::TraceRecorder::new();
    m.run(u64::MAX / 2, &mut rec).unwrap();
    bench_throughput("cache/replay_4k_paper_config", 20, rec.len() as u64, || {
        let mut cs = CacheSystem::paper(4096).unwrap();
        rec.replay(&mut cs);
        black_box(cs.total_misses())
    });
}

fn bench_compiler() {
    let w = d16_workloads::by_name("latex").unwrap();
    for spec in [TargetSpec::d16(), TargetSpec::dlxe()] {
        bench(&format!("compiler/compile_latex_{}", spec.isa.name()), 20, || {
            black_box(d16_cc::compile_to_asm(&[w.source], &spec).unwrap())
        });
    }
    let asm = d16_cc::compile_to_asm(&[w.source], &TargetSpec::d16()).unwrap();
    bench("compiler/assemble_link_latex_d16", 20, || {
        black_box(d16_asm::build(Isa::D16, &[&asm]).unwrap())
    });
}

fn bench_fetch_buffer() {
    let addrs: Vec<u32> = (0..65536u32).map(|i| 0x1000 + (i * 2) % 8192).collect();
    bench_throughput("fetch_buffer/sequential_stream", 50, addrs.len() as u64, || {
        let mut fb = d16_mem::FetchBuffer::new(8);
        for &a in &addrs {
            fb.fetch(a, 2);
        }
        black_box(fb.irequests)
    });
}

fn main() {
    bench_encoders();
    bench_pipeline();
    bench_cache_replay();
    bench_compiler();
    bench_fetch_buffer();
}
