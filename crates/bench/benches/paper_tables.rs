//! Table/figure regeneration benchmarks: one target per family of paper
//! results, each timing the full regeneration pipeline (compile → run →
//! derive rows) on a representative subset so `cargo bench` doubles as a
//! continuous check that every experiment still produces sane values.
//!
//! The full-suite regeneration lives in the `repro` binary
//! (`cargo run --release -p d16-bench --bin repro -- --all`), which also
//! emits the machine-readable `BENCH_repro.json` timing report.

use d16_bench::harness::bench;
use d16_core::{base_specs, experiments as ex, standard_specs, Suite};
use std::hint::black_box;

fn subset(names: &[&str], full_grid: bool, traces: bool) -> Suite {
    let ws: Vec<_> = names.iter().map(|n| d16_workloads::by_name(n).unwrap()).collect();
    let specs = if full_grid { standard_specs() } else { base_specs().to_vec() };
    Suite::collect_for(&ws, &specs, traces).expect("collect")
}

/// Figures 4/5 and Tables 6/7: density and path length.
fn bench_density_and_path() {
    bench("fig4_fig5_density_path_subset", 10, || {
        let suite = subset(&["towers", "queens", "grep"], true, false);
        let density = ex::fig4_relative_density(&suite);
        let path = ex::fig5_path_length(&suite);
        assert!(ex::average(&density) > 1.0, "DLXe must be bigger");
        assert!(ex::average(&path) < 1.0, "DLXe path must be shorter");
        black_box((density, path))
    });
}

/// Figures 6-12, Tables 3/5: the feature-ablation grid.
fn bench_feature_grid() {
    bench("feature_grid_subset", 10, || {
        let suite = subset(&["bubblesort", "dhrystone"], true, false);
        let size = ex::code_size_grid(&suite);
        let path = ex::path_length_grid(&suite);
        let traffic = ex::table3_data_traffic(&suite);
        black_box((size, path, traffic))
    });
}

/// Figures 14/15, Tables 11/12: the cacheless memory sweep.
fn bench_cacheless() {
    bench("cacheless_cpi_subset", 10, || {
        let suite = subset(&["pi", "towers"], false, false);
        let f14 = ex::fig14_cacheless_cpi(&suite, 4);
        let f15 = ex::fig15_fetch_saturation(&suite, 4);
        let t11 = ex::table11_12_cycle_ratios(&suite, 4);
        // Nonzero latency must erode the DLXe advantage.
        assert!(t11.iter().all(|r| r.ratios[3] > r.ratios[0]));
        black_box((f14, f15, t11))
    });
}

/// Figures 16-19, Tables 13-16: the cache experiments. All four families
/// extract from the suite's memoized single-pass grid replay, so this
/// also times the `CacheBank` path.
fn bench_cache_experiments() {
    bench("cache_experiments_assem", 10, || {
        let suite = subset(&["assem"], true, true);
        let f16 = ex::fig16_icache_miss(&suite, "assem").expect("fig16");
        let f17 = ex::fig17_18_cache_cpi(&suite, "assem", 4096).expect("fig17/18");
        let f19 = ex::fig19_cache_traffic(&suite, "assem").expect("fig19");
        let grid = ex::miss_rate_grid(&suite, "assem").expect("grid");
        black_box((f16, f17, f19, grid))
    });
}

fn main() {
    bench_density_and_path();
    bench_feature_grid();
    bench_cacheless();
    bench_cache_experiments();
}
