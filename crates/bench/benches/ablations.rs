//! Ablation benchmarks for the design choices DESIGN.md calls out:
//!
//! * branch-delay-slot scheduling on vs off (compiler),
//! * the D16 `cmpeqi` extension the paper's §3.3.3 discusses,
//! * wrap-around sub-block prefetch vs none (cache).
//!
//! Each target times the measurement *and* asserts the expected direction
//! of the effect, so `cargo bench` validates the ablations.

use d16_bench::harness::bench;
use d16_cc::TargetSpec;
use d16_mem::{CacheConfig, CacheSystem};
use d16_sim::{Machine, NullSink, TraceRecorder};
use std::hint::black_box;

fn run_insns(src: &str, spec: &TargetSpec) -> (u64, u64) {
    let image = d16_cc::compile_to_image(&[src], spec).unwrap();
    let mut m = Machine::load(&image);
    m.run(u64::MAX / 2, &mut NullSink).unwrap();
    (m.stats().insns, m.stats().nops)
}

/// Delay-slot scheduling: with the scheduler off every slot is a `nop`;
/// path length must grow.
fn ablate_delay_slots() {
    let w = d16_workloads::by_name("queens").unwrap();
    bench("ablation_delay_slot_scheduling", 10, || {
        let on = TargetSpec::d16();
        let mut off = TargetSpec::d16();
        off.schedule_delay_slots = false;
        let (insns_on, nops_on) = run_insns(w.source, &on);
        let (insns_off, nops_off) = run_insns(w.source, &off);
        assert!(
            insns_off > insns_on,
            "unscheduled slots must lengthen the path: {insns_off} vs {insns_on}"
        );
        assert!(nops_off > nops_on);
        black_box((insns_on, insns_off))
    });
}

/// The cmpeqi extension: §3.3.3 estimates "up to 2 percent"; enabling it
/// must never lengthen the path.
fn ablate_cmpeqi() {
    let w = d16_workloads::by_name("assem").unwrap();
    bench("ablation_cmpeqi_extension", 10, || {
        let base = TargetSpec::d16();
        let mut ext = TargetSpec::d16();
        ext.cmpeqi = true;
        let (insns_base, _) = run_insns(w.source, &base);
        let (insns_ext, _) = run_insns(w.source, &ext);
        assert!(
            insns_ext <= insns_base,
            "cmpeqi must not lengthen the path: {insns_ext} vs {insns_base}"
        );
        black_box((insns_base, insns_ext))
    });
}

/// Wrap-around prefetch: the paper's cache organization prefetches the
/// next sub-block on read misses; turning it off must not reduce misses.
fn ablate_prefetch() {
    let w = d16_workloads::by_name("latex").unwrap();
    let image = d16_cc::compile_to_image(&[w.source], &TargetSpec::d16()).unwrap();
    let mut m = Machine::load(&image);
    let mut rec = TraceRecorder::new();
    m.run(u64::MAX / 2, &mut rec).unwrap();
    bench("ablation_wraparound_prefetch", 10, || {
        let mk = |prefetch| CacheConfig {
            size: 1024,
            block: 32,
            sub_block: 8,
            assoc: 1,
            wrap_prefetch: prefetch,
        };
        let mut with = CacheSystem::new(mk(true), mk(true)).unwrap();
        rec.replay(&mut with);
        let mut without = CacheSystem::new(mk(false), mk(false)).unwrap();
        rec.replay(&mut without);
        assert!(
            with.icache().read_misses <= without.icache().read_misses,
            "prefetch must not increase demand misses"
        );
        black_box((with.total_misses(), without.total_misses()))
    });
}

fn main() {
    ablate_delay_slots();
    ablate_cmpeqi();
    ablate_prefetch();
}
