//! CLI tests for the artifact store and workload filter: a warm `--store`
//! run's diffable outputs must be byte-identical to the cold run's, store
//! damage must degrade to recomputation, and the new flags must fail
//! clean (exit 2, named cause) on misuse.

use d16_testkit::TempDir;
use std::process::Command;

fn repro() -> Command {
    Command::new(env!("CARGO_BIN_EXE_repro"))
}

#[test]
fn warm_store_run_is_byte_identical_and_survives_corruption() {
    let dir = TempDir::new("store-cli");
    let store = dir.path().join("store");
    let run = |tag: &str| {
        let metrics = dir.path().join(format!("m_{tag}.json"));
        let out = repro()
            .args(["--only", "towers", "--store"])
            .arg(&store)
            .arg("--metrics-json")
            .arg(&metrics)
            .output()
            .expect("run repro");
        assert!(out.status.success(), "{tag} stderr: {}", String::from_utf8_lossy(&out.stderr));
        (out.stdout, std::fs::read_to_string(metrics).expect("metrics written"), out.stderr)
    };

    let (cold_out, cold_metrics, cold_err) = run("cold");
    assert!(String::from_utf8_lossy(&cold_err).contains("misses"), "cold run reports misses");

    let (warm_out, warm_metrics, warm_err) = run("warm");
    assert_eq!(cold_out, warm_out, "stdout must be byte-identical cold vs warm");
    assert_eq!(cold_metrics, warm_metrics, "metrics dump must be byte-identical cold vs warm");
    let warm_err = String::from_utf8_lossy(&warm_err);
    assert!(warm_err.contains(" 0 misses"), "warm run is all hits: {warm_err}");
    for leak in ["store.hit", "store.miss", "store.write", "corrupt_evicted"] {
        assert!(
            !cold_metrics.contains(leak),
            "store accounting ({leak}) must not leak into the metrics dump"
        );
    }

    // Flip bytes in the middle of one committed cell: the third run must
    // notice, evict, recompute, and still match byte for byte.
    let entry = walk_one_entry(&store.join("cell"));
    let mut raw = std::fs::read(&entry).unwrap();
    let mid = raw.len() / 2;
    raw[mid] ^= 0xFF;
    std::fs::write(&entry, raw).unwrap();

    let (third_out, third_metrics, third_err) = run("corrupt");
    assert_eq!(cold_out, third_out, "stdout must survive store corruption");
    assert_eq!(cold_metrics, third_metrics, "metrics must survive store corruption");
    let third_err = String::from_utf8_lossy(&third_err);
    assert!(third_err.contains("1 corrupt evicted"), "eviction reported: {third_err}");
}

/// The first `.bin` entry under a store kind directory.
fn walk_one_entry(kind_dir: &std::path::Path) -> std::path::PathBuf {
    let mut stack = vec![kind_dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        for e in std::fs::read_dir(&d).expect("read store dir") {
            let p = e.unwrap().path();
            if p.is_dir() {
                stack.push(p);
            } else if p.extension().is_some_and(|x| x == "bin") {
                return p;
            }
        }
    }
    panic!("no committed entries under {}", kind_dir.display());
}

#[test]
fn only_rejects_unknown_workloads_with_the_valid_list() {
    let out = repro().args(["--only", "towers,bogus"]).output().expect("run repro");
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown workload `bogus`"), "{err}");
    for name in ["ackermann", "towers", "whetstone"] {
        assert!(err.contains(name), "valid names listed: {err}");
    }
}

#[test]
fn only_conflicts_with_smoke_and_all() {
    for extra in ["--smoke", "--all"] {
        let out = repro().args(["--only", "towers", extra]).output().expect("run repro");
        assert_eq!(out.status.code(), Some(2), "{extra}");
        assert!(String::from_utf8_lossy(&out.stderr).contains("--only"), "{extra}");
    }
}

#[test]
fn store_verify_requires_a_store() {
    let out = repro().arg("--store-verify").output().expect("run repro");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--store DIR"));
}

#[test]
fn store_flags_require_values() {
    for flag in ["--store", "--only"] {
        let out = repro().arg(flag).output().expect("run repro");
        assert_eq!(out.status.code(), Some(2), "{flag}");
        assert!(String::from_utf8_lossy(&out.stderr).contains("requires a value"), "{flag}");
    }
}

#[test]
fn no_store_overrides_store() {
    let dir = TempDir::new("no-store");
    let store = dir.path().join("never-created");
    let out = repro()
        .args(["--only", "towers", "--no-store", "--store"])
        .arg(&store)
        .output()
        .expect("run repro");
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    assert!(!store.exists(), "--no-store must win regardless of flag order");
    assert!(!String::from_utf8_lossy(&out.stderr).contains("store:"), "no accounting line");
}
