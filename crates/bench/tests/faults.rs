//! Fault-injection tests: each `D16_FAILPOINTS` point is armed in a
//! `repro` subprocess (the failpoint env is read once per process, so
//! in-process arming is impossible) and the exit-code contract is
//! pinned: `2` for user errors, `3` for a degraded-but-complete run,
//! with a clean stderr diagnostic and no panic/backtrace either way.
//!
//! See tests/README.md ("faults") and DESIGN.md ("Error taxonomy").

use std::process::{Command, Output};

fn repro() -> Command {
    Command::new(env!("CARGO_BIN_EXE_repro"))
}

fn run_with_fault(fault: &str, args: &[&str]) -> Output {
    repro().env("D16_FAILPOINTS", fault).args(args).output().expect("run repro")
}

/// A degraded run must diagnose, not abort: no panic message, no
/// backtrace, on either stream.
fn assert_no_panic(out: &Output) {
    let err = String::from_utf8_lossy(&out.stderr);
    let text = String::from_utf8_lossy(&out.stdout);
    for hay in [&err, &text] {
        assert!(!hay.contains("panicked at"), "panic leaked: {hay}");
        assert!(!hay.contains("RUST_BACKTRACE"), "backtrace hint leaked: {hay}");
    }
}

#[test]
fn smoke_drift_is_a_user_error_with_valid_names() {
    let out = run_with_fault("smoke-drift", &["--smoke"]);
    assert_eq!(out.status.code(), Some(2), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    assert_no_panic(&out);
    let err = String::from_utf8_lossy(&out.stderr);
    // Same shape as the `--only` unknown-workload diagnostic.
    assert!(err.contains("unknown workload `gone-workload`"), "{err}");
    assert!(err.contains("valid names:") && err.contains("towers"), "{err}");
}

#[test]
fn store_io_errors_degrade_to_recomputation() {
    let dir = d16_testkit::TempDir::new("fault-store-io");
    let store = dir.path().join("store");
    let store = store.to_str().unwrap();

    let out = run_with_fault("store-io", &["--smoke", "--store", store]);
    assert_eq!(out.status.code(), Some(3), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    assert_no_panic(&out);
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("I/O errors (degraded to recomputation)"), "{err}");
    // Every figure the clean smoke run produces is still there.
    let faulted = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(faulted.contains("Figure 16: I-cache miss rates, assem"), "{faulted}");

    // The results are byte-identical to a storeless run, and the store
    // was not corrupted: a clean warm run afterwards works and exits 0.
    let clean = repro().arg("--smoke").output().expect("run repro");
    assert!(clean.status.success());
    assert_eq!(faulted, String::from_utf8_lossy(&clean.stdout), "stdout must not degrade");
    let warm = repro().args(["--smoke", "--store", store]).output().expect("run repro");
    assert_eq!(warm.status.code(), Some(0), "{}", String::from_utf8_lossy(&warm.stderr));
    assert_eq!(String::from_utf8_lossy(&warm.stdout), faulted);
}

#[test]
fn regalloc_divergence_skips_the_workload_and_continues() {
    let out = run_with_fault("regalloc-diverge=ack", &["--only", "ackermann,towers"]);
    assert_eq!(out.status.code(), Some(3), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    assert_no_panic(&out);
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains("skipped (ackermann, D16/16/2)") && err.contains("did not converge for `ack`"),
        "{err}"
    );
    // The other workload's cells completed and were reported.
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("towers"), "{text}");
    assert!(!text.contains("ackermann"), "skipped rows must not appear: {text}");
}

#[test]
fn truncated_trace_skips_the_cell() {
    let out = run_with_fault("trace-truncate=assem", &["--smoke"]);
    assert_eq!(out.status.code(), Some(3), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    assert_no_panic(&out);
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("skipped (assem, ") && err.contains("truncated operand"), "{err}");
    // towers (untraced) still reports in full.
    assert!(String::from_utf8_lossy(&out.stdout).contains("towers"));
}

#[test]
fn bad_access_width_poisons_the_recorder_not_the_process() {
    let out = run_with_fault("bad-access-width=assem", &["--smoke"]);
    assert_eq!(out.status.code(), Some(3), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    assert_no_panic(&out);
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unencodable access width 3"), "{err}");
    assert!(String::from_utf8_lossy(&out.stdout).contains("towers"));
}

#[test]
fn off_grid_config_skips_cache_reports_with_the_config_error() {
    let out = run_with_fault("off-grid-config", &["--smoke"]);
    assert_eq!(out.status.code(), Some(3), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    assert_no_panic(&out);
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("is not on the experiment grid"), "{err}");
    // The non-cache figures still rendered.
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("Figure 4: D16 relative density"), "{text}");
    assert!(text.contains("Figure 16, assem: skipped"), "{text}");
}

#[test]
fn unarmed_runs_are_unaffected_by_the_fault_plumbing() {
    // An explicitly-empty failpoint list behaves exactly like no list.
    let out = run_with_fault("", &["--smoke"]);
    assert_eq!(out.status.code(), Some(0), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    assert_no_panic(&out);
}
