//! Tests for the `repro` command-line interface: argument handling, plus
//! one real end-to-end pass through `--smoke` (2 workloads x 2 targets,
//! the cache grid on the one collected benchmark, and the `--bench-json`
//! timing report). The full regeneration is exercised by `--all` in
//! release runs.

use std::process::Command;

fn repro() -> Command {
    Command::new(env!("CARGO_BIN_EXE_repro"))
}

#[test]
fn list_prints_available_experiments() {
    let out = repro().arg("--list").output().expect("run repro");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("figures: 4 5 6 7 8 9 10 11 12 13 14 15 16 17 18 19"));
    assert!(text.contains("tables:  3 4 5 6 7 8 9 10 11 12 13 14 15 16"));
    assert!(text.contains("fpu-sweep"));
}

#[test]
fn unknown_flag_is_rejected() {
    let out = repro().arg("--nonsense").output().expect("run repro");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown argument"));
}

#[test]
fn smoke_rejects_all() {
    let out = repro().args(["--smoke", "--all"]).output().expect("run repro");
    assert!(!out.status.success());
}

#[test]
fn unknown_only_workload_lists_the_whole_registry() {
    let out = repro().args(["--only", "nonesuch"]).output().expect("run repro");
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("--only: unknown workload `nonesuch`; valid names:"), "{err}");
    // The diagnostic must list every name `by_name` resolves — the
    // paper's suite AND the extension workloads, which `--only` accepts.
    for name in ["towers", "whetstone", "fsm", "lexer", "compress", "eqntott"] {
        assert!(err.contains(name), "diagnostic must list `{name}`: {err}");
    }
}

#[test]
fn extended_rejects_smoke_and_only() {
    for args in [["--extended", "--smoke"], ["--extended", "--only"]] {
        let mut cmd = repro();
        cmd.args(args);
        if args[1] == "--only" {
            cmd.arg("towers");
        }
        let out = cmd.output().expect("run repro");
        assert_eq!(out.status.code(), Some(2), "{args:?}");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(err.contains("--extended needs the full grid"), "{args:?}: {err}");
    }
}

#[test]
fn zero_jobs_is_rejected() {
    let out = repro().args(["--jobs", "0", "--list"]).output().expect("run repro");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--jobs"));
}

#[test]
fn missing_flag_value_is_rejected() {
    for flag in ["--jobs", "--fig", "--table", "--bench-json", "--metrics-json"] {
        let out = repro().arg(flag).output().expect("run repro");
        assert!(!out.status.success(), "{flag} without a value must fail");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(err.contains("requires a value"), "{flag}: {err}");
    }
}

#[test]
fn non_numeric_flag_value_is_rejected() {
    for flag in ["--jobs", "--fig", "--table"] {
        let out = repro().args([flag, "banana"]).output().expect("run repro");
        assert!(!out.status.success(), "{flag} banana must fail");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(err.contains("invalid value"), "{flag}: {err}");
    }
}

#[test]
fn missing_parent_dir_fails_fast_with_exit_2() {
    // The bad path must be rejected up front — before any collection —
    // not after minutes of measurement. Both JSON flags get the check.
    for flag in ["--bench-json", "--metrics-json"] {
        let start = std::time::Instant::now();
        let out = repro()
            .args(["--smoke", flag, "/nonexistent-d16-dir/report.json"])
            .output()
            .expect("run repro");
        let elapsed = start.elapsed();
        assert_eq!(out.status.code(), Some(2), "{flag} must exit 2");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(
            err.contains(flag)
                && err.contains("/nonexistent-d16-dir")
                && err.contains("does not exist"),
            "{flag} must name the flag and the missing directory: {err}"
        );
        assert!(!err.contains("collecting"), "must fail before collection starts: {err}");
        assert!(elapsed.as_secs() < 5, "{flag}: failed after {elapsed:?}, not up front");
    }
}

#[test]
fn metrics_json_is_identical_across_job_counts() {
    let dir = std::env::temp_dir();
    let p1 = dir.join(format!("metrics_j1_{}.json", std::process::id()));
    let p2 = dir.join(format!("metrics_j2_{}.json", std::process::id()));
    for (jobs, path) in [("1", &p1), ("2", &p2)] {
        let out = repro()
            .args(["--smoke", "--jobs", jobs, "--metrics-json"])
            .arg(path)
            .output()
            .expect("run repro");
        assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    }
    let m1 = std::fs::read_to_string(&p1).expect("jobs=1 metrics");
    let m2 = std::fs::read_to_string(&p2).expect("jobs=2 metrics");
    std::fs::remove_file(&p1).ok();
    std::fs::remove_file(&p2).ok();
    assert_eq!(m1, m2, "metrics dump must be byte-identical for every --jobs");
    for needle in ["\"schema\":\"bench_repro/4\"", "\"kind\":\"metrics\"", "\"span_counts\":"] {
        assert!(m1.contains(needle), "missing {needle} in {m1}");
    }
    assert!(!m1.contains("\"jobs\""), "worker count must not leak into the metrics dump");
    assert!(!m1.contains("\"engine\""), "engine choice must not leak into the metrics dump");
    assert!(!m1.contains("_ns\""), "wall-clock must not leak into the metrics dump");
}

#[test]
fn unknown_engine_is_rejected() {
    let out = repro().args(["--engine", "jit", "--list"]).output().expect("run repro");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("--engine") && err.contains("jit"), "{err}");
}

#[test]
fn engines_produce_identical_diffable_output() {
    // The whole point of the block engine: same stdout, same metrics
    // dump, byte for byte — only the wall clock moves.
    let dir = std::env::temp_dir();
    let pid = std::process::id();
    let mut outputs = Vec::new();
    for eng in ["interp", "blocks"] {
        let path = dir.join(format!("metrics_{eng}_{pid}.json"));
        let out = repro()
            .args(["--smoke", "--engine", eng, "--metrics-json"])
            .arg(&path)
            .output()
            .expect("run repro");
        assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
        let metrics = std::fs::read_to_string(&path).expect("metrics written");
        std::fs::remove_file(&path).ok();
        outputs.push((out.stdout, metrics));
    }
    assert_eq!(outputs[0].0, outputs[1].0, "stdout must not depend on the engine");
    assert_eq!(outputs[0].1, outputs[1].1, "metrics dump must not depend on the engine");
}

#[test]
fn smoke_regenerates_and_reports_timing() {
    let json_path = std::env::temp_dir().join(format!("bench_repro_{}.json", std::process::id()));
    let out = repro()
        .args(["--smoke", "--jobs", "2", "--bench-json"])
        .arg(&json_path)
        .output()
        .expect("run repro");
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    // The smoke set: headline figures plus the cache experiments for the
    // one collected benchmark; the other cache benchmarks are skipped
    // with a note, never silently.
    assert!(text.contains("Figure 4"), "{text}");
    assert!(text.contains("Figure 16: I-cache miss rates, assem"), "{text}");
    assert!(text.contains("Table 14: cache miss rates for assem"), "{text}");
    assert!(text.contains("Figure 16, ipl: skipped"), "{text}");

    let report = std::fs::read_to_string(&json_path).expect("bench json written");
    std::fs::remove_file(&json_path).ok();
    for needle in [
        "\"schema\":\"bench_repro/4\"",
        "\"kind\":\"timing\"",
        "\"smoke\":true",
        "\"engine\":\"blocks\"",
        "\"jobs\":2",
        "\"collect_ns\":",
        "\"cache_grid\":",
        "\"replays\":1",
        "\"counters\":",
        "\"spans\":",
        "\"suite.collect.cell\":",
        "\"cell_wall_ns\":",
        "\"hist_log2_ns\":",
    ] {
        assert!(report.contains(needle), "missing {needle} in {report}");
    }
}
