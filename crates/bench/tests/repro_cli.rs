//! Smoke tests for the `repro` command-line interface (argument handling
//! only — the full regeneration is exercised by `--all` in release runs
//! and by the criterion benches).

use std::process::Command;

fn repro() -> Command {
    Command::new(env!("CARGO_BIN_EXE_repro"))
}

#[test]
fn list_prints_available_experiments() {
    let out = repro().arg("--list").output().expect("run repro");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("figures: 4 5 6 7 8 9 10 11 12 13 14 15 16 17 18 19"));
    assert!(text.contains("tables:  3 4 5 6 7 8 9 10 11 12 13 14 15 16"));
    assert!(text.contains("fpu-sweep"));
}

#[test]
fn unknown_flag_is_rejected() {
    let out = repro().arg("--nonsense").output().expect("run repro");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown argument"));
}
