//! The `/v1/run` API: request parsing, the typed error → HTTP status
//! mapping, and the compile → simulate → sweep execution path with its
//! store-backed response cache.
//!
//! Response bodies are **pure functions of the request**: no wall-clock
//! time, no machine-dependent counter ever enters a body, so a cached
//! body is byte-identical to a recomputed one and CI can diff replayed
//! traffic against golden answers. Timing and cache provenance ride in
//! response *headers* (`X-D16-Wall-Ns`, `X-D16-Cache`), which the
//! corpus tooling excludes from saved bodies.

use d16_bench::json::Json;
use d16_cc::{BuildError, OptLevel, TargetSpec};
use d16_core::experiments::cache_grid_configs;
use d16_core::measure::FUEL;
use d16_sim::{AccessSink, Engine, Machine, PipelineSpec, Predictor, StopReason, TraceRecorder};
use d16_store::{CacheKey, Reader, StableHasher, Store, Writer};
use std::time::Instant;

/// Response/schema tag; also part of every cache key, so bumping it
/// retires every cached response at once.
pub const SERVE_TAG: &str = "d16-serve/1";

/// Store namespace for cached response bodies.
pub const SERVE_KIND: &str = "serve";

/// A parsed `/v1/run` request.
#[derive(Debug, Clone)]
pub struct RunRequest {
    /// Mini-C source text (inline or resolved from a suite workload).
    pub source: String,
    /// Target knobs.
    pub spec: TargetSpec,
    /// Optimization level.
    pub opt: OptLevel,
    /// Execution engine. Observationally irrelevant (the engines are
    /// byte-identical by contract), so it is *not* part of the cache
    /// key and never appears in a response body.
    pub engine: Engine,
    /// Instruction budget for the simulation.
    pub fuel: u64,
    /// Whether to sweep the 20-config cache grid over the run's trace.
    pub sweep: bool,
    /// Pipeline design point to retime the machine with. The default
    /// spec adds nothing to the cache key and nothing to the body, so
    /// requests that predate the knob keep their cached entries and
    /// golden bodies; a non-default spec keys and reports itself.
    pub pspec: PipelineSpec,
    /// Free-form client tag; subject string for the serve failpoints.
    pub tag: String,
}

/// Everything that can go wrong serving a run, each variant carrying
/// its HTTP status. This is the serving face of the PR 4 taxonomy:
/// user mistakes are 4xx, our faults are 500, shed load is 429/503.
#[derive(Debug)]
pub enum ApiError {
    /// Unparseable or self-contradictory request (400).
    BadRequest(String),
    /// The program ran out of its instruction budget (400 — the budget
    /// is a user-chosen resource cap, not a server fault).
    FuelExhausted {
        /// The budget that was exhausted.
        fuel: u64,
    },
    /// Toolchain rejection: compile, register allocation, or assembly
    /// diagnostics (422).
    Compile(String),
    /// Simulator fault or other internal failure (500).
    Internal(String),
    /// The per-request deadline passed between phases (503).
    Timeout,
    /// The store's entry lock stayed contended past its retry budget
    /// (503 — backpressure, try again).
    StoreContention,
}

impl ApiError {
    /// The HTTP status this error maps to.
    #[must_use]
    pub fn status(&self) -> u16 {
        match self {
            ApiError::BadRequest(_) | ApiError::FuelExhausted { .. } => 400,
            ApiError::Compile(_) => 422,
            ApiError::Internal(_) => 500,
            ApiError::Timeout | ApiError::StoreContention => 503,
        }
    }

    /// Stable machine-readable discriminant for response bodies.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            ApiError::BadRequest(_) => "bad_request",
            ApiError::FuelExhausted { .. } => "fuel_exhausted",
            ApiError::Compile(_) => "compile_error",
            ApiError::Internal(_) => "internal_error",
            ApiError::Timeout => "timeout",
            ApiError::StoreContention => "store_contention",
        }
    }

    /// Human-readable message for response bodies.
    #[must_use]
    pub fn message(&self) -> String {
        match self {
            ApiError::BadRequest(m) | ApiError::Compile(m) | ApiError::Internal(m) => m.clone(),
            ApiError::FuelExhausted { fuel } => {
                format!("execution exhausted its {fuel}-instruction budget")
            }
            ApiError::Timeout => "request deadline exceeded".to_string(),
            ApiError::StoreContention => {
                "store entry lock contended past the retry budget".to_string()
            }
        }
    }

    /// The JSON error body (deterministic — these are byte-diffed in CI
    /// like every other body).
    #[must_use]
    pub fn body(&self) -> Vec<u8> {
        let doc = Json::obj()
            .with("schema", SERVE_TAG)
            .with("ok", false)
            .with("error", Json::obj().with("kind", self.kind()).with("message", self.message()));
        body_bytes(&doc)
    }
}

fn body_bytes(doc: &Json) -> Vec<u8> {
    format!("{doc}\n").into_bytes()
}

/// The known target labels (the five standard configurations plus the
/// D16x mixed-width extension target).
fn spec_for_label(label: &str) -> Option<TargetSpec> {
    match label {
        "D16/16/2" => Some(TargetSpec::d16()),
        "DLXe/32/3" => Some(TargetSpec::dlxe()),
        "DLXe/16/2" => Some(TargetSpec::dlxe_restricted(true, true, false)),
        "DLXe/16/3" => Some(TargetSpec::dlxe_restricted(true, false, false)),
        "DLXe/32/2" => Some(TargetSpec::dlxe_restricted(false, true, false)),
        "D16x/16/3" => Some(TargetSpec::d16x()),
        _ => None,
    }
}

impl RunRequest {
    /// Parses and validates a request body against `fuel_cap`.
    ///
    /// # Errors
    ///
    /// [`ApiError::BadRequest`] with a deterministic message naming the
    /// offending field.
    pub fn parse(body: &[u8], fuel_cap: u64) -> Result<RunRequest, ApiError> {
        let text = std::str::from_utf8(body)
            .map_err(|_| ApiError::BadRequest("body is not utf-8".to_string()))?;
        let doc = Json::parse(text).map_err(|e| ApiError::BadRequest(format!("bad json: {e}")))?;
        let obj = doc
            .as_obj()
            .ok_or_else(|| ApiError::BadRequest("body must be a json object".to_string()))?;
        const KNOWN: &[&str] = &[
            "workload",
            "source",
            "target",
            "opt",
            "engine",
            "fuel",
            "sweep",
            "tag",
            "d16_immediates",
            "cmpeqi",
            "schedule_delay_slots",
            "pipeline_depth",
            "pipeline_predictor",
            "pipeline_fetch_halfwords",
        ];
        for (k, _) in obj {
            if !KNOWN.contains(&k.as_str()) {
                return Err(ApiError::BadRequest(format!("unknown field `{k}`")));
            }
        }
        let str_field = |name: &str| -> Result<Option<&str>, ApiError> {
            match doc.get(name) {
                None => Ok(None),
                Some(v) => v
                    .as_str()
                    .map(Some)
                    .ok_or_else(|| ApiError::BadRequest(format!("`{name}` must be a string"))),
            }
        };
        let bool_field = |name: &str| -> Result<Option<bool>, ApiError> {
            match doc.get(name) {
                None => Ok(None),
                Some(Json::Bool(b)) => Ok(Some(*b)),
                Some(_) => Err(ApiError::BadRequest(format!("`{name}` must be a boolean"))),
            }
        };

        let source = match (str_field("source")?, str_field("workload")?) {
            (Some(_), Some(_)) => {
                return Err(ApiError::BadRequest(
                    "give either `source` or `workload`, not both".to_string(),
                ))
            }
            (Some(src), None) => src.to_string(),
            (None, Some(name)) => match d16_workloads::by_name(name) {
                Some(w) => w.source.to_string(),
                None => {
                    // `by_name` searches the suite and the extension
                    // workloads, so the diagnostic must list both.
                    let valid: Vec<&str> = d16_workloads::SUITE
                        .iter()
                        .chain(d16_workloads::EXTRAS)
                        .map(|w| w.name)
                        .collect();
                    return Err(ApiError::BadRequest(format!(
                        "unknown workload `{name}` (valid: {})",
                        valid.join(", ")
                    )));
                }
            },
            (None, None) => {
                return Err(ApiError::BadRequest(
                    "give `source` (inline Mini-C) or `workload` (suite name)".to_string(),
                ))
            }
        };

        let label = str_field("target")?.unwrap_or("D16/16/2");
        let mut spec = spec_for_label(label).ok_or_else(|| {
            ApiError::BadRequest(format!(
                "unknown target `{label}` (valid: D16/16/2, DLXe/32/3, DLXe/16/2, DLXe/16/3, DLXe/32/2)"
            ))
        })?;
        if let Some(v) = bool_field("d16_immediates")? {
            spec.d16_immediates = v;
        }
        if let Some(v) = bool_field("cmpeqi")? {
            spec.cmpeqi = v;
        }
        if let Some(v) = bool_field("schedule_delay_slots")? {
            spec.schedule_delay_slots = v;
        }

        let opt = match str_field("opt")?.unwrap_or("O2") {
            "O0" => OptLevel::O0,
            "O2" => OptLevel::O2,
            other => {
                return Err(ApiError::BadRequest(format!(
                    "unknown opt level `{other}` (valid: O0, O2)"
                )))
            }
        };
        let engine = match str_field("engine")?.unwrap_or("blocks") {
            "blocks" => Engine::Blocks,
            "interp" => Engine::Interp,
            other => {
                return Err(ApiError::BadRequest(format!(
                    "unknown engine `{other}` (valid: blocks, interp)"
                )))
            }
        };
        let fuel = match doc.get("fuel") {
            None => fuel_cap,
            Some(v) => v
                .as_u64()
                .ok_or_else(|| ApiError::BadRequest("`fuel` must be an integer".to_string()))?,
        };
        if fuel == 0 || fuel > fuel_cap {
            return Err(ApiError::BadRequest(format!("`fuel` must be between 1 and {fuel_cap}")));
        }
        let sweep = bool_field("sweep")?.unwrap_or(false);
        let u8_field = |name: &str| -> Result<Option<u8>, ApiError> {
            match doc.get(name) {
                None => Ok(None),
                Some(v) => {
                    v.as_u64().and_then(|n| u8::try_from(n).ok()).map(Some).ok_or_else(|| {
                        ApiError::BadRequest(format!("`{name}` must be a small integer"))
                    })
                }
            }
        };
        let mut pspec = PipelineSpec::default();
        if let Some(d) = u8_field("pipeline_depth")? {
            pspec.depth = d;
        }
        if let Some(p) = str_field("pipeline_predictor")? {
            pspec.predictor = Predictor::parse(p).ok_or_else(|| {
                ApiError::BadRequest(format!(
                    "unknown predictor `{p}` (valid: none, taken, twobit)"
                ))
            })?;
        }
        if let Some(w) = u8_field("pipeline_fetch_halfwords")? {
            pspec.fetch_width_halfwords = w;
        }
        pspec.validate().map_err(ApiError::BadRequest)?;
        let tag = str_field("tag")?.unwrap_or("").to_string();
        Ok(RunRequest { source, spec, opt, engine, fuel, sweep, pspec, tag })
    }

    /// The response-cache key: serve tag, full toolchain/source key,
    /// opt level, and the sweep request (with the grid fingerprint, so
    /// a grid change retires sweep entries). Fuel is deliberately *not*
    /// keyed — the cached entry records how many instructions the run
    /// took, and a lookup serves it to any request whose budget covers
    /// that count.
    #[must_use]
    pub fn key(&self) -> CacheKey {
        let mut h = StableHasher::new("d16-serve.request");
        h.field_str(SERVE_TAG)
            .field_key(d16_cc::build_key(&[&self.source], &self.spec))
            .field_str(match self.opt {
                OptLevel::O0 => "O0",
                OptLevel::O2 => "O2",
            })
            .field_bool(self.sweep);
        if self.pspec != PipelineSpec::default() {
            h.field_u64(u64::from(self.pspec.depth))
                .field_str(self.pspec.predictor.name())
                .field_u64(u64::from(self.pspec.fetch_width_halfwords));
        }
        if self.sweep {
            let configs = cache_grid_configs();
            h.field_u64(configs.len() as u64);
            for c in &configs {
                h.field_str(&c.label());
            }
        }
        h.finish()
    }
}

/// A served run: the response body plus provenance for headers/counters.
#[derive(Debug)]
pub struct RunOutcome {
    /// The JSON body (terminated by one newline), ready to send.
    pub body: Vec<u8>,
    /// Whether the body came out of the store.
    pub cache_hit: bool,
    /// Wall time spent compiling (0 on a hit).
    pub compile_ns: u64,
    /// Wall time spent simulating (0 on a hit).
    pub execute_ns: u64,
    /// Wall time spent sweeping the cache grid (0 on a hit / no sweep).
    pub sweep_ns: u64,
}

/// The default per-request instruction budget (and the daemon's default
/// cap): the same fuel the batch experiments run with.
pub const DEFAULT_FUEL_CAP: u64 = FUEL;

struct ServeSink<'a> {
    fb32: &'a mut d16_mem::FetchBuffer,
    fb64: &'a mut d16_mem::FetchBuffer,
    rec: Option<&'a mut TraceRecorder>,
}

impl AccessSink for ServeSink<'_> {
    #[inline]
    fn fetch(&mut self, addr: u32, bytes: u8) {
        self.fb32.fetch(addr, bytes);
        self.fb64.fetch(addr, bytes);
        if let Some(r) = &mut self.rec {
            r.fetch(addr, bytes);
        }
    }
    #[inline]
    fn read(&mut self, addr: u32, bytes: u8) {
        self.fb32.read(addr, bytes);
        self.fb64.read(addr, bytes);
        if let Some(r) = &mut self.rec {
            r.read(addr, bytes);
        }
    }
    #[inline]
    fn write(&mut self, addr: u32, bytes: u8) {
        self.fb32.write(addr, bytes);
        self.fb64.write(addr, bytes);
        if let Some(r) = &mut self.rec {
            r.write(addr, bytes);
        }
    }
}

fn check_deadline(deadline: Instant) -> Result<(), ApiError> {
    if Instant::now() > deadline {
        return Err(ApiError::Timeout);
    }
    Ok(())
}

/// Serves one parsed run request: store lookup, else compile → simulate
/// → (optional) sweep → commit. The deadline is checked between phases;
/// a fuel budget bounds the simulation itself, so no phase runs
/// unboundedly long.
///
/// # Errors
///
/// [`ApiError`], already mapped to its HTTP status.
pub fn run(
    req: &RunRequest,
    store: Option<&Store>,
    deadline: Instant,
) -> Result<RunOutcome, ApiError> {
    if d16_testkit::faults::armed_for("serve-store-contention", &req.tag) {
        return Err(ApiError::StoreContention);
    }
    let key = req.key();
    if let Some(store) = store {
        let cached = store.get_with(SERVE_KIND, key, decode_entry);
        if let Some((insns, body)) = cached {
            // A cached run that needed more instructions than this
            // request's budget allows must re-run (and exhaust).
            if insns <= req.fuel {
                return Ok(RunOutcome {
                    body,
                    cache_hit: true,
                    compile_ns: 0,
                    execute_ns: 0,
                    sweep_ns: 0,
                });
            }
        }
    }
    if d16_testkit::faults::armed_for("serve-slow-worker", &req.tag) {
        // A wedged worker: sleep through the whole deadline so the
        // next phase boundary degrades the request instead of hanging
        // the connection forever.
        let now = Instant::now();
        std::thread::sleep(
            deadline.saturating_duration_since(now) + std::time::Duration::from_millis(50),
        );
    }
    check_deadline(deadline)?;

    let t0 = Instant::now();
    let image = d16_cc::compile_to_image_with(&[&req.source], &req.spec, req.opt)
        .map_err(|e: BuildError| ApiError::Compile(e.to_string()))?;
    let compile_ns = t0.elapsed().as_nanos() as u64;
    check_deadline(deadline)?;

    let mut fuel = req.fuel;
    if d16_testkit::faults::armed_for("serve-fuel-exhausted", &req.tag) {
        fuel = fuel.min(1_000);
    }
    let mut fb32 = d16_mem::FetchBuffer::new(4);
    let mut fb64 = d16_mem::FetchBuffer::new(8);
    let mut rec = TraceRecorder::new();
    let t0 = Instant::now();
    let mut machine = Machine::load(&image);
    machine.set_pipeline(req.pspec);
    let stop = {
        let mut sink =
            ServeSink { fb32: &mut fb32, fb64: &mut fb64, rec: req.sweep.then_some(&mut rec) };
        machine.run_with(req.engine, fuel, &mut sink)
    };
    let execute_ns = t0.elapsed().as_nanos() as u64;
    let exit = match stop {
        Ok(StopReason::Halted(code)) => code,
        Ok(StopReason::OutOfFuel) => return Err(ApiError::FuelExhausted { fuel }),
        Err(e) => return Err(ApiError::Internal(format!("simulator fault: {e}"))),
    };
    check_deadline(deadline)?;

    let (sweep_json, sweep_ns) = if req.sweep {
        if let Some(e) = rec.error() {
            return Err(ApiError::Internal(format!("trace: {e}")));
        }
        let t0 = Instant::now();
        let mut bank = d16_mem::CacheBank::symmetric(&cache_grid_configs())
            .map_err(|e| ApiError::Internal(format!("cache config: {e}")))?;
        rec.replay(&mut bank);
        let rows: Vec<Json> = bank
            .into_systems()
            .into_iter()
            .map(|sys| {
                let (i, d) = (*sys.icache(), *sys.dcache());
                Json::obj()
                    .with("config", sys.label())
                    .with("ic_reads", i.reads)
                    .with("ic_read_misses", i.read_misses)
                    .with("ic_bytes_in", i.demand_bytes_in + i.prefetch_bytes_in)
                    .with("dc_reads", d.reads)
                    .with("dc_read_misses", d.read_misses)
                    .with("dc_writes", d.writes)
                    .with("dc_write_misses", d.write_misses)
                    .with("dc_bytes_in", d.demand_bytes_in + d.prefetch_bytes_in)
                    .with("dc_bytes_out", d.bytes_out)
            })
            .collect();
        (Json::Arr(rows), t0.elapsed().as_nanos() as u64)
    } else {
        (Json::Null, 0)
    };

    let stats = machine.stats();
    let mut doc = Json::obj()
        .with("schema", SERVE_TAG)
        .with("ok", true)
        .with("target", req.spec.label())
        .with(
            "opt",
            match req.opt {
                OptLevel::O0 => "O0",
                OptLevel::O2 => "O2",
            },
        )
        .with("exit", f64::from(exit))
        .with("text_bytes", image.text.len())
        .with(
            "stats",
            Json::obj()
                .with("insns", stats.insns)
                .with("loads", stats.loads)
                .with("stores", stats.stores)
                .with("interlocks", stats.interlocks)
                .with("load_interlocks", stats.load_interlocks)
                .with("fpu_interlocks", stats.fpu_interlocks)
                .with("ifetch_words", stats.ifetch_words)
                .with("branches", stats.branches)
                .with("taken_branches", stats.taken_branches)
                .with("nops", stats.nops),
        )
        .with("ireq_bus32", fb32.irequests)
        .with("ireq_bus64", fb64.irequests)
        .with("sweep", sweep_json);
    // Only a retimed machine reports its pipeline (and the two counters
    // the default spec holds at zero): bodies of default-spec requests
    // stay byte-identical to the pre-knob golden corpus.
    if req.pspec != PipelineSpec::default() {
        doc = doc.with(
            "pipeline",
            Json::obj()
                .with("depth", u64::from(req.pspec.depth))
                .with("predictor", req.pspec.predictor.name())
                .with("fetch_halfwords", u64::from(req.pspec.fetch_width_halfwords))
                .with("mispredicts", stats.mispredicts)
                .with("misfetch_cycles", stats.misfetch_cycles),
        );
    }
    let body = body_bytes(&doc);
    let insns = stats.insns;

    check_deadline(deadline)?;
    if let Some(store) = store {
        store.put(SERVE_KIND, key, &encode_entry(insns, &body));
    }
    Ok(RunOutcome { body, cache_hit: false, compile_ns, execute_ns, sweep_ns })
}

fn encode_entry(insns: u64, body: &[u8]) -> Vec<u8> {
    let mut w = Writer::new();
    w.u64(insns).bytes(body);
    w.into_bytes()
}

fn decode_entry(payload: &[u8]) -> Option<(u64, Vec<u8>)> {
    let mut r = Reader::new(payload);
    let insns = r.u64()?;
    let body = r.bytes()?.to_vec();
    r.finish()?;
    Some((insns, body))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn deadline() -> Instant {
        Instant::now() + std::time::Duration::from_secs(60)
    }

    #[test]
    fn parse_rejects_each_bad_field_deterministically() {
        let cap = DEFAULT_FUEL_CAP;
        let cases: &[(&str, &str)] = &[
            ("not json", "bad json"),
            ("[1,2]", "must be a json object"),
            ("{}", "give `source`"),
            (r#"{"source":"int main(){return 0;}","workload":"towers"}"#, "not both"),
            (r#"{"workload":"nope"}"#, "unknown workload `nope`"),
            (r#"{"workload":"towers","target":"X86"}"#, "unknown target `X86`"),
            (r#"{"workload":"towers","opt":"O1"}"#, "unknown opt level `O1`"),
            (r#"{"workload":"towers","engine":"jit"}"#, "unknown engine `jit`"),
            (r#"{"workload":"towers","fuel":0}"#, "`fuel` must be between"),
            (r#"{"workload":"towers","frobnicate":1}"#, "unknown field `frobnicate`"),
            (r#"{"workload":"towers","pipeline_depth":9}"#, "valid depths: 3 4 5 6 7 8"),
            (
                r#"{"workload":"towers","pipeline_predictor":"oracle"}"#,
                "valid: none, taken, twobit",
            ),
            (r#"{"workload":"towers","pipeline_fetch_halfwords":3}"#, "valid widths: 1 2 4"),
        ];
        for (body, want) in cases {
            let err = RunRequest::parse(body.as_bytes(), cap).unwrap_err();
            assert!(matches!(err, ApiError::BadRequest(_)), "{body}: {err:?}");
            assert!(err.message().contains(want), "{body}: {}", err.message());
        }
    }

    #[test]
    fn fuel_above_cap_is_a_user_error() {
        let err = RunRequest::parse(br#"{"workload":"towers","fuel":1000}"#, 100).unwrap_err();
        assert_eq!(err.status(), 400);
        assert!(err.message().contains("between 1 and 100"));
    }

    #[test]
    fn status_mapping_covers_the_taxonomy() {
        assert_eq!(ApiError::BadRequest(String::new()).status(), 400);
        assert_eq!(ApiError::FuelExhausted { fuel: 1 }.status(), 400);
        assert_eq!(ApiError::Compile(String::new()).status(), 422);
        assert_eq!(ApiError::Internal(String::new()).status(), 500);
        assert_eq!(ApiError::Timeout.status(), 503);
        assert_eq!(ApiError::StoreContention.status(), 503);
    }

    #[test]
    fn run_is_deterministic_and_cacheable() {
        let req =
            RunRequest::parse(br#"{"workload":"towers","target":"D16/16/2"}"#, DEFAULT_FUEL_CAP)
                .unwrap();
        let a = run(&req, None, deadline()).unwrap();
        let b = run(&req, None, deadline()).unwrap();
        assert_eq!(a.body, b.body, "bodies are pure functions of the request");
        assert!(!a.cache_hit);

        let dir = d16_testkit::TempDir::new("serve-api");
        let store = Store::open(dir.path()).unwrap();
        let cold = run(&req, Some(&store), deadline()).unwrap();
        let warm = run(&req, Some(&store), deadline()).unwrap();
        assert_eq!(cold.body, a.body);
        assert_eq!(warm.body, a.body, "warm body byte-identical to cold");
        assert!(!cold.cache_hit);
        assert!(warm.cache_hit);
    }

    #[test]
    fn fuel_gates_cache_reuse() {
        let dir = d16_testkit::TempDir::new("serve-fuel");
        let store = Store::open(dir.path()).unwrap();
        let full = RunRequest::parse(br#"{"workload":"towers"}"#, DEFAULT_FUEL_CAP).unwrap();
        let out = run(&full, Some(&store), deadline()).unwrap();
        let doc = Json::parse(std::str::from_utf8(&out.body).unwrap()).unwrap();
        let insns = doc.get("stats").and_then(|s| s.get("insns")).and_then(Json::as_u64).unwrap();
        // A budget below the recorded instruction count must not be
        // served from cache — it must re-run and exhaust.
        let tiny = RunRequest { fuel: insns - 1, ..full.clone() };
        match run(&tiny, Some(&store), deadline()) {
            Err(ApiError::FuelExhausted { .. }) => {}
            other => panic!("expected fuel exhaustion, got {other:?}"),
        }
        // And the entry must survive for budgets that cover it.
        let again = run(&full, Some(&store), deadline()).unwrap();
        assert!(again.cache_hit);
    }

    #[test]
    fn compile_errors_map_to_422_with_diagnostics() {
        let req = RunRequest::parse(br#"{"source":"int main( {"}"#, DEFAULT_FUEL_CAP).unwrap();
        let err = run(&req, None, deadline()).unwrap_err();
        assert_eq!(err.status(), 422);
        assert_eq!(err.kind(), "compile_error");
    }

    #[test]
    fn sweep_rows_cover_the_grid() {
        let req =
            RunRequest::parse(br#"{"workload":"towers","sweep":true}"#, DEFAULT_FUEL_CAP).unwrap();
        let out = run(&req, None, deadline()).unwrap();
        let doc = Json::parse(std::str::from_utf8(&out.body).unwrap()).unwrap();
        let rows = doc.get("sweep").and_then(Json::as_arr).unwrap();
        assert_eq!(rows.len(), cache_grid_configs().len());
    }

    #[test]
    fn keys_separate_what_must_not_collide() {
        let base = RunRequest::parse(br#"{"workload":"towers"}"#, DEFAULT_FUEL_CAP).unwrap();
        let mut by_opt = base.clone();
        by_opt.opt = OptLevel::O0;
        let mut by_sweep = base.clone();
        by_sweep.sweep = true;
        let mut by_target = base.clone();
        by_target.spec = TargetSpec::dlxe();
        let keys = [base.key(), by_opt.key(), by_sweep.key(), by_target.key()];
        for i in 0..keys.len() {
            for j in i + 1..keys.len() {
                assert_ne!(keys[i], keys[j], "{i} vs {j}");
            }
        }
        // Fuel and engine deliberately do not key.
        let mut by_fuel = base.clone();
        by_fuel.fuel = 12345;
        by_fuel.engine = Engine::Interp;
        assert_eq!(base.key(), by_fuel.key());
        // A non-default pipeline spec keys; spelling out the defaults
        // does not.
        let mut by_pipe = base.clone();
        by_pipe.pspec = PipelineSpec { depth: 8, predictor: Predictor::TwoBit, ..base.pspec };
        assert_ne!(base.key(), by_pipe.key());
        let explicit = RunRequest::parse(
            br#"{"workload":"towers","pipeline_depth":5,"pipeline_predictor":"none","pipeline_fetch_halfwords":2}"#,
            DEFAULT_FUEL_CAP,
        )
        .unwrap();
        assert_eq!(base.key(), explicit.key());
    }

    #[test]
    fn pipeline_knobs_retime_the_run_and_report_themselves() {
        let base = RunRequest::parse(br#"{"workload":"towers"}"#, DEFAULT_FUEL_CAP).unwrap();
        let deep = RunRequest::parse(
            br#"{"workload":"towers","pipeline_depth":8,"pipeline_predictor":"twobit"}"#,
            DEFAULT_FUEL_CAP,
        )
        .unwrap();
        let a = run(&base, None, deadline()).unwrap();
        let b = run(&deep, None, deadline()).unwrap();
        let base_doc = Json::parse(std::str::from_utf8(&a.body).unwrap()).unwrap();
        let deep_doc = Json::parse(std::str::from_utf8(&b.body).unwrap()).unwrap();
        assert!(base_doc.get("pipeline").is_none(), "default spec adds no body field");
        let p = deep_doc.get("pipeline").expect("retimed run reports its pipeline");
        assert_eq!(p.get("depth").and_then(Json::as_u64), Some(8));
        assert_eq!(p.get("predictor").and_then(Json::as_str), Some("twobit"));
        let il = |d: &Json| {
            d.get("stats").and_then(|s| s.get("interlocks")).and_then(Json::as_u64).unwrap()
        };
        assert!(il(&deep_doc) > il(&base_doc), "depth 8 stretches the load-use shadow");
        assert_eq!(
            base_doc.get("exit").and_then(Json::as_u64),
            deep_doc.get("exit").and_then(Json::as_u64),
            "retiming never changes architectural results"
        );
    }
}
