//! # d16-serve — the repro as an HTTP/JSON experiment service
//!
//! A long-running daemon that accepts Mini-C source (or a suite
//! workload name) plus [`TargetSpec`] knobs, runs the paper's compile →
//! simulate → sweep pipeline in a bounded worker pool, and answers with
//! a deterministic JSON measurement body. Every request is backed by
//! the [`d16_store`] content-addressed store as a shared response
//! cache, safe for many concurrent daemons because the store commits
//! under per-entry file locks (see `d16-store`).
//!
//! Design rules:
//!
//! 1. **Bounded everything.** A fixed worker pool, a fixed connection
//!    queue (full ⇒ `429`), a request body cap (`400`), a fuel cap on
//!    simulated instructions (`400` when exhausted), and a per-request
//!    deadline checked between pipeline phases (`503`). No request can
//!    hold a worker unboundedly long.
//! 2. **Deterministic bodies.** A response body is a pure function of
//!    the request — no timing, no counters. Wall time and cache
//!    provenance ride in `X-D16-Wall-Ns` / `X-D16-Cache` headers, so
//!    CI byte-diffs replayed bodies against golden answers and a warm
//!    cache can never change an answer.
//! 3. **Typed errors → statuses.** The PR 4 taxonomy maps onto HTTP:
//!    `200` ok, `400` user error (bad request, fuel), `404` unknown
//!    path, `422` compile error, `429` over capacity, `500` internal
//!    (simulator fault), `503` degraded (deadline, store contention,
//!    shutting down).
//! 4. **Observable like the batch pipeline.** Request counters follow
//!    the [`SERVE_SCHEMA`]; phase wall times land in span histograms;
//!    `GET /metrics` and the daemon's `--metrics-json` dump render
//!    them with the store counters through one registry, and CI
//!    reconciles the totals against `d16-loadgen`'s per-status counts.
//!
//! [`TargetSpec`]: d16_cc::TargetSpec

pub mod api;
pub mod http;

pub use api::{ApiError, RunOutcome, RunRequest, DEFAULT_FUEL_CAP, SERVE_KIND, SERVE_TAG};

use d16_bench::json::Json;
use d16_bench::report;
use d16_store::Store;
use d16_telemetry::Registry;
use std::collections::VecDeque;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

d16_telemetry::counter_schema! {
    /// Service request counters. Like the store's, these are *service*
    /// accounting, not experiment measurement: they count with their
    /// own atomics (even with telemetry compiled out) and render
    /// through these names in `/metrics` and `--metrics-json`, where
    /// CI reconciles them against loadgen's per-status totals.
    pub SERVE_SCHEMA / ServeCounter {
        /// `/v1/run` requests that reached routing (excludes shed 429s).
        RunRequests => "run_requests",
        /// Runs answered 200.
        Ok => "ok",
        /// Runs answered 400 (bad request or fuel exhausted).
        UserError => "user_error",
        /// Runs answered 422 (toolchain diagnostics).
        CompileError => "compile_error",
        /// Connections shed with 429 before routing (queue full).
        OverCapacity => "over_capacity",
        /// Runs answered 500 (simulator fault).
        InternalError => "internal_error",
        /// Runs answered 503 (deadline, store contention).
        Degraded => "degraded",
        /// Requests for paths the service does not serve (404).
        NotFound => "not_found",
        /// Connections whose bytes were not parseable HTTP (answered
        /// 400 where possible; never counted as run requests).
        BadHttp => "bad_http",
        /// 200 bodies served from the store.
        CacheHit => "cache_hit",
        /// 200 bodies computed (and, with a store, committed).
        CacheMiss => "cache_miss",
        /// Request body bytes accepted on the run path.
        BytesIn => "bytes_in",
        /// Response body bytes written on the run path.
        BytesOut => "bytes_out",
    }
}

/// Atomic service counters (see [`SERVE_SCHEMA`]).
#[derive(Debug, Default)]
pub struct ServeStats {
    counts: [AtomicU64; 13],
}

impl ServeStats {
    fn bump(&self, c: ServeCounter) {
        self.counts[c as usize].fetch_add(1, Ordering::Relaxed);
    }

    fn add(&self, c: ServeCounter, v: u64) {
        self.counts[c as usize].fetch_add(v, Ordering::Relaxed);
    }

    /// `(name, value)` pairs in [`SERVE_SCHEMA`] order.
    #[must_use]
    pub fn named(&self) -> Vec<(&'static str, u64)> {
        SERVE_SCHEMA
            .names()
            .iter()
            .zip(&self.counts)
            .map(|(name, v)| (*name, v.load(Ordering::Relaxed)))
            .collect()
    }

    /// One counter, by schema name (`None` for unknown names).
    #[must_use]
    pub fn get(&self, name: &str) -> Option<u64> {
        self.named().iter().find(|(n, _)| *n == name).map(|(_, v)| *v)
    }
}

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address (`host:port`; port 0 picks a free port).
    pub addr: String,
    /// Worker threads executing requests.
    pub workers: usize,
    /// Accepted connections allowed to wait for a worker; beyond this
    /// the acceptor sheds with `429`.
    pub queue_cap: usize,
    /// Request body cap in bytes (`400` beyond it).
    pub max_body: usize,
    /// Upper bound on any request's simulated-instruction budget.
    pub fuel_cap: u64,
    /// Per-request deadline, measured from the moment the connection
    /// is queued and checked between pipeline phases.
    pub timeout: Duration,
    /// Response-cache store root (`None` disables caching).
    pub store_root: Option<PathBuf>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        let workers = std::thread::available_parallelism().map_or(4, |n| n.get().min(4));
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers,
            queue_cap: workers * 4,
            max_body: 256 * 1024,
            fuel_cap: DEFAULT_FUEL_CAP,
            timeout: Duration::from_secs(10),
            store_root: None,
        }
    }
}

struct Shared {
    cfg: ServeConfig,
    store: Option<Store>,
    stats: ServeStats,
    spans: Mutex<Registry>,
    queue: Mutex<VecDeque<(TcpStream, Instant)>>,
    available: Condvar,
    shutdown: Arc<AtomicBool>,
}

/// A running service instance.
pub struct Server {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    acceptor: std::thread::JoinHandle<Json>,
}

impl Server {
    /// Binds, spawns the acceptor and worker pool, and returns.
    ///
    /// # Errors
    ///
    /// Fails if the address cannot be bound or the store root cannot
    /// be opened.
    pub fn start(cfg: ServeConfig) -> io::Result<Server> {
        let store = match &cfg.store_root {
            Some(root) => Some(Store::open(root.clone())?),
            None => None,
        };
        let listener = TcpListener::bind(&cfg.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let shared = Arc::new(Shared {
            cfg,
            store,
            stats: ServeStats::default(),
            spans: Mutex::new(Registry::new()),
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            shutdown: Arc::clone(&shutdown),
        });
        let acceptor = std::thread::spawn(move || accept_loop(&listener, &shared));
        Ok(Server { addr, shutdown, acceptor })
    }

    /// The bound address (with the actual port when 0 was requested).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// A handle that makes [`Server::join`] return when set (the
    /// daemon's signal handler flips it on SIGTERM/SIGINT).
    #[must_use]
    pub fn shutdown_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.shutdown)
    }

    /// Requests shutdown and waits; returns the final metrics dump.
    pub fn stop(self) -> Json {
        self.shutdown.store(true, Ordering::SeqCst);
        self.join()
    }

    /// Waits for shutdown (via [`Server::stop`], `POST /shutdown`, or
    /// the shutdown flag) and returns the final metrics dump.
    pub fn join(self) -> Json {
        match self.acceptor.join() {
            Ok(doc) => doc,
            Err(_) => Json::obj()
                .with("schema", "bench_serve/1")
                .with("kind", "metrics")
                .with("error", "server thread panicked"),
        }
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) -> Json {
    let mut workers = Vec::with_capacity(shared.cfg.workers);
    for _ in 0..shared.cfg.workers {
        let shared = Arc::clone(shared);
        workers.push(std::thread::spawn(move || worker_loop(&shared)));
    }
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let deadline = Instant::now() + shared.cfg.timeout;
                let _ = stream.set_read_timeout(Some(shared.cfg.timeout));
                let _ = stream.set_write_timeout(Some(shared.cfg.timeout));
                let mut queue = match shared.queue.lock() {
                    Ok(q) => q,
                    Err(_) => break, // a worker panicked holding the lock
                };
                if queue.len() >= shared.cfg.queue_cap {
                    drop(queue);
                    shed(shared, stream);
                } else {
                    queue.push_back((stream, deadline));
                    drop(queue);
                    shared.available.notify_one();
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(2)),
        }
    }
    // Wake everyone; workers drain the queue, then exit.
    shared.available.notify_all();
    for w in workers {
        let _ = w.join();
    }
    build_metrics(shared)
}

/// Queue full: answer `429` from the acceptor thread (bounded by the
/// stream's write timeout) without consuming a worker.
fn shed(shared: &Shared, mut stream: TcpStream) {
    shared.stats.bump(ServeCounter::OverCapacity);
    let body = Json::obj().with("schema", SERVE_TAG).with("ok", false).with(
        "error",
        Json::obj()
            .with("kind", "over_capacity")
            .with("message", "request queue full, retry later"),
    );
    let _ = http::write_response(&mut stream, 429, &[], format!("{body}\n").as_bytes());
}

fn worker_loop(shared: &Arc<Shared>) {
    loop {
        let next = {
            let mut queue = match shared.queue.lock() {
                Ok(q) => q,
                Err(_) => return,
            };
            loop {
                if let Some(item) = queue.pop_front() {
                    break Some(item);
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    break None;
                }
                queue = match shared.available.wait_timeout(queue, Duration::from_millis(50)) {
                    Ok((q, _timed_out)) => q,
                    Err(_) => return,
                };
            }
        };
        let Some((stream, deadline)) = next else { return };
        handle_connection(shared, stream, deadline);
    }
}

fn record_span(shared: &Shared, name: &str, ns: u64) {
    if let Ok(mut reg) = shared.spans.lock() {
        reg.record_span(name, ns);
    }
}

fn handle_connection(shared: &Shared, mut stream: TcpStream, deadline: Instant) {
    let t0 = Instant::now();
    let req = match http::read_request(&mut stream, shared.cfg.max_body) {
        Ok(req) => req,
        Err(e) => {
            shared.stats.bump(ServeCounter::BadHttp);
            let err = ApiError::BadRequest(e.to_string());
            let _ = http::write_response(&mut stream, err.status(), &[], &err.body());
            return;
        }
    };
    match (req.method.as_str(), req.path.as_str()) {
        ("POST", "/v1/run") => {
            let (status, headers, body) = serve_run(shared, &req.body, deadline, t0);
            let _ = http::write_response(&mut stream, status, &headers, &body);
        }
        ("GET", "/healthz") => {
            let body =
                Json::obj().with("schema", SERVE_TAG).with("ok", true).with("service", "d16-serve");
            let _ = http::write_response(&mut stream, 200, &[], format!("{body}\n").as_bytes());
        }
        ("GET", "/metrics") => {
            let body = build_metrics(shared);
            let _ = http::write_response(&mut stream, 200, &[], format!("{body}\n").as_bytes());
        }
        ("POST", "/shutdown") => {
            shared.shutdown.store(true, Ordering::SeqCst);
            shared.available.notify_all();
            let body =
                Json::obj().with("schema", SERVE_TAG).with("ok", true).with("shutting_down", true);
            let _ = http::write_response(&mut stream, 200, &[], format!("{body}\n").as_bytes());
        }
        (method, path) => {
            shared.stats.bump(ServeCounter::NotFound);
            let body = Json::obj().with("schema", SERVE_TAG).with("ok", false).with(
                "error",
                Json::obj()
                    .with("kind", "not_found")
                    .with("message", format!("no route for {method} {path}")),
            );
            let _ = http::write_response(&mut stream, 404, &[], format!("{body}\n").as_bytes());
        }
    }
}

type RunResponse = (u16, Vec<(&'static str, String)>, Vec<u8>);

fn serve_run(shared: &Shared, body: &[u8], deadline: Instant, t0: Instant) -> RunResponse {
    shared.stats.bump(ServeCounter::RunRequests);
    shared.stats.add(ServeCounter::BytesIn, body.len() as u64);
    let result = RunRequest::parse(body, shared.cfg.fuel_cap)
        .and_then(|req| api::run(&req, shared.store.as_ref(), deadline));
    let wall_ns = t0.elapsed().as_nanos() as u64;
    record_span(shared, "serve.request", wall_ns);
    match result {
        Ok(out) => {
            shared.stats.bump(ServeCounter::Ok);
            shared.stats.bump(if out.cache_hit {
                ServeCounter::CacheHit
            } else {
                ServeCounter::CacheMiss
            });
            shared.stats.add(ServeCounter::BytesOut, out.body.len() as u64);
            if !out.cache_hit {
                record_span(shared, "serve.compile", out.compile_ns);
                record_span(shared, "serve.execute", out.execute_ns);
                if out.sweep_ns > 0 {
                    record_span(shared, "serve.sweep", out.sweep_ns);
                }
            }
            let headers = vec![
                ("X-D16-Cache", if out.cache_hit { "hit" } else { "miss" }.to_string()),
                ("X-D16-Wall-Ns", wall_ns.to_string()),
            ];
            (200, headers, out.body)
        }
        Err(err) => {
            shared.stats.bump(match err.status() {
                400 => ServeCounter::UserError,
                422 => ServeCounter::CompileError,
                503 => ServeCounter::Degraded,
                _ => ServeCounter::InternalError,
            });
            let body = err.body();
            shared.stats.add(ServeCounter::BytesOut, body.len() as u64);
            (err.status(), vec![("X-D16-Wall-Ns", wall_ns.to_string())], body)
        }
    }
}

/// The `bench_serve/1` metrics document: serve + store counters and the
/// phase span histograms, rendered through one [`Registry`] exactly
/// like `repro --metrics-json`. Served live on `GET /metrics` and
/// written by the daemon on shutdown (`--metrics-json`).
fn build_metrics(shared: &Shared) -> Json {
    let mut reg = Registry::new();
    for (name, v) in shared.stats.named() {
        reg.add_counter(format!("serve.{name}"), v);
    }
    if let Some(store) = &shared.store {
        store.export_telemetry(&mut reg);
    }
    if let Ok(spans) = shared.spans.lock() {
        reg.merge(&spans);
    }
    Json::obj()
        .with("schema", "bench_serve/1")
        .with("kind", "metrics")
        .with("counters", report::counters_json(&reg))
        .with("span_counts", report::span_counts_json(&reg))
        .with("spans", report::spans_json(&reg))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serve_schema_names_are_pinned() {
        assert_eq!(
            SERVE_SCHEMA.names(),
            &[
                "run_requests",
                "ok",
                "user_error",
                "compile_error",
                "over_capacity",
                "internal_error",
                "degraded",
                "not_found",
                "bad_http",
                "cache_hit",
                "cache_miss",
                "bytes_in",
                "bytes_out",
            ]
        );
    }

    #[test]
    fn stats_count_in_schema_order() {
        let stats = ServeStats::default();
        stats.bump(ServeCounter::Ok);
        stats.bump(ServeCounter::Ok);
        stats.add(ServeCounter::BytesIn, 7);
        assert_eq!(stats.get("ok"), Some(2));
        assert_eq!(stats.get("bytes_in"), Some(7));
        assert_eq!(stats.get("run_requests"), Some(0));
        assert_eq!(stats.get("nope"), None);
    }

    #[test]
    fn default_config_is_bounded() {
        let cfg = ServeConfig::default();
        assert!(cfg.workers >= 1);
        assert!(cfg.queue_cap >= cfg.workers);
        assert!(cfg.max_body > 0);
        assert!(cfg.timeout > Duration::ZERO);
    }
}
