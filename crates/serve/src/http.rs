//! Minimal HTTP/1.1 wire handling over `std::net` — just enough for a
//! JSON POST service and its test clients. One request per connection
//! (`Connection: close`), no chunked transfer, no keep-alive: every
//! exchange is read-request / write-response / shutdown, which keeps
//! the server loop and the failure modes trivially auditable.

use std::io::{Read, Write};
use std::net::{Shutdown, TcpStream};

/// Cap on the request line + headers; a header block bigger than this
/// is rejected before any body is read.
const MAX_HEAD: usize = 16 * 1024;

/// A parsed request.
#[derive(Debug)]
pub struct Request {
    /// Method verb, as sent (`GET`, `POST`, ...).
    pub method: String,
    /// Request path, as sent (no query parsing; the API doesn't use it).
    pub path: String,
    /// `(lowercased-name, value)` pairs in arrival order.
    pub headers: Vec<(String, String)>,
    /// The request body (empty when no `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of a header, by lowercase name.
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(n, _)| n == name).map(|(_, v)| v.as_str())
    }
}

/// Why a request could not be read.
#[derive(Debug)]
pub enum HttpError {
    /// Socket-level failure (includes read timeouts).
    Io(std::io::Error),
    /// The bytes are not the HTTP subset this server speaks.
    Malformed(&'static str),
    /// `Content-Length` exceeds the configured body cap.
    BodyTooLarge {
        /// The configured cap, for the error message.
        limit: usize,
    },
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Io(e) => write!(f, "i/o: {e}"),
            HttpError::Malformed(what) => write!(f, "malformed request: {what}"),
            HttpError::BodyTooLarge { limit } => {
                write!(f, "request body exceeds the {limit}-byte limit")
            }
        }
    }
}

impl From<std::io::Error> for HttpError {
    fn from(e: std::io::Error) -> Self {
        HttpError::Io(e)
    }
}

/// Reads one request from the stream, enforcing the body cap.
///
/// # Errors
///
/// [`HttpError`] on socket failure, non-HTTP bytes, an unsupported
/// construct (chunked transfer), or a body larger than `max_body`.
pub fn read_request(stream: &mut TcpStream, max_body: usize) -> Result<Request, HttpError> {
    let mut buf = Vec::with_capacity(1024);
    let mut chunk = [0u8; 4096];
    let head_end = loop {
        if let Some(pos) = find_head_end(&buf) {
            break pos;
        }
        if buf.len() > MAX_HEAD {
            return Err(HttpError::Malformed("header block too large"));
        }
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(HttpError::Malformed("connection closed mid-headers"));
        }
        buf.extend_from_slice(&chunk[..n]);
    };
    let head = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| HttpError::Malformed("non-utf8 header block"))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split(' ');
    let (method, path, version) =
        (parts.next().unwrap_or(""), parts.next().unwrap_or(""), parts.next().unwrap_or(""));
    if method.is_empty() || path.is_empty() || !version.starts_with("HTTP/1.") {
        return Err(HttpError::Malformed("bad request line"));
    }
    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::Malformed("bad header line"));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
    let find = |n: &str| headers.iter().find(|(name, _)| name == n).map(|(_, v)| v.as_str());
    if find("transfer-encoding").is_some() {
        return Err(HttpError::Malformed("transfer-encoding not supported"));
    }
    let content_length = match find("content-length") {
        None => 0,
        Some(v) => v.parse::<usize>().map_err(|_| HttpError::Malformed("bad content-length"))?,
    };
    if content_length > max_body {
        return Err(HttpError::BodyTooLarge { limit: max_body });
    }
    let mut body = buf[head_end + 4..].to_vec();
    if body.len() > content_length {
        return Err(HttpError::Malformed("bytes past content-length"));
    }
    while body.len() < content_length {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(HttpError::Malformed("connection closed mid-body"));
        }
        body.extend_from_slice(&chunk[..n]);
        if body.len() > content_length {
            return Err(HttpError::Malformed("bytes past content-length"));
        }
    }
    Ok(Request { method: method.to_string(), path: path.to_string(), headers, body })
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// The reason phrase for the status codes this service emits.
#[must_use]
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Writes one complete response and half-closes the stream. Extra
/// headers ride after the fixed `Content-Type`/`Content-Length`/
/// `Connection: close` trio.
///
/// # Errors
///
/// Propagates socket write failures (the caller can only log them —
/// the peer is gone).
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    extra_headers: &[(&str, String)],
    body: &[u8],
) -> std::io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n",
        status,
        reason(status),
        body.len(),
    );
    for (name, value) in extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()?;
    let _ = stream.shutdown(Shutdown::Write);
    Ok(())
}

/// A client-side response.
#[derive(Debug)]
pub struct Response {
    /// Status code from the status line.
    pub status: u16,
    /// `(lowercased-name, value)` pairs.
    pub headers: Vec<(String, String)>,
    /// Response body.
    pub body: Vec<u8>,
}

impl Response {
    /// First value of a header, by lowercase name.
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(n, _)| n == name).map(|(_, v)| v.as_str())
    }
}

/// One-shot client: connects, sends `method path` with `body`, reads
/// the whole response (the server always closes). Used by `d16-loadgen`
/// and the serve tests.
///
/// # Errors
///
/// Socket failures and non-HTTP responses surface as [`HttpError`].
pub fn request(addr: &str, method: &str, path: &str, body: &[u8]) -> Result<Response, HttpError> {
    let mut stream = TcpStream::connect(addr)?;
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len(),
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()?;
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    let head_end =
        find_head_end(&raw).ok_or(HttpError::Malformed("no header terminator in response"))?;
    let head = std::str::from_utf8(&raw[..head_end])
        .map_err(|_| HttpError::Malformed("non-utf8 response head"))?;
    let mut lines = head.split("\r\n");
    let status_line = lines.next().unwrap_or("");
    let status = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or(HttpError::Malformed("bad status line"))?;
    let mut headers = Vec::new();
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
        }
    }
    Ok(Response { status, headers, body: raw[head_end + 4..].to_vec() })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reasons_cover_the_status_taxonomy() {
        for s in [200, 400, 404, 422, 429, 500, 503] {
            assert_ne!(reason(s), "Unknown", "{s}");
        }
    }

    #[test]
    fn head_end_finder() {
        assert_eq!(find_head_end(b"GET / HTTP/1.1\r\n\r\nbody"), Some(14));
        assert_eq!(find_head_end(b"partial\r\n"), None);
    }
}
