//! Corpus replay + load generation for `d16-serve`.
//!
//! ```text
//! d16-loadgen --addr 127.0.0.1:8016 --corpus crates/serve/corpus \
//!             --concurrency 8 --repeat 3 --out BENCH_serve.json \
//!             --save-bodies /tmp/bodies --min-hit-ratio 0.9 \
//!             --check-drift BENCH_serve.json --drift-factor 50
//! d16-loadgen --reconcile metrics.json bench_cold.json bench_warm.json
//! ```
//!
//! Replay mode fires every committed corpus request (times `--repeat`)
//! at the configured concurrency, enforces each entry's expected
//! status, asserts that repeated answers are byte-identical, and
//! writes a `bench_serve/1` timing report (p50/p99 latency, reqs/sec,
//! warm-hit ratio, per-status counts). Reconcile mode cross-checks a
//! daemon's `--metrics-json` dump against the request totals of one or
//! more replay reports — the serving twin of the repro's
//! counter-reconciliation gates.
//!
//! Exit codes: 0 ok, 1 check failed, 2 user error.

use d16_bench::json::Json;
use d16_serve::http;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

struct CorpusEntry {
    name: String,
    expect_status: u16,
    request: String,
}

struct Sample {
    entry: usize,
    status: u16,
    wall_ns: u64,
    cache: Option<String>,
    body: Vec<u8>,
}

fn fail(msg: &str) -> ! {
    eprintln!("d16-loadgen: {msg}");
    std::process::exit(1);
}

fn usage_error(msg: &str) -> ! {
    eprintln!("d16-loadgen: {msg}");
    eprintln!("usage: d16-loadgen --addr HOST:PORT --corpus DIR [--concurrency N]");
    eprintln!("         [--repeat N] [--out FILE] [--save-bodies DIR]");
    eprintln!("         [--min-hit-ratio F] [--check-drift FILE] [--drift-factor N]");
    eprintln!("   or: d16-loadgen --reconcile METRICS.json BENCH.json...");
    std::process::exit(2);
}

fn load_corpus(dir: &str) -> Vec<CorpusEntry> {
    let mut paths: Vec<_> = match std::fs::read_dir(dir) {
        Ok(rd) => rd
            .filter_map(Result::ok)
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|x| x == "json"))
            .collect(),
        Err(e) => usage_error(&format!("--corpus {dir}: {e}")),
    };
    paths.sort();
    let mut out = Vec::with_capacity(paths.len());
    for path in paths {
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => usage_error(&format!("{}: {e}", path.display())),
        };
        let doc = match Json::parse(&text) {
            Ok(d) => d,
            Err(e) => usage_error(&format!("{}: {e}", path.display())),
        };
        let name = doc.get("name").and_then(Json::as_str);
        let expect = doc.get("expect_status").and_then(Json::as_u64);
        let request = doc.get("request");
        let (Some(name), Some(expect), Some(request)) = (name, expect, request) else {
            usage_error(&format!(
                "{}: corpus entries need `name`, `expect_status`, `request`",
                path.display()
            ));
        };
        out.push(CorpusEntry {
            name: name.to_string(),
            expect_status: expect as u16,
            request: format!("{request}"),
        });
    }
    if out.is_empty() {
        usage_error(&format!("--corpus {dir}: no .json entries"));
    }
    out
}

fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn replay(
    addr: &str,
    corpus: &[CorpusEntry],
    concurrency: usize,
    repeat: usize,
) -> (Vec<Sample>, u64) {
    let plan: Vec<usize> = (0..repeat).flat_map(|_| 0..corpus.len()).collect();
    let next = AtomicUsize::new(0);
    let samples: Mutex<Vec<Sample>> = Mutex::new(Vec::with_capacity(plan.len()));
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..concurrency.max(1) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(&entry) = plan.get(i) else { return };
                let req = &corpus[entry];
                let s0 = Instant::now();
                let resp = match http::request(addr, "POST", "/v1/run", req.request.as_bytes()) {
                    Ok(r) => r,
                    Err(e) => fail(&format!("{}: transport error: {e}", req.name)),
                };
                let sample = Sample {
                    entry,
                    status: resp.status,
                    wall_ns: s0.elapsed().as_nanos() as u64,
                    cache: resp.header("x-d16-cache").map(str::to_string),
                    body: resp.body,
                };
                if let Ok(mut all) = samples.lock() {
                    all.push(sample);
                }
            });
        }
    });
    let wall_ns = t0.elapsed().as_nanos() as u64;
    let samples = samples.into_inner().unwrap_or_default();
    (samples, wall_ns)
}

fn check_and_report(
    corpus: &[CorpusEntry],
    samples: &[Sample],
    wall_ns: u64,
    concurrency: usize,
    repeat: usize,
) -> (Json, f64) {
    // Every sample must carry its entry's expected status.
    for s in samples {
        let want = corpus[s.entry].expect_status;
        if s.status != want {
            let body = String::from_utf8_lossy(&s.body);
            fail(&format!(
                "{}: expected status {want}, got {} (body: {})",
                corpus[s.entry].name,
                s.status,
                body.trim()
            ));
        }
    }
    // Repeated answers must be byte-identical (the bodies are pure
    // functions of the request; any drift is a serving bug).
    for (i, entry) in corpus.iter().enumerate() {
        let mut first: Option<&[u8]> = None;
        for s in samples.iter().filter(|s| s.entry == i) {
            match first {
                None => first = Some(&s.body),
                Some(f) if f != s.body.as_slice() => {
                    fail(&format!("{}: answers differ between repeats", entry.name))
                }
                Some(_) => {}
            }
        }
    }
    let mut status_counts: BTreeMap<u16, u64> = BTreeMap::new();
    for s in samples {
        *status_counts.entry(s.status).or_insert(0) += 1;
    }
    let (mut hits, mut misses) = (0u64, 0u64);
    for s in samples.iter().filter(|s| s.status == 200) {
        match s.cache.as_deref() {
            Some("hit") => hits += 1,
            _ => misses += 1,
        }
    }
    let hit_ratio = if hits + misses == 0 { 0.0 } else { hits as f64 / (hits + misses) as f64 };
    let mut lat: Vec<u64> = samples.iter().map(|s| s.wall_ns).collect();
    lat.sort_unstable();
    let secs = wall_ns as f64 / 1e9;
    let reqs_per_sec = if secs > 0.0 { samples.len() as f64 / secs } else { 0.0 };
    let mut status_obj = Json::obj();
    for (code, n) in &status_counts {
        status_obj = status_obj.with(&code.to_string(), *n);
    }
    let doc = Json::obj()
        .with("schema", "bench_serve/1")
        .with("kind", "timing")
        .with("corpus", corpus.len())
        .with("requests", samples.len())
        .with("concurrency", concurrency)
        .with("repeat", repeat)
        .with("wall_ns", wall_ns)
        .with("reqs_per_sec", reqs_per_sec)
        .with("p50_ns", percentile(&lat, 0.50))
        .with("p90_ns", percentile(&lat, 0.90))
        .with("p99_ns", percentile(&lat, 0.99))
        .with("max_ns", lat.last().copied().unwrap_or(0))
        .with("warm_hit_ratio", hit_ratio)
        .with("status", status_obj);
    (doc, hit_ratio)
}

fn save_bodies(dir: &str, corpus: &[CorpusEntry], samples: &[Sample]) {
    if let Err(e) = std::fs::create_dir_all(dir) {
        fail(&format!("--save-bodies {dir}: {e}"));
    }
    for (i, entry) in corpus.iter().enumerate() {
        let Some(s) = samples.iter().find(|s| s.entry == i) else { continue };
        let path = format!("{dir}/{}.json", entry.name);
        if let Err(e) = std::fs::write(&path, &s.body) {
            fail(&format!("{path}: {e}"));
        }
    }
}

fn u64_field(doc: &Json, name: &str, context: &str) -> u64 {
    match doc.get(name).and_then(Json::as_u64) {
        Some(v) => v,
        None => fail(&format!("{context}: missing numeric `{name}`")),
    }
}

fn check_drift(report: &Json, pinned_path: &str, factor: u64) {
    let text = match std::fs::read_to_string(pinned_path) {
        Ok(t) => t,
        Err(e) => fail(&format!("--check-drift {pinned_path}: {e}")),
    };
    let pinned = match Json::parse(&text) {
        Ok(d) => d,
        Err(e) => fail(&format!("--check-drift {pinned_path}: {e}")),
    };
    // The deterministic half must match exactly.
    for field in ["schema", "kind"] {
        let (a, b) =
            (report.get(field).and_then(Json::as_str), pinned.get(field).and_then(Json::as_str));
        if a != b {
            fail(&format!("drift: `{field}` differs from {pinned_path}: {a:?} vs {b:?}"));
        }
    }
    for field in ["corpus", "requests", "concurrency", "repeat"] {
        let a = u64_field(report, field, "this run");
        let b = u64_field(&pinned, field, pinned_path);
        if a != b {
            fail(&format!("drift: `{field}` differs from {pinned_path}: {a} vs {b}"));
        }
    }
    let (a, b) = (report.get("status"), pinned.get("status"));
    if format!("{:?}", a.map(ToString::to_string)) != format!("{:?}", b.map(ToString::to_string)) {
        fail(&format!(
            "drift: per-status counts differ from {pinned_path}: {:?} vs {:?}",
            a.map(ToString::to_string),
            b.map(ToString::to_string)
        ));
    }
    // Latency is machine-dependent: gate only on a generous factor of
    // the pinned p99, exactly like the bench-drift timing gate.
    let p99 = u64_field(report, "p99_ns", "this run");
    let pinned_p99 = u64_field(&pinned, "p99_ns", pinned_path);
    if p99 > pinned_p99.saturating_mul(factor) {
        fail(&format!(
            "drift: p99 {p99}ns exceeds {factor}x the pinned {pinned_p99}ns ({pinned_path})"
        ));
    }
    eprintln!(
        "drift ok: p99 {p99}ns vs pinned {pinned_p99}ns (bound {}ns)",
        pinned_p99.saturating_mul(factor)
    );
}

fn counters_of(metrics: &Json, context: &str) -> BTreeMap<String, u64> {
    let Some(counters) = metrics.get("counters").and_then(Json::as_obj) else {
        fail(&format!("{context}: no `counters` object"));
    };
    counters.iter().filter_map(|(k, v)| v.as_u64().map(|n| (k.clone(), n))).collect()
}

fn reconcile(metrics_path: &str, bench_paths: &[String]) {
    let parse = |path: &str| -> Json {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => fail(&format!("{path}: {e}")),
        };
        match Json::parse(&text) {
            Ok(d) => d,
            Err(e) => fail(&format!("{path}: {e}")),
        }
    };
    let metrics = parse(metrics_path);
    let counters = counters_of(&metrics, metrics_path);
    let counter = |name: &str| counters.get(name).copied().unwrap_or(0);

    let mut total = 0u64;
    let mut by_status: BTreeMap<String, u64> = BTreeMap::new();
    for path in bench_paths {
        let bench = parse(path);
        total += u64_field(&bench, "requests", path);
        if let Some(statuses) = bench.get("status").and_then(Json::as_obj) {
            for (code, n) in statuses {
                if let Some(n) = n.as_u64() {
                    *by_status.entry(code.clone()).or_insert(0) += n;
                }
            }
        }
    }
    let status = |code: &str| by_status.get(code).copied().unwrap_or(0);

    let shed = status("429");
    let checks: &[(&str, u64, u64)] = &[
        ("run_requests == sent - shed", counter("serve.run_requests"), total - shed),
        ("ok == 200s", counter("serve.ok"), status("200")),
        ("user_error == 400s", counter("serve.user_error"), status("400")),
        ("compile_error == 422s", counter("serve.compile_error"), status("422")),
        ("over_capacity == 429s", counter("serve.over_capacity"), shed),
        ("internal_error == 500s", counter("serve.internal_error"), status("500")),
        ("degraded == 503s", counter("serve.degraded"), status("503")),
        (
            "cache_hit + cache_miss == ok",
            counter("serve.cache_hit") + counter("serve.cache_miss"),
            counter("serve.ok"),
        ),
    ];
    let mut bad = false;
    for (what, daemon, loadgen) in checks {
        if daemon == loadgen {
            eprintln!("reconcile ok: {what} ({daemon})");
        } else {
            eprintln!("reconcile MISMATCH: {what}: daemon {daemon}, loadgen {loadgen}");
            bad = true;
        }
    }
    if bad {
        fail("daemon counters do not reconcile with loadgen totals");
    }
    println!("reconciled {total} requests across {} report(s)", bench_paths.len());
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut addr: Option<String> = None;
    let mut corpus_dir: Option<String> = None;
    let mut concurrency = 1usize;
    let mut repeat = 1usize;
    let mut out: Option<String> = None;
    let mut save: Option<String> = None;
    let mut min_hit_ratio: Option<f64> = None;
    let mut drift: Option<String> = None;
    let mut drift_factor = 50u64;
    let mut reconcile_metrics: Option<String> = None;
    let mut reconcile_benches: Vec<String> = Vec::new();

    let take = |args: &[String], i: &mut usize, flag: &str| -> String {
        *i += 1;
        match args.get(*i) {
            Some(v) => v.clone(),
            None => usage_error(&format!("{flag} needs a value")),
        }
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--addr" => addr = Some(take(&args, &mut i, "--addr")),
            "--corpus" => corpus_dir = Some(take(&args, &mut i, "--corpus")),
            "--concurrency" => {
                concurrency = take(&args, &mut i, "--concurrency")
                    .parse()
                    .unwrap_or_else(|_| usage_error("--concurrency: not a number"));
            }
            "--repeat" => {
                repeat = take(&args, &mut i, "--repeat")
                    .parse()
                    .unwrap_or_else(|_| usage_error("--repeat: not a number"));
            }
            "--out" => out = Some(take(&args, &mut i, "--out")),
            "--save-bodies" => save = Some(take(&args, &mut i, "--save-bodies")),
            "--min-hit-ratio" => {
                min_hit_ratio = Some(
                    take(&args, &mut i, "--min-hit-ratio")
                        .parse()
                        .unwrap_or_else(|_| usage_error("--min-hit-ratio: not a number")),
                );
            }
            "--check-drift" => drift = Some(take(&args, &mut i, "--check-drift")),
            "--drift-factor" => {
                drift_factor = take(&args, &mut i, "--drift-factor")
                    .parse()
                    .unwrap_or_else(|_| usage_error("--drift-factor: not a number"));
            }
            "--reconcile" => reconcile_metrics = Some(take(&args, &mut i, "--reconcile")),
            other if other.starts_with("--") => {
                usage_error(&format!("unknown flag {other}"));
            }
            other => reconcile_benches.push(other.to_string()),
        }
        i += 1;
    }

    if let Some(metrics_path) = reconcile_metrics {
        if reconcile_benches.is_empty() {
            usage_error("--reconcile needs at least one bench report");
        }
        reconcile(&metrics_path, &reconcile_benches);
        return;
    }
    let (Some(addr), Some(corpus_dir)) = (addr, corpus_dir) else {
        usage_error("replay mode needs --addr and --corpus");
    };
    if !reconcile_benches.is_empty() {
        usage_error("stray positional arguments (only --reconcile takes them)");
    }
    if repeat == 0 {
        usage_error("--repeat must be at least 1");
    }

    let corpus = load_corpus(&corpus_dir);
    let (samples, wall_ns) = replay(&addr, &corpus, concurrency, repeat);
    if samples.len() != corpus.len() * repeat {
        fail(&format!("lost samples: sent {}, recorded {}", corpus.len() * repeat, samples.len()));
    }
    let (report, hit_ratio) = check_and_report(&corpus, &samples, wall_ns, concurrency, repeat);
    eprintln!(
        "replayed {} requests ({} entries x {repeat}) at concurrency {concurrency}: hit ratio {hit_ratio:.3}",
        samples.len(),
        corpus.len(),
    );
    if let Some(dir) = save {
        save_bodies(&dir, &corpus, &samples);
        eprintln!("saved bodies to {dir}");
    }
    if let Some(floor) = min_hit_ratio {
        if hit_ratio < floor {
            fail(&format!("warm-hit ratio {hit_ratio:.3} below the {floor:.3} floor"));
        }
    }
    if let Some(pinned) = drift {
        check_drift(&report, &pinned, drift_factor);
    }
    if let Some(path) = out {
        if let Err(e) = std::fs::write(&path, format!("{report}\n")) {
            fail(&format!("{path}: {e}"));
        }
        eprintln!("wrote {path}");
    }
}
