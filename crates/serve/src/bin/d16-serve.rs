//! The experiment-service daemon.
//!
//! ```text
//! d16-serve --addr 127.0.0.1:8016 --store /tmp/d16-store
//! d16-serve --addr 127.0.0.1:0 --port-file /tmp/port \
//!           --metrics-json metrics.json
//! ```
//!
//! Runs until SIGTERM/SIGINT or `POST /shutdown`, then drains the
//! worker pool and (with `--metrics-json`) writes the final merged
//! telemetry dump. Exit codes follow the repro contract: 0 ok, 1
//! fatal, 2 user error.

use d16_serve::{ServeConfig, Server};
use std::sync::atomic::Ordering;
use std::time::Duration;

#[cfg(unix)]
mod sig {
    use std::sync::atomic::{AtomicBool, Ordering};

    pub static SHUTDOWN: AtomicBool = AtomicBool::new(false);

    extern "C" fn handler(_signum: i32) {
        SHUTDOWN.store(true, Ordering::SeqCst);
    }

    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    /// Installs the flag-setting handler for SIGINT (2) and SIGTERM (15).
    pub fn install() {
        unsafe {
            signal(2, handler);
            signal(15, handler);
        }
    }
}

#[cfg(not(unix))]
mod sig {
    use std::sync::atomic::{AtomicBool, Ordering};
    pub static SHUTDOWN: AtomicBool = AtomicBool::new(false);
    pub fn install() {}
}

fn usage() {
    eprintln!("usage: d16-serve [options]");
    eprintln!("  --addr HOST:PORT    bind address (default 127.0.0.1:0)");
    eprintln!("  --port-file FILE    write the bound address to FILE");
    eprintln!("  --workers N         worker threads (default: min(cpus, 4))");
    eprintln!("  --queue N           connection queue cap (default workers*4)");
    eprintln!("  --store DIR         response-cache store root");
    eprintln!("  --max-body BYTES    request body cap (default 262144)");
    eprintln!("  --timeout-ms N      per-request deadline (default 10000)");
    eprintln!("  --fuel-cap N        max simulated instructions per request");
    eprintln!("  --metrics-json FILE write the telemetry dump on shutdown");
}

fn flag_value<'a>(args: &'a [String], i: &mut usize, flag: &str) -> &'a str {
    *i += 1;
    match args.get(*i) {
        Some(v) => v,
        None => {
            eprintln!("{flag} needs a value");
            std::process::exit(2);
        }
    }
}

fn parsed_flag<T: std::str::FromStr>(args: &[String], i: &mut usize, flag: &str) -> T {
    let raw = flag_value(args, i, flag);
    match raw.parse() {
        Ok(v) => v,
        Err(_) => {
            eprintln!("{flag}: cannot parse `{raw}`");
            std::process::exit(2);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = ServeConfig::default();
    let mut queue_set = false;
    let mut port_file: Option<String> = None;
    let mut metrics_json: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--addr" => cfg.addr = flag_value(&args, &mut i, "--addr").to_string(),
            "--port-file" => port_file = Some(flag_value(&args, &mut i, "--port-file").to_string()),
            "--workers" => cfg.workers = parsed_flag(&args, &mut i, "--workers"),
            "--queue" => {
                cfg.queue_cap = parsed_flag(&args, &mut i, "--queue");
                queue_set = true;
            }
            "--store" => cfg.store_root = Some(flag_value(&args, &mut i, "--store").into()),
            "--max-body" => cfg.max_body = parsed_flag(&args, &mut i, "--max-body"),
            "--timeout-ms" => {
                cfg.timeout = Duration::from_millis(parsed_flag(&args, &mut i, "--timeout-ms"));
            }
            "--fuel-cap" => cfg.fuel_cap = parsed_flag(&args, &mut i, "--fuel-cap"),
            "--metrics-json" => {
                metrics_json = Some(flag_value(&args, &mut i, "--metrics-json").to_string());
            }
            "--help" | "-h" => {
                usage();
                return;
            }
            other => {
                eprintln!("unknown flag: {other}");
                usage();
                std::process::exit(2);
            }
        }
        i += 1;
    }
    if cfg.workers == 0 || cfg.fuel_cap == 0 || cfg.timeout.is_zero() {
        eprintln!("--workers, --fuel-cap and --timeout-ms must be positive");
        std::process::exit(2);
    }
    if !queue_set {
        cfg.queue_cap = cfg.workers * 4;
    }

    sig::install();
    let server = match Server::start(cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("d16-serve: startup failed: {e}");
            std::process::exit(1);
        }
    };
    let addr = server.addr();
    if let Some(path) = &port_file {
        if let Err(e) = std::fs::write(path, format!("{addr}\n")) {
            eprintln!("d16-serve: writing {path}: {e}");
            std::process::exit(1);
        }
    }
    eprintln!("d16-serve listening on {addr}");

    // Wait for either the signal handler or an HTTP-initiated shutdown
    // (`POST /shutdown` flips the same flag the server polls).
    let flag = server.shutdown_flag();
    while !flag.load(Ordering::SeqCst) {
        if sig::SHUTDOWN.load(Ordering::SeqCst) {
            flag.store(true, Ordering::SeqCst);
            break;
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    let metrics = server.join();
    eprintln!("d16-serve: drained, shut down");
    if let Some(path) = metrics_json {
        if let Err(e) = std::fs::write(&path, format!("{metrics}\n")) {
            eprintln!("d16-serve: writing {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("wrote {path}");
    }
}
