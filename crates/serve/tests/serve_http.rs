//! In-process integration tests: a real `Server` on a loopback port,
//! driven through the crate's own HTTP client.

use d16_bench::json::Json;
use d16_serve::{http, ServeConfig, Server};
use d16_testkit::TempDir;
use std::time::Duration;

fn cfg() -> ServeConfig {
    ServeConfig { workers: 2, queue_cap: 8, ..ServeConfig::default() }
}

fn post_run(addr: &str, body: &str) -> http::Response {
    http::request(addr, "POST", "/v1/run", body.as_bytes()).expect("transport")
}

fn body_json(resp: &http::Response) -> Json {
    Json::parse(std::str::from_utf8(&resp.body).expect("utf8 body")).expect("json body")
}

#[test]
fn healthz_and_unknown_routes() {
    let server = Server::start(cfg()).expect("start");
    let addr = server.addr().to_string();

    let ok = http::request(&addr, "GET", "/healthz", b"").expect("transport");
    assert_eq!(ok.status, 200);
    assert!(matches!(body_json(&ok).get("ok"), Some(Json::Bool(true))));

    let missing = http::request(&addr, "GET", "/nope", b"").expect("transport");
    assert_eq!(missing.status, 404);
    let doc = body_json(&missing);
    assert_eq!(
        doc.get("error").and_then(|e| e.get("kind")).and_then(Json::as_str),
        Some("not_found")
    );
    server.stop();
}

#[test]
fn run_statuses_cover_the_taxonomy() {
    let server = Server::start(cfg()).expect("start");
    let addr = server.addr().to_string();

    // 400: unparseable request.
    let bad = post_run(&addr, "this is not json");
    assert_eq!(bad.status, 400);
    assert_eq!(
        body_json(&bad).get("error").and_then(|e| e.get("kind")).and_then(Json::as_str),
        Some("bad_request")
    );

    // 422: toolchain diagnostics.
    let broken = post_run(&addr, r#"{"source":"int main( {"}"#);
    assert_eq!(broken.status, 422);
    assert_eq!(
        body_json(&broken).get("error").and_then(|e| e.get("kind")).and_then(Json::as_str),
        Some("compile_error")
    );

    // 200: a real run.
    let ok = post_run(&addr, r#"{"workload":"towers"}"#);
    assert_eq!(ok.status, 200, "{}", String::from_utf8_lossy(&ok.body));
    let doc = body_json(&ok);
    assert!(matches!(doc.get("ok"), Some(Json::Bool(true))));
    assert!(doc.get("stats").and_then(|s| s.get("insns")).and_then(Json::as_u64).unwrap() > 0);
    assert!(ok.header("x-d16-wall-ns").is_some());

    let metrics = server.stop();
    let counters = metrics.get("counters").expect("counters");
    assert_eq!(counters.get("serve.run_requests").and_then(Json::as_u64), Some(3));
    assert_eq!(counters.get("serve.ok").and_then(Json::as_u64), Some(1));
    assert_eq!(counters.get("serve.user_error").and_then(Json::as_u64), Some(1));
    assert_eq!(counters.get("serve.compile_error").and_then(Json::as_u64), Some(1));
}

#[test]
fn fuel_cap_exhaustion_is_a_user_error() {
    let server = Server::start(ServeConfig { fuel_cap: 1_000, ..cfg() }).expect("start");
    let addr = server.addr().to_string();
    let resp = post_run(&addr, r#"{"workload":"towers"}"#);
    assert_eq!(resp.status, 400);
    assert_eq!(
        body_json(&resp).get("error").and_then(|e| e.get("kind")).and_then(Json::as_str),
        Some("fuel_exhausted")
    );
    server.stop();
}

#[test]
fn oversized_bodies_are_rejected_up_front() {
    let server = Server::start(ServeConfig { max_body: 64, ..cfg() }).expect("start");
    let addr = server.addr().to_string();
    let big = format!(r#"{{"workload":"towers","tag":"{}"}}"#, "x".repeat(100));
    let resp = post_run(&addr, &big);
    assert_eq!(resp.status, 400);
    assert!(
        String::from_utf8_lossy(&resp.body).contains("64-byte limit"),
        "{}",
        String::from_utf8_lossy(&resp.body)
    );
    server.stop();
}

#[test]
fn cold_and_warm_answers_are_byte_identical() {
    let dir = TempDir::new("serve-http-store");
    let server = Server::start(ServeConfig { store_root: Some(dir.path().to_path_buf()), ..cfg() })
        .expect("start");
    let addr = server.addr().to_string();

    let cold = post_run(&addr, r#"{"workload":"towers","sweep":true}"#);
    assert_eq!(cold.status, 200, "{}", String::from_utf8_lossy(&cold.body));
    assert_eq!(cold.header("x-d16-cache"), Some("miss"));
    let warm = post_run(&addr, r#"{"workload":"towers","sweep":true}"#);
    assert_eq!(warm.status, 200);
    assert_eq!(warm.header("x-d16-cache"), Some("hit"));
    assert_eq!(cold.body, warm.body, "a warm cache must never change an answer");

    let metrics = server.stop();
    let counters = metrics.get("counters").expect("counters");
    assert_eq!(counters.get("serve.cache_hit").and_then(Json::as_u64), Some(1));
    assert_eq!(counters.get("serve.cache_miss").and_then(Json::as_u64), Some(1));
    assert_eq!(counters.get("store.write").and_then(Json::as_u64), Some(1));
}

#[test]
fn full_queue_sheds_with_429() {
    use std::io::Write as _;
    // One worker, a queue of one: occupy the worker with a half-sent
    // request, park a second connection in the queue, and the third
    // must be shed by the acceptor.
    let server = Server::start(ServeConfig {
        workers: 1,
        queue_cap: 1,
        timeout: Duration::from_secs(5),
        ..ServeConfig::default()
    })
    .expect("start");
    let addr = server.addr().to_string();

    let mut hold_worker = std::net::TcpStream::connect(&addr).expect("connect");
    hold_worker.write_all(b"POST /v1/run HTTP/1.1\r\n").expect("write");
    std::thread::sleep(Duration::from_millis(200)); // let the worker pick it up
    let mut hold_queue = std::net::TcpStream::connect(&addr).expect("connect");
    hold_queue.write_all(b"POST /v1/run HTTP/1.1\r\n").expect("write");
    std::thread::sleep(Duration::from_millis(200)); // let the acceptor queue it

    let shed = http::request(&addr, "GET", "/healthz", b"").expect("transport");
    assert_eq!(shed.status, 429, "{}", String::from_utf8_lossy(&shed.body));
    assert_eq!(
        body_json(&shed).get("error").and_then(|e| e.get("kind")).and_then(Json::as_str),
        Some("over_capacity")
    );

    drop(hold_worker);
    drop(hold_queue);
    let metrics = server.stop();
    let counters = metrics.get("counters").expect("counters");
    assert_eq!(counters.get("serve.over_capacity").and_then(Json::as_u64), Some(1));
}

#[test]
fn http_shutdown_route_stops_the_server() {
    let server = Server::start(cfg()).expect("start");
    let addr = server.addr().to_string();
    let resp = http::request(&addr, "POST", "/shutdown", b"").expect("transport");
    assert_eq!(resp.status, 200);
    // join returns (rather than hanging) because /shutdown flipped the flag.
    let metrics = server.join();
    assert_eq!(metrics.get("kind").and_then(Json::as_str), Some("metrics"));
}
