//! Subprocess fault-injection tests: boot the real `d16-serve` binary
//! with `D16_FAILPOINTS` armed, pin the HTTP status each fault maps to,
//! and prove the daemon keeps serving clean traffic afterwards.
//!
//! Every failpoint is armed *for a subject* (the request `tag`), so the
//! same daemon serves both the faulted and the clean request — which is
//! exactly the property worth testing: a fault degrades one request,
//! never the process.

use d16_bench::json::Json;
use d16_serve::http;
use d16_testkit::TempDir;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

struct Daemon {
    child: Child,
    addr: String,
    _dir: TempDir,
}

impl Daemon {
    /// Boots `d16-serve` with the given failpoint spec and extra flags,
    /// and waits until `/healthz` answers.
    fn boot(failpoints: &str, extra: &[&str]) -> Daemon {
        let dir = TempDir::new("serve-faults");
        let port_file = dir.path().join("port");
        let child = Command::new(env!("CARGO_BIN_EXE_d16-serve"))
            .args(["--addr", "127.0.0.1:0", "--port-file"])
            .arg(&port_file)
            .args(extra)
            .env("D16_FAILPOINTS", failpoints)
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn d16-serve");
        let deadline = Instant::now() + Duration::from_secs(10);
        let addr = loop {
            assert!(Instant::now() < deadline, "daemon did not come up");
            if let Ok(text) = std::fs::read_to_string(&port_file) {
                let addr = text.trim().to_string();
                if !addr.is_empty()
                    && http::request(&addr, "GET", "/healthz", b"").is_ok_and(|r| r.status == 200)
                {
                    break addr;
                }
            }
            std::thread::sleep(Duration::from_millis(20));
        };
        Daemon { child, addr, _dir: dir }
    }

    fn post_run(&self, body: &str) -> http::Response {
        http::request(&self.addr, "POST", "/v1/run", body.as_bytes()).expect("transport")
    }

    /// The daemon must still be alive and serving: `/healthz` answers
    /// and a clean (untagged) run comes back 200.
    fn assert_still_serving(&self) {
        let health = http::request(&self.addr, "GET", "/healthz", b"").expect("transport");
        assert_eq!(health.status, 200, "daemon died after the fault");
        let clean = self.post_run(r#"{"workload":"towers"}"#);
        assert_eq!(clean.status, 200, "{}", String::from_utf8_lossy(&clean.body));
    }

    /// Clean shutdown over HTTP; asserts exit code 0.
    fn shutdown(mut self) {
        let _ = http::request(&self.addr, "POST", "/shutdown", b"");
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            match self.child.try_wait().expect("wait") {
                Some(status) => {
                    assert!(status.success(), "daemon exit: {status}");
                    break;
                }
                None if Instant::now() > deadline => {
                    let _ = self.child.kill();
                    panic!("daemon did not exit after /shutdown");
                }
                None => std::thread::sleep(Duration::from_millis(20)),
            }
        }
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn error_kind(resp: &http::Response) -> String {
    Json::parse(std::str::from_utf8(&resp.body).expect("utf8"))
        .expect("json")
        .get("error")
        .and_then(|e| e.get("kind"))
        .and_then(Json::as_str)
        .unwrap_or("")
        .to_string()
}

#[test]
fn fuel_exhausted_fault_degrades_to_400() {
    let daemon = Daemon::boot("serve-fuel-exhausted=faulted", &[]);
    let resp = daemon.post_run(r#"{"workload":"towers","tag":"faulted"}"#);
    assert_eq!(resp.status, 400, "{}", String::from_utf8_lossy(&resp.body));
    assert_eq!(error_kind(&resp), "fuel_exhausted");
    daemon.assert_still_serving();
    daemon.shutdown();
}

#[test]
fn store_contention_fault_degrades_to_503() {
    let daemon = Daemon::boot("serve-store-contention=faulted", &[]);
    let resp = daemon.post_run(r#"{"workload":"towers","tag":"faulted"}"#);
    assert_eq!(resp.status, 503, "{}", String::from_utf8_lossy(&resp.body));
    assert_eq!(error_kind(&resp), "store_contention");
    daemon.assert_still_serving();
    daemon.shutdown();
}

#[test]
fn slow_worker_fault_trips_the_deadline_to_503() {
    // A short deadline keeps the wedged worker's sleep (deadline + 50ms)
    // from slowing the test; clean requests still finish well inside it.
    let daemon = Daemon::boot("serve-slow-worker=faulted", &["--timeout-ms", "2000"]);
    let resp = daemon.post_run(r#"{"workload":"towers","tag":"faulted"}"#);
    assert_eq!(resp.status, 503, "{}", String::from_utf8_lossy(&resp.body));
    assert_eq!(error_kind(&resp), "timeout");
    daemon.assert_still_serving();
    daemon.shutdown();
}
