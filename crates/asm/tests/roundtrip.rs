//! Property tests: disassemble → assemble → decode is the identity over
//! arbitrary in-envelope instructions, for both ISAs; and assembled layout
//! always satisfies basic structural invariants.

use d16_asm::{assemble, link};
use d16_isa::{abi, AluOp, Cond, Gpr, Insn, Isa, MemWidth};
use proptest::prelude::*;

fn gpr(max: u8) -> impl Strategy<Value = Gpr> {
    (0u8..max).prop_map(Gpr::new)
}

fn alu_op() -> impl Strategy<Value = AluOp> {
    prop_oneof![
        Just(AluOp::Add),
        Just(AluOp::Sub),
        Just(AluOp::And),
        Just(AluOp::Or),
        Just(AluOp::Xor),
        Just(AluOp::Shl),
        Just(AluOp::Shr),
        Just(AluOp::Shra),
    ]
}

/// Instructions whose disassembly is position-independent (no PC-relative
/// displacement), in the D16 envelope.
fn d16_pi_insn() -> impl Strategy<Value = Insn> {
    prop_oneof![
        (alu_op(), gpr(16), gpr(16)).prop_map(|(op, rd, rs2)| Insn::Alu { op, rd, rs1: rd, rs2 }),
        (gpr(16), -256i32..256).prop_map(|(rd, imm)| Insn::Mvi { rd, imm }),
        (gpr(16), gpr(16), 0i32..32)
            .prop_map(|(rd, base, d)| Insn::Ld { w: MemWidth::W, rd, base, disp: d * 4 }),
        (gpr(16), gpr(16)).prop_map(|(rs, base)| Insn::St { w: MemWidth::B, rs, base, disp: 0 }),
        (gpr(16), gpr(16)).prop_map(|(rs1, rs2)| Insn::Cmp {
            cond: Cond::Ltu,
            rd: abi::R0,
            rs1,
            rs2
        }),
        gpr(16).prop_map(|target| Insn::Jl { target }),
        gpr(16).prop_map(|rd| Insn::Rdsr { rd }),
        Just(Insn::Nop),
    ]
}

/// Same idea for DLXe (wider registers, immediates, three-address).
fn dlxe_pi_insn() -> impl Strategy<Value = Insn> {
    prop_oneof![
        (alu_op(), gpr(32), gpr(32), gpr(32))
            .prop_map(|(op, rd, rs1, rs2)| Insn::Alu { op, rd, rs1, rs2 }),
        (gpr(32), gpr(32), -32768i32..32768).prop_map(|(rd, rs1, imm)| Insn::AluI {
            op: AluOp::Add,
            rd,
            rs1,
            imm
        }),
        (gpr(32), 0u32..65536).prop_map(|(rd, imm)| Insn::Lui { rd, imm }),
        (gpr(32), gpr(32), gpr(32), 0usize..10).prop_map(|(rd, rs1, rs2, c)| Insn::Cmp {
            cond: Cond::ALL[c],
            rd,
            rs1,
            rs2
        }),
        (gpr(32), gpr(32), -32768i32..32768)
            .prop_map(|(rd, base, disp)| Insn::Ld { w: MemWidth::Hu, rd, base, disp }),
        gpr(32).prop_map(|target| Insn::J { target }),
    ]
}

fn roundtrip(isa: Isa, insns: &[Insn]) -> Vec<Insn> {
    let text: String =
        insns.iter().map(|i| format!("        {}\n", d16_isa::disassemble(i))).collect();
    let obj = assemble(isa, &text).expect("disassembly must re-assemble");
    let image = link(isa, &[obj]).expect("link");
    let ilen = isa.insn_bytes() as usize;
    image.text[..insns.len() * ilen]
        .chunks_exact(ilen)
        .map(|c| match isa {
            Isa::D16 => d16_isa::d16::decode(u16::from_le_bytes([c[0], c[1]])).unwrap(),
            Isa::Dlxe => {
                d16_isa::dlxe::decode(u32::from_le_bytes(c.try_into().unwrap())).unwrap()
            }
        })
        .collect()
}

proptest! {
    #[test]
    fn d16_disasm_asm_roundtrip(insns in proptest::collection::vec(d16_pi_insn(), 1..60)) {
        let back = roundtrip(Isa::D16, &insns);
        prop_assert_eq!(back, insns);
    }

    #[test]
    fn dlxe_disasm_asm_roundtrip(insns in proptest::collection::vec(dlxe_pi_insn(), 1..60)) {
        let back: Vec<Insn> = roundtrip(Isa::Dlxe, &insns);
        let want: Vec<Insn> =
            insns.into_iter().map(d16_isa::dlxe::canonicalize).collect();
        prop_assert_eq!(back, want);
    }

    /// Arbitrary data directives produce a segment whose size matches the
    /// declared contents and whose labels are within bounds.
    #[test]
    fn data_layout_invariants(
        words in proptest::collection::vec(any::<i32>(), 0..20),
        bytes in proptest::collection::vec(any::<u8>(), 0..40),
        space in 0u32..100,
    ) {
        let mut src = String::from(".data\nstart_label:\n");
        for w in &words {
            src.push_str(&format!(".word {w}\n"));
        }
        src.push_str("bytes_label:\n");
        for b in &bytes {
            src.push_str(&format!(".byte {b}\n"));
        }
        src.push_str(&format!("tail_label:\n.space {space}\n"));
        let obj = assemble(Isa::D16, &src).expect("assemble");
        let expected = 4 * words.len() as u32 + bytes.len() as u32 + space;
        prop_assert_eq!(obj.data.len() as u32, expected);
        let img = link(Isa::D16, &[obj]).expect("link");
        for label in ["start_label", "bytes_label", "tail_label"] {
            let a = img.symbol(label).unwrap();
            prop_assert!(a >= img.data_base && a <= img.data_end());
        }
    }
}
