//! Property-style tests: disassemble → assemble → decode is the identity
//! over arbitrary in-envelope instructions, for both ISAs; and assembled
//! layout always satisfies basic structural invariants.
//!
//! Deterministic `d16-testkit` generators replace the original `proptest`
//! strategies (offline builds, DESIGN.md §7).

use d16_asm::{assemble, link};
use d16_isa::{abi, AluOp, Cond, Gpr, Insn, Isa, MemWidth};
use d16_testkit::{cases, Rng};

fn gpr(rng: &mut Rng, max: u32) -> Gpr {
    Gpr::new(rng.below(max) as u8)
}

const ALU_OPS: [AluOp; 8] = [
    AluOp::Add,
    AluOp::Sub,
    AluOp::And,
    AluOp::Or,
    AluOp::Xor,
    AluOp::Shl,
    AluOp::Shr,
    AluOp::Shra,
];

/// Instructions whose disassembly is position-independent (no PC-relative
/// displacement), in the D16 envelope.
fn d16_pi_insn(rng: &mut Rng) -> Insn {
    match rng.below(8) {
        0 => {
            let rd = gpr(rng, 16);
            Insn::Alu { op: *rng.pick(&ALU_OPS), rd, rs1: rd, rs2: gpr(rng, 16) }
        }
        1 => Insn::Mvi { rd: gpr(rng, 16), imm: rng.range_i32(-256, 256) },
        2 => Insn::Ld {
            w: MemWidth::W,
            rd: gpr(rng, 16),
            base: gpr(rng, 16),
            disp: rng.range_i32(0, 32) * 4,
        },
        3 => Insn::St { w: MemWidth::B, rs: gpr(rng, 16), base: gpr(rng, 16), disp: 0 },
        4 => Insn::Cmp { cond: Cond::Ltu, rd: abi::R0, rs1: gpr(rng, 16), rs2: gpr(rng, 16) },
        5 => Insn::Jl { target: gpr(rng, 16) },
        6 => Insn::Rdsr { rd: gpr(rng, 16) },
        _ => Insn::Nop,
    }
}

/// Same idea for DLXe (wider registers, immediates, three-address).
fn dlxe_pi_insn(rng: &mut Rng) -> Insn {
    match rng.below(6) {
        0 => Insn::Alu {
            op: *rng.pick(&ALU_OPS),
            rd: gpr(rng, 32),
            rs1: gpr(rng, 32),
            rs2: gpr(rng, 32),
        },
        1 => Insn::AluI {
            op: AluOp::Add,
            rd: gpr(rng, 32),
            rs1: gpr(rng, 32),
            imm: rng.range_i32(-32768, 32768),
        },
        2 => Insn::Lui { rd: gpr(rng, 32), imm: rng.below(65536) },
        3 => Insn::Cmp {
            cond: Cond::ALL[rng.below(10) as usize],
            rd: gpr(rng, 32),
            rs1: gpr(rng, 32),
            rs2: gpr(rng, 32),
        },
        4 => Insn::Ld {
            w: MemWidth::Hu,
            rd: gpr(rng, 32),
            base: gpr(rng, 32),
            disp: rng.range_i32(-32768, 32768),
        },
        _ => Insn::J { target: gpr(rng, 32) },
    }
}

/// D16x mixes narrow D16 shapes with 32-bit escapes. The generator stays
/// inside the canonical envelope: wide `addi` from `r0` aliases `mvi` and
/// wide `subi` re-encodes as `addi` of the negation, so immediate adds draw
/// a nonzero left source and `Sub` never takes a wide immediate.
fn d16x_pi_insn(rng: &mut Rng) -> Insn {
    match rng.below(10) {
        0 => Insn::Alu {
            op: *rng.pick(&ALU_OPS),
            rd: gpr(rng, 16),
            rs1: gpr(rng, 16),
            rs2: gpr(rng, 16),
        },
        1 => Insn::Mvi { rd: gpr(rng, 16), imm: rng.range_i32(-32768, 32768) },
        2 => Insn::AluI {
            op: AluOp::Add,
            rd: gpr(rng, 16),
            rs1: Gpr::new(1 + rng.below(15) as u8),
            imm: rng.range_i32(-32767, 32768),
        },
        3 => Insn::AluI {
            op: AluOp::Xor,
            rd: gpr(rng, 16),
            rs1: gpr(rng, 16),
            imm: rng.range_i32(0, 65536),
        },
        4 => Insn::Lui { rd: gpr(rng, 16), imm: rng.below(65536) },
        5 => Insn::CmpI {
            cond: Cond::Lt,
            rd: abi::R0,
            rs1: gpr(rng, 16),
            imm: rng.range_i32(-32768, 32768),
        },
        6 => Insn::Ld {
            w: MemWidth::Hu,
            rd: gpr(rng, 16),
            base: gpr(rng, 16),
            disp: rng.range_i32(-32768, 32768),
        },
        7 => Insn::St {
            w: MemWidth::W,
            rs: gpr(rng, 16),
            base: gpr(rng, 16),
            disp: rng.range_i32(-32768, 32768) & !3,
        },
        8 => Insn::Jl { target: gpr(rng, 16) },
        _ => Insn::Nop,
    }
}

fn roundtrip(isa: Isa, insns: &[Insn]) -> Vec<Insn> {
    let text: String =
        insns.iter().map(|i| format!("        {}\n", d16_isa::disassemble(i))).collect();
    let obj = assemble(isa, &text).expect("disassembly must re-assemble");
    let image = link(isa, &[obj]).expect("link");
    if isa == Isa::D16x {
        // Variable-width: walk the stream with the length-decode rule.
        let mut out = Vec::new();
        let mut off = 0usize;
        while out.len() < insns.len() {
            let first = u16::from_le_bytes([image.text[off], image.text[off + 1]]);
            let second = (d16_isa::d16x::insn_len(first) == 4)
                .then(|| u16::from_le_bytes([image.text[off + 2], image.text[off + 3]]));
            let (insn, len) = d16_isa::d16x::decode(first, second).unwrap();
            out.push(insn);
            off += len as usize;
        }
        return out;
    }
    let ilen = isa.insn_bytes() as usize;
    image.text[..insns.len() * ilen]
        .chunks_exact(ilen)
        .map(|c| match isa {
            Isa::D16 => d16_isa::d16::decode(u16::from_le_bytes([c[0], c[1]])).unwrap(),
            Isa::Dlxe => d16_isa::dlxe::decode(u32::from_le_bytes(c.try_into().unwrap())).unwrap(),
            Isa::D16x => unreachable!("handled above"),
        })
        .collect()
}

#[test]
fn d16_disasm_asm_roundtrip() {
    cases(200, |case, rng| {
        let n = 1 + rng.below(60) as usize;
        let insns: Vec<Insn> = (0..n).map(|_| d16_pi_insn(rng)).collect();
        let back = roundtrip(Isa::D16, &insns);
        assert_eq!(back, insns, "case {case}");
    });
}

#[test]
fn dlxe_disasm_asm_roundtrip() {
    cases(200, |case, rng| {
        let n = 1 + rng.below(60) as usize;
        let insns: Vec<Insn> = (0..n).map(|_| dlxe_pi_insn(rng)).collect();
        let back: Vec<Insn> = roundtrip(Isa::Dlxe, &insns);
        let want: Vec<Insn> = insns.into_iter().map(d16_isa::dlxe::canonicalize).collect();
        assert_eq!(back, want, "case {case}");
    });
}

#[test]
fn d16x_disasm_asm_roundtrip() {
    cases(200, |case, rng| {
        let n = 1 + rng.below(60) as usize;
        let insns: Vec<Insn> = (0..n).map(|_| d16x_pi_insn(rng)).collect();
        let back = roundtrip(Isa::D16x, &insns);
        assert_eq!(back, insns, "case {case}");
    });
}

/// Arbitrary data directives produce a segment whose size matches the
/// declared contents and whose labels are within bounds.
#[test]
fn data_layout_invariants() {
    cases(200, |case, rng| {
        let words: Vec<i32> = (0..rng.below(20)).map(|_| rng.next_u32() as i32).collect();
        let bytes: Vec<u8> = (0..rng.below(40)).map(|_| rng.below(256) as u8).collect();
        let space = rng.below(100);
        let mut src = String::from(".data\nstart_label:\n");
        for w in &words {
            src.push_str(&format!(".word {w}\n"));
        }
        src.push_str("bytes_label:\n");
        for b in &bytes {
            src.push_str(&format!(".byte {b}\n"));
        }
        src.push_str(&format!("tail_label:\n.space {space}\n"));
        let obj = assemble(Isa::D16, &src).expect("assemble");
        let expected = 4 * words.len() as u32 + bytes.len() as u32 + space;
        assert_eq!(obj.data.len() as u32, expected, "case {case}");
        let img = link(Isa::D16, &[obj]).expect("link");
        for label in ["start_label", "bytes_label", "tail_label"] {
            let a = img.symbol(label).unwrap();
            assert!(a >= img.data_base && a <= img.data_end(), "case {case}: {label}");
        }
    });
}
