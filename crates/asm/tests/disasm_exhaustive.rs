//! The full assemble → disassemble → reassemble oracle over the complete
//! 64K D16 encoding space: every decodable word's disassembly must be
//! accepted back by the assembler and reassemble to exactly the same
//! bytes.
//!
//! PC-relative branches disassemble as `.+N` / `.-N`, so each instruction
//! is surrounded by enough `nop` sled that every expressible displacement
//! (±1 KiB) stays inside the text segment; one big unit keeps this a
//! single assemble + link pass instead of 45 000 of them.

use d16_asm::{assemble, link};
use d16_isa::{d16, Isa};

#[test]
fn d16_every_decodable_word_survives_disasm_text_roundtrip() {
    const SLED: usize = 512; // nops on each side: covers BR_RANGE (±1024 bytes)
    let mut words = Vec::new();
    let mut text = String::new();
    for _ in 0..SLED {
        text.push_str("        nop\n");
    }
    for w in 0..=u16::MAX {
        if let Ok(insn) = d16::decode(w) {
            words.push(w);
            text.push_str("        ");
            text.push_str(&d16_isa::disassemble(&insn));
            text.push('\n');
        }
    }
    for _ in 0..SLED {
        text.push_str("        nop\n");
    }
    let obj = assemble(Isa::D16, &text).expect("every disassembly must reassemble");
    let image = link(Isa::D16, &[obj]).expect("link");
    assert_eq!(image.text.len(), (words.len() + 2 * SLED) * 2);
    for (k, w) in words.iter().enumerate() {
        let off = (SLED + k) * 2;
        let got = u16::from_le_bytes([image.text[off], image.text[off + 1]]);
        assert_eq!(
            got,
            *w,
            "word {w:#06x} ({}) reassembled as {got:#06x}",
            d16_isa::disassemble(&d16::decode(*w).unwrap())
        );
    }
}
