//! # d16-asm — assembler and linker for the D16 and DLXe toolchains
//!
//! A two-pass assembler with literal-pool support (the D16 `ldc`
//! constant-pool mechanism) and a linker producing loadable images whose
//! `text + data` size is the paper's static code-size measure.
//!
//! ```
//! use d16_asm::{assemble, link};
//! use d16_isa::Isa;
//!
//! let src = "
//! _start: mvi r2, 40
//!         addi r2, r2, 2
//!         trap 0          ; halt with exit status in r2
//! ";
//! let obj = assemble(Isa::D16, src)?;
//! let image = link(Isa::D16, &[obj])?;
//! assert_eq!(image.size_bytes(), 6); // three 16-bit instructions
//! # Ok::<(), d16_asm::AsmError>(())
//! ```

mod assemble;
pub mod codec;
mod expr;
mod link;
mod object;

pub use assemble::assemble;
pub use link::link;
pub use object::{AsmError, Image, Object, Reloc, RelocKind, Section, Symbol, MEM_TOP, TEXT_BASE};

use d16_isa::Isa;
use d16_store::{CacheKey, StableHasher};

/// Version tag folded into every [`build_key`]. Bump whenever the
/// assembler, linker, or image encoding changes observable output, so
/// stale `d16-store` entries from older toolchains stop matching.
pub const TOOLCHAIN_TAG: &str = "d16-asm/1";

/// Content key for the image `build(isa, units)` would produce: a stable
/// hash of the toolchain tag, target ISA, and every source unit in order.
/// Equal keys mean byte-identical images, so the linked artifact can be
/// served from a `d16_store::Store` instead of reassembled.
#[must_use]
pub fn build_key(isa: Isa, units: &[&str]) -> CacheKey {
    let mut h = StableHasher::new("d16-asm.build");
    h.field_str(TOOLCHAIN_TAG).field_str(isa.name()).field_u64(units.len() as u64);
    for unit in units {
        h.field_str(unit);
    }
    h.finish()
}

/// Convenience: assemble several units and link them in one call.
///
/// # Errors
///
/// Propagates the first assembly or link error; assembly errors from unit
/// `i` are returned as-is (line numbers are unit-relative).
pub fn build(isa: Isa, units: &[&str]) -> Result<Image, AsmError> {
    let objects = units.iter().map(|u| assemble(isa, u)).collect::<Result<Vec<_>, _>>()?;
    link(isa, &objects)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_links_units() {
        let img = build(Isa::Dlxe, &["_start: jal f\nnop\ntrap 0\n", "f: ret\n"]).unwrap();
        assert!(img.symbol("f").is_some());
        assert_eq!(img.entry, img.symbol("_start").unwrap());
    }

    #[test]
    fn build_key_separates_inputs() {
        let units = ["_start: trap 0\n", "f: ret\n"];
        let base = build_key(Isa::D16, &units);
        assert_eq!(base, build_key(Isa::D16, &units));
        assert_ne!(base, build_key(Isa::Dlxe, &units));
        assert_ne!(base, build_key(Isa::D16, &["_start: trap 0\n"]));
        // Unit boundaries matter: concatenation must not collide.
        assert_ne!(base, build_key(Isa::D16, &["_start: trap 0\nf: ret\n"]));
    }
}
