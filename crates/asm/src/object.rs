//! Object-file model: sections, symbols, relocations, and linked images.

use d16_isa::Isa;
use std::collections::HashMap;
use std::fmt;

/// Default load address of the text segment.
pub const TEXT_BASE: u32 = 0x1000;
/// Top of simulated memory; the initial stack pointer.
pub const MEM_TOP: u32 = 0x0100_0000;

/// The section a symbol or relocation site lives in.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum Section {
    /// Executable code (and embedded literal pools).
    Text,
    /// Initialized data.
    Data,
    /// Zero-initialized data (occupies no image bytes).
    Bss,
}

/// A defined symbol: a named offset within a section.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct Symbol {
    /// The section the symbol is defined in.
    pub section: Section,
    /// Byte offset within that section.
    pub offset: u32,
}

/// How a relocation patches its site once the symbol's address is known.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum RelocKind {
    /// 32-bit absolute address (data words, literal-pool entries).
    Abs32,
    /// DLXe `mvhi rd, hi(sym)`: the upper sixteen bits of the address,
    /// rounded so that `hi << 16 | lo` reconstructs it with a zero-extended
    /// `ori` low part.
    Hi16,
    /// DLXe `ori rd, rd, lo(sym)`: the low sixteen bits.
    Lo16,
    /// 16-bit offset from the global pointer (`gprel(sym)`), patched into
    /// an I-type immediate field. The linker defines `gp` as the start of
    /// the data segment.
    GpRel16,
    /// DLXe J-type `jal`/`j` 26-bit word displacement to the symbol.
    J26,
    /// D16x escape `jal`/`j`: a 16-bit *halfword* displacement from the end
    /// of the 4-byte instruction, patched into the second halfword (the
    /// upper sixteen bits of the little-endian word).
    XJ16,
}

/// A relocation: "patch `section[offset]` with `kind`(address of `symbol`
/// plus `addend`)".
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Reloc {
    /// Section containing the patch site.
    pub section: Section,
    /// Byte offset of the patch site.
    pub offset: u32,
    /// Patch formula.
    pub kind: RelocKind,
    /// Referenced symbol name.
    pub symbol: String,
    /// Constant added to the symbol address before patching.
    pub addend: i32,
}

/// One assembled translation unit.
#[derive(Clone, Debug, Default)]
pub struct Object {
    /// Text bytes (instructions and literal pools).
    pub text: Vec<u8>,
    /// Initialized data bytes.
    pub data: Vec<u8>,
    /// Size of the zero-initialized region.
    pub bss_size: u32,
    /// Symbols defined by this unit. All symbols share one global
    /// namespace at link time.
    pub symbols: HashMap<String, Symbol>,
    /// Unresolved references.
    pub relocs: Vec<Reloc>,
}

/// A fully linked, loadable program image.
///
/// The paper measures static code size as "the number of bytes in the
/// stripped binary executable file, including both text and data segments";
/// [`Image::size_bytes`] reports exactly that.
#[derive(Clone, Debug)]
pub struct Image {
    /// The encoding the text segment uses.
    pub isa: Isa,
    /// Load address of the text segment.
    pub text_base: u32,
    /// Text segment bytes.
    pub text: Vec<u8>,
    /// Load address of the data segment.
    pub data_base: u32,
    /// Data segment bytes.
    pub data: Vec<u8>,
    /// Size of the zero-initialized region following the data segment.
    pub bss_size: u32,
    /// Entry point address.
    pub entry: u32,
    /// Resolved global symbol table (kept for debugging and tests; a
    /// "stripped" size measurement ignores it).
    pub symbols: HashMap<String, u32>,
}

impl Image {
    /// Static size in bytes: text plus initialized data, the paper's
    /// density measure.
    pub fn size_bytes(&self) -> usize {
        self.text.len() + self.data.len()
    }

    /// Address of the first byte past text.
    pub fn text_end(&self) -> u32 {
        self.text_base + self.text.len() as u32
    }

    /// Address of the first byte past initialized data.
    pub fn data_end(&self) -> u32 {
        self.data_base + self.data.len() as u32
    }

    /// Address of the first byte past bss (start of the heap).
    pub fn heap_base(&self) -> u32 {
        self.data_end() + self.bss_size
    }

    /// Looks up a symbol's resolved address.
    pub fn symbol(&self, name: &str) -> Option<u32> {
        self.symbols.get(name).copied()
    }
}

/// Errors produced by assembly or linking.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum AsmError {
    /// Syntax or semantic error at a source line (1-based).
    Line {
        /// 1-based source line number.
        line: usize,
        /// Explanation.
        msg: String,
    },
    /// A symbol was defined in more than one unit.
    DuplicateSymbol(String),
    /// A referenced symbol was never defined.
    UndefinedSymbol(String),
    /// A relocation's value does not fit its field.
    RelocOverflow {
        /// Referenced symbol.
        symbol: String,
        /// Patch formula that overflowed.
        kind: RelocKind,
        /// The value that did not fit.
        value: i64,
    },
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsmError::Line { line, msg } => write!(f, "line {line}: {msg}"),
            AsmError::DuplicateSymbol(s) => write!(f, "duplicate symbol `{s}`"),
            AsmError::UndefinedSymbol(s) => write!(f, "undefined symbol `{s}`"),
            AsmError::RelocOverflow { symbol, kind, value } => {
                write!(f, "relocation {kind:?} against `{symbol}` overflows (value {value})")
            }
        }
    }
}

impl std::error::Error for AsmError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn image_size_is_text_plus_data() {
        let img = Image {
            isa: Isa::D16,
            text_base: TEXT_BASE,
            text: vec![0; 10],
            data_base: 0x2000,
            data: vec![0; 6],
            bss_size: 100,
            entry: TEXT_BASE,
            symbols: HashMap::new(),
        };
        assert_eq!(img.size_bytes(), 16, "bss must not count");
        assert_eq!(img.heap_base(), 0x2000 + 6 + 100);
    }

    #[test]
    fn errors_display() {
        let e = AsmError::Line { line: 3, msg: "bad".into() };
        assert_eq!(e.to_string(), "line 3: bad");
        assert!(AsmError::UndefinedSymbol("x".into()).to_string().contains("`x`"));
    }
}
