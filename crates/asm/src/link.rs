//! The linker: combines assembled objects into a loadable [`Image`].
//!
//! Layout: text at [`TEXT_BASE`], then initialized data (16-byte aligned),
//! then bss. The global pointer anchors at the start of the data segment,
//! so `gprel` offsets are simply data-section offsets of the first unit —
//! the whole-program compilation mode `d16-cc` uses.
//!
//! Linker-defined symbols available to programs:
//!
//! | symbol | value |
//! |---|---|
//! | `__gp`         | global pointer (data segment start) |
//! | `__data_start` | data segment start |
//! | `__data_end`   | end of initialized data |
//! | `__heap_base`  | end of bss (first free heap byte) |
//! | `__mem_top`    | top of simulated memory (initial stack pointer) |

use crate::object::{
    AsmError, Image, Object, Reloc, RelocKind, Section, Symbol, MEM_TOP, TEXT_BASE,
};
use d16_isa::Isa;
use std::collections::HashMap;

fn align_up(x: u32, a: u32) -> u32 {
    (x + a - 1) & !(a - 1)
}

/// Links one or more objects into an image for the given ISA.
///
/// The entry point is the `_start` symbol, falling back to `main`, falling
/// back to the start of text.
///
/// # Errors
///
/// Reports duplicate or undefined symbols and relocation overflows.
pub fn link(isa: Isa, objects: &[Object]) -> Result<Image, AsmError> {
    // ---- assign section bases ----
    let mut text_bases = Vec::with_capacity(objects.len());
    let mut cursor = TEXT_BASE;
    for o in objects {
        cursor = align_up(cursor, 4);
        text_bases.push(cursor);
        cursor += o.text.len() as u32;
    }
    let text_end = cursor;
    let data_base = align_up(text_end, 16);
    let mut data_bases = Vec::with_capacity(objects.len());
    let mut cursor = data_base;
    for o in objects {
        cursor = align_up(cursor, 8);
        data_bases.push(cursor);
        cursor += o.data.len() as u32;
    }
    let data_end = cursor;
    let mut bss_bases = Vec::with_capacity(objects.len());
    let mut cursor = align_up(data_end, 8);
    for o in objects {
        cursor = align_up(cursor, 8);
        bss_bases.push(cursor);
        cursor += o.bss_size;
    }
    let bss_end = align_up(cursor, 8);
    let gp = data_base;

    // ---- global symbol table ----
    let mut symbols: HashMap<String, u32> = HashMap::new();
    let place = |sym: &Symbol, i: usize| -> u32 {
        match sym.section {
            Section::Text => text_bases[i] + sym.offset,
            Section::Data => data_bases[i] + sym.offset,
            Section::Bss => bss_bases[i] + sym.offset,
        }
    };
    for (i, o) in objects.iter().enumerate() {
        for (name, sym) in &o.symbols {
            if symbols.insert(name.clone(), place(sym, i)).is_some() {
                return Err(AsmError::DuplicateSymbol(name.clone()));
            }
        }
    }
    for (name, value) in [
        ("__gp", gp),
        ("__data_start", data_base),
        ("__data_end", data_end),
        ("__heap_base", bss_end),
        ("__mem_top", MEM_TOP),
    ] {
        if symbols.insert(name.to_string(), value).is_some() {
            return Err(AsmError::DuplicateSymbol(name.to_string()));
        }
    }

    // ---- concatenate segments ----
    let mut text = vec![0u8; (text_end - TEXT_BASE) as usize];
    for (i, o) in objects.iter().enumerate() {
        let s = (text_bases[i] - TEXT_BASE) as usize;
        text[s..s + o.text.len()].copy_from_slice(&o.text);
    }
    let mut data = vec![0u8; (data_end - data_base) as usize];
    for (i, o) in objects.iter().enumerate() {
        let s = (data_bases[i] - data_base) as usize;
        data[s..s + o.data.len()].copy_from_slice(&o.data);
    }

    // ---- apply relocations ----
    for (i, o) in objects.iter().enumerate() {
        for r in &o.relocs {
            let target = *symbols
                .get(&r.symbol)
                .ok_or_else(|| AsmError::UndefinedSymbol(r.symbol.clone()))?;
            let value = target.wrapping_add(r.addend as u32);
            let (buf, site_addr, site_off) = match r.section {
                Section::Text => {
                    let a = text_bases[i] + r.offset;
                    (&mut text, a, (a - TEXT_BASE) as usize)
                }
                Section::Data => {
                    let a = data_bases[i] + r.offset;
                    (&mut data, a, (a - data_base) as usize)
                }
                Section::Bss => {
                    return Err(AsmError::Line {
                        line: 0,
                        msg: "relocation against bss content".into(),
                    })
                }
            };
            apply_reloc(isa, buf, site_off, site_addr, r, value, gp)?;
        }
    }

    let entry = symbols.get("_start").or_else(|| symbols.get("main")).copied().unwrap_or(TEXT_BASE);

    Ok(Image {
        isa,
        text_base: TEXT_BASE,
        text,
        data_base,
        data,
        bss_size: bss_end - data_end,
        entry,
        symbols,
    })
}

fn apply_reloc(
    isa: Isa,
    buf: &mut [u8],
    off: usize,
    site_addr: u32,
    r: &Reloc,
    value: u32,
    gp: u32,
) -> Result<(), AsmError> {
    let overflow =
        |v: i64| AsmError::RelocOverflow { symbol: r.symbol.clone(), kind: r.kind, value: v };
    // DLXe I-type immediates occupy a word's low halfword; D16x escape
    // immediates are the *second* halfword, i.e. the upper sixteen bits of
    // the little-endian word.
    let patch16 = |word: u32, field: u32| {
        if isa == Isa::D16x {
            (word & 0xffff) | field << 16
        } else {
            (word & !0xffffu32) | field
        }
    };
    match r.kind {
        RelocKind::Abs32 => {
            buf[off..off + 4].copy_from_slice(&value.to_le_bytes());
        }
        RelocKind::Hi16 | RelocKind::Lo16 | RelocKind::GpRel16 => {
            let word = u32::from_le_bytes(buf[off..off + 4].try_into().expect("4-byte slice"));
            let field = match r.kind {
                RelocKind::Hi16 => value >> 16,
                RelocKind::Lo16 => value & 0xffff,
                _ => {
                    let d = value as i64 - gp as i64;
                    if !(-32768..=32767).contains(&d) {
                        return Err(overflow(d));
                    }
                    (d as u32) & 0xffff
                }
            };
            let patched = patch16(word, field);
            buf[off..off + 4].copy_from_slice(&patched.to_le_bytes());
        }
        RelocKind::XJ16 => {
            let word = u32::from_le_bytes(buf[off..off + 4].try_into().expect("4-byte slice"));
            let disp = value as i64 - (site_addr as i64 + 4);
            let (lo, hi) = (*d16_isa::d16x::JMP_RANGE.start(), *d16_isa::d16x::JMP_RANGE.end());
            if disp % 2 != 0 || !(lo as i64..=hi as i64).contains(&disp) {
                return Err(overflow(disp));
            }
            let field = ((disp / 2) as u32) & 0xffff;
            let patched = (word & 0xffff) | field << 16;
            buf[off..off + 4].copy_from_slice(&patched.to_le_bytes());
        }
        RelocKind::J26 => {
            let word = u32::from_le_bytes(buf[off..off + 4].try_into().expect("4-byte slice"));
            let disp = value as i64 - (site_addr as i64 + 4);
            if disp % 4 != 0 || !(-(1i64 << 27)..(1i64 << 27)).contains(&disp) {
                return Err(overflow(disp));
            }
            let field = ((disp / 4) as u32) & 0x03ff_ffff;
            let patched = (word & !0x03ff_ffffu32) | field;
            buf[off..off + 4].copy_from_slice(&patched.to_le_bytes());
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assemble::assemble;
    use d16_isa::{abi, Gpr, Insn};

    fn word_at(img: &Image, addr: u32) -> u32 {
        let o = (addr - img.text_base) as usize;
        u32::from_le_bytes(img.text[o..o + 4].try_into().unwrap())
    }

    #[test]
    fn links_two_units_with_cross_calls() {
        let a = assemble(Isa::Dlxe, "_start: jal helper\n nop\n trap 0\n.data\nshared: .word 42\n")
            .unwrap();
        let b = assemble(
            Isa::Dlxe,
            "helper: ld r2, gprel(shared)(r13)\n nop\n ret\n.data\nother: .word helper\n",
        )
        .unwrap();
        let img = link(Isa::Dlxe, &[a, b]).unwrap();
        assert_eq!(img.entry, img.symbols["_start"]);
        // jal patched to reach `helper` in unit b.
        let jal = word_at(&img, img.entry);
        let insn = d16_isa::dlxe::decode(jal).unwrap();
        let helper = img.symbols["helper"];
        match insn {
            Insn::Jdisp { link: true, disp } => {
                assert_eq!(img.entry as i64 + 4 + disp as i64, helper as i64);
            }
            other => panic!("expected jal, got {other:?}"),
        }
        // gprel(shared): shared is unit a's first data word, and unit a's
        // data leads the segment, so the offset is 0.
        let ld = word_at(&img, helper);
        match d16_isa::dlxe::decode(ld).unwrap() {
            Insn::Ld { disp, base, .. } => {
                assert_eq!(base, abi::GP);
                assert_eq!(img.symbols["__gp"] as i64 + disp as i64, img.symbols["shared"] as i64);
            }
            other => panic!("expected ld, got {other:?}"),
        }
        // Abs32 in unit b's data points at helper.
        let o = (img.symbols["other"] - img.data_base) as usize;
        assert_eq!(u32::from_le_bytes(img.data[o..o + 4].try_into().unwrap()), helper);
    }

    #[test]
    fn d16_pool_reloc_resolves_absolute_address() {
        let src = "\
_start: ldc r9, =target
        jl r9
        nop
        trap 0
        .pool
target: mvi r2, 1
        ret
";
        let obj = assemble(Isa::D16, src).unwrap();
        let img = link(Isa::D16, &[obj]).unwrap();
        let target = img.symbols["target"];
        // The pool word (after 4 insns, aligned) holds target's address.
        let pool_off = 8;
        assert_eq!(
            u32::from_le_bytes(img.text[pool_off..pool_off + 4].try_into().unwrap()),
            target
        );
    }

    fn d16x_at(img: &Image, addr: u32) -> Insn {
        let o = (addr - img.text_base) as usize;
        let first = u16::from_le_bytes(img.text[o..o + 2].try_into().unwrap());
        let second = (d16_isa::d16x::insn_len(first) == 4)
            .then(|| u16::from_le_bytes(img.text[o + 2..o + 4].try_into().unwrap()));
        d16_isa::d16x::decode(first, second).unwrap().0
    }

    #[test]
    fn d16x_relocs_patch_the_second_halfword() {
        // D16x escape immediates live in the upper sixteen bits of the
        // little-endian word; a linker patching the low halfword (the DLXe
        // field position) would corrupt the opcode halfword instead.
        let a = assemble(Isa::D16x, "_start: jal helper\n nop\n trap 0\n.data\nshared: .word 42\n")
            .unwrap();
        let b = assemble(Isa::D16x, "helper: la r2, shared\n ld r2, 0(r2)\n ret\n").unwrap();
        let img = link(Isa::D16x, &[a, b]).unwrap();
        let helper = img.symbols["helper"];
        match d16x_at(&img, img.entry) {
            Insn::Jdisp { link: true, disp } => {
                assert_eq!(img.entry as i64 + 4 + disp as i64, helper as i64);
            }
            other => panic!("expected escape jal, got {other:?}"),
        }
        let shared = img.symbols["shared"];
        match d16x_at(&img, helper) {
            Insn::Lui { rd, imm } => {
                assert_eq!(rd, Gpr::new(2));
                assert_eq!(imm, shared >> 16);
            }
            other => panic!("expected mvhi, got {other:?}"),
        }
        match d16x_at(&img, helper + 4) {
            Insn::AluI { op: d16_isa::AluOp::Or, imm, .. } => {
                assert_eq!(imm as u32, shared & 0xffff);
            }
            other => panic!("expected ori, got {other:?}"),
        }
        // The patched stream still walks cleanly to the end of unit b's
        // text (canonical decode survives linking).
        let mut addr = helper;
        let end = img.text_base + img.text.len() as u32;
        while addr < end {
            let o = (addr - img.text_base) as usize;
            let first = u16::from_le_bytes(img.text[o..o + 2].try_into().unwrap());
            let _ = d16x_at(&img, addr);
            addr += d16_isa::d16x::insn_len(first);
        }
    }

    #[test]
    fn undefined_symbol_is_reported() {
        let a = assemble(Isa::Dlxe, "jal nowhere\n").unwrap();
        match link(Isa::Dlxe, &[a]) {
            Err(AsmError::UndefinedSymbol(s)) => assert_eq!(s, "nowhere"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn duplicate_across_units_is_reported() {
        let a = assemble(Isa::D16, "x: nop\n").unwrap();
        let b = assemble(Isa::D16, "x: nop\n").unwrap();
        assert!(matches!(link(Isa::D16, &[a, b]), Err(AsmError::DuplicateSymbol(_))));
    }

    #[test]
    fn linker_symbols_are_consistent() {
        let a = assemble(Isa::D16, "nop\n.data\n.word 1\n.comm big, 64\n").unwrap();
        let img = link(Isa::D16, &[a]).unwrap();
        assert_eq!(img.symbols["__data_start"], img.data_base);
        assert_eq!(img.symbols["__data_end"], img.data_base + 4);
        assert_eq!(img.symbols["__gp"], img.data_base);
        assert!(img.symbols["__heap_base"] >= img.symbols["__data_end"] + 64);
        assert_eq!(img.symbols["__mem_top"], MEM_TOP);
        assert_eq!(img.heap_base(), img.symbols["__heap_base"]);
    }

    #[test]
    fn gprel_overflow_detected() {
        let a = assemble(
            Isa::Dlxe,
            ".data\n.space 40000\nfar: .word 1\n.text\nld r2, gprel(far)(r13)\n",
        )
        .unwrap();
        assert!(matches!(link(Isa::Dlxe, &[a]), Err(AsmError::RelocOverflow { .. })));
    }

    #[test]
    fn entry_falls_back_to_main_then_text_base() {
        let a = assemble(Isa::D16, "main: nop\n").unwrap();
        let img = link(Isa::D16, &[a]).unwrap();
        assert_eq!(img.entry, img.symbols["main"]);
        let b = assemble(Isa::D16, "nop\n").unwrap();
        let img = link(Isa::D16, &[b]).unwrap();
        assert_eq!(img.entry, TEXT_BASE);
    }
}
