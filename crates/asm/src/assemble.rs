//! The two-pass assembler.
//!
//! Pass one parses statements, lays out sections and binds labels and
//! literal pools; pass two encodes instructions (resolving PC-relative
//! displacements) and emits relocations for link-time values.
//!
//! ## Syntax
//!
//! ```text
//! ; comment            # comment
//! label:  .text | .data
//!         .word expr, ...     .half n, ...    .byte n, ...
//!         .ascii "s"          .asciiz "s"     .float 1.5   .double 2.5
//!         .space n            .align n        .comm sym, n
//!         .globl sym          .pool
//!         add  r1, r2, r3     addi r1, r1, 4      mvi r2, -7
//!         ld   r2, 8(r15)     st r2, gprel(counter)(r13)
//!         cmplt r0, r4, r5    bz r0, loop         jl r9
//!         mvhi r4, hi(sym)    ori r4, r4, lo(sym) jal func
//!         ldc  r3, =sym       ; D16 literal-pool load
//!         la r3, sym          li r3, 100000       ret      ; pseudos
//! ```
//!
//! Pseudo-instructions expand per target: `la`/oversized `li` become
//! `ldc` + pool entry on D16 and `mvhi`+`ori` on DLXe and D16x; `ret`
//! becomes a jump through the ISA's link register.
//!
//! D16x text is variable-width (16-bit base forms plus 32-bit escapes), so
//! pass one sizes each instruction from its template shape alone — see
//! [`tpl_len`] — keeping layout deterministic in a single pass.

use crate::expr::{tokenize, Expr, Tok};
use crate::object::{AsmError, Object, Reloc, RelocKind, Section, Symbol};
use d16_isa::{
    abi, AluOp, Cond, CvtOp, FpCond, FpOp, Fpr, Gpr, Insn, Isa, MemWidth, Prec, TrapCode, UnOp,
};
use std::collections::HashMap;

/// A literal-pool entry key.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
enum LitKey {
    Num(i64),
    Sym(String, i64),
}

/// Instruction templates: fully-resolved, or awaiting expression/pool/label
/// resolution in pass two.
#[derive(Clone, Debug)]
enum ITpl {
    Ready(Insn),
    Imm { shape: ImmShape, expr: Expr },
    Branch { neg: Option<bool>, rs: Gpr, target: Expr },
    Jal { link: bool, target: Expr },
    Ldc { rd: Gpr, lit: usize },
}

/// Which instruction an expression-carrying template builds.
#[derive(Clone, Debug)]
enum ImmShape {
    AluI { op: AluOp, rd: Gpr, rs1: Gpr },
    Mvi { rd: Gpr },
    Lui { rd: Gpr },
    CmpI { cond: Cond, rd: Gpr, rs1: Gpr },
    Ld { w: MemWidth, rd: Gpr, base: Gpr },
    St { w: MemWidth, rs: Gpr, base: Gpr },
}

#[derive(Clone, Debug)]
enum Item {
    Label(String),
    SetSection(Section),
    Insn(usize, ITpl),
    Word(usize, Vec<Expr>),
    Half(Vec<i64>),
    Byte(Vec<i64>),
    Bytes(Vec<u8>),
    FloatLit(f32),
    DoubleLit(f64),
    Space(u32),
    Align(u32),
    Comm(usize, String, u32),
    Pool,
}

/// Assembles one translation unit for the given ISA.
///
/// # Errors
///
/// Returns the first syntax, layout or encoding error, tagged with its
/// 1-based source line.
pub fn assemble(isa: Isa, source: &str) -> Result<Object, AsmError> {
    let mut p = Parser { isa, items: Vec::new(), lits: Vec::new() };
    for (idx, raw) in source.lines().enumerate() {
        p.parse_line(raw, idx + 1)?;
    }
    // Fallback pool so every `ldc` resolves even without an explicit `.pool`.
    if !p.lits.is_empty() {
        p.items.push(Item::SetSection(Section::Text));
        p.items.push(Item::Pool);
    }
    layout_and_encode(isa, p)
}

struct Parser {
    isa: Isa,
    items: Vec<Item>,
    lits: Vec<LitKey>,
}

struct Cursor<'a> {
    toks: &'a [Tok],
    pos: usize,
    line: usize,
}

impl<'a> Cursor<'a> {
    fn err(&self, msg: impl Into<String>) -> AsmError {
        AsmError::Line { line: self.line, msg: msg.into() }
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos)
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn done(&self) -> bool {
        self.pos >= self.toks.len()
    }

    fn expect_end(&self) -> Result<(), AsmError> {
        if self.done() {
            Ok(())
        } else {
            Err(self.err(format!("trailing tokens: {:?}", &self.toks[self.pos..])))
        }
    }

    fn punct(&mut self, c: char) -> Result<(), AsmError> {
        match self.next() {
            Some(Tok::Punct(p)) if p == c => Ok(()),
            other => Err(self.err(format!("expected `{c}`, got {other:?}"))),
        }
    }

    fn comma(&mut self) -> Result<(), AsmError> {
        self.punct(',')
    }

    fn eat_punct(&mut self, c: char) -> bool {
        if matches!(self.peek(), Some(Tok::Punct(p)) if *p == c) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn ident(&mut self) -> Result<String, AsmError> {
        match self.next() {
            Some(Tok::Ident(s)) => Ok(s),
            other => Err(self.err(format!("expected identifier, got {other:?}"))),
        }
    }

    fn gpr(&mut self) -> Result<Gpr, AsmError> {
        let s = self.ident()?;
        parse_gpr(&s).ok_or_else(|| self.err(format!("expected a general register, got `{s}`")))
    }

    fn fpr(&mut self) -> Result<Fpr, AsmError> {
        let s = self.ident()?;
        parse_fpr(&s).ok_or_else(|| self.err(format!("expected an FP register, got `{s}`")))
    }

    fn num(&mut self) -> Result<i64, AsmError> {
        let neg = self.eat_punct('-');
        match self.next() {
            Some(Tok::Num(n)) => Ok(if neg { -n } else { n }),
            other => Err(self.err(format!("expected a number, got {other:?}"))),
        }
    }

    /// Parses an operand expression: number, `sym(+|-)n`, `hi/lo/gprel(...)`,
    /// or `.(+|-)n`.
    fn expr(&mut self) -> Result<Expr, AsmError> {
        if self.eat_punct('.') {
            let neg = if self.eat_punct('-') {
                true
            } else {
                self.punct('+')?;
                false
            };
            let n = match self.next() {
                Some(Tok::Num(n)) => n,
                other => {
                    return Err(self.err(format!("expected a number after `.`, got {other:?}")))
                }
            };
            return Ok(Expr::Here(if neg { -n } else { n }));
        }
        if matches!(self.peek(), Some(Tok::Punct('-')) | Some(Tok::Num(_))) {
            return Ok(Expr::Num(self.num()?));
        }
        let name = self.ident()?;
        if matches!(name.as_str(), "hi" | "lo" | "gprel") && self.eat_punct('(') {
            let sym = self.ident()?;
            let addend = self.addend()?;
            self.punct(')')?;
            return Ok(match name.as_str() {
                "hi" => Expr::Hi(sym, addend),
                "lo" => Expr::Lo(sym, addend),
                _ => Expr::GpRel(sym, addend),
            });
        }
        let addend = self.addend()?;
        Ok(Expr::Sym(name, addend))
    }

    fn addend(&mut self) -> Result<i64, AsmError> {
        if self.eat_punct('+') || matches!(self.peek(), Some(Tok::Punct('-'))) {
            self.num()
        } else {
            Ok(0)
        }
    }

    /// Parses `disp(base)` or `(base)`.
    fn mem_operand(&mut self) -> Result<(Expr, Gpr), AsmError> {
        let disp =
            if matches!(self.peek(), Some(Tok::Punct('('))) { Expr::Num(0) } else { self.expr()? };
        self.punct('(')?;
        let base = self.gpr()?;
        self.punct(')')?;
        Ok((disp, base))
    }
}

fn parse_gpr(s: &str) -> Option<Gpr> {
    let n: u8 = s.strip_prefix('r')?.parse().ok()?;
    Gpr::try_new(n)
}

fn parse_fpr(s: &str) -> Option<Fpr> {
    let n: u8 = s.strip_prefix('f')?.parse().ok()?;
    Fpr::try_new(n)
}

impl Parser {
    fn parse_line(&mut self, raw: &str, line: usize) -> Result<(), AsmError> {
        let toks = tokenize(raw, line)?;
        let mut c = Cursor { toks: &toks, pos: 0, line };
        // Leading label(s). Register-shaped names (`f0:`, `r15:`) are
        // labels too: no statement begins with a register followed by
        // `:`, so reserving them would only reject valid programs. Note
        // the one ambiguous *use* site — `j`/`jal`/`jd` resolve a GPR
        // name as the register, never a label (the compiler suffixes
        // GPR-shaped C identifiers with `$` for exactly this reason).
        while c.toks.len() >= c.pos + 2 {
            if let (Tok::Ident(name), Tok::Punct(':')) = (&c.toks[c.pos], &c.toks[c.pos + 1]) {
                self.items.push(Item::Label(name.clone()));
                c.pos += 2;
                continue;
            }
            break;
        }
        match c.peek().cloned() {
            None => Ok(()),
            Some(Tok::Directive(d)) => {
                c.pos += 1;
                self.parse_directive(&d, &mut c)
            }
            Some(Tok::Ident(m)) => {
                c.pos += 1;
                self.parse_insn(&m, &mut c)
            }
            Some(other) => Err(c.err(format!("expected statement, got {other:?}"))),
        }
    }

    fn parse_directive(&mut self, d: &str, c: &mut Cursor<'_>) -> Result<(), AsmError> {
        match d {
            ".text" => self.items.push(Item::SetSection(Section::Text)),
            ".data" => self.items.push(Item::SetSection(Section::Data)),
            ".word" => {
                let mut v = vec![c.expr()?];
                while c.eat_punct(',') {
                    v.push(c.expr()?);
                }
                self.items.push(Item::Word(c.line, v));
            }
            ".half" | ".byte" => {
                let mut v = vec![c.num()?];
                while c.eat_punct(',') {
                    v.push(c.num()?);
                }
                self.items.push(if d == ".half" { Item::Half(v) } else { Item::Byte(v) });
            }
            ".ascii" | ".asciiz" => {
                let mut s = match c.next() {
                    Some(Tok::Str(s)) => s,
                    other => return Err(c.err(format!("expected string, got {other:?}"))),
                };
                if d == ".asciiz" {
                    s.push(0);
                }
                self.items.push(Item::Bytes(s));
            }
            ".float" | ".double" => {
                let neg = c.eat_punct('-');
                let v = match c.next() {
                    Some(Tok::Float(f)) => f,
                    Some(Tok::Num(n)) => n as f64,
                    other => return Err(c.err(format!("expected float, got {other:?}"))),
                };
                let v = if neg { -v } else { v };
                self.items.push(if d == ".float" {
                    Item::FloatLit(v as f32)
                } else {
                    Item::DoubleLit(v)
                });
            }
            ".space" => {
                let n = c.num()?;
                if !(0..=(64 << 20)).contains(&n) {
                    return Err(c.err(format!(".space size {n} out of range")));
                }
                self.items.push(Item::Space(n as u32));
            }
            ".align" => {
                let n = c.num()?;
                if ![1, 2, 4, 8, 16].contains(&n) {
                    return Err(c.err(format!("bad alignment {n}")));
                }
                self.items.push(Item::Align(n as u32));
            }
            ".comm" => {
                let name = c.ident()?;
                c.comma()?;
                let size = c.num()?;
                if !(0..=(64 << 20)).contains(&size) {
                    return Err(c.err(format!(".comm size {size} out of range")));
                }
                self.items.push(Item::Comm(c.line, name, size as u32));
            }
            ".globl" | ".global" => {
                let _ = c.ident()?; // single namespace: accepted, no effect
            }
            ".pool" => self.items.push(Item::Pool),
            other => return Err(c.err(format!("unknown directive `{other}`"))),
        }
        c.expect_end()
    }

    fn lit_id(&mut self, key: LitKey) -> usize {
        self.lits.push(key);
        self.lits.len() - 1
    }

    fn push_insn(&mut self, line: usize, t: ITpl) {
        self.items.push(Item::Insn(line, t));
    }

    fn parse_insn(&mut self, m: &str, c: &mut Cursor<'_>) -> Result<(), AsmError> {
        let line = c.line;
        let isa = self.isa;
        // Dotted FP mnemonics.
        if let Some((base, suffix)) = m.split_once('.') {
            let prec = match suffix {
                "sf" => Prec::S,
                "df" => Prec::D,
                _ => return Err(c.err(format!("unknown mnemonic `{m}`"))),
            };
            let t = match base {
                "add" | "sub" | "mul" | "div" => {
                    let op = match base {
                        "add" => FpOp::Add,
                        "sub" => FpOp::Sub,
                        "mul" => FpOp::Mul,
                        _ => FpOp::Div,
                    };
                    let fd = c.fpr()?;
                    c.comma()?;
                    let a = c.fpr()?;
                    let (fs1, fs2) = if c.eat_punct(',') { (a, c.fpr()?) } else { (fd, a) };
                    Insn::FAlu { op, prec, fd, fs1, fs2 }
                }
                "neg" => {
                    let fd = c.fpr()?;
                    c.comma()?;
                    let fs = c.fpr()?;
                    Insn::FNeg { prec, fd, fs }
                }
                "cmpeq" | "cmplt" | "cmple" => {
                    let cond = match base {
                        "cmpeq" => FpCond::Eq,
                        "cmplt" => FpCond::Lt,
                        _ => FpCond::Le,
                    };
                    let fs1 = c.fpr()?;
                    c.comma()?;
                    let fs2 = c.fpr()?;
                    Insn::FCmp { cond, prec, fs1, fs2 }
                }
                _ => return Err(c.err(format!("unknown mnemonic `{m}`"))),
            };
            self.push_insn(line, ITpl::Ready(t));
            return c.expect_end();
        }

        match m {
            "add" | "sub" | "and" | "or" | "xor" | "shl" | "shr" | "shra" => {
                let op = alu_from(m);
                let rd = c.gpr()?;
                c.comma()?;
                // Either `rd, rs2` (two-address) or `rd, rs1, rs2`, where the
                // third operand may be an expression for `ori rd, rd, lo(x)`.
                let a = c.gpr()?;
                if c.eat_punct(',') {
                    if matches!(c.peek(), Some(Tok::Ident(s)) if parse_gpr(s).is_some()) {
                        let rs2 = c.gpr()?;
                        self.push_insn(line, ITpl::Ready(Insn::Alu { op, rd, rs1: a, rs2 }));
                    } else {
                        let expr = c.expr()?;
                        self.push_insn(
                            line,
                            ITpl::Imm { shape: ImmShape::AluI { op, rd, rs1: a }, expr },
                        );
                    }
                } else {
                    self.push_insn(line, ITpl::Ready(Insn::Alu { op, rd, rs1: rd, rs2: a }));
                }
            }
            "addi" | "subi" | "andi" | "ori" | "xori" | "shli" | "shri" | "shrai" => {
                let op = alu_from(m.trim_end_matches('i'));
                let rd = c.gpr()?;
                c.comma()?;
                let (rs1, expr) = if matches!(c.peek(), Some(Tok::Ident(s)) if parse_gpr(s).is_some())
                {
                    let rs1 = c.gpr()?;
                    c.comma()?;
                    (rs1, c.expr()?)
                } else {
                    (rd, c.expr()?)
                };
                self.push_insn(line, ITpl::Imm { shape: ImmShape::AluI { op, rd, rs1 }, expr });
            }
            "neg" | "inv" | "mv" => {
                let op = match m {
                    "neg" => UnOp::Neg,
                    "inv" => UnOp::Inv,
                    _ => UnOp::Mv,
                };
                let rd = c.gpr()?;
                c.comma()?;
                let rs = c.gpr()?;
                self.push_insn(line, ITpl::Ready(Insn::Un { op, rd, rs }));
            }
            "mvi" => {
                let rd = c.gpr()?;
                c.comma()?;
                let expr = c.expr()?;
                self.push_insn(line, ITpl::Imm { shape: ImmShape::Mvi { rd }, expr });
            }
            "mvhi" => {
                let rd = c.gpr()?;
                c.comma()?;
                let expr = c.expr()?;
                self.push_insn(line, ITpl::Imm { shape: ImmShape::Lui { rd }, expr });
            }
            _ if m.starts_with("cmp") => {
                let rest = &m[3..];
                let (cond, imm_form) = match rest.strip_suffix('i').and_then(cond_from) {
                    Some(cond) => (cond, true),
                    None => (
                        cond_from(rest).ok_or_else(|| c.err(format!("unknown mnemonic `{m}`")))?,
                        false,
                    ),
                };
                let a = c.gpr()?;
                c.comma()?;
                if imm_form {
                    let b = c.gpr()?;
                    if c.eat_punct(',') {
                        let expr = c.expr()?;
                        self.push_insn(
                            line,
                            ITpl::Imm { shape: ImmShape::CmpI { cond, rd: a, rs1: b }, expr },
                        );
                    } else {
                        return Err(c.err("cmp..i needs rd, rs1, imm"));
                    }
                } else {
                    let b = c.gpr()?;
                    if c.eat_punct(',') {
                        let rs2 = c.gpr()?;
                        self.push_insn(line, ITpl::Ready(Insn::Cmp { cond, rd: a, rs1: b, rs2 }));
                    } else {
                        // Two-operand D16 form: destination implicitly r0.
                        self.push_insn(
                            line,
                            ITpl::Ready(Insn::Cmp { cond, rd: abi::R0, rs1: a, rs2: b }),
                        );
                    }
                }
            }
            "ld" | "ldh" | "ldhu" | "ldb" | "ldbu" => {
                let w = width_from(m);
                let rd = c.gpr()?;
                c.comma()?;
                let (disp, base) = c.mem_operand()?;
                self.push_insn(line, ITpl::Imm { shape: ImmShape::Ld { w, rd, base }, expr: disp });
            }
            "st" | "sth" | "stb" => {
                let w = match m {
                    "st" => MemWidth::W,
                    "sth" => MemWidth::H,
                    _ => MemWidth::B,
                };
                let rs = c.gpr()?;
                c.comma()?;
                let (disp, base) = c.mem_operand()?;
                self.push_insn(line, ITpl::Imm { shape: ImmShape::St { w, rs, base }, expr: disp });
            }
            "ldc" => {
                let rd = c.gpr()?;
                c.comma()?;
                if c.eat_punct('=') {
                    let key = match c.expr()? {
                        Expr::Num(n) => LitKey::Num(n),
                        Expr::Sym(s, a) => LitKey::Sym(s, a),
                        other => return Err(c.err(format!("bad literal {other:?}"))),
                    };
                    let lit = self.lit_id(key);
                    self.push_insn(line, ITpl::Ldc { rd, lit });
                } else {
                    let disp = c.expr()?;
                    match disp {
                        Expr::Here(n) => {
                            self.push_insn(line, ITpl::Ready(Insn::Ldc { rd, disp: n as i32 }))
                        }
                        other => {
                            return Err(c.err(format!("ldc takes =literal or .+n, got {other:?}")))
                        }
                    }
                }
            }
            "br" => {
                let target = c.expr()?;
                self.push_insn(line, ITpl::Branch { neg: None, rs: abi::R0, target });
            }
            "bz" | "bnz" => {
                let rs = c.gpr()?;
                c.comma()?;
                let target = c.expr()?;
                self.push_insn(line, ITpl::Branch { neg: Some(m == "bnz"), rs, target });
            }
            "j" | "jal" | "jd" => {
                // Ambiguity rule: a GPR name here is always the register
                // (indirect jump), never a label, even if such a label is
                // defined. Symbol emitters must avoid GPR-shaped names
                // for direct targets.
                if matches!(c.peek(), Some(Tok::Ident(s)) if parse_gpr(s).is_some()) {
                    let target = c.gpr()?;
                    let t = if m == "jal" { Insn::Jl { target } } else { Insn::J { target } };
                    self.push_insn(line, ITpl::Ready(t));
                } else {
                    let target = c.expr()?;
                    self.push_insn(line, ITpl::Jal { link: m == "jal", target });
                }
            }
            "jl" => {
                let target = c.gpr()?;
                self.push_insn(line, ITpl::Ready(Insn::Jl { target }));
            }
            "jz" | "jnz" => {
                let rs = c.gpr()?;
                c.comma()?;
                let target = c.gpr()?;
                self.push_insn(line, ITpl::Ready(Insn::Jc { neg: m == "jnz", rs, target }));
            }
            "si2sf" | "si2df" | "sf2df" | "df2sf" | "sf2si" | "df2si" => {
                let op = match m {
                    "si2sf" => CvtOp::Si2Sf,
                    "si2df" => CvtOp::Si2Df,
                    "sf2df" => CvtOp::Sf2Df,
                    "df2sf" => CvtOp::Df2Sf,
                    "sf2si" => CvtOp::Sf2Si,
                    _ => CvtOp::Df2Si,
                };
                let fd = c.fpr()?;
                c.comma()?;
                let fs = c.fpr()?;
                self.push_insn(line, ITpl::Ready(Insn::Cvt { op, fd, fs }));
            }
            "mtf" => {
                let fd = c.fpr()?;
                c.comma()?;
                let rs = c.gpr()?;
                self.push_insn(line, ITpl::Ready(Insn::Mtf { fd, rs }));
            }
            "mff" => {
                let rd = c.gpr()?;
                c.comma()?;
                let fs = c.fpr()?;
                self.push_insn(line, ITpl::Ready(Insn::Mff { rd, fs }));
            }
            "rdsr" => {
                let rd = c.gpr()?;
                self.push_insn(line, ITpl::Ready(Insn::Rdsr { rd }));
            }
            "trap" => {
                let n = c.num()?;
                let code = TrapCode::from_code(n as u8)
                    .ok_or_else(|| c.err(format!("unknown trap code {n}")))?;
                self.push_insn(line, ITpl::Ready(Insn::Trap { code }));
            }
            "nop" => self.push_insn(line, ITpl::Ready(Insn::Nop)),
            // ---- pseudo-instructions ----
            "la" => {
                let rd = c.gpr()?;
                c.comma()?;
                let (sym, add) = match c.expr()? {
                    Expr::Sym(s, a) => (s, a),
                    other => return Err(c.err(format!("la takes a symbol, got {other:?}"))),
                };
                match isa {
                    Isa::D16 => {
                        let lit = self.lit_id(LitKey::Sym(sym, add));
                        self.push_insn(line, ITpl::Ldc { rd, lit });
                    }
                    Isa::Dlxe | Isa::D16x => {
                        self.push_insn(
                            line,
                            ITpl::Imm {
                                shape: ImmShape::Lui { rd },
                                expr: Expr::Hi(sym.clone(), add),
                            },
                        );
                        self.push_insn(
                            line,
                            ITpl::Imm {
                                shape: ImmShape::AluI { op: AluOp::Or, rd, rs1: rd },
                                expr: Expr::Lo(sym, add),
                            },
                        );
                    }
                }
            }
            "li" => {
                let rd = c.gpr()?;
                c.comma()?;
                let n = c.num()?;
                if !(i32::MIN as i64..=u32::MAX as i64).contains(&n) {
                    return Err(c.err(format!("li value {n} out of 32-bit range")));
                }
                let v = n as i32;
                match isa {
                    Isa::D16 => {
                        if (-256..=255).contains(&v) {
                            self.push_insn(line, ITpl::Ready(Insn::Mvi { rd, imm: v }));
                        } else {
                            let lit = self.lit_id(LitKey::Num(n));
                            self.push_insn(line, ITpl::Ldc { rd, lit });
                        }
                    }
                    Isa::Dlxe | Isa::D16x => {
                        if (-32768..=32767).contains(&v) {
                            self.push_insn(line, ITpl::Ready(Insn::Mvi { rd, imm: v }));
                        } else {
                            let u = v as u32;
                            self.push_insn(line, ITpl::Ready(Insn::Lui { rd, imm: u >> 16 }));
                            if u & 0xffff != 0 {
                                self.push_insn(
                                    line,
                                    ITpl::Ready(Insn::AluI {
                                        op: AluOp::Or,
                                        rd,
                                        rs1: rd,
                                        imm: (u & 0xffff) as i32,
                                    }),
                                );
                            }
                        }
                    }
                }
            }
            "ret" => {
                self.push_insn(line, ITpl::Ready(Insn::J { target: isa.link_reg() }));
            }
            other => return Err(c.err(format!("unknown mnemonic `{other}`"))),
        }
        c.expect_end()
    }
}

fn alu_from(m: &str) -> AluOp {
    match m {
        "add" => AluOp::Add,
        "sub" => AluOp::Sub,
        "and" => AluOp::And,
        "or" => AluOp::Or,
        "xor" => AluOp::Xor,
        "shl" => AluOp::Shl,
        "shr" => AluOp::Shr,
        _ => AluOp::Shra,
    }
}

fn cond_from(s: &str) -> Option<Cond> {
    Cond::ALL.into_iter().find(|c| c.suffix() == s)
}

fn width_from(m: &str) -> MemWidth {
    match m {
        "ld" => MemWidth::W,
        "ldh" => MemWidth::H,
        "ldhu" => MemWidth::Hu,
        "ldb" => MemWidth::B,
        _ => MemWidth::Bu,
    }
}

// ---------------------------------------------------------------------------
// Layout (pass one) and encoding (pass two)
// ---------------------------------------------------------------------------

fn align_up(x: u32, a: u32) -> u32 {
    (x + a - 1) & !(a - 1)
}

/// Deterministic pass-one size of one instruction template.
///
/// D16 and DLXe are fixed-width. On D16x the length depends only on the
/// template's shape — never on a link-time value: templates carrying
/// relocations always take the 32-bit escape (the patched field needs a
/// full halfword), branches and `ldc` are always narrow, direct jumps are
/// always wide, and fully-resolved instructions ask the encoder.
fn tpl_len(isa: Isa, tpl: &ITpl) -> u32 {
    if isa != Isa::D16x {
        return isa.insn_bytes();
    }
    match tpl {
        ITpl::Ready(i) => encoded_len(i),
        ITpl::Ldc { .. } => 2,
        ITpl::Branch { .. } => 2,
        ITpl::Jal { .. } => 4,
        ITpl::Imm { shape, expr } => match expr {
            Expr::Num(n) => encoded_len(&build_imm_insn(shape, *n as i32)),
            _ => 4,
        },
    }
}

/// D16x narrow-first encoded length; unencodable templates get a
/// placeholder (pass two reports the error with its source line before any
/// layout mismatch can be observed).
fn encoded_len(insn: &Insn) -> u32 {
    d16_isa::d16x::encode(insn).map_or(2, |e| e.len())
}

/// Builds the instruction an [`ImmShape`] template describes, with its
/// immediate resolved.
fn build_imm_insn(shape: &ImmShape, imm: i32) -> Insn {
    match shape {
        ImmShape::AluI { op, rd, rs1 } => Insn::AluI { op: *op, rd: *rd, rs1: *rs1, imm },
        ImmShape::Mvi { rd } => Insn::Mvi { rd: *rd, imm },
        ImmShape::Lui { rd } => Insn::Lui { rd: *rd, imm: imm as u32 },
        ImmShape::CmpI { cond, rd, rs1 } => Insn::CmpI { cond: *cond, rd: *rd, rs1: *rs1, imm },
        ImmShape::Ld { w, rd, base } => Insn::Ld { w: *w, rd: *rd, base: *base, disp: imm },
        ImmShape::St { w, rs, base } => Insn::St { w: *w, rs: *rs, base: *base, disp: imm },
    }
}

/// One relaxed (out-of-reach) branch: the item index of its
/// architectural delay slot and the far target.
#[derive(Clone, Debug)]
struct Relax {
    slot: usize,
    sym: String,
    addend: i64,
}

/// Relaxed-branch island size in bytes for an island starting at text
/// offset `site`. D16 emits `ldc r0, =target; j r0; nop` followed by an
/// inline 4-aligned literal word holding the target's absolute address
/// (relocated at link time); the word is unreachable — the inverted
/// conditional hops the whole island and the island's own `j` transfers
/// before it — so the island never depends on a literal pool being
/// within `ldc` reach. D16x has the wide pc-relative `jdisp`, which
/// needs no register or literal: `jdisp target; nop`.
fn island_bytes(isa: Isa, site: u32) -> u32 {
    match isa {
        Isa::D16 => align_up(site + 6, 4) + 4 - site,
        Isa::D16x => 6,
        Isa::Dlxe => unreachable!("DLXe branches reach 128K and are never relaxed"),
    }
}

/// The item index of `branch`'s architectural delay slot — the next
/// instruction item, skipping labels — when that instruction is a plain
/// (non-control) one an island can legally follow. Control transfers
/// never sit in delay slots, so a branch whose next instruction is
/// itself a transfer is left unrelaxed (the reach error stands).
fn relax_slot(items: &[Item], branch: usize) -> Option<usize> {
    for (j, item) in items.iter().enumerate().skip(branch + 1) {
        match item {
            Item::Label(_) => continue,
            Item::Insn(_, tpl) => {
                let control = match tpl {
                    ITpl::Branch { .. } | ITpl::Jal { .. } => true,
                    ITpl::Ready(i) => matches!(
                        i,
                        Insn::Br { .. }
                            | Insn::Bc { .. }
                            | Insn::J { .. }
                            | Insn::Jc { .. }
                            | Insn::Jl { .. }
                            | Insn::Jdisp { .. }
                            | Insn::Trap { .. }
                    ),
                    _ => false,
                };
                return (!control).then_some(j);
            }
            _ => return None,
        }
    }
    None
}

/// Everything pass one computes that pass two (and the relaxation check
/// between them) consumes.
struct Layout {
    obj: Object,
    lit_off: HashMap<usize, u32>,
    pool_layout: HashMap<usize, Vec<usize>>,
    /// `(item index, text offset)` of every label-targeted branch.
    branch_sites: Vec<(usize, u32)>,
    text_size: u32,
    data_size: u32,
}

fn layout_and_encode(isa: Isa, p: Parser) -> Result<Object, AsmError> {
    // ---- branch relaxation fixpoint ----
    //
    // Narrow-format branches reach only ±1K; a branch the short form
    // cannot reach is rewritten over an island placed after its delay
    // slot: the conditional inverts and hops the island, the island
    // jumps far (D16 through the scratch `r0` and a literal-pool
    // address, D16x through the wide pc-relative `jdisp`). Growth is
    // monotone — a relaxed branch never shrinks back — so re-running
    // layout until no new branch falls out of reach terminates, and a
    // unit with every branch in range lays out byte-identically to the
    // pre-relaxation assembler.
    let mut long: HashMap<usize, Relax> = HashMap::new();
    let layout = loop {
        let layout = layout_pass(isa, &p, &long)?;
        let mut changed = false;
        if isa != Isa::Dlxe {
            for &(i, site) in &layout.branch_sites {
                if long.contains_key(&i) {
                    continue;
                }
                let Item::Insn(_, ITpl::Branch { target: Expr::Sym(s, a), .. }) = &p.items[i]
                else {
                    continue;
                };
                let (s, a) = (s.clone(), *a);
                let Some(sym) = layout.obj.symbols.get(&s) else {
                    continue; // pass two reports the undefined target
                };
                if sym.section != Section::Text {
                    continue;
                }
                let disp = sym.offset as i64 + a - (site as i64 + 2);
                let fits = disp % 2 == 0
                    && i32::try_from(disp).is_ok_and(|d| d16_isa::d16::BR_RANGE.contains(&d));
                if fits {
                    continue;
                }
                let Some(slot) = relax_slot(&p.items, i) else {
                    continue;
                };
                long.insert(i, Relax { slot, sym: s, addend: a });
                changed = true;
            }
        }
        if !changed {
            break layout;
        }
    };
    encode_pass(isa, &p, &long, layout)
}

fn layout_pass(isa: Isa, p: &Parser, long: &HashMap<usize, Relax>) -> Result<Layout, AsmError> {
    let mut obj = Object::default();
    let slot_relax: HashMap<usize, &Relax> = long.values().map(|r| (r.slot, r)).collect();

    // ---- pass one: sizes, labels, pools ----
    //
    // Labels bind lazily: a label names the next byte actually emitted, so
    // padding inserted by an aligned directive lands *before* the label's
    // address rather than after it.
    let mut sect = Section::Text;
    let mut off = [0u32; 3]; // text, data, bss
    let idx = |s: Section| match s {
        Section::Text => 0,
        Section::Data => 1,
        Section::Bss => 2,
    };
    // Literal-pool assignment: lit id -> text offset of its pool slot.
    let mut lit_off: HashMap<usize, u32> = HashMap::new();
    let mut pending: Vec<usize> = Vec::new();
    let mut pool_layout: HashMap<usize, Vec<usize>> = HashMap::new(); // item idx -> unique lit ids
    let mut pending_labels: Vec<String> = Vec::new();
    let mut branch_sites: Vec<(usize, u32)> = Vec::new();

    macro_rules! bind_labels {
        ($obj:expr, $sect:expr, $offset:expr) => {
            for name in pending_labels.drain(..) {
                if $obj
                    .symbols
                    .insert(name.clone(), Symbol { section: $sect, offset: $offset })
                    .is_some()
                {
                    return Err(AsmError::DuplicateSymbol(name));
                }
            }
        };
    }

    for (i, item) in p.items.iter().enumerate() {
        match item {
            Item::Label(name) => pending_labels.push(name.clone()),
            Item::SetSection(s) => {
                bind_labels!(obj, sect, off[idx(sect)]);
                sect = *s;
            }
            Item::Insn(_, tpl) => {
                bind_labels!(obj, sect, off[idx(sect)]);
                if sect == Section::Text {
                    if let ITpl::Branch { target: Expr::Sym(..), .. } = tpl {
                        branch_sites.push((i, off[0]));
                    }
                }
                off[idx(sect)] += tpl_len(isa, tpl);
                // A relaxed branch's island sits after this delay-slot
                // instruction.
                if slot_relax.contains_key(&i) {
                    off[idx(sect)] += island_bytes(isa, off[idx(sect)]);
                }
            }
            Item::Word(_, v) => {
                let o = align_up(off[idx(sect)], 4);
                bind_labels!(obj, sect, o);
                off[idx(sect)] = o + 4 * v.len() as u32;
            }
            Item::Half(v) => {
                let o = align_up(off[idx(sect)], 2);
                bind_labels!(obj, sect, o);
                off[idx(sect)] = o + 2 * v.len() as u32;
            }
            Item::Byte(v) => {
                bind_labels!(obj, sect, off[idx(sect)]);
                off[idx(sect)] += v.len() as u32;
            }
            Item::Bytes(b) => {
                bind_labels!(obj, sect, off[idx(sect)]);
                off[idx(sect)] += b.len() as u32;
            }
            Item::FloatLit(_) => {
                let o = align_up(off[idx(sect)], 4);
                bind_labels!(obj, sect, o);
                off[idx(sect)] = o + 4;
            }
            Item::DoubleLit(_) => {
                let o = align_up(off[idx(sect)], 8);
                bind_labels!(obj, sect, o);
                off[idx(sect)] = o + 8;
            }
            Item::Space(n) => {
                bind_labels!(obj, sect, off[idx(sect)]);
                off[idx(sect)] += n;
            }
            Item::Align(a) => {
                off[idx(sect)] = align_up(off[idx(sect)], *a);
                bind_labels!(obj, sect, off[idx(sect)]);
            }
            Item::Comm(line, name, size) => {
                bind_labels!(obj, sect, off[idx(sect)]);
                let o = align_up(off[2], 8);
                off[2] = o + size;
                if obj
                    .symbols
                    .insert(name.clone(), Symbol { section: Section::Bss, offset: o })
                    .is_some()
                {
                    return Err(AsmError::Line {
                        line: *line,
                        msg: format!("duplicate symbol `{name}`"),
                    });
                }
            }
            Item::Pool => {
                if pending.is_empty() {
                    // An empty pool emits nothing, not even padding.
                    pool_layout.insert(i, Vec::new());
                } else {
                    let mut here = align_up(off[0], 4);
                    bind_labels!(obj, Section::Text, here);
                    let mut placed: HashMap<&LitKey, u32> = HashMap::new();
                    let mut unique = Vec::new();
                    for &id in &pending {
                        let key = &p.lits[id];
                        let slot = *placed.entry(key).or_insert_with(|| {
                            let s = here;
                            here += 4;
                            unique.push(id);
                            s
                        });
                        lit_off.insert(id, slot);
                    }
                    off[0] = here;
                    pool_layout.insert(i, unique);
                    pending.clear();
                }
            }
        }
        // Track which literals are pending for the next pool.
        if let Item::Insn(_, ITpl::Ldc { lit, .. }) = item {
            pending.push(*lit);
        }
    }
    bind_labels!(obj, sect, off[idx(sect)]);
    obj.bss_size = off[2];
    Ok(Layout { obj, lit_off, pool_layout, branch_sites, text_size: off[0], data_size: off[1] })
}

fn encode_pass(
    isa: Isa,
    p: &Parser,
    long: &HashMap<usize, Relax>,
    layout: Layout,
) -> Result<Object, AsmError> {
    let Layout { mut obj, lit_off, pool_layout, text_size, data_size, .. } = layout;
    let slot_relax: HashMap<usize, &Relax> = long.values().map(|r| (r.slot, r)).collect();

    // ---- pass two: emit bytes, resolve, relocate ----
    let mut sect = Section::Text;
    let mut text: Vec<u8> = Vec::new();
    let mut data: Vec<u8> = Vec::new();

    for (i, item) in p.items.iter().enumerate() {
        // `.bss` content is only reachable via `.comm`, which emits nothing,
        // so the active section is always text or data here.
        let buf: &mut Vec<u8> = if sect == Section::Text { &mut text } else { &mut data };
        match item {
            Item::Label(_) | Item::Comm(..) => {}
            Item::SetSection(s) => sect = *s,
            Item::Word(line, v) => {
                pad_to(buf, 4);
                for e in v {
                    match e {
                        Expr::Num(n) => buf.extend_from_slice(&(*n as u32).to_le_bytes()),
                        Expr::Sym(s, a) => {
                            obj.relocs.push(Reloc {
                                section: sect,
                                offset: buf.len() as u32,
                                kind: RelocKind::Abs32,
                                symbol: s.clone(),
                                addend: *a as i32,
                            });
                            buf.extend_from_slice(&0u32.to_le_bytes());
                        }
                        other => {
                            return Err(AsmError::Line {
                                line: *line,
                                msg: format!(".word operand {other:?} unsupported"),
                            })
                        }
                    }
                }
            }
            Item::Half(v) => {
                pad_to(buf, 2);
                for n in v {
                    buf.extend_from_slice(&(*n as u16).to_le_bytes());
                }
            }
            Item::Byte(v) => {
                for n in v {
                    buf.push(*n as u8);
                }
            }
            Item::Bytes(b) => buf.extend_from_slice(b),
            Item::FloatLit(f) => {
                pad_to(buf, 4);
                buf.extend_from_slice(&f.to_bits().to_le_bytes());
            }
            Item::DoubleLit(f) => {
                pad_to(buf, 8);
                buf.extend_from_slice(&f.to_bits().to_le_bytes());
            }
            Item::Space(n) => buf.extend(std::iter::repeat_n(0u8, *n as usize)),
            Item::Align(a) => pad_to(buf, *a),
            Item::Pool => {
                if !pool_layout[&i].is_empty() {
                    pad_to(buf, 4);
                }
                for &id in &pool_layout[&i] {
                    debug_assert_eq!(buf.len() as u32, lit_off[&id]);
                    match &p.lits[id] {
                        LitKey::Num(n) => buf.extend_from_slice(&(*n as u32).to_le_bytes()),
                        LitKey::Sym(s, a) => {
                            obj.relocs.push(Reloc {
                                section: Section::Text,
                                offset: buf.len() as u32,
                                kind: RelocKind::Abs32,
                                symbol: s.clone(),
                                addend: *a as i32,
                            });
                            buf.extend_from_slice(&0u32.to_le_bytes());
                        }
                    }
                }
            }
            Item::Insn(line, tpl) => {
                let site = buf.len() as u32;
                if let Some(r) = long.get(&i) {
                    // Relaxed branch: a short hop over the island that
                    // follows the delay slot. The conditional inverts;
                    // the unconditional just falls through (as a nop).
                    let slot_len = match &p.items[r.slot] {
                        Item::Insn(_, t) => tpl_len(isa, t),
                        _ => unreachable!("relax slot is always an instruction"),
                    };
                    let island = island_bytes(isa, site + tpl_len(isa, tpl) + slot_len);
                    let insn = match tpl {
                        ITpl::Branch { neg: Some(n), rs, .. } => {
                            Insn::Bc { neg: !n, rs: *rs, disp: (slot_len + island) as i32 }
                        }
                        ITpl::Branch { neg: None, .. } => Insn::Nop,
                        _ => unreachable!("only branches are relaxed"),
                    };
                    let bytes = d16_isa::encode_bytes(isa, &insn)
                        .map_err(|e| AsmError::Line { line: *line, msg: e.to_string() })?;
                    buf.extend_from_slice(&bytes);
                } else {
                    let (insn, reloc) = resolve_insn(
                        isa,
                        tpl,
                        site,
                        tpl_len(isa, tpl),
                        &obj.symbols,
                        &lit_off,
                        *line,
                    )?;
                    let bytes = d16_isa::encode_bytes(isa, &insn)
                        .map_err(|e| AsmError::Line { line: *line, msg: e.to_string() })?;
                    if let Some((kind, symbol, addend)) = reloc {
                        obj.relocs.push(Reloc {
                            section: Section::Text,
                            offset: site,
                            kind,
                            symbol,
                            addend,
                        });
                    }
                    buf.extend_from_slice(&bytes);
                }
                if let Some(r) = slot_relax.get(&i) {
                    if let Some(reloc) = emit_island(isa, r, buf, &obj.symbols, *line)? {
                        obj.relocs.push(reloc);
                    }
                }
            }
        }
    }

    obj.text = text;
    obj.data = data;
    debug_assert_eq!(obj.text.len() as u32, text_size, "pass one/two text size mismatch");
    debug_assert_eq!(obj.data.len() as u32, data_size, "pass one/two data size mismatch");
    Ok(obj)
}

/// Emits a relaxed branch's far-jump island, directly after the delay
/// slot it protects. D16 goes through the scratch register (`r0` is the
/// reserved compare/scratch register, so its value is architecturally
/// unspecified at a branch target): `ldc r0, =target; j r0; nop`,
/// followed by an inline 4-aligned literal word the `ldc` reads — the
/// word is unreachable as code, and carries an `Abs32` reloc the linker
/// resolves, so the island is self-contained whatever the distance to
/// the unit's literal pools. D16x has the wide pc-relative `jdisp`,
/// which needs no register or literal: `jdisp target; nop`. Both
/// islands place the far jump's own delay-slot `nop` last among their
/// instructions.
fn emit_island(
    isa: Isa,
    r: &Relax,
    buf: &mut Vec<u8>,
    symbols: &HashMap<String, Symbol>,
    line: usize,
) -> Result<Option<Reloc>, AsmError> {
    let err = |msg: String| AsmError::Line { line, msg };
    let site = buf.len() as u32;
    let insns = match isa {
        Isa::D16 => {
            // The `ldc` anchor (`align_up(pc + 2, 4)`) and the inline
            // word (first 4-aligned offset past the three island
            // instructions) always end up exactly one word apart.
            let anchor = align_up(site + 2, 4);
            let word = align_up(site + 6, 4);
            vec![
                Insn::Ldc { rd: abi::R0, disp: (word - anchor) as i32 },
                Insn::J { target: abi::R0 },
                Insn::Nop,
            ]
        }
        Isa::D16x => {
            let sym = symbols
                .get(&r.sym)
                .ok_or_else(|| err(format!("branch target `{}` not defined in unit", r.sym)))?;
            let disp = sym.offset as i64 + r.addend - (site as i64 + 4);
            vec![Insn::Jdisp { link: false, disp: disp as i32 }, Insn::Nop]
        }
        Isa::Dlxe => unreachable!("DLXe branches reach 128K and are never relaxed"),
    };
    for insn in insns {
        let bytes = d16_isa::encode_bytes(isa, &insn).map_err(|e| err(e.to_string()))?;
        buf.extend_from_slice(&bytes);
    }
    if isa != Isa::D16 {
        return Ok(None);
    }
    pad_to(buf, 4);
    let reloc = Reloc {
        section: Section::Text,
        offset: buf.len() as u32,
        kind: RelocKind::Abs32,
        symbol: r.sym.clone(),
        addend: r.addend as i32,
    };
    buf.extend_from_slice(&0u32.to_le_bytes());
    Ok(Some(reloc))
}

fn pad_to(buf: &mut Vec<u8>, a: u32) {
    while !(buf.len() as u32).is_multiple_of(a) {
        buf.push(0);
    }
}

type PendingReloc = Option<(RelocKind, String, i32)>;

fn resolve_insn(
    isa: Isa,
    tpl: &ITpl,
    site: u32,
    ilen: u32,
    symbols: &HashMap<String, Symbol>,
    lit_off: &HashMap<usize, u32>,
    line: usize,
) -> Result<(Insn, PendingReloc), AsmError> {
    let err = |msg: String| AsmError::Line { line, msg };
    match tpl {
        ITpl::Ready(i) => Ok((*i, None)),
        ITpl::Ldc { rd, lit } => {
            let slot = *lit_off
                .get(lit)
                .ok_or_else(|| err("literal has no pool (missing .pool?)".into()))?;
            let anchor = align_up(site + 2, 4);
            let disp = slot as i64 - anchor as i64;
            if disp < 0 {
                return Err(err(format!(
                    "literal pool is {} bytes behind its ldc; pools must follow their loads",
                    -disp
                )));
            }
            Ok((Insn::Ldc { rd: *rd, disp: disp as i32 }, None))
        }
        ITpl::Branch { neg, rs, target } => {
            let disp = match target {
                Expr::Here(n) => *n as i32,
                Expr::Sym(s, a) => {
                    let sym = symbols
                        .get(s)
                        .ok_or_else(|| err(format!("branch target `{s}` not defined in unit")))?;
                    if sym.section != Section::Text {
                        return Err(err(format!("branch target `{s}` is not in .text")));
                    }
                    (sym.offset as i64 + a - (site + ilen) as i64) as i32
                }
                other => return Err(err(format!("bad branch target {other:?}"))),
            };
            let insn = match neg {
                None => Insn::Br { disp },
                Some(n) => Insn::Bc { neg: *n, rs: *rs, disp },
            };
            Ok((insn, None))
        }
        ITpl::Jal { link, target } => match target {
            Expr::Here(n) => Ok((Insn::Jdisp { link: *link, disp: *n as i32 }, None)),
            Expr::Sym(s, a) => {
                let kind = if isa == Isa::D16x { RelocKind::XJ16 } else { RelocKind::J26 };
                Ok((Insn::Jdisp { link: *link, disp: 0 }, Some((kind, s.clone(), *a as i32))))
            }
            other => Err(err(format!("bad jump target {other:?}"))),
        },
        ITpl::Imm { shape, expr } => {
            let (imm, reloc) = match expr {
                Expr::Num(n) => (*n as i32, None),
                Expr::Hi(s, a) => (0, Some((RelocKind::Hi16, s.clone(), *a as i32))),
                Expr::Lo(s, a) => (0, Some((RelocKind::Lo16, s.clone(), *a as i32))),
                Expr::GpRel(s, a) => (0, Some((RelocKind::GpRel16, s.clone(), *a as i32))),
                other => return Err(err(format!("unresolvable immediate {other:?}"))),
            };
            match (isa, &reloc) {
                (_, None) | (Isa::Dlxe, _) => {}
                (Isa::D16, Some(_)) => {
                    return Err(err(
                        "hi/lo/gprel relocations require 16-bit fields (DLXe only)".into()
                    ));
                }
                // D16x link-time fields must land on escape shapes the
                // narrow format can never express, so that the patched
                // bytes stay canonically decodable for any value: hi() on
                // mvhi, lo() on ori. gprel has no D16x form (a patched
                // small displacement would collide with the narrow
                // load/store encodings).
                (Isa::D16x, Some((RelocKind::Hi16, ..)))
                    if matches!(shape, ImmShape::Lui { .. }) => {}
                (Isa::D16x, Some((RelocKind::Lo16, ..)))
                    if matches!(shape, ImmShape::AluI { op: AluOp::Or, .. }) => {}
                (Isa::D16x, Some(_)) => {
                    return Err(err(
                        "D16x supports hi() only on mvhi and lo() only on ori; gprel has no D16x form"
                            .into(),
                    ));
                }
            }
            Ok((build_imm_insn(shape, imm), reloc))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assembles_simple_text() {
        let src = "\
start:  mvi r2, 5
        addi r2, r2, 3
loop:   subi r2, r2, 1
        cmpeq r2, r0
        bz r0, loop
        trap 0
";
        let obj = assemble(Isa::D16, src).unwrap();
        assert_eq!(obj.text.len(), 12, "six 16-bit instructions");
        assert_eq!(obj.symbols["start"].offset, 0);
        assert_eq!(obj.symbols["loop"].offset, 4);
        // The bz encodes backwards to `loop`.
        let w = u16::from_le_bytes([obj.text[8], obj.text[9]]);
        assert_eq!(
            d16_isa::d16::decode(w).unwrap(),
            Insn::Bc { neg: false, rs: abi::R0, disp: -6 }
        );
    }

    #[test]
    fn dlxe_three_address_and_relocs() {
        let src = "\
        mvhi r4, hi(table)
        ori  r4, r4, lo(table)
        ld   r5, gprel(counter)(r13)
        jal  helper
        .data
counter: .word 7
table:   .word 1, 2, 3
";
        let obj = assemble(Isa::Dlxe, src).unwrap();
        assert_eq!(obj.text.len(), 16);
        let kinds: Vec<_> = obj.relocs.iter().map(|r| r.kind).collect();
        assert_eq!(
            kinds,
            vec![RelocKind::Hi16, RelocKind::Lo16, RelocKind::GpRel16, RelocKind::J26]
        );
        assert_eq!(obj.symbols["counter"].section, Section::Data);
        assert_eq!(obj.symbols["table"].offset, 4);
    }

    #[test]
    fn d16_literal_pool_resolves_forward() {
        let src = "\
        ldc r3, =0x12345678
        ldc r4, =label
        ldc r5, =0x12345678
        trap 0
        .pool
label:  nop
";
        let obj = assemble(Isa::D16, src).unwrap();
        // 4 insns (8 bytes) + pool (two unique entries, 8 bytes) + nop.
        assert_eq!(obj.text.len(), 8 + 8 + 2);
        // First ldc: site 0, anchor align4(2)=4, slot 8 -> disp 4.
        let w = u16::from_le_bytes([obj.text[0], obj.text[1]]);
        assert_eq!(d16_isa::d16::decode(w).unwrap(), Insn::Ldc { rd: Gpr::new(3), disp: 4 });
        // Duplicate literal shares the slot: site 4, anchor 8, slot 8 -> 0.
        let w = u16::from_le_bytes([obj.text[4], obj.text[5]]);
        assert_eq!(d16_isa::d16::decode(w).unwrap(), Insn::Ldc { rd: Gpr::new(5), disp: 0 });
        // Pool bytes: the constant then the relocated zero.
        assert_eq!(&obj.text[8..12], &0x12345678u32.to_le_bytes());
        assert_eq!(obj.relocs.len(), 1);
        assert_eq!(obj.relocs[0].offset, 12);
        assert_eq!(obj.symbols["label"].offset, 16);
    }

    #[test]
    fn pool_is_appended_automatically() {
        let obj = assemble(Isa::D16, "ldc r1, =99\n").unwrap();
        assert_eq!(obj.text.len(), 8, "insn + pad + pool entry");
    }

    #[test]
    fn branch_out_of_reach_is_reported() {
        // The branch is the last item, so there is no delay-slot
        // instruction an island could follow: relaxation stays out and
        // the reach error is reported as ever.
        let mut src = String::from("start: nop\n");
        for _ in 0..600 {
            src.push_str("nop\n");
        }
        src.push_str("br start\n");
        let e = assemble(Isa::D16, &src).unwrap_err();
        assert!(matches!(e, AsmError::Line { .. }), "{e}");
        assert!(assemble(Isa::Dlxe, &src).is_ok(), "DLXe reach is 128K");
    }

    /// 601 `nop`s (1202 bytes), then the out-of-reach branch, its delay
    /// slot, and the relaxation island.
    fn far_branch_src(branch: &str) -> String {
        let mut src = String::from("start: nop\n");
        for _ in 0..600 {
            src.push_str("nop\n");
        }
        src.push_str(branch);
        src.push_str("\nadd r1, r1, r2\n");
        src
    }

    #[test]
    fn far_conditional_branch_relaxes_over_island() {
        let obj = assemble(Isa::D16, &far_branch_src("bz r0, start")).unwrap();
        // Site 1202: the inverted short hop over slot (2) + island (10).
        // Island at 1206: `ldc r0, [anchor+4]; j r0; nop`, then the
        // 4-aligned inline literal word at 1212.
        let mut want = Vec::new();
        for insn in [
            Insn::Bc { neg: true, rs: abi::R0, disp: 12 },
            Insn::Alu { op: AluOp::Add, rd: Gpr::new(1), rs1: Gpr::new(1), rs2: Gpr::new(2) },
            Insn::Ldc { rd: abi::R0, disp: 4 },
            Insn::J { target: abi::R0 },
            Insn::Nop,
        ] {
            want.extend_from_slice(&d16_isa::encode_bytes(Isa::D16, &insn).unwrap());
        }
        assert_eq!(&obj.text[1202..1212], &want[..], "hop + slot + island");
        assert_eq!(&obj.text[1212..1216], &[0, 0, 0, 0], "unresolved inline word");
        assert_eq!(obj.text.len(), 1216);
        let reloc =
            obj.relocs.iter().find(|r| r.offset == 1212).expect("island word carries a reloc");
        assert_eq!(reloc.kind, RelocKind::Abs32);
        assert_eq!(reloc.symbol, "start");
        assert_eq!(reloc.addend, 0);
    }

    #[test]
    fn far_unconditional_branch_relaxes_to_nop_plus_island() {
        let obj = assemble(Isa::D16, &far_branch_src("br start")).unwrap();
        // The site becomes a nop (fall through its still-executed delay
        // slot into the island, which jumps far).
        let mut want = Vec::new();
        for insn in [
            Insn::Nop,
            Insn::Alu { op: AluOp::Add, rd: Gpr::new(1), rs1: Gpr::new(1), rs2: Gpr::new(2) },
            Insn::Ldc { rd: abi::R0, disp: 4 },
            Insn::J { target: abi::R0 },
            Insn::Nop,
        ] {
            want.extend_from_slice(&d16_isa::encode_bytes(Isa::D16, &insn).unwrap());
        }
        assert_eq!(&obj.text[1202..1212], &want[..]);
        assert!(obj.relocs.iter().any(|r| r.offset == 1212 && r.symbol == "start"));
    }

    #[test]
    fn far_branch_relaxes_to_jdisp_on_d16x() {
        let obj = assemble(Isa::D16x, &far_branch_src("bz r0, start")).unwrap();
        // D16x needs no literal: the island is a wide pc-relative
        // `jdisp start` (4 bytes) plus its delay-slot nop. Island at
        // 1206, so disp = 0 - (1206 + 4).
        let mut want = Vec::new();
        for insn in [
            Insn::Bc { neg: true, rs: abi::R0, disp: 8 },
            Insn::Alu { op: AluOp::Add, rd: Gpr::new(1), rs1: Gpr::new(1), rs2: Gpr::new(2) },
            Insn::Jdisp { link: false, disp: -1210 },
            Insn::Nop,
        ] {
            want.extend_from_slice(&d16_isa::encode_bytes(Isa::D16x, &insn).unwrap());
        }
        assert_eq!(&obj.text[1202..1212], &want[..]);
        assert_eq!(obj.text.len(), 1212, "no inline word on D16x");
    }

    #[test]
    fn in_range_branches_do_not_relax() {
        let obj = assemble(Isa::D16, "start: nop\nbz r0, start\nadd r1, r1, r2\n").unwrap();
        assert_eq!(obj.text.len(), 6, "no island for a reachable branch");
        assert!(obj.relocs.is_empty());
    }

    #[test]
    fn data_directives_layout() {
        let src = "\
        .data
a:      .byte 1, 2, 3
b:      .half 4
c:      .word 5
s:      .asciiz \"ok\"
d:      .double 1.5
e:      .space 3
f:      .align 4
g:      .word 6
";
        let obj = assemble(Isa::D16, src).unwrap();
        let sym = |n: &str| obj.symbols[n].offset;
        assert_eq!(sym("a"), 0);
        assert_eq!(sym("b"), 4, ".half aligns to 2 (3 -> 4)");
        assert_eq!(sym("c"), 8, ".word aligns to 4");
        assert_eq!(sym("s"), 12);
        assert_eq!(sym("d"), 16, ".double aligns to 8");
        assert_eq!(sym("e"), 24);
        assert_eq!(sym("g"), 28);
        assert_eq!(obj.data.len(), 32);
        assert_eq!(&obj.data[16..24], &1.5f64.to_bits().to_le_bytes());
    }

    #[test]
    fn comm_allocates_bss() {
        let obj = assemble(Isa::D16, ".comm buf, 100\n.comm tab, 8\n").unwrap();
        assert_eq!(obj.symbols["buf"].section, Section::Bss);
        assert_eq!(obj.symbols["tab"].offset, 104, "aligned to 8");
        assert_eq!(obj.bss_size, 112);
        assert!(obj.data.is_empty());
    }

    #[test]
    fn pseudos_expand_per_target() {
        let d16 = assemble(Isa::D16, "la r3, foo\nret\nfoo: nop\n").unwrap();
        // la -> ldc (2 bytes), ret -> j r1 (2), foo: nop (2), pool (pad+4).
        assert_eq!(d16.text.len(), 2 + 2 + 2 + 2 + 4);
        let dlxe = assemble(Isa::Dlxe, "la r3, foo\nret\nfoo: nop\n").unwrap();
        assert_eq!(dlxe.text.len(), 4 * 4, "la is mvhi+ori on DLXe");
        let w = u32::from_le_bytes(dlxe.text[8..12].try_into().unwrap());
        assert_eq!(d16_isa::dlxe::decode(w).unwrap(), Insn::J { target: Gpr::new(31) });
    }

    #[test]
    fn li_chooses_minimal_sequence() {
        assert_eq!(assemble(Isa::D16, "li r1, 200\n").unwrap().text.len(), 2);
        assert_eq!(assemble(Isa::D16, "li r1, 100000\n").unwrap().text.len(), 8, "ldc + pool");
        assert_eq!(assemble(Isa::Dlxe, "li r1, 200\n").unwrap().text.len(), 4);
        assert_eq!(assemble(Isa::Dlxe, "li r1, 100000\n").unwrap().text.len(), 8, "mvhi + ori");
        assert_eq!(assemble(Isa::Dlxe, "li r1, 0x30000\n").unwrap().text.len(), 4, "mvhi only");
    }

    fn d16x_walk(text: &[u8]) -> Vec<(Insn, u32)> {
        let mut out = Vec::new();
        let mut off = 0usize;
        while off < text.len() {
            let first = u16::from_le_bytes([text[off], text[off + 1]]);
            let len = d16_isa::d16x::insn_len(first) as usize;
            let second = (len == 4).then(|| u16::from_le_bytes([text[off + 2], text[off + 3]]));
            let (insn, ilen) = d16_isa::d16x::decode(first, second).unwrap();
            out.push((insn, ilen));
            off += len;
        }
        out
    }

    #[test]
    fn d16x_mixed_width_layout_binds_labels_and_branches() {
        // The bug class this guards: any pass-one or branch-resolution path
        // that assumes a fixed 2-byte instruction length. Wide escapes
        // before a label must shift it; a branch over a wide instruction
        // must count its 4 bytes.
        let src = "\
start:  mvi r2, 5
        mvi r3, 1000
loop:   subi r2, r2, 1
        add r4, r2, r3
        cmpeq r2, r0
        bnz r0, loop
        trap 0
";
        let obj = assemble(Isa::D16x, src).unwrap();
        assert_eq!(obj.symbols["start"].offset, 0);
        assert_eq!(obj.symbols["loop"].offset, 6, "wide mvi shifts the label");
        let walked = d16x_walk(&obj.text);
        let lens: Vec<u32> = walked.iter().map(|(_, l)| *l).collect();
        assert_eq!(lens, vec![2, 4, 2, 4, 2, 2, 2]);
        assert_eq!(obj.text.len(), 18);
        // bnz at offset 14: disp = loop - (site + len) = 6 - 16 = -10.
        assert_eq!(walked[5].0, Insn::Bc { neg: true, rs: abi::R0, disp: -10 });
        assert_eq!(walked[1].0, Insn::Mvi { rd: Gpr::new(3), imm: 1000 });
        assert_eq!(
            walked[3].0,
            Insn::Alu { op: AluOp::Add, rd: Gpr::new(4), rs1: Gpr::new(2), rs2: Gpr::new(3) }
        );
    }

    #[test]
    fn d16x_pseudos_and_reloc_sites_are_wide() {
        let src = "\
        la r3, foo
        jal foo
        li r4, 70000
        li r5, 3
        li r6, -3000
        ret
foo:    nop
";
        let obj = assemble(Isa::D16x, src).unwrap();
        // la -> mvhi+ori (4+4), jal -> escape jump (4), li 70000 ->
        // mvhi+ori (4+4), li 3 -> narrow mvi (2), li -3000 -> wide mvi (4),
        // ret -> j r1 (2), nop (2).
        assert_eq!(obj.text.len(), 30);
        assert_eq!(obj.symbols["foo"].offset, 28);
        let kinds: Vec<_> = obj.relocs.iter().map(|r| (r.kind, r.offset)).collect();
        assert_eq!(kinds, vec![(RelocKind::Hi16, 0), (RelocKind::Lo16, 4), (RelocKind::XJ16, 8)]);
        // The li expansions resolve without relocation.
        let walked = d16x_walk(&obj.text[12..28]);
        assert_eq!(walked[0].0, Insn::Lui { rd: Gpr::new(4), imm: 70000 >> 16 });
        assert_eq!(
            walked[1].0,
            Insn::AluI { op: AluOp::Or, rd: Gpr::new(4), rs1: Gpr::new(4), imm: 70000 & 0xffff }
        );
        assert_eq!(walked[2].0, Insn::Mvi { rd: Gpr::new(5), imm: 3 });
        assert_eq!(walked[3].0, Insn::Mvi { rd: Gpr::new(6), imm: -3000 });
        assert_eq!(walked[4].0, Insn::J { target: Gpr::new(1) });
    }

    #[test]
    fn d16x_gprel_and_misplaced_hi_lo_are_rejected() {
        let e = assemble(Isa::D16x, "ld r2, gprel(x)(r13)\n.data\nx: .word 1\n").unwrap_err();
        assert!(matches!(e, AsmError::Line { .. }), "{e}");
        // hi() on anything but mvhi (here: an addi) must be refused — a
        // patched narrow-encodable value would break canonical decoding.
        let e = assemble(Isa::D16x, "addi r2, r2, hi(x)\n.data\nx: .word 1\n").unwrap_err();
        assert!(matches!(e, AsmError::Line { .. }), "{e}");
    }

    #[test]
    fn duplicate_labels_rejected() {
        let e = assemble(Isa::D16, "x: nop\nx: nop\n").unwrap_err();
        assert!(matches!(e, AsmError::DuplicateSymbol(_)));
    }

    #[test]
    fn register_shaped_labels_are_labels() {
        // `f0` is a valid C function name; the compiler emits it verbatim
        // as a label. Register-shaped names must define and resolve like
        // any other symbol on both targets.
        for isa in [Isa::D16, Isa::Dlxe] {
            let obj = assemble(isa, "j2: nop\nf0: nop\nr15: nop\nla r3, f0\nla r4, r15\n")
                .unwrap_or_else(|e| panic!("{isa:?}: {e}"));
            assert!(obj.symbols.contains_key("f0"), "{isa:?}");
            assert!(obj.symbols.contains_key("r15"), "{isa:?}");
        }
    }

    #[test]
    fn unknown_mnemonic_reports_line() {
        let e = assemble(Isa::D16, "nop\nfrobnicate r1\n").unwrap_err();
        match e {
            AsmError::Line { line, .. } => assert_eq!(line, 2),
            other => panic!("{other}"),
        }
    }

    #[test]
    fn two_operand_alu_is_two_address() {
        let obj = assemble(Isa::D16, "add r3, r4\n").unwrap();
        let w = u16::from_le_bytes([obj.text[0], obj.text[1]]);
        assert_eq!(
            d16_isa::d16::decode(w).unwrap(),
            Insn::Alu { op: AluOp::Add, rd: Gpr::new(3), rs1: Gpr::new(3), rs2: Gpr::new(4) }
        );
    }

    #[test]
    fn disassembly_reassembles() {
        // Round-trip through the disassembler for a spread of instructions.
        let r = Gpr::new;
        let insns = [
            Insn::Alu { op: AluOp::Add, rd: r(3), rs1: r(3), rs2: r(7) },
            Insn::AluI { op: AluOp::Shl, rd: r(4), rs1: r(4), imm: 5 },
            Insn::Mvi { rd: r(6), imm: -100 },
            Insn::Cmp { cond: Cond::Ltu, rd: abi::R0, rs1: r(5), rs2: r(6) },
            Insn::Ld { w: MemWidth::W, rd: r(2), base: abi::SP, disp: 12 },
            Insn::St { w: MemWidth::B, rs: r(2), base: r(3), disp: 0 },
            Insn::Br { disp: -8 },
            Insn::Bc { neg: true, rs: abi::R0, disp: 10 },
            Insn::Jl { target: r(9) },
            Insn::Trap { code: TrapCode::PutInt },
            Insn::Nop,
        ];
        let text: String = insns.iter().map(|i| format!("{}\n", d16_isa::disassemble(i))).collect();
        let obj = assemble(Isa::D16, &text).unwrap();
        for (k, insn) in insns.iter().enumerate() {
            let w = u16::from_le_bytes([obj.text[2 * k], obj.text[2 * k + 1]]);
            assert_eq!(d16_isa::d16::decode(w).unwrap(), *insn, "insn {k}");
        }
    }
}
