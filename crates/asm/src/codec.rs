//! Persistence codec for linked [`Image`]s (the `d16-store` artifact).
//!
//! The encoding is deterministic — symbols are written in sorted order
//! even though the in-memory table is a `HashMap` — so the same image
//! always produces the same bytes, and equal keys imply equal entries
//! no matter which process committed first.

use crate::object::Image;
use d16_isa::Isa;
use d16_store::{Reader, Writer};

/// Serializes an image.
#[must_use]
pub fn encode_image(img: &Image) -> Vec<u8> {
    let mut w = Writer::new();
    w.str(img.isa.name());
    w.u32(img.text_base);
    w.bytes(&img.text);
    w.u32(img.data_base);
    w.bytes(&img.data);
    w.u32(img.bss_size);
    w.u32(img.entry);
    let mut symbols: Vec<(&String, &u32)> = img.symbols.iter().collect();
    symbols.sort();
    w.u64(symbols.len() as u64);
    for (name, addr) in symbols {
        w.str(name);
        w.u32(*addr);
    }
    w.into_bytes()
}

/// Deserializes an image; `None` on any structural damage.
#[must_use]
pub fn decode_image(bytes: &[u8]) -> Option<Image> {
    let mut r = Reader::new(bytes);
    let isa_name = r.str()?;
    let isa = *Isa::ALL.iter().find(|i| i.name() == isa_name)?;
    let text_base = r.u32()?;
    let text = r.bytes()?.to_vec();
    let data_base = r.u32()?;
    let data = r.bytes()?.to_vec();
    let bss_size = r.u32()?;
    let entry = r.u32()?;
    let nsyms = usize::try_from(r.u64()?).ok()?;
    let mut symbols = std::collections::HashMap::with_capacity(nsyms.min(1 << 16));
    for _ in 0..nsyms {
        let name = r.str()?.to_string();
        let addr = r.u32()?;
        symbols.insert(name, addr);
    }
    r.finish()?;
    Some(Image { isa, text_base, text, data_base, data, bss_size, entry, symbols })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build;

    #[test]
    fn image_roundtrips() {
        let img =
            build(Isa::Dlxe, &["_start: jal f\nnop\ntrap 0\n.data\nw: .word 7\n", "f: ret\n"])
                .unwrap();
        let bytes = encode_image(&img);
        let back = decode_image(&bytes).unwrap();
        assert_eq!(back.isa, img.isa);
        assert_eq!(back.text, img.text);
        assert_eq!(back.data, img.data);
        assert_eq!((back.text_base, back.data_base), (img.text_base, img.data_base));
        assert_eq!((back.bss_size, back.entry), (img.bss_size, img.entry));
        assert_eq!(back.symbols, img.symbols);
    }

    #[test]
    fn encoding_is_deterministic() {
        let img =
            build(Isa::D16, &["_start: mvi r2, 1\ntrap 0\na: nop\nb: nop\nc: nop\n"]).unwrap();
        assert_eq!(encode_image(&img), encode_image(&img.clone()));
    }

    #[test]
    fn damage_decodes_to_none() {
        let img = build(Isa::D16, &["_start: trap 0\n"]).unwrap();
        let bytes = encode_image(&img);
        for cut in 0..bytes.len() {
            assert!(decode_image(&bytes[..cut]).is_none(), "cut at {cut}");
        }
        let mut junk = bytes;
        junk[0] ^= 0xFF; // mangles the ISA-name length prefix
        assert!(decode_image(&junk).is_none());
    }
}
