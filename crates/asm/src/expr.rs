//! Operand expressions and line tokenization for the assembler.

use crate::object::AsmError;

/// A symbolic operand expression, as written in an immediate field.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Expr {
    /// A literal number.
    Num(i64),
    /// `sym+addend` — usable in `.word`, branch targets and `jal`.
    Sym(String, i64),
    /// `hi(sym+addend)` — upper sixteen address bits (DLXe `mvhi`).
    Hi(String, i64),
    /// `lo(sym+addend)` — lower sixteen address bits (DLXe `ori`).
    Lo(String, i64),
    /// `gprel(sym+addend)` — offset from the global pointer.
    GpRel(String, i64),
    /// `.+n` / `.-n` — a raw PC-relative displacement.
    Here(i64),
}

/// One token of an assembly line.
#[derive(Clone, PartialEq, Debug)]
pub enum Tok {
    /// Identifier or mnemonic (also register names before classification).
    Ident(String),
    /// Integer literal.
    Num(i64),
    /// Float literal (for `.float`/`.double`).
    Float(f64),
    /// String literal (for `.ascii`/`.asciiz`).
    Str(Vec<u8>),
    /// Punctuation: one of `, ( ) : = + - .`.
    Punct(char),
    /// A directive name including the leading dot (`.word`).
    Directive(String),
}

/// Splits one source line into tokens. Comments start with `;` or `#`.
///
/// # Errors
///
/// Returns a line-scoped [`AsmError`] for malformed numbers, unterminated
/// strings, or stray characters.
pub fn tokenize(line: &str, lineno: usize) -> Result<Vec<Tok>, AsmError> {
    let err = |msg: String| AsmError::Line { line: lineno, msg };
    let mut toks = Vec::new();
    let bytes = line.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ';' | '#' => break,
            ' ' | '\t' | '\r' => i += 1,
            ',' | '(' | ')' | ':' | '=' | '+' => {
                toks.push(Tok::Punct(c));
                i += 1;
            }
            '-' => {
                toks.push(Tok::Punct('-'));
                i += 1;
            }
            '"' => {
                let mut s = Vec::new();
                i += 1;
                loop {
                    if i >= bytes.len() {
                        return Err(err("unterminated string literal".into()));
                    }
                    match bytes[i] {
                        b'"' => {
                            i += 1;
                            break;
                        }
                        b'\\' => {
                            i += 1;
                            if i >= bytes.len() {
                                return Err(err("bad escape".into()));
                            }
                            s.push(match bytes[i] {
                                b'n' => b'\n',
                                b't' => b'\t',
                                b'r' => b'\r',
                                b'0' => 0,
                                b'\\' => b'\\',
                                b'"' => b'"',
                                other => {
                                    return Err(err(format!("bad escape \\{}", other as char)))
                                }
                            });
                            i += 1;
                        }
                        b => {
                            s.push(b);
                            i += 1;
                        }
                    }
                }
                toks.push(Tok::Str(s));
            }
            '\'' => {
                // Character literal.
                i += 1;
                if i >= bytes.len() {
                    return Err(err("unterminated character literal".into()));
                }
                let v = if bytes[i] == b'\\' {
                    i += 1;
                    let v = match bytes.get(i) {
                        Some(b'n') => b'\n',
                        Some(b't') => b'\t',
                        Some(b'0') => 0,
                        Some(b'\\') => b'\\',
                        Some(b'\'') => b'\'',
                        _ => return Err(err("bad character escape".into())),
                    };
                    i += 1;
                    v
                } else {
                    let v = bytes[i];
                    i += 1;
                    v
                };
                if bytes.get(i) != Some(&b'\'') {
                    return Err(err("unterminated character literal".into()));
                }
                i += 1;
                toks.push(Tok::Num(v as i64));
            }
            '.' => {
                // Directive name, or the location dot.
                let start = i;
                i += 1;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                if i == start + 1 {
                    toks.push(Tok::Punct('.'));
                } else {
                    // Mnemonic suffixes like `add.sf` are glued to a
                    // preceding identifier.
                    let word = &line[start..i];
                    if let Some(Tok::Ident(prev)) = toks.last_mut() {
                        prev.push_str(word);
                        continue;
                    }
                    toks.push(Tok::Directive(word.to_string()));
                }
            }
            '0'..='9' => {
                let start = i;
                if c == '0' && i + 1 < bytes.len() && (bytes[i + 1] | 32) == b'x' {
                    i += 2;
                    while i < bytes.len() && bytes[i].is_ascii_hexdigit() {
                        i += 1;
                    }
                    let v = u64::from_str_radix(&line[start + 2..i], 16)
                        .map_err(|e| err(format!("bad hex literal: {e}")))?;
                    toks.push(Tok::Num(v as i64));
                } else {
                    while i < bytes.len()
                        && (bytes[i].is_ascii_digit()
                            || bytes[i] == b'.'
                            || (bytes[i] | 32) == b'e'
                            || ((bytes[i] == b'-' || bytes[i] == b'+')
                                && (bytes[i - 1] | 32) == b'e'))
                    {
                        i += 1;
                    }
                    let s = &line[start..i];
                    if s.contains('.') || s.contains('e') || s.contains('E') {
                        let v: f64 =
                            s.parse().map_err(|e| err(format!("bad float literal: {e}")))?;
                        toks.push(Tok::Float(v));
                    } else {
                        let v: i64 =
                            s.parse().map_err(|e| err(format!("bad integer literal: {e}")))?;
                        toks.push(Tok::Num(v));
                    }
                }
            }
            'a'..='z' | 'A'..='Z' | '_' | '$' => {
                let start = i;
                while i < bytes.len()
                    && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_' || bytes[i] == b'$')
                {
                    i += 1;
                }
                toks.push(Tok::Ident(line[start..i].to_string()));
            }
            other => return Err(err(format!("unexpected character `{other}`"))),
        }
    }
    Ok(toks)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_tokens() {
        let t = tokenize("add r1, r2, r3 ; comment", 1).unwrap();
        assert_eq!(
            t,
            vec![
                Tok::Ident("add".into()),
                Tok::Ident("r1".into()),
                Tok::Punct(','),
                Tok::Ident("r2".into()),
                Tok::Punct(','),
                Tok::Ident("r3".into()),
            ]
        );
    }

    #[test]
    fn numbers_and_strings() {
        let t = tokenize(r#".byte 0x1F, -3, 'A', "hi\n""#, 1).unwrap();
        assert_eq!(
            t,
            vec![
                Tok::Directive(".byte".into()),
                Tok::Num(31),
                Tok::Punct(','),
                Tok::Punct('-'),
                Tok::Num(3),
                Tok::Punct(','),
                Tok::Num(65),
                Tok::Punct(','),
                Tok::Str(b"hi\n".to_vec()),
            ]
        );
    }

    #[test]
    fn dotted_mnemonics_glue() {
        let t = tokenize("add.sf f1, f2", 1).unwrap();
        assert_eq!(t[0], Tok::Ident("add.sf".into()));
    }

    #[test]
    fn floats() {
        let t = tokenize(".double 3.25e2", 1).unwrap();
        assert_eq!(t[1], Tok::Float(325.0));
    }

    #[test]
    fn location_dot() {
        let t = tokenize("br .+8", 1).unwrap();
        assert_eq!(t, vec![Tok::Ident("br".into()), Tok::Punct('.'), Tok::Punct('+'), Tok::Num(8)]);
    }

    #[test]
    fn rejects_garbage() {
        assert!(tokenize("mov r1, @", 7).is_err());
        assert!(tokenize("\"open", 7).is_err());
    }
}
