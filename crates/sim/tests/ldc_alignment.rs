//! The D16 `ldc` anchor is `align4(pc + 2)`: the assembler computes pool
//! displacements with the same formula the pipeline uses for the effective
//! address. These tests pin that agreement at both instruction alignments —
//! a silent mismatch would corrupt every literal pool.

use d16_asm::build;
use d16_isa::Isa;
use d16_sim::{Machine, NullSink};

fn run(src: &str) -> Machine {
    let image = build(Isa::D16, &[src]).expect("build");
    let mut m = Machine::load(&image);
    m.run(10_000, &mut NullSink).expect("run");
    m
}

#[test]
fn ldc_at_word_aligned_pc() {
    // `ldc` at text offset 0: pc+2 = 2, anchored up to 4.
    let m = run("
_start: ldc r2, =1234
        nop
        trap 0
");
    assert_eq!(m.halted(), Some(1234));
}

#[test]
fn ldc_at_halfword_aligned_pc() {
    // A leading nop puts the ldc at offset 2: pc+2 = 4, already aligned.
    let m = run("
_start: nop
        ldc r2, =5678
        nop
        trap 0
");
    assert_eq!(m.halted(), Some(5678));
}

#[test]
fn consecutive_ldcs_at_both_alignments() {
    // Back-to-back ldcs sit at alternating alignments and must each find
    // their own slot.
    let m = run("
_start: ldc r2, =111
        ldc r3, =222
        ldc r4, =333
        nop
        add r2, r3
        add r2, r4
        trap 0
");
    assert_eq!(m.halted(), Some(666));
}

#[test]
fn shared_literal_resolves_from_both_alignments() {
    // The same literal referenced from two differently-aligned sites
    // shares one pool slot; both displacements must land on it.
    let m = run("
_start: ldc r2, =4242
        nop
        ldc r3, =4242
        nop
        sub r2, r3
        trap 0
");
    assert_eq!(m.halted(), Some(0));
}

#[test]
fn pool_across_explicit_boundary() {
    // An explicit `.pool` between functions; the second function's ldc
    // must reach its own (later) pool, not the first.
    let m = run("
_start: ldc r9, =part2
        mvi r2, 1
        jl r9
        nop
        trap 0
        .pool
part2:  ldc r3, =41
        nop
        add r2, r3
        ret
        nop
        .pool
");
    assert_eq!(m.halted(), Some(42));
}
