//! Single-pass pipeline sweep: score every (depth, predictor) timing
//! configuration of the sweep grid — and every fetch width — against one
//! execution of a workload.
//!
//! The collector attaches to a [`crate::Machine`]
//! ([`crate::Machine::attach_pipeline_sweep`]) and is fed every retired
//! instruction from the decode cache the interpreter already maintains, so
//! the whole grid costs one interpreter pass with no re-decode. Each cell
//! replays the *timing* of the machine — and only the timing — through the
//! very same issue rule ([`crate::machine::issue_needs`]) and write-back
//! classification ([`crate::machine::retire_fx`]) the live pipeline uses,
//! just against its own scoreboard and its own depth-derived load delay
//! and misfetch penalty. The cell matching the default spec therefore
//! reproduces [`crate::ExecStats::base_cycles`] exactly (a suite-wide test
//! pins this), and every other cell is that same machine at a different
//! design point.
//!
//! The collector only sees *retired* instructions: a faulting step never
//! reaches it. Sweeps therefore run on cleanly halting workloads — which
//! is every workload in the suite.

use d16_isa::{Insn, Isa};

use crate::machine::{
    issue_needs, retire_fx, FpuLatency, PipelineSpec, Predictor, RetireFx, BP_ENTRIES,
    FETCH_WIDTHS, GPR_SLOTS, PIPELINE_DEPTHS,
};

/// Cells in the depth × predictor sweep grid.
pub const SWEEP_CELLS: usize = PIPELINE_DEPTHS.len() * Predictor::ALL.len();

/// One swept configuration's timing state: the scoreboard of the modeled
/// machine, minus everything architectural.
#[derive(Clone)]
struct CfgState {
    depth: u8,
    predictor: Predictor,
    /// Depth-derived constants, computed once at construction.
    load_delay: u64,
    penalty: u64,
    /// Next issue time (equals retired cycles so far).
    t: u64,
    gpr_ready: [u64; GPR_SLOTS],
    fpr_ready: [u64; 32],
    fpsr_ready: u64,
    fpu_free: u64,
    interlock_cycles: u64,
    mispredicts: u64,
    penalty_cycles: u64,
}

impl CfgState {
    fn new(depth: u8, predictor: Predictor) -> CfgState {
        let spec = PipelineSpec { depth, predictor, ..PipelineSpec::default() };
        CfgState {
            depth,
            predictor,
            load_delay: spec.load_delay(),
            penalty: spec.misfetch_penalty(),
            t: 0,
            gpr_ready: [0; GPR_SLOTS],
            fpr_ready: [0; 32],
            fpsr_ready: 0,
            fpu_free: 0,
            interlock_cycles: 0,
            mispredicts: 0,
            penalty_cycles: 0,
        }
    }
}

/// Fetch-traffic tracker at one fetch-unit width: the machine's
/// last-unit-fetched rule, verbatim, at a different granularity.
#[derive(Copy, Clone)]
struct FetchTracker {
    mask: u32,
    last: Option<u32>,
    units: u64,
}

impl FetchTracker {
    fn new(width_halfwords: u8) -> FetchTracker {
        let spec = PipelineSpec { fetch_width_halfwords: width_halfwords, ..Default::default() };
        FetchTracker { mask: spec.fetch_mask(), last: None, units: 0 }
    }

    fn fetch(&mut self, pc: u32, ilen: u32) {
        let unit = pc & self.mask;
        if self.last != Some(unit) {
            self.units += 1;
        }
        let tail = (pc + ilen - 1) & self.mask;
        if tail != unit {
            self.units += 1;
        }
        self.last = Some(tail);
    }
}

/// One cell of a finished sweep: the modeled machine's cycle account at
/// one (depth, predictor) design point.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct SweepCell {
    /// Pipeline depth in stages.
    pub depth: u8,
    /// Front-end predictor.
    pub predictor: Predictor,
    /// Base execution cycles (instructions + interlocks + misfetch
    /// bubbles) — the sweep analogue of [`crate::ExecStats::base_cycles`].
    pub cycles: u64,
    /// Interlock stall cycles (load-use plus FPU) at this depth.
    pub interlock_cycles: u64,
    /// Control transfers whose direction the predictor guessed wrong.
    /// Depth-independent: every depth of one predictor column agrees.
    pub mispredicts: u64,
    /// Misfetch bubble cycles (`mispredicts × penalty`; 0 at depth ≤ 5).
    pub penalty_cycles: u64,
}

/// A finished sweep: the full depth × predictor grid plus fetch traffic
/// at every fetch width, from one pass over one workload.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SweepResult {
    /// Retired instructions scored (the path length of the pass).
    pub insns: u64,
    /// Grid cells, depth-major ([`PIPELINE_DEPTHS`] outer,
    /// [`Predictor::ALL`] inner) — [`SWEEP_CELLS`] of them.
    pub cells: Vec<SweepCell>,
    /// Fetch units pulled at each width of [`FETCH_WIDTHS`], in halfword
    /// units of that width (`fetch_units[1]` matches
    /// [`crate::ExecStats::ifetch_words`] at the default one-word fetch).
    pub fetch_units: [u64; FETCH_WIDTHS.len()],
}

impl SweepResult {
    /// The cell at `(depth, predictor)`, if on-grid.
    pub fn cell(&self, depth: u8, predictor: Predictor) -> Option<&SweepCell> {
        self.cells.iter().find(|c| c.depth == depth && c.predictor == predictor)
    }
}

/// The attachable collector. See the module docs for the model; drive it
/// via [`crate::Machine::attach_pipeline_sweep`] and harvest with
/// [`crate::Machine::take_pipeline_sweep`] + [`PipelineSweep::finish`].
#[derive(Clone)]
pub struct PipelineSweep {
    insns: u64,
    cfgs: Vec<CfgState>,
    /// The shared two-bit counter table: the prediction *verdict* depends
    /// only on the predictor, not the depth, so one table serves every
    /// TwoBit column (it sees the same branch stream the machine does).
    bp: Box<[u8; BP_ENTRIES]>,
    fetch: [FetchTracker; FETCH_WIDTHS.len()],
}

impl Default for PipelineSweep {
    fn default() -> Self {
        PipelineSweep::new()
    }
}

impl PipelineSweep {
    /// A fresh collector covering the whole grid.
    pub fn new() -> PipelineSweep {
        let mut cfgs = Vec::with_capacity(SWEEP_CELLS);
        for &depth in &PIPELINE_DEPTHS {
            for &predictor in &Predictor::ALL {
                cfgs.push(CfgState::new(depth, predictor));
            }
        }
        let mut widths = FETCH_WIDTHS.iter();
        let fetch = std::array::from_fn(|_| {
            FetchTracker::new(*widths.next().expect("one tracker per fetch width"))
        });
        PipelineSweep { insns: 0, cfgs, bp: Box::new([0; BP_ENTRIES]), fetch }
    }

    /// Scores one retired instruction against every configuration.
    /// `taken` is `Some(direction)` for control transfers, `None`
    /// otherwise; `ilen` is the instruction's byte length.
    pub(crate) fn retire(
        &mut self,
        insn: &Insn,
        isa: Isa,
        lat: &FpuLatency,
        pc: u32,
        ilen: u32,
        taken: Option<bool>,
    ) {
        self.insns += 1;
        for f in &mut self.fetch {
            f.fetch(pc, ilen);
        }
        let fx = retire_fx(insn, isa, lat);
        // Direction verdicts are per-predictor, not per-cell; resolve them
        // (and advance the shared two-bit table) once per branch.
        let verdicts = taken.map(|taken| {
            let i = ((pc >> 1) as usize) & (BP_ENTRIES - 1);
            let c = self.bp[i];
            self.bp[i] = if taken { (c + 1).min(3) } else { c.saturating_sub(1) };
            [taken, !taken, (c >= 2) != taken]
        });
        for cfg in &mut self.cfgs {
            let (load_need, fpu_need, _) = issue_needs(
                insn,
                isa,
                &cfg.gpr_ready,
                &cfg.fpr_ready,
                cfg.fpsr_ready,
                cfg.fpu_free,
            );
            let stall = load_need.max(fpu_need).saturating_sub(cfg.t);
            cfg.interlock_cycles += stall;
            cfg.t += stall + 1;
            match fx {
                RetireFx::None => {}
                RetireFx::Gpr(r) => cfg.gpr_ready[r as usize] = cfg.t,
                RetireFx::GprLoad(r) => cfg.gpr_ready[r as usize] = cfg.t + cfg.load_delay,
                RetireFx::Fpu { fd, double, lat } => {
                    let done = cfg.t + lat - 1;
                    cfg.fpr_ready[fd as usize] = done;
                    if double {
                        cfg.fpr_ready[(fd ^ 1) as usize] = done;
                    }
                    cfg.fpu_free = done;
                }
                RetireFx::Mtf(fd) => cfg.fpr_ready[fd as usize] = cfg.t + 1,
                RetireFx::Fcmp { lat } => {
                    let done = cfg.t + lat - 1;
                    cfg.fpsr_ready = done;
                    cfg.fpu_free = done;
                }
            }
            if let Some(v) = verdicts {
                let wrong = match cfg.predictor {
                    Predictor::None => v[0],
                    Predictor::StaticTaken => v[1],
                    Predictor::TwoBit => v[2],
                };
                if wrong {
                    cfg.mispredicts += 1;
                    cfg.t += cfg.penalty;
                    cfg.penalty_cycles += cfg.penalty;
                }
            }
        }
    }

    /// Extracts the grid.
    pub fn finish(self) -> SweepResult {
        SweepResult {
            insns: self.insns,
            cells: self
                .cfgs
                .iter()
                .map(|c| SweepCell {
                    depth: c.depth,
                    predictor: c.predictor,
                    cycles: c.t,
                    interlock_cycles: c.interlock_cycles,
                    mispredicts: c.mispredicts,
                    penalty_cycles: c.penalty_cycles,
                })
                .collect(),
            fetch_units: std::array::from_fn(|i| self.fetch[i].units),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Machine, NullSink};
    use d16_asm::build;

    fn sweep_of(isa: Isa, src: &str) -> (Machine, SweepResult) {
        let image = build(isa, &[src]).expect("assemble/link");
        let mut m = Machine::load(&image);
        m.attach_pipeline_sweep(PipelineSweep::new());
        m.run(1_000_000, &mut NullSink).expect("run");
        let sweep = m.take_pipeline_sweep().expect("attached").finish();
        (m, sweep)
    }

    const LOOP: &str = "
_start: mvi r2, 0
        mvi r4, 0
        mvi r3, 10
loop:   subi r3, r3, 1
        cmpne r3, r4
        bnz r0, loop
        addi r2, r2, 1
        trap 0
";

    #[test]
    fn default_cell_matches_live_machine() {
        for isa in Isa::ALL {
            let (m, sweep) = sweep_of(isa, LOOP);
            assert_eq!(sweep.insns, m.stats().insns, "{isa}");
            let d = PipelineSpec::default();
            let cell = sweep.cell(d.depth, d.predictor).expect("on-grid");
            assert_eq!(cell.cycles, m.stats().base_cycles(), "{isa}");
            assert_eq!(cell.interlock_cycles, m.stats().interlocks, "{isa}");
            assert_eq!(cell.penalty_cycles, 0, "{isa}");
            assert_eq!(sweep.fetch_units[1], m.stats().ifetch_words, "{isa}");
        }
    }

    #[test]
    fn deeper_pipelines_cost_more_on_branchy_code() {
        let (_, sweep) = sweep_of(Isa::D16, LOOP);
        let c5 = sweep.cell(5, Predictor::None).expect("cell").cycles;
        let c8 = sweep.cell(8, Predictor::None).expect("cell").cycles;
        assert!(c8 > c5, "depth 8 pays misfetch bubbles the loop branch causes");
        // The loop's branch is taken 9 of 10 times: static-taken beats
        // no-prediction at any penalized depth.
        let n8 = sweep.cell(8, Predictor::None).expect("cell");
        let t8 = sweep.cell(8, Predictor::StaticTaken).expect("cell");
        assert!(t8.mispredicts < n8.mispredicts);
        assert!(t8.cycles < n8.cycles);
        // Mispredict counts are depth-independent per predictor column.
        for p in Predictor::ALL {
            let m5 = sweep.cell(5, p).expect("cell").mispredicts;
            let m8 = sweep.cell(8, p).expect("cell").mispredicts;
            assert_eq!(m5, m8, "{p:?}");
        }
    }

    #[test]
    fn load_use_distance_stretches_with_depth() {
        // One load-use hazard: 1 stall at depth 5, 2 at depth 6, 4 at 8.
        let src = "_start: la r9, v\nld r2, 0(r9)\naddi r2, r2, 1\ntrap 0\n.data\nv: .word 5\n";
        let (m, sweep) = sweep_of(Isa::Dlxe, src);
        let base = m.stats().interlocks;
        assert_eq!(sweep.cell(5, Predictor::None).expect("cell").interlock_cycles, base);
        assert_eq!(sweep.cell(4, Predictor::None).expect("cell").interlock_cycles, base - 1);
        assert_eq!(sweep.cell(6, Predictor::None).expect("cell").interlock_cycles, base + 1);
        assert_eq!(sweep.cell(8, Predictor::None).expect("cell").interlock_cycles, base + 3);
    }

    #[test]
    fn fetch_units_order_by_width() {
        let (m, sweep) = sweep_of(Isa::D16, LOOP);
        let [w1, w2, w4] = sweep.fetch_units;
        assert!(w1 >= w2 && w2 >= w4, "narrower units mean more of them");
        assert_eq!(w2, m.stats().ifetch_words);
        assert!(w1 >= m.stats().insns, "every insn needs at least one halfword unit");
    }

    #[test]
    fn grid_shape_and_lookup() {
        let (_, sweep) = sweep_of(Isa::D16, "_start: mvi r2, 0\ntrap 0\n");
        assert_eq!(sweep.cells.len(), SWEEP_CELLS);
        assert!(sweep.cell(9, Predictor::None).is_none());
        for &d in &PIPELINE_DEPTHS {
            for p in Predictor::ALL {
                assert!(sweep.cell(d, p).is_some(), "({d}, {p:?})");
            }
        }
    }
}
