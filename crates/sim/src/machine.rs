//! The pipelined machine model (five-stage by default).
//!
//! Functionally this is an instruction-level interpreter; architecturally
//! it models the paper's pipeline (Figure 3): single issue, one branch
//! delay slot, a load delay derived from the pipeline depth (one slot at
//! the default depth of five), and a non-pipelined FPU whose latency
//! produces "math unit" interlocks. Interlock *cycles* are accounted with a
//! small scoreboard (register-ready times) rather than by simulating stage
//! registers — the counts are exactly those of an in-order pipeline of the
//! configured [`PipelineSpec`] with full forwarding. The default spec
//! reproduces the paper's fixed five-stage machine bit for bit; deeper
//! specs add load-delay slots and misfetch bubbles whose cost the
//! configured branch [`Predictor`] mitigates (DESIGN.md §14).

use crate::access::AccessSink;
use crate::stats::{ExecStats, SimCounter, StopReason, SIM_SCHEMA};
use d16_asm::Image;
use d16_isa::{abi, AluOp, CvtOp, Gpr, Insn, Isa, MemWidth, Prec, TrapCode};
use d16_telemetry::Counters;
use std::fmt;

/// FPU operation latencies in cycles, configurable per experiment.
///
/// Defaults approximate an R2000-class FPU of the paper's era.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct FpuLatency {
    /// Add, subtract, negate, compare.
    pub add: u64,
    /// Multiply.
    pub mul: u64,
    /// Divide (single precision).
    pub div_s: u64,
    /// Divide (double precision).
    pub div_d: u64,
    /// Mode conversions.
    pub cvt: u64,
}

impl Default for FpuLatency {
    fn default() -> Self {
        FpuLatency { add: 2, mul: 4, div_s: 12, div_d: 19, cvt: 2 }
    }
}

/// Branch predictor of the modeled front end. The predictor guesses
/// whether each control transfer redirects; a wrong guess costs
/// [`PipelineSpec::misfetch_penalty`] bubbles (zero at the default depth,
/// where redirect resolves within the delay slot). Targets are assumed
/// perfectly known on a correct taken-guess (an ideal BTB), so the model
/// isolates the *direction* cost the paper's fixed pipeline hides.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Predictor {
    /// No prediction: fetch falls through, so every taken transfer
    /// misfetches. The paper's machine (penalty-free at depth 5).
    None,
    /// Predict every control transfer taken: untaken branches misfetch.
    StaticTaken,
    /// Per-branch two-bit saturating counters ([`BP_ENTRIES`] entries,
    /// indexed by the branch PC), initialized strongly-not-taken.
    TwoBit,
}

impl Predictor {
    /// Stable lowercase name (CLI and serve knob value).
    pub fn name(self) -> &'static str {
        match self {
            Predictor::None => "none",
            Predictor::StaticTaken => "taken",
            Predictor::TwoBit => "twobit",
        }
    }

    /// Parses [`Predictor::name`]; `None` for anything else.
    pub fn parse(s: &str) -> Option<Predictor> {
        match s {
            "none" => Some(Predictor::None),
            "taken" => Some(Predictor::StaticTaken),
            "twobit" => Some(Predictor::TwoBit),
            _ => None,
        }
    }

    /// Every predictor, in sweep-grid order.
    pub const ALL: [Predictor; 3] = [Predictor::None, Predictor::StaticTaken, Predictor::TwoBit];
}

/// Two-bit-counter table size (entries); a power of two so the branch PC
/// indexes it with a mask.
pub const BP_ENTRIES: usize = 512;

/// The timing shape of the modeled pipeline. The default — depth 5, no
/// predictor, two-halfword (one word) fetch — is exactly the paper's
/// machine, and every derived penalty collapses to the historical
/// constants there. Deeper pipelines stretch the load-use distance and
/// charge misfetch bubbles for wrong front-end guesses; the fetch width
/// sets the granularity of instruction-fetch traffic accounting.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct PipelineSpec {
    /// Pipeline depth in stages, `3..=8`. Depths 3 and 4 time identically
    /// (both have a zero-cycle load-use distance and no misfetch cost).
    pub depth: u8,
    /// Front-end branch predictor.
    pub predictor: Predictor,
    /// Fetch-unit width in halfwords (`1`, `2` or `4`); the granularity
    /// [`ExecStats::ifetch_words`] counts in.
    pub fetch_width_halfwords: u8,
}

impl Default for PipelineSpec {
    fn default() -> Self {
        PipelineSpec { depth: 5, predictor: Predictor::None, fetch_width_halfwords: 2 }
    }
}

/// Valid pipeline depths (the sweep grid's depth axis).
pub const PIPELINE_DEPTHS: [u8; 6] = [3, 4, 5, 6, 7, 8];

/// Valid fetch widths in halfwords (the sweep grid's fetch axis).
pub const FETCH_WIDTHS: [u8; 3] = [1, 2, 4];

impl PipelineSpec {
    /// Load-use delay in cycles: how many issue slots after a load its
    /// result stays unforwardable (`depth - 4`, floored at zero). One at
    /// the default depth — the paper's single load delay slot.
    pub fn load_delay(&self) -> u64 {
        u64::from(self.depth.saturating_sub(4))
    }

    /// Bubbles charged when the front end guessed a control transfer's
    /// direction wrong (`depth - 5`, floored at zero). Zero at the
    /// default depth: the delay slot absorbs the redirect, which is why
    /// the paper's machine needs no predictor.
    pub fn misfetch_penalty(&self) -> u64 {
        u64::from(self.depth.saturating_sub(5))
    }

    /// Address mask selecting the fetch unit an instruction byte lives in.
    pub fn fetch_mask(&self) -> u32 {
        !(2 * u32::from(self.fetch_width_halfwords) - 1)
    }

    /// Checks the spec against the supported grid.
    ///
    /// # Errors
    ///
    /// A message naming the bad knob and the valid values, suitable for
    /// CLI/API diagnostics.
    pub fn validate(&self) -> Result<(), String> {
        if !PIPELINE_DEPTHS.contains(&self.depth) {
            return Err(format!(
                "pipeline depth {} is off-grid; valid depths: 3 4 5 6 7 8",
                self.depth
            ));
        }
        if !FETCH_WIDTHS.contains(&self.fetch_width_halfwords) {
            return Err(format!(
                "fetch width {} halfwords is off-grid; valid widths: 1 2 4",
                self.fetch_width_halfwords
            ));
        }
        Ok(())
    }
}

/// Simulator errors: things a correct program (and compiler) never does.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum SimError {
    /// PC left the text segment.
    PcOutOfText {
        /// Faulting PC.
        pc: u32,
    },
    /// The word at PC does not decode.
    IllegalInsn {
        /// Faulting PC.
        pc: u32,
    },
    /// Misaligned data access.
    Unaligned {
        /// Effective address.
        addr: u32,
        /// Access width.
        bytes: u8,
        /// Faulting PC.
        pc: u32,
    },
    /// Data access outside simulated memory.
    OutOfBounds {
        /// Effective address.
        addr: u32,
        /// Faulting PC.
        pc: u32,
    },
    /// Store into the text segment.
    WriteToText {
        /// Effective address.
        addr: u32,
        /// Faulting PC.
        pc: u32,
    },
    /// A control-transfer instruction in a delay slot.
    ControlInDelaySlot {
        /// Faulting PC.
        pc: u32,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::PcOutOfText { pc } => write!(f, "pc {pc:#010x} outside text"),
            SimError::IllegalInsn { pc } => write!(f, "illegal instruction at {pc:#010x}"),
            SimError::Unaligned { addr, bytes, pc } => {
                write!(f, "misaligned {bytes}-byte access to {addr:#010x} at pc {pc:#010x}")
            }
            SimError::OutOfBounds { addr, pc } => {
                write!(f, "out-of-bounds access to {addr:#010x} at pc {pc:#010x}")
            }
            SimError::WriteToText { addr, pc } => {
                write!(f, "store into text at {addr:#010x} from pc {pc:#010x}")
            }
            SimError::ControlInDelaySlot { pc } => {
                write!(f, "control transfer in delay slot at {pc:#010x}")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// The integer register file is widened beyond the 32 architectural
/// slots, for two block-engine reasons. Slots the architecture cannot
/// name let lowering pre-resolve DLXe's hardwired `r0` instead of
/// branching on the ISA per access: writes to slot
/// [`crate::block::SCRATCH_REG`] are discarded and slot
/// [`crate::block::ZERO_REG`] reads as a permanent zero. And rounding
/// the file up to a power of two lets the engine's dispatch loop index
/// it with a `& 63` mask, which the optimizer can prove in-bounds —
/// the register file is the hottest array in the simulator and a
/// per-access bounds check there is measurable. The interpreter only
/// ever touches slots below 32; lowered micro-ops only 0..=33.
pub(crate) const GPR_SLOTS: usize = 64;

/// The A-shape of the previously retired instruction, for D16x macro-op
/// fusion accounting: a dynamic pair is fused when the *next* retired
/// instruction is the matching B-shape and sits at the A-shape's end
/// address (so taken branches and delay-slot returns never pair). The
/// payload is the written register slot the B-shape must read.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub(crate) enum FuseA {
    /// `cmp`/`cmpi` wrote this slot; fuses with `bz`/`bnz` testing it.
    Cmp(u8),
    /// `mvhi` wrote this slot; fuses with `ori`/`addi` of the form
    /// `rd <- rd op imm` on the same slot.
    Lui(u8),
}

/// The A-shape an instruction offers to its successor, if any (D16x
/// macro-op fusion; see [`FuseA`]).
pub(crate) fn fuse_a_shape(insn: &Insn) -> Option<FuseA> {
    match *insn {
        Insn::Cmp { rd, .. } | Insn::CmpI { rd, .. } => Some(FuseA::Cmp(rd.index() as u8)),
        Insn::Lui { rd, .. } => Some(FuseA::Lui(rd.index() as u8)),
        _ => None,
    }
}

/// Whether `insn` is the B-shape completing the pair `a` describes.
pub(crate) fn fuse_b_matches(a: FuseA, insn: &Insn) -> bool {
    match (a, *insn) {
        (FuseA::Cmp(r), Insn::Bc { rs, .. }) => rs.index() as u8 == r,
        (FuseA::Lui(r), Insn::AluI { op: AluOp::Or | AluOp::Add, rd, rs1, .. }) => {
            rd == rs1 && rd.index() as u8 == r
        }
        _ => false,
    }
}

/// The simulated processor plus its memory.
#[derive(Clone)]
pub struct Machine {
    pub(crate) isa: Isa,
    pub(crate) mem: Vec<u8>,
    pub(crate) text_base: u32,
    pub(crate) text_end: u32,
    pub(crate) data_base: u32,
    /// Pre-decoded text, one slot per *fetch unit* (halfword on D16/D16x,
    /// word on DLXe), each carrying the instruction and its byte length.
    /// On D16x a wide instruction occupies the slot of its first halfword;
    /// the following slot holds whatever its second halfword decodes to on
    /// its own, which is exactly what a jump into the middle of a wide
    /// instruction executes (the ISA keeps no boundary state).
    pub(crate) decoded: Vec<Option<(Insn, u8)>>,
    pub(crate) gpr: [u32; GPR_SLOTS],
    fpr: [u32; 32],
    fpsr: bool,
    pub(crate) pc: u32,
    pub(crate) pending_target: Option<u32>,
    pub(crate) halted: Option<i32>,
    console: Vec<u8>,
    pub(crate) stats: ExecStats,
    pub(crate) tele: Counters,
    lat: FpuLatency,
    pub(crate) pspec: PipelineSpec,
    /// Two-bit predictor counters, live only when
    /// `pspec.predictor == Predictor::TwoBit`. Boxed: the table is dead
    /// weight at the default spec and `Machine` is cloned in tests.
    pub(crate) bp: Box<[u8; BP_ENTRIES]>,
    // Scoreboard for interlock accounting.
    pub(crate) t: u64,
    pub(crate) gpr_ready: [u64; GPR_SLOTS],
    fpr_ready: [u64; 32],
    fpsr_ready: u64,
    fpu_free: u64,
    pub(crate) last_fetch_word: Option<u32>,
    /// Pipeline-sweep collector, scoring every sweep configuration from
    /// this machine's single interpreter pass when attached
    /// ([`Machine::attach_pipeline_sweep`]). `None` costs nothing.
    sweep: Option<Box<crate::psweep::PipelineSweep>>,
    /// D16x macro-op fusion: the A-shape the last retired instruction
    /// offered, with the PC a fusable successor must retire at. Always
    /// `None` on D16 and DLXe.
    pub(crate) fuse_prev: Option<(u32, FuseA)>,
    /// The basic-block micro-op cache, built lazily on the first
    /// [`Machine::run_blocks`] call and kept across runs (text is
    /// immutable once loaded: stores into it fault).
    pub(crate) engine: Option<Box<crate::engine::BlockEngine>>,
}

impl fmt::Debug for Machine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Machine")
            .field("isa", &self.isa)
            .field("pc", &format_args!("{:#010x}", self.pc))
            .field("halted", &self.halted)
            .field("insns", &self.stats.insns)
            .finish_non_exhaustive()
    }
}

impl Machine {
    /// Loads a linked image into a fresh machine.
    ///
    /// Registers start at zero; the program's startup code is expected to
    /// establish the stack and global pointers (the compiler's `_start`
    /// does). Memory spans `0..__mem_top` (16 MiB).
    pub fn load(image: &Image) -> Self {
        let mut mem = vec![0u8; d16_asm::MEM_TOP as usize];
        let tb = image.text_base as usize;
        mem[tb..tb + image.text.len()].copy_from_slice(&image.text);
        let db = image.data_base as usize;
        mem[db..db + image.data.len()].copy_from_slice(&image.data);

        let decoded: Vec<Option<(Insn, u8)>> = match image.isa {
            Isa::D16 => image
                .text
                .chunks_exact(2)
                .map(|c| {
                    d16_isa::d16::decode(u16::from_le_bytes([c[0], c[1]])).ok().map(|i| (i, 2))
                })
                .collect(),
            Isa::Dlxe => image
                .text
                .chunks_exact(4)
                .map(|c| {
                    d16_isa::dlxe::decode(u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
                        .ok()
                        .map(|i| (i, 4))
                })
                .collect(),
            Isa::D16x => {
                // Every halfword offset is a potential entry point, so each
                // slot decodes independently with its successor halfword as
                // the escape continuation (an escape in the final halfword
                // is Truncated, hence None).
                let hws: Vec<u16> =
                    image.text.chunks_exact(2).map(|c| u16::from_le_bytes([c[0], c[1]])).collect();
                (0..hws.len())
                    .map(|i| {
                        d16_isa::d16x::decode(hws[i], hws.get(i + 1).copied())
                            .ok()
                            .map(|(insn, len)| (insn, len as u8))
                    })
                    .collect()
            }
        };

        Machine {
            isa: image.isa,
            mem,
            text_base: image.text_base,
            text_end: image.text_base + image.text.len() as u32,
            data_base: image.data_base,
            decoded,
            gpr: [0; GPR_SLOTS],
            fpr: [0; 32],
            fpsr: false,
            pc: image.entry,
            pending_target: None,
            halted: None,
            console: Vec::new(),
            stats: ExecStats::default(),
            tele: Counters::new(&SIM_SCHEMA),
            lat: FpuLatency::default(),
            pspec: PipelineSpec::default(),
            bp: Box::new([0; BP_ENTRIES]),
            t: 0,
            gpr_ready: [0; GPR_SLOTS],
            fpr_ready: [0; 32],
            fpsr_ready: 0,
            fpu_free: 0,
            last_fetch_word: None,
            sweep: None,
            fuse_prev: None,
            engine: None,
        }
    }

    /// Overrides the FPU latency model.
    pub fn set_fpu_latency(&mut self, lat: FpuLatency) {
        self.lat = lat;
    }

    /// Overrides the pipeline timing model and resets the predictor
    /// state. Call before running; the block engine detects the change
    /// and relowers its cache ([`crate::engine::BlockEngine::matches`]).
    pub fn set_pipeline(&mut self, spec: PipelineSpec) {
        self.pspec = spec;
        *self.bp = [0; BP_ENTRIES];
    }

    /// The active pipeline timing model.
    pub fn pipeline(&self) -> PipelineSpec {
        self.pspec
    }

    /// Attaches a pipeline-sweep collector: every instruction retired by
    /// the *interpreter* ([`Machine::run`]) from now on is also scored
    /// against every configuration of the sweep grid. Detach with
    /// [`Machine::take_pipeline_sweep`].
    pub fn attach_pipeline_sweep(&mut self, sweep: crate::psweep::PipelineSweep) {
        self.sweep = Some(Box::new(sweep));
    }

    /// Detaches and returns the sweep collector, if one is attached.
    pub fn take_pipeline_sweep(&mut self) -> Option<crate::psweep::PipelineSweep> {
        self.sweep.take().map(|b| *b)
    }

    /// The ISA of the loaded program.
    pub fn isa(&self) -> Isa {
        self.isa
    }

    /// Current program counter.
    pub fn pc(&self) -> u32 {
        self.pc
    }

    /// Reads a general register (honoring DLXe's hardwired `r0 == 0`).
    pub fn gpr(&self, r: Gpr) -> u32 {
        if self.isa == Isa::Dlxe && r == abi::R0 {
            0
        } else {
            self.gpr[r.index()]
        }
    }

    /// Writes a general register (writes to DLXe `r0` are discarded).
    pub fn set_gpr(&mut self, r: Gpr, v: u32) {
        if !(self.isa == Isa::Dlxe && r == abi::R0) {
            self.gpr[r.index()] = v;
        }
    }

    /// Reads an FP register's raw bits.
    pub fn fpr_bits(&self, r: d16_isa::Fpr) -> u32 {
        self.fpr[r.index()]
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &ExecStats {
        &self.stats
    }

    /// Per-stage and per-interlock-class telemetry counters
    /// ([`crate::stats::SIM_SCHEMA`]). Empty when the `telemetry`
    /// feature is compiled out; when present the counters reconcile
    /// exactly with [`Machine::stats`] (see
    /// [`ExecStats::reconciles_with`]).
    pub fn telemetry(&self) -> &Counters {
        &self.tele
    }

    /// Console output so far (bytes written via `trap 1`/`trap 2`).
    pub fn console(&self) -> &[u8] {
        &self.console
    }

    /// Console output as (lossy) UTF-8.
    pub fn console_string(&self) -> String {
        String::from_utf8_lossy(&self.console).into_owned()
    }

    /// Whether the program has executed `trap 0`.
    pub fn halted(&self) -> Option<i32> {
        self.halted
    }

    /// Runs until halt or until `fuel` instructions have executed, one
    /// [`Machine::step`] at a time — the interpreter, which defines the
    /// normative semantics (the block engine is checked against it).
    ///
    /// # Errors
    ///
    /// Returns the first [`SimError`] the program raises.
    pub fn run(&mut self, fuel: u64, sink: &mut impl AccessSink) -> Result<StopReason, SimError> {
        let end = self.stats.insns + fuel;
        loop {
            if let Some(v) = self.halted {
                return Ok(StopReason::Halted(v));
            }
            if self.stats.insns >= end {
                return Ok(StopReason::OutOfFuel);
            }
            self.step(sink)?;
        }
    }

    /// Runs under the selected execution engine. [`crate::Engine::Interp`]
    /// is [`Machine::run`]; [`crate::Engine::Blocks`] is
    /// [`Machine::run_blocks`]. Both are observationally identical.
    ///
    /// # Errors
    ///
    /// Returns the first [`SimError`] the program raises.
    pub fn run_with(
        &mut self,
        engine: crate::Engine,
        fuel: u64,
        sink: &mut impl AccessSink,
    ) -> Result<StopReason, SimError> {
        match engine {
            crate::Engine::Interp => self.run(fuel, sink),
            crate::Engine::Blocks => self.run_blocks(fuel, sink),
        }
    }

    /// Runs under the basic-block micro-op engine (see [`crate::engine`]):
    /// straight-line runs of instructions are decoded and lowered once,
    /// then dispatched from a block cache with no per-instruction decode.
    /// Rare instructions, faults, and fuel edges fall back to
    /// [`Machine::step`], so the observable behavior — access stream,
    /// statistics, telemetry, stop reason, faults — is identical to
    /// [`Machine::run`].
    ///
    /// # Errors
    ///
    /// Returns the first [`SimError`] the program raises.
    pub fn run_blocks(
        &mut self,
        fuel: u64,
        sink: &mut impl AccessSink,
    ) -> Result<StopReason, SimError> {
        // Take the engine out of `self` so it and the machine can be
        // borrowed disjointly; the cache persists across calls.
        let mut eng = match self.engine.take() {
            Some(e) if e.matches(self) => e,
            _ => Box::new(crate::engine::BlockEngine::new(self)),
        };
        let r = eng.run(self, fuel, sink);
        self.engine = Some(eng);
        r
    }

    /// The block engine's counter block ([`crate::ENGINE_SCHEMA`]), if
    /// [`Machine::run_blocks`] has run. These count engine mechanics
    /// (compiles, cache hits, fallbacks), not architectural events, and
    /// deliberately stay out of the experiment registry so measurement
    /// output is engine-invariant.
    pub fn engine_telemetry(&self) -> Option<&Counters> {
        self.engine.as_deref().map(crate::engine::BlockEngine::telemetry)
    }

    /// Executes a single instruction (a delay-slot instruction counts as
    /// its own step).
    ///
    /// # Errors
    ///
    /// Returns a [`SimError`] for illegal instructions, bad memory
    /// accesses, or a control transfer inside a delay slot.
    pub fn step(&mut self, sink: &mut impl AccessSink) -> Result<(), SimError> {
        let pc = self.pc;
        let unit = self.isa.insn_bytes();
        if pc < self.text_base || pc >= self.text_end || !(pc - self.text_base).is_multiple_of(unit)
        {
            return Err(SimError::PcOutOfText { pc });
        }
        let (insn, len) = self.decoded[((pc - self.text_base) / unit) as usize]
            .ok_or(SimError::IllegalInsn { pc })?;
        let ilen = u32::from(len);

        // Fetch accounting, at the spec's fetch-unit granularity (one
        // word by default). A D16x escape straddling a unit boundary
        // pulls both units through the one-unit fetch buffer.
        sink.fetch(pc, len);
        let fmask = self.pspec.fetch_mask();
        let word = pc & fmask;
        if self.last_fetch_word != Some(word) {
            self.stats.ifetch_words += 1;
            self.tele.bump(SimCounter::IfWords);
        }
        let tail_word = (pc + ilen - 1) & fmask;
        if tail_word != word {
            self.stats.ifetch_words += 1;
            self.tele.bump(SimCounter::IfWords);
        }
        self.last_fetch_word = Some(tail_word);
        self.stats.insns += 1;
        self.tele.bump(SimCounter::IfInsns);
        self.tele.bump(SimCounter::IdInsns);
        // Stage-occupancy class: the stage that does this instruction's
        // real work (the classes partition the instruction stream).
        self.tele.bump(match insn {
            Insn::Alu { .. }
            | Insn::AluI { .. }
            | Insn::Un { .. }
            | Insn::Mvi { .. }
            | Insn::Lui { .. }
            | Insn::Cmp { .. }
            | Insn::CmpI { .. } => SimCounter::ExAlu,
            Insn::Ld { .. } | Insn::Ldc { .. } => SimCounter::MemLoads,
            Insn::St { .. } => SimCounter::MemStores,
            Insn::Br { .. }
            | Insn::Bc { .. }
            | Insn::J { .. }
            | Insn::Jc { .. }
            | Insn::Jl { .. }
            | Insn::Jdisp { .. } => SimCounter::ExControl,
            Insn::FAlu { .. }
            | Insn::FNeg { .. }
            | Insn::FCmp { .. }
            | Insn::Cvt { .. }
            | Insn::Mtf { .. }
            | Insn::Mff { .. }
            | Insn::Rdsr { .. } => SimCounter::ExFpu,
            Insn::Trap { .. } => SimCounter::ExSys,
            Insn::Nop => SimCounter::ExNop,
        });

        self.account_interlocks(&insn);

        let mut target: Option<Option<u32>> = None; // Some(Some(t)) taken, Some(None) fall-through branch
        match insn {
            Insn::Alu { op, rd, rs1, rs2 } => {
                let v = op.eval(self.gpr(rs1), self.gpr(rs2));
                self.write_int(rd, v);
            }
            Insn::AluI { op, rd, rs1, imm } => {
                let v = op.eval(self.gpr(rs1), imm as u32);
                self.write_int(rd, v);
            }
            Insn::Un { op, rd, rs } => {
                let v = op.eval(self.gpr(rs));
                self.write_int(rd, v);
            }
            Insn::Mvi { rd, imm } => self.write_int(rd, imm as u32),
            Insn::Lui { rd, imm } => self.write_int(rd, imm << 16),
            Insn::Cmp { cond, rd, rs1, rs2 } => {
                let v = if cond.eval(self.gpr(rs1), self.gpr(rs2)) { u32::MAX } else { 0 };
                self.write_int(rd, v);
            }
            Insn::CmpI { cond, rd, rs1, imm } => {
                let v = if cond.eval(self.gpr(rs1), imm as u32) { u32::MAX } else { 0 };
                self.write_int(rd, v);
            }
            Insn::Ld { w, rd, base, disp } => {
                let addr = self.gpr(base).wrapping_add(disp as u32);
                let v = self.load_data(addr, w, pc, sink)?;
                self.stats.loads += 1;
                self.set_gpr(rd, v);
                self.tele.bump(SimCounter::WbGpr);
                // `depth - 4` load delay slots (one at the default depth).
                self.gpr_ready[rd.index()] = self.t + self.pspec.load_delay();
            }
            Insn::Ldc { rd, disp } => {
                let addr = ((pc + 2 + 3) & !3).wrapping_add(disp as u32);
                let v = self.load_data(addr, MemWidth::W, pc, sink)?;
                self.stats.loads += 1;
                self.set_gpr(rd, v);
                self.tele.bump(SimCounter::WbGpr);
                self.gpr_ready[rd.index()] = self.t + self.pspec.load_delay();
            }
            Insn::St { w, rs, base, disp } => {
                let addr = self.gpr(base).wrapping_add(disp as u32);
                self.store(addr, w, self.gpr(rs), pc, sink)?;
                self.stats.stores += 1;
            }
            Insn::Br { disp } => target = Some(Some(add_disp(pc + ilen, disp))),
            Insn::Bc { neg, rs, disp } => {
                let nz = self.gpr(rs) != 0;
                target = if nz == neg { Some(Some(add_disp(pc + ilen, disp))) } else { Some(None) };
            }
            Insn::J { target: t } => target = Some(Some(self.gpr(t))),
            Insn::Jc { neg, rs, target: t } => {
                let nz = self.gpr(rs) != 0;
                target = if nz == neg { Some(Some(self.gpr(t))) } else { Some(None) };
            }
            Insn::Jl { target: t } => {
                let dest = self.gpr(t);
                let link = self.isa.link_reg();
                self.set_gpr(link, pc + ilen + self.next_len(pc + ilen));
                self.tele.bump(SimCounter::WbGpr);
                self.gpr_ready[link.index()] = self.t;
                target = Some(Some(dest));
            }
            Insn::Jdisp { link, disp } => {
                if link {
                    let lr = self.isa.link_reg();
                    self.set_gpr(lr, pc + ilen + self.next_len(pc + ilen));
                    self.tele.bump(SimCounter::WbGpr);
                    self.gpr_ready[lr.index()] = self.t;
                }
                target = Some(Some(add_disp(pc + ilen, disp)));
            }
            Insn::FAlu { op, prec, fd, fs1, fs2 } => {
                let lat = match op {
                    d16_isa::FpOp::Add | d16_isa::FpOp::Sub => self.lat.add,
                    d16_isa::FpOp::Mul => self.lat.mul,
                    d16_isa::FpOp::Div => match prec {
                        Prec::S => self.lat.div_s,
                        Prec::D => self.lat.div_d,
                    },
                };
                match prec {
                    Prec::S => {
                        let a = f32::from_bits(self.fpr[fs1.index()]);
                        let b = f32::from_bits(self.fpr[fs2.index()]);
                        let v = match op {
                            d16_isa::FpOp::Add => a + b,
                            d16_isa::FpOp::Sub => a - b,
                            d16_isa::FpOp::Mul => a * b,
                            d16_isa::FpOp::Div => a / b,
                        };
                        self.fpr[fd.index()] = v.to_bits();
                    }
                    Prec::D => {
                        let a = self.read_f64(fs1);
                        let b = self.read_f64(fs2);
                        let v = match op {
                            d16_isa::FpOp::Add => a + b,
                            d16_isa::FpOp::Sub => a - b,
                            d16_isa::FpOp::Mul => a * b,
                            d16_isa::FpOp::Div => a / b,
                        };
                        self.write_f64(fd, v);
                    }
                }
                self.finish_fpu(fd, prec, lat);
            }
            Insn::FNeg { prec, fd, fs } => {
                match prec {
                    Prec::S => {
                        let a = f32::from_bits(self.fpr[fs.index()]);
                        self.fpr[fd.index()] = (-a).to_bits();
                    }
                    Prec::D => {
                        let a = self.read_f64(fs);
                        self.write_f64(fd, -a);
                    }
                }
                self.finish_fpu(fd, prec, self.lat.add);
            }
            Insn::FCmp { cond, prec, fs1, fs2 } => {
                let (a, b) = match prec {
                    Prec::S => (
                        f32::from_bits(self.fpr[fs1.index()]) as f64,
                        f32::from_bits(self.fpr[fs2.index()]) as f64,
                    ),
                    Prec::D => (self.read_f64(fs1), self.read_f64(fs2)),
                };
                self.fpsr = cond.eval(a, b);
                self.fpsr_ready = self.t + self.lat.add - 1;
                self.fpu_free = self.t + self.lat.add - 1;
            }
            Insn::Cvt { op, fd, fs } => {
                match op {
                    CvtOp::Si2Sf => {
                        let v = self.fpr[fs.index()] as i32;
                        self.fpr[fd.index()] = (v as f32).to_bits();
                    }
                    CvtOp::Si2Df => {
                        let v = self.fpr[fs.index()] as i32;
                        self.write_f64(fd, v as f64);
                    }
                    CvtOp::Sf2Df => {
                        let v = f32::from_bits(self.fpr[fs.index()]);
                        self.write_f64(fd, v as f64);
                    }
                    CvtOp::Df2Sf => {
                        let v = self.read_f64(fs);
                        self.fpr[fd.index()] = (v as f32).to_bits();
                    }
                    CvtOp::Sf2Si => {
                        let v = f32::from_bits(self.fpr[fs.index()]);
                        self.fpr[fd.index()] = cvt_to_i32(v as f64) as u32;
                    }
                    CvtOp::Df2Si => {
                        let v = self.read_f64(fs);
                        self.fpr[fd.index()] = cvt_to_i32(v) as u32;
                    }
                }
                let prec = if op.dst_is_double() { Prec::D } else { Prec::S };
                self.finish_fpu(fd, prec, self.lat.cvt);
            }
            Insn::Mtf { fd, rs } => {
                self.fpr[fd.index()] = self.gpr(rs);
                self.tele.bump(SimCounter::WbFpr);
                self.fpr_ready[fd.index()] = self.t + 1;
            }
            Insn::Mff { rd, fs } => {
                let v = self.fpr[fs.index()];
                self.write_int(rd, v);
            }
            Insn::Rdsr { rd } => {
                let v = if self.fpsr { 1 } else { 0 };
                self.write_int(rd, v);
            }
            Insn::Trap { code } => match code {
                TrapCode::Halt => self.halted = Some(self.gpr(abi::RET) as i32),
                TrapCode::PutChar => self.console.push(self.gpr(abi::RET) as u8),
                TrapCode::PutInt => {
                    let v = self.gpr(abi::RET) as i32;
                    self.console.extend_from_slice(v.to_string().as_bytes());
                }
                TrapCode::ReadInsnCount => {
                    let n = self.stats.insns as u32;
                    self.write_int(abi::RET, n);
                }
            },
            Insn::Nop => self.stats.nops += 1,
        }

        // Advance control flow, honoring the single delay slot.
        if let Some(t) = target {
            if self.pending_target.is_some() {
                return Err(SimError::ControlInDelaySlot { pc });
            }
            self.stats.branches += 1;
            if t.is_some() {
                self.stats.taken_branches += 1;
                self.tele.bump(SimCounter::CtlTaken);
            } else {
                self.tele.bump(SimCounter::CtlUntaken);
            }
            // Front-end direction guess: a wrong one costs the spec's
            // misfetch bubbles. Zero-penalty depths keep the counters at
            // zero so the default spec's stats are bit-identical to the
            // historical fixed-depth model.
            let mispredicted = self.predict_and_update(pc, t.is_some());
            let penalty = self.pspec.misfetch_penalty();
            if mispredicted && penalty > 0 {
                self.stats.mispredicts += 1;
                self.stats.misfetch_cycles += penalty;
                self.t += penalty;
            }
            self.pending_target = Some(t.unwrap_or_else(|| pc + ilen + self.next_len(pc + ilen)));
            self.pc = pc + ilen;
        } else if let Some(t) = self.pending_target.take() {
            self.pc = t;
        } else {
            self.pc = pc + ilen;
        }

        // D16x macro-op fusion accounting, at retirement: pair the
        // completed instruction with its predecessor's A-shape when it is
        // the matching B-shape *and* directly follows it in the byte
        // stream, then record the A-shape it offers in turn. Fusion never
        // changes architectural state — it only counts the pairs a fusing
        // decoder would issue as one macro-op.
        if self.isa == Isa::D16x {
            if let Some((epc, a)) = self.fuse_prev.take() {
                if epc == pc && fuse_b_matches(a, &insn) {
                    match a {
                        FuseA::Cmp(_) => {
                            self.stats.fused_cmp_br += 1;
                            self.tele.bump(SimCounter::FuseCmpBr);
                        }
                        FuseA::Lui(_) => {
                            self.stats.fused_lui_addi += 1;
                            self.tele.bump(SimCounter::FuseLuiAddi);
                        }
                    }
                }
            }
            self.fuse_prev = fuse_a_shape(&insn).map(|a| (pc + ilen, a));
        }

        // Score the retired instruction against every sweep configuration
        // (a no-op unless a collector is attached). Taken out and put back
        // so the collector can borrow the machine-independent facts.
        if let Some(mut sw) = self.sweep.take() {
            sw.retire(&insn, self.isa, &self.lat, pc, ilen, target.map(|t| t.is_some()));
            self.sweep = Some(sw);
        }
        Ok(())
    }

    /// Updates the predictor with a resolved control transfer and reports
    /// whether the front end guessed its direction wrong. Shared verbatim
    /// by the block engine so both engines see identical predictor state.
    pub(crate) fn predict_and_update(&mut self, pc: u32, taken: bool) -> bool {
        match self.pspec.predictor {
            Predictor::None => taken,
            Predictor::StaticTaken => !taken,
            Predictor::TwoBit => {
                let i = ((pc >> 1) as usize) & (BP_ENTRIES - 1);
                let c = self.bp[i];
                self.bp[i] = if taken { (c + 1).min(3) } else { c.saturating_sub(1) };
                (c >= 2) != taken
            }
        }
    }

    /// Byte length of the instruction at `pc`, from the length-decode rule
    /// alone (top four bits of the first halfword) — defined even when the
    /// instruction there does not decode, and 2 when `pc` is outside the
    /// text segment or misaligned. Used for return addresses and branch
    /// fall-throughs, which must skip the *delay slot's* actual length on
    /// D16x; fixed-width ISAs return their instruction size.
    pub(crate) fn next_len(&self, pc: u32) -> u32 {
        if self.isa != Isa::D16x {
            return self.isa.insn_bytes();
        }
        if pc < self.text_base || pc + 2 > self.text_end || !(pc - self.text_base).is_multiple_of(2)
        {
            return 2;
        }
        let a = pc as usize;
        d16_isa::d16x::insn_len(u16::from_le_bytes([self.mem[a], self.mem[a + 1]]))
    }

    /// ALU-class result: ready immediately via forwarding.
    fn write_int(&mut self, rd: Gpr, v: u32) {
        self.set_gpr(rd, v);
        self.tele.bump(SimCounter::WbGpr);
        self.gpr_ready[rd.index()] = self.t;
    }

    fn finish_fpu(&mut self, fd: d16_isa::Fpr, prec: Prec, lat: u64) {
        self.tele.bump(SimCounter::WbFpr);
        // `self.t` is already the next issue time, so an immediately
        // dependent instruction stalls `lat - 1` cycles (full forwarding).
        let done = self.t + lat - 1;
        self.fpr_ready[fd.index()] = done;
        if prec == Prec::D {
            self.fpr_ready[fd.index() ^ 1] = done;
        }
        self.fpu_free = done;
    }

    fn read_f64(&self, r: d16_isa::Fpr) -> f64 {
        let lo = self.fpr[r.index()] as u64;
        let hi = self.fpr[r.index() | 1] as u64;
        f64::from_bits(hi << 32 | lo)
    }

    fn write_f64(&mut self, r: d16_isa::Fpr, v: f64) {
        let bits = v.to_bits();
        self.fpr[r.index()] = bits as u32;
        self.fpr[r.index() | 1] = (bits >> 32) as u32;
    }

    /// Computes and accounts interlock stalls for `insn`, then issues it.
    /// The stall is attributed to a telemetry class: delayed load, FPU
    /// result register, FPU unit busy, or FP status register (on equal
    /// readiness the earlier-checked class wins — result, busy, status —
    /// which is deterministic).
    fn account_interlocks(&mut self, insn: &Insn) {
        let (load_need, fpu_need, fpu_src) = issue_needs(
            insn,
            self.isa,
            &self.gpr_ready,
            &self.fpr_ready,
            self.fpsr_ready,
            self.fpu_free,
        );
        let need = load_need.max(fpu_need);
        let stall = need.saturating_sub(self.t);
        if stall > 0 {
            self.stats.interlocks += stall;
            if fpu_need >= load_need {
                self.stats.fpu_interlocks += stall;
                let (events, cycles) = match fpu_src {
                    FpuStall::Result => (SimCounter::FpuResultEvents, SimCounter::FpuResultCycles),
                    FpuStall::Busy => (SimCounter::FpuBusyEvents, SimCounter::FpuBusyCycles),
                    FpuStall::Status => (SimCounter::FpuStatusEvents, SimCounter::FpuStatusCycles),
                };
                self.tele.bump(events);
                self.tele.add(cycles, stall);
            } else {
                self.stats.load_interlocks += stall;
                self.tele.bump(SimCounter::LoadEvents);
                self.tele.add(SimCounter::LoadCycles, stall);
            }
            self.t += stall;
        }
        self.t += 1;
    }

    fn check_data(&self, addr: u32, bytes: u8, pc: u32) -> Result<usize, SimError> {
        if addr as u64 + bytes as u64 > self.mem.len() as u64 {
            return Err(SimError::OutOfBounds { addr, pc });
        }
        if !addr.is_multiple_of(bytes as u32) {
            return Err(SimError::Unaligned { addr, bytes, pc });
        }
        Ok(addr as usize)
    }

    fn load_data(
        &mut self,
        addr: u32,
        w: MemWidth,
        pc: u32,
        sink: &mut impl AccessSink,
    ) -> Result<u32, SimError> {
        let b = w.bytes() as u8;
        let a = self.check_data(addr, b, pc)?;
        sink.read(addr, b);
        Ok(match w {
            MemWidth::B => self.mem[a] as i8 as i32 as u32,
            MemWidth::Bu => self.mem[a] as u32,
            MemWidth::H => i16::from_le_bytes([self.mem[a], self.mem[a + 1]]) as i32 as u32,
            MemWidth::Hu => u16::from_le_bytes([self.mem[a], self.mem[a + 1]]) as u32,
            MemWidth::W => u32::from_le_bytes(self.mem[a..a + 4].try_into().expect("4-byte slice")),
        })
    }

    fn store(
        &mut self,
        addr: u32,
        w: MemWidth,
        v: u32,
        pc: u32,
        sink: &mut impl AccessSink,
    ) -> Result<(), SimError> {
        let b = w.bytes() as u8;
        let a = self.check_data(addr, b, pc)?;
        if addr < self.data_base {
            return Err(SimError::WriteToText { addr, pc });
        }
        sink.write(addr, b);
        match w {
            MemWidth::B | MemWidth::Bu => self.mem[a] = v as u8,
            MemWidth::H | MemWidth::Hu => {
                self.mem[a..a + 2].copy_from_slice(&(v as u16).to_le_bytes())
            }
            MemWidth::W => self.mem[a..a + 4].copy_from_slice(&v.to_le_bytes()),
        }
        Ok(())
    }

    /// Reads a word of simulated memory (for tests and workload checksums).
    pub fn peek_word(&self, addr: u32) -> Option<u32> {
        let a = addr as usize;
        if !addr.is_multiple_of(4) || a + 4 > self.mem.len() {
            return None;
        }
        Some(u32::from_le_bytes(self.mem[a..a + 4].try_into().expect("4-byte slice")))
    }
}

/// Which FPU resource an interlock stall is waiting on; used to pick the
/// telemetry counter class in [`Machine::account_interlocks`].
#[derive(Copy, Clone, PartialEq, Eq)]
pub(crate) enum FpuStall {
    /// An FPU result register is not yet written back.
    Result,
    /// The non-pipelined FPU is still executing an earlier operation.
    Busy,
    /// The FP status register is not yet valid (`rdsr`).
    Status,
}

/// The scoreboard times `insn` must wait for before issuing:
/// `(integer-register need, FPU need, FPU stall class)`. This is *the*
/// issue rule — the interpreter's interlock accounting and the
/// pipeline-sweep replayer both call it, so a swept configuration whose
/// knobs equal the live machine's scores identically by construction.
pub(crate) fn issue_needs(
    insn: &Insn,
    isa: Isa,
    gpr_ready: &[u64; GPR_SLOTS],
    fpr_ready: &[u64; 32],
    fpsr_ready: u64,
    fpu_free: u64,
) -> (u64, u64, FpuStall) {
    let mut load_need = 0u64;
    for r in insn.use_gprs().into_iter().flatten() {
        if !(isa == Isa::Dlxe && r == abi::R0) {
            load_need = load_need.max(gpr_ready[r.index()]);
        }
    }
    let mut fpu_need = 0u64;
    let mut fpu_src = FpuStall::Result;
    let mut raise = |v: u64, src: FpuStall| {
        if v > fpu_need {
            fpu_need = v;
            fpu_src = src;
        }
    };
    let pair_ready = |ready: &[u64; 32], r: d16_isa::Fpr, d: bool| -> u64 {
        let v = ready[r.index()];
        if d {
            v.max(ready[r.index() | 1])
        } else {
            v
        }
    };
    match *insn {
        Insn::FAlu { prec, fs1, fs2, .. } => {
            let d = prec == Prec::D;
            raise(pair_ready(fpr_ready, fs1, d), FpuStall::Result);
            raise(pair_ready(fpr_ready, fs2, d), FpuStall::Result);
            raise(fpu_free, FpuStall::Busy);
        }
        Insn::FNeg { prec, fs, .. } => {
            raise(pair_ready(fpr_ready, fs, prec == Prec::D), FpuStall::Result);
            raise(fpu_free, FpuStall::Busy);
        }
        Insn::FCmp { prec, fs1, fs2, .. } => {
            let d = prec == Prec::D;
            raise(pair_ready(fpr_ready, fs1, d), FpuStall::Result);
            raise(pair_ready(fpr_ready, fs2, d), FpuStall::Result);
            raise(fpu_free, FpuStall::Busy);
        }
        Insn::Cvt { op, fs, .. } => {
            raise(pair_ready(fpr_ready, fs, op.src_is_double()), FpuStall::Result);
            raise(fpu_free, FpuStall::Busy);
        }
        Insn::Mtf { fd, .. } => {
            // The FPU must be free to accept the transfer.
            raise(pair_ready(fpr_ready, fd, false), FpuStall::Result);
        }
        Insn::Mff { fs, .. } => {
            raise(pair_ready(fpr_ready, fs, false), FpuStall::Result);
        }
        Insn::Rdsr { .. } => raise(fpsr_ready, FpuStall::Status),
        _ => {}
    }
    (load_need, fpu_need, fpu_src)
}

/// The timing-relevant write-back effect of one retired instruction —
/// everything the scoreboard must learn beyond [`issue_needs`]. Extracted
/// once per retirement so the pipeline-sweep replayer applies the same
/// effect to every swept configuration that the interpreter's `execute`
/// applies to the live one (a suite-wide equality test pins the two).
#[derive(Copy, Clone, Debug)]
pub(crate) enum RetireFx {
    /// No register result (stores, branches, most traps, `nop`).
    None,
    /// An integer result forwarded at issue time (`ready = t`).
    Gpr(u8),
    /// A load result: `ready = t + load_delay(depth)`.
    GprLoad(u8),
    /// An FPU result register write (`finish_fpu`): `done = t + lat - 1`
    /// for the register (and its pair when double), FPU busy until then.
    Fpu {
        /// Destination FPR slot.
        fd: u8,
        /// Whether the D-pair partner is written too.
        double: bool,
        /// Operation latency in cycles.
        lat: u64,
    },
    /// Integer-to-FPU transfer: `fpr_ready[fd] = t + 1`.
    Mtf(u8),
    /// FP compare: status register and FPU busy until `t + lat - 1`.
    Fcmp {
        /// Compare latency (the add latency).
        lat: u64,
    },
}

/// Classifies the write-back effect of `insn` (see [`RetireFx`]).
pub(crate) fn retire_fx(insn: &Insn, isa: Isa, lat: &FpuLatency) -> RetireFx {
    match *insn {
        Insn::Alu { rd, .. }
        | Insn::AluI { rd, .. }
        | Insn::Un { rd, .. }
        | Insn::Mvi { rd, .. }
        | Insn::Lui { rd, .. }
        | Insn::Cmp { rd, .. }
        | Insn::CmpI { rd, .. }
        | Insn::Mff { rd, .. }
        | Insn::Rdsr { rd } => RetireFx::Gpr(rd.index() as u8),
        Insn::Ld { rd, .. } | Insn::Ldc { rd, .. } => RetireFx::GprLoad(rd.index() as u8),
        Insn::FAlu { op, prec, fd, .. } => {
            let lat = match op {
                d16_isa::FpOp::Add | d16_isa::FpOp::Sub => lat.add,
                d16_isa::FpOp::Mul => lat.mul,
                d16_isa::FpOp::Div => match prec {
                    Prec::S => lat.div_s,
                    Prec::D => lat.div_d,
                },
            };
            RetireFx::Fpu { fd: fd.index() as u8, double: prec == Prec::D, lat }
        }
        Insn::FNeg { prec, fd, .. } => {
            RetireFx::Fpu { fd: fd.index() as u8, double: prec == Prec::D, lat: lat.add }
        }
        Insn::Cvt { op, fd, .. } => {
            RetireFx::Fpu { fd: fd.index() as u8, double: op.dst_is_double(), lat: lat.cvt }
        }
        Insn::FCmp { .. } => RetireFx::Fcmp { lat: lat.add },
        Insn::Mtf { fd, .. } => RetireFx::Mtf(fd.index() as u8),
        Insn::Trap { code: TrapCode::ReadInsnCount } => RetireFx::Gpr(abi::RET.index() as u8),
        Insn::Jl { .. } => RetireFx::Gpr(isa.link_reg().index() as u8),
        Insn::Jdisp { link, .. } => {
            if link {
                RetireFx::Gpr(isa.link_reg().index() as u8)
            } else {
                RetireFx::None
            }
        }
        Insn::St { .. }
        | Insn::Br { .. }
        | Insn::Bc { .. }
        | Insn::J { .. }
        | Insn::Jc { .. }
        | Insn::Trap { .. }
        | Insn::Nop => RetireFx::None,
    }
}

fn add_disp(base: u32, disp: i32) -> u32 {
    base.wrapping_add(disp as u32)
}

/// Converts with C truncation semantics, saturating like MIPS on overflow.
fn cvt_to_i32(v: f64) -> i32 {
    if v.is_nan() {
        0
    } else if v >= i32::MAX as f64 {
        i32::MAX
    } else if v <= i32::MIN as f64 {
        i32::MIN
    } else {
        v as i32
    }
}
