//! Basic-block discovery and micro-op lowering for the block engine.
//!
//! A *block* is a straight-line run of instructions starting at some PC
//! and ending at the first control transfer (including its delay slot
//! when that is lowerable), the first non-lowerable instruction, the end
//! of the text segment, or [`MAX_BLOCK_LEN`]. Lowering happens once per
//! entry PC: operands are pre-resolved (register file slots as raw
//! indices, immediates pre-cast, PC-relative targets and `ldc` literal
//! addresses pre-computed), and everything about the block that does not
//! depend on machine state is pre-aggregated so the dispatch loop in
//! [`crate::engine`] can account for a whole block with a handful of
//! adds instead of per-instruction counter traffic.
//!
//! The lowered (hot) set covers the integer ALU, compares, moves, loads
//! and stores, and all control transfers. FPU instructions, traps, and
//! undecodable words are *not* lowered — they terminate the block and
//! execute through [`crate::Machine::step`], which stays the normative
//! semantics.

use crate::machine::{fuse_a_shape, fuse_b_matches, FuseA, Machine, PipelineSpec};
use d16_isa::{AluOp, Cond, Gpr, Insn, Isa, MemWidth, UnOp};

/// Write-discard register-file slot: DLXe `r0` as a *destination* lowers
/// to this, making the hardwired-zero write a plain array store.
pub(crate) const SCRATCH_REG: u8 = 32;
/// Permanent-zero register-file slot: DLXe `r0` as a *source* lowers to
/// this; also used for "no source" in static interlock metadata (its
/// ready time is never written, so it never stalls anything).
pub(crate) const ZERO_REG: u8 = 33;

/// Longest lowered block in micro-ops. Bounds compile latency and keeps
/// the fuel fast-path check (`remaining >= len`) conservative.
pub(crate) const MAX_BLOCK_LEN: usize = 64;

/// One lowered micro-operation. Register fields are raw register-file
/// slot indices (see [`SCRATCH_REG`]/[`ZERO_REG`]); immediates are
/// pre-cast to the `u32` the ALU consumes; control targets that are
/// statically known are pre-computed byte addresses.
#[derive(Copy, Clone, Debug)]
pub(crate) enum Uop {
    /// `rd <- rs1 op rs2`.
    Alu { op: AluOp, rd: u8, rs1: u8, rs2: u8 },
    /// `rd <- rs1 op imm`.
    AluI { op: AluOp, rd: u8, rs1: u8, imm: u32 },
    /// `rd <- op rs`.
    Un { op: UnOp, rd: u8, rs: u8 },
    /// `rd <- imm` (from `Mvi`, or `Lui` with the shift pre-applied).
    MovImm { rd: u8, imm: u32 },
    /// `rd <- (rs1 cond rs2) ? ~0 : 0`.
    Cmp { cond: Cond, rd: u8, rs1: u8, rs2: u8 },
    /// `rd <- (rs1 cond imm) ? ~0 : 0`.
    CmpI { cond: Cond, rd: u8, rs1: u8, imm: u32 },
    /// `rd <- mem[rs(base) + disp]`; the effective address is dynamic, so
    /// faults are pre-checked at dispatch (bailing to the interpreter).
    Ld { w: MemWidth, rd: u8, base: u8, disp: u32 },
    /// D16 `ldc` with its literal-pool address pre-computed *and*
    /// pre-validated at lowering time — this micro-op cannot fault.
    LdAbs { rd: u8, addr: u32 },
    /// `mem[base + disp] <- rs`; faults pre-checked like [`Uop::Ld`].
    St { w: MemWidth, rs: u8, base: u8, disp: u32 },
    /// Unconditional PC-relative branch (also linkless `Jdisp`), target
    /// pre-computed.
    Br { target: u32 },
    /// Conditional branch with both outcomes pre-computed.
    Bc { neg: bool, rs: u8, taken: u32, fall: u32 },
    /// Register-indirect jump.
    Jr { target: u8 },
    /// Conditional register-indirect jump.
    Jc { neg: bool, rs: u8, target: u8, fall: u32 },
    /// Jump-and-link through a register; the link value is static.
    Jl { target: u8, link: u8, link_val: u32 },
    /// `Jdisp` with link: static target and static link value.
    Jal { target: u32, link: u8, link_val: u32 },
    /// No operation.
    Nop,
}

/// A micro-op plus its statically known pipeline behavior: `stall` is the
/// interlock cycles the step spends waiting on an earlier load in the
/// *same block*, from a lowering-time scoreboard replay of the issue rule
/// at the active spec's load-use distance. At the default depth (distance
/// one) this reduces to the classic rule — only a load's destination read
/// by the immediately following micro-op stalls, for exactly one cycle.
///
/// With the stalls known, the cycle count at which each step completes is
/// static too: `cum` is the number of cycles from block entry through the
/// end of this step (issue cycles plus static stalls). At dispatch the
/// engine adds the one dynamic quantity — the first micro-op's scoreboard
/// stall — to the block's entry time and every step's clock is
/// `entry + dynamic + cum`, so the hot loop carries no cycle arithmetic
/// at all.
///
/// That static schedule is only *trusted* at the default spec: with a
/// load-use distance above one, a load near the end of the previous block
/// can stall micro-ops past the entry edge, so non-default-spec blocks
/// run on the engine's dynamic timing path, which recomputes every stall
/// against the live scoreboard and ignores `stall`/`cum` entirely.
///
/// `Step` is the *lowering-time* form; what the block actually stores is
/// the packed [`XStep`] each step encodes to.
#[derive(Copy, Clone, Debug)]
pub(crate) struct Step {
    pub uop: Uop,
    pub stall: u32,
    pub cum: u32,
    /// Byte length of the source instruction (2 or 4 on D16x, else the
    /// ISA's fixed width).
    pub len: u8,
}

/// Flat execution opcodes: the [`Uop`] variant *and* everything it used
/// to dispatch on at run time — ALU operation, compare condition, memory
/// width, branch-sense flag — baked into a single byte at lowering time.
/// Executing a `Uop` costs two data-dependent dispatches (the variant
/// jump table, then `AluOp::eval`/`Cond::eval`'s inner match on an op
/// loaded from memory); executing an opcode costs one. The numeric
/// layout is grouped so the cold accounting paths can classify with
/// range patterns (see [`xtally`]).
pub(crate) mod opc {
    // 0..=7: ALU register-register, base + `alu_sel`.
    pub const ALU_RR: u8 = 0;
    // 8..=15: ALU register-immediate, base + `alu_sel`.
    pub const ALU_RI: u8 = 8;
    // 16..=25: compare register-register, base + `cond_sel`.
    pub const CMP_RR: u8 = 16;
    // 26..=35: compare register-immediate, base + `cond_sel`.
    pub const CMP_RI: u8 = 26;
    // Named members of the four groups, for the engine's match patterns.
    pub const ADD_RR: u8 = ALU_RR;
    pub const SUB_RR: u8 = ALU_RR + 1;
    pub const AND_RR: u8 = ALU_RR + 2;
    pub const OR_RR: u8 = ALU_RR + 3;
    pub const XOR_RR: u8 = ALU_RR + 4;
    pub const SHL_RR: u8 = ALU_RR + 5;
    pub const SHR_RR: u8 = ALU_RR + 6;
    pub const SHRA_RR: u8 = ALU_RR + 7;
    pub const ADD_RI: u8 = ALU_RI;
    pub const SUB_RI: u8 = ALU_RI + 1;
    pub const AND_RI: u8 = ALU_RI + 2;
    pub const OR_RI: u8 = ALU_RI + 3;
    pub const XOR_RI: u8 = ALU_RI + 4;
    pub const SHL_RI: u8 = ALU_RI + 5;
    pub const SHR_RI: u8 = ALU_RI + 6;
    pub const SHRA_RI: u8 = ALU_RI + 7;
    pub const EQ_RR: u8 = CMP_RR;
    pub const NE_RR: u8 = CMP_RR + 1;
    pub const LT_RR: u8 = CMP_RR + 2;
    pub const LTU_RR: u8 = CMP_RR + 3;
    pub const LE_RR: u8 = CMP_RR + 4;
    pub const LEU_RR: u8 = CMP_RR + 5;
    pub const GT_RR: u8 = CMP_RR + 6;
    pub const GTU_RR: u8 = CMP_RR + 7;
    pub const GE_RR: u8 = CMP_RR + 8;
    pub const GEU_RR: u8 = CMP_RR + 9;
    pub const EQ_RI: u8 = CMP_RI;
    pub const NE_RI: u8 = CMP_RI + 1;
    pub const LT_RI: u8 = CMP_RI + 2;
    pub const LTU_RI: u8 = CMP_RI + 3;
    pub const LE_RI: u8 = CMP_RI + 4;
    pub const LEU_RI: u8 = CMP_RI + 5;
    pub const GT_RI: u8 = CMP_RI + 6;
    pub const GTU_RI: u8 = CMP_RI + 7;
    pub const GE_RI: u8 = CMP_RI + 8;
    pub const GEU_RI: u8 = CMP_RI + 9;
    pub const NEG: u8 = 36;
    pub const INV: u8 = 37;
    pub const MV: u8 = 38;
    pub const MOVI: u8 = 39;
    pub const LD_B: u8 = 40;
    pub const LD_BU: u8 = 41;
    pub const LD_H: u8 = 42;
    pub const LD_HU: u8 = 43;
    pub const LD_W: u8 = 44;
    pub const LD_ABS: u8 = 45;
    pub const ST_B: u8 = 46;
    pub const ST_H: u8 = 47;
    pub const ST_W: u8 = 48;
    pub const BR: u8 = 49;
    /// `Bc`, taken when the register is zero (`neg == false`).
    pub const BC_Z: u8 = 50;
    /// `Bc`, taken when the register is non-zero (`neg == true`).
    pub const BC_NZ: u8 = 51;
    pub const JR: u8 = 52;
    pub const JC_Z: u8 = 53;
    pub const JC_NZ: u8 = 54;
    pub const JL: u8 = 55;
    pub const JAL: u8 = 56;
    pub const NOP: u8 = 57;

    // ---- Fused pairs ----
    //
    // One packed step standing for two consecutive instructions (see
    // `fuse_pair`): the dominant adjacent pairs in the suite traces —
    // the compilers' 2-address `mv`+op idiom and branch/delay-slot
    // tails — each retire with a single dispatch. `unfuse` maps a fused
    // code back to its two component codes; everything cold (tallies,
    // bail prefix sums) goes through it, so the hot arms are the only
    // place the pairing is spelled out twice.
    // 58..=65: ALU register-immediate, then `Mv` (base + `alu_sel`).
    pub const ALU_RI_MV: u8 = 58;
    // 66..=73: `Mv`, then ALU register-immediate (base + `alu_sel`).
    pub const MV_ALU_RI: u8 = 66;
    // 74..=81: ALU register-register, then `Mv` (base + `alu_sel`).
    pub const ALU_RR_MV: u8 = 74;
    // 82..=89: `Mv`, then ALU register-register (base + `alu_sel`).
    pub const MV_ALU_RR: u8 = 82;
    // 90..=97: ALU register-immediate, then `Br` (base + `alu_sel`).
    pub const ALU_RI_BR: u8 = 90;
    /// `Br` with a `Nop` delay slot.
    pub const BR_NOP: u8 = 98;
    /// Zero-taken `Bc` with a `Nop` delay slot.
    pub const BC_Z_NOP: u8 = 99;
    /// Nonzero-taken `Bc` with a `Nop` delay slot.
    pub const BC_NZ_NOP: u8 = 100;
    /// `Br` with a `Mv` delay slot.
    pub const BR_MV: u8 = 101;
    /// Two consecutive `Mv`s.
    pub const MV_MV: u8 = 102;
    /// `Mv`, then a nonzero-taken `Bc`.
    pub const MV_BC_NZ: u8 = 103;
    // Named members of the five fused ALU groups, for match patterns.
    pub const ADD_RI_MV: u8 = ALU_RI_MV;
    pub const SUB_RI_MV: u8 = ALU_RI_MV + 1;
    pub const AND_RI_MV: u8 = ALU_RI_MV + 2;
    pub const OR_RI_MV: u8 = ALU_RI_MV + 3;
    pub const XOR_RI_MV: u8 = ALU_RI_MV + 4;
    pub const SHL_RI_MV: u8 = ALU_RI_MV + 5;
    pub const SHR_RI_MV: u8 = ALU_RI_MV + 6;
    pub const SHRA_RI_MV: u8 = ALU_RI_MV + 7;
    pub const ADD_MV_RI: u8 = MV_ALU_RI;
    pub const SUB_MV_RI: u8 = MV_ALU_RI + 1;
    pub const AND_MV_RI: u8 = MV_ALU_RI + 2;
    pub const OR_MV_RI: u8 = MV_ALU_RI + 3;
    pub const XOR_MV_RI: u8 = MV_ALU_RI + 4;
    pub const SHL_MV_RI: u8 = MV_ALU_RI + 5;
    pub const SHR_MV_RI: u8 = MV_ALU_RI + 6;
    pub const SHRA_MV_RI: u8 = MV_ALU_RI + 7;
    pub const ADD_RR_MV: u8 = ALU_RR_MV;
    pub const SUB_RR_MV: u8 = ALU_RR_MV + 1;
    pub const AND_RR_MV: u8 = ALU_RR_MV + 2;
    pub const OR_RR_MV: u8 = ALU_RR_MV + 3;
    pub const XOR_RR_MV: u8 = ALU_RR_MV + 4;
    pub const SHL_RR_MV: u8 = ALU_RR_MV + 5;
    pub const SHR_RR_MV: u8 = ALU_RR_MV + 6;
    pub const SHRA_RR_MV: u8 = ALU_RR_MV + 7;
    pub const ADD_MV_RR: u8 = MV_ALU_RR;
    pub const SUB_MV_RR: u8 = MV_ALU_RR + 1;
    pub const AND_MV_RR: u8 = MV_ALU_RR + 2;
    pub const OR_MV_RR: u8 = MV_ALU_RR + 3;
    pub const XOR_MV_RR: u8 = MV_ALU_RR + 4;
    pub const SHL_MV_RR: u8 = MV_ALU_RR + 5;
    pub const SHR_MV_RR: u8 = MV_ALU_RR + 6;
    pub const SHRA_MV_RR: u8 = MV_ALU_RR + 7;
    pub const ADD_RI_BR: u8 = ALU_RI_BR;
    pub const SUB_RI_BR: u8 = ALU_RI_BR + 1;
    pub const AND_RI_BR: u8 = ALU_RI_BR + 2;
    pub const OR_RI_BR: u8 = ALU_RI_BR + 3;
    pub const XOR_RI_BR: u8 = ALU_RI_BR + 4;
    pub const SHL_RI_BR: u8 = ALU_RI_BR + 5;
    pub const SHR_RI_BR: u8 = ALU_RI_BR + 6;
    pub const SHRA_RI_BR: u8 = ALU_RI_BR + 7;
    // Inclusive ends of the five fused ALU groups, for range patterns.
    pub const ALU_RI_MV_END: u8 = ALU_RI_MV + 7;
    pub const MV_ALU_RI_END: u8 = MV_ALU_RI + 7;
    pub const ALU_RR_MV_END: u8 = ALU_RR_MV + 7;
    pub const MV_ALU_RR_END: u8 = MV_ALU_RR + 7;
    pub const ALU_RI_BR_END: u8 = ALU_RI_BR + 7;
}

/// The two component opcodes of a fused code, `None` for plain codes.
pub(crate) fn unfuse(code: u8) -> Option<(u8, u8)> {
    Some(match code {
        opc::ALU_RI_MV..=opc::ALU_RI_MV_END => (opc::ALU_RI + (code - opc::ALU_RI_MV), opc::MV),
        opc::MV_ALU_RI..=opc::MV_ALU_RI_END => (opc::MV, opc::ALU_RI + (code - opc::MV_ALU_RI)),
        opc::ALU_RR_MV..=opc::ALU_RR_MV_END => (opc::ALU_RR + (code - opc::ALU_RR_MV), opc::MV),
        opc::MV_ALU_RR..=opc::MV_ALU_RR_END => (opc::MV, opc::ALU_RR + (code - opc::MV_ALU_RR)),
        opc::ALU_RI_BR..=opc::ALU_RI_BR_END => (opc::ALU_RI + (code - opc::ALU_RI_BR), opc::BR),
        opc::BR_NOP => (opc::BR, opc::NOP),
        opc::BC_Z_NOP => (opc::BC_Z, opc::NOP),
        opc::BC_NZ_NOP => (opc::BC_NZ, opc::NOP),
        opc::BR_MV => (opc::BR, opc::MV),
        opc::MV_MV => (opc::MV, opc::MV),
        opc::MV_BC_NZ => (opc::MV, opc::BC_NZ),
        _ => return None,
    })
}

/// Instructions a packed step retires: 2 for fused pairs, else 1.
pub(crate) fn step_width(code: u8) -> u32 {
    1 + u32::from(unfuse(code).is_some())
}

/// Offset of an [`AluOp`] within the `ALU_RR`/`ALU_RI` opcode groups.
fn alu_sel(op: AluOp) -> u8 {
    match op {
        AluOp::Add => 0,
        AluOp::Sub => 1,
        AluOp::And => 2,
        AluOp::Or => 3,
        AluOp::Xor => 4,
        AluOp::Shl => 5,
        AluOp::Shr => 6,
        AluOp::Shra => 7,
    }
}

/// Offset of a [`Cond`] within the `CMP_RR`/`CMP_RI` opcode groups.
fn cond_sel(cond: Cond) -> u8 {
    match cond {
        Cond::Eq => 0,
        Cond::Ne => 1,
        Cond::Lt => 2,
        Cond::Ltu => 3,
        Cond::Le => 4,
        Cond::Leu => 5,
        Cond::Gt => 6,
        Cond::Gtu => 7,
        Cond::Ge => 8,
        Cond::Geu => 9,
    }
}

/// The packed execution form of a [`Step`]: one 16-byte record the
/// dispatch loop consumes with a single flat jump on `code` and no
/// further data-dependent branching. Operand meaning per opcode group:
///
/// | group            | `a`     | `b`     | `c`   | `imm`      | `aux`      |
/// |------------------|---------|---------|-------|------------|------------|
/// | `ALU_RR`/`CMP_RR`| rd      | rs1     | rs2   | —          | —          |
/// | `ALU_RI`/`CMP_RI`| rd      | rs1     | —     | imm        | —          |
/// | `NEG`/`INV`/`MV` | rd      | rs      | —     | —          | —          |
/// | `MOVI`           | rd      | —       | —     | imm        | —          |
/// | `LD_*`           | rd      | base    | —     | disp       | —          |
/// | `LD_ABS`         | rd      | —       | —     | addr       | —          |
/// | `ST_*`           | rs      | base    | —     | disp       | —          |
/// | `BR`             | —       | —       | —     | target     | —          |
/// | `BC_Z`/`BC_NZ`   | rs      | —       | —     | taken      | fall       |
/// | `JR`             | target  | —       | —     | —          | —          |
/// | `JC_Z`/`JC_NZ`   | rs      | target  | —     | —          | fall       |
/// | `JL`             | target  | link    | —     | link_val   | —          |
/// | `JAL`            | link    | —       | —     | target     | link_val   |
#[derive(Copy, Clone, Debug)]
pub(crate) struct XStep {
    pub code: u8,
    pub a: u8,
    pub b: u8,
    pub c: u8,
    pub imm: u32,
    pub aux: u32,
    /// See [`Step::stall`]; read only on the cold bail path, and only
    /// meaningful on the static timing path (saturated on encode — a
    /// dynamic-timing block never reads it).
    pub stall: u8,
    /// See [`Step::cum`]; `2 * MAX_BLOCK_LEN` fits a byte on the static
    /// timing path (stalls there are one cycle each), which is the only
    /// path that reads it. Saturated on encode like `stall`.
    pub cum: u8,
    /// Byte length of the first (or only) component instruction: the
    /// dispatch loop's first fetch size and mid-pair PC advance.
    pub len1: u8,
    /// Byte length of the last component instruction (equals `len1` on a
    /// plain step): the second fetch size and end-of-step PC advance.
    pub tail: u8,
}

const _: () = assert!(2 * MAX_BLOCK_LEN <= u8::MAX as usize);

/// Packs one analyzed [`Step`] into its execution form.
fn encode(s: &Step) -> XStep {
    let mut x = XStep {
        code: opc::NOP,
        a: 0,
        b: 0,
        c: 0,
        imm: 0,
        aux: 0,
        stall: s.stall.min(u32::from(u8::MAX)) as u8,
        cum: s.cum.min(u32::from(u8::MAX)) as u8,
        len1: s.len,
        tail: s.len,
    };
    match s.uop {
        Uop::Alu { op, rd, rs1, rs2 } => {
            x.code = opc::ALU_RR + alu_sel(op);
            (x.a, x.b, x.c) = (rd, rs1, rs2);
        }
        Uop::AluI { op, rd, rs1, imm } => {
            x.code = opc::ALU_RI + alu_sel(op);
            (x.a, x.b, x.imm) = (rd, rs1, imm);
        }
        Uop::Un { op, rd, rs } => {
            x.code = match op {
                UnOp::Neg => opc::NEG,
                UnOp::Inv => opc::INV,
                UnOp::Mv => opc::MV,
            };
            (x.a, x.b) = (rd, rs);
        }
        Uop::MovImm { rd, imm } => {
            x.code = opc::MOVI;
            (x.a, x.imm) = (rd, imm);
        }
        Uop::Cmp { cond, rd, rs1, rs2 } => {
            x.code = opc::CMP_RR + cond_sel(cond);
            (x.a, x.b, x.c) = (rd, rs1, rs2);
        }
        Uop::CmpI { cond, rd, rs1, imm } => {
            x.code = opc::CMP_RI + cond_sel(cond);
            (x.a, x.b, x.imm) = (rd, rs1, imm);
        }
        Uop::Ld { w, rd, base, disp } => {
            x.code = match w {
                MemWidth::B => opc::LD_B,
                MemWidth::Bu => opc::LD_BU,
                MemWidth::H => opc::LD_H,
                MemWidth::Hu => opc::LD_HU,
                MemWidth::W => opc::LD_W,
            };
            (x.a, x.b, x.imm) = (rd, base, disp);
        }
        Uop::LdAbs { rd, addr } => {
            x.code = opc::LD_ABS;
            (x.a, x.imm) = (rd, addr);
        }
        Uop::St { w, rs, base, disp } => {
            // Unsigned widths store the same bits as signed ones.
            x.code = match w {
                MemWidth::B | MemWidth::Bu => opc::ST_B,
                MemWidth::H | MemWidth::Hu => opc::ST_H,
                MemWidth::W => opc::ST_W,
            };
            (x.a, x.b, x.imm) = (rs, base, disp);
        }
        Uop::Br { target } => {
            x.code = opc::BR;
            x.imm = target;
        }
        Uop::Bc { neg, rs, taken, fall } => {
            x.code = if neg { opc::BC_NZ } else { opc::BC_Z };
            (x.a, x.imm, x.aux) = (rs, taken, fall);
        }
        Uop::Jr { target } => {
            x.code = opc::JR;
            x.a = target;
        }
        Uop::Jc { neg, rs, target, fall } => {
            x.code = if neg { opc::JC_NZ } else { opc::JC_Z };
            (x.a, x.b, x.aux) = (rs, target, fall);
        }
        Uop::Jl { target, link, link_val } => {
            x.code = opc::JL;
            (x.a, x.b, x.imm) = (target, link, link_val);
        }
        Uop::Jal { target, link, link_val } => {
            x.code = opc::JAL;
            (x.a, x.imm, x.aux) = (link, target, link_val);
        }
        Uop::Nop => x.code = opc::NOP,
    }
    x
}

/// How control leaves a completed block.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub(crate) enum BlockExit {
    /// No control transfer: the next PC is the instruction after the
    /// block.
    FallThrough,
    /// The block ends with a control micro-op whose delay slot was not
    /// lowerable: the machine's `pending_target` is left set and the
    /// delay-slot instruction executes through the interpreter.
    PendingAtEnd,
    /// The block ends with a control micro-op followed by its lowered
    /// delay slot: the next PC is the pending target.
    TakePending,
}

/// Statically known accounting for a run of micro-ops: the per-class
/// instruction counts the interpreter bumps one at a time, pre-summed so
/// the engine adds them per block (or per bailed-out prefix) instead.
#[derive(Copy, Clone, Default, PartialEq, Eq, Debug)]
pub(crate) struct Tally {
    /// `stage.ex.alu` instructions.
    pub ex_alu: u64,
    /// Control transfers (0 or 1 per block; always last, or before the
    /// delay slot).
    pub ex_control: u64,
    /// Explicit nops.
    pub ex_nop: u64,
    /// Loads (`Ld` + `LdAbs`).
    pub loads: u64,
    /// Stores.
    pub stores: u64,
    /// Integer writebacks (`stage.wb.gpr`), discarded DLXe `r0` writes
    /// included.
    pub wb_gpr: u64,
    /// Control transfers that are statically taken (`Br`/`Jr`/`Jl`/`Jal`).
    pub static_taken: u64,
}

/// Classifies `steps` the way [`crate::Machine::step`] classifies
/// instructions, summed.
pub(crate) fn tally(steps: &[Step]) -> Tally {
    let mut t = Tally::default();
    for s in steps {
        match s.uop {
            Uop::Alu { .. }
            | Uop::AluI { .. }
            | Uop::Un { .. }
            | Uop::MovImm { .. }
            | Uop::Cmp { .. }
            | Uop::CmpI { .. } => {
                t.ex_alu += 1;
                t.wb_gpr += 1;
            }
            Uop::Ld { .. } | Uop::LdAbs { .. } => {
                t.loads += 1;
                t.wb_gpr += 1;
            }
            Uop::St { .. } => t.stores += 1,
            Uop::Br { .. } | Uop::Jr { .. } => {
                t.ex_control += 1;
                t.static_taken += 1;
            }
            Uop::Jl { .. } | Uop::Jal { .. } => {
                t.ex_control += 1;
                t.static_taken += 1;
                t.wb_gpr += 1;
            }
            Uop::Bc { .. } | Uop::Jc { .. } => t.ex_control += 1,
            Uop::Nop => t.ex_nop += 1,
        }
    }
    t
}

/// [`tally`] over the packed execution form, for the bail path (which
/// only has the block's [`XStep`]s). The opcode space is laid out in
/// class-contiguous ranges so this stays a handful of range tests;
/// `lower_block` debug-asserts it agrees with [`tally`] on every block.
fn classify(code: u8, t: &mut Tally) {
    match code {
        opc::ALU_RR..=opc::MOVI => {
            t.ex_alu += 1;
            t.wb_gpr += 1;
        }
        opc::LD_B..=opc::LD_ABS => {
            t.loads += 1;
            t.wb_gpr += 1;
        }
        opc::ST_B..=opc::ST_W => t.stores += 1,
        opc::BR | opc::JR => {
            t.ex_control += 1;
            t.static_taken += 1;
        }
        opc::JL | opc::JAL => {
            t.ex_control += 1;
            t.static_taken += 1;
            t.wb_gpr += 1;
        }
        opc::BC_Z | opc::BC_NZ | opc::JC_Z | opc::JC_NZ => t.ex_control += 1,
        _ => t.ex_nop += 1,
    }
}

pub(crate) fn xtally(steps: &[XStep]) -> Tally {
    let mut t = Tally::default();
    for s in steps {
        match unfuse(s.code) {
            Some((first, second)) => {
                classify(first, &mut t);
                classify(second, &mut t);
            }
            None => classify(s.code, &mut t),
        }
    }
    t
}

/// Per-block copy propagation: rewrites micro-op *sources* so a value
/// flowing through a `Mv` is read from its origin slot instead of the
/// copy. Values are identical by construction (every slot write is a
/// plain array store, hardwired-zero included via [`SCRATCH_REG`]), so
/// nothing observable moves — but the engine's hottest latency chain, a
/// `Mv` store immediately reloaded by the consumer (the compilers'
/// 2-address idiom), becomes two independent reads of the origin slot.
///
/// Runs *after* stall marking and the cycle/tally/`first_srcs` sums:
/// interlocks are architectural, so they must see the written registers,
/// not the renamed ones.
fn propagate_copies(steps: &mut [Step]) {
    // `canon[s]` holds a slot whose current value equals slot `s`'s; the
    // map is kept canonical (`canon[canon[s]] == canon[s]`), so a write
    // to `d` resets every entry pointing at `d` in one sweep.
    let mut canon: [u8; 64] = core::array::from_fn(|i| i as u8);
    let r = |canon: &[u8; 64], s: &mut u8| *s = canon[*s as usize];
    for step in steps {
        let write = |canon: &mut [u8; 64], d: u8| {
            for (x, c) in canon.iter_mut().enumerate() {
                if *c == d {
                    *c = x as u8;
                }
            }
            canon[d as usize] = d;
        };
        match &mut step.uop {
            Uop::Un { op: UnOp::Mv, rd, rs } => {
                r(&canon, rs);
                let (rd, src) = (*rd, *rs);
                write(&mut canon, rd);
                if src != rd {
                    canon[rd as usize] = src;
                }
            }
            Uop::Alu { rd, rs1, rs2, .. } | Uop::Cmp { rd, rs1, rs2, .. } => {
                r(&canon, rs1);
                r(&canon, rs2);
                write(&mut canon, *rd);
            }
            Uop::AluI { rd, rs1, .. } | Uop::CmpI { rd, rs1, .. } => {
                r(&canon, rs1);
                write(&mut canon, *rd);
            }
            Uop::Un { rd, rs, .. } => {
                r(&canon, rs);
                write(&mut canon, *rd);
            }
            Uop::MovImm { rd, .. } | Uop::LdAbs { rd, .. } => write(&mut canon, *rd),
            Uop::Ld { rd, base, .. } => {
                r(&canon, base);
                write(&mut canon, *rd);
            }
            Uop::St { rs, base, .. } => {
                r(&canon, rs);
                r(&canon, base);
            }
            Uop::Bc { rs, .. } => r(&canon, rs),
            Uop::Jc { rs, target, .. } => {
                r(&canon, rs);
                r(&canon, target);
            }
            Uop::Jr { target } => r(&canon, target),
            Uop::Jl { target, link, .. } => {
                r(&canon, target);
                write(&mut canon, *link);
            }
            Uop::Jal { link, .. } => write(&mut canon, *link),
            Uop::Br { .. } | Uop::Nop => {}
        }
    }
}

/// Fuses adjacent micro-op pairs into single packed steps, greedily and
/// left to right. Only pairs whose components cannot fault are fused, so
/// a [`Bail`](super::engine) index always lands on a plain step; the
/// second component can never carry a static interlock either (it would
/// need a load immediately before it — the first component, never a
/// load), so one `stall` flag and the second component's `cum` describe
/// the pair exactly.
fn fuse(packed: Vec<XStep>) -> Vec<XStep> {
    let mut out = Vec::with_capacity(packed.len());
    let mut i = 0;
    while i < packed.len() {
        if i + 1 < packed.len() {
            if let Some(f) = fuse_pair(&packed[i], &packed[i + 1]) {
                out.push(f);
                i += 2;
                continue;
            }
        }
        out.push(packed[i]);
        i += 1;
    }
    out
}

/// The pair table behind [`fuse`]: the traces' hottest adjacent pairs
/// (the 2-address `mv`+ALU idiom and branch/delay-slot block tails),
/// re-packed into one `XStep`. Operand layout per family is documented
/// on the arm in `exec_block`; the second component's registers ride in
/// whatever fields the first leaves free (`c`/`aux`, byte-packed for
/// register-register pairs).
fn fuse_pair(x: &XStep, y: &XStep) -> Option<XStep> {
    let f = |code: u8, a: u8, b: u8, c: u8, imm: u32, aux: u32| {
        // No fusable first component is a load, so the second component
        // can never be the stalling side of a load-use pair.
        debug_assert!(y.stall == 0, "second fusion component stalls without a load before it");
        Some(XStep {
            code,
            a,
            b,
            c,
            imm,
            aux,
            stall: x.stall,
            cum: y.cum,
            len1: x.len1,
            tail: y.tail,
        })
    };
    match (x.code, y.code) {
        (opc::ALU_RI..=opc::SHRA_RI, opc::MV) => {
            f(opc::ALU_RI_MV + (x.code - opc::ALU_RI), x.a, x.b, y.a, x.imm, u32::from(y.b))
        }
        (opc::MV, opc::ALU_RI..=opc::SHRA_RI) => {
            f(opc::MV_ALU_RI + (y.code - opc::ALU_RI), x.a, x.b, y.a, y.imm, u32::from(y.b))
        }
        (opc::ALU_RR..=opc::SHRA_RR, opc::MV) => {
            let pack = u32::from(y.a) | u32::from(y.b) << 8;
            f(opc::ALU_RR_MV + (x.code - opc::ALU_RR), x.a, x.b, x.c, 0, pack)
        }
        (opc::MV, opc::ALU_RR..=opc::SHRA_RR) => {
            let pack = u32::from(y.b) | u32::from(y.c) << 8;
            f(opc::MV_ALU_RR + (y.code - opc::ALU_RR), x.a, x.b, y.a, 0, pack)
        }
        (opc::ALU_RI..=opc::SHRA_RI, opc::BR) => {
            f(opc::ALU_RI_BR + (x.code - opc::ALU_RI), x.a, x.b, 0, x.imm, y.imm)
        }
        (opc::BR, opc::NOP) => f(opc::BR_NOP, 0, 0, 0, x.imm, 0),
        (opc::BC_Z, opc::NOP) => f(opc::BC_Z_NOP, x.a, 0, 0, x.imm, x.aux),
        (opc::BC_NZ, opc::NOP) => f(opc::BC_NZ_NOP, x.a, 0, 0, x.imm, x.aux),
        (opc::BR, opc::MV) => f(opc::BR_MV, y.a, y.b, 0, x.imm, 0),
        (opc::MV, opc::MV) => f(opc::MV_MV, x.a, x.b, y.a, 0, u32::from(y.b)),
        (opc::MV, opc::BC_NZ) => f(opc::MV_BC_NZ, x.a, x.b, y.a, y.imm, y.aux),
        _ => None,
    }
}

/// Kind tags for D16x macro-op pairs in [`Block::head_fuse`] and
/// [`Block::fuse_pairs`]: compare → dependent branch.
pub(crate) const FUSE_CMP_BR: u8 = 0;
/// `mvhi` → dependent `ori`/`addi`.
pub(crate) const FUSE_LUI_ADDI: u8 = 1;

/// The B-shape of an instruction as the (kind, register) a prior A-half
/// must present to fuse with it — the head-of-block dual of
/// [`fuse_b_matches`], classified on the raw instruction because `Lui`
/// and `Mvi` are indistinguishable once lowered (both become `MovImm`,
/// and copy propagation rewrites micro-op sources besides).
fn head_shape(insn: &Insn) -> Option<(u8, u8)> {
    match *insn {
        Insn::Bc { rs, .. } => Some((FUSE_CMP_BR, rs.index() as u8)),
        Insn::AluI { op: AluOp::Or | AluOp::Add, rd, rs1, .. } if rd == rs1 => {
            Some((FUSE_LUI_ADDI, rd.index() as u8))
        }
        _ => None,
    }
}

/// A lowered basic block plus everything about its execution that is
/// known statically, pre-aggregated for batched accounting.
#[derive(Clone, Debug)]
pub(crate) struct Block {
    /// PC of the first instruction.
    pub start_pc: u32,
    /// The packed micro-ops, in program order. Fused steps ([`unfuse`])
    /// retire two instructions, so this can be shorter than [`Block::len`].
    pub steps: Box<[XStep]>,
    /// Instructions the block retires (components of fused steps count).
    pub n_insns: u32,
    pub exit: BlockExit,
    /// Mapped source slots of the first micro-op, for the one dynamic
    /// interlock check a block needs ([`ZERO_REG`] when absent).
    pub first_srcs: [u8; 2],
    /// Per-class totals for a completed block.
    pub totals: Tally,
    /// Total cycles for a completed block before the dynamic first-step
    /// stall: `steps.last().cum` (instruction issues plus static stalls).
    /// Trusted only on the static timing path (see [`Step`]).
    pub cycles: u64,
    /// Number of static ([`Step::stall`]) interlock *events* in the
    /// block. Static-path only, like [`Block::cycles`].
    pub static_stalls: u64,
    /// Static interlock *cycles* in the block (equals
    /// [`Block::static_stalls`] at the default spec, where every static
    /// stall is one cycle). Static-path only.
    pub static_stall_cycles: u64,
    /// Fetch-unit transitions after the first instruction, at the active
    /// spec's fetch width: the block's fetch count minus the dynamic
    /// first-unit term.
    pub words_after_first: u64,
    /// Fetch unit of the first instruction (spec's fetch width).
    pub first_word: u32,
    /// Fetch unit of the last byte of the last instruction.
    pub last_word: u32,
    /// D16x: the (kind, register) a *prior* retired A-half must present
    /// for the block's first instruction to complete a fused pair (see
    /// [`head_shape`]); checked dynamically against the machine's fusion
    /// state at dispatch. Always `None` outside D16x.
    pub head_fuse: Option<(u8, u8)>,
    /// D16x: the machine's fusion state after the whole block retires —
    /// the last instruction's A-shape keyed by its successor PC.
    pub exit_fuse: Option<(u32, FuseA)>,
    /// D16x: internal fused pairs as (semantic index of the B-half,
    /// kind), for prefix counting on the bail path.
    pub fuse_pairs: Box<[(u32, u8)]>,
    /// Internal compare→branch pairs (head pair excluded).
    pub fused_cmp_br: u64,
    /// Internal `mvhi`→`ori`/`addi` pairs (head pair excluded).
    pub fused_lui_addi: u64,
}

impl Block {
    /// Number of instructions in the block.
    pub fn len(&self) -> usize {
        self.n_insns as usize
    }
}

/// The GPR the micro-op writes with *load* timing, if any — the only
/// writes whose ready times the engine must track (everything else is
/// forwarded by issue time).
fn load_dest(u: &Uop) -> Option<u8> {
    match *u {
        Uop::Ld { rd, .. } | Uop::LdAbs { rd, .. } => Some(rd),
        _ => None,
    }
}

/// The GPR slot the micro-op writes with *forwarded* (non-load) timing,
/// if any: ready at issue time, exactly like the interpreter's
/// `write_int`. The lowering-time scoreboard needs these to clear
/// pending load-ready times a later micro-op overwrites — invisible at
/// the default load-use distance of one, load-bearing above it.
fn write_dest(u: &Uop) -> Option<u8> {
    match *u {
        Uop::Alu { rd, .. }
        | Uop::AluI { rd, .. }
        | Uop::Un { rd, .. }
        | Uop::MovImm { rd, .. }
        | Uop::Cmp { rd, .. }
        | Uop::CmpI { rd, .. } => Some(rd),
        Uop::Jl { link, .. } | Uop::Jal { link, .. } => Some(link),
        _ => None,
    }
}

/// Mapped source slots of a micro-op, mirroring [`Insn::use_gprs`] over
/// the lowered set ([`ZERO_REG`] pads absent operands).
fn uop_srcs(u: &Uop) -> [u8; 2] {
    match *u {
        Uop::Alu { rs1, rs2, .. } | Uop::Cmp { rs1, rs2, .. } => [rs1, rs2],
        Uop::AluI { rs1, .. } | Uop::CmpI { rs1, .. } => [rs1, ZERO_REG],
        Uop::Un { rs, .. } => [rs, ZERO_REG],
        Uop::Ld { base, .. } => [base, ZERO_REG],
        Uop::St { rs, base, .. } => [rs, base],
        Uop::Bc { rs, .. } => [rs, ZERO_REG],
        Uop::Jr { target } | Uop::Jl { target, .. } => [target, ZERO_REG],
        Uop::Jc { rs, target, .. } => [rs, target],
        Uop::MovImm { .. } | Uop::LdAbs { .. } | Uop::Br { .. } | Uop::Jal { .. } | Uop::Nop => {
            [ZERO_REG; 2]
        }
    }
}

/// Mapped source slots of a *packed* step, for the dynamic-timing path's
/// per-step interlock check ([`ZERO_REG`] pads absent operands). Mirrors
/// [`uop_srcs`] over the [`XStep`] operand layout; fused opcodes never
/// occur in dynamic-timing blocks (fusion is disabled there), so they
/// fall through to the no-source row.
pub(crate) fn xstep_srcs(x: &XStep) -> [u8; 2] {
    match x.code {
        opc::ALU_RR..=opc::SHRA_RR | opc::CMP_RR..=opc::GEU_RR => [x.b, x.c],
        opc::ALU_RI..=opc::SHRA_RI
        | opc::CMP_RI..=opc::GEU_RI
        | opc::NEG
        | opc::INV
        | opc::MV
        | opc::LD_B..=opc::LD_W => [x.b, ZERO_REG],
        opc::ST_B..=opc::ST_W | opc::JC_Z | opc::JC_NZ => [x.a, x.b],
        opc::BC_Z | opc::BC_NZ | opc::JR | opc::JL => [x.a, ZERO_REG],
        _ => {
            debug_assert!(
                unfuse(x.code).is_none(),
                "fused opcode {} in a dynamic-timing block",
                x.code
            );
            [ZERO_REG; 2]
        }
    }
}

/// Whether the micro-op is a control transfer (sets the pending target).
fn is_control(u: &Uop) -> bool {
    matches!(
        u,
        Uop::Br { .. }
            | Uop::Bc { .. }
            | Uop::Jr { .. }
            | Uop::Jc { .. }
            | Uop::Jl { .. }
            | Uop::Jal { .. }
    )
}

/// Lowers one instruction, or `None` if it is outside the hot set (FPU,
/// traps, and — as a lowering-time fault check — an `ldc` whose static
/// literal address would fault). `len` is the instruction's byte length;
/// fall-through and link addresses skip the *delay slot's* length too,
/// via [`Machine::next_len`], exactly as the interpreter computes them.
fn lower_insn(m: &Machine, pc: u32, len: u32, insn: &Insn) -> Option<Uop> {
    let isa = m.isa;
    let after_slot = |m: &Machine| pc + len + m.next_len(pc + len);
    let dlxe = isa == Isa::Dlxe;
    let src = |r: Gpr| -> u8 {
        if dlxe && r.index() == 0 {
            ZERO_REG
        } else {
            r.index() as u8
        }
    };
    let dst = |r: Gpr| -> u8 {
        if dlxe && r.index() == 0 {
            SCRATCH_REG
        } else {
            r.index() as u8
        }
    };
    Some(match *insn {
        Insn::Alu { op, rd, rs1, rs2 } => {
            Uop::Alu { op, rd: dst(rd), rs1: src(rs1), rs2: src(rs2) }
        }
        Insn::AluI { op, rd, rs1, imm } => {
            Uop::AluI { op, rd: dst(rd), rs1: src(rs1), imm: imm as u32 }
        }
        Insn::Un { op, rd, rs } => Uop::Un { op, rd: dst(rd), rs: src(rs) },
        Insn::Mvi { rd, imm } => Uop::MovImm { rd: dst(rd), imm: imm as u32 },
        Insn::Lui { rd, imm } => Uop::MovImm { rd: dst(rd), imm: imm << 16 },
        Insn::Cmp { cond, rd, rs1, rs2 } => {
            Uop::Cmp { cond, rd: dst(rd), rs1: src(rs1), rs2: src(rs2) }
        }
        Insn::CmpI { cond, rd, rs1, imm } => {
            Uop::CmpI { cond, rd: dst(rd), rs1: src(rs1), imm: imm as u32 }
        }
        Insn::Ld { w, rd, base, disp } => {
            Uop::Ld { w, rd: dst(rd), base: src(base), disp: disp as u32 }
        }
        Insn::Ldc { rd, disp } => {
            let addr = ((pc + 2 + 3) & !3).wrapping_add(disp as u32);
            // Pre-validate: a faulting literal load is left to the
            // interpreter (ends the block), so `LdAbs` cannot fault.
            if addr as u64 + 4 > m.mem.len() as u64 || !addr.is_multiple_of(4) {
                return None;
            }
            Uop::LdAbs { rd: dst(rd), addr }
        }
        Insn::St { w, rs, base, disp } => {
            Uop::St { w, rs: src(rs), base: src(base), disp: disp as u32 }
        }
        Insn::Br { disp } => Uop::Br { target: add_disp(pc + len, disp) },
        Insn::Bc { neg, rs, disp } => {
            Uop::Bc { neg, rs: src(rs), taken: add_disp(pc + len, disp), fall: after_slot(m) }
        }
        Insn::J { target } => Uop::Jr { target: src(target) },
        Insn::Jc { neg, rs, target } => {
            Uop::Jc { neg, rs: src(rs), target: src(target), fall: after_slot(m) }
        }
        Insn::Jl { target } => {
            Uop::Jl { target: src(target), link: dst(isa.link_reg()), link_val: after_slot(m) }
        }
        Insn::Jdisp { link: false, disp } => Uop::Br { target: add_disp(pc + len, disp) },
        Insn::Jdisp { link: true, disp } => Uop::Jal {
            target: add_disp(pc + len, disp),
            link: dst(isa.link_reg()),
            link_val: after_slot(m),
        },
        Insn::Nop => Uop::Nop,
        // The cold set: FPU, transfers, status reads, and traps keep
        // their interpreter semantics (latency model, console, halt).
        Insn::FAlu { .. }
        | Insn::FNeg { .. }
        | Insn::FCmp { .. }
        | Insn::Cvt { .. }
        | Insn::Mtf { .. }
        | Insn::Mff { .. }
        | Insn::Rdsr { .. }
        | Insn::Trap { .. } => return None,
    })
}

fn add_disp(base: u32, disp: i32) -> u32 {
    base.wrapping_add(disp as u32)
}

/// Discovers and lowers the block starting at `start_pc`, which must be
/// a valid, aligned text address. Returns `None` when not even the first
/// instruction is lowerable (the engine then marks the slot so the
/// interpreter handles that PC permanently).
pub(crate) fn lower_block(m: &Machine, start_pc: u32) -> Option<Block> {
    let unit = m.isa.insn_bytes();
    let mut steps: Vec<Step> = Vec::new();
    // Source PC, byte length, and raw instruction of every semantic step:
    // the fetch-word walk needs the real byte extents, and the fusion
    // scan must classify *instructions* (see [`head_shape`]).
    let mut metas: Vec<(u32, u32, Insn)> = Vec::new();
    let mut exit = BlockExit::FallThrough;
    let mut pc = start_pc;
    while steps.len() < MAX_BLOCK_LEN && pc < m.text_end {
        let idx = ((pc - m.text_base) / unit) as usize;
        // An undecodable word ends the block; `step()` raises the fault.
        let Some((insn, len)) = m.decoded[idx] else { break };
        let len = u32::from(len);
        let Some(uop) = lower_insn(m, pc, len, &insn) else { break };
        let control = is_control(&uop);
        steps.push(Step { uop, stall: 0, cum: 0, len: len as u8 });
        metas.push((pc, len, insn));
        pc += len;
        if control {
            // Lower the delay slot too when possible; a control transfer
            // or non-lowerable instruction there is the interpreter's
            // business (including the ControlInDelaySlot fault).
            exit = BlockExit::PendingAtEnd;
            if pc < m.text_end {
                let didx = ((pc - m.text_base) / unit) as usize;
                if let Some((dinsn, dlen)) = m.decoded[didx] {
                    let dlen = u32::from(dlen);
                    if let Some(duop) = lower_insn(m, pc, dlen, &dinsn) {
                        if !is_control(&duop) {
                            steps.push(Step { uop: duop, stall: 0, cum: 0, len: dlen as u8 });
                            metas.push((pc, dlen, dinsn));
                            exit = BlockExit::TakePending;
                        }
                    }
                }
            }
            break;
        }
    }
    if steps.is_empty() {
        return None;
    }

    // D16x macro-op fusion, resolved statically over the block body. In
    // straight-line code the dynamic pairing rule (B retires right after
    // A, at A's successor address) degenerates to adjacency, so internal
    // pairs are a pure scan; only the pair split across the block's entry
    // edge stays dynamic (`head_fuse` against the machine's state), and
    // `exit_fuse` is what the block leaves behind for the next one.
    let mut head_fuse = None;
    let mut exit_fuse = None;
    let mut fuse_pairs: Vec<(u32, u8)> = Vec::new();
    let (mut fused_cmp_br, mut fused_lui_addi) = (0u64, 0u64);
    if m.isa == Isa::D16x {
        head_fuse = head_shape(&metas[0].2);
        for i in 1..metas.len() {
            if let Some(shape) = fuse_a_shape(&metas[i - 1].2) {
                if fuse_b_matches(shape, &metas[i].2) {
                    let kind = match shape {
                        FuseA::Cmp(_) => FUSE_CMP_BR,
                        FuseA::Lui(_) => FUSE_LUI_ADDI,
                    };
                    match shape {
                        FuseA::Cmp(_) => fused_cmp_br += 1,
                        FuseA::Lui(_) => fused_lui_addi += 1,
                    }
                    fuse_pairs.push((i as u32, kind));
                }
            }
        }
        let (lpc, llen, ref last) = metas[metas.len() - 1];
        exit_fuse = fuse_a_shape(last).map(|a| (lpc + llen, a));
    }

    // Static load-use interlocks: a lowering-time scoreboard replay of
    // the interpreter's issue rule over the block body, ready times
    // relative to block entry, at the active spec's load-use distance.
    // At the default distance of one this reduces exactly to the classic
    // rule — only a load's destination read by the immediately following
    // micro-op stalls, for exactly one cycle (see [`Step`] for why the
    // schedule is only trusted at the default spec).
    let ldelay = m.pspec.load_delay();
    let mut ready = [0u64; 64];
    let mut t = 0u64;
    let mut static_stalls = 0u64;
    let mut static_stall_cycles = 0u64;
    for s in &mut steps {
        let srcs = uop_srcs(&s.uop);
        let need = ready[srcs[0] as usize].max(ready[srcs[1] as usize]);
        let stall = need.saturating_sub(t);
        static_stalls += u64::from(stall > 0);
        static_stall_cycles += stall;
        t += stall + 1;
        s.stall = stall as u32;
        s.cum = t as u32;
        if let Some(d) = load_dest(&s.uop) {
            ready[d as usize] = t + ldelay;
        } else if let Some(d) = write_dest(&s.uop) {
            ready[d as usize] = t;
        }
    }
    let cum = t as u32;

    // With the architectural sums fixed, rename copied values back to
    // their origin slots, then pack the steps into their execution form
    // and fuse the hot adjacent pairs. All the per-instruction sums
    // (tally, cycles, stalls, fetch words) are over the semantic steps,
    // so neither rewrite changes them. Dynamic-timing blocks (non-default
    // spec) skip both rewrites: the per-step scoreboard needs every
    // step's *architectural* sources, and fused pairs would hide a
    // component issue boundary.
    let dynamic = m.pspec != PipelineSpec::default();
    let first_srcs = uop_srcs(&steps[0].uop);
    if !dynamic {
        propagate_copies(&mut steps);
    }
    let packed: Vec<XStep> = steps.iter().map(encode).collect();
    let packed = if dynamic { packed } else { fuse(packed) };
    debug_assert_eq!(tally(&steps), xtally(&packed), "opcode classification drifted");
    debug_assert_eq!(
        steps.len() as u32,
        packed.iter().map(|s| step_width(s.code)).sum::<u32>(),
        "fusion changed the retired-instruction count"
    );
    let fmask = m.pspec.fetch_mask();
    let mut b = Block {
        start_pc,
        exit,
        n_insns: steps.len() as u32,
        first_srcs,
        totals: tally(&steps),
        cycles: u64::from(cum),
        static_stalls,
        static_stall_cycles,
        steps: packed.into_boxed_slice(),
        words_after_first: 0,
        first_word: start_pc & fmask,
        last_word: 0,
        head_fuse,
        exit_fuse,
        fuse_pairs: fuse_pairs.into_boxed_slice(),
        fused_cmp_br,
        fused_lui_addi,
    };
    // Fetch-unit transitions at the spec's fetch width, mirroring the
    // interpreter's two-unit rule: each instruction moves the buffer to
    // its first unit, then to the unit holding its last byte (an
    // instruction straddling a unit boundary). The first instruction's
    // *entry* transition is the dynamic term the engine adds at dispatch;
    // its straddle is static and counted here.
    let mut prev_word = b.first_word;
    for &(mpc, mlen, _) in &metas {
        let w0 = mpc & fmask;
        if w0 != prev_word {
            b.words_after_first += 1;
            prev_word = w0;
        }
        let w1 = (mpc + mlen - 1) & fmask;
        if w1 != prev_word {
            b.words_after_first += 1;
            prev_word = w1;
        }
    }
    b.last_word = prev_word;
    Some(b)
}
