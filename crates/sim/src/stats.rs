//! Execution statistics: the raw measurements behind the paper's tables.

/// Counters accumulated by the pipeline while executing a program.
///
/// These correspond directly to the paper's appendix tables: `insns` is the
/// path length (Tables 7–8), `loads`/`stores` are Table 9, `interlocks` is
/// Table 10 (delayed-load plus math-unit interlocks), and `ifetch_words` is
/// the "instruction traffic in words" column of Table 8, counted by a
/// one-word (32-bit) fetch buffer walking the instruction stream.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub struct ExecStats {
    /// Dynamically executed instructions (path length). Includes delay-slot
    /// instructions, nops included.
    pub insns: u64,
    /// Loads executed (including D16 literal-pool `ldc` loads).
    pub loads: u64,
    /// Stores executed.
    pub stores: u64,
    /// Total interlock stall cycles.
    pub interlocks: u64,
    /// Stall cycles caused by delayed loads.
    pub load_interlocks: u64,
    /// Stall cycles caused by FPU latency (the paper's "math unit").
    pub fpu_interlocks: u64,
    /// 32-bit instruction words fetched by a one-word fetch buffer.
    pub ifetch_words: u64,
    /// Control-transfer instructions executed.
    pub branches: u64,
    /// Control transfers that redirected fetch (taken).
    pub taken_branches: u64,
    /// Explicit `nop` instructions executed (delay-slot fills the compiler
    /// could not schedule).
    pub nops: u64,
}

impl ExecStats {
    /// Loads plus stores: the paper's `MemOps` term.
    pub fn mem_ops(&self) -> u64 {
        self.loads + self.stores
    }

    /// Interlock rate per instruction (Table 10's "Rate" column).
    pub fn interlock_rate(&self) -> f64 {
        if self.insns == 0 {
            0.0
        } else {
            self.interlocks as f64 / self.insns as f64
        }
    }

    /// Base execution cycles excluding memory latency:
    /// `IC + Interlocks` (the paper's formula before the latency term).
    pub fn base_cycles(&self) -> u64 {
        self.insns + self.interlocks
    }
}

/// Why execution stopped.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum StopReason {
    /// The program executed `trap 0`; the payload is `r2`, its exit status.
    Halted(i32),
    /// The instruction budget given to [`crate::Machine::run`] ran out.
    OutOfFuel,
}

impl StopReason {
    /// The exit status if the program halted normally.
    pub fn exit_status(&self) -> Option<i32> {
        match self {
            StopReason::Halted(s) => Some(*s),
            StopReason::OutOfFuel => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_and_sums() {
        let s = ExecStats {
            insns: 100,
            loads: 7,
            stores: 3,
            interlocks: 12,
            ..Default::default()
        };
        assert_eq!(s.mem_ops(), 10);
        assert!((s.interlock_rate() - 0.12).abs() < 1e-12);
        assert_eq!(s.base_cycles(), 112);
        assert_eq!(ExecStats::default().interlock_rate(), 0.0);
    }

    #[test]
    fn stop_reason_status() {
        assert_eq!(StopReason::Halted(3).exit_status(), Some(3));
        assert_eq!(StopReason::OutOfFuel.exit_status(), None);
    }
}
