//! Execution statistics: the raw measurements behind the paper's tables,
//! plus the statically registered pipeline telemetry schema.

use d16_telemetry::Counters;

d16_telemetry::counter_schema! {
    /// Per-pipeline-stage and per-interlock-class counters, bumped by
    /// [`crate::Machine`] as it executes. Stage occupancy counters
    /// (`stage.*`) partition the instruction stream by the stage that
    /// does the instruction's real work; interlock counters split the
    /// [`ExecStats::interlocks`] aggregate by stall cause, as
    /// `.events` (stall occurrences) and `.cycles` (cycles lost, which
    /// reconcile exactly with the aggregates — see
    /// [`ExecStats::reconciles_with`]).
    pub SIM_SCHEMA / SimCounter {
        /// Instructions fetched (== `ExecStats::insns`).
        IfInsns => "stage.if.insns",
        /// 32-bit words the fetch buffer pulled (== `ifetch_words`).
        IfWords => "stage.if.words",
        /// Instructions decoded (== `insns`; the interpreter never
        /// fetches without decoding).
        IdInsns => "stage.id.insns",
        /// Integer ALU / compare / move-immediate instructions.
        ExAlu => "stage.ex.alu",
        /// Control transfers (branches, jumps, calls).
        ExControl => "stage.ex.control",
        /// FPU instructions, including transfers and status reads.
        ExFpu => "stage.ex.fpu",
        /// Explicit nops (unfilled delay slots).
        ExNop => "stage.ex.nop",
        /// System traps (halt, console, instruction-count).
        ExSys => "stage.ex.sys",
        /// Loads, including D16 literal-pool `ldc` (== `loads`).
        MemLoads => "stage.mem.loads",
        /// Stores (== `stores`).
        MemStores => "stage.mem.stores",
        /// Integer register writebacks (including discarded DLXe `r0`
        /// writes, which still occupy the stage).
        WbGpr => "stage.wb.gpr",
        /// FP register writebacks.
        WbFpr => "stage.wb.fpr",
        /// Delayed-load stall occurrences.
        LoadEvents => "interlock.load.events",
        /// Delayed-load stall cycles (== `load_interlocks`).
        LoadCycles => "interlock.load.cycles",
        /// Stalls waiting on an FPU result register.
        FpuResultEvents => "interlock.fpu.result.events",
        /// Cycles waiting on an FPU result register.
        FpuResultCycles => "interlock.fpu.result.cycles",
        /// Stalls waiting for the non-pipelined FPU to drain.
        FpuBusyEvents => "interlock.fpu.busy.events",
        /// Cycles waiting for the non-pipelined FPU to drain.
        FpuBusyCycles => "interlock.fpu.busy.cycles",
        /// Stalls waiting on the FP status register (`rdsr`).
        FpuStatusEvents => "interlock.fpu.status.events",
        /// Cycles waiting on the FP status register.
        FpuStatusCycles => "interlock.fpu.status.cycles",
        /// Taken control transfers (== `taken_branches`).
        CtlTaken => "control.taken",
        /// Untaken (fall-through) control transfers.
        CtlUntaken => "control.untaken",
        /// D16x macro-op fusion: dynamic compare → dependent-branch pairs
        /// (== `fused_cmp_br`; always 0 on D16 and DLXe).
        FuseCmpBr => "fuse.cmp_br",
        /// D16x macro-op fusion: dynamic `mvhi` → dependent `ori`/`addi`
        /// pairs (== `fused_lui_addi`; always 0 on D16 and DLXe).
        FuseLuiAddi => "fuse.lui_addi",
    }
}

/// Counters accumulated by the pipeline while executing a program.
///
/// These correspond directly to the paper's appendix tables: `insns` is the
/// path length (Tables 7–8), `loads`/`stores` are Table 9, `interlocks` is
/// Table 10 (delayed-load plus math-unit interlocks), and `ifetch_words` is
/// the "instruction traffic in words" column of Table 8, counted by a
/// one-word (32-bit) fetch buffer walking the instruction stream.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub struct ExecStats {
    /// Dynamically executed instructions (path length). Includes delay-slot
    /// instructions, nops included.
    pub insns: u64,
    /// Loads executed (including D16 literal-pool `ldc` loads).
    pub loads: u64,
    /// Stores executed.
    pub stores: u64,
    /// Total interlock stall cycles.
    pub interlocks: u64,
    /// Stall cycles caused by delayed loads.
    pub load_interlocks: u64,
    /// Stall cycles caused by FPU latency (the paper's "math unit").
    pub fpu_interlocks: u64,
    /// 32-bit instruction words fetched by a one-word fetch buffer.
    pub ifetch_words: u64,
    /// Control-transfer instructions executed.
    pub branches: u64,
    /// Control transfers that redirected fetch (taken).
    pub taken_branches: u64,
    /// Explicit `nop` instructions executed (delay-slot fills the compiler
    /// could not schedule).
    pub nops: u64,
    /// D16x macro-op fusion opportunities taken: a compare immediately
    /// followed (dynamically *and* in the byte stream) by a conditional
    /// branch testing its result. Pure accounting — fusion changes no
    /// architectural state — so the fusion-off ablation is
    /// [`ExecStats::base_cycles`] and the fusion-on number is
    /// `base_cycles() - fused_pairs()`. Always 0 on D16 and DLXe.
    pub fused_cmp_br: u64,
    /// D16x macro-op fusion opportunities taken: `mvhi` immediately
    /// followed by the dependent `ori`/`addi` of an address-materialization
    /// pair. Always 0 on D16 and DLXe.
    pub fused_lui_addi: u64,
    /// Control transfers whose direction the front end guessed wrong *and*
    /// that cost misfetch bubbles. Always 0 at depths whose
    /// [`crate::PipelineSpec::misfetch_penalty`] is zero (the default
    /// five-stage machine among them), keeping the default-spec stats
    /// bit-identical to the historical fixed-depth model.
    pub mispredicts: u64,
    /// Misfetch bubble cycles charged for those wrong guesses
    /// (`mispredicts * misfetch_penalty`). Always 0 at the default spec.
    pub misfetch_cycles: u64,
}

impl ExecStats {
    /// Loads plus stores: the paper's `MemOps` term.
    pub fn mem_ops(&self) -> u64 {
        self.loads + self.stores
    }

    /// Interlock rate per instruction (Table 10's "Rate" column).
    pub fn interlock_rate(&self) -> f64 {
        if self.insns == 0 {
            0.0
        } else {
            self.interlocks as f64 / self.insns as f64
        }
    }

    /// Base execution cycles excluding memory latency:
    /// `IC + Interlocks + MisfetchBubbles` (the paper's formula before the
    /// latency term; the misfetch term is 0 at the default pipeline spec).
    pub fn base_cycles(&self) -> u64 {
        self.insns + self.interlocks + self.misfetch_cycles
    }

    /// Dynamic macro-op pairs fused (both shapes). Zero outside D16x.
    pub fn fused_pairs(&self) -> u64 {
        self.fused_cmp_br + self.fused_lui_addi
    }

    /// Base cycles with macro-op fusion credited: each fused pair issues
    /// as one macro-op, saving one cycle. Equals [`ExecStats::base_cycles`]
    /// on D16 and DLXe, which fuse nothing.
    pub fn fused_cycles(&self) -> u64 {
        self.base_cycles() - self.fused_pairs()
    }

    /// Checks that a [`SIM_SCHEMA`] counter block agrees with these
    /// aggregates: stage-occupancy counters partition `insns`, memory
    /// counters match `loads`/`stores`, and the per-class interlock
    /// cycles sum back to `interlocks`. Returns the first violated
    /// identity by name.
    ///
    /// With telemetry compiled out every counter reads 0 and nothing can
    /// be reconciled; the check trivially passes.
    ///
    /// # Errors
    ///
    /// Returns a description naming the failing identity and both sides.
    pub fn reconciles_with(&self, tele: &Counters) -> Result<(), String> {
        if !d16_telemetry::ENABLED {
            return Ok(());
        }
        let eq = |what: &str, counter: u64, aggregate: u64| {
            if counter == aggregate {
                Ok(())
            } else {
                Err(format!("{what}: counter {counter} != aggregate {aggregate}"))
            }
        };
        eq("stage.if.insns", tele.get(SimCounter::IfInsns), self.insns)?;
        eq("stage.if.words", tele.get(SimCounter::IfWords), self.ifetch_words)?;
        eq("stage.id.insns", tele.get(SimCounter::IdInsns), self.insns)?;
        eq("stage.mem.loads", tele.get(SimCounter::MemLoads), self.loads)?;
        eq("stage.mem.stores", tele.get(SimCounter::MemStores), self.stores)?;
        eq("stage.ex.nop", tele.get(SimCounter::ExNop), self.nops)?;
        eq("control.taken", tele.get(SimCounter::CtlTaken), self.taken_branches)?;
        eq(
            "control.taken + control.untaken",
            tele.get(SimCounter::CtlTaken) + tele.get(SimCounter::CtlUntaken),
            self.branches,
        )?;
        let stage_sum = tele.get(SimCounter::ExAlu)
            + tele.get(SimCounter::ExControl)
            + tele.get(SimCounter::ExFpu)
            + tele.get(SimCounter::ExNop)
            + tele.get(SimCounter::ExSys)
            + tele.get(SimCounter::MemLoads)
            + tele.get(SimCounter::MemStores);
        eq("stage classes partition insns", stage_sum, self.insns)?;
        eq("fuse.cmp_br", tele.get(SimCounter::FuseCmpBr), self.fused_cmp_br)?;
        eq("fuse.lui_addi", tele.get(SimCounter::FuseLuiAddi), self.fused_lui_addi)?;
        eq("interlock.load.cycles", tele.get(SimCounter::LoadCycles), self.load_interlocks)?;
        let fpu_cycles = tele.get(SimCounter::FpuResultCycles)
            + tele.get(SimCounter::FpuBusyCycles)
            + tele.get(SimCounter::FpuStatusCycles);
        eq("interlock.fpu.*.cycles", fpu_cycles, self.fpu_interlocks)?;
        eq("interlock cycles sum", tele.get(SimCounter::LoadCycles) + fpu_cycles, self.interlocks)?;
        Ok(())
    }
}

/// Why execution stopped.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum StopReason {
    /// The program executed `trap 0`; the payload is `r2`, its exit status.
    Halted(i32),
    /// The instruction budget given to [`crate::Machine::run`] ran out.
    OutOfFuel,
}

impl StopReason {
    /// The exit status if the program halted normally.
    pub fn exit_status(&self) -> Option<i32> {
        match self {
            StopReason::Halted(s) => Some(*s),
            StopReason::OutOfFuel => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_and_sums() {
        let s = ExecStats { insns: 100, loads: 7, stores: 3, interlocks: 12, ..Default::default() };
        assert_eq!(s.mem_ops(), 10);
        assert!((s.interlock_rate() - 0.12).abs() < 1e-12);
        assert_eq!(s.base_cycles(), 112);
        assert_eq!(ExecStats::default().interlock_rate(), 0.0);
    }

    #[test]
    fn stop_reason_status() {
        assert_eq!(StopReason::Halted(3).exit_status(), Some(3));
        assert_eq!(StopReason::OutOfFuel.exit_status(), None);
    }
}
