//! The basic-block micro-op execution engine.
//!
//! [`crate::Machine::run`] decodes and dispatches every instruction on
//! every dynamic execution. This module removes that per-instruction cost:
//! the first time control reaches a PC, [`crate::block`] decodes forward
//! to the block terminator once and lowers the run into a flat micro-op
//! array; a direct-mapped cache (one slot per text instruction, so no
//! conflicts ever evict) then dispatches the lowered block on every later
//! visit with no decode, no operand resolution, and counter traffic
//! batched to a handful of adds per block.
//!
//! The engine is an *optimization, not a second semantics*: everything
//! rare — FPU instructions, traps, faults, delay slots that would not
//! lower, fuel running out mid-block — falls back to
//! [`crate::Machine::step`], the normative interpreter. The contract,
//! enforced by the differential xtest and the fuzzer's fourth oracle, is
//! observational identity: the same [`crate::Access`] stream bytes, the
//! same [`crate::ExecStats`] and [`crate::SIM_SCHEMA`] telemetry, the
//! same [`SimError`] at the same instruction, the same [`StopReason`].
//!
//! Two accounting techniques make the fast path fast while preserving
//! that identity (counter *values* are compared, not bump order):
//!
//! - **Static pre-aggregation** — per-class instruction counts, writeback
//!   counts, and fetch-word transitions of a block are computed at
//!   lowering time ([`crate::block::Tally`]) and added once per completed
//!   block. A block that bails out at micro-op `i` recomputes the same
//!   sums over the executed prefix (`bail` is the cold path).
//! - **Static interlock analysis** — at the *default* pipeline spec,
//!   with one load delay slot and full forwarding, a lowered instruction
//!   can only ever stall for exactly one cycle, and only when the
//!   *immediately preceding* micro-op is a load producing one of its
//!   sources. That pair is known at lowering time
//!   ([`crate::block::Step::stall`]); only a block's first micro-op
//!   needs a dynamic scoreboard check (its predecessor ran in some other
//!   block).
//!
//! A non-default [`crate::PipelineSpec`] breaks the second technique: a
//! load-use distance above one lets a stale ready time survive past the
//! next micro-op, so per-step timing must consult the live scoreboard.
//! [`exec_block`] is therefore compiled in two flavors (`DYN` const
//! generic): the static flavor is byte-for-byte the historical fast
//! path, and the dynamic flavor re-checks every step's sources, commits
//! the clock per step, and drives the shared branch predictor — with
//! fusion and copy propagation disabled at lowering time so the packed
//! operands stay architectural.

use crate::access::AccessSink;
use crate::block::{self, opc, Block, BlockExit};
use crate::machine::{fuse_a_shape, FuseA, Machine, PipelineSpec};
use crate::stats::{SimCounter, StopReason};
use crate::SimError;
use d16_isa::{AluOp, Cond, Isa, UnOp};
use d16_telemetry::Counters;

/// Which execution engine drives a run (see [`crate::Machine::run_with`]).
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub enum Engine {
    /// The basic-block micro-op cache — the default engine.
    #[default]
    Blocks,
    /// The per-instruction interpreter: the normative semantics the block
    /// engine is differentially checked against.
    Interp,
}

impl Engine {
    /// CLI / report name (`"blocks"` / `"interp"`).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Engine::Blocks => "blocks",
            Engine::Interp => "interp",
        }
    }

    /// Parses a CLI / report name; inverse of [`Engine::name`].
    #[must_use]
    pub fn parse(s: &str) -> Option<Engine> {
        match s {
            "blocks" => Some(Engine::Blocks),
            "interp" => Some(Engine::Interp),
            _ => None,
        }
    }
}

d16_telemetry::counter_schema! {
    /// Block-engine mechanics counters. These count how the engine ran
    /// (compiles, cache traffic, interpreter fallbacks), not what the
    /// simulated program did, so — like `STORE_SCHEMA` — they stay out of
    /// the experiment registry: `--metrics-json` must be byte-identical
    /// across engines. Read them via
    /// [`crate::Machine::engine_telemetry`].
    pub ENGINE_SCHEMA / EngineCounter {
        /// Blocks lowered into the cache.
        BlocksCompiled => "blocks.compiled",
        /// Micro-ops in those blocks.
        UopsLowered => "uops.lowered",
        /// Dispatches answered by the cache (a lowered block, or the
        /// cached fact that this PC does not lower).
        CacheHits => "cache.hits",
        /// First visits to a PC (each triggers a lowering attempt).
        CacheMisses => "cache.misses",
        /// Instructions retired from micro-op arrays.
        UopInsns => "insns.uop",
        /// Instructions retired through the [`crate::Machine::step`]
        /// fallback. `insns.uop + insns.fallback` equals
        /// [`crate::ExecStats::insns`].
        FallbackInsns => "insns.fallback",
    }
}

/// Cache slot: PC not yet visited.
const SLOT_NONE: u32 = u32::MAX;
/// Cache slot: PC visited but not lowerable (FPU/trap/undecodable) —
/// permanently the interpreter's.
const SLOT_NO_BLOCK: u32 = u32::MAX - 1;

/// The block cache plus its dispatch loop. One per [`Machine`], built
/// lazily by [`Machine::run_blocks`] and kept across runs — the keying
/// fields ([`Isa`], text extent, text checksum, [`PipelineSpec`]) only
/// exist to detect a machine swap, since a machine's own text is
/// immutable (stores into it fault). The pipeline spec is a keying field
/// because lowering bakes spec-derived facts into blocks (static stall
/// schedules, fetch-unit boundaries, fusion on/off): a cache built at
/// one spec is silently wrong at another.
#[derive(Clone, Debug)]
pub struct BlockEngine {
    isa: Isa,
    text_base: u32,
    text_end: u32,
    text_sum: u64,
    pspec: PipelineSpec,
    /// Direct-mapped: one slot per text instruction ([`SLOT_NONE`],
    /// [`SLOT_NO_BLOCK`], or an index into `blocks`).
    slots: Vec<u32>,
    blocks: Vec<Block>,
    /// One-entry successor cache per block: the last `(next_pc, next_id)`
    /// transition taken out of it. Chained dispatch checks this before
    /// the `slots` lookup; entries are only ever observed after a PC
    /// equality check, so a stale entry costs a refill, never a wrong
    /// block.
    chain: Vec<(u32, u32)>,
    tele: Counters,
}

impl BlockEngine {
    /// An empty cache keyed to `m`'s text.
    #[must_use]
    pub(crate) fn new(m: &Machine) -> Self {
        BlockEngine {
            isa: m.isa,
            text_base: m.text_base,
            text_end: m.text_end,
            text_sum: text_checksum(m),
            pspec: m.pipeline(),
            slots: vec![SLOT_NONE; m.decoded.len()],
            blocks: Vec::new(),
            chain: Vec::new(),
            tele: Counters::new(&ENGINE_SCHEMA),
        }
    }

    /// Whether the cache was built from `m`'s text *and* pipeline spec.
    pub(crate) fn matches(&self, m: &Machine) -> bool {
        self.isa == m.isa
            && self.text_base == m.text_base
            && self.text_end == m.text_end
            && self.pspec == m.pipeline()
            && self.text_sum == text_checksum(m)
    }

    /// The engine-mechanics counter block ([`ENGINE_SCHEMA`]).
    #[must_use]
    pub fn telemetry(&self) -> &Counters {
        &self.tele
    }

    /// Checks the engine's own counters against the machine's
    /// architectural statistics (the engine-side analogue of
    /// [`crate::ExecStats::reconciles_with`]): every retired instruction
    /// is counted exactly once, as micro-op or fallback, and the cache
    /// counters are internally consistent. Trivially `Ok` with telemetry
    /// compiled out.
    ///
    /// # Errors
    ///
    /// Returns a description of the first identity that fails.
    pub fn reconciles_with(&self, stats: &crate::ExecStats) -> Result<(), String> {
        if !d16_telemetry::ENABLED {
            return Ok(());
        }
        let g = |c: EngineCounter| self.tele.get(c);
        let uop = g(EngineCounter::UopInsns);
        let fb = g(EngineCounter::FallbackInsns);
        if uop + fb != stats.insns {
            return Err(format!(
                "insns.uop ({uop}) + insns.fallback ({fb}) != stats.insns ({})",
                stats.insns
            ));
        }
        let compiled = g(EngineCounter::BlocksCompiled);
        if compiled != self.blocks.len() as u64 {
            return Err(format!(
                "blocks.compiled ({compiled}) != cached blocks ({})",
                self.blocks.len()
            ));
        }
        let lowered = g(EngineCounter::UopsLowered);
        let in_cache: u64 = self.blocks.iter().map(|b| b.len() as u64).sum();
        if lowered != in_cache {
            return Err(format!("uops.lowered ({lowered}) != micro-ops in cache ({in_cache})"));
        }
        if g(EngineCounter::CacheMisses) < compiled {
            return Err(format!(
                "cache.misses ({}) < blocks.compiled ({compiled})",
                g(EngineCounter::CacheMisses)
            ));
        }
        Ok(())
    }

    /// The dispatch loop behind [`Machine::run_blocks`]; same contract as
    /// [`Machine::run`].
    ///
    /// All whole-block accounting is summed into a stack-local [`Acc`]
    /// across consecutive cache-served blocks and flushed to the
    /// machine's counters only when the segment ends (a fallback, a
    /// bail-out, or run exit). Counters are only ever *observed* at those
    /// boundaries, so the values seen are identical to per-block
    /// application — the flush just batches the memory traffic.
    pub(crate) fn run(
        &mut self,
        m: &mut Machine,
        fuel: u64,
        sink: &mut impl AccessSink,
    ) -> Result<StopReason, SimError> {
        let end = m.stats.insns + fuel;
        // Non-default specs run every block through the dynamic-timing
        // flavor of `exec_block`; the default spec keeps the historical
        // static fast path, byte for byte.
        let dyn_mode = self.pspec != PipelineSpec::default();
        // `ilen` is 2 or 4: strength-reduce the per-dispatch slot-index
        // division and the alignment remainder to a shift and a mask.
        let shift = m.isa.insn_bytes().trailing_zeros();
        let align_mask = m.isa.insn_bytes() - 1;
        let mut acc = Acc::default();
        // Block the previous iteration ran to completion, if any: its
        // successor cache gets first crack at resolving the next PC.
        let mut pred: Option<u32> = None;
        loop {
            if let Some(v) = m.halted {
                acc.flush(m, &mut self.tele);
                return Ok(StopReason::Halted(v));
            }
            let retired = m.stats.insns + acc.insns;
            if retired >= end {
                acc.flush(m, &mut self.tele);
                return Ok(StopReason::OutOfFuel);
            }
            // A pending branch target means the next instruction is a
            // delay slot the block engine did not lower (blocks swallow
            // their own delay slots): one interpreter step, which also
            // owns the ControlInDelaySlot fault.
            if m.pending_target.is_some() {
                pred = None;
                acc.flush(m, &mut self.tele);
                self.fallback_step(m, sink)?;
                continue;
            }
            let pc = m.pc;
            // Chained dispatch: when the completed predecessor has seen
            // this exact transition before, its cached successor id
            // stands in for the whole slot lookup below (the PC equality
            // check subsumes the range/alignment checks — a cached PC
            // was resolved through them when the entry was filled).
            let chained = pred.and_then(|p| {
                let (cpc, cid) = self.chain[p as usize];
                (cpc == pc).then_some(cid)
            });
            let id = if let Some(id) = chained {
                acc.hits += 1;
                id
            } else {
                if pc < m.text_base || pc >= m.text_end || (pc - m.text_base) & align_mask != 0 {
                    // Let the interpreter raise the canonical PcOutOfText.
                    pred = None;
                    acc.flush(m, &mut self.tele);
                    self.fallback_step(m, sink)?;
                    continue;
                }
                let idx = ((pc - m.text_base) >> shift) as usize;
                let id = match self.slots[idx] {
                    SLOT_NO_BLOCK => {
                        pred = None;
                        acc.hits += 1;
                        acc.flush(m, &mut self.tele);
                        self.fallback_step(m, sink)?;
                        continue;
                    }
                    SLOT_NONE => {
                        acc.misses += 1;
                        match block::lower_block(m, pc) {
                            Some(b) => {
                                self.tele.bump(EngineCounter::BlocksCompiled);
                                self.tele.add(EngineCounter::UopsLowered, b.len() as u64);
                                let id = self.blocks.len() as u32;
                                self.blocks.push(b);
                                self.chain.push((u32::MAX, 0));
                                self.slots[idx] = id;
                                id
                            }
                            None => {
                                self.slots[idx] = SLOT_NO_BLOCK;
                                pred = None;
                                acc.flush(m, &mut self.tele);
                                self.fallback_step(m, sink)?;
                                continue;
                            }
                        }
                    }
                    id => {
                        acc.hits += 1;
                        id
                    }
                };
                if let Some(p) = pred {
                    self.chain[p as usize] = (pc, id);
                }
                id
            };
            pred = None;
            let b = &self.blocks[id as usize];
            // The interpreter stops on the exact instruction where fuel
            // runs out; a block is all-or-nothing, so when the remaining
            // budget cannot cover it, finish the run one step at a time.
            if end - retired < b.len() as u64 {
                acc.flush(m, &mut self.tele);
                self.fallback_step(m, sink)?;
                continue;
            }
            loop {
                let r = if dyn_mode {
                    exec_block::<true, _>(m, b, &mut acc, sink)
                } else {
                    exec_block::<false, _>(m, b, &mut acc, sink)
                };
                match r {
                    Ok(()) => {
                        // Self-loop fast path: a block whose exit lands
                        // back on its own head (a single-block loop) can
                        // re-enter directly — the dispatch-loop checks it
                        // would re-run are all statically known to pass
                        // except halt/pending/fuel, checked here.
                        if m.pc == b.start_pc
                            && m.pending_target.is_none()
                            && m.halted.is_none()
                            && end - (m.stats.insns + acc.insns) >= b.len() as u64
                        {
                            acc.hits += 1;
                            continue;
                        }
                        pred = Some(id);
                        break;
                    }
                    Err(why) => {
                        acc.flush(m, &mut self.tele);
                        let b = &self.blocks[id as usize];
                        bail(m, b, &why, dyn_mode, &mut self.tele, sink)?;
                        break;
                    }
                }
            }
        }
    }

    /// One interpreter step, with the retired-instruction delta (1, or 0
    /// when the step faults before retiring) credited to the fallback
    /// counter so `insns.uop + insns.fallback == stats.insns` holds
    /// exactly.
    fn fallback_step(
        &mut self,
        m: &mut Machine,
        sink: &mut impl AccessSink,
    ) -> Result<(), SimError> {
        let before = m.stats.insns;
        let r = m.step(sink);
        self.tele.add(EngineCounter::FallbackInsns, m.stats.insns - before);
        r
    }
}

/// Segment accumulator: the whole-block accounting sums carried in
/// registers/stack across consecutive cache-served blocks, flushed to
/// the machine's (memory-resident, bounds-checked) counters only at
/// segment boundaries. See [`BlockEngine::run`].
#[derive(Default)]
struct Acc {
    /// Instructions retired from micro-op arrays this segment (also the
    /// pending `insns.uop` delta).
    insns: u64,
    /// Per-class sums of those instructions.
    tally: block::Tally,
    /// Dynamic conditional-branch outcomes.
    taken: u64,
    untaken: u64,
    /// Load-use interlocks: scoreboard events and stalled cycles.
    stall_events: u64,
    stall_cycles: u64,
    /// Instruction-fetch word transitions.
    words: u64,
    /// D16x macro-op pairs fused this segment, by shape.
    fused_cmp_br: u64,
    fused_lui_addi: u64,
    /// Pending `cache.hits` / `cache.misses` deltas.
    hits: u64,
    misses: u64,
}

impl Acc {
    /// Folds one completed block (with its resolved load-use stall
    /// events/cycles and conditional-branch outcomes) into the segment
    /// sums. The caller supplies the stall totals because the two
    /// [`exec_block`] flavors derive them differently: static sums plus
    /// the entry stall on the fast path, live per-step counts on the
    /// dynamic path.
    #[inline]
    fn absorb(
        &mut self,
        b: &Block,
        stall_events: u64,
        stall_cycles: u64,
        taken: u64,
        untaken: u64,
    ) {
        self.insns += b.len() as u64;
        let tl = &b.totals;
        self.tally.ex_alu += tl.ex_alu;
        self.tally.ex_control += tl.ex_control;
        self.tally.ex_nop += tl.ex_nop;
        self.tally.loads += tl.loads;
        self.tally.stores += tl.stores;
        self.tally.wb_gpr += tl.wb_gpr;
        self.tally.static_taken += tl.static_taken;
        self.taken += taken;
        self.untaken += untaken;
        self.stall_events += stall_events;
        self.stall_cycles += stall_cycles;
    }

    /// Applies the segment sums to the machine and engine counters and
    /// resets. The values land exactly as per-block application would
    /// have left them.
    fn flush(&mut self, m: &mut Machine, tele: &mut Counters) {
        if self.hits != 0 || self.misses != 0 {
            tele.add(EngineCounter::CacheHits, self.hits);
            tele.add(EngineCounter::CacheMisses, self.misses);
        }
        if self.insns > 0 {
            apply_tally(m, self.insns, &self.tally, self.taken, self.untaken);
            if self.stall_cycles > 0 {
                m.stats.interlocks += self.stall_cycles;
                m.stats.load_interlocks += self.stall_cycles;
                m.tele.add(SimCounter::LoadEvents, self.stall_events);
                m.tele.add(SimCounter::LoadCycles, self.stall_cycles);
            }
            m.stats.ifetch_words += self.words;
            m.tele.add(SimCounter::IfWords, self.words);
            m.stats.fused_cmp_br += self.fused_cmp_br;
            m.stats.fused_lui_addi += self.fused_lui_addi;
            m.tele.add(SimCounter::FuseCmpBr, self.fused_cmp_br);
            m.tele.add(SimCounter::FuseLuiAddi, self.fused_lui_addi);
            tele.add(EngineCounter::UopInsns, self.insns);
        }
        *self = Acc::default();
    }
}

/// Why [`exec_block`] could not complete: micro-op `i` would fault, with
/// the partial-block state the settlement in [`bail`] needs.
struct Bail {
    i: usize,
    d: u64,
    pending: Option<u32>,
    taken: u64,
    untaken: u64,
    /// Dynamic-path load-use stall events over the completed prefix
    /// (always 0 on the static path, which recomputes from the steps).
    events: u64,
    /// Dynamic-path load-use stall cycles over the completed prefix.
    cycles: u64,
}

/// FNV-1a over the text segment: the engine's staleness check for a
/// machine swap. Not adversarial — a machine cannot modify its own text
/// (stores into it raise [`SimError::WriteToText`]).
fn text_checksum(m: &Machine) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &byte in &m.mem[m.text_base as usize..m.text_end as usize] {
        h ^= u64::from(byte);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Masked register-file index. Lowered register slots are always below
/// [`crate::machine::GPR_SLOTS`]; the mask (a no-op on valid slots)
/// proves it to the optimizer, eliding the bounds check on the
/// simulator's hottest array.
macro_rules! slot {
    ($r:expr) => {
        ($r as usize) & (crate::machine::GPR_SLOTS - 1)
    };
}

/// Executes one lowered block to completion, or bails to the interpreter
/// at the first micro-op that would fault. Preconditions (the dispatch
/// loop establishes them): not halted, no pending branch target, and
/// enough fuel for the whole block.
///
/// `DYN == false` (the default pipeline spec): the loop body carries no
/// cycle arithmetic and no counter traffic — every step's clock is
/// `base + Step::cum` with `base` fixed once at entry (the one dynamic
/// scoreboard check), and all accounting lands in a handful of local
/// adds ([`Acc::absorb`]) after the last micro-op retires.
///
/// `DYN == true` (any other spec): static stall schedules are unsound
/// (a load-use distance above one outlives the next micro-op, and ready
/// times must be cleared by later writes), so each step replays the
/// interpreter's issue sequence exactly — scoreboard check against the
/// live clock, clock commit, ready-time write, then branch-predictor
/// update and misfetch charge. The stall/clock for a step are computed
/// *before* its arm runs and committed *after* it, so a bailing arm
/// leaves the machine exactly where the interpreter would re-find it.
///
/// Either way a would-fault micro-op returns [`Bail`]; the caller
/// settles.
fn exec_block<const DYN: bool, S: AccessSink>(
    m: &mut Machine,
    b: &Block,
    acc: &mut Acc,
    sink: &mut S,
) -> Result<(), Bail> {
    // One dynamic interlock check per block on the static path: only the
    // first micro-op can see a load delay from *outside* the block (see
    // the module doc); every later stall is static and already folded
    // into `Step::cum`. The dynamic path folds the entry stall into its
    // first per-step check instead.
    let d = if DYN {
        0
    } else {
        m.gpr_ready[slot!(b.first_srcs[0])]
            .max(m.gpr_ready[slot!(b.first_srcs[1])])
            .saturating_sub(m.t)
    };
    let base = m.t + d;
    let ldelay = m.pspec.load_delay();
    let penalty = m.pspec.misfetch_penalty();
    // Dynamic-path load-use stall totals for the block.
    let (mut ev, mut cyc) = (0u64, 0u64);
    let mut pc = b.start_pc;
    let mut pending: Option<u32> = None;
    let (mut taken, mut untaken) = (0u64, 0u64);
    for (i, s) in b.steps.iter().enumerate() {
        // Dynamic issue: resolve this step's stall and post-issue clock
        // from the live scoreboard, but commit nothing until the arm has
        // proven it cannot fault (a bail must leave no trace).
        let (stall, t_next) = if DYN {
            let srcs = block::xstep_srcs(s);
            let need = m.gpr_ready[slot!(srcs[0])].max(m.gpr_ready[slot!(srcs[1])]);
            let stall = need.saturating_sub(m.t);
            (stall, m.t + stall + 1)
        } else {
            (0, 0)
        };
        let taken_before = taken;
        // The arm bodies, shared across the opcode groups. Defined inside
        // the loop so `m`/`s`/`pc`/`sink` are in scope at the definition
        // site (macro hygiene resolves them there).
        macro_rules! rr {
            ($op:expr) => {{
                sink.fetch(pc, s.len1);
                m.gpr[slot!(s.a)] = $op.eval(m.gpr[slot!(s.b)], m.gpr[slot!(s.c)]);
            }};
        }
        macro_rules! ri {
            ($op:expr) => {{
                sink.fetch(pc, s.len1);
                m.gpr[slot!(s.a)] = $op.eval(m.gpr[slot!(s.b)], s.imm);
            }};
        }
        macro_rules! cmp_rr {
            ($cond:expr) => {{
                sink.fetch(pc, s.len1);
                m.gpr[slot!(s.a)] =
                    if $cond.eval(m.gpr[slot!(s.b)], m.gpr[slot!(s.c)]) { u32::MAX } else { 0 };
            }};
        }
        macro_rules! cmp_ri {
            ($cond:expr) => {{
                sink.fetch(pc, s.len1);
                m.gpr[slot!(s.a)] = if $cond.eval(m.gpr[slot!(s.b)], s.imm) { u32::MAX } else { 0 };
            }};
        }
        macro_rules! un {
            ($op:expr) => {{
                sink.fetch(pc, s.len1);
                m.gpr[slot!(s.a)] = $op.eval(m.gpr[slot!(s.b)]);
            }};
        }
        // The memory arms run their fault pre-check before any sink traffic:
        // `step()` redoes the full per-instruction sequence (fetch emission
        // included) and then raises the canonical fault, so the engine must
        // leave no trace of the bailing instruction behind — which is also
        // why these arms emit their own fetch only after the check passes.
        // Widths are powers of two; the and-mask alignment test avoids the
        // hardware divide `%` costs with a runtime divisor.
        macro_rules! ld {
            ($bl:literal, $a:ident, $val:expr) => {{
                let ea = m.gpr[slot!(s.b)].wrapping_add(s.imm);
                if ea as u64 + $bl > m.mem.len() as u64 || ea & ($bl as u32 - 1) != 0 {
                    return Err(Bail { i, d, pending, taken, untaken, events: ev, cycles: cyc });
                }
                sink.fetch(pc, s.len1);
                sink.read(ea, $bl as u8);
                let $a = ea as usize;
                m.gpr[slot!(s.a)] = $val;
                // Result ready `load_delay` cycles after issue (one on
                // the static path, where issue time is `base + cum`).
                m.gpr_ready[slot!(s.a)] =
                    if DYN { t_next + ldelay } else { base + u64::from(s.cum) + 1 };
            }};
        }
        macro_rules! st {
            ($bl:literal, $a:ident, $v:ident, $put:expr) => {{
                let ea = m.gpr[slot!(s.b)].wrapping_add(s.imm);
                if ea as u64 + $bl > m.mem.len() as u64
                    || ea & ($bl as u32 - 1) != 0
                    || ea < m.data_base
                {
                    return Err(Bail { i, d, pending, taken, untaken, events: ev, cycles: cyc });
                }
                sink.fetch(pc, s.len1);
                sink.write(ea, $bl as u8);
                let $a = ea as usize;
                let $v = m.gpr[slot!(s.a)];
                $put;
            }};
        }
        // The fused-pair arm bodies (see `block::fuse_pair` for the
        // operand packing): two fetches, two effects, one dispatch. The
        // extra `len1` advance between the halves keeps the fetch stream
        // byte-identical to the unfused steps; none of the fused
        // components touch memory, so no other sink traffic moves.
        macro_rules! ri_mv {
            ($op:expr) => {{
                sink.fetch(pc, s.len1);
                m.gpr[slot!(s.a)] = $op.eval(m.gpr[slot!(s.b)], s.imm);
                pc += u32::from(s.len1);
                sink.fetch(pc, s.tail);
                m.gpr[slot!(s.c)] = m.gpr[slot!(s.aux)];
            }};
        }
        macro_rules! mv_ri {
            ($op:expr) => {{
                sink.fetch(pc, s.len1);
                m.gpr[slot!(s.a)] = m.gpr[slot!(s.b)];
                pc += u32::from(s.len1);
                sink.fetch(pc, s.tail);
                m.gpr[slot!(s.c)] = $op.eval(m.gpr[slot!(s.aux)], s.imm);
            }};
        }
        macro_rules! rr_mv {
            ($op:expr) => {{
                sink.fetch(pc, s.len1);
                m.gpr[slot!(s.a)] = $op.eval(m.gpr[slot!(s.b)], m.gpr[slot!(s.c)]);
                pc += u32::from(s.len1);
                sink.fetch(pc, s.tail);
                m.gpr[slot!(s.aux)] = m.gpr[slot!(s.aux >> 8)];
            }};
        }
        macro_rules! mv_rr {
            ($op:expr) => {{
                sink.fetch(pc, s.len1);
                m.gpr[slot!(s.a)] = m.gpr[slot!(s.b)];
                pc += u32::from(s.len1);
                sink.fetch(pc, s.tail);
                m.gpr[slot!(s.c)] = $op.eval(m.gpr[slot!(s.aux)], m.gpr[slot!(s.aux >> 8)]);
            }};
        }
        macro_rules! ri_br {
            ($op:expr) => {{
                sink.fetch(pc, s.len1);
                m.gpr[slot!(s.a)] = $op.eval(m.gpr[slot!(s.b)], s.imm);
                pc += u32::from(s.len1);
                sink.fetch(pc, s.tail);
                pending = Some(s.aux);
            }};
        }
        // One flat jump per micro-op: the opcode byte already encodes the
        // ALU operation / condition / width / branch sense, so no arm
        // re-dispatches on a second memory-loaded operand.
        match s.code {
            opc::ADD_RR => rr!(AluOp::Add),
            opc::SUB_RR => rr!(AluOp::Sub),
            opc::AND_RR => rr!(AluOp::And),
            opc::OR_RR => rr!(AluOp::Or),
            opc::XOR_RR => rr!(AluOp::Xor),
            opc::SHL_RR => rr!(AluOp::Shl),
            opc::SHR_RR => rr!(AluOp::Shr),
            opc::SHRA_RR => rr!(AluOp::Shra),
            opc::ADD_RI => ri!(AluOp::Add),
            opc::SUB_RI => ri!(AluOp::Sub),
            opc::AND_RI => ri!(AluOp::And),
            opc::OR_RI => ri!(AluOp::Or),
            opc::XOR_RI => ri!(AluOp::Xor),
            opc::SHL_RI => ri!(AluOp::Shl),
            opc::SHR_RI => ri!(AluOp::Shr),
            opc::SHRA_RI => ri!(AluOp::Shra),
            opc::EQ_RR => cmp_rr!(Cond::Eq),
            opc::NE_RR => cmp_rr!(Cond::Ne),
            opc::LT_RR => cmp_rr!(Cond::Lt),
            opc::LTU_RR => cmp_rr!(Cond::Ltu),
            opc::LE_RR => cmp_rr!(Cond::Le),
            opc::LEU_RR => cmp_rr!(Cond::Leu),
            opc::GT_RR => cmp_rr!(Cond::Gt),
            opc::GTU_RR => cmp_rr!(Cond::Gtu),
            opc::GE_RR => cmp_rr!(Cond::Ge),
            opc::GEU_RR => cmp_rr!(Cond::Geu),
            opc::EQ_RI => cmp_ri!(Cond::Eq),
            opc::NE_RI => cmp_ri!(Cond::Ne),
            opc::LT_RI => cmp_ri!(Cond::Lt),
            opc::LTU_RI => cmp_ri!(Cond::Ltu),
            opc::LE_RI => cmp_ri!(Cond::Le),
            opc::LEU_RI => cmp_ri!(Cond::Leu),
            opc::GT_RI => cmp_ri!(Cond::Gt),
            opc::GTU_RI => cmp_ri!(Cond::Gtu),
            opc::GE_RI => cmp_ri!(Cond::Ge),
            opc::GEU_RI => cmp_ri!(Cond::Geu),
            opc::NEG => un!(UnOp::Neg),
            opc::INV => un!(UnOp::Inv),
            opc::MV => un!(UnOp::Mv),
            opc::MOVI => {
                sink.fetch(pc, s.len1);
                m.gpr[slot!(s.a)] = s.imm;
            }
            opc::LD_B => ld!(1u64, a, m.mem[a] as i8 as i32 as u32),
            opc::LD_BU => ld!(1u64, a, m.mem[a] as u32),
            opc::LD_H => ld!(2u64, a, i16::from_le_bytes([m.mem[a], m.mem[a + 1]]) as i32 as u32),
            opc::LD_HU => ld!(2u64, a, u16::from_le_bytes([m.mem[a], m.mem[a + 1]]) as u32),
            opc::LD_W => {
                ld!(4u64, a, u32::from_le_bytes(m.mem[a..a + 4].try_into().expect("4-byte slice")))
            }
            opc::LD_ABS => {
                // Pre-validated at lowering time: cannot fault.
                sink.fetch(pc, s.len1);
                sink.read(s.imm, 4);
                let a = s.imm as usize;
                m.gpr[slot!(s.a)] =
                    u32::from_le_bytes(m.mem[a..a + 4].try_into().expect("4-byte slice"));
                m.gpr_ready[slot!(s.a)] =
                    if DYN { t_next + ldelay } else { base + u64::from(s.cum) + 1 };
            }
            opc::ST_B => st!(1u64, a, v, m.mem[a] = v as u8),
            opc::ST_H => {
                st!(2u64, a, v, m.mem[a..a + 2].copy_from_slice(&(v as u16).to_le_bytes()))
            }
            opc::ST_W => st!(4u64, a, v, m.mem[a..a + 4].copy_from_slice(&v.to_le_bytes())),
            opc::BR => {
                sink.fetch(pc, s.len1);
                pending = Some(s.imm);
            }
            opc::BC_Z => {
                sink.fetch(pc, s.len1);
                if m.gpr[slot!(s.a)] == 0 {
                    pending = Some(s.imm);
                    taken += 1;
                } else {
                    pending = Some(s.aux);
                    untaken += 1;
                }
            }
            opc::BC_NZ => {
                sink.fetch(pc, s.len1);
                if m.gpr[slot!(s.a)] != 0 {
                    pending = Some(s.imm);
                    taken += 1;
                } else {
                    pending = Some(s.aux);
                    untaken += 1;
                }
            }
            opc::JR => {
                sink.fetch(pc, s.len1);
                pending = Some(m.gpr[slot!(s.a)]);
            }
            opc::JC_Z => {
                sink.fetch(pc, s.len1);
                if m.gpr[slot!(s.a)] == 0 {
                    pending = Some(m.gpr[slot!(s.b)]);
                    taken += 1;
                } else {
                    pending = Some(s.aux);
                    untaken += 1;
                }
            }
            opc::JC_NZ => {
                sink.fetch(pc, s.len1);
                if m.gpr[slot!(s.a)] != 0 {
                    pending = Some(m.gpr[slot!(s.b)]);
                    taken += 1;
                } else {
                    pending = Some(s.aux);
                    untaken += 1;
                }
            }
            opc::JL => {
                // Read the target before writing the link — they may be
                // the same register (the interpreter reads first too).
                sink.fetch(pc, s.len1);
                let dest = m.gpr[slot!(s.a)];
                m.gpr[slot!(s.b)] = s.imm;
                pending = Some(dest);
            }
            opc::JAL => {
                sink.fetch(pc, s.len1);
                m.gpr[slot!(s.a)] = s.aux;
                pending = Some(s.imm);
            }
            opc::NOP => sink.fetch(pc, s.len1),
            opc::ADD_RI_MV => ri_mv!(AluOp::Add),
            opc::SUB_RI_MV => ri_mv!(AluOp::Sub),
            opc::AND_RI_MV => ri_mv!(AluOp::And),
            opc::OR_RI_MV => ri_mv!(AluOp::Or),
            opc::XOR_RI_MV => ri_mv!(AluOp::Xor),
            opc::SHL_RI_MV => ri_mv!(AluOp::Shl),
            opc::SHR_RI_MV => ri_mv!(AluOp::Shr),
            opc::SHRA_RI_MV => ri_mv!(AluOp::Shra),
            opc::ADD_MV_RI => mv_ri!(AluOp::Add),
            opc::SUB_MV_RI => mv_ri!(AluOp::Sub),
            opc::AND_MV_RI => mv_ri!(AluOp::And),
            opc::OR_MV_RI => mv_ri!(AluOp::Or),
            opc::XOR_MV_RI => mv_ri!(AluOp::Xor),
            opc::SHL_MV_RI => mv_ri!(AluOp::Shl),
            opc::SHR_MV_RI => mv_ri!(AluOp::Shr),
            opc::SHRA_MV_RI => mv_ri!(AluOp::Shra),
            opc::ADD_RR_MV => rr_mv!(AluOp::Add),
            opc::SUB_RR_MV => rr_mv!(AluOp::Sub),
            opc::AND_RR_MV => rr_mv!(AluOp::And),
            opc::OR_RR_MV => rr_mv!(AluOp::Or),
            opc::XOR_RR_MV => rr_mv!(AluOp::Xor),
            opc::SHL_RR_MV => rr_mv!(AluOp::Shl),
            opc::SHR_RR_MV => rr_mv!(AluOp::Shr),
            opc::SHRA_RR_MV => rr_mv!(AluOp::Shra),
            opc::ADD_MV_RR => mv_rr!(AluOp::Add),
            opc::SUB_MV_RR => mv_rr!(AluOp::Sub),
            opc::AND_MV_RR => mv_rr!(AluOp::And),
            opc::OR_MV_RR => mv_rr!(AluOp::Or),
            opc::XOR_MV_RR => mv_rr!(AluOp::Xor),
            opc::SHL_MV_RR => mv_rr!(AluOp::Shl),
            opc::SHR_MV_RR => mv_rr!(AluOp::Shr),
            opc::SHRA_MV_RR => mv_rr!(AluOp::Shra),
            opc::ADD_RI_BR => ri_br!(AluOp::Add),
            opc::SUB_RI_BR => ri_br!(AluOp::Sub),
            opc::AND_RI_BR => ri_br!(AluOp::And),
            opc::OR_RI_BR => ri_br!(AluOp::Or),
            opc::XOR_RI_BR => ri_br!(AluOp::Xor),
            opc::SHL_RI_BR => ri_br!(AluOp::Shl),
            opc::SHR_RI_BR => ri_br!(AluOp::Shr),
            opc::SHRA_RI_BR => ri_br!(AluOp::Shra),
            opc::BR_NOP => {
                sink.fetch(pc, s.len1);
                pending = Some(s.imm);
                pc += u32::from(s.len1);
                sink.fetch(pc, s.tail);
            }
            opc::BC_Z_NOP => {
                sink.fetch(pc, s.len1);
                if m.gpr[slot!(s.a)] == 0 {
                    pending = Some(s.imm);
                    taken += 1;
                } else {
                    pending = Some(s.aux);
                    untaken += 1;
                }
                pc += u32::from(s.len1);
                sink.fetch(pc, s.tail);
            }
            opc::BC_NZ_NOP => {
                sink.fetch(pc, s.len1);
                if m.gpr[slot!(s.a)] != 0 {
                    pending = Some(s.imm);
                    taken += 1;
                } else {
                    pending = Some(s.aux);
                    untaken += 1;
                }
                pc += u32::from(s.len1);
                sink.fetch(pc, s.tail);
            }
            opc::BR_MV => {
                sink.fetch(pc, s.len1);
                pending = Some(s.imm);
                pc += u32::from(s.len1);
                sink.fetch(pc, s.tail);
                m.gpr[slot!(s.a)] = m.gpr[slot!(s.b)];
            }
            opc::MV_MV => {
                sink.fetch(pc, s.len1);
                m.gpr[slot!(s.a)] = m.gpr[slot!(s.b)];
                pc += u32::from(s.len1);
                sink.fetch(pc, s.tail);
                m.gpr[slot!(s.c)] = m.gpr[slot!(s.aux)];
            }
            opc::MV_BC_NZ => {
                sink.fetch(pc, s.len1);
                m.gpr[slot!(s.a)] = m.gpr[slot!(s.b)];
                pc += u32::from(s.len1);
                sink.fetch(pc, s.tail);
                if m.gpr[slot!(s.c)] != 0 {
                    pending = Some(s.imm);
                    taken += 1;
                } else {
                    pending = Some(s.aux);
                    untaken += 1;
                }
            }
            code => unreachable!("invalid packed opcode {code}"),
        }
        if DYN {
            // Commit the issue resolved above, then replay the
            // interpreter's post-execute bookkeeping: forwarded results
            // become ready at issue time (overwriting any pending load
            // ready time — the staleness the static path cannot see),
            // and resolved control transfers update the shared predictor
            // and charge the spec's misfetch bubbles. `pc` still points
            // at this step: fused arms are the only ones that advance it
            // mid-step and never occur in dynamic blocks.
            if stall > 0 {
                ev += 1;
                cyc += stall;
            }
            m.t = t_next;
            match s.code {
                opc::ALU_RR..=opc::MOVI => m.gpr_ready[slot!(s.a)] = t_next,
                opc::JL => m.gpr_ready[slot!(s.b)] = t_next,
                opc::JAL => m.gpr_ready[slot!(s.a)] = t_next,
                _ => {}
            }
            let resolved = match s.code {
                opc::BR | opc::JR | opc::JL | opc::JAL => Some(true),
                opc::BC_Z | opc::BC_NZ | opc::JC_Z | opc::JC_NZ => Some(taken > taken_before),
                _ => None,
            };
            if let Some(tk) = resolved {
                let mispredicted = m.predict_and_update(pc, tk);
                if mispredicted && penalty > 0 {
                    m.stats.mispredicts += 1;
                    m.stats.misfetch_cycles += penalty;
                    m.t += penalty;
                }
            }
        }
        pc += u32::from(s.tail);
    }

    // Whole-block completion: fold the block's static sums and dynamic
    // outcomes into the segment accumulator (local adds, no counter
    // memory traffic) and advance the per-block architectural state. The
    // dynamic path counted its stalls and advanced the clock per step;
    // the static path derives both from the lowering-time schedule plus
    // the entry stall.
    if DYN {
        acc.absorb(b, ev, cyc, taken, untaken);
    } else {
        acc.absorb(
            b,
            b.static_stalls + u64::from(d > 0),
            b.static_stall_cycles + d,
            taken,
            untaken,
        );
        m.t = base + b.cycles;
    }
    acc.words += b.words_after_first + u64::from(m.last_fetch_word != Some(b.first_word));
    m.last_fetch_word = Some(b.last_word);
    if m.isa == Isa::D16x {
        // Fusion settlement: the pair split across the block's entry edge
        // (the machine's carried A-half against the block's head shape),
        // then the statically counted internal pairs, then the exit-side
        // A-half handed to whatever retires next.
        if let (Some((epc, a)), Some((kind, reg))) = (m.fuse_prev, b.head_fuse) {
            if epc == b.start_pc && head_pair_hit(a, kind, reg) {
                match a {
                    FuseA::Cmp(_) => acc.fused_cmp_br += 1,
                    FuseA::Lui(_) => acc.fused_lui_addi += 1,
                }
            }
        }
        acc.fused_cmp_br += b.fused_cmp_br;
        acc.fused_lui_addi += b.fused_lui_addi;
        m.fuse_prev = b.exit_fuse;
    }
    match b.exit {
        BlockExit::FallThrough => m.pc = pc,
        BlockExit::PendingAtEnd => {
            m.pending_target = pending;
            m.pc = pc;
        }
        BlockExit::TakePending => {
            m.pc = pending.expect("a TakePending block's control micro-op set the target");
        }
    }
    Ok(())
}

/// Whether a retired A-half completes the (kind, register) head shape of
/// a block's first instruction — the packed-block form of
/// [`crate::machine::fuse_b_matches`].
fn head_pair_hit(a: FuseA, kind: u8, reg: u8) -> bool {
    match a {
        FuseA::Cmp(r) => kind == block::FUSE_CMP_BR && r == reg,
        FuseA::Lui(r) => kind == block::FUSE_LUI_ADDI && r == reg,
    }
}

/// Adds the per-class counts of `n` retired instructions summarized by
/// `tl` (plus the dynamic conditional-branch outcomes) to the machine,
/// exactly as `n` interpreter steps would have.
fn apply_tally(m: &mut Machine, n: u64, tl: &block::Tally, taken: u64, untaken: u64) {
    m.stats.insns += n;
    m.stats.loads += tl.loads;
    m.stats.stores += tl.stores;
    m.stats.nops += tl.ex_nop;
    m.stats.branches += tl.ex_control;
    m.stats.taken_branches += tl.static_taken + taken;
    m.tele.add(SimCounter::IfInsns, n);
    m.tele.add(SimCounter::IdInsns, n);
    m.tele.add(SimCounter::ExAlu, tl.ex_alu);
    m.tele.add(SimCounter::ExControl, tl.ex_control);
    m.tele.add(SimCounter::ExNop, tl.ex_nop);
    m.tele.add(SimCounter::MemLoads, tl.loads);
    m.tele.add(SimCounter::MemStores, tl.stores);
    m.tele.add(SimCounter::WbGpr, tl.wb_gpr);
    m.tele.add(SimCounter::CtlTaken, tl.static_taken + taken);
    m.tele.add(SimCounter::CtlUntaken, untaken);
}

/// The cold path out of [`exec_block`]: micro-op `i` would fault. Settle
/// the accounts for the `i` completed micro-ops (recomputing the prefix
/// sums the completion path gets statically), restore the architectural
/// PC/pending/scoreboard state, and hand the faulting instruction to
/// [`Machine::step`], which re-derives and raises the canonical
/// [`SimError`]. The faulting micro-op's own stall (static flag, or the
/// dynamic entry stall when `i == 0`) is *not* settled here — `step()`
/// rediscovers it from the scoreboard and accounts it before faulting,
/// exactly as the interpreter would.
#[cold]
fn bail(
    m: &mut Machine,
    b: &Block,
    why: &Bail,
    dyn_mode: bool,
    tele: &mut Counters,
    sink: &mut impl AccessSink,
) -> Result<(), SimError> {
    let Bail { i, d, pending, taken, untaken, events, cycles } = *why;
    // `i` counts packed steps; fused steps retire two instructions, so
    // every per-instruction prefix sum walks the step widths.
    let n: u32 = b.steps[..i].iter().map(|s| block::step_width(s.code)).sum();
    let prefix = block::xtally(&b.steps[..i]);
    apply_tally(m, u64::from(n), &prefix, taken, untaken);
    if dyn_mode {
        // The dynamic path already advanced the clock, ready times, and
        // predictor per retired step; only the prefix's stall counters
        // remain unapplied (they ride in the accumulator on the fast
        // path, which was flushed before `bail`).
        if cycles > 0 {
            m.stats.interlocks += cycles;
            m.stats.load_interlocks += cycles;
            m.tele.add(SimCounter::LoadEvents, events);
            m.tele.add(SimCounter::LoadCycles, cycles);
        }
    } else if i > 0 {
        let stalls = b.steps[..i].iter().filter(|s| s.stall > 0).count() as u64;
        let cycles = b.steps[..i].iter().map(|s| u64::from(s.stall)).sum::<u64>() + d;
        if cycles > 0 {
            m.stats.interlocks += cycles;
            m.stats.load_interlocks += cycles;
            m.tele.add(SimCounter::LoadEvents, stalls + u64::from(d > 0));
            m.tele.add(SimCounter::LoadCycles, cycles);
        }
        m.t += d + u64::from(b.steps[i - 1].cum);
    }
    // Fetch-unit settlement over the retired prefix, walking the real
    // byte extents of every component instruction (two per fused step)
    // with the interpreter's two-unit rule at the spec's fetch width: a
    // transition to the instruction's first unit, then one more when its
    // last byte straddles into the next unit. `last` tracks the final
    // component for the fusion-state settlement below.
    let fmask = m.pspec.fetch_mask();
    let mut words = 0u64;
    let mut prev = m.last_fetch_word;
    let mut pc = b.start_pc;
    let mut last: Option<(u32, u8)> = None;
    for s in &b.steps[..i] {
        let segs = [s.len1, s.tail];
        let lo = usize::from(block::unfuse(s.code).is_none());
        for &seg in &segs[lo..] {
            let w0 = pc & fmask;
            if prev != Some(w0) {
                words += 1;
                prev = Some(w0);
            }
            let w1 = (pc + u32::from(seg) - 1) & fmask;
            if prev != Some(w1) {
                words += 1;
                prev = Some(w1);
            }
            last = Some((pc, seg));
            pc += u32::from(seg);
        }
    }
    m.stats.ifetch_words += words;
    m.tele.add(SimCounter::IfWords, words);
    m.last_fetch_word = prev;
    m.pending_target = pending;
    m.pc = pc;
    if m.isa == Isa::D16x && n > 0 {
        // Same settlement as block completion (the accumulator was
        // flushed before `bail`, so the counters take the hits directly):
        // the entry-edge pair, then internal pairs whose B-half retired
        // (semantic index below `n`), then the carried state — the last
        // retired instruction's A-shape, reread from the decode array.
        if let (Some((epc, a)), Some((kind, reg))) = (m.fuse_prev, b.head_fuse) {
            if epc == b.start_pc && head_pair_hit(a, kind, reg) {
                match a {
                    FuseA::Cmp(_) => {
                        m.stats.fused_cmp_br += 1;
                        m.tele.bump(SimCounter::FuseCmpBr);
                    }
                    FuseA::Lui(_) => {
                        m.stats.fused_lui_addi += 1;
                        m.tele.bump(SimCounter::FuseLuiAddi);
                    }
                }
            }
        }
        for &(bi, kind) in b.fuse_pairs.iter() {
            if bi < n {
                if kind == block::FUSE_CMP_BR {
                    m.stats.fused_cmp_br += 1;
                    m.tele.bump(SimCounter::FuseCmpBr);
                } else {
                    m.stats.fused_lui_addi += 1;
                    m.tele.bump(SimCounter::FuseLuiAddi);
                }
            }
        }
        let (lpc, llen) = last.expect("n > 0 retired at least one component");
        let idx = ((lpc - m.text_base) / m.isa.insn_bytes()) as usize;
        let (insn, _) = m.decoded[idx].expect("a retired component decoded");
        m.fuse_prev = fuse_a_shape(&insn).map(|a| (lpc + u32::from(llen), a));
    }
    tele.add(EngineCounter::UopInsns, u64::from(n));
    let before = m.stats.insns;
    let r = m.step(sink);
    tele.add(EngineCounter::FallbackInsns, m.stats.insns - before);
    r
}
