//! Memory-access observation: the interface between the pipeline and the
//! memory-system models in `d16-mem`.

/// Receives every memory reference the pipeline makes, in program order.
///
/// Cache and fetch-buffer models implement this to measure traffic and miss
/// rates without re-running the functional simulation; [`TraceRecorder`]
/// implements it to capture a replayable trace.
pub trait AccessSink {
    /// An instruction fetch of `bytes` bytes at `addr` (2 for D16, 4 for
    /// DLXe).
    fn fetch(&mut self, addr: u32, bytes: u8);
    /// A data read of `bytes` bytes at `addr`.
    fn read(&mut self, addr: u32, bytes: u8);
    /// A data write of `bytes` bytes at `addr`.
    fn write(&mut self, addr: u32, bytes: u8);
}

/// Discards all events; used when only [`crate::ExecStats`] are wanted.
#[derive(Copy, Clone, Debug, Default)]
pub struct NullSink;

impl AccessSink for NullSink {
    fn fetch(&mut self, _addr: u32, _bytes: u8) {}
    fn read(&mut self, _addr: u32, _bytes: u8) {}
    fn write(&mut self, _addr: u32, _bytes: u8) {}
}

/// One recorded memory reference.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Access {
    /// Instruction fetch.
    Fetch(u32, u8),
    /// Data read.
    Read(u32, u8),
    /// Data write.
    Write(u32, u8),
}

impl Access {
    /// The referenced address.
    pub fn addr(&self) -> u32 {
        match self {
            Access::Fetch(a, _) | Access::Read(a, _) | Access::Write(a, _) => *a,
        }
    }

    /// The access width in bytes.
    pub fn bytes(&self) -> u8 {
        match self {
            Access::Fetch(_, b) | Access::Read(_, b) | Access::Write(_, b) => *b,
        }
    }
}

/// Records the full access trace for later replay through several cache
/// configurations — one functional run, many memory-system experiments,
/// exactly how the paper drove `dinero`.
#[derive(Clone, Debug, Default)]
pub struct TraceRecorder {
    /// The recorded references in program order.
    pub trace: Vec<Access>,
}

impl TraceRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Replays the trace into another sink.
    pub fn replay(&self, sink: &mut impl AccessSink) {
        for a in &self.trace {
            match *a {
                Access::Fetch(addr, b) => sink.fetch(addr, b),
                Access::Read(addr, b) => sink.read(addr, b),
                Access::Write(addr, b) => sink.write(addr, b),
            }
        }
    }
}

impl AccessSink for TraceRecorder {
    fn fetch(&mut self, addr: u32, bytes: u8) {
        self.trace.push(Access::Fetch(addr, bytes));
    }
    fn read(&mut self, addr: u32, bytes: u8) {
        self.trace.push(Access::Read(addr, bytes));
    }
    fn write(&mut self, addr: u32, bytes: u8) {
        self.trace.push(Access::Write(addr, bytes));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recorder_replays_in_order() {
        let mut r = TraceRecorder::new();
        r.fetch(0x1000, 4);
        r.read(0x2000, 2);
        r.write(0x2004, 1);
        let mut out = TraceRecorder::new();
        r.replay(&mut out);
        assert_eq!(out.trace, r.trace);
        assert_eq!(r.trace[1], Access::Read(0x2000, 2));
        assert_eq!(r.trace[1].addr(), 0x2000);
        assert_eq!(r.trace[2].bytes(), 1);
    }
}
