//! Memory-access observation: the interface between the pipeline and the
//! memory-system models in `d16-mem`.

use std::sync::atomic::{AtomicU64, Ordering};

/// Receives every memory reference the pipeline makes, in program order.
///
/// Cache and fetch-buffer models implement this to measure traffic and miss
/// rates without re-running the functional simulation; [`TraceRecorder`]
/// implements it to capture a replayable trace.
pub trait AccessSink {
    /// An instruction fetch of `bytes` bytes at `addr` (2 for D16, 4 for
    /// DLXe).
    fn fetch(&mut self, addr: u32, bytes: u8);
    /// A data read of `bytes` bytes at `addr`.
    fn read(&mut self, addr: u32, bytes: u8);
    /// A data write of `bytes` bytes at `addr`.
    fn write(&mut self, addr: u32, bytes: u8);
}

/// Discards all events; used when only [`crate::ExecStats`] are wanted.
#[derive(Copy, Clone, Debug, Default)]
pub struct NullSink;

impl AccessSink for NullSink {
    #[inline]
    fn fetch(&mut self, _addr: u32, _bytes: u8) {}
    #[inline]
    fn read(&mut self, _addr: u32, _bytes: u8) {}
    #[inline]
    fn write(&mut self, _addr: u32, _bytes: u8) {}
}

/// Order-sensitive FNV-1a digest of the access stream — kind, address,
/// and width of every reference, in program order. Two runs that feed a
/// `ChecksumSink` the same checksum made the same references in the same
/// order; the fuzzer's engine oracle uses this to compare the interpreter
/// and the block engine without storing either trace.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct ChecksumSink {
    hash: u64,
    count: u64,
}

impl Default for ChecksumSink {
    fn default() -> Self {
        ChecksumSink { hash: 0xcbf2_9ce4_8422_2325, count: 0 }
    }
}

impl ChecksumSink {
    /// A fresh digest.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The digest over everything absorbed so far.
    #[must_use]
    pub fn digest(&self) -> u64 {
        self.hash
    }

    /// Number of references absorbed.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    #[inline]
    fn absorb(&mut self, kind: u8, addr: u32, bytes: u8) {
        let word = u64::from(kind) << 40 | u64::from(bytes) << 32 | u64::from(addr);
        for shift in [0u32, 16, 32] {
            self.hash ^= (word >> shift) & 0xffff;
            self.hash = self.hash.wrapping_mul(0x100_0000_01b3);
        }
        self.count += 1;
    }
}

impl AccessSink for ChecksumSink {
    #[inline]
    fn fetch(&mut self, addr: u32, bytes: u8) {
        self.absorb(0, addr, bytes);
    }
    #[inline]
    fn read(&mut self, addr: u32, bytes: u8) {
        self.absorb(1, addr, bytes);
    }
    #[inline]
    fn write(&mut self, addr: u32, bytes: u8) {
        self.absorb(2, addr, bytes);
    }
}

/// One recorded memory reference.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Access {
    /// Instruction fetch.
    Fetch(u32, u8),
    /// Data read.
    Read(u32, u8),
    /// Data write.
    Write(u32, u8),
}

impl Access {
    /// The referenced address.
    pub fn addr(&self) -> u32 {
        match self {
            Access::Fetch(a, _) | Access::Read(a, _) | Access::Write(a, _) => *a,
        }
    }

    /// The access width in bytes.
    pub fn bytes(&self) -> u8 {
        match self {
            Access::Fetch(_, b) | Access::Read(_, b) | Access::Write(_, b) => *b,
        }
    }

    fn kind(&self) -> usize {
        match self {
            Access::Fetch(..) => 0,
            Access::Read(..) => 1,
            Access::Write(..) => 2,
        }
    }
}

// Header-byte layout: bits 0-1 kind, bits 2-3 width code, bits 4-5 address
// tag. Widths are restricted to {1, 2, 4, 8} — everything the pipeline and
// the fetch-buffer models emit.
const WIDTHS: [u8; 4] = [1, 2, 4, 8];

const TAG_SEQ: u8 = 0; // addr == next expected address for this kind
const TAG_D8: u8 = 1; // i8 delta from the expected address
const TAG_D16: u8 = 2; // i16 delta (little-endian)
const TAG_ABS: u8 = 3; // absolute u32 (little-endian)

fn width_code(bytes: u8) -> Option<u8> {
    match bytes {
        1 => Some(0),
        2 => Some(1),
        4 => Some(2),
        8 => Some(3),
        _ => None,
    }
}

/// Records the full access trace for later replay through several cache
/// configurations — one functional run, many memory-system experiments,
/// exactly how the paper drove `dinero`.
///
/// Storage is a delta-compressed byte stream, not a `Vec` of [`Access`]:
/// each record is one header byte plus 0–4 address bytes, keyed off the
/// previous access of the same kind. Instruction streams are mostly
/// sequential and data streams mostly local, so real traces land near one
/// to two bytes per reference instead of the eight an enum vector costs —
/// see [`TraceRecorder::memory_bytes`]. The recorder also counts replays
/// ([`TraceRecorder::replay_count`]) so experiments can assert a trace was
/// swept exactly once.
#[derive(Debug, Default)]
pub struct TraceRecorder {
    bytes: Vec<u8>,
    len: usize,
    /// Expected next address per kind (previous addr + previous width);
    /// mirrors the decoder's state.
    next: [u32; 3],
    replays: AtomicU64,
    /// First unencodable reference seen, if any. A recorder fed a width
    /// outside {1, 2, 4, 8} is *poisoned*: the bad record is dropped and
    /// the description kept, so the measurement layer reports a typed
    /// error instead of the process aborting mid-sweep.
    error: Option<String>,
}

impl TraceRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of recorded references.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Bytes of storage the encoded trace occupies (excluding unused
    /// capacity) — the figure the compact representation optimizes.
    pub fn memory_bytes(&self) -> usize {
        self.bytes.len()
    }

    /// How many times [`TraceRecorder::replay`] has run over this trace.
    pub fn replay_count(&self) -> u64 {
        self.replays.load(Ordering::Relaxed)
    }

    /// The first unencodable reference this recorder was fed, if any.
    /// A poisoned trace must not be measured or persisted; see
    /// [`TraceRecorder::push`].
    pub fn error(&self) -> Option<&str> {
        self.error.as_deref()
    }

    /// Appends one reference to the trace.
    ///
    /// A reference whose width is outside {1, 2, 4, 8} — nothing the
    /// pipeline or the fetch-buffer models emit — cannot be encoded. It
    /// is dropped and the recorder poisoned ([`TraceRecorder::error`])
    /// rather than panicking inside a sweep.
    pub fn push(&mut self, a: Access) {
        let kind = a.kind();
        let (addr, bytes) = (a.addr(), a.bytes());
        let Some(code) = width_code(bytes) else {
            if self.error.is_none() {
                self.error =
                    Some(format!("unencodable access width {bytes} (expected 1, 2, 4, or 8)"));
            }
            return;
        };
        let header = kind as u8 | (code << 2);
        let delta = addr.wrapping_sub(self.next[kind]) as i32;
        if delta == 0 {
            self.bytes.push(header | (TAG_SEQ << 4));
        } else if let Ok(d) = i8::try_from(delta) {
            self.bytes.push(header | (TAG_D8 << 4));
            self.bytes.push(d as u8);
        } else if let Ok(d) = i16::try_from(delta) {
            self.bytes.push(header | (TAG_D16 << 4));
            self.bytes.extend_from_slice(&d.to_le_bytes());
        } else {
            self.bytes.push(header | (TAG_ABS << 4));
            self.bytes.extend_from_slice(&addr.to_le_bytes());
        }
        self.next[kind] = addr.wrapping_add(u32::from(bytes));
        self.len += 1;
    }

    /// The recorded references, decoded in program order.
    pub fn iter(&self) -> TraceIter<'_> {
        TraceIter { bytes: &self.bytes, pos: 0, next: [0; 3] }
    }

    /// The delta-compressed encoding, for persistence. Rebuild with
    /// [`TraceRecorder::from_encoded`].
    pub fn encoded_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Rebuilds a recorder from bytes captured by
    /// [`TraceRecorder::encoded_bytes`] holding `len` references.
    ///
    /// The stream is fully walked up front — recovering the encoder's
    /// per-kind address state and validating every record — so a
    /// truncated or damaged stream is rejected here instead of
    /// panicking inside a later [`TraceRecorder::replay`]. The replay
    /// counter starts at zero: replays of the restored copy are new
    /// work.
    ///
    /// # Errors
    ///
    /// Describes the first malformed record, or a record-count
    /// mismatch.
    pub fn from_encoded(bytes: Vec<u8>, len: usize) -> Result<TraceRecorder, String> {
        let mut pos = 0usize;
        let mut next = [0u32; 3];
        let mut count = 0usize;
        while pos < bytes.len() {
            let header = bytes[pos];
            pos += 1;
            let kind = usize::from(header & 0x3);
            if kind > 2 {
                return Err(format!("record {count}: invalid access kind"));
            }
            let width = WIDTHS[usize::from((header >> 2) & 0x3)];
            let extra = match (header >> 4) & 0x3 {
                TAG_SEQ => 0,
                TAG_D8 => 1,
                TAG_D16 => 2,
                _ => 4,
            };
            let Some(operand) = bytes.get(pos..pos + extra) else {
                return Err(format!("record {count}: truncated operand"));
            };
            let addr = match (header >> 4) & 0x3 {
                TAG_SEQ => next[kind],
                TAG_D8 => next[kind].wrapping_add(operand[0] as i8 as u32),
                TAG_D16 => {
                    let d = i16::from_le_bytes([operand[0], operand[1]]);
                    next[kind].wrapping_add(d as u32)
                }
                _ => u32::from_le_bytes(operand.try_into().expect("4-byte operand")),
            };
            pos += extra;
            next[kind] = addr.wrapping_add(u32::from(width));
            count += 1;
        }
        if count != len {
            return Err(format!("stream holds {count} records, expected {len}"));
        }
        Ok(TraceRecorder { bytes, len, next, replays: AtomicU64::new(0), error: None })
    }

    /// Replays the trace into another sink and bumps the replay counter.
    pub fn replay(&self, sink: &mut impl AccessSink) {
        for a in self.iter() {
            match a {
                Access::Fetch(addr, b) => sink.fetch(addr, b),
                Access::Read(addr, b) => sink.read(addr, b),
                Access::Write(addr, b) => sink.write(addr, b),
            }
        }
        self.replays.fetch_add(1, Ordering::Relaxed);
    }
}

impl Clone for TraceRecorder {
    fn clone(&self) -> Self {
        TraceRecorder {
            bytes: self.bytes.clone(),
            len: self.len,
            next: self.next,
            replays: AtomicU64::new(self.replay_count()),
            error: self.error.clone(),
        }
    }
}

/// Equality is over the recorded references only; the replay counter is
/// bookkeeping, not trace content.
impl PartialEq for TraceRecorder {
    fn eq(&self, other: &Self) -> bool {
        self.len == other.len && self.bytes == other.bytes
    }
}
impl Eq for TraceRecorder {}

impl AccessSink for TraceRecorder {
    #[inline]
    fn fetch(&mut self, addr: u32, bytes: u8) {
        self.push(Access::Fetch(addr, bytes));
    }
    #[inline]
    fn read(&mut self, addr: u32, bytes: u8) {
        self.push(Access::Read(addr, bytes));
    }
    #[inline]
    fn write(&mut self, addr: u32, bytes: u8) {
        self.push(Access::Write(addr, bytes));
    }
}

/// Decoding iterator over a [`TraceRecorder`]'s byte stream.
#[derive(Clone, Debug)]
pub struct TraceIter<'a> {
    bytes: &'a [u8],
    pos: usize,
    next: [u32; 3],
}

impl Iterator for TraceIter<'_> {
    type Item = Access;

    fn next(&mut self) -> Option<Access> {
        let header = *self.bytes.get(self.pos)?;
        self.pos += 1;
        let kind = usize::from(header & 0x3);
        let bytes = WIDTHS[usize::from((header >> 2) & 0x3)];
        let addr = match (header >> 4) & 0x3 {
            TAG_SEQ => self.next[kind],
            TAG_D8 => {
                let d = self.bytes[self.pos] as i8;
                self.pos += 1;
                self.next[kind].wrapping_add(d as u32)
            }
            TAG_D16 => {
                let d = i16::from_le_bytes([self.bytes[self.pos], self.bytes[self.pos + 1]]);
                self.pos += 2;
                self.next[kind].wrapping_add(d as u32)
            }
            _ => {
                let a = u32::from_le_bytes(
                    self.bytes[self.pos..self.pos + 4].try_into().expect("4-byte slice"),
                );
                self.pos += 4;
                a
            }
        };
        self.next[kind] = addr.wrapping_add(u32::from(bytes));
        Some(match kind {
            0 => Access::Fetch(addr, bytes),
            1 => Access::Read(addr, bytes),
            _ => Access::Write(addr, bytes),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recorder_replays_in_order() {
        let mut r = TraceRecorder::new();
        r.fetch(0x1000, 4);
        r.read(0x2000, 2);
        r.write(0x2004, 1);
        let mut out = TraceRecorder::new();
        r.replay(&mut out);
        assert_eq!(out, r);
        let v: Vec<Access> = r.iter().collect();
        assert_eq!(v[1], Access::Read(0x2000, 2));
        assert_eq!(v[1].addr(), 0x2000);
        assert_eq!(v[2].bytes(), 1);
        assert_eq!(r.replay_count(), 1);
        assert_eq!(out.replay_count(), 0);
    }

    #[test]
    fn encoding_roundtrips_every_tag() {
        let records = [
            Access::Fetch(0, 2),           // seq from reset state
            Access::Fetch(2, 2),           // seq
            Access::Fetch(100, 2),         // i8 delta
            Access::Fetch(40_000, 4),      // i16 delta
            Access::Fetch(0xDEAD_0000, 4), // absolute
            Access::Read(0xDEAD_0010, 4),  // per-kind state: independent of fetches
            Access::Read(0xDEAD_0014, 8),  // seq
            Access::Write(0xDEAD_0012, 1), // write state independent of reads
            Access::Write(0, 2),           // absolute backwards
            Access::Read(0xDEAD_0000, 1),  // negative i8/i16 delta path
        ];
        let mut r = TraceRecorder::new();
        for a in records {
            r.push(a);
        }
        assert_eq!(r.iter().collect::<Vec<_>>(), records);
        assert_eq!(r.len(), records.len());
    }

    #[test]
    fn sequential_stream_is_about_one_byte_per_record() {
        let mut r = TraceRecorder::new();
        for i in 0..10_000u32 {
            r.fetch(0x1000 + i * 2, 2);
        }
        // First record pays a delta; the rest are single header bytes.
        assert!(r.memory_bytes() <= 10_000 + 4, "{} bytes", r.memory_bytes());
        assert_eq!(r.len(), 10_000);
        let decoded: Vec<Access> = r.iter().collect();
        assert_eq!(decoded[9_999], Access::Fetch(0x1000 + 9_999 * 2, 2));
    }

    #[test]
    fn encoded_bytes_roundtrip_restores_trace_and_state() {
        let mut r = TraceRecorder::new();
        for a in [
            Access::Fetch(0x1000, 2),
            Access::Fetch(0x1002, 2),
            Access::Read(0xDEAD_0000, 4),
            Access::Write(0x80, 1),
            Access::Fetch(0x4000, 4),
        ] {
            r.push(a);
        }
        r.replay(&mut NullSink);
        let restored = TraceRecorder::from_encoded(r.encoded_bytes().to_vec(), r.len()).unwrap();
        assert_eq!(restored, r, "trace content equal");
        assert_eq!(restored.replay_count(), 0, "replays are bookkeeping, not content");
        // The recovered encoder state appends identically to the original.
        let (mut a, mut b) = (r, restored);
        a.push(Access::Fetch(0x4004, 4));
        b.push(Access::Fetch(0x4004, 4));
        assert_eq!(a, b);
    }

    #[test]
    fn from_encoded_rejects_damage() {
        let mut r = TraceRecorder::new();
        r.fetch(0x1000, 4);
        r.read(0xDEAD_0000, 4); // absolute: carries a 4-byte operand
        let bytes = r.encoded_bytes().to_vec();
        // Wrong record count.
        assert!(TraceRecorder::from_encoded(bytes.clone(), 3).is_err());
        // Truncated mid-operand.
        assert!(TraceRecorder::from_encoded(bytes[..bytes.len() - 1].to_vec(), 2).is_err());
        // An invalid access kind (header & 3 == 3).
        assert!(TraceRecorder::from_encoded(vec![0x03], 1).is_err());
        // The pristine stream still decodes.
        assert!(TraceRecorder::from_encoded(bytes, 2).is_ok());
    }

    #[test]
    fn bad_width_poisons_instead_of_panicking() {
        let mut r = TraceRecorder::new();
        r.fetch(0x1000, 4);
        assert!(r.error().is_none());
        r.read(0x2000, 3); // nothing in the encoding for width 3
        let msg = r.error().expect("recorder is poisoned");
        assert!(msg.contains("width 3"), "{msg}");
        // The bad record is dropped; the good prefix is intact, and the
        // first error sticks.
        r.write(0x3000, 5);
        assert!(r.error().unwrap().contains("width 3"));
        assert_eq!(r.len(), 1);
        assert_eq!(r.iter().collect::<Vec<_>>(), vec![Access::Fetch(0x1000, 4)]);
        let c = r.clone();
        assert!(c.error().is_some(), "poison survives cloning");
    }

    #[test]
    fn clone_preserves_trace_and_counter() {
        let mut r = TraceRecorder::new();
        r.fetch(8, 4);
        r.replay(&mut NullSink);
        let c = r.clone();
        assert_eq!(c, r);
        assert_eq!(c.replay_count(), 1);
        c.replay(&mut NullSink);
        assert_eq!(c.replay_count(), 2);
        assert_eq!(r.replay_count(), 1, "clones count replays independently");
    }
}
