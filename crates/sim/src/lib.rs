//! # d16-sim — the shared parameterized pipeline
//!
//! Executes linked D16 or DLXe images on the paper's pipeline model
//! (Figure 3): single issue at one instruction per cycle peak, one branch
//! delay slot, one load delay slot, and FPU-latency ("math unit")
//! interlocks. The timing shape is a [`PipelineSpec`] — depth 3..=8, an
//! optional branch predictor, and the fetch-unit width — whose default
//! (depth 5, no predictor, one-word fetch) is exactly the paper's
//! machine, byte for byte. The simulator produces the raw measurements
//! behind every table in the paper — path length, loads/stores,
//! interlock cycles, and fetch-unit-granular instruction fetch traffic —
//! and streams each memory reference to an [`AccessSink`] so the
//! `d16-mem` models can attach cache or fetch-buffer timing. A
//! [`PipelineSweep`] collector scores the whole depth × predictor ×
//! fetch-width grid against one execution.
//!
//! ```
//! use d16_asm::build;
//! use d16_isa::Isa;
//! use d16_sim::{Machine, NullSink};
//!
//! let image = build(Isa::D16, &["
//! _start: mvi r2, 6
//!         mvi r3, 7
//!         add r2, r3      ; two-address: r2 += r3
//!         trap 0
//! "])?;
//! let mut m = Machine::load(&image);
//! let stop = m.run(1_000, &mut NullSink)?;
//! assert_eq!(stop.exit_status(), Some(13));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

mod access;
mod block;
mod engine;
mod machine;
mod psweep;
mod stats;

pub use access::{Access, AccessSink, ChecksumSink, NullSink, TraceIter, TraceRecorder};
pub use engine::{BlockEngine, Engine, EngineCounter, ENGINE_SCHEMA};
pub use machine::{
    FpuLatency, Machine, PipelineSpec, Predictor, SimError, BP_ENTRIES, FETCH_WIDTHS,
    PIPELINE_DEPTHS,
};
pub use psweep::{PipelineSweep, SweepCell, SweepResult, SWEEP_CELLS};
pub use stats::{ExecStats, SimCounter, StopReason, SIM_SCHEMA};

#[cfg(test)]
mod tests {
    use super::*;
    use d16_asm::build;
    use d16_isa::{Gpr, Isa};

    fn run_prog(isa: Isa, src: &str) -> (Machine, StopReason) {
        let image = build(isa, &[src]).expect("assemble/link");
        let mut m = Machine::load(&image);
        let stop = m.run(1_000_000, &mut NullSink).expect("run");
        (m, stop)
    }

    #[test]
    fn halts_with_exit_status() {
        for isa in Isa::ALL {
            let (_, stop) = run_prog(isa, "_start: mvi r2, 42\ntrap 0\n");
            assert_eq!(stop.exit_status(), Some(42), "{isa}");
        }
    }

    #[test]
    fn loop_counts_path_length() {
        // 10 iterations of a 4-instruction loop (incl. delay slot) plus
        // setup and halt.
        let src = "
_start: mvi r2, 0
        mvi r4, 0           ; explicit zero: D16 r0 is the compare result
        mvi r3, 10
loop:   subi r3, r3, 1
        cmpne r3, r4        ; r0 <- (r3 != 0)
        bnz r0, loop
        addi r2, r2, 1      ; delay slot: runs every iteration
        trap 0
";
        let (m, stop) = run_prog(Isa::D16, src);
        assert_eq!(stop.exit_status(), Some(10));
        // 3 setup + 10*(subi+cmpne+bnz+delay) + trap.
        assert_eq!(m.stats().insns, 3 + 40 + 1);
        assert_eq!(m.stats().branches, 10);
        assert_eq!(m.stats().taken_branches, 9);
    }

    #[test]
    fn branch_delay_slot_always_executes() {
        let src = "
_start: mvi r2, 1
        br over
        addi r2, r2, 10     ; delay slot executes
        addi r2, r2, 20     ; skipped
over:   trap 0
";
        for isa in Isa::ALL {
            let (_, stop) = run_prog(isa, src);
            assert_eq!(stop.exit_status(), Some(11), "{isa}");
        }
    }

    #[test]
    fn untaken_branch_still_has_delay_slot() {
        let src = "
_start: mvi r2, 0
        cmpne r2, r0        ; false
        bnz r0, nowhere
        addi r2, r2, 1      ; delay slot
        addi r2, r2, 2
        trap 0
nowhere: mvi r2, 99
        trap 0
";
        let (m, stop) = run_prog(Isa::D16, src);
        assert_eq!(stop.exit_status(), Some(3));
        assert_eq!(m.stats().taken_branches, 0);
    }

    #[test]
    fn call_and_return_through_link_register() {
        let d16 = "
_start: ldc r9, =double_it
        mvi r2, 21
        jl r9
        nop
        trap 0
double_it:
        add r2, r2
        ret
        nop
";
        let (_, stop) = run_prog(Isa::D16, d16);
        assert_eq!(stop.exit_status(), Some(42));

        let dlxe = "
_start: mvi r2, 21
        jal double_it
        nop
        trap 0
double_it:
        add r2, r2, r2
        ret
        nop
";
        let (_, stop) = run_prog(Isa::Dlxe, dlxe);
        assert_eq!(stop.exit_status(), Some(42));
    }

    #[test]
    fn memory_and_subword_semantics() {
        let src = "
_start: la r9, buf
        li r3, 0x12345678
        st r3, 0(r9)
        ldb r2, (r9)        ; 0x78
        ldbu r4, (r9)
        addi r9, r9, 1      ; D16 subword is not offsettable: bump the base
        ldb r5, (r9)        ; byte 1 is 0x56
        trap 0
        .data
buf:    .word 0
";
        let (m, stop) = run_prog(Isa::D16, src);
        assert_eq!(stop.exit_status(), Some(0x78));
        assert_eq!(m.gpr(Gpr::new(5)), 0x56);
        assert_eq!(m.stats().loads, 5, "ldc + ldc(li) + three byte loads");
        assert_eq!(m.stats().stores, 1);
    }

    #[test]
    fn signed_subword_loads_extend() {
        let src = "
_start: la r9, buf
        ldb r2, 0(r9)
        ldh r3, 0(r9)
        ldhu r4, 0(r9)
        trap 0
        .data
buf:    .word 0xFFFEFDFC
";
        let image = build(Isa::Dlxe, &[src]).unwrap();
        let mut m = Machine::load(&image);
        m.run(100, &mut NullSink).unwrap();
        assert_eq!(m.gpr(Gpr::new(2)), 0xFFFF_FFFC);
        assert_eq!(m.gpr(Gpr::new(3)), 0xFFFF_FDFC);
        assert_eq!(m.gpr(Gpr::new(4)), 0x0000_FDFC);
    }

    #[test]
    fn load_use_interlock_counted() {
        let use_immediately = "
_start: la r9, v
        ld r2, 0(r9)
        addi r2, r2, 1      ; uses r2 in the delay slot -> 1 stall
        trap 0
        .data
v:      .word 5
";
        let scheduled = "
_start: la r9, v
        ld r2, 0(r9)
        nop                 ; delay slot filled with unrelated work
        addi r2, r2, 1
        trap 0
        .data
v:      .word 5
";
        let (m1, s1) = run_prog(Isa::Dlxe, use_immediately);
        let (m2, s2) = run_prog(Isa::Dlxe, scheduled);
        assert_eq!(s1.exit_status(), Some(6));
        assert_eq!(s2.exit_status(), Some(6));
        assert_eq!(m1.stats().load_interlocks, 1);
        assert_eq!(m2.stats().load_interlocks, 0);
    }

    #[test]
    fn d16_ldc_also_has_load_delay() {
        let src = "
_start: ldc r2, =1234
        addi r2, r2, 1
        trap 0
";
        let (m, stop) = run_prog(Isa::D16, src);
        assert_eq!(stop.exit_status(), Some(1235));
        assert_eq!(m.stats().load_interlocks, 1);
    }

    #[test]
    fn fpu_interlocks_scale_with_latency() {
        let src = "
_start: mvi r3, 3
        mtf f2, r3
        si2sf f2, f2
        mvi r4, 4
        mtf f4, r4
        si2sf f4, f4
        mul.sf f2, f2, f4
        mff r2, f2          ; immediately dependent on the multiply
        trap 0
";
        let image = build(Isa::Dlxe, &[src]).unwrap();
        let mut fast = Machine::load(&image);
        fast.set_fpu_latency(FpuLatency { add: 1, mul: 1, div_s: 1, div_d: 1, cvt: 1 });
        fast.run(100, &mut NullSink).unwrap();
        let mut slow = Machine::load(&image);
        slow.set_fpu_latency(FpuLatency { add: 2, mul: 8, div_s: 12, div_d: 19, cvt: 2 });
        slow.run(100, &mut NullSink).unwrap();
        // The two mtf -> cvt transfer hazards stall one cycle each even at
        // unit latency; the multiply adds nothing at latency 1.
        assert_eq!(fast.stats().fpu_interlocks, 2);
        assert!(slow.stats().fpu_interlocks >= 9, "mul latency 8 stalls the mff");
        // Result is 12.0f32.
        assert_eq!(fast.gpr(Gpr::new(2)), 12.0f32.to_bits());
    }

    #[test]
    fn double_precision_arithmetic() {
        // Build 2.5 and 0.5 as doubles via integer conversion and division.
        let src = "
_start: mvi r3, 5
        mtf f2, r3
        si2df f2, f2        ; f2:f3 = 5.0
        mvi r3, 2
        mtf f4, r3
        si2df f4, f4        ; f4:f5 = 2.0
        div.df f2, f2, f4   ; 2.5
        add.df f2, f2, f4   ; 4.5
        df2si f6, f2        ; truncates to 4
        mff r2, f6
        trap 0
";
        let (m, stop) = run_prog(Isa::Dlxe, src);
        assert_eq!(stop.exit_status(), Some(4));
        assert!(m.stats().fpu_interlocks > 0, "dependent FPU chain interlocks");
    }

    #[test]
    fn fp_compare_and_rdsr() {
        let src = "
_start: mvi r3, 1
        mtf f2, r3
        si2sf f2, f2
        mvi r3, 2
        mtf f4, r3
        si2sf f4, f4
        cmplt.sf f2, f4     ; 1.0 < 2.0 -> status 1
        rdsr r2
        trap 0
";
        for isa in Isa::ALL {
            let (_, stop) = run_prog(isa, src);
            assert_eq!(stop.exit_status(), Some(1), "{isa}");
        }
    }

    #[test]
    fn console_traps() {
        let src = "
_start: mvi r2, 'H'
        trap 1
        mvi r2, 'i'
        trap 1
        mvi r2, -42
        trap 2
        mvi r2, 0
        trap 0
";
        let (m, _) = run_prog(Isa::D16, src);
        assert_eq!(m.console_string(), "Hi-42");
    }

    #[test]
    fn ifetch_word_counting_d16_pairs() {
        // Six sequential D16 instructions share three 32-bit words.
        let src = "_start: nop\nnop\nnop\nnop\nmvi r2, 0\ntrap 0\n";
        let (m, _) = run_prog(Isa::D16, src);
        assert_eq!(m.stats().insns, 6);
        assert_eq!(m.stats().ifetch_words, 3);
        let (m, _) = run_prog(Isa::Dlxe, src);
        assert_eq!(m.stats().insns, 6);
        assert_eq!(m.stats().ifetch_words, 6, "each DLXe insn is a full word");
    }

    #[test]
    fn tight_loop_refetches_taken_branch_words() {
        let src = "
_start: mvi r3, 5
loop:   subi r3, r3, 1
        cmpne r3, r0
        bnz r0, loop
        nop
        mvi r2, 0
        trap 0
";
        let (m, _) = run_prog(Isa::D16, src);
        assert!(m.stats().ifetch_words > m.stats().insns / 2, "branches waste buffer slots");
        assert!(m.stats().ifetch_words <= m.stats().insns);
    }

    #[test]
    fn trace_recorder_captures_all_references() {
        let src = "
_start: la r9, v
        ld r2, 0(r9)
        nop
        st r2, 4(r9)
        trap 0
        .data
v:      .word 3, 0
";
        let image = build(Isa::Dlxe, &[src]).unwrap();
        let mut m = Machine::load(&image);
        let mut rec = TraceRecorder::new();
        m.run(100, &mut rec).unwrap();
        let fetches = rec.iter().filter(|a| matches!(a, Access::Fetch(..))).count();
        let reads = rec.iter().filter(|a| matches!(a, Access::Read(..))).count();
        let writes = rec.iter().filter(|a| matches!(a, Access::Write(..))).count();
        assert_eq!(fetches as u64, m.stats().insns);
        assert_eq!(reads as u64, m.stats().loads);
        assert_eq!(writes as u64, m.stats().stores);
    }

    #[test]
    fn store_to_text_is_fatal() {
        let src = "_start: mvi r9, 0\nla r9, _start\nst r9, 0(r9)\ntrap 0\n";
        let image = build(Isa::Dlxe, &[src]).unwrap();
        let mut m = Machine::load(&image);
        let e = m.run(100, &mut NullSink).unwrap_err();
        assert!(matches!(e, SimError::WriteToText { .. }), "{e}");
    }

    #[test]
    fn misaligned_word_access_is_fatal() {
        let src = "_start: la r9, v\naddi r9, r9, 2\nld r2, 0(r9)\ntrap 0\n.data\nv: .word 1\n";
        let image = build(Isa::Dlxe, &[src]).unwrap();
        let mut m = Machine::load(&image);
        let e = m.run(100, &mut NullSink).unwrap_err();
        assert!(matches!(e, SimError::Unaligned { bytes: 4, .. }), "{e}");
    }

    #[test]
    fn fuel_limit_stops_infinite_loop() {
        let src = "_start: br _start\nnop\n";
        let image = build(Isa::D16, &[src]).unwrap();
        let mut m = Machine::load(&image);
        let stop = m.run(1000, &mut NullSink).unwrap();
        assert_eq!(stop, StopReason::OutOfFuel);
        assert!(m.stats().insns >= 1000);
    }

    #[test]
    fn dlxe_r0_is_hardwired_zero() {
        let src = "_start: mvi r0, 7\nmv r2, r0\ntrap 0\n";
        let (_, stop) = run_prog(Isa::Dlxe, src);
        assert_eq!(stop.exit_status(), Some(0));
        // ...but D16 r0 is a real register (the compare destination).
        let (_, stop) = run_prog(Isa::D16, src);
        assert_eq!(stop.exit_status(), Some(7));
    }

    #[test]
    fn read_insn_count_trap() {
        let src = "_start: nop\nnop\ntrap 3\nmv r2, r2\ntrap 0\n";
        let (_, stop) = run_prog(Isa::D16, src);
        assert_eq!(stop.exit_status(), Some(3), "count includes the trap itself");
    }

    // --- block engine: observational equivalence -----------------------

    /// Runs `src` under both engines with the same fuel and asserts every
    /// observable agrees: recorded trace bytes, statistics, telemetry,
    /// console, halt state, and the stop reason or fault. Returns the
    /// block-engine machine for further inspection.
    fn assert_engines_agree(
        isa: Isa,
        src: &str,
        fuel: u64,
    ) -> (Machine, Result<StopReason, SimError>) {
        assert_engines_agree_at(PipelineSpec::default(), isa, src, fuel)
    }

    /// [`assert_engines_agree`] at an explicit pipeline spec — the
    /// non-default specs drive the engine's dynamic timing path.
    fn assert_engines_agree_at(
        spec: PipelineSpec,
        isa: Isa,
        src: &str,
        fuel: u64,
    ) -> (Machine, Result<StopReason, SimError>) {
        let image = build(isa, &[src]).expect("assemble/link");
        let mut mi = Machine::load(&image);
        mi.set_pipeline(spec);
        let mut ti = TraceRecorder::new();
        let ri = mi.run(fuel, &mut ti);
        let mut mb = Machine::load(&image);
        mb.set_pipeline(spec);
        let mut tb = TraceRecorder::new();
        let rb = mb.run_blocks(fuel, &mut tb);
        assert_eq!(ri, rb, "stop/fault disagree ({isa})");
        assert_eq!(ti.len(), tb.len(), "trace length disagrees ({isa})");
        assert_eq!(ti.encoded_bytes(), tb.encoded_bytes(), "trace bytes disagree ({isa})");
        assert_eq!(mi.stats(), mb.stats(), "stats disagree ({isa})");
        assert_eq!(mi.console(), mb.console(), "console disagrees ({isa})");
        assert_eq!(mi.halted(), mb.halted(), "halt state disagrees ({isa})");
        assert_eq!(
            mi.telemetry().values(),
            mb.telemetry().values(),
            "sim telemetry disagrees ({isa})"
        );
        // A faulting step bumps its stage-class counter before the
        // execute stage raises, so reconciliation only holds (for either
        // engine) on clean runs. What matters here is that the engines
        // agree — asserted above — and reconcile identically when the
        // interpreter does.
        if rb.is_ok() {
            mb.stats().reconciles_with(mb.telemetry()).expect("stats reconcile");
        }
        (mb, rb)
    }

    /// Every program the interpreter tests above exercise, under both
    /// engines: ALU, branches, calls, memory, subword, FPU fallbacks,
    /// console traps, and D16/DLXe register conventions.
    #[test]
    fn engines_agree_on_interpreter_test_programs() {
        let programs: &[&str] = &[
            "_start: mvi r2, 42\ntrap 0\n",
            "_start: mvi r2, 1\nbr over\naddi r2, r2, 10\naddi r2, r2, 20\nover: trap 0\n",
            "_start: nop\nnop\nnop\nnop\nmvi r2, 0\ntrap 0\n",
            "_start: nop\nnop\ntrap 3\nmv r2, r2\ntrap 0\n",
            "
_start: mvi r3, 1
        mtf f2, r3
        si2sf f2, f2
        mvi r3, 2
        mtf f4, r3
        si2sf f4, f4
        cmplt.sf f2, f4
        rdsr r2
        trap 0
",
        ];
        for isa in Isa::ALL {
            for src in programs {
                let _ = assert_engines_agree(isa, src, 1_000_000);
            }
        }
        let d16_only: &[&str] = &[
            "
_start: mvi r2, 0
        mvi r4, 0
        mvi r3, 10
loop:   subi r3, r3, 1
        cmpne r3, r4
        bnz r0, loop
        addi r2, r2, 1
        trap 0
",
            "_start: ldc r2, =1234\naddi r2, r2, 1\ntrap 0\n",
            "_start: ldc r9, =double_it\nmvi r2, 21\njl r9\nnop\ntrap 0\ndouble_it: add r2, r2\nret\nnop\n",
            "_start: mvi r2, 'H'\ntrap 1\nmvi r2, 'i'\ntrap 1\nmvi r2, -42\ntrap 2\nmvi r2, 0\ntrap 0\n",
        ];
        for src in d16_only {
            let _ = assert_engines_agree(Isa::D16, src, 1_000_000);
        }
        let dlxe_only: &[&str] = &[
            "_start: la r9, v\nld r2, 0(r9)\naddi r2, r2, 1\ntrap 0\n.data\nv: .word 5\n",
            "_start: la r9, v\nld r2, 0(r9)\nnop\naddi r2, r2, 1\ntrap 0\n.data\nv: .word 5\n",
            "_start: la r9, buf\nli r3, 0x12345678\nst r3, 0(r9)\nldb r2, (r9)\ntrap 0\n.data\nbuf: .word 0\n",
            "_start: mvi r0, 7\nmv r2, r0\ntrap 0\n",
            "_start: mvi r2, 21\njal double_it\nnop\ntrap 0\ndouble_it: add r2, r2, r2\nret\nnop\n",
        ];
        for src in dlxe_only {
            let _ = assert_engines_agree(Isa::Dlxe, src, 1_000_000);
        }
    }

    /// Faults must surface at the same instruction with the same error
    /// and identical prefix accounting — the mid-block bail path.
    #[test]
    fn engines_agree_on_faults() {
        // Store into text, mid-block after completed micro-ops.
        let _ = assert_engines_agree(
            Isa::Dlxe,
            "_start: mvi r9, 0\nla r9, _start\nst r9, 0(r9)\ntrap 0\n",
            100,
        );
        // Misaligned load mid-block.
        let _ = assert_engines_agree(
            Isa::Dlxe,
            "_start: la r9, v\naddi r9, r9, 2\nld r2, 0(r9)\ntrap 0\n.data\nv: .word 1\n",
            100,
        );
        // Out-of-bounds store through a computed address.
        let _ = assert_engines_agree(Isa::Dlxe, "_start: mvi r9, -4\nst r9, 0(r9)\ntrap 0\n", 100);
        // PC running off the end of text (no trap).
        let _ = assert_engines_agree(Isa::D16, "_start: mvi r2, 1\nnop\n", 100);
    }

    /// The interpreter stops mid-block when fuel runs out; the engine
    /// must stop at exactly the same instruction with the same stats.
    #[test]
    fn engines_agree_when_fuel_expires_mid_block() {
        let src = "_start: br _start\nnop\n";
        for fuel in [1u64, 2, 3, 7, 1000, 1001] {
            let (m, stop) = assert_engines_agree(Isa::D16, src, fuel);
            assert_eq!(stop, Ok(StopReason::OutOfFuel));
            assert_eq!(m.stats().insns, fuel);
        }
        // A straight-line program cut off mid-way through a long block.
        let long = "_start: mvi r2, 0\nnop\nnop\nnop\nnop\nnop\nnop\nnop\ntrap 0\n";
        for fuel in 1..=9u64 {
            let _ = assert_engines_agree(Isa::D16, long, fuel);
        }
    }

    /// Branching into the middle of an already-cached block must compile
    /// (and cache) a second block at the interior PC, not misuse the
    /// enclosing one.
    #[test]
    fn engines_agree_on_branch_into_middle_of_block() {
        let src = "
_start: mvi r2, 0
        mvi r3, 2
        br mid
        nop
head:   addi r2, r2, 1      ; first entry lowers the block at `head`
mid:    addi r2, r2, 10     ; second entry starts here, inside it
        subi r3, r3, 1
        cmpne r3, r4
        bnz r0, head
        nop
        trap 0
";
        let (m, stop) = assert_engines_agree(Isa::D16, src, 10_000);
        assert_eq!(stop.map(|s| s.exit_status()), Ok(Some(21)));
        if d16_telemetry::ENABLED {
            let eng = m.engine_telemetry().expect("engine ran");
            assert!(
                eng.get(EngineCounter::BlocksCompiled) >= 2,
                "interior entry compiles its own block"
            );
        }
    }

    /// A control transfer whose delay slot does not lower (an FPU
    /// transfer) leaves `pending_target` set for the interpreter; a
    /// control transfer *in* a delay slot is the interpreter's fault to
    /// raise.
    #[test]
    fn engines_agree_on_delay_slot_edges() {
        let _ = assert_engines_agree(
            Isa::Dlxe,
            "_start: mvi r3, 7\nbr over\nmtf f2, r3\nover: mff r2, f2\ntrap 0\n",
            100,
        );
        let _ = assert_engines_agree(
            Isa::D16,
            "_start: br a\nnop\na: br b\nbr a\nb: mvi r2, 0\ntrap 0\n",
            100,
        );
    }

    /// The engine's own counters reconcile with the architectural
    /// statistics, and the cache serves re-entries without recompiling.
    #[test]
    fn engine_counters_reconcile_and_cache_serves_reentries() {
        let src = "
_start: mvi r2, 0
        mvi r4, 0
        mvi r3, 50
loop:   subi r3, r3, 1
        cmpne r3, r4
        bnz r0, loop
        addi r2, r2, 1
        trap 0
";
        let image = build(Isa::D16, &[src]).expect("assemble/link");
        let mut m = Machine::load(&image);
        let stop = m.run_blocks(1_000_000, &mut NullSink).expect("run");
        assert_eq!(stop.exit_status(), Some(50));
        let eng = m.engine.as_ref().expect("engine retained");
        eng.reconciles_with(m.stats()).expect("engine counters reconcile");
        if d16_telemetry::ENABLED {
            let tele = eng.telemetry();
            let hits = tele.get(EngineCounter::CacheHits);
            let misses = tele.get(EngineCounter::CacheMisses);
            assert!(
                hits > misses,
                "a 50-iteration loop is cache-hit dominated ({hits} vs {misses})"
            );
            assert!(
                tele.get(EngineCounter::UopInsns) > tele.get(EngineCounter::FallbackInsns),
                "hot path retires most instructions"
            );
            // A second run on the same machine reuses the cache.
            let compiled = tele.get(EngineCounter::BlocksCompiled);
            let mut m2 = Machine::load(&image);
            m2.engine = m.engine.take();
            m2.run_blocks(1_000_000, &mut NullSink).expect("rerun");
            let tele2 = m2.engine_telemetry().expect("engine retained");
            assert_eq!(
                tele2.get(EngineCounter::BlocksCompiled),
                compiled,
                "second run compiles nothing new"
            );
        }
    }

    /// `run_with` selects engines; a stale engine (different machine
    /// text) is rebuilt, not reused.
    #[test]
    fn run_with_selects_engine_and_stale_cache_is_rebuilt() {
        let a = build(Isa::D16, &["_start: mvi r2, 1\ntrap 0\n"]).expect("assemble");
        let b = build(Isa::D16, &["_start: mvi r2, 2\nnop\ntrap 0\n"]).expect("assemble");
        let mut ma = Machine::load(&a);
        ma.run_with(Engine::Blocks, 100, &mut NullSink).expect("run a");
        let mut mb = Machine::load(&b);
        mb.engine = ma.engine.take(); // transplant a stale cache
        let stop = mb.run_with(Engine::Blocks, 100, &mut NullSink).expect("run b");
        assert_eq!(stop.exit_status(), Some(2), "stale cache must not leak blocks");
        let mut mc = Machine::load(&a);
        let stop = mc.run_with(Engine::Interp, 100, &mut NullSink).expect("interp");
        assert_eq!(stop.exit_status(), Some(1));
        assert!(mc.engine.is_none(), "interp engine builds no cache");
    }

    /// The checksum sink distinguishes streams and agrees across engines.
    #[test]
    fn checksum_sink_digests_access_streams() {
        let image =
            build(Isa::D16, &["_start: ldc r2, =7\naddi r2, r2, 1\ntrap 0\n"]).expect("assemble");
        let mut mi = Machine::load(&image);
        let mut ci = ChecksumSink::new();
        mi.run(100, &mut ci).expect("interp");
        let mut mb = Machine::load(&image);
        let mut cb = ChecksumSink::new();
        mb.run_blocks(100, &mut cb).expect("blocks");
        assert_eq!(ci.digest(), cb.digest());
        assert_eq!(ci.count(), cb.count());
        let mut other = ChecksumSink::new();
        other.fetch(0, 2);
        assert_ne!(other.digest(), ci.digest());
        assert_ne!(ChecksumSink::new().digest(), ci.digest());
    }

    // --- parameterized pipeline timing ---------------------------------

    fn spec(depth: u8, predictor: Predictor, fw: u8) -> PipelineSpec {
        PipelineSpec { depth, predictor, fetch_width_halfwords: fw }
    }

    /// The load-use stall is the spec's load-use distance, not a
    /// hard-coded single cycle: regression for the fixed-depth assumption
    /// the interpreter's issue accounting used to bake in.
    #[test]
    fn load_use_interlock_scales_with_depth() {
        let src = "
_start: la r9, v
        ld r2, 0(r9)
        addi r2, r2, 1      ; uses r2 at distance one
        trap 0
        .data
v:      .word 5
";
        let image = build(Isa::Dlxe, &[src]).expect("assemble/link");
        for (depth, want) in [(3u8, 0u64), (4, 0), (5, 1), (6, 2), (7, 3), (8, 4)] {
            let mut m = Machine::load(&image);
            m.set_pipeline(spec(depth, Predictor::None, 2));
            let stop = m.run(1_000, &mut NullSink).expect("run");
            assert_eq!(stop.exit_status(), Some(6), "depth {depth}");
            assert_eq!(m.stats().load_interlocks, want, "depth {depth}");
            assert_eq!(m.stats().interlocks, want, "depth {depth}");
        }
    }

    /// Misfetch bubbles appear above depth 5 and depend on the predictor;
    /// the default spec stays penalty-free. Regression for the
    /// delay-slot-absorbs-everything branch arithmetic.
    #[test]
    fn misfetch_penalty_depends_on_depth_and_predictor() {
        // 10 loop iterations: 10 conditional branches, 9 taken.
        let src = "
_start: mvi r2, 0
        mvi r4, 0
        mvi r3, 10
loop:   subi r3, r3, 1
        cmpne r3, r4
        bnz r0, loop
        addi r2, r2, 1
        trap 0
";
        let image = build(Isa::D16, &[src]).expect("assemble/link");
        // (predictor, expected mispredicts at depth 7): no prediction
        // misses every taken transfer; static-taken misses the one
        // fall-through; two-bit (from strongly-not-taken) misses the
        // first two takens and the final untaken.
        let cases = [(Predictor::None, 9u64), (Predictor::StaticTaken, 1), (Predictor::TwoBit, 3)];
        for (p, want) in cases {
            let mut m = Machine::load(&image);
            m.set_pipeline(spec(7, p, 2));
            m.run(1_000, &mut NullSink).expect("run");
            assert_eq!(m.stats().mispredicts, want, "{p:?}");
            assert_eq!(m.stats().misfetch_cycles, want * 2, "depth 7 charges 2 bubbles ({p:?})");
            assert_eq!(
                m.stats().base_cycles(),
                m.stats().insns + m.stats().interlocks + want * 2,
                "{p:?}"
            );
        }
        let mut m = Machine::load(&image);
        m.run(1_000, &mut NullSink).expect("run");
        assert_eq!(m.stats().mispredicts, 0, "default spec is penalty-free");
        assert_eq!(m.stats().misfetch_cycles, 0);
    }

    /// Fetch-traffic accounting follows the spec's fetch width.
    #[test]
    fn ifetch_units_follow_fetch_width() {
        // Six sequential D16 halfword instructions: 6 one-halfword units,
        // 3 words, 2 double-words (4 insns + 2 insns).
        let src = "_start: nop\nnop\nnop\nnop\nmvi r2, 0\ntrap 0\n";
        let image = build(Isa::D16, &[src]).expect("assemble/link");
        for (fw, want) in [(1u8, 6u64), (2, 3), (4, 2)] {
            let mut m = Machine::load(&image);
            m.set_pipeline(spec(5, Predictor::None, fw));
            m.run(1_000, &mut NullSink).expect("run");
            assert_eq!(m.stats().ifetch_words, want, "fetch width {fw} halfwords");
        }
    }

    /// Both engines agree on every observable at non-default specs — the
    /// dynamic timing path against the interpreter. Covers stretched
    /// load-use distances (stale static stall bits would miscount),
    /// cross-block load shadows, predictor state, and misfetch charges.
    #[test]
    fn engines_agree_at_nondefault_specs() {
        let specs = [
            spec(6, Predictor::None, 2),
            spec(8, Predictor::TwoBit, 1),
            spec(3, Predictor::StaticTaken, 4),
            spec(7, Predictor::StaticTaken, 2),
        ];
        let programs: &[(Isa, &str)] = &[
            (
                Isa::D16,
                "
_start: mvi r2, 0
        mvi r4, 0
        mvi r3, 10
loop:   subi r3, r3, 1
        cmpne r3, r4
        bnz r0, loop
        addi r2, r2, 1
        trap 0
",
            ),
            (Isa::D16, "_start: ldc r2, =1234\naddi r2, r2, 1\ntrap 0\n"),
            (
                Isa::Dlxe,
                "_start: la r9, v\nld r2, 0(r9)\naddi r2, r2, 1\ntrap 0\n.data\nv: .word 5\n",
            ),
            (
                // A load at the end of one block shadowing the next
                // block's entry: the cross-block hazard the static path's
                // one-entry check cannot represent at distance > 1.
                Isa::Dlxe,
                "
_start: la r9, v
        mvi r3, 3
loop:   ld r2, 0(r9)
        subi r3, r3, 1
        bnz r3, loop
        addi r2, r2, 1      ; delay slot uses the load result
        trap 0
        .data
v:      .word 5
",
            ),
            (
                Isa::Dlxe,
                "_start: mvi r2, 21\njal double_it\nnop\ntrap 0\ndouble_it: add r2, r2, r2\nret\nnop\n",
            ),
            (Isa::D16x, "_start: mvi r3, 9\ncmpne r3, r0\nbnz r0, t\nnop\nt: mvi r2, 7\ntrap 0\n"),
        ];
        for sp in specs {
            for &(isa, src) in programs {
                let _ = assert_engines_agree_at(sp, isa, src, 1_000_000);
            }
            // Bail paths under dynamic timing: a mid-block fault and fuel
            // expiring mid-block.
            let _ = assert_engines_agree_at(
                sp,
                Isa::Dlxe,
                "_start: mvi r9, 0\nla r9, _start\nst r9, 0(r9)\ntrap 0\n",
                100,
            );
            for fuel in [1u64, 2, 3, 7] {
                let _ = assert_engines_agree_at(sp, Isa::D16, "_start: br _start\nnop\n", fuel);
            }
        }
    }

    /// The block cache is keyed by the active pipeline spec: a cache
    /// built at one spec must be rebuilt — not reused — at another, or
    /// its baked-in stall schedule and fusion decisions leak across.
    #[test]
    fn block_cache_is_keyed_by_pipeline_spec() {
        let src = "
_start: mvi r2, 0
        mvi r4, 0
        mvi r3, 10
loop:   subi r3, r3, 1
        cmpne r3, r4
        bnz r0, loop
        addi r2, r2, 1
        trap 0
";
        let image = build(Isa::D16, &[src]).expect("assemble/link");
        let fresh = |sp: PipelineSpec| {
            let mut m = Machine::load(&image);
            m.set_pipeline(sp);
            m.run_blocks(1_000_000, &mut NullSink).expect("run");
            *m.stats()
        };
        let deep = spec(8, Predictor::TwoBit, 2);
        let want5 = fresh(PipelineSpec::default());
        let want8 = fresh(deep);
        assert_ne!(want5, want8, "depth 8 must time differently");
        // Alternate specs across runs, transplanting the engine cache
        // each time; a cache not keyed by spec would serve the previous
        // spec's blocks and reproduce the wrong stats.
        let mut engine = None;
        for (sp, want) in [
            (PipelineSpec::default(), want5),
            (deep, want8),
            (PipelineSpec::default(), want5),
            (deep, want8),
        ] {
            let mut m = Machine::load(&image);
            m.set_pipeline(sp);
            m.engine = engine.take();
            m.run_blocks(1_000_000, &mut NullSink).expect("run");
            assert_eq!(*m.stats(), want, "spec {sp:?}");
            engine = m.engine.take();
        }
    }
}
