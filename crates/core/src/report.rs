//! Plain-text rendering of experiment results.

/// A simple fixed-width text table.
#[derive(Clone, Debug, Default)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table with a title and column headers.
    pub fn new(title: &str, header: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        debug_assert_eq!(cells.len(), self.header.len());
        self.rows.push(cells);
        self
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i == 0 {
                    line.push_str(&format!("{:<w$}", c, w = widths[i]));
                } else {
                    line.push_str(&format!("  {:>w$}", c, w = widths[i]));
                }
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.header, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
        }
        out
    }
}

/// Formats a float with two decimals (the paper's ratio style).
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}

/// Formats a float with three decimals (miss-rate style).
pub fn f3(v: f64) -> String {
    format!("{v:.3}")
}

/// Formats a percentage with one decimal.
pub fn pct(v: f64) -> String {
    format!("{v:.1}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("Demo", &["prog", "ratio"]);
        t.row(vec!["queens".into(), f2(1.5)]);
        t.row(vec!["x".into(), f2(10.25)]);
        let s = t.render();
        assert!(s.contains("== Demo =="));
        assert!(s.contains("queens"));
        assert!(s.contains("1.50"));
        assert!(s.contains("10.25"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[2].chars().filter(|c| *c == '-').count(), lines[2].len());
    }

    #[test]
    fn formatters() {
        assert_eq!(f2(0.5), "0.50");
        assert_eq!(f3(0.1234), "0.123");
        assert_eq!(pct(12.34), "12.3");
    }
}
