//! Reproductions of every table and figure in the paper's evaluation.
//!
//! Each function consumes a collected [`Suite`] and returns typed rows;
//! the `repro` binary renders them as text. Figure/table numbering follows
//! the paper (see DESIGN.md §5 for the index).

use crate::measure::Measurement;
use crate::suite::{Suite, SuiteError};
use d16_cc::TargetSpec;
use d16_isa::{EncodingParams, Insn, Isa};
use d16_mem::{CacheConfig, CacheSystem};
use d16_sim::{AccessSink, Machine, NullSink};
use d16_workloads::SUITE;
use std::collections::BTreeMap;

const D16: &str = "D16/16/2";
const DLXE: &str = "DLXe/32/3";

/// One per-workload ratio (most figures are bar charts of these).
#[derive(Clone, Debug, PartialEq)]
pub struct RatioRow {
    /// Workload name.
    pub workload: String,
    /// The plotted value.
    pub value: f64,
}

fn mean(rows: &[RatioRow]) -> f64 {
    rows.iter().map(|r| r.value).sum::<f64>() / rows.len() as f64
}

/// Geometric-free arithmetic mean of a figure's bars (the paper reports
/// arithmetic averages).
pub fn average(rows: &[RatioRow]) -> f64 {
    mean(rows)
}

/// The (D16, unrestricted DLXe) cell pair for one workload, or `None`
/// when either cell was skipped — report functions drop such workloads
/// rather than aborting a degraded sweep.
fn pair<'a>(suite: &'a Suite, w: &str) -> Option<(&'a Measurement, &'a Measurement)> {
    Some((suite.try_get(w, D16).ok()?, suite.try_get(w, DLXE).ok()?))
}

fn ratio_rows(suite: &Suite, f: impl Fn(&Measurement, &Measurement) -> f64) -> Vec<RatioRow> {
    suite
        .workloads()
        .into_iter()
        .filter_map(|w| {
            let (d16, dlxe) = pair(suite, &w)?;
            Some(RatioRow { value: f(d16, dlxe), workload: w })
        })
        .collect()
}

// ------------------------------------------------------------------------
// Section 3: density, path length, feature ablations
// ------------------------------------------------------------------------

/// Figure 4: D16 relative density — static DLXe size / D16 size.
pub fn fig4_relative_density(suite: &Suite) -> Vec<RatioRow> {
    ratio_rows(suite, |d16, dlxe| dlxe.size_bytes as f64 / d16.size_bytes as f64)
}

/// Figure 5: DLXe path length with D16 = 1.0.
pub fn fig5_path_length(suite: &Suite) -> Vec<RatioRow> {
    ratio_rows(suite, |d16, dlxe| dlxe.stats.insns as f64 / d16.stats.insns as f64)
}

/// One workload's ablation-grid ratios against D16 = 1.0.
#[derive(Clone, Debug)]
pub struct GridRow {
    /// Workload name.
    pub workload: String,
    /// Ratios for `DLXe/16/2, DLXe/16/3, DLXe/32/2, DLXe/32/3`.
    pub dlxe_16_2: f64,
    #[allow(missing_docs)]
    pub dlxe_16_3: f64,
    #[allow(missing_docs)]
    pub dlxe_32_2: f64,
    #[allow(missing_docs)]
    pub dlxe_32_3: f64,
}

fn grid_rows(suite: &Suite, f: impl Fn(&Measurement) -> f64) -> Vec<GridRow> {
    suite
        .workloads()
        .into_iter()
        .filter_map(|w| {
            let base = f(suite.try_get(&w, D16).ok()?);
            let r = |t: &str| Some(f(suite.try_get(&w, t).ok()?) / base);
            Some(GridRow {
                dlxe_16_2: r("DLXe/16/2")?,
                dlxe_16_3: r("DLXe/16/3")?,
                dlxe_32_2: r("DLXe/32/2")?,
                dlxe_32_3: r("DLXe/32/3")?,
                workload: w,
            })
        })
        .collect()
}

/// Figures 6/8/11 and Table 6: static code size across the feature grid
/// (D16 = 1.0).
pub fn code_size_grid(suite: &Suite) -> Vec<GridRow> {
    grid_rows(suite, |m| m.size_bytes as f64)
}

/// Figures 7/9/12 and Table 7: path length across the feature grid
/// (D16 = 1.0).
pub fn path_length_grid(suite: &Suite) -> Vec<GridRow> {
    grid_rows(suite, |m| m.stats.insns as f64)
}

/// Table 5: grid averages `(code size, path length)` for each DLXe
/// configuration.
pub fn table5_summary(suite: &Suite) -> BTreeMap<String, (f64, f64)> {
    let size = code_size_grid(suite);
    let path = path_length_grid(suite);
    let avg = |rows: &[GridRow], pick: fn(&GridRow) -> f64| {
        rows.iter().map(pick).sum::<f64>() / rows.len() as f64
    };
    let mut out = BTreeMap::new();
    out.insert("DLXe/16/2".into(), (avg(&size, |r| r.dlxe_16_2), avg(&path, |r| r.dlxe_16_2)));
    out.insert("DLXe/16/3".into(), (avg(&size, |r| r.dlxe_16_3), avg(&path, |r| r.dlxe_16_3)));
    out.insert("DLXe/32/2".into(), (avg(&size, |r| r.dlxe_32_2), avg(&path, |r| r.dlxe_32_2)));
    out.insert("DLXe/32/3".into(), (avg(&size, |r| r.dlxe_32_3), avg(&path, |r| r.dlxe_32_3)));
    out
}

/// Table 3: data-traffic increase (loads+stores) of D16 and DLXe/16 over
/// unrestricted DLXe, in percent.
#[derive(Clone, Debug)]
pub struct Table3Row {
    /// Workload.
    pub workload: String,
    /// D16 increase %.
    pub d16_pct: f64,
    /// DLXe/16 increase %.
    pub dlxe16_pct: f64,
}

/// Computes Table 3.
pub fn table3_data_traffic(suite: &Suite) -> Vec<Table3Row> {
    suite
        .workloads()
        .into_iter()
        .filter_map(|w| {
            let base = suite.try_get(&w, DLXE).ok()?.stats.mem_ops() as f64;
            let d16 = suite.try_get(&w, D16).ok()?.stats.mem_ops() as f64;
            let r16 = suite.try_get(&w, "DLXe/16/3").ok()?.stats.mem_ops() as f64;
            Some(Table3Row {
                workload: w,
                d16_pct: (d16 / base - 1.0) * 100.0,
                dlxe16_pct: (r16 / base - 1.0) * 100.0,
            })
        })
        .collect()
}

/// Figure 10: speedup provided by DLXe immediates and offsets — path
/// length of D16 over `DLXe/16/2` (which differs from D16 essentially
/// only in its immediate/displacement fields).
pub fn fig10_immediate_speedup(suite: &Suite) -> Vec<RatioRow> {
    suite
        .workloads()
        .into_iter()
        .filter_map(|w| {
            let d16 = suite.try_get(&w, D16).ok()?.stats.insns as f64;
            let r = suite.try_get(&w, "DLXe/16/2").ok()?.stats.insns as f64;
            Some(RatioRow { workload: w, value: d16 / r })
        })
        .collect()
}

/// Table 4: dynamic frequency of DLXe/16/2 instructions whose immediate
/// operands exceed the D16 fields.
#[derive(Clone, Debug, Default)]
pub struct Table4 {
    /// Compare-immediate instructions (no D16 form), % of path length.
    pub cmp_imm_pct: f64,
    /// ALU immediates beyond five bits, % of path length.
    pub alu_imm_pct: f64,
    /// Memory displacements beyond the D16 reach, % of path length.
    pub mem_disp_pct: f64,
}

impl Table4 {
    /// Sum of the three classes.
    pub fn total_pct(&self) -> f64 {
        self.cmp_imm_pct + self.alu_imm_pct + self.mem_disp_pct
    }
}

struct ClassifySink {
    decoded: Vec<Option<Insn>>,
    text_base: u32,
    cmp: u64,
    alu: u64,
    mem: u64,
    total: u64,
}

impl AccessSink for ClassifySink {
    fn fetch(&mut self, addr: u32, _bytes: u8) {
        self.total += 1;
        let idx = ((addr - self.text_base) / 4) as usize;
        if let Some(Some(insn)) = self.decoded.get(idx) {
            match EncodingParams::d16_overflow_class(insn) {
                Some(d16_isa::ImmOverflow::CompareImmediate) => self.cmp += 1,
                Some(d16_isa::ImmOverflow::AluImmediate) => self.alu += 1,
                Some(d16_isa::ImmOverflow::MemoryDisplacement) => self.mem += 1,
                None => {}
            }
        }
    }
    fn read(&mut self, _a: u32, _b: u8) {}
    fn write(&mut self, _a: u32, _b: u8) {}
}

/// Computes Table 4 (averaged over the suite) by re-running each workload
/// on `DLXe/16/2` with a classifying fetch sink.
///
/// # Errors
///
/// Propagates build/run failures with the workload name.
pub fn table4_immediate_profile() -> Result<Table4, (String, String)> {
    table4_immediate_profile_stored(None)
}

/// [`table4_immediate_profile`] through an optional `d16-store`: each
/// workload's raw classification counts are cached, and the averaged
/// percentages are recomputed from them identically either way.
///
/// # Errors
///
/// Propagates build/run failures with the workload name.
pub fn table4_immediate_profile_stored(
    store: Option<&d16_store::Store>,
) -> Result<Table4, (String, String)> {
    let spec = TargetSpec::dlxe_restricted(true, true, false);
    let mut acc = Table4::default();
    let mut n = 0usize;
    for w in SUITE {
        let (cmp, alu, mem, total) = table4_counts(w, &spec, store)?;
        let t = total as f64;
        acc.cmp_imm_pct += cmp as f64 / t * 100.0;
        acc.alu_imm_pct += alu as f64 / t * 100.0;
        acc.mem_disp_pct += mem as f64 / t * 100.0;
        n += 1;
    }
    acc.cmp_imm_pct /= n as f64;
    acc.alu_imm_pct /= n as f64;
    acc.mem_disp_pct /= n as f64;
    Ok(acc)
}

/// One workload's `(cmp, alu, mem, total)` classification counts on the
/// restricted machine, served from the store when possible.
fn table4_counts(
    w: &d16_workloads::Workload,
    spec: &TargetSpec,
    store: Option<&d16_store::Store>,
) -> Result<(u64, u64, u64, u64), (String, String)> {
    let at = store.map(|s| (s, crate::stored::table4_key(w)));
    if let Some((s, key)) = at {
        if let Some(counts) =
            s.get_with(crate::stored::TABLE4_KIND, key, crate::stored::decode_table4)
        {
            return Ok(counts);
        }
    }
    let image = crate::measure::build_stored(w, spec, store)
        .map_err(|e| (w.name.to_string(), e.to_string()))?;
    let decoded: Vec<Option<Insn>> = image
        .text
        .chunks_exact(4)
        .map(|c| {
            d16_isa::dlxe::decode(u32::from_le_bytes(c.try_into().expect("4-byte chunk"))).ok()
        })
        .collect();
    let mut sink =
        ClassifySink { decoded, text_base: image.text_base, cmp: 0, alu: 0, mem: 0, total: 0 };
    let mut m = Machine::load(&image);
    m.run(crate::measure::FUEL, &mut sink).map_err(|e| (w.name.to_string(), e.to_string()))?;
    let counts = (sink.cmp, sink.alu, sink.mem, sink.total);
    if let Some((s, key)) = at {
        s.put(crate::stored::TABLE4_KIND, key, &crate::stored::encode_table4(counts));
    }
    Ok(counts)
}

/// Figure 13: instruction traffic and static size, DLXe/D16 (tests
/// Steenkiste's uniformity assumption).
#[derive(Clone, Debug)]
pub struct Fig13Row {
    /// Workload.
    pub workload: String,
    /// Fetched instruction words, DLXe/D16.
    pub traffic_ratio: f64,
    /// Static size, DLXe/D16.
    pub size_ratio: f64,
}

/// Computes Figure 13.
pub fn fig13_traffic_vs_density(suite: &Suite) -> Vec<Fig13Row> {
    suite
        .workloads()
        .into_iter()
        .filter_map(|w| {
            let (d16, dlxe) = pair(suite, &w)?;
            Some(Fig13Row {
                workload: w,
                traffic_ratio: dlxe.stats.ifetch_words as f64 / d16.stats.ifetch_words as f64,
                size_ratio: dlxe.size_bytes as f64 / d16.size_bytes as f64,
            })
        })
        .collect()
}

// ------------------------------------------------------------------------
// Section 4: memory performance
// ------------------------------------------------------------------------

/// One point of Figure 14: mean CPI curves for a fetch-bus width.
#[derive(Clone, Debug)]
pub struct Fig14Point {
    /// Memory wait states `l`.
    pub wait_states: u64,
    /// Mean DLXe CPI.
    pub dlxe_cpi: f64,
    /// Mean D16 CPI.
    pub d16_cpi: f64,
    /// Mean D16 CPI normalized by the DLXe instruction count.
    pub d16_normalized: f64,
}

/// Figure 14: normalized CPI without a cache, for a 32- or 64-bit bus.
pub fn fig14_cacheless_cpi(suite: &Suite, bus_bytes: u32) -> Vec<Fig14Point> {
    let pairs: Vec<_> = suite.workloads().iter().filter_map(|w| pair(suite, w)).collect();
    (0..=3)
        .map(|l| {
            let mut dlxe_cpi = 0.0;
            let mut d16_cpi = 0.0;
            let mut d16_norm = 0.0;
            for &(d16, dlxe) in &pairs {
                let dc = dlxe.cacheless_cycles(bus_bytes, l) as f64;
                let sc = d16.cacheless_cycles(bus_bytes, l) as f64;
                dlxe_cpi += dc / dlxe.stats.insns as f64;
                d16_cpi += sc / d16.stats.insns as f64;
                d16_norm += sc / dlxe.stats.insns as f64;
            }
            let n = pairs.len() as f64;
            Fig14Point {
                wait_states: l,
                dlxe_cpi: dlxe_cpi / n,
                d16_cpi: d16_cpi / n,
                d16_normalized: d16_norm / n,
            }
        })
        .collect()
}

/// Figure 15: instruction-fetch bus saturation (fetch requests per cycle).
#[derive(Clone, Debug)]
pub struct Fig15Point {
    /// Memory wait states.
    pub wait_states: u64,
    /// Mean DLXe fetches/cycle.
    pub dlxe: f64,
    /// Mean D16 fetches/cycle.
    pub d16: f64,
}

/// Computes Figure 15 for a bus width.
pub fn fig15_fetch_saturation(suite: &Suite, bus_bytes: u32) -> Vec<Fig15Point> {
    let pairs: Vec<_> = suite.workloads().iter().filter_map(|w| pair(suite, w)).collect();
    (0..=3)
        .map(|l| {
            let mut d = 0.0;
            let mut s = 0.0;
            for &(d16, dlxe) in &pairs {
                let ireq = |m: &Measurement| {
                    if bus_bytes >= 8 {
                        m.ireq_bus64
                    } else {
                        m.ireq_bus32
                    }
                };
                d += ireq(dlxe) as f64 / dlxe.cacheless_cycles(bus_bytes, l) as f64;
                s += ireq(d16) as f64 / d16.cacheless_cycles(bus_bytes, l) as f64;
            }
            let n = pairs.len() as f64;
            Fig15Point { wait_states: l, dlxe: d / n, d16: s / n }
        })
        .collect()
}

/// Tables 11/12: per-workload DLXe/D16 cycle ratios for wait states 0–3.
#[derive(Clone, Debug)]
pub struct CycleRatioRow {
    /// Workload.
    pub workload: String,
    /// Ratios at `l` = 0, 1, 2, 3.
    pub ratios: [f64; 4],
}

/// Computes Table 11 (32-bit bus) or Table 12 (64-bit bus).
pub fn table11_12_cycle_ratios(suite: &Suite, bus_bytes: u32) -> Vec<CycleRatioRow> {
    suite
        .workloads()
        .into_iter()
        .filter_map(|w| {
            let (d16, dlxe) = pair(suite, &w)?;
            let mut ratios = [0.0; 4];
            for (i, r) in ratios.iter_mut().enumerate() {
                *r = dlxe.cacheless_cycles(bus_bytes, i as u64) as f64
                    / d16.cacheless_cycles(bus_bytes, i as u64) as f64;
            }
            Some(CycleRatioRow { workload: w, ratios })
        })
        .collect()
}

// ------------------------------------------------------------------------
// Cache experiments (Figures 16-19, Tables 13-16)
// ------------------------------------------------------------------------

/// Cache sizes of the paper's sweeps (Figures 16/19, Tables 14–16).
pub const GRID_SIZES: [u32; 5] = [1024, 2048, 4096, 8192, 16384];

/// Block sizes of the Tables 14–16 grids.
pub const GRID_BLOCKS: [u32; 4] = [8, 16, 32, 64];

/// Every cache configuration any experiment replays: the size × block
/// grid of Tables 14–16, which also contains (at block 32) every point of
/// Figures 16–19. One [`Suite::cache_grid`] sweep of a trace warms all of
/// them at once.
pub fn cache_grid_configs() -> Vec<CacheConfig> {
    let mut out = Vec::with_capacity(GRID_SIZES.len() * GRID_BLOCKS.len());
    for size in GRID_SIZES {
        for block in GRID_BLOCKS {
            out.push(CacheConfig {
                size,
                block,
                sub_block: 8.min(block),
                assoc: 1,
                wrap_prefetch: true,
            });
        }
    }
    out
}

/// Index of a (size, block) point within [`cache_grid_configs`].
///
/// # Errors
///
/// [`SuiteError::OffGrid`] when the point is not a swept configuration
/// (also forced by the `off-grid-config` failpoint, which simulates a
/// report asking for a cache point the sweep never warmed).
pub fn cache_grid_index(size: u32, block: u32) -> Result<usize, SuiteError> {
    if d16_testkit::faults::armed("off-grid-config").is_some() {
        return Err(SuiteError::OffGrid { size, block });
    }
    let si = GRID_SIZES.iter().position(|&s| s == size);
    let bi = GRID_BLOCKS.iter().position(|&b| b == block);
    match (si, bi) {
        (Some(si), Some(bi)) => Ok(si * GRID_BLOCKS.len() + bi),
        _ => Err(SuiteError::OffGrid { size, block }),
    }
}

/// Replays a recorded trace through the paper's split I/D caches.
///
/// This is the legacy one-configuration-per-sweep path; the experiments
/// read from the single-pass [`Suite::cache_grid`] instead, and a test
/// asserts the two agree bit-for-bit.
///
/// # Errors
///
/// [`SuiteError::MissingTrace`] if the trace was never recorded.
pub fn replay_cache(
    suite: &Suite,
    workload: &str,
    isa: Isa,
    icfg: CacheConfig,
    dcfg: CacheConfig,
) -> Result<CacheSystem, SuiteError> {
    let mut cs = CacheSystem::new(icfg, dcfg)
        .map_err(|source| SuiteError::Config { context: "cache replay".to_string(), source })?;
    suite.try_trace(workload, isa)?.replay(&mut cs);
    Ok(cs)
}

/// One miss-rate point for Figure 16.
#[derive(Clone, Debug)]
pub struct Fig16Point {
    /// Cache size in bytes.
    pub size: u32,
    /// D16 instruction miss rate (per fetch).
    pub d16: f64,
    /// DLXe instruction miss rate.
    pub dlxe: f64,
}

/// Figure 16: instruction-cache miss rates for 1K–16K caches.
///
/// # Errors
///
/// [`SuiteError::MissingTrace`] if a needed trace was never recorded.
pub fn fig16_icache_miss(suite: &Suite, workload: &str) -> Result<Vec<Fig16Point>, SuiteError> {
    let d16 = suite.cache_grid(workload, Isa::D16)?;
    let dlxe = suite.cache_grid(workload, Isa::Dlxe)?;
    let mut out = Vec::with_capacity(GRID_SIZES.len());
    for size in GRID_SIZES {
        let i = cache_grid_index(size, 32)?;
        out.push(Fig16Point {
            size,
            d16: d16[i].icache().read_miss_ratio(),
            dlxe: dlxe[i].icache().read_miss_ratio(),
        });
    }
    Ok(out)
}

/// One CPI point for Figures 17/18.
#[derive(Clone, Debug)]
pub struct Fig17Point {
    /// Miss penalty in cycles.
    pub penalty: u64,
    /// DLXe CPI.
    pub dlxe_cpi: f64,
    /// D16 CPI.
    pub d16_cpi: f64,
    /// D16 cycles / DLXe instructions.
    pub d16_normalized: f64,
}

/// Figures 17 (4K caches) and 18 (16K): CPI against miss penalty.
///
/// # Errors
///
/// [`SuiteError`] if a needed cell or trace is absent.
pub fn fig17_18_cache_cpi(
    suite: &Suite,
    workload: &str,
    cache_size: u32,
) -> Result<Vec<Fig17Point>, SuiteError> {
    let d16_m = suite.try_get(workload, D16)?;
    let dlxe_m = suite.try_get(workload, DLXE)?;
    let i = cache_grid_index(cache_size, 32)?;
    let grid_d16 = suite.cache_grid(workload, Isa::D16)?;
    let grid_dlxe = suite.cache_grid(workload, Isa::Dlxe)?;
    let (cs_d16, cs_dlxe) = (&grid_d16[i], &grid_dlxe[i]);
    Ok([4u64, 8, 12, 16]
        .into_iter()
        .map(|penalty| Fig17Point {
            penalty,
            dlxe_cpi: cs_dlxe.cycles(&dlxe_m.stats, penalty) as f64 / dlxe_m.stats.insns as f64,
            d16_cpi: cs_d16.cycles(&d16_m.stats, penalty) as f64 / d16_m.stats.insns as f64,
            d16_normalized: cs_d16.cycles(&d16_m.stats, penalty) as f64 / dlxe_m.stats.insns as f64,
        })
        .collect())
}

/// One traffic point for Figure 19.
#[derive(Clone, Debug)]
pub struct Fig19Point {
    /// Cache size in bytes.
    pub size: u32,
    /// DLXe instruction traffic, words/cycle.
    pub dlxe: f64,
    /// D16 instruction traffic, words/cycle.
    pub d16: f64,
}

/// Figure 19: instruction traffic (words/cycle) across cache sizes at a
/// miss penalty of four cycles.
///
/// # Errors
///
/// [`SuiteError`] if a needed cell or trace is absent.
pub fn fig19_cache_traffic(suite: &Suite, workload: &str) -> Result<Vec<Fig19Point>, SuiteError> {
    let d16_m = suite.try_get(workload, D16)?;
    let dlxe_m = suite.try_get(workload, DLXE)?;
    let grid_d16 = suite.cache_grid(workload, Isa::D16)?;
    let grid_dlxe = suite.cache_grid(workload, Isa::Dlxe)?;
    let mut out = Vec::with_capacity(GRID_SIZES.len());
    for size in GRID_SIZES {
        let i = cache_grid_index(size, 32)?;
        out.push(Fig19Point {
            size,
            dlxe: grid_dlxe[i].itraffic_words_per_cycle(&dlxe_m.stats, 4),
            d16: grid_d16[i].itraffic_words_per_cycle(&d16_m.stats, 4),
        });
    }
    Ok(out)
}

/// One row of the Tables 14–16 miss-rate grids.
#[derive(Clone, Debug)]
pub struct MissGridRow {
    /// Cache size.
    pub size: u32,
    /// Block size.
    pub block: u32,
    /// (D16, DLXe) instruction miss rates.
    pub insn: (f64, f64),
    /// (D16, DLXe) data-read miss rates.
    pub read: (f64, f64),
    /// (D16, DLXe) data-write miss rates.
    pub write: (f64, f64),
}

/// Tables 14–16: miss-rate grids over cache size × block size for one
/// cache benchmark.
///
/// # Errors
///
/// [`SuiteError::MissingTrace`] if a needed trace was never recorded.
pub fn miss_rate_grid(suite: &Suite, workload: &str) -> Result<Vec<MissGridRow>, SuiteError> {
    let grid_d16 = suite.cache_grid(workload, Isa::D16)?;
    let grid_dlxe = suite.cache_grid(workload, Isa::Dlxe)?;
    let mut out = Vec::new();
    for size in GRID_SIZES {
        for block in GRID_BLOCKS {
            let i = cache_grid_index(size, block)?;
            let d16 = grid_d16[i].miss_rates_per_access();
            let dlxe = grid_dlxe[i].miss_rates_per_access();
            out.push(MissGridRow {
                size,
                block,
                insn: (d16.0, dlxe.0),
                read: (d16.1, dlxe.1),
                write: (d16.2, dlxe.2),
            });
        }
    }
    Ok(out)
}

/// Table 13: traffic and interlocks for the cache benchmarks.
#[derive(Clone, Debug)]
pub struct Table13Row {
    /// Workload.
    pub workload: String,
    /// ISA.
    pub isa: &'static str,
    /// Path length.
    pub insns: u64,
    /// Interlock rate.
    pub interlock_rate: f64,
    /// Instruction fetch words.
    pub ifetch_words: u64,
    /// Data reads.
    pub reads: u64,
    /// Data writes.
    pub writes: u64,
}

/// Computes Table 13. Cache benchmarks not collected into `suite` (e.g.
/// in a `--smoke` run) are omitted from the rows.
pub fn table13_cache_traffic(suite: &Suite) -> Vec<Table13Row> {
    let mut out = Vec::new();
    for w in d16_workloads::cache_benchmarks() {
        for (isa, target) in [("D16", D16), ("DLXe", DLXE)] {
            let Ok(m) = suite.try_get(w.name, target) else { continue };
            out.push(Table13Row {
                workload: w.name.to_string(),
                isa,
                insns: m.stats.insns,
                interlock_rate: m.stats.interlock_rate(),
                ifetch_words: m.stats.ifetch_words,
                reads: m.stats.loads,
                writes: m.stats.stores,
            });
        }
    }
    out
}

/// Tables 8/9/10: per-workload raw data for the appendix.
#[derive(Clone, Debug)]
pub struct AppendixRow {
    /// Workload.
    pub workload: String,
    /// D16 path length.
    pub d16_insns: u64,
    /// DLXe path length.
    pub dlxe_insns: u64,
    /// D16 fetched words.
    pub d16_ifetch_words: u64,
    /// DLXe fetched words.
    pub dlxe_ifetch_words: u64,
    /// D16 loads + stores.
    pub d16_mem_ops: u64,
    /// DLXe loads + stores.
    pub dlxe_mem_ops: u64,
    /// D16 interlocks.
    pub d16_interlocks: u64,
    /// DLXe interlocks.
    pub dlxe_interlocks: u64,
}

/// Computes the appendix tables (8, 9, 10) in one pass.
pub fn appendix_tables(suite: &Suite) -> Vec<AppendixRow> {
    suite
        .workloads()
        .into_iter()
        .filter_map(|w| {
            let (d16, dlxe) = pair(suite, &w)?;
            Some(AppendixRow {
                workload: w,
                d16_insns: d16.stats.insns,
                dlxe_insns: dlxe.stats.insns,
                d16_ifetch_words: d16.stats.ifetch_words,
                dlxe_ifetch_words: dlxe.stats.ifetch_words,
                d16_mem_ops: d16.stats.mem_ops(),
                dlxe_mem_ops: dlxe.stats.mem_ops(),
                d16_interlocks: d16.stats.interlocks,
                dlxe_interlocks: dlxe.stats.interlocks,
            })
        })
        .collect()
}

// ------------------------------------------------------------------------
// Beyond the paper: FPU-latency sensitivity (extension)
// ------------------------------------------------------------------------

/// One point of the FPU-latency sensitivity sweep.
#[derive(Clone, Debug)]
pub struct FpuSweepPoint {
    /// Multiply latency (divide scales 3×, add/convert stay at 2).
    pub mul_latency: u64,
    /// D16 base cycles (`IC + Interlocks`).
    pub d16_cycles: u64,
    /// DLXe base cycles.
    pub dlxe_cycles: u64,
    /// D16 interlock rate.
    pub d16_rate: f64,
    /// DLXe interlock rate.
    pub dlxe_rate: f64,
}

/// Sensitivity of the D16/DLXe comparison to FPU ("math unit") latency —
/// the interface the paper simplifies for its prototype. Re-runs one FP
/// workload with multiply latencies 1–16 on both machines.
///
/// The paper's conclusion is robust if the cycle *ratio* stays stable:
/// both encodings issue the same FP operations, so latency cancels.
///
/// # Errors
///
/// Propagates build/run failures with a description.
pub fn fpu_latency_sweep(workload: &str) -> Result<Vec<FpuSweepPoint>, String> {
    fpu_latency_sweep_stored(workload, None)
}

/// [`fpu_latency_sweep`] through an optional `d16-store`: the five sweep
/// points are cached per workload, with rates restored bit-exactly.
///
/// # Errors
///
/// Propagates build/run failures with a description.
pub fn fpu_latency_sweep_stored(
    workload: &str,
    store: Option<&d16_store::Store>,
) -> Result<Vec<FpuSweepPoint>, String> {
    let w = d16_workloads::by_name(workload).ok_or_else(|| format!("no workload {workload}"))?;
    let at = store.map(|s| (s, crate::stored::fpu_key(w)));
    if let Some((s, key)) = at {
        if let Some(points) = s.get_with(crate::stored::FPU_KIND, key, crate::stored::decode_fpu) {
            return Ok(points);
        }
    }
    let d16_image =
        crate::measure::build_stored(w, &TargetSpec::d16(), store).map_err(|e| e.to_string())?;
    let dlxe_image =
        crate::measure::build_stored(w, &TargetSpec::dlxe(), store).map_err(|e| e.to_string())?;
    let mut out = Vec::new();
    for mul in [1u64, 2, 4, 8, 16] {
        let lat = d16_sim::FpuLatency { add: 2, mul, div_s: mul * 3, div_d: mul * 3 + 4, cvt: 2 };
        let run = |image: &d16_asm::Image| -> Result<(u64, f64), String> {
            let mut m = Machine::load(image);
            m.set_fpu_latency(lat);
            m.run(crate::measure::FUEL, &mut NullSink).map_err(|e| e.to_string())?;
            Ok((m.stats().base_cycles(), m.stats().interlock_rate()))
        };
        let (d16_cycles, d16_rate) = run(&d16_image)?;
        let (dlxe_cycles, dlxe_rate) = run(&dlxe_image)?;
        out.push(FpuSweepPoint { mul_latency: mul, d16_cycles, dlxe_cycles, d16_rate, dlxe_rate });
    }
    if let Some((s, key)) = at {
        s.put(crate::stored::FPU_KIND, key, &crate::stored::encode_fpu(&out));
    }
    Ok(out)
}

// ------------------------------------------------------------------------
// Beyond the paper: pipeline depth × predictor sweep (extension)
// ------------------------------------------------------------------------

/// One target's pipeline-sweep grid for a workload: every
/// (depth, predictor) timing cell plus fetch traffic at every fetch
/// width, scored in a single interpreter pass
/// (see [`d16_sim::PipelineSweep`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PipelineSweepRow {
    /// Target label (`D16/16/2`, ..., `D16x/16/3`).
    pub target: String,
    /// The finished grid.
    pub sweep: d16_sim::SweepResult,
}

/// Sensitivity of the D16/DLXe comparison to the pipeline design point —
/// the paper fixes a five-stage, predict-untaken, one-word-fetch machine;
/// this sweep re-times every standard target across depths 3–8, three
/// front-end predictors, and three fetch widths. One interpreter pass per
/// target scores the whole grid; the default-spec cell reproduces
/// [`d16_sim::ExecStats::base_cycles`] exactly.
///
/// # Errors
///
/// Propagates build/run failures with a description.
pub fn pipeline_sweep(workload: &str) -> Result<Vec<PipelineSweepRow>, String> {
    pipeline_sweep_stored(workload, None)
}

/// [`pipeline_sweep`] through an optional `d16-store`: the per-target
/// grids are cached per workload and restored bit-exactly.
///
/// # Errors
///
/// Propagates build/run failures with a description.
pub fn pipeline_sweep_stored(
    workload: &str,
    store: Option<&d16_store::Store>,
) -> Result<Vec<PipelineSweepRow>, String> {
    let w = d16_workloads::by_name(workload).ok_or_else(|| format!("no workload {workload}"))?;
    let at = store.map(|s| (s, crate::stored::psweep_key(w)));
    if let Some((s, key)) = at {
        if let Some(rows) =
            s.get_with(crate::stored::PSWEEP_KIND, key, crate::stored::decode_psweep)
        {
            return Ok(rows);
        }
    }
    let mut out = Vec::new();
    for spec in crate::suite::standard_specs() {
        let image = crate::measure::build_stored(w, &spec, store).map_err(|e| e.to_string())?;
        let mut m = Machine::load(&image);
        m.attach_pipeline_sweep(d16_sim::PipelineSweep::new());
        match m.run(crate::measure::FUEL, &mut NullSink).map_err(|e| e.to_string())? {
            d16_sim::StopReason::Halted(_) => {}
            d16_sim::StopReason::OutOfFuel => {
                return Err(format!("{workload} on {}: did not halt", spec.label()))
            }
        }
        let sweep = m
            .take_pipeline_sweep()
            .ok_or_else(|| format!("{workload} on {}: sweep detached", spec.label()))?
            .finish();
        out.push(PipelineSweepRow { target: spec.label(), sweep });
    }
    if let Some((s, key)) = at {
        s.put(crate::stored::PSWEEP_KIND, key, &crate::stored::encode_psweep(&out));
    }
    Ok(out)
}

// ------------------------------------------------------------------------
// Beyond the paper: the D16x mixed-width target (extension)
// ------------------------------------------------------------------------

const D16X: &str = "D16x/16/3";

/// One workload's D16x row: the third curve next to Figures 4/5 plus the
/// macro-op fusion ablation. Fusion on D16x is pure accounting — it
/// changes no architectural state — so the fusion-off and fusion-on cycle
/// counts both derive from the same measurement
/// ([`d16_sim::ExecStats::base_cycles`] vs
/// [`d16_sim::ExecStats::fused_cycles`]).
#[derive(Clone, Debug)]
pub struct D16xRow {
    /// Workload name.
    pub workload: String,
    /// Static size vs D16 (D16x bytes / D16 bytes): the cost of the
    /// 32-bit escape formats.
    pub size_vs_d16: f64,
    /// Relative density vs DLXe (DLXe bytes / D16x bytes): Figure 4's
    /// axis, third curve.
    pub density_vs_dlxe: f64,
    /// Path length vs D16 (D16x insns / D16 insns): Figure 5's axis with
    /// the curves inverted — below 1.0 means the escape formats shortened
    /// the path.
    pub path_vs_d16: f64,
    /// Dynamic compare→branch pairs fused.
    pub fused_cmp_br: u64,
    /// Dynamic `mvhi`→`ori`/`addi` pairs fused.
    pub fused_lui_addi: u64,
    /// Base cycles with fusion off (`IC + Interlocks`).
    pub base_cycles: u64,
    /// Base cycles with fusion on (one cycle back per fused pair).
    pub fused_cycles: u64,
}

impl D16xRow {
    /// Percentage of base cycles the fusion pass recovers.
    pub fn fusion_savings_pct(&self) -> f64 {
        if self.base_cycles == 0 {
            0.0
        } else {
            (self.base_cycles - self.fused_cycles) as f64 / self.base_cycles as f64 * 100.0
        }
    }
}

// ------------------------------------------------------------------------
// Extension: the extended suite, reported distributionally
// ------------------------------------------------------------------------

/// One extended-suite workload's static-size and path-length ratios
/// against the D16/16/2 baseline, in [`crate::suite::standard_specs`]
/// order (the D16 column is identically 1.00 and kept for shape).
#[derive(Clone, Debug)]
pub struct ExtendedRow {
    /// Workload name.
    pub workload: String,
    /// `(target label, size ratio, path ratio)` per standard target.
    pub ratios: Vec<(String, f64, f64)>,
}

/// Per-workload grid ratios over the whole registry — the paper's
/// fifteen programs then the extension workloads, in registry order.
/// The extension cells live in their own [`Suite`] (`extras`) so the
/// main suite's pinned telemetry and metrics stay byte-identical; a
/// workload's cells are looked up in `main` first, then `extras`.
/// Workloads missing any of the six cells drop out, like every other
/// report function over a degraded suite.
pub fn extended_rows(main: &Suite, extras: &Suite) -> Vec<ExtendedRow> {
    let cell = |w: &str, t: &str| main.try_get(w, t).or_else(|_| extras.try_get(w, t)).ok();
    let labels: Vec<String> =
        crate::suite::standard_specs().iter().map(TargetSpec::label).collect();
    SUITE
        .iter()
        .chain(d16_workloads::EXTRAS)
        .filter_map(|w| {
            let base = cell(w.name, D16)?;
            let ratios = labels
                .iter()
                .map(|t| {
                    let m = cell(w.name, t)?;
                    Some((
                        t.clone(),
                        m.size_bytes as f64 / base.size_bytes as f64,
                        m.stats.insns as f64 / base.stats.insns as f64,
                    ))
                })
                .collect::<Option<Vec<_>>>()?;
            Some(ExtendedRow { workload: w.name.to_string(), ratios })
        })
        .collect()
}

/// Five-number-ish summary of one ratio distribution over workloads:
/// the extremes and median of the observed ratios, plus a bootstrap
/// 95% confidence interval on the mean (percentile method, fixed seed,
/// 2000 resamples — deterministic across runs and `--jobs` values).
#[derive(Clone, Debug)]
pub struct DistSummary {
    /// Number of workloads summarized.
    pub n: usize,
    /// Smallest observed ratio.
    pub min: f64,
    /// Median observed ratio.
    pub median: f64,
    /// Largest observed ratio.
    pub max: f64,
    /// Arithmetic mean (the paper's AVERAGE rows).
    pub mean: f64,
    /// Lower edge of the bootstrap 95% CI on the mean.
    pub ci_lo: f64,
    /// Upper edge of the bootstrap 95% CI on the mean.
    pub ci_hi: f64,
}

/// One target's size and path distributions over the extended suite.
#[derive(Clone, Debug)]
pub struct ExtendedDist {
    /// Target label.
    pub target: String,
    /// Static-size ratio distribution (vs D16 = 1.0).
    pub size: DistSummary,
    /// Path-length ratio distribution (vs D16 = 1.0).
    pub path: DistSummary,
}

/// Bootstrap resamples per distribution.
const BOOTSTRAP_B: usize = 2000;

fn summarize(values: &[f64], seed: &mut u64) -> DistSummary {
    let n = values.len();
    let mut sorted = values.to_vec();
    sorted.sort_by(f64::total_cmp);
    let median = if n % 2 == 1 { sorted[n / 2] } else { (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0 };
    let mean = values.iter().sum::<f64>() / n as f64;
    // Percentile bootstrap on the mean, driven by a fixed xorshift64
    // stream so the interval is a pure function of the values.
    let mut means = Vec::with_capacity(BOOTSTRAP_B);
    for _ in 0..BOOTSTRAP_B {
        let mut sum = 0.0;
        for _ in 0..n {
            *seed ^= *seed << 13;
            *seed ^= *seed >> 7;
            *seed ^= *seed << 17;
            sum += values[(*seed % n as u64) as usize];
        }
        means.push(sum / n as f64);
    }
    means.sort_by(f64::total_cmp);
    let pick = |q: f64| means[((BOOTSTRAP_B - 1) as f64 * q).round() as usize];
    DistSummary {
        n,
        min: sorted[0],
        median,
        max: sorted[n - 1],
        mean,
        ci_lo: pick(0.025),
        ci_hi: pick(0.975),
    }
}

/// Distribution summaries per target over the given extended rows, in
/// [`crate::suite::standard_specs`] order. Empty when `rows` is empty.
pub fn extended_distributions(rows: &[ExtendedRow]) -> Vec<ExtendedDist> {
    let Some(first) = rows.first() else { return Vec::new() };
    let mut seed: u64 = 0x9E37_79B9_7F4A_7C15;
    first
        .ratios
        .iter()
        .enumerate()
        .map(|(ti, (target, _, _))| {
            let size: Vec<f64> = rows.iter().map(|r| r.ratios[ti].1).collect();
            let path: Vec<f64> = rows.iter().map(|r| r.ratios[ti].2).collect();
            ExtendedDist {
                target: target.clone(),
                size: summarize(&size, &mut seed),
                path: summarize(&path, &mut seed),
            }
        })
        .collect()
}

/// The D16x third curve and fusion ablation, one row per workload that
/// collected all three unrestricted cells. Degraded workloads drop out,
/// like every other report function.
pub fn d16x_third_curve(suite: &Suite) -> Vec<D16xRow> {
    suite
        .workloads()
        .into_iter()
        .filter_map(|w| {
            let (d16, dlxe) = pair(suite, &w)?;
            let x = suite.try_get(&w, D16X).ok()?;
            Some(D16xRow {
                size_vs_d16: x.size_bytes as f64 / d16.size_bytes as f64,
                density_vs_dlxe: dlxe.size_bytes as f64 / x.size_bytes as f64,
                path_vs_d16: x.stats.insns as f64 / d16.stats.insns as f64,
                fused_cmp_br: x.stats.fused_cmp_br,
                fused_lui_addi: x.stats.fused_lui_addi,
                base_cycles: x.stats.base_cycles(),
                fused_cycles: x.stats.fused_cycles(),
                workload: w,
            })
        })
        .collect()
}
