//! Building, running and measuring one workload on one target.

use d16_asm::Image;
use d16_cc::{compile_to_image_stored, BuildError, TargetSpec};
use d16_sim::{AccessSink, Engine, ExecStats, Machine, PipelineSpec, StopReason, TraceRecorder};
use d16_store::Store;
use d16_workloads::Workload;
use std::fmt;

/// Instruction budget per run: generous, since a correct workload halts
/// far earlier.
pub const FUEL: u64 = 2_000_000_000;

/// Everything measured about one (workload, target) cell.
#[derive(Clone, Debug)]
pub struct Measurement {
    /// Workload name.
    pub workload: &'static str,
    /// Target label (`D16/16/2`, `DLXe/32/3`, ...).
    pub target: String,
    /// Exit checksum.
    pub exit: i32,
    /// Static size: text + data bytes (the paper's density measure).
    pub size_bytes: u64,
    /// Text segment alone.
    pub text_bytes: u64,
    /// Pipeline statistics (path length, loads/stores, interlocks,
    /// word-granular fetch traffic).
    pub stats: ExecStats,
    /// Fetch-buffer requests for a 32-bit bus (`k` = 2 D16 / 1 DLXe).
    pub ireq_bus32: u64,
    /// Fetch-buffer requests for a 64-bit bus (`k` = 4 D16 / 2 DLXe).
    pub ireq_bus64: u64,
    /// The pipeline's [`d16_sim::SIM_SCHEMA`] telemetry block (per-stage
    /// and per-interlock-class counters). Deterministic — it counts
    /// events, not time — so it may appear in diffed output.
    pub tele: d16_telemetry::Counters,
}

impl Measurement {
    /// External requests on a `bus_bytes`-wide cacheless interface.
    pub fn requests(&self, bus_bytes: u32) -> u64 {
        let ireq = if bus_bytes >= 8 { self.ireq_bus64 } else { self.ireq_bus32 };
        ireq + self.stats.mem_ops()
    }

    /// Cycles on the cacheless machine: `IC + Interlocks + l*(IReq+DReq)`.
    pub fn cacheless_cycles(&self, bus_bytes: u32, wait_states: u64) -> u64 {
        self.stats.base_cycles() + wait_states * self.requests(bus_bytes)
    }
}

/// A failure while building or running a workload.
#[derive(Debug)]
pub enum MeasureError {
    /// Toolchain failure.
    Build(BuildError),
    /// Simulator fault.
    Sim(d16_sim::SimError),
    /// The program did not halt within [`FUEL`] instructions.
    OutOfFuel,
    /// The checksum differed from the workload's pinned value.
    WrongChecksum {
        /// Expected value.
        expected: i32,
        /// Observed value.
        got: i32,
    },
    /// The recorded access trace is unusable (malformed access or a
    /// stream that does not round-trip through the trace codec).
    Trace(String),
}

impl fmt::Display for MeasureError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MeasureError::Build(e) => write!(f, "build: {e}"),
            MeasureError::Sim(e) => write!(f, "simulation fault: {e}"),
            MeasureError::OutOfFuel => write!(f, "did not halt within the instruction budget"),
            MeasureError::WrongChecksum { expected, got } => {
                write!(f, "checksum mismatch: expected {expected}, got {got}")
            }
            MeasureError::Trace(e) => write!(f, "access trace: {e}"),
        }
    }
}

impl std::error::Error for MeasureError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MeasureError::Build(e) => Some(e),
            MeasureError::Sim(e) => Some(e),
            _ => None,
        }
    }
}

/// Compiles a workload for a target.
///
/// # Errors
///
/// Propagates toolchain diagnostics.
pub fn build(w: &Workload, spec: &TargetSpec) -> Result<Image, MeasureError> {
    build_stored(w, spec, None)
}

/// [`build`] through an optional `d16-store` (linked images are served
/// from the `image` kind when an intact entry exists).
///
/// # Errors
///
/// Propagates toolchain diagnostics.
pub fn build_stored(
    w: &Workload,
    spec: &TargetSpec,
    store: Option<&Store>,
) -> Result<Image, MeasureError> {
    compile_to_image_stored(&[w.source], spec, store).map_err(MeasureError::Build)
}

/// A sink that feeds several sinks at once. General-purpose (dynamic)
/// fan-out; the measurement hot path uses the monomorphized
/// [`MeasureSink`] instead so the access callbacks inline into the
/// execution engine.
pub struct Tee<'a>(pub Vec<&'a mut dyn AccessSink>);

impl AccessSink for Tee<'_> {
    fn fetch(&mut self, addr: u32, bytes: u8) {
        for s in &mut self.0 {
            s.fetch(addr, bytes);
        }
    }
    fn read(&mut self, addr: u32, bytes: u8) {
        for s in &mut self.0 {
            s.read(addr, bytes);
        }
    }
    fn write(&mut self, addr: u32, bytes: u8) {
        for s in &mut self.0 {
            s.write(addr, bytes);
        }
    }
}

/// The concrete sink stack of one measurement run: both fetch-buffer bus
/// models plus the optional trace recorder, statically dispatched.
/// Replacing the `dyn`-based [`Tee`] here keeps every access a direct
/// (inlinable) call, which matters now that the block engine has removed
/// the decode overhead around it.
struct MeasureSink<'a> {
    fb32: &'a mut d16_mem::FetchBuffer,
    fb64: &'a mut d16_mem::FetchBuffer,
    rec: Option<&'a mut TraceRecorder>,
}

impl AccessSink for MeasureSink<'_> {
    #[inline]
    fn fetch(&mut self, addr: u32, bytes: u8) {
        self.fb32.fetch(addr, bytes);
        self.fb64.fetch(addr, bytes);
        if let Some(r) = &mut self.rec {
            r.fetch(addr, bytes);
        }
    }
    #[inline]
    fn read(&mut self, addr: u32, bytes: u8) {
        self.fb32.read(addr, bytes);
        self.fb64.read(addr, bytes);
        if let Some(r) = &mut self.rec {
            r.read(addr, bytes);
        }
    }
    #[inline]
    fn write(&mut self, addr: u32, bytes: u8) {
        self.fb32.write(addr, bytes);
        self.fb64.write(addr, bytes);
        if let Some(r) = &mut self.rec {
            r.write(addr, bytes);
        }
    }
}

/// Builds, runs and measures one cell; optionally records the full access
/// trace (for the cache experiments).
///
/// # Errors
///
/// Fails on toolchain errors, simulator faults, fuel exhaustion, or a
/// checksum mismatch against the workload's pinned value.
pub fn measure(
    w: &Workload,
    spec: &TargetSpec,
    want_trace: bool,
) -> Result<(Measurement, Option<TraceRecorder>), MeasureError> {
    measure_stored(w, spec, want_trace, None)
}

/// [`measure`] under an explicit execution engine ([`Engine::Blocks`] is
/// the default everywhere; [`Engine::Interp`] exists for A/B timing and
/// differential checking — the results are byte-identical by contract).
///
/// # Errors
///
/// See [`measure`].
pub fn measure_with(
    w: &Workload,
    spec: &TargetSpec,
    want_trace: bool,
    engine: Engine,
) -> Result<(Measurement, Option<TraceRecorder>), MeasureError> {
    measure_stored_with(w, spec, want_trace, None, engine)
}

/// [`measure`] through an optional `d16-store`: an intact cached cell is
/// served without compiling or simulating anything; a miss (or a damaged
/// entry, which the store evicts) recomputes and commits the cell — and
/// the linked image — for the next run.
///
/// A served cell is *complete*: measurement, telemetry block, and (when
/// `want_trace`) the full access trace are bit-identical to a cold
/// computation, and the pinned checksum is re-verified at decode time.
///
/// # Errors
///
/// Same failure modes as [`measure`]; store damage is never an error.
pub fn measure_stored(
    w: &Workload,
    spec: &TargetSpec,
    want_trace: bool,
    store: Option<&Store>,
) -> Result<(Measurement, Option<TraceRecorder>), MeasureError> {
    measure_stored_with(w, spec, want_trace, store, Engine::default())
}

/// [`measure_stored`] under an explicit execution engine. The engine is
/// deliberately *not* part of the store cell key: both engines produce
/// byte-identical cells, so a cell computed under one engine may be
/// served to a run using the other.
///
/// # Errors
///
/// See [`measure_stored`].
pub fn measure_stored_with(
    w: &Workload,
    spec: &TargetSpec,
    want_trace: bool,
    store: Option<&Store>,
    engine: Engine,
) -> Result<(Measurement, Option<TraceRecorder>), MeasureError> {
    measure_stored_spec(w, spec, want_trace, store, engine, PipelineSpec::default())
}

/// [`measure_stored_with`] on an explicit [`PipelineSpec`]: the machine is
/// retimed (depth-derived load delay, predictor, fetch width) before the
/// run. The pipeline spec folds into the store key only when it differs
/// from the default, so default-spec cells keep their keys — and their
/// bytes — exactly as before this knob existed.
///
/// # Errors
///
/// See [`measure_stored`].
pub fn measure_stored_spec(
    w: &Workload,
    spec: &TargetSpec,
    want_trace: bool,
    store: Option<&Store>,
    engine: Engine,
    pspec: PipelineSpec,
) -> Result<(Measurement, Option<TraceRecorder>), MeasureError> {
    let key = store.map(|s| {
        let key = crate::stored::cell_key(w, spec, want_trace, &pspec);
        (s, key)
    });
    if let Some((s, key)) = key {
        if let Some(cell) =
            s.get_with(crate::stored::CELL_KIND, key, |b| crate::stored::decode_cell(b, w, spec))
        {
            return Ok(cell);
        }
    }
    let image = build_stored(w, spec, store)?;
    let (m, trace) = run(w, spec, &image, want_trace, engine, pspec)?;
    if let Some((s, k)) = key {
        s.put(crate::stored::CELL_KIND, k, &crate::stored::encode_cell(&m, trace.as_ref()));
    }
    Ok((m, trace))
}

/// Runs an already-built image and assembles the [`Measurement`].
fn run(
    w: &Workload,
    spec: &TargetSpec,
    image: &Image,
    want_trace: bool,
    engine: Engine,
    pspec: PipelineSpec,
) -> Result<(Measurement, Option<TraceRecorder>), MeasureError> {
    let mut machine = Machine::load(image);
    machine.set_pipeline(pspec);
    let mut fb32 = d16_mem::FetchBuffer::new(4);
    let mut fb64 = d16_mem::FetchBuffer::new(8);
    let mut rec = TraceRecorder::new();
    let stop = {
        let mut sink =
            MeasureSink { fb32: &mut fb32, fb64: &mut fb64, rec: want_trace.then_some(&mut rec) };
        machine.run_with(engine, FUEL, &mut sink).map_err(MeasureError::Sim)?
    };
    let exit = match stop {
        StopReason::Halted(v) => v,
        StopReason::OutOfFuel => return Err(MeasureError::OutOfFuel),
    };
    if let Some(expected) = w.expected {
        if exit != expected {
            return Err(MeasureError::WrongChecksum { expected, got: exit });
        }
    }
    let trace = if want_trace {
        // Failpoint: a sink handed an access with a width the trace codec
        // cannot represent. The recorder poisons itself rather than
        // panicking; surface that here as a skippable cell error.
        if d16_testkit::faults::armed_for("bad-access-width", w.name) {
            rec.read(0x1000, 3);
        }
        if let Some(e) = rec.error() {
            return Err(MeasureError::Trace(e.to_string()));
        }
        // Revalidate the stream through the codec — the same path a
        // store-served trace takes — so a truncated stream (failpoint
        // `trace-truncate=<workload>`) is caught at measurement time.
        let mut bytes = rec.encoded_bytes().to_vec();
        if d16_testkit::faults::armed_for("trace-truncate", w.name) {
            bytes.pop();
        }
        Some(TraceRecorder::from_encoded(bytes, rec.len()).map_err(MeasureError::Trace)?)
    } else {
        None
    };
    let m = Measurement {
        workload: w.name,
        target: spec.label(),
        exit,
        size_bytes: image.size_bytes() as u64,
        text_bytes: image.text.len() as u64,
        stats: *machine.stats(),
        ireq_bus32: fb32.irequests,
        ireq_bus64: fb64.irequests,
        tele: machine.telemetry().clone(),
    };
    Ok((m, trace))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_queens_on_both_isas() {
        let w = d16_workloads::by_name("queens").unwrap();
        let (d16, _) = measure(w, &TargetSpec::d16(), false).unwrap();
        let (dlxe, _) = measure(w, &TargetSpec::dlxe(), false).unwrap();
        assert_eq!(d16.exit, 92);
        assert_eq!(dlxe.exit, 92);
        assert!(d16.size_bytes < dlxe.size_bytes, "D16 binaries are denser");
        assert!(d16.stats.insns >= dlxe.stats.insns, "DLXe path is not longer");
        // 32-bit bus: D16 fetches two instructions per request.
        assert!(d16.ireq_bus32 < d16.stats.insns);
        assert_eq!(dlxe.ireq_bus32, dlxe.stats.insns, "k=1 for DLXe on a 32-bit bus");
        assert!(d16.ireq_bus64 <= d16.ireq_bus32);
    }

    #[test]
    fn engines_measure_identically() {
        let w = d16_workloads::by_name("towers").unwrap();
        for spec in [TargetSpec::d16(), TargetSpec::dlxe()] {
            let (a, ta) = measure_with(w, &spec, true, Engine::Interp).unwrap();
            let (b, tb) = measure_with(w, &spec, true, Engine::Blocks).unwrap();
            assert_eq!(a.exit, b.exit);
            assert_eq!(a.stats, b.stats);
            assert_eq!(a.ireq_bus32, b.ireq_bus32);
            assert_eq!(a.ireq_bus64, b.ireq_bus64);
            assert_eq!(a.tele.values(), b.tele.values());
            assert_eq!(ta.unwrap().encoded_bytes(), tb.unwrap().encoded_bytes());
        }
    }

    #[test]
    fn trace_lengths_match_stats() {
        let w = d16_workloads::by_name("ackermann").unwrap();
        let (m, trace) = measure(w, &TargetSpec::d16(), true).unwrap();
        let t = trace.unwrap();
        let fetches = t.iter().filter(|a| matches!(a, d16_sim::Access::Fetch(..))).count() as u64;
        assert_eq!(fetches, m.stats.insns);
    }
}
