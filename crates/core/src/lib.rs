//! # d16-core — the paper's experiment harness
//!
//! Ties the whole reproduction together: compiles each Table 2 workload
//! with `d16-cc` for each target configuration, runs it on the `d16-sim`
//! pipeline, attaches the `d16-mem` memory models, and regenerates every
//! table and figure of *"16-Bit vs. 32-Bit Instructions for Pipelined
//! Microprocessors"* (see DESIGN.md §5 for the experiment index).
//!
//! ```no_run
//! use d16_core::{experiments, Suite};
//!
//! let suite = Suite::collect().expect("measure the grid");
//! let density = experiments::fig4_relative_density(&suite);
//! let avg = experiments::average(&density);
//! assert!(avg > 1.2, "DLXe binaries are bigger: {avg}");
//! ```

pub mod experiments;
pub mod measure;
pub mod report;
pub mod stored;
pub mod suite;

pub use d16_sim::{Engine, PipelineSpec, Predictor};
pub use measure::{
    build, build_stored, measure, measure_stored, measure_stored_spec, measure_stored_with,
    measure_with, MeasureError, Measurement,
};
pub use suite::{base_specs, default_jobs, standard_specs, Skip, Suite, SuiteError};

#[cfg(test)]
mod tests {
    use super::*;
    use d16_isa::Isa;

    /// One compact integration pass over a fast subset of the suite:
    /// checks the headline shape of the paper's results.
    #[test]
    fn headline_shape_on_subset() {
        let names = ["ackermann", "towers", "queens"];
        let ws: Vec<_> = names.iter().map(|n| d16_workloads::by_name(n).unwrap()).collect();
        let suite = Suite::collect_for(&ws, &standard_specs(), false).unwrap();

        let density = experiments::fig4_relative_density(&suite);
        let d_avg = experiments::average(&density);
        assert!(d_avg > 1.2 && d_avg < 2.0, "density ratio {d_avg}");

        let path = experiments::fig5_path_length(&suite);
        let p_avg = experiments::average(&path);
        assert!(p_avg > 0.6 && p_avg <= 1.02, "path ratio {p_avg}");

        // Cacheless machine: with zero wait states DLXe (shorter path)
        // wins; with wait states the D16 traffic advantage pushes the
        // ratio up.
        let ratios = experiments::table11_12_cycle_ratios(&suite, 4);
        for r in &ratios {
            assert!(
                r.ratios[3] > r.ratios[0],
                "{}: wait states must favor D16: {:?}",
                r.workload,
                r.ratios
            );
        }
    }

    #[test]
    fn cache_replay_smoke() {
        let ws = [d16_workloads::by_name("assem").unwrap()];
        let suite = Suite::collect_for(&ws, &base_specs(), true).unwrap();
        let miss = experiments::fig16_icache_miss(&suite, "assem").unwrap();
        // Bigger caches never miss more; D16 misses at most as often as
        // DLXe at equal size (its working set is half the bytes).
        for pair in miss.windows(2) {
            assert!(pair[1].d16 <= pair[0].d16 + 1e-9);
            assert!(pair[1].dlxe <= pair[0].dlxe + 1e-9);
        }
        // D16's halved footprint wins on average and at the smallest size;
        // individual direct-mapped sizes can flip on conflict luck.
        let d16_mean: f64 = miss.iter().map(|p| p.d16).sum::<f64>() / miss.len() as f64;
        let dlxe_mean: f64 = miss.iter().map(|p| p.dlxe).sum::<f64>() / miss.len() as f64;
        assert!(d16_mean <= dlxe_mean + 1e-9, "{d16_mean} vs {dlxe_mean}");
        assert!(miss[0].d16 <= miss[0].dlxe + 1e-9, "1K: {} vs {}", miss[0].d16, miss[0].dlxe);
        let t = experiments::fig19_cache_traffic(&suite, "assem").unwrap();
        let t_d16: f64 = t.iter().map(|p| p.d16).sum();
        let t_dlxe: f64 = t.iter().map(|p| p.dlxe).sum();
        assert!(t_d16 <= t_dlxe + 1e-9, "D16 I-traffic should be lower overall");
        assert!(t[0].d16 <= t[0].dlxe + 1e-9, "1K traffic");
        let _ = suite.try_trace("assem", Isa::D16).unwrap();
    }
}
