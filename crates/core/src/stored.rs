//! Cache keys and codecs for the harness's `d16-store` artifacts.
//!
//! Four artifact kinds ride in the store:
//!
//! * `image` — linked binaries, written by `d16-cc` (see
//!   [`d16_cc::compile_to_image_stored`]).
//! * `cell` — one (workload, target) [`Measurement`] plus its optional
//!   recorded access trace.
//! * `grid` — one (workload, ISA) cache-grid sweep: per-configuration
//!   aggregate statistics, from which every counter is rebuilt.
//! * `table4` / `fpu` — the two experiments that re-run workloads
//!   outside the suite grid (immediate-class counts, FPU-latency
//!   points).
//!
//! Every key folds in [`CORE_TAG`] (bump when the simulator, memory
//! models, or these codecs change observable results), the relevant
//! toolchain keys (so source or codegen changes retire entries), and —
//! for records that carry telemetry counter blocks — the compile-time
//! telemetry mode, because a block dumped in one mode cannot be
//! restored in the other.
//!
//! Restores are *complete*: a warm run's measurements, traces, grids,
//! and derived tables are bit-identical to a cold run's, so caching can
//! never change a paper-facing number (DESIGN.md §6).

use crate::measure::Measurement;
use d16_cc::TargetSpec;
use d16_isa::Isa;
use d16_mem::{CacheConfig, CacheStats, CacheSystem, BANK_SCHEMA};
use d16_sim::{ExecStats, PipelineSpec, Predictor, TraceRecorder, SIM_SCHEMA};
use d16_store::{CacheKey, Reader, StableHasher, Writer};
use d16_telemetry::Counters;
use d16_workloads::Workload;

/// Version tag for everything the harness persists: simulator and
/// memory-model behavior, the codecs below, and the grid configuration
/// set. Bump it whenever any of those changes observable numbers, and
/// every stale entry stops matching at once.
pub const CORE_TAG: &str = "d16-core/3";

/// Store kind for (workload, target) measurement cells.
pub const CELL_KIND: &str = "cell";

/// Store kind for (workload, ISA) cache-grid sweeps.
pub const GRID_KIND: &str = "grid";

/// Store kind for per-workload Table 4 immediate-class counts.
pub const TABLE4_KIND: &str = "table4";

/// Store kind for per-workload FPU-latency sweep points.
pub const FPU_KIND: &str = "fpu";

/// Store kind for per-workload pipeline depth × predictor sweep grids.
pub const PSWEEP_KIND: &str = "psweep";

// ---------------------------------------------------------------------
// Keys
// ---------------------------------------------------------------------

/// Key of one measurement cell: the image it runs (which already covers
/// source text, every codegen knob, and both toolchain tags) plus what
/// the run records. A non-default [`PipelineSpec`] retimes the machine,
/// so it folds into the key; the default spec adds nothing, keeping
/// default-spec keys stable across the introduction of the knob.
pub fn cell_key(
    w: &Workload,
    spec: &TargetSpec,
    want_trace: bool,
    pspec: &PipelineSpec,
) -> CacheKey {
    let mut h = StableHasher::new("d16-core.cell");
    h.field_str(CORE_TAG)
        .field_bool(d16_telemetry::ENABLED)
        .field_key(d16_cc::build_key(&[w.source], spec))
        .field_str(w.name)
        .field_bool(want_trace);
    if *pspec != PipelineSpec::default() {
        h.field_u64(u64::from(pspec.depth))
            .field_str(pspec.predictor.name())
            .field_u64(u64::from(pspec.fetch_width_halfwords));
    }
    h.finish()
}

/// Key of one cache-grid sweep: the unrestricted image whose trace is
/// swept, plus a fingerprint of every configuration on the grid.
pub fn grid_key(w: &Workload, isa: Isa) -> CacheKey {
    let spec = match isa {
        Isa::D16 => TargetSpec::d16(),
        Isa::Dlxe => TargetSpec::dlxe(),
        Isa::D16x => TargetSpec::d16x(),
    };
    let mut h = StableHasher::new("d16-core.grid");
    h.field_str(CORE_TAG)
        .field_bool(d16_telemetry::ENABLED)
        .field_key(d16_cc::build_key(&[w.source], &spec))
        .field_str(w.name);
    let configs = crate::experiments::cache_grid_configs();
    h.field_u64(configs.len() as u64);
    for c in &configs {
        h.field_u32(c.size)
            .field_u32(c.block)
            .field_u32(c.sub_block)
            .field_u32(c.assoc)
            .field_bool(c.wrap_prefetch);
    }
    h.finish()
}

/// Key of one workload's Table 4 classification counts (always measured
/// on `DLXe/16/2`; the counts are plain integers, so the telemetry mode
/// does not enter).
pub fn table4_key(w: &Workload) -> CacheKey {
    let spec = TargetSpec::dlxe_restricted(true, true, false);
    let mut h = StableHasher::new("d16-core.table4");
    h.field_str(CORE_TAG).field_key(d16_cc::build_key(&[w.source], &spec)).field_str(w.name);
    h.finish()
}

/// Key of one workload's FPU-latency sweep (runs both unrestricted
/// images over the fixed latency ladder).
pub fn fpu_key(w: &Workload) -> CacheKey {
    let mut h = StableHasher::new("d16-core.fpu");
    h.field_str(CORE_TAG)
        .field_key(d16_cc::build_key(&[w.source], &TargetSpec::d16()))
        .field_key(d16_cc::build_key(&[w.source], &TargetSpec::dlxe()))
        .field_str(w.name);
    h.finish()
}

/// Key of one workload's pipeline sweep: every standard target's image
/// (one interpreter pass each feeds the grid) plus the sweep-grid shape,
/// so widening the grid retires stale records.
pub fn psweep_key(w: &Workload) -> CacheKey {
    let mut h = StableHasher::new("d16-core.psweep");
    h.field_str(CORE_TAG).field_str(w.name);
    for spec in crate::suite::standard_specs() {
        h.field_key(d16_cc::build_key(&[w.source], &spec));
    }
    h.field_u64(d16_sim::SWEEP_CELLS as u64);
    for &d in &d16_sim::PIPELINE_DEPTHS {
        h.field_u64(u64::from(d));
    }
    for &fw in &d16_sim::FETCH_WIDTHS {
        h.field_u64(u64::from(fw));
    }
    h.finish()
}

// ---------------------------------------------------------------------
// Cell records
// ---------------------------------------------------------------------

/// Serializes one measured cell and its optional trace.
#[must_use]
pub fn encode_cell(m: &Measurement, trace: Option<&TraceRecorder>) -> Vec<u8> {
    let mut w = Writer::new();
    w.i32(m.exit).u64(m.size_bytes).u64(m.text_bytes);
    let s = &m.stats;
    w.u64(s.insns)
        .u64(s.loads)
        .u64(s.stores)
        .u64(s.interlocks)
        .u64(s.load_interlocks)
        .u64(s.fpu_interlocks)
        .u64(s.ifetch_words)
        .u64(s.branches)
        .u64(s.taken_branches)
        .u64(s.nops)
        .u64(s.fused_cmp_br)
        .u64(s.fused_lui_addi)
        .u64(s.mispredicts)
        .u64(s.misfetch_cycles);
    w.u64(m.ireq_bus32).u64(m.ireq_bus64);
    write_counter_values(&mut w, &m.tele);
    match trace {
        Some(t) => {
            w.bool(true).u64(t.len() as u64).bytes(t.encoded_bytes());
        }
        None => {
            w.bool(false);
        }
    }
    w.into_bytes()
}

/// Deserializes a cell record; `None` on any structural damage,
/// including a trace that fails the [`TraceRecorder::from_encoded`]
/// validation walk or a counter block from the other telemetry mode.
#[must_use]
pub fn decode_cell(
    bytes: &[u8],
    w: &Workload,
    spec: &TargetSpec,
) -> Option<(Measurement, Option<TraceRecorder>)> {
    let mut r = Reader::new(bytes);
    let exit = r.i32()?;
    let size_bytes = r.u64()?;
    let text_bytes = r.u64()?;
    let stats = ExecStats {
        insns: r.u64()?,
        loads: r.u64()?,
        stores: r.u64()?,
        interlocks: r.u64()?,
        load_interlocks: r.u64()?,
        fpu_interlocks: r.u64()?,
        ifetch_words: r.u64()?,
        branches: r.u64()?,
        taken_branches: r.u64()?,
        nops: r.u64()?,
        fused_cmp_br: r.u64()?,
        fused_lui_addi: r.u64()?,
        mispredicts: r.u64()?,
        misfetch_cycles: r.u64()?,
    };
    let ireq_bus32 = r.u64()?;
    let ireq_bus64 = r.u64()?;
    let tele = read_counter_values(&mut r, &SIM_SCHEMA)?;
    let trace = if r.bool()? {
        let len = usize::try_from(r.u64()?).ok()?;
        let raw = r.bytes()?.to_vec();
        Some(TraceRecorder::from_encoded(raw, len).ok()?)
    } else {
        None
    };
    r.finish()?;
    // The record was validated against the pinned checksum when it was
    // written, but re-check: a record that disagrees cannot be served.
    if let Some(expected) = w.expected {
        if exit != expected {
            return None;
        }
    }
    let m = Measurement {
        workload: w.name,
        target: spec.label(),
        exit,
        size_bytes,
        text_bytes,
        stats,
        ireq_bus32,
        ireq_bus64,
        tele,
    };
    Some((m, trace))
}

// ---------------------------------------------------------------------
// Grid records
// ---------------------------------------------------------------------

/// Serializes a swept cache grid: the sweep-level counters plus each
/// system's configurations and aggregate statistics. Per-cache telemetry
/// is *not* stored — [`d16_mem::Cache::from_stats`] rebuilds it from the
/// aggregates, reconciled by construction.
#[must_use]
pub fn encode_grid(systems: &[CacheSystem], sweep: &Counters) -> Vec<u8> {
    let mut w = Writer::new();
    write_counter_values(&mut w, sweep);
    w.u64(systems.len() as u64);
    for s in systems {
        write_cache_half(&mut w, s.iconfig(), s.icache());
        write_cache_half(&mut w, s.dconfig(), s.dcache());
    }
    w.into_bytes()
}

/// Deserializes a grid record into its systems and sweep counters;
/// `None` on structural damage or statistics [`CacheSystem::from_stats`]
/// rejects as inconsistent.
#[must_use]
pub fn decode_grid(bytes: &[u8]) -> Option<(Vec<CacheSystem>, Counters)> {
    let mut r = Reader::new(bytes);
    let sweep = read_counter_values(&mut r, &BANK_SCHEMA)?;
    let n = usize::try_from(r.u64()?).ok()?;
    let mut systems = Vec::with_capacity(n.min(1 << 10));
    for _ in 0..n {
        let (icfg, istats) = read_cache_half(&mut r)?;
        let (dcfg, dstats) = read_cache_half(&mut r)?;
        systems.push(CacheSystem::from_stats(icfg, istats, dcfg, dstats).ok()?);
    }
    r.finish()?;
    Some((systems, sweep))
}

fn write_cache_half(w: &mut Writer, cfg: &CacheConfig, stats: &CacheStats) {
    w.u32(cfg.size).u32(cfg.block).u32(cfg.sub_block).u32(cfg.assoc).bool(cfg.wrap_prefetch);
    w.u64(stats.reads)
        .u64(stats.read_misses)
        .u64(stats.writes)
        .u64(stats.write_misses)
        .u64(stats.demand_bytes_in)
        .u64(stats.prefetch_bytes_in)
        .u64(stats.bytes_out);
}

fn read_cache_half(r: &mut Reader<'_>) -> Option<(CacheConfig, CacheStats)> {
    let cfg = CacheConfig {
        size: r.u32()?,
        block: r.u32()?,
        sub_block: r.u32()?,
        assoc: r.u32()?,
        wrap_prefetch: r.bool()?,
    };
    let stats = CacheStats {
        reads: r.u64()?,
        read_misses: r.u64()?,
        writes: r.u64()?,
        write_misses: r.u64()?,
        demand_bytes_in: r.u64()?,
        prefetch_bytes_in: r.u64()?,
        bytes_out: r.u64()?,
    };
    Some((cfg, stats))
}

// ---------------------------------------------------------------------
// Table 4 and FPU-sweep records
// ---------------------------------------------------------------------

/// Serializes one workload's Table 4 classification counts
/// `(cmp, alu, mem, total)`.
#[must_use]
pub fn encode_table4(counts: (u64, u64, u64, u64)) -> Vec<u8> {
    let mut w = Writer::new();
    w.u64(counts.0).u64(counts.1).u64(counts.2).u64(counts.3);
    w.into_bytes()
}

/// Deserializes Table 4 counts; `None` on structural damage or counts
/// that exceed their own total.
#[must_use]
pub fn decode_table4(bytes: &[u8]) -> Option<(u64, u64, u64, u64)> {
    let mut r = Reader::new(bytes);
    let counts = (r.u64()?, r.u64()?, r.u64()?, r.u64()?);
    r.finish()?;
    let (cmp, alu, mem, total) = counts;
    if cmp.checked_add(alu)?.checked_add(mem)? > total || total == 0 {
        return None;
    }
    Some(counts)
}

/// Serializes an FPU-latency sweep (rates ride as IEEE-754 bit patterns,
/// so the restore is bit-exact).
#[must_use]
pub fn encode_fpu(points: &[crate::experiments::FpuSweepPoint]) -> Vec<u8> {
    let mut w = Writer::new();
    w.u64(points.len() as u64);
    for p in points {
        w.u64(p.mul_latency)
            .u64(p.d16_cycles)
            .u64(p.dlxe_cycles)
            .u64(p.d16_rate.to_bits())
            .u64(p.dlxe_rate.to_bits());
    }
    w.into_bytes()
}

/// Deserializes an FPU-latency sweep; `None` on structural damage.
#[must_use]
pub fn decode_fpu(bytes: &[u8]) -> Option<Vec<crate::experiments::FpuSweepPoint>> {
    let mut r = Reader::new(bytes);
    let n = usize::try_from(r.u64()?).ok()?;
    let mut points = Vec::with_capacity(n.min(1 << 10));
    for _ in 0..n {
        points.push(crate::experiments::FpuSweepPoint {
            mul_latency: r.u64()?,
            d16_cycles: r.u64()?,
            dlxe_cycles: r.u64()?,
            d16_rate: f64::from_bits(r.u64()?),
            dlxe_rate: f64::from_bits(r.u64()?),
        });
    }
    r.finish()?;
    Some(points)
}

/// Serializes a pipeline sweep: one depth × predictor grid (plus the
/// fetch-width traffic vector) per standard target.
#[must_use]
pub fn encode_psweep(rows: &[crate::experiments::PipelineSweepRow]) -> Vec<u8> {
    let mut w = Writer::new();
    w.u64(rows.len() as u64);
    for row in rows {
        w.str(&row.target).u64(row.sweep.insns);
        w.u64(row.sweep.cells.len() as u64);
        for c in &row.sweep.cells {
            w.u8(c.depth)
                .str(c.predictor.name())
                .u64(c.cycles)
                .u64(c.interlock_cycles)
                .u64(c.mispredicts)
                .u64(c.penalty_cycles);
        }
        for &u in &row.sweep.fetch_units {
            w.u64(u);
        }
    }
    w.into_bytes()
}

/// Deserializes a pipeline sweep; `None` on structural damage, an
/// unknown predictor name, or a grid of the wrong shape.
#[must_use]
pub fn decode_psweep(bytes: &[u8]) -> Option<Vec<crate::experiments::PipelineSweepRow>> {
    let mut r = Reader::new(bytes);
    let n = usize::try_from(r.u64()?).ok()?;
    let mut rows = Vec::with_capacity(n.min(1 << 10));
    for _ in 0..n {
        let target = r.str()?.to_string();
        let insns = r.u64()?;
        let cells_n = usize::try_from(r.u64()?).ok()?;
        if cells_n != d16_sim::SWEEP_CELLS {
            return None;
        }
        let mut cells = Vec::with_capacity(cells_n);
        for _ in 0..cells_n {
            cells.push(d16_sim::SweepCell {
                depth: r.u8()?,
                predictor: Predictor::parse(r.str()?)?,
                cycles: r.u64()?,
                interlock_cycles: r.u64()?,
                mispredicts: r.u64()?,
                penalty_cycles: r.u64()?,
            });
        }
        let mut fetch_units = [0u64; d16_sim::FETCH_WIDTHS.len()];
        for u in &mut fetch_units {
            *u = r.u64()?;
        }
        rows.push(crate::experiments::PipelineSweepRow {
            target,
            sweep: d16_sim::SweepResult { insns, cells, fetch_units },
        });
    }
    r.finish()?;
    Some(rows)
}

// ---------------------------------------------------------------------
// Counter blocks
// ---------------------------------------------------------------------

fn write_counter_values(w: &mut Writer, c: &Counters) {
    let vals = c.values();
    w.u64(vals.len() as u64);
    for &v in vals {
        w.u64(v);
    }
}

fn read_counter_values(
    r: &mut Reader<'_>,
    schema: &'static d16_telemetry::Schema,
) -> Option<Counters> {
    let n = usize::try_from(r.u64()?).ok()?;
    let mut vals = Vec::with_capacity(n.min(1 << 10));
    for _ in 0..n {
        vals.push(r.u64()?);
    }
    Counters::from_values(schema, &vals)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measure::measure;

    #[test]
    fn cell_roundtrips_with_and_without_trace() {
        let w = d16_workloads::by_name("towers").unwrap();
        for (spec, want_trace) in
            [(TargetSpec::d16(), true), (TargetSpec::dlxe_restricted(true, true, false), false)]
        {
            let (m, trace) = measure(w, &spec, want_trace).unwrap();
            let bytes = encode_cell(&m, trace.as_ref());
            let (back, back_trace) = decode_cell(&bytes, w, &spec).unwrap();
            assert_eq!(back.exit, m.exit);
            assert_eq!(back.target, m.target);
            assert_eq!((back.size_bytes, back.text_bytes), (m.size_bytes, m.text_bytes));
            assert_eq!(back.stats, m.stats);
            assert_eq!((back.ireq_bus32, back.ireq_bus64), (m.ireq_bus32, m.ireq_bus64));
            assert_eq!(back.tele.values(), m.tele.values());
            assert_eq!(back_trace, trace, "trace restores bit-identically");
        }
    }

    #[test]
    fn cell_decode_rejects_damage_and_wrong_checksum() {
        let w = d16_workloads::by_name("towers").unwrap();
        let spec = TargetSpec::d16();
        let (m, t) = measure(w, &spec, true).unwrap();
        let bytes = encode_cell(&m, t.as_ref());
        for cut in [0, 1, bytes.len() / 2, bytes.len() - 1] {
            assert!(decode_cell(&bytes[..cut], w, &spec).is_none(), "cut at {cut}");
        }
        // A record whose exit disagrees with the pinned checksum must
        // not be served, even if structurally intact.
        let mut wrong = m.clone();
        wrong.exit += 1;
        let bad = encode_cell(&wrong, t.as_ref());
        assert!(decode_cell(&bad, w, &spec).is_none());
    }

    #[test]
    fn keys_separate_cells_and_artifact_kinds() {
        let towers = d16_workloads::by_name("towers").unwrap();
        let queens = d16_workloads::by_name("queens").unwrap();
        let d16 = TargetSpec::d16();
        let dp = PipelineSpec::default();
        let base = cell_key(towers, &d16, false, &dp);
        assert_eq!(base, cell_key(towers, &d16, false, &dp));
        assert_ne!(base, cell_key(towers, &d16, true, &dp), "trace recording changes the record");
        assert_ne!(base, cell_key(queens, &d16, false, &dp));
        assert_ne!(base, cell_key(towers, &TargetSpec::dlxe(), false, &dp));
        let deep = PipelineSpec { depth: 8, predictor: Predictor::TwoBit, ..dp };
        assert_ne!(base, cell_key(towers, &d16, false, &deep), "a retimed machine is a new cell");
        assert_ne!(grid_key(towers, Isa::D16), grid_key(towers, Isa::Dlxe));
        assert_ne!(table4_key(towers), table4_key(queens));
        assert_ne!(fpu_key(towers), fpu_key(queens));
        assert_ne!(psweep_key(towers), psweep_key(queens));
    }

    #[test]
    fn psweep_roundtrips_and_rejects_damage() {
        let rows = crate::experiments::pipeline_sweep("towers").unwrap();
        assert_eq!(rows.len(), crate::suite::standard_specs().len());
        for row in &rows {
            assert_eq!(row.sweep.cells.len(), d16_sim::SWEEP_CELLS);
            // The default-spec cell reproduces the live machine's timing
            // constants: at depth 5 every predictor column is identical
            // (zero penalty) and depths 3/4 carry no interlocks at all.
            let d5 = row.sweep.cell(5, Predictor::None).unwrap();
            for p in [Predictor::StaticTaken, Predictor::TwoBit] {
                assert_eq!(row.sweep.cell(5, p).unwrap().cycles, d5.cycles, "{}", row.target);
            }
            assert_eq!(row.sweep.cell(3, Predictor::None).unwrap().interlock_cycles, 0);
        }
        let bytes = encode_psweep(&rows);
        let back = decode_psweep(&bytes).unwrap();
        assert_eq!(back, rows, "sweep rows restore bit-identically");
        for cut in [0, 1, bytes.len() / 2, bytes.len() - 1] {
            assert!(decode_psweep(&bytes[..cut]).is_none(), "cut at {cut}");
        }
    }

    #[test]
    fn grid_roundtrips_bit_identically() {
        let w = d16_workloads::by_name("towers").unwrap();
        let (_, trace) = measure(w, &TargetSpec::d16(), true).unwrap();
        let mut bank =
            d16_mem::CacheBank::symmetric(&crate::experiments::cache_grid_configs()[..4]).unwrap();
        trace.unwrap().replay(&mut bank);
        let sweep = bank.telemetry().clone();
        let systems = bank.into_systems();
        let bytes = encode_grid(&systems, &sweep);
        let (back, back_sweep) = decode_grid(&bytes).unwrap();
        assert_eq!(back.len(), systems.len());
        for (b, s) in back.iter().zip(&systems) {
            assert_eq!(b.iconfig(), s.iconfig());
            assert_eq!(b.icache(), s.icache());
            assert_eq!(b.dcache(), s.dcache());
            b.reconciles().unwrap();
        }
        assert_eq!(back_sweep.values(), sweep.values());
        // Structural damage decodes to None, never a bad grid.
        for cut in [0, 9, bytes.len() - 1] {
            assert!(decode_grid(&bytes[..cut]).is_none(), "cut at {cut}");
        }
    }
}
