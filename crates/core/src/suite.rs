//! Collecting the full measurement grid: every workload on every target
//! configuration, plus access traces for the cache benchmarks.

use crate::measure::{measure, Measurement, MeasureError};
use d16_cc::TargetSpec;
use d16_isa::Isa;
use d16_sim::TraceRecorder;
use d16_workloads::{Workload, SUITE};
use std::collections::BTreeMap;

/// The five configurations of the paper's grid (Tables 6–7):
/// `D16/16/2, DLXe/16/2, DLXe/16/3, DLXe/32/2, DLXe/32/3`.
pub fn standard_specs() -> Vec<TargetSpec> {
    vec![
        TargetSpec::d16(),
        TargetSpec::dlxe_restricted(true, true, false),
        TargetSpec::dlxe_restricted(true, false, false),
        TargetSpec::dlxe_restricted(false, true, false),
        TargetSpec::dlxe(),
    ]
}

/// The two unrestricted machines the headline comparison uses.
pub fn base_specs() -> [TargetSpec; 2] {
    [TargetSpec::d16(), TargetSpec::dlxe()]
}

/// The whole measurement grid.
#[derive(Clone, Debug, Default)]
pub struct Suite {
    /// `(workload, target label) -> measurement`.
    pub cells: BTreeMap<(String, String), Measurement>,
    /// `(workload, ISA name) -> trace`, for the cache benchmarks.
    pub traces: BTreeMap<(String, String), TraceRecorder>,
}

impl Suite {
    /// Measures the given workloads under the given specs. Traces are
    /// recorded for cache-benchmark workloads on the two unrestricted
    /// machines when `trace_cache` is set.
    ///
    /// # Errors
    ///
    /// Returns the failing (workload, target) pair with its error.
    pub fn collect_for(
        workloads: &[&Workload],
        specs: &[TargetSpec],
        trace_cache: bool,
    ) -> Result<Suite, (String, String, MeasureError)> {
        let mut suite = Suite::default();
        for w in workloads {
            for spec in specs {
                let unrestricted = *spec == TargetSpec::d16() || *spec == TargetSpec::dlxe();
                let want_trace = trace_cache && w.cache_benchmark && unrestricted;
                let (m, trace) = measure(w, spec, want_trace)
                    .map_err(|e| (w.name.to_string(), spec.label(), e))?;
                if let Some(t) = trace {
                    suite.traces.insert((w.name.to_string(), spec.isa.name().to_string()), t);
                }
                suite.cells.insert((w.name.to_string(), spec.label()), m);
            }
        }
        // Cross-target checksum agreement: the joint correctness gate.
        for w in workloads {
            let mut exits: Vec<(String, i32)> = suite
                .cells
                .iter()
                .filter(|((name, _), _)| name == w.name)
                .map(|((_, t), m)| (t.clone(), m.exit))
                .collect();
            exits.dedup_by_key(|(_, e)| *e);
            if exits.iter().map(|(_, e)| e).collect::<std::collections::BTreeSet<_>>().len() > 1
            {
                return Err((
                    w.name.to_string(),
                    "all".into(),
                    MeasureError::WrongChecksum {
                        expected: exits[0].1,
                        got: exits[1].1,
                    },
                ));
            }
        }
        Ok(suite)
    }

    /// Measures the full paper grid: all fifteen workloads on all five
    /// configurations, with cache-benchmark traces.
    ///
    /// # Errors
    ///
    /// See [`Suite::collect_for`].
    pub fn collect() -> Result<Suite, (String, String, MeasureError)> {
        let all: Vec<&Workload> = SUITE.iter().collect();
        Self::collect_for(&all, &standard_specs(), true)
    }

    /// The measurement for one cell.
    ///
    /// # Panics
    ///
    /// Panics if the cell was not collected.
    pub fn get(&self, workload: &str, target: &str) -> &Measurement {
        self.cells
            .get(&(workload.to_string(), target.to_string()))
            .unwrap_or_else(|| panic!("cell ({workload}, {target}) not collected"))
    }

    /// The trace for a cache benchmark on an unrestricted machine.
    ///
    /// # Panics
    ///
    /// Panics if the trace was not recorded.
    pub fn trace(&self, workload: &str, isa: Isa) -> &TraceRecorder {
        self.traces
            .get(&(workload.to_string(), isa.name().to_string()))
            .unwrap_or_else(|| panic!("trace ({workload}, {isa}) not recorded"))
    }

    /// Workload names present, in collection order.
    pub fn workloads(&self) -> Vec<String> {
        let mut names: Vec<String> = Vec::new();
        for (w, _) in self.cells.keys() {
            if !names.contains(w) {
                names.push(w.clone());
            }
        }
        names
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_cover_the_grid() {
        let labels: Vec<String> = standard_specs().iter().map(|s| s.label()).collect();
        assert_eq!(
            labels,
            vec!["D16/16/2", "DLXe/16/2", "DLXe/16/3", "DLXe/32/2", "DLXe/32/3"]
        );
    }

    #[test]
    fn collect_small_subset() {
        let ws = [d16_workloads::by_name("towers").unwrap()];
        let suite = Suite::collect_for(&ws, &base_specs(), false).unwrap();
        assert_eq!(suite.cells.len(), 2);
        assert_eq!(suite.get("towers", "D16/16/2").exit, 16383);
        assert_eq!(suite.workloads(), vec!["towers".to_string()]);
    }
}
