//! Collecting the full measurement grid: every workload on every target
//! configuration, plus access traces for the cache benchmarks.
//!
//! Collection fans the independent (workload, target) cells over a scoped
//! worker pool ([`Suite::collect_for_jobs`]); results are assembled in
//! work-item order, so the collected suite is byte-identical no matter how
//! many threads ran. Recorded traces feed the cache experiments through a
//! per-(workload, ISA) memoized single-pass grid replay
//! ([`Suite::cache_grid`]), so the full 20-configuration cache study walks
//! each trace exactly once.

use crate::measure::{measure_stored_spec, MeasureError, Measurement};
use d16_cc::TargetSpec;
use d16_isa::Isa;
use d16_mem::{CacheBank, CacheSystem};
use d16_sim::Engine;
use d16_sim::PipelineSpec;
use d16_sim::TraceRecorder;
use d16_store::Store;
use d16_telemetry::{timed, Registry};
use d16_workloads::{Workload, SUITE};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// The five configurations of the paper's grid (Tables 6–7):
/// `D16/16/2, DLXe/16/2, DLXe/16/3, DLXe/32/2, DLXe/32/3` — plus the
/// mixed-width extension target `D16x/16/3`, appended last so the paper
/// grid keeps its work-item order.
pub fn standard_specs() -> Vec<TargetSpec> {
    vec![
        TargetSpec::d16(),
        TargetSpec::dlxe_restricted(true, true, false),
        TargetSpec::dlxe_restricted(true, false, false),
        TargetSpec::dlxe_restricted(false, true, false),
        TargetSpec::dlxe(),
        TargetSpec::d16x(),
    ]
}

/// The two unrestricted machines the headline comparison uses.
pub fn base_specs() -> [TargetSpec; 2] {
    [TargetSpec::d16(), TargetSpec::dlxe()]
}

/// The number of worker threads [`Suite::collect`] uses by default.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Everything that can go wrong collecting or querying a [`Suite`].
#[derive(Debug)]
pub enum SuiteError {
    /// A (workload, target) cell failed to build or run.
    Measure {
        /// Workload name.
        workload: String,
        /// Target label.
        target: String,
        /// The underlying failure.
        source: MeasureError,
    },
    /// A workload exited with different checksums on different targets.
    ChecksumMismatch {
        /// Workload name.
        workload: String,
        /// Exit value on the first target.
        expected: i32,
        /// The disagreeing exit value.
        got: i32,
    },
    /// A queried (workload, target) measurement was never collected.
    MissingCell {
        /// Workload name.
        workload: String,
        /// Target label.
        target: String,
    },
    /// A queried (workload, ISA) trace was never recorded.
    MissingTrace {
        /// Workload name.
        workload: String,
        /// ISA name.
        isa: String,
    },
    /// A cache configuration was rejected while setting up a replay.
    Config {
        /// What was being configured (e.g. `cache grid`).
        context: String,
        /// The rejection.
        source: d16_mem::ConfigError,
    },
    /// A requested (size, block) point is not on the experiment grid.
    OffGrid {
        /// Requested cache size in bytes.
        size: u32,
        /// Requested block size in bytes.
        block: u32,
    },
    /// Every cell of a collection failed, so the suite would be empty.
    NothingCollected {
        /// How many cells were attempted.
        attempted: usize,
        /// The first failure, in work-item order.
        first: String,
    },
}

impl fmt::Display for SuiteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SuiteError::Measure { workload, target, source } => {
                write!(f, "measuring ({workload}, {target}): {source}")
            }
            SuiteError::ChecksumMismatch { workload, expected, got } => {
                write!(
                    f,
                    "workload {workload}: targets disagree on the checksum ({expected} vs {got})"
                )
            }
            SuiteError::MissingCell { workload, target } => {
                write!(f, "cell ({workload}, {target}) not collected")
            }
            SuiteError::MissingTrace { workload, isa } => {
                write!(f, "trace ({workload}, {isa}) not recorded (trace collection off, or not a cache benchmark)")
            }
            SuiteError::Config { context, source } => {
                write!(f, "{context}: {source}")
            }
            SuiteError::OffGrid { size, block } => {
                write!(f, "cache point (size {size}, block {block}) is not on the experiment grid")
            }
            SuiteError::NothingCollected { attempted, first } => {
                write!(f, "all {attempted} cells failed to collect; first error: {first}")
            }
        }
    }
}

impl std::error::Error for SuiteError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SuiteError::Measure { source, .. } => Some(source),
            SuiteError::Config { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// One cell (or workload) left out of a degraded collection: the run
/// completed, reported its results, and recorded why this part is
/// missing. `target` is `*` when a whole workload was dropped (a
/// cross-target checksum disagreement poisons every cell it touched).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Skip {
    /// Workload name.
    pub workload: String,
    /// Target label, or `*` for the whole workload.
    pub target: String,
    /// The rendered failure that caused the skip.
    pub reason: String,
}

impl fmt::Display for Skip {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {}): {}", self.workload, self.target, self.reason)
    }
}

/// One collected cell, before assembly into the maps.
type CellResult = Result<(Measurement, Option<TraceRecorder>), SuiteError>;

/// Memoized cache-grid replays, keyed like [`Suite::traces`].
type GridMemo = Arc<Mutex<BTreeMap<(String, String), Arc<Vec<CacheSystem>>>>>;

/// The whole measurement grid.
#[derive(Clone, Debug, Default)]
pub struct Suite {
    /// `(workload, target label) -> measurement`.
    pub cells: BTreeMap<(String, String), Measurement>,
    /// `(workload, ISA name) -> trace`, for the cache benchmarks.
    pub traces: BTreeMap<(String, String), TraceRecorder>,
    /// Wall time spent measuring each cell, keyed like `cells`.
    /// Wall-clock: reporting only, never part of diffed output (the
    /// per-cell [`Measurement`]s stay timing-free so their rendering is
    /// deterministic).
    pub cell_wall_ns: BTreeMap<(String, String), u64>,
    /// Cells dropped from a degraded collection, in work-item order
    /// (deterministic for every `jobs` value). Empty on a clean run;
    /// reports filter rows whose cells are missing, so one failing cell
    /// costs its rows, not the sweep.
    pub skipped: Vec<Skip>,
    /// Memoized single-pass cache-grid replays, keyed like `traces`.
    /// Shared across clones: the underlying cells and traces are
    /// immutable once collected, so the replay results are too.
    grid_memo: GridMemo,
    /// Merged telemetry: pipeline counters absorbed in work-item order at
    /// assembly (deterministic for every `jobs`), plus collection and
    /// cache-sweep phase spans. Shared across clones, like `grid_memo`,
    /// because [`Suite::cache_grid`] appends through `&self`.
    tele: Arc<Mutex<Registry>>,
    /// The artifact store this suite was collected through, if any;
    /// retained so [`Suite::cache_grid`] can serve and commit grid sweeps.
    store: Option<Arc<Store>>,
}

impl Suite {
    /// Measures the given workloads under the given specs on `jobs`
    /// worker threads. Traces are recorded for cache-benchmark workloads
    /// on the two unrestricted machines when `trace_cache` is set.
    ///
    /// The (workload, spec) cells are independent, so they fan out over a
    /// scoped thread pool; cells are assembled — and any skips recorded —
    /// in work-item order, making the result identical for every `jobs`
    /// value.
    ///
    /// A failing cell does not fail the collection: it is dropped and
    /// recorded in [`Suite::skipped`], and a cross-target checksum
    /// disagreement drops the whole offending workload the same way, so
    /// one bad cell degrades a sweep instead of killing it.
    ///
    /// # Errors
    ///
    /// [`SuiteError::NothingCollected`] only when *every* cell failed.
    pub fn collect_for_jobs(
        workloads: &[&Workload],
        specs: &[TargetSpec],
        trace_cache: bool,
        jobs: usize,
    ) -> Result<Suite, SuiteError> {
        Self::collect_for_jobs_stored(workloads, specs, trace_cache, jobs, None)
    }

    /// [`Suite::collect_for_jobs`] through an optional artifact store:
    /// intact cached cells (and their traces) are served without
    /// recompiling or re-simulating; misses and damaged entries recompute
    /// and commit. The store rides along in the suite so lazy grid sweeps
    /// ([`Suite::cache_grid`]) go through it too.
    ///
    /// Served cells are bit-identical to computed ones — assembly order,
    /// telemetry absorption, span recording and the checksum gate all run
    /// the same either way — so every diffable output of a warm run
    /// matches a cold one byte for byte.
    ///
    /// # Errors
    ///
    /// See [`Suite::collect_for_jobs`].
    pub fn collect_for_jobs_stored(
        workloads: &[&Workload],
        specs: &[TargetSpec],
        trace_cache: bool,
        jobs: usize,
        store: Option<Arc<Store>>,
    ) -> Result<Suite, SuiteError> {
        Self::collect_for_jobs_stored_with(
            workloads,
            specs,
            trace_cache,
            jobs,
            store,
            Engine::default(),
        )
    }

    /// [`Suite::collect_for_jobs_stored`] under an explicit execution
    /// engine. Both engines yield byte-identical suites; the choice only
    /// changes how long collection takes.
    ///
    /// # Errors
    ///
    /// See [`Suite::collect_for_jobs`].
    pub fn collect_for_jobs_stored_with(
        workloads: &[&Workload],
        specs: &[TargetSpec],
        trace_cache: bool,
        jobs: usize,
        store: Option<Arc<Store>>,
        engine: Engine,
    ) -> Result<Suite, SuiteError> {
        Self::collect_for_jobs_stored_spec(
            workloads,
            specs,
            trace_cache,
            jobs,
            store,
            engine,
            PipelineSpec::default(),
        )
    }

    /// [`Suite::collect_for_jobs_stored_with`] on an explicit
    /// [`PipelineSpec`]: every cell is measured on the retimed machine
    /// (non-default specs get their own store keys). The default spec is
    /// byte-identical to the plain collection.
    ///
    /// # Errors
    ///
    /// See [`Suite::collect_for_jobs`].
    pub fn collect_for_jobs_stored_spec(
        workloads: &[&Workload],
        specs: &[TargetSpec],
        trace_cache: bool,
        jobs: usize,
        store: Option<Arc<Store>>,
        engine: Engine,
        pspec: PipelineSpec,
    ) -> Result<Suite, SuiteError> {
        let items: Vec<(usize, usize)> =
            (0..workloads.len()).flat_map(|w| (0..specs.len()).map(move |s| (w, s))).collect();
        let run_cell = |&(wi, si): &(usize, usize)| -> CellResult {
            let w = workloads[wi];
            let spec = &specs[si];
            let unrestricted = *spec == TargetSpec::d16()
                || *spec == TargetSpec::dlxe()
                || *spec == TargetSpec::d16x();
            let want_trace = trace_cache && w.cache_benchmark && unrestricted;
            measure_stored_spec(w, spec, want_trace, store.as_deref(), engine, pspec).map_err(|e| {
                SuiteError::Measure {
                    workload: w.name.to_string(),
                    target: spec.label(),
                    source: e,
                }
            })
        };

        let jobs = jobs.max(1).min(items.len().max(1));
        // Each slot holds the cell result plus the wall time spent
        // measuring it (the "suite.collect.cell" span).
        let mut results: Vec<Option<(CellResult, u64)>> = Vec::new();
        results.resize_with(items.len(), || None);
        if jobs == 1 {
            for (slot, item) in results.iter_mut().zip(&items) {
                *slot = Some(timed(|| run_cell(item)));
            }
        } else {
            // Work-stealing over a shared index; each worker keeps its
            // finished cells locally and the main thread files them by
            // index after the scope joins, so no ordering is lost.
            let next = AtomicUsize::new(0);
            let finished = std::thread::scope(|scope| {
                let handles: Vec<_> = (0..jobs)
                    .map(|_| {
                        scope.spawn(|| {
                            let mut local: Vec<(usize, (CellResult, u64))> = Vec::new();
                            loop {
                                let i = next.fetch_add(1, Ordering::Relaxed);
                                let Some(item) = items.get(i) else { break };
                                local.push((i, timed(|| run_cell(item))));
                            }
                            local
                        })
                    })
                    .collect();
                let mut all = Vec::with_capacity(items.len());
                for h in handles {
                    all.extend(h.join().expect("collection worker panicked"));
                }
                all
            });
            for (i, r) in finished {
                results[i] = Some(r);
            }
        }

        let mut suite = Suite { store: store.clone(), ..Suite::default() };
        let mut reg = Registry::new();
        for (&(wi, si), result) in items.iter().zip(results) {
            let (result, wall_ns) = result.expect("cell not collected");
            let w = workloads[wi];
            let (m, trace) = match result {
                Ok(cell) => cell,
                Err(e) => {
                    suite.skipped.push(Skip {
                        workload: w.name.to_string(),
                        target: specs[si].label(),
                        reason: e.to_string(),
                    });
                    continue;
                }
            };
            // Absorbing here — in work-item order, after the pool joined —
            // is what makes the merged counters identical for every `jobs`.
            // D16x cells merge under their own `simx` prefix so the paper
            // grid's `sim.*` counters stay byte-identical with or without
            // the extension target.
            let prefix = if specs[si].isa == Isa::D16x { "simx" } else { "sim" };
            reg.absorb(prefix, &m.tele);
            reg.record_span("suite.collect.cell", wall_ns);
            if let Some(t) = trace {
                suite.traces.insert((w.name.to_string(), specs[si].isa.name().to_string()), t);
            }
            suite.cell_wall_ns.insert((w.name.to_string(), specs[si].label()), wall_ns);
            suite.cells.insert((w.name.to_string(), specs[si].label()), m);
        }
        *suite.tele.lock().expect("telemetry lock poisoned") = reg;

        // Cross-target checksum agreement: the joint correctness gate.
        // A disagreement means the workload's cells cannot be trusted on
        // *any* target, so the whole workload degrades to a skip.
        for w in workloads {
            let exits: Vec<i32> = suite
                .cells
                .iter()
                .filter(|((name, _), _)| name == w.name)
                .map(|(_, m)| m.exit)
                .collect();
            if let Some(&bad) = exits.iter().find(|&&e| e != exits[0]) {
                let reason = SuiteError::ChecksumMismatch {
                    workload: w.name.to_string(),
                    expected: exits[0],
                    got: bad,
                }
                .to_string();
                suite.cells.retain(|(name, _), _| name != w.name);
                suite.traces.retain(|(name, _), _| name != w.name);
                suite.cell_wall_ns.retain(|(name, _), _| name != w.name);
                suite.skipped.push(Skip {
                    workload: w.name.to_string(),
                    target: "*".to_string(),
                    reason,
                });
            }
        }

        if suite.cells.is_empty() && !suite.skipped.is_empty() {
            return Err(SuiteError::NothingCollected {
                attempted: items.len(),
                first: suite.skipped[0].to_string(),
            });
        }
        Ok(suite)
    }

    /// [`Suite::collect_for_jobs`] with the default worker count.
    ///
    /// # Errors
    ///
    /// See [`Suite::collect_for_jobs`].
    pub fn collect_for(
        workloads: &[&Workload],
        specs: &[TargetSpec],
        trace_cache: bool,
    ) -> Result<Suite, SuiteError> {
        Self::collect_for_jobs(workloads, specs, trace_cache, default_jobs())
    }

    /// Measures the full paper grid: all fifteen workloads on all five
    /// configurations, with cache-benchmark traces, on `jobs` threads.
    ///
    /// # Errors
    ///
    /// See [`Suite::collect_for_jobs`].
    pub fn collect_jobs(jobs: usize) -> Result<Suite, SuiteError> {
        Self::collect_jobs_stored(jobs, None)
    }

    /// [`Suite::collect_jobs`] through an optional artifact store.
    ///
    /// # Errors
    ///
    /// See [`Suite::collect_for_jobs`].
    pub fn collect_jobs_stored(
        jobs: usize,
        store: Option<Arc<Store>>,
    ) -> Result<Suite, SuiteError> {
        Self::collect_jobs_stored_with(jobs, store, Engine::default())
    }

    /// [`Suite::collect_jobs_stored`] under an explicit execution engine.
    ///
    /// # Errors
    ///
    /// See [`Suite::collect_for_jobs`].
    pub fn collect_jobs_stored_with(
        jobs: usize,
        store: Option<Arc<Store>>,
        engine: Engine,
    ) -> Result<Suite, SuiteError> {
        Self::collect_jobs_stored_spec(jobs, store, engine, PipelineSpec::default())
    }

    /// [`Suite::collect_jobs_stored_with`] on an explicit [`PipelineSpec`].
    ///
    /// # Errors
    ///
    /// See [`Suite::collect_for_jobs`].
    pub fn collect_jobs_stored_spec(
        jobs: usize,
        store: Option<Arc<Store>>,
        engine: Engine,
        pspec: PipelineSpec,
    ) -> Result<Suite, SuiteError> {
        let all: Vec<&Workload> = SUITE.iter().collect();
        Self::collect_for_jobs_stored_spec(
            &all,
            &standard_specs(),
            true,
            jobs,
            store,
            engine,
            pspec,
        )
    }

    /// Measures the full paper grid with the default worker count.
    ///
    /// # Errors
    ///
    /// See [`Suite::collect_for_jobs`].
    pub fn collect() -> Result<Suite, SuiteError> {
        Self::collect_jobs(default_jobs())
    }

    /// The measurement for one cell.
    ///
    /// # Errors
    ///
    /// [`SuiteError::MissingCell`] naming the absent pair.
    pub fn try_get(&self, workload: &str, target: &str) -> Result<&Measurement, SuiteError> {
        self.cells.get(&(workload.to_string(), target.to_string())).ok_or_else(|| {
            SuiteError::MissingCell { workload: workload.to_string(), target: target.to_string() }
        })
    }

    /// The trace for a cache benchmark on an unrestricted machine.
    ///
    /// # Errors
    ///
    /// [`SuiteError::MissingTrace`] naming the absent pair.
    pub fn try_trace(&self, workload: &str, isa: Isa) -> Result<&TraceRecorder, SuiteError> {
        self.traces.get(&(workload.to_string(), isa.name().to_string())).ok_or_else(|| {
            SuiteError::MissingTrace { workload: workload.to_string(), isa: isa.name().to_string() }
        })
    }

    /// The cache-grid systems for one (workload, ISA) trace: every
    /// configuration of [`crate::experiments::cache_grid_configs`], warmed
    /// by a *single* shared sweep of the recorded trace through a
    /// [`CacheBank`] and memoized. Figures 16–19 and Tables 13–16 all
    /// read from this; index with
    /// [`crate::experiments::cache_grid_index`].
    ///
    /// # Errors
    ///
    /// [`SuiteError::MissingTrace`] if the trace was never recorded.
    ///
    /// # Panics
    ///
    /// Panics if the memo lock is poisoned (a prior replay panicked).
    pub fn cache_grid(
        &self,
        workload: &str,
        isa: Isa,
    ) -> Result<Arc<Vec<CacheSystem>>, SuiteError> {
        let key = (workload.to_string(), isa.name().to_string());
        let mut memo = self.grid_memo.lock().expect("grid memo poisoned");
        if let Some(v) = memo.get(&key) {
            return Ok(Arc::clone(v));
        }
        let trace = self.try_trace(workload, isa)?;
        let prefix = format!("grid.{workload}.{}", isa.name());

        // A stored sweep carries the finished systems plus the bank's
        // sweep counters, so the registry ends up with exactly the
        // entries a live replay's `export_telemetry` would have written.
        let stored_at = self.store.as_deref().and_then(|s| {
            d16_workloads::by_name(workload).map(|w| (s, crate::stored::grid_key(w, isa)))
        });
        if let Some((s, gkey)) = stored_at {
            let (hit, load_ns) =
                timed(|| s.get_with(crate::stored::GRID_KIND, gkey, crate::stored::decode_grid));
            if let Some((systems, sweep)) = hit {
                {
                    let mut reg = self.tele.lock().expect("telemetry lock poisoned");
                    reg.record_span("suite.cache_grid.sweep", load_ns);
                    reg.absorb(&prefix, &sweep);
                    for sys in &systems {
                        sys.export_telemetry(&mut reg, &format!("{prefix}.cfg.{}", sys.label()));
                    }
                }
                let systems = Arc::new(systems);
                memo.insert(key, Arc::clone(&systems));
                return Ok(systems);
            }
        }

        let mut bank = CacheBank::symmetric(&crate::experiments::cache_grid_configs())
            .map_err(|source| SuiteError::Config { context: "cache grid".to_string(), source })?;
        let ((), sweep_ns) = timed(|| trace.replay(&mut bank));
        {
            let mut reg = self.tele.lock().expect("telemetry lock poisoned");
            reg.record_span("suite.cache_grid.sweep", sweep_ns);
            bank.export_telemetry(&mut reg, &prefix);
        }
        if let Some((s, gkey)) = stored_at {
            s.put(
                crate::stored::GRID_KIND,
                gkey,
                &crate::stored::encode_grid(bank.systems(), bank.telemetry()),
            );
        }
        let systems = Arc::new(bank.into_systems());
        memo.insert(key, Arc::clone(&systems));
        Ok(systems)
    }

    /// A snapshot of the suite's merged telemetry: `sim.*` pipeline
    /// counters (absorbed in work-item order; D16x cells under `simx.*`),
    /// `grid.*` per-configuration cache counters (one block per swept
    /// trace), and the `suite.collect.cell` / `suite.cache_grid.sweep`
    /// phase spans.
    ///
    /// Counters and span *counts* are deterministic; span durations are
    /// wall-clock. Grids sweep lazily, so warm every trace you want
    /// reported (see [`Suite::cache_grid`]) before snapshotting.
    pub fn telemetry(&self) -> Registry {
        self.tele.lock().expect("telemetry lock poisoned").clone()
    }

    /// Workload names present, in collection order.
    pub fn workloads(&self) -> Vec<String> {
        let mut names: Vec<String> = Vec::new();
        for (w, _) in self.cells.keys() {
            if !names.contains(w) {
                names.push(w.clone());
            }
        }
        names
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_cover_the_grid() {
        let labels: Vec<String> = standard_specs().iter().map(|s| s.label()).collect();
        assert_eq!(
            labels,
            vec!["D16/16/2", "DLXe/16/2", "DLXe/16/3", "DLXe/32/2", "DLXe/32/3", "D16x/16/3"]
        );
    }

    #[test]
    fn collect_small_subset() {
        let ws = [d16_workloads::by_name("towers").unwrap()];
        let suite = Suite::collect_for(&ws, &base_specs(), false).unwrap();
        assert_eq!(suite.cells.len(), 2);
        assert!(suite.skipped.is_empty(), "{:?}", suite.skipped);
        assert_eq!(suite.try_get("towers", "D16/16/2").unwrap().exit, 16383);
        assert_eq!(suite.workloads(), vec!["towers".to_string()]);
    }

    #[test]
    fn failing_cells_degrade_to_skips() {
        // A wrong pinned checksum fails every cell of this workload at
        // measurement time; the good workload must still collect.
        let bad = Workload {
            name: "towers-bad",
            source: d16_workloads::by_name("towers").unwrap().source,
            description: "towers with a wrong pinned checksum",
            expected: Some(-1),
            cache_benchmark: false,
            floating: false,
        };
        let good = d16_workloads::by_name("queens").unwrap();
        let suite = Suite::collect_for(&[&bad, good], &base_specs(), false).unwrap();
        assert_eq!(suite.cells.len(), 2, "queens cells survive");
        assert_eq!(suite.workloads(), vec!["queens".to_string()]);
        assert_eq!(suite.skipped.len(), 2, "{:?}", suite.skipped);
        for (skip, target) in suite.skipped.iter().zip(["D16/16/2", "DLXe/32/3"]) {
            assert_eq!(skip.workload, "towers-bad");
            assert_eq!(skip.target, target);
            assert!(skip.reason.contains("checksum mismatch"), "{}", skip.reason);
        }

        // When every cell fails, collection reports the first error
        // instead of returning an empty suite.
        let e = Suite::collect_for(&[&bad], &base_specs(), false).unwrap_err();
        assert!(matches!(&e, SuiteError::NothingCollected { attempted: 2, .. }), "{e:?}");
        assert!(e.to_string().contains("checksum mismatch"), "{e}");
    }

    #[test]
    fn missing_cells_are_named() {
        let suite = Suite::default();
        let e = suite.try_get("towers", "D16/16/2").unwrap_err();
        assert!(
            matches!(&e, SuiteError::MissingCell { workload, target }
                if workload == "towers" && target == "D16/16/2"),
            "{e:?}"
        );
        assert_eq!(e.to_string(), "cell (towers, D16/16/2) not collected");
        let e = suite.try_trace("assem", Isa::D16).unwrap_err();
        assert!(
            matches!(&e, SuiteError::MissingTrace { workload, isa }
                if workload == "assem" && isa == "D16"),
            "{e:?}"
        );
        assert!(e.to_string().contains("assem"), "{e}");
        assert!(suite.cache_grid("assem", Isa::D16).is_err());
    }
}
